#!/usr/bin/env python3
"""Selftest for metadock_lint.py against the checked-in fixture trees.

Two properties are asserted:
  * every rule fires on the known-bad tree, at exactly the expected
    (file, rule) sites — no more, no less;
  * the clean tree (which exercises every sanctioned idiom: guarded
    observer derefs, seeded streams, double accumulators, allow()
    pragmas, non-restricted dirs) produces zero findings.

Run directly (``python3 tools/test_metadock_lint.py``) or via CTest as
``metadock_lint_selftest``.
"""

import io
import re
import sys
import unittest
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import metadock_lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

# Every finding the bad tree must produce: (posix path, line, rule id).
EXPECTED_BAD = {
    ("src/gpusim/crt_rand.cpp", 9, "MDL002"),
    ("src/gpusim/crt_rand.cpp", 10, "MDL002"),
    ("src/gpusim/raw_clock_advance.cpp", 11, "MDL008"),
    ("src/gpusim/raw_clock_advance.cpp", 12, "MDL008"),
    ("src/meta/hot_loop_growth.cpp", 15, "MDL007"),
    ("src/meta/hot_loop_growth.cpp", 16, "MDL007"),
    ("src/meta/hot_loop_growth.cpp", 17, "MDL007"),
    ("src/meta/hot_loop_growth.cpp", 18, "MDL007"),
    ("src/meta/unseeded_engine.cpp", 10, "MDL002"),
    ("src/meta/unseeded_engine.cpp", 11, "MDL003"),
    ("src/sched/indirect_clock.h", 5, "MDL001"),
    ("src/sched/indirect_clock.h", 8, "MDL001"),
    ("src/sched/unguarded_observer.cpp", 22, "MDL005"),
    ("src/sched/unguarded_observer.cpp", 23, "MDL005"),
    ("src/sched/uses_indirect.cpp", 4, "MDL001"),
    ("src/sched/wall_clock_scheduler.cpp", 9, "MDL001"),
    ("src/sched/wall_clock_scheduler.cpp", 12, "MDL001"),
    ("src/scoring/narrowing_accum.cpp", 13, "MDL004"),
    ("src/scoring/narrowing_accum.cpp", 14, "MDL004"),
    ("src/scoring/raw_mutex.cpp", 10, "MDL010"),
    ("src/scoring/raw_mutex.cpp", 11, "MDL010"),
    ("src/scoring/raw_mutex.cpp", 12, "MDL010"),
    ("src/scoring/raw_mutex.cpp", 16, "MDL010"),
    ("src/util/upward_include.cpp", 4, "MDL009"),
    ("src/vs/includes_test_fixture.cpp", 3, "MDL006"),
}

ALL_RULES = {
    "MDL001", "MDL002", "MDL003", "MDL004", "MDL005",
    "MDL006", "MDL007", "MDL008", "MDL009", "MDL010",
}

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): (?P<rule>MDL\d{3}) ")


def run_lint(root, *extra_args):
    out = io.StringIO()
    with redirect_stdout(out):
        code = metadock_lint.main(["--root", str(root), *extra_args])
    findings = set()
    for line in out.getvalue().splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group("path"), int(m.group("line")), m.group("rule")))
    return code, findings


class BadFixtureTest(unittest.TestCase):
    def setUp(self):
        self.code, self.findings = run_lint(FIXTURES / "bad")

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.code, 1)

    def test_every_rule_fires(self):
        fired = {rule for (_, _, rule) in self.findings}
        self.assertEqual(fired, ALL_RULES)

    def test_exact_finding_sites(self):
        self.assertEqual(self.findings, EXPECTED_BAD)

    def test_transitive_include_graph_reaches_wall_clock(self):
        # uses_indirect.cpp has no clock token itself; only the include
        # graph can convict it.
        self.assertIn(("src/sched/uses_indirect.cpp", 4, "MDL001"), self.findings)

    def test_layering_rejects_upward_include(self):
        # util -> sched points against the architecture DAG.
        self.assertIn(("src/util/upward_include.cpp", 4, "MDL009"), self.findings)

    def test_layering_accepts_downward_include(self):
        # indirect_clock.h (sched) includes util/timer.h: sched -> util is a
        # legal DAG edge, so it must never surface as MDL009 (it is already
        # convicted as MDL001 for the clock, which is a different offense).
        self.assertNotIn(
            ("src/sched/indirect_clock.h", 5, "MDL009"), self.findings
        )

    def test_raw_primitives_flagged_per_line(self):
        mdl010 = {f for f in self.findings if f[2] == "MDL010"}
        self.assertEqual(
            mdl010,
            {
                ("src/scoring/raw_mutex.cpp", 10, "MDL010"),
                ("src/scoring/raw_mutex.cpp", 11, "MDL010"),
                ("src/scoring/raw_mutex.cpp", 12, "MDL010"),
                ("src/scoring/raw_mutex.cpp", 16, "MDL010"),
            },
        )

    def test_parallel_run_is_deterministic(self):
        # --jobs must change neither the findings nor the exit code.
        code, findings = run_lint(FIXTURES / "bad", "--jobs", "4")
        self.assertEqual(code, self.code)
        self.assertEqual(findings, self.findings)


class CleanFixtureTest(unittest.TestCase):
    def test_zero_false_positives(self):
        # wrapped_lock.cpp carries an allow(raw-lock-primitive) pragma: the
        # escape hatch must silence MDL010 like any other rule.
        code, findings = run_lint(FIXTURES / "clean")
        self.assertEqual(findings, set())
        self.assertEqual(code, 0)


class CliContractTest(unittest.TestCase):
    def test_missing_root_is_usage_error(self):
        out = io.StringIO()
        with redirect_stdout(out):
            code = metadock_lint.main(["--root", str(FIXTURES / "does-not-exist")])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
