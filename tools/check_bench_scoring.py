#!/usr/bin/env python3
"""Schema validator for BENCH_scoring.json (metadock.bench_scoring/3).

Usage: check_bench_scoring.py FILE

Validates structure and basic sanity (positive throughputs, tiled present,
speedups consistent with the raw numbers, generation and overlap sections
complete).  Deliberately does NOT enforce a wall-clock performance
threshold: CI machines vary too much for a hard pairs/sec bar, so the
committed BENCH_scoring.json documents the reference host and this check
keeps the emitter honest everywhere.  The overlap section is *virtual*
time from the device models — deterministic on every host — so there a
hard bar is legitimate: overlapped dispatch must beat the serial round by
at least 1.25x on the transfer-bound fragment workload, and adding the
CPU tail must not lose to plain overlap.
"""

import json
import math
import sys

EXPECTED_SCHEMA = "metadock.bench_scoring/3"
KNOWN_IMPLS = {"reference", "tiled", "batched-scalar", "batched-simd", "batched-avx512"}
SIMD_LEVELS = ("scalar", "avx2", "avx512")
GENERATION_MODES = ("tiled-aos", "batched-aos", "batched-soa", "batched-soa-cache")
OVERLAP_MODES = ("serial", "overlapped", "overlapped-cpu-tail")
#: Virtual-time gate: the double-buffered pipeline must hide at least this
#: much of the serial round on the transfer-bound fragment workload.
MIN_OVERLAP_SPEEDUP = 1.25


def fail(msg: str) -> None:
    print(f"check_bench_scoring: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def require_positive_number(value, msg: str) -> None:
    require(isinstance(value, (int, float)) and math.isfinite(value) and value > 0, msg)


def check_generation(doc: dict) -> dict:
    gen = doc.get("generation")
    require(isinstance(gen, dict), "missing generation object")

    config = gen.get("config")
    require(isinstance(config, dict), "missing generation.config object")
    require(isinstance(config.get("mh"), str) and config["mh"], "generation.config.mh must be a string")
    for key in ("receptor_atoms", "ligand_atoms", "spots", "population_per_spot",
                "generations", "score_cache_entries"):
        require(isinstance(config.get(key), int) and config[key] > 0,
                f"generation.config.{key} must be a positive int")

    results = gen.get("results")
    require(isinstance(results, list) and results, "generation.results must be a non-empty array")
    by_mode = {}
    for r in results:
        require(isinstance(r, dict), "each generation result must be an object")
        mode = r.get("mode")
        require(mode in GENERATION_MODES, f"unknown generation mode {mode!r}")
        require(mode not in by_mode, f"duplicate generation mode {mode!r}")
        require_positive_number(r.get("evals_per_second"),
                                f"{mode}: evals_per_second must be positive")
        by_mode[mode] = r
    for mode in GENERATION_MODES:
        require(mode in by_mode, f"missing generation mode {mode!r}")

    baseline = by_mode["batched-aos"]["evals_per_second"]
    for mode, r in by_mode.items():
        speedup = r.get("speedup_vs_batched_aos")
        require(isinstance(speedup, (int, float)) and math.isfinite(speedup),
                f"{mode}: bad speedup_vs_batched_aos")
        expected = r["evals_per_second"] / baseline
        require(abs(speedup - expected) < 1e-6 * max(1.0, expected),
                f"{mode}: speedup_vs_batched_aos inconsistent with evals_per_second")

    cached = by_mode["batched-soa-cache"]
    for key in ("cache_hits", "cache_misses"):
        require(isinstance(cached.get(key), int) and cached[key] >= 0,
                f"batched-soa-cache.{key} must be a non-negative int")
    require(cached["cache_hits"] + cached["cache_misses"] > 0,
            "batched-soa-cache saw no cache traffic")
    return by_mode


def check_overlap(doc: dict) -> dict:
    ov = doc.get("overlap")
    require(isinstance(ov, dict), "missing overlap object")

    config = ov.get("config")
    require(isinstance(config, dict), "missing overlap.config object")
    require(isinstance(config.get("node"), str) and config["node"],
            "overlap.config.node must be a string")
    for key in ("receptor_atoms", "ligand_atoms", "pairs_per_eval", "batch_poses", "batches"):
        require(isinstance(config.get(key), int) and config[key] > 0,
                f"overlap.config.{key} must be a positive int")
    require(config["pairs_per_eval"] == config["receptor_atoms"] * config["ligand_atoms"],
            "overlap.config.pairs_per_eval != receptor_atoms * ligand_atoms")
    shares = config.get("shares")
    require(isinstance(shares, list) and shares, "overlap.config.shares must be a non-empty array")
    for s in shares:
        require(isinstance(s, (int, float)) and 0.0 <= s <= 1.0,
                "overlap.config.shares entries must be in [0, 1]")
    require(abs(sum(shares) - 1.0) < 1e-6, "overlap.config.shares must sum to 1")
    tail = config.get("cpu_tail_share")
    require(isinstance(tail, (int, float)) and 0.0 <= tail < 1.0,
            "overlap.config.cpu_tail_share must be in [0, 1)")

    results = ov.get("results")
    require(isinstance(results, list) and results, "overlap.results must be a non-empty array")
    by_mode = {}
    for r in results:
        require(isinstance(r, dict), "each overlap result must be an object")
        mode = r.get("mode")
        require(mode in OVERLAP_MODES, f"unknown overlap mode {mode!r}")
        require(mode not in by_mode, f"duplicate overlap mode {mode!r}")
        require_positive_number(r.get("batch_seconds"), f"{mode}: batch_seconds must be positive")
        by_mode[mode] = r
    for mode in OVERLAP_MODES:
        require(mode in by_mode, f"missing overlap mode {mode!r}")

    serial_s = by_mode["serial"]["batch_seconds"]
    for mode, r in by_mode.items():
        speedup = r.get("speedup_vs_serial")
        require(isinstance(speedup, (int, float)) and math.isfinite(speedup),
                f"{mode}: bad speedup_vs_serial")
        expected = serial_s / r["batch_seconds"]
        require(abs(speedup - expected) < 1e-6 * max(1.0, expected),
                f"{mode}: speedup_vs_serial inconsistent with batch_seconds")

    # Virtual-time numbers are deterministic, so these are hard gates.
    require(by_mode["overlapped"]["speedup_vs_serial"] >= MIN_OVERLAP_SPEEDUP,
            f"overlapped speedup {by_mode['overlapped']['speedup_vs_serial']:.3f}x "
            f"below the {MIN_OVERLAP_SPEEDUP}x gate")
    require(by_mode["overlapped-cpu-tail"]["speedup_vs_serial"]
            >= by_mode["overlapped"]["speedup_vs_serial"] - 1e-9,
            "adding the CPU tail must not lose to plain overlap")
    return by_mode


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_scoring.py FILE")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    require(doc.get("schema") == EXPECTED_SCHEMA, f"schema != {EXPECTED_SCHEMA}")

    ds = doc.get("dataset")
    require(isinstance(ds, dict), "missing dataset object")
    for key in ("receptor_atoms", "ligand_atoms", "pairs_per_eval"):
        require(isinstance(ds.get(key), int) and ds[key] > 0, f"dataset.{key} must be a positive int")
    require(
        ds["pairs_per_eval"] == ds["receptor_atoms"] * ds["ligand_atoms"],
        "dataset.pairs_per_eval != receptor_atoms * ligand_atoms",
    )

    simd = doc.get("simd")
    require(isinstance(simd, dict), "missing simd object")
    for key in ("kernel_compiled", "kernel_supported", "avx512_compiled", "avx512_supported"):
        require(isinstance(simd.get(key), bool), f"simd.{key} must be a bool")
    require(simd.get("default_level") in SIMD_LEVELS,
            "simd.default_level must be " + "|".join(SIMD_LEVELS))
    require(
        not (simd["kernel_supported"] and not simd["kernel_compiled"]),
        "simd.kernel_supported implies kernel_compiled",
    )
    require(
        not (simd["avx512_supported"] and not simd["avx512_compiled"]),
        "simd.avx512_supported implies avx512_compiled",
    )

    results = doc.get("results")
    require(isinstance(results, list) and results, "results must be a non-empty array")
    by_impl = {}
    for r in results:
        require(isinstance(r, dict), "each result must be an object")
        impl = r.get("impl")
        require(impl in KNOWN_IMPLS, f"unknown impl {impl!r}")
        require(impl not in by_impl, f"duplicate impl {impl!r}")
        require_positive_number(r.get("pairs_per_second"), f"{impl}: pairs_per_second must be positive")
        by_impl[impl] = r

    for impl in ("reference", "tiled", "batched-scalar"):
        require(impl in by_impl, f"missing required impl {impl!r}")
    if simd["kernel_supported"]:
        require("batched-simd" in by_impl, "simd supported but no batched-simd result")
    if simd["avx512_supported"]:
        require("batched-avx512" in by_impl, "avx512 supported but no batched-avx512 result")

    tiled_pps = by_impl["tiled"]["pairs_per_second"]
    for impl, r in by_impl.items():
        speedup = r.get("speedup_vs_tiled")
        require(isinstance(speedup, (int, float)) and math.isfinite(speedup), f"{impl}: bad speedup_vs_tiled")
        expected = r["pairs_per_second"] / tiled_pps
        require(abs(speedup - expected) < 1e-6 * max(1.0, expected), f"{impl}: speedup_vs_tiled inconsistent with pairs_per_second")

    gen_modes = check_generation(doc)
    overlap_modes = check_overlap(doc)

    parts = ", ".join(
        "{}={:.3e}".format(i, by_impl[i]["pairs_per_second"]) for i in sorted(by_impl)
    )
    gen_parts = ", ".join(
        "{}={:.2f}x".format(m, gen_modes[m]["speedup_vs_batched_aos"]) for m in GENERATION_MODES
    )
    overlap_parts = ", ".join(
        "{}={:.2f}x".format(m, overlap_modes[m]["speedup_vs_serial"]) for m in OVERLAP_MODES
    )
    print(f"check_bench_scoring: OK ({parts}; generation: {gen_parts}; "
          f"overlap: {overlap_parts})")


if __name__ == "__main__":
    main()
