#!/usr/bin/env python3
"""Schema validator for BENCH_scoring.json (metadock.bench_scoring/1).

Usage: check_bench_scoring.py FILE

Validates structure and basic sanity (positive throughputs, tiled present,
speedups consistent with the raw numbers).  Deliberately does NOT enforce a
performance threshold: CI machines vary too much for a hard pairs/sec bar,
so the committed BENCH_scoring.json documents the reference host and this
check keeps the emitter honest everywhere.
"""

import json
import math
import sys

EXPECTED_SCHEMA = "metadock.bench_scoring/1"
KNOWN_IMPLS = {"reference", "tiled", "batched-scalar", "batched-simd"}


def fail(msg: str) -> None:
    print(f"check_bench_scoring: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_scoring.py FILE")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    require(doc.get("schema") == EXPECTED_SCHEMA, f"schema != {EXPECTED_SCHEMA}")

    ds = doc.get("dataset")
    require(isinstance(ds, dict), "missing dataset object")
    for key in ("receptor_atoms", "ligand_atoms", "pairs_per_eval"):
        require(isinstance(ds.get(key), int) and ds[key] > 0, f"dataset.{key} must be a positive int")
    require(
        ds["pairs_per_eval"] == ds["receptor_atoms"] * ds["ligand_atoms"],
        "dataset.pairs_per_eval != receptor_atoms * ligand_atoms",
    )

    simd = doc.get("simd")
    require(isinstance(simd, dict), "missing simd object")
    for key in ("kernel_compiled", "kernel_supported"):
        require(isinstance(simd.get(key), bool), f"simd.{key} must be a bool")
    require(simd.get("default_level") in ("scalar", "avx2"), "simd.default_level must be scalar|avx2")
    require(
        not (simd["kernel_supported"] and not simd["kernel_compiled"]),
        "simd.kernel_supported implies kernel_compiled",
    )

    results = doc.get("results")
    require(isinstance(results, list) and results, "results must be a non-empty array")
    by_impl = {}
    for r in results:
        require(isinstance(r, dict), "each result must be an object")
        impl = r.get("impl")
        require(impl in KNOWN_IMPLS, f"unknown impl {impl!r}")
        require(impl not in by_impl, f"duplicate impl {impl!r}")
        pps = r.get("pairs_per_second")
        require(isinstance(pps, (int, float)) and math.isfinite(pps) and pps > 0, f"{impl}: pairs_per_second must be positive")
        by_impl[impl] = r

    for impl in ("reference", "tiled", "batched-scalar"):
        require(impl in by_impl, f"missing required impl {impl!r}")
    if simd["kernel_supported"]:
        require("batched-simd" in by_impl, "simd supported but no batched-simd result")

    tiled_pps = by_impl["tiled"]["pairs_per_second"]
    for impl, r in by_impl.items():
        speedup = r.get("speedup_vs_tiled")
        require(isinstance(speedup, (int, float)) and math.isfinite(speedup), f"{impl}: bad speedup_vs_tiled")
        expected = r["pairs_per_second"] / tiled_pps
        require(abs(speedup - expected) < 1e-6 * max(1.0, expected), f"{impl}: speedup_vs_tiled inconsistent with pairs_per_second")

    parts = ", ".join(
        "{}={:.3e}".format(i, by_impl[i]["pairs_per_second"]) for i in sorted(by_impl)
    )
    print(f"check_bench_scoring: OK ({parts})")


if __name__ == "__main__":
    main()
