#!/usr/bin/env bash
# Clang Thread Safety Analysis gate (DESIGN.md §16).
#
# Three steps, in order of increasing cost:
#
#   1. self-check (clean fixture): tools/thread_safety_fixtures/
#      clean_guarded_access.cpp must compile under
#      -Wthread-safety -Werror=thread-safety-analysis — proves the
#      util/sync.h wrappers do not false-positive.
#   2. self-check (broken fixture): broken_unlocked_access.cpp must FAIL
#      with a thread-safety diagnostic — proves the analysis is actually
#      on.  A gate that cannot fail is not a gate: if the shim ever stops
#      expanding (wrong #if branch, renamed macro), this step catches it.
#   3. whole tree: configure the `clang` CMake preset equivalent into
#      build-clang/ and build every target with the annotations promoted
#      to errors (METADOCK_THREAD_SAFETY=ON).
#
# Usage: tools/run_thread_safety.sh [--fixtures-only]
#   --fixtures-only: run steps 1-2 only (seconds instead of a full build).
#
# Exit codes:
#   0   all steps passed
#   1   a step failed
#   77  clang++ unavailable (CTest SKIP — the CI container ships GCC only;
#       see SKIP_RETURN_CODE in tools/CMakeLists.txt)
#
# Override the compiler with METADOCK_CLANGXX=/path/to/clang++.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fixtures="$repo_root/tools/thread_safety_fixtures"
build_dir="$repo_root/build-clang"
fixtures_only=0
[ "${1:-}" = "--fixtures-only" ] && fixtures_only=1

clangxx="${METADOCK_CLANGXX:-$(command -v clang++ || true)}"
if [ -z "$clangxx" ]; then
  echo "run_thread_safety: clang++ not found on PATH — skipping" \
       "(install clang, or set METADOCK_CLANGXX)"
  exit 77
fi
echo "run_thread_safety: using $("$clangxx" --version | head -1)"

# The exact flag set the `clang` preset applies tree-wide.
ts_flags=(-std=c++20 -fsyntax-only -I "$repo_root/src"
          -Wthread-safety -Werror=thread-safety-analysis)

# Step 1: the clean fixture must pass.
if ! "$clangxx" "${ts_flags[@]}" "$fixtures/clean_guarded_access.cpp"; then
  echo "run_thread_safety: FAIL — clean fixture rejected;" \
       "util/sync.h wrappers mis-declare acquire/release" >&2
  exit 1
fi
echo "run_thread_safety: clean fixture compiles (no false positives)"

# Step 2: the broken fixture must fail, and fail for the right reason.
diag="$("$clangxx" "${ts_flags[@]}" "$fixtures/broken_unlocked_access.cpp" 2>&1)"
if [ $? -eq 0 ]; then
  echo "run_thread_safety: FAIL — broken fixture compiled clean;" \
       "the analysis is not running (check thread_annotations.h)" >&2
  exit 1
fi
if ! printf '%s\n' "$diag" | grep -q "thread-safety"; then
  echo "run_thread_safety: FAIL — broken fixture failed without a" \
       "thread-safety diagnostic:" >&2
  printf '%s\n' "$diag" >&2
  exit 1
fi
echo "run_thread_safety: broken fixture rejected as expected"

if [ "$fixtures_only" -eq 1 ]; then
  echo "run_thread_safety: OK (fixtures only)"
  exit 0
fi

# Step 3: the whole tree under -Wthread-safety.  Mirrors the `clang`
# preset but pins the compiler we probed so METADOCK_CLANGXX wins.
if ! cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER="$clangxx" \
      -DMETADOCK_THREAD_SAFETY=ON > "$build_dir.configure.log" 2>&1; then
  echo "run_thread_safety: FAIL — configure failed, see $build_dir.configure.log" >&2
  exit 1
fi
if ! cmake --build "$build_dir" --parallel; then
  echo "run_thread_safety: FAIL — tree does not hold the lock discipline" >&2
  exit 1
fi
rm -f "$build_dir.configure.log"
echo "run_thread_safety: OK — fixtures behave and the tree builds clean"
