#!/usr/bin/env python3
"""Schema validator and scaling gate for BENCH_cluster.json (metadock.bench_cluster/1).

Usage: check_bench_cluster.py FILE

The multi-node bench (bench_ablation_multinode) prices everything on the
shared virtual clock, so — unlike the wall-clock scoring bench — every
number here is deterministic on every host and hard gates are legitimate:

  * work stealing must keep >= 70% scaling efficiency at 32 nodes on the
    fault-free arm;
  * work stealing must beat the dynamic master/worker baseline on makespan
    at 32 nodes in the straggler/node-death arm (the whole point of
    continuous rebalancing: absorb an 8x straggler and two node deaths
    without giving back the proportional split's low dispatch overhead).

Structural checks keep the emitter honest: 24 rows ({8,32,128} nodes x 4
policies x 2 fault arms), speedup/efficiency consistent with the raw
makespans, every ligand docked exactly once, and fault accounting (two
node deaths in the node-death arm, none fault-free).
"""

import json
import math
import sys

EXPECTED_SCHEMA = "metadock.bench_cluster/1"
NODE_COUNTS = (8, 32, 128)
POLICIES = ("static", "static-prop", "dynamic", "stealing")
FAULT_ARMS = ("fault-free", "node-death")
#: Hard virtual-time gate: stealing's fault-free scaling efficiency at 32 nodes.
MIN_STEALING_EFFICIENCY_32 = 0.70
#: Deaths the node-death arm schedules (nodes 2 and 5).
DEATHS_PER_ARM = 2


def fail(msg: str) -> None:
    print(f"check_bench_cluster: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def require_positive_number(value, msg: str) -> None:
    require(isinstance(value, (int, float)) and math.isfinite(value) and value > 0, msg)


def require_count(row: dict, key: str, what: str) -> int:
    v = row.get(key)
    require(isinstance(v, int) and v >= 0, f"{what}: {key} must be a non-negative int")
    return v


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_cluster.py FILE")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    require(doc.get("schema") == EXPECTED_SCHEMA, f"schema != {EXPECTED_SCHEMA}")

    config = doc.get("config")
    require(isinstance(config, dict), "missing config object")
    for key in ("library_ligands", "min_atoms", "max_atoms", "units_per_ligand"):
        require(isinstance(config.get(key), int) and config[key] > 0,
                f"config.{key} must be a positive int")
    require(config["min_atoms"] <= config["max_atoms"], "config.min_atoms > config.max_atoms")
    require(isinstance(config.get("mh"), str) and config["mh"], "config.mh must be a string")
    require_positive_number(config.get("straggle_factor"), "config.straggle_factor must be positive")
    require_positive_number(config.get("hertz_base_seconds"), "config.hertz_base_seconds must be positive")
    require_positive_number(config.get("hertz_work_seconds"), "config.hertz_work_seconds must be positive")
    net = config.get("network")
    require(isinstance(net, dict), "missing config.network object")
    for key in ("latency_s", "bandwidth_gbs", "master_service_s", "death_detect_s"):
        require_positive_number(net.get(key), f"config.network.{key} must be positive")

    results = doc.get("results")
    require(isinstance(results, list) and results, "results must be a non-empty array")
    rows = {}
    for r in results:
        require(isinstance(r, dict), "each result must be an object")
        n = r.get("nodes")
        require(n in NODE_COUNTS, f"unknown node count {n!r}")
        policy = r.get("policy")
        require(policy in POLICIES, f"unknown policy {policy!r}")
        arm = r.get("faults")
        require(arm in FAULT_ARMS, f"unknown fault arm {arm!r}")
        key = (n, policy, arm)
        require(key not in rows, f"duplicate row {key!r}")
        rows[key] = r

    expected_rows = len(NODE_COUNTS) * len(POLICIES) * len(FAULT_ARMS)
    require(len(rows) == expected_rows, f"{len(rows)} rows, expected {expected_rows}")

    hertz_work = config["hertz_work_seconds"]
    for (n, policy, arm), r in sorted(rows.items()):
        what = f"{n}/{policy}/{arm}"
        require_positive_number(r.get("makespan_seconds"), f"{what}: makespan_seconds must be positive")
        require_positive_number(r.get("comm_seconds"), f"{what}: comm_seconds must be positive")
        require_positive_number(r.get("ideal_speedup"), f"{what}: ideal_speedup must be positive")

        speedup = r.get("speedup_vs_hertz")
        require(isinstance(speedup, (int, float)) and math.isfinite(speedup),
                f"{what}: bad speedup_vs_hertz")
        expected = hertz_work / r["makespan_seconds"]
        require(abs(speedup - expected) < 1e-6 * max(1.0, expected),
                f"{what}: speedup_vs_hertz inconsistent with makespan_seconds")

        eff = r.get("scaling_efficiency")
        require(isinstance(eff, (int, float)) and math.isfinite(eff) and 0 < eff <= 1.0 + 1e-9,
                f"{what}: scaling_efficiency must be in (0, 1]")
        require(abs(eff - speedup / r["ideal_speedup"]) < 1e-6,
                f"{what}: scaling_efficiency inconsistent with speedup/ideal_speedup")

        balance = r.get("balance_efficiency")
        require(isinstance(balance, (int, float)) and 0 < balance <= 1.0 + 1e-9,
                f"{what}: balance_efficiency must be in (0, 1]")

        require(require_count(r, "ligands_docked", what) == config["library_ligands"],
                f"{what}: ligands_docked != config.library_ligands")
        require(require_count(r, "messages", what) > 0, f"{what}: no messages priced")

        steals = require_count(r, "steals", what)
        stolen = require_count(r, "stolen_ligands", what)
        handoffs = require_count(r, "handoffs", what)
        require_count(r, "failed_steals", what)
        if policy != "stealing":
            require(steals == 0 and stolen == 0 and handoffs == 0,
                    f"{what}: non-stealing policy reports steal activity")
        else:
            require(stolen >= steals - handoffs or stolen + handoffs >= steals,
                    f"{what}: granted steals moved no work")

        lost = require_count(r, "nodes_lost", what)
        reassigned = require_count(r, "reassigned_ligands", what)
        redocked = require_count(r, "redocked_ligands", what)
        if arm == "fault-free":
            require(lost == 0 and reassigned == 0 and redocked == 0,
                    f"{what}: fault-free arm reports fault activity")
        else:
            require(lost == DEATHS_PER_ARM, f"{what}: nodes_lost != {DEATHS_PER_ARM}")
            require(reassigned + redocked >= 1, f"{what}: node deaths moved no work")

    # Deterministic virtual-time gates (see module docstring).
    steal32 = rows[(32, "stealing", "fault-free")]
    require(steal32["scaling_efficiency"] >= MIN_STEALING_EFFICIENCY_32,
            f"stealing fault-free efficiency at 32 nodes "
            f"{steal32['scaling_efficiency']:.3f} below the {MIN_STEALING_EFFICIENCY_32} gate")
    steal_death = rows[(32, "stealing", "node-death")]
    dyn_death = rows[(32, "dynamic", "node-death")]
    require(steal_death["makespan_seconds"] < dyn_death["makespan_seconds"],
            f"stealing must beat dynamic at 32 nodes under node death "
            f"({steal_death['makespan_seconds']:.2f}s vs {dyn_death['makespan_seconds']:.2f}s)")

    parts = ", ".join(
        "{}n {}={:.2f}".format(n, arm, rows[(n, "stealing", arm)]["scaling_efficiency"])
        for n in NODE_COUNTS for arm in FAULT_ARMS
    )
    print(f"check_bench_cluster: OK (stealing efficiency: {parts}; "
          f"32n death makespan {steal_death['makespan_seconds']:.2f}s < "
          f"dynamic {dyn_death['makespan_seconds']:.2f}s)")


if __name__ == "__main__":
    main()
