// Thread-safety gate fixture: MUST compile clean under
// `clang++ -Wthread-safety -Werror=thread-safety-analysis`.
//
// The mirror image of broken_unlocked_access.cpp: the same guarded
// counter, but every touch of `value_` happens under a ScopedLock.  A
// failure here means the wrappers in util/sync.h mis-declare their
// acquire/release contract (false positives), which would make the
// whole-tree build impossible to keep green.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void bump() {
    metadock::util::ScopedLock lock(mu_);
    ++value_;
  }

  [[nodiscard]] int read() const {
    metadock::util::ScopedLock lock(mu_);
    return value_;
  }

 private:
  mutable metadock::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
