// Thread-safety gate fixture: MUST FAIL to compile under
// `clang++ -Wthread-safety -Werror=thread-safety-analysis`.
//
// tools/run_thread_safety.sh compiles this TU and requires a diagnostic
// mentioning the guarded member; if it ever compiles clean, the analysis
// is silently off (wrong flags, wrong shim branch, broken wrappers) and
// the gate itself has rotted.  GCC accepts the file — the annotations are
// no-ops there — which is exactly why the gate exists.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void bump() {
    metadock::util::ScopedLock lock(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without holding mu_.  The analysis
  // must reject this line with "reading variable 'value_' requires
  // holding mutex 'mu_'".
  [[nodiscard]] int read_racy() const { return value_; }

 private:
  mutable metadock::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read_racy();
}
