#!/usr/bin/env python3
"""metadock-lint: domain rules generic linters cannot encode.

The reproduction's two load-bearing invariants (DESIGN.md §11):

  1. determinism — per-pose energies and every reported "performance"
     number are a pure function of (inputs, seed).  Virtual time comes from
     gpusim::VirtualClock and randomness from util::stream's counter-based
     generators; any wall clock or ambient RNG inside the simulator layers
     silently breaks run-to-run reproducibility and the
     strategy-invariance tests.
  2. instrumentation is nullable — obs::Observer* is off (nullptr) by
     default, so every dereference must sit behind a null guard.

Rules (suppress a finding with `// metadock-lint: allow(<rule>)` on the
same or the preceding line, with a reason):

  MDL001 wall-clock         std::chrono clocks / util::WallTimer /
                            time-of-day calls in the simulator layers
                            (src/{gpusim,sched,meta,scoring,vs}); the
                            include graph is walked so pulling a clock in
                            through a src header is also caught.
  MDL002 banned-rng         rand()/srand()/std::random_device anywhere in
                            src/ — non-deterministic or globally seeded.
  MDL003 std-random-engine  std::mt19937 & friends in the simulator
                            layers; randomness must go through the
                            counter-based util::stream/Xoshiro256 so the
                            numeric trajectory is schedule-independent.
  MDL004 narrowing-accum    `float` accumulator += a double-typed term in
                            a scoring TU.  Kernels accumulate per-pair
                            float terms into double; narrowing back into
                            float makes the scalar and SIMD paths diverge
                            bit-for-bit.
  MDL005 unguarded-observer dereference of an obs::Observer* handle
                            (observer / observer_ / obs_) without a null
                            guard in the preceding lines.
  MDL006 test-include       #include of tests/ code from src/ — the
                            library must never depend on test fixtures.
  MDL007 hot-loop-alloc     heap growth (`new`, malloc/calloc/realloc,
                            std::vector declarations, or growth calls such
                            as push_back/resize/reserve/insert) inside a
                            region bracketed by
                            `// metadock-lint: hot-begin(<name>)` and
                            `// metadock-lint: hot-end`.  The generation
                            loop of src/meta/ is allocation-free by design
                            (DESIGN.md §12): all state lives in arenas
                            bound before the loop, so any allocator call
                            in there is a perf regression waiting to
                            recur.
  MDL008 raw-clock-advance  direct `clock_.advance_seconds(...)` or
                            `clock_.advance_ns(...)` in src/gpusim/.  The
                            stream model (DESIGN.md §13) requires every
                            time advance to flow through the stream-aware
                            helpers (cursors/engines merged by sync()); a
                            raw clock bump desynchronizes the device clock
                            from its stream timelines.  The only legal
                            sites are Device::sync() and
                            Device::advance_seconds() themselves.
  MDL009 layering           cross-module #include that the architecture
                            DAG (DESIGN.md §16.3, ALLOWED_DEPS below) does
                            not permit.  Upward includes (util -> sched)
                            and edges between unrelated modules are both
                            rejected; because the allow-map itself is
                            acyclic, include cycles cannot pass.
  MDL010 raw-lock-primitive direct std::mutex / std::lock_guard /
                            std::unique_lock / std::condition_variable /
                            std::atomic_flag (& friends) anywhere in src/
                            outside util/sync.h.  Locks must go through
                            the capability-annotated util:: wrappers so
                            `clang++ -Wthread-safety` sees every acquire
                            and release (DESIGN.md §16).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, Iterator, List, Optional, Set, Tuple

SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc")

#: Directories under src/ that form the simulator: everything whose numbers
#: feed results must be driven by virtual clocks and seeded samplers only.
RESTRICTED_DIRS = ("gpusim", "sched", "meta", "scoring", "vs")

ALLOW_RE = re.compile(r"//\s*metadock-lint:\s*allow\(([^)]*)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|util::WallTimer"
    r"|\bclock_gettime\s*\("
    r"|\bgettimeofday\s*\("
    r"|\bstd::time\s*\("
)
TIMER_INCLUDE_RE = re.compile(r'#\s*include\s+"util/timer\.h"')
BANNED_RNG_RE = re.compile(
    r"(?<![\w:])rand\s*\(\s*\)|(?<![\w:])srand\s*\(|std::random_device"
)
STD_ENGINE_RE = re.compile(
    r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(?:24|48)(?:_base)?|knuth_b)\b"
)
INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')
TEST_INCLUDE_RE = re.compile(r'#\s*include\s+"(?:\.\./)*(?:tests?|testing)/')

FLOAT_DECL_RE = re.compile(r"\bfloat\s+(\w+)\s*(?:=|;|\{)")
DOUBLE_DECL_RE = re.compile(r"\bdouble\s+(\w+)\s*(?:=|;|\{)")
ACCUM_RE = re.compile(r"\b(\w+)\s*\+=\s*(.+?);")
#: A floating literal with no suffix is double-typed.
DOUBLE_LITERAL_RE = re.compile(r"(?<![\w.])\d+\.\d*(?:[eE][-+]?\d+)?(?![\w.])")

HOT_BEGIN_RE = re.compile(r"//\s*metadock-lint:\s*hot-begin\(([^)]*)\)")
HOT_END_RE = re.compile(r"//\s*metadock-lint:\s*hot-end\b")
#: Heap growth inside a hot region.  Three families: the allocator
#: expressions themselves (`new`, the C allocators), growth member calls on
#: any container (push_back & friends reallocate), and declaring a fresh
#: std::vector (its very existence means a heap buffer per iteration).
HOT_ALLOC_RE = re.compile(
    r"(?<![\w:])new\b"                   # any new-expression, incl. new T[n]
    r"|(?<!\w)(?:std::)?(?:malloc|calloc|realloc|aligned_alloc)\s*\("
    r"|(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve|insert|emplace)\s*\("
    r"|\bstd::vector\s*<"
)

#: A raw device-clock advance: legal only inside the stream-aware helpers
#: of gpusim::Device (which carry an explicit allow pragma).
RAW_CLOCK_ADVANCE_RE = re.compile(r"\bclock_\.advance_(?:seconds|ns)\s*\(")

#: An observer handle: observer / observer_ / obs_ (optionally reached
#: through members, e.g. options_.observer).  `obs::` (the namespace) and
#: value members like `o.metrics` do not match.
OBSERVER_DEREF_RE = re.compile(r"(?P<ptr>(?:\w+(?:\.|->))*(?:observer_?|obs_))\s*->")

#: The architecture DAG: module -> modules it may include (MDL009).  Derived
#: from — and enforcing — the layering diagram in DESIGN.md §16.3.  An edge
#: absent here is a violation whether it points up, sideways, or into a
#: module this map has never heard of; and since the map itself is acyclic
#: (asserted at startup), no include cycle can ever pass the check.
ALLOWED_DEPS: Dict[str, Tuple[str, ...]] = {
    "util": (),
    "geom": (),
    "obs": ("util",),
    "mol": ("geom", "util"),
    "surface": ("geom", "mol"),
    "scoring": ("mol", "geom", "util"),
    "gpusim": ("util", "scoring", "obs"),
    "cpusim": ("scoring", "util", "obs", "gpusim"),
    "meta": ("scoring", "util", "surface", "obs", "geom", "mol"),
    "sched": ("meta", "gpusim", "cpusim", "scoring", "obs", "util"),
    "vs": ("util", "sched", "mol", "meta", "surface", "obs", "scoring", "geom"),
}

#: Raw standard lock/wait primitives (MDL010): these blind the clang
#: thread-safety analysis, so src/ must reach them through the annotated
#: util:: wrappers instead.
RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?|atomic_flag)\b"
)
#: The sanctioned wrapper layer itself (and the attribute shim): the only
#: src/ files allowed to name the raw primitives.
RAW_PRIMITIVE_EXEMPT = (
    "src/util/sync.h",
    "src/util/thread_annotations.h",
)

RULES = {
    "MDL001": "wall-clock",
    "MDL002": "banned-rng",
    "MDL003": "std-random-engine",
    "MDL004": "narrowing-accum",
    "MDL005": "unguarded-observer",
    "MDL006": "test-include",
    "MDL007": "hot-loop-alloc",
    "MDL008": "raw-clock-advance",
    "MDL009": "layering",
    "MDL010": "raw-lock-primitive",
}
NAME_TO_ID = {name: rule_id for rule_id, name in RULES.items()}


def _assert_deps_acyclic() -> None:
    """The layering map must itself be a DAG, or MDL009 proves nothing."""
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(mod: str) -> None:
        if state.get(mod) == 1:
            return
        if state.get(mod) == 0:
            raise AssertionError(f"ALLOWED_DEPS cycle through '{mod}'")
        state[mod] = 0
        for dep in ALLOWED_DEPS.get(mod, ()):
            visit(dep)
        state[mod] = 1

    for mod in ALLOWED_DEPS:
        visit(mod)


_assert_deps_acyclic()


class Finding:
    def __init__(self, path: str, line: int, rule_id: str, message: str):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.message = message

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule_id} "
            f"({RULES[self.rule_id]}): {self.message}"
        )


def strip_comments(lines: List[str]) -> List[str]:
    """Blanks out // and /* */ comment text (string literals are kept:
    the banned constructs are code, and none of them read naturally inside
    a string).  Line count and column positions are preserved."""
    out: List[str] = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    result.append(" " * (len(line) - i))
                    i = len(line)
                else:
                    result.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
            elif line.startswith("//", i):
                result.append(" " * (len(line) - i))
                i = len(line)
            elif line.startswith("/*", i):
                in_block = True
                result.append("  ")
                i += 2
            else:
                result.append(line[i])
                i += 1
        out.append("".join(result))
    return out


def allowed_rules(raw_lines: List[str], lineno: int) -> Set[str]:
    """Rule IDs suppressed at 1-based `lineno` (same or preceding line)."""
    allowed: Set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m:
                for token in m.group(1).split(","):
                    token = token.strip().split()[0] if token.strip() else ""
                    if token in RULES:
                        allowed.add(token)
                    elif token in NAME_TO_ID:
                        allowed.add(NAME_TO_ID[token])
    return allowed


def hot_regions(raw_lines: List[str]) -> Dict[int, str]:
    """1-based line -> region name for lines strictly between a
    `hot-begin(<name>)` marker and its matching `hot-end`.  Markers live in
    comments, so they are read from the raw (unstripped) lines."""
    regions: Dict[int, str] = {}
    current: Optional[str] = None
    for lineno, line in enumerate(raw_lines, 1):
        m = HOT_BEGIN_RE.search(line)
        if m:
            current = m.group(1).strip() or "unnamed"
            continue
        if HOT_END_RE.search(line):
            current = None
            continue
        if current is not None:
            regions[lineno] = current
    return regions


def is_restricted(rel: str) -> bool:
    parts = rel.replace(os.sep, "/").split("/")
    return len(parts) >= 2 and parts[0] == "src" and parts[1] in RESTRICTED_DIRS


def module_of(rel: str) -> Optional[str]:
    """`src/<module>/...` -> module name; None for files outside a module."""
    parts = rel.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


class SourceFile:
    """One parsed source file, read and comment-stripped exactly once.

    Both the include-graph pass and the per-file lint pass work from this
    object, so a header shared by many TUs is parsed once per run instead
    of once per includer (the memoization that keeps full-tree runs fast).
    """

    __slots__ = ("rel", "raw", "code", "hot", "module")

    def __init__(self, root: str, path: str):
        self.rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as fh:
            self.raw = fh.read().splitlines()
        self.code = strip_comments(self.raw)
        self.hot = hot_regions(self.raw)
        self.module = module_of(self.rel)


def is_scoring_tu(rel: str) -> bool:
    return rel.replace(os.sep, "/").startswith("src/scoring/")


def is_gpusim_tu(rel: str) -> bool:
    return rel.replace(os.sep, "/").startswith("src/gpusim/")


def iter_source_files(src_root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, name)


def build_include_graph(files: List["SourceFile"]) -> Dict[str, List[Tuple[int, str]]]:
    """rel path -> [(lineno, included rel path)] for src-internal includes
    (quoted includes resolved against src/, the project convention).
    Works from the memoized parses — no file is re-read here."""
    graph: Dict[str, List[Tuple[int, str]]] = {}
    known = {sf.rel for sf in files}
    for sf in files:
        edges: List[Tuple[int, str]] = []
        for lineno, line in enumerate(sf.raw, 1):
            m = INCLUDE_RE.search(line)
            if m:
                target = os.path.join("src", m.group(1))
                if target in known:
                    edges.append((lineno, target))
        graph[sf.rel] = edges
    return graph


def reaches_wall_clock(
    rel: str,
    graph: Dict[str, List[Tuple[int, str]]],
    cache: Dict[str, bool],
) -> bool:
    """True when `rel` includes src/util/timer.h, transitively."""
    if rel in cache:
        return cache[rel]
    cache[rel] = False  # cycle guard
    result = any(
        target == os.path.join("src", "util", "timer.h")
        or reaches_wall_clock(target, graph, cache)
        for _, target in graph.get(rel, [])
    )
    cache[rel] = result
    return result


GUARD_WINDOW = 20


def observer_guarded(code_lines: List[str], lineno: int, ptr: str) -> bool:
    """Is the deref of `ptr` at 1-based `lineno` within sight of a null
    check of the same expression?  Recognized guards: `if (p)`,
    `if (p != nullptr)`, early-return `if (p == nullptr) return`,
    `p != nullptr &&`, `p ? ... :`, and the binding idiom
    `if (obs::Observer* o = p)`."""
    p = re.escape(ptr)
    guard_re = re.compile(
        rf"if\s*\(\s*{p}\s*\)"
        rf"|if\s*\(\s*{p}\s*!=\s*nullptr"
        rf"|{p}\s*==\s*nullptr"
        rf"|{p}\s*!=\s*nullptr"
        rf"|=\s*{p}\s*\)"
        rf"|{p}\s*\?"
        rf"|{p}\s*&&"
    )
    lo = max(0, lineno - GUARD_WINDOW)
    return any(guard_re.search(code_lines[idx]) for idx in range(lo, lineno))


def lint_file(
    sf: "SourceFile",
    graph: Dict[str, List[Tuple[int, str]]],
    wall_cache: Dict[str, bool],
) -> List[Finding]:
    rel = sf.rel
    raw = sf.raw
    code = sf.code
    restricted = is_restricted(rel)
    hot = sf.hot
    findings: List[Finding] = []

    def report(lineno: int, rule_id: str, message: str) -> None:
        if rule_id not in allowed_rules(raw, lineno):
            findings.append(Finding(rel, lineno, rule_id, message))

    float_vars: Set[str] = set()
    double_vars: Set[str] = set()
    if is_scoring_tu(rel):
        for line in code:
            float_vars.update(FLOAT_DECL_RE.findall(line))
            double_vars.update(DOUBLE_DECL_RE.findall(line))

    for lineno, line in enumerate(code, 1):
        if restricted:
            m = WALL_CLOCK_RE.search(line) or TIMER_INCLUDE_RE.search(line)
            if m:
                report(
                    lineno,
                    "MDL001",
                    f"wall clock in simulator layer ({m.group(0).strip()}); "
                    "results must be driven by gpusim::VirtualClock",
                )
            m = STD_ENGINE_RE.search(line)
            if m:
                report(
                    lineno,
                    "MDL003",
                    f"{m.group(0)} in simulator layer; use the counter-based "
                    "util::stream/Xoshiro256 so results are schedule-independent",
                )
        if is_gpusim_tu(rel):
            m = RAW_CLOCK_ADVANCE_RE.search(line)
            if m:
                report(
                    lineno,
                    "MDL008",
                    f"raw device-clock advance ({m.group(0).strip()}) outside "
                    "the stream-aware helpers; stream cursors/engines would "
                    "desynchronize from the clock — go through sync()/"
                    "advance_seconds()",
                )
        m = BANNED_RNG_RE.search(line)
        if m:
            report(
                lineno,
                "MDL002",
                f"{m.group(0).strip()} is non-deterministic; derive randomness "
                "from a run seed via util::stream",
            )
        if TEST_INCLUDE_RE.search(line):
            report(lineno, "MDL006", "src/ must not include test code")
        if rel.replace(os.sep, "/") not in RAW_PRIMITIVE_EXEMPT:
            m = RAW_PRIMITIVE_RE.search(line)
            if m:
                report(
                    lineno,
                    "MDL010",
                    f"raw lock primitive {m.group(0)} bypasses the "
                    "capability-annotated util:: wrappers (util/sync.h); "
                    "clang -Wthread-safety cannot see its critical sections",
                )
        if float_vars:
            am = ACCUM_RE.search(line)
            if am and am.group(1) in float_vars:
                rhs = am.group(2)
                rhs_idents = set(re.findall(r"\b\w+\b", rhs))
                if rhs_idents & double_vars or DOUBLE_LITERAL_RE.search(rhs):
                    report(
                        lineno,
                        "MDL004",
                        f"float accumulator '{am.group(1)}' receives a "
                        "double-typed term; scoring kernels accumulate float "
                        "terms into double, never the reverse",
                    )
        region = hot.get(lineno)
        if region is not None:
            hm = HOT_ALLOC_RE.search(line)
            if hm:
                report(
                    lineno,
                    "MDL007",
                    f"heap growth ({hm.group(0).strip()}) inside hot region "
                    f"'{region}'; the loop is allocation-free by design — "
                    "bind arena storage before hot-begin",
                )
        for dm in OBSERVER_DEREF_RE.finditer(line):
            if not observer_guarded(code, lineno, dm.group("ptr")):
                report(
                    lineno,
                    "MDL005",
                    f"obs::Observer* handle '{dm.group('ptr')}' dereferenced "
                    "without a null guard (observability is off by default)",
                )

    # Include-graph pass: a restricted TU that pulls the wall-clock timer in
    # through another src header still breaks determinism.
    if restricted:
        for lineno, target in graph.get(rel, []):
            if target == os.path.join("src", "util", "timer.h"):
                continue  # the direct include was handled (or allowed) above
            if reaches_wall_clock(target, graph, wall_cache):
                report(
                    lineno,
                    "MDL001",
                    f'#include "{target}" transitively includes util/timer.h '
                    "(wall clock) into a simulator layer",
                )

    # Layering pass (MDL009): every src-internal cross-module edge must be
    # in the architecture DAG.
    if sf.module is not None:
        allowed = ALLOWED_DEPS.get(sf.module)
        for lineno, target in graph.get(rel, []):
            target_module = module_of(target)
            if target_module is None or target_module == sf.module:
                continue
            if allowed is None:
                report(
                    lineno,
                    "MDL009",
                    f"module '{sf.module}' is not in the layering map "
                    "(ALLOWED_DEPS); add it with its permitted dependencies",
                )
            elif target_module not in allowed:
                report(
                    lineno,
                    "MDL009",
                    f"layering violation: '{sf.module}' must not include "
                    f"'{target_module}' ({target}); the architecture DAG "
                    f"allows {sf.module} -> "
                    f"{{{', '.join(allowed) if allowed else 'nothing'}}}",
                )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root containing src/ (default: this checkout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print nothing when clean"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint N files concurrently (default 1; output order is "
        "deterministic either way)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print("metadock-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    src_root = os.path.join(args.root, "src")
    if not os.path.isdir(src_root):
        print(f"metadock-lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    parsed = [SourceFile(args.root, path) for path in iter_source_files(src_root)]
    graph = build_include_graph(parsed)
    # Warm the transitive wall-clock cache single-threaded so worker threads
    # only ever read it (the per-entry writes are idempotent anyway).
    wall_cache: Dict[str, bool] = {}
    for sf in parsed:
        reaches_wall_clock(sf.rel, graph, wall_cache)

    findings: List[Finding] = []
    if args.jobs == 1:
        for sf in parsed:
            findings.extend(lint_file(sf, graph, wall_cache))
    else:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=args.jobs) as pool:
            # map() preserves input order, so findings come out in the same
            # deterministic sequence as a serial run.
            for file_findings in pool.map(
                lambda sf: lint_file(sf, graph, wall_cache), parsed
            ):
                findings.extend(file_findings)
    files = parsed

    for finding in findings:
        print(finding)
    if findings:
        print(f"metadock-lint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    if not args.quiet:
        print(f"metadock-lint: OK — {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
