// metadock — command-line driver for the library.
//
//   metadock dock   [--receptor F.pdb] [--ligand F.pdb] [--dataset 2BSM|2BXG]
//                   [--node hertz|jupiter] [--strategy het|hom|cpu|coop]
//                   [--mh M1|M2|M3|M4|SA|TS] [--scale 0.02] [--seed 42] [--conformers N]
//                   [--out complex.pdb]
//   metadock screen [--count 8] [--dataset ...] [--node ...] [--mh ...]
//                   [--scale ...] [--seed ...]
//   metadock tables [--which 6|7|8|9|all]
//
// Without --receptor/--ligand, the synthetic dataset structures are used,
// so the tool runs out of the box.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "geom/transform.h"
#include "mol/library.h"
#include "mol/pdb.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/args.h"
#include "util/table.h"
#include "vs/experiment.h"
#include "vs/report.h"
#include "vs/screening.h"

namespace {

using namespace metadock;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  metadock dock   [--receptor F.pdb] [--ligand F.pdb] [--dataset 2BSM|2BXG]\n"
               "                  [--node hertz|jupiter] [--strategy het|hom|cpu|coop]\n"
               "                  [--mh M1|M2|M3|M4|SA|TS] [--scale S] [--seed N] [--out F.pdb]\n"
               "                  [--conformers N]\n"
               "  metadock screen [--count N] [--dataset ...] [--node ...] [--mh ...]\n"
               "                  [--scale S] [--seed N] [--json F.json]\n"
               "  metadock tables [--which 6|7|8|9|all]\n");
  std::exit(2);
}

mol::Dataset dataset_from(const std::string& name) {
  if (name == "2BSM") return mol::kDataset2BSM;
  if (name == "2BXG") return mol::kDataset2BXG;
  usage("unknown --dataset (expected 2BSM or 2BXG)");
}

sched::NodeConfig node_from(const std::string& name) {
  if (name == "hertz") return sched::hertz();
  if (name == "jupiter") return sched::jupiter();
  usage("unknown --node (expected hertz or jupiter)");
}

sched::Strategy strategy_from(const std::string& name) {
  if (name == "het") return sched::Strategy::kHeterogeneous;
  if (name == "hom") return sched::Strategy::kHomogeneous;
  if (name == "cpu") return sched::Strategy::kCpu;
  if (name == "coop") return sched::Strategy::kCooperative;
  usage("unknown --strategy (expected het, hom, cpu or coop)");
}

meta::MetaheuristicParams mh_from(const std::string& name) {
  if (name == "M1") return meta::m1_genetic();
  if (name == "M2") return meta::m2_scatter_full();
  if (name == "M3") return meta::m3_scatter_light();
  if (name == "M4") return meta::m4_local_search();
  if (name == "SA") return meta::sa_annealing();
  if (name == "TS") return meta::tabu_search();
  usage("unknown --mh (expected M1, M2, M3, M4, SA or TS)");
}

int cmd_dock(const util::ArgParser& args) {
  const mol::Dataset ds = dataset_from(args.get("dataset", std::string("2BSM")));
  const mol::Molecule receptor = args.has("receptor")
                                     ? mol::read_pdb_file(args.get("receptor"))
                                     : mol::make_dataset_receptor(ds);
  mol::Molecule ligand = args.has("ligand") ? mol::read_pdb_file(args.get("ligand"))
                                            : mol::make_dataset_ligand(ds);
  ligand.center_at_origin();

  vs::ScreeningOptions options;
  options.params = mh_from(args.get("mh", std::string("M3")));
  options.exec.strategy = strategy_from(args.get("strategy", std::string("het")));
  options.scale = args.get("scale", 0.02);
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));

  vs::VirtualScreeningEngine engine(receptor, node_from(args.get("node", std::string("hertz"))),
                                    options);
  std::printf("docking %s (%zu atoms) against %s (%zu atoms), %zu spots, %s/%s\n",
              ligand.name().c_str(), ligand.size(), receptor.name().c_str(), receptor.size(),
              engine.spots().size(), args.get("node", std::string("hertz")).c_str(),
              options.params.name.c_str());

  const auto n_conformers = args.get("conformers", std::int64_t{1});
  vs::LigandHit hit;
  if (n_conformers > 1) {
    mol::ConformerParams cp;
    cp.count = static_cast<std::size_t>(n_conformers);
    std::vector<double> per_conformer;
    hit = engine.dock_ensemble(ligand, cp, &per_conformer);
    std::printf("ensemble of %zu conformers; per-conformer best energies:", per_conformer.size());
    for (double e : per_conformer) std::printf(" %.2f", e);
    std::printf("\n");
  } else {
    hit = engine.dock(ligand);
  }
  std::printf("best energy %.4f kcal/mol at spot %d, pose (%.2f, %.2f, %.2f)\n",
              hit.best_score, hit.best_spot_id, static_cast<double>(hit.best_pose.position.x),
              static_cast<double>(hit.best_pose.position.y),
              static_cast<double>(hit.best_pose.position.z));
  std::printf("virtual time %.3f s, modeled energy %.0f J\n", hit.virtual_seconds,
              hit.energy_joules);

  if (args.has("out")) {
    mol::Molecule posed = ligand;
    posed.transform({hit.best_pose.orientation, hit.best_pose.position});
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    mol::write_complex_pdb(out, receptor, posed);
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  return 0;
}

int cmd_screen(const util::ArgParser& args) {
  const mol::Dataset ds = dataset_from(args.get("dataset", std::string("2BSM")));
  const mol::Molecule receptor = args.has("receptor")
                                     ? mol::read_pdb_file(args.get("receptor"))
                                     : mol::make_dataset_receptor(ds);

  mol::LibraryParams lib;
  lib.count = static_cast<std::size_t>(args.get("count", std::int64_t{4}));
  lib.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
  const auto library = mol::make_ligand_library(lib);

  vs::ScreeningOptions options;
  options.params = mh_from(args.get("mh", std::string("M1")));
  options.params.population_per_spot = 16;
  options.exec.strategy = strategy_from(args.get("strategy", std::string("het")));
  options.scale = args.get("scale", 0.005);
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));

  vs::VirtualScreeningEngine engine(receptor, node_from(args.get("node", std::string("hertz"))),
                                    options);
  const auto hits = engine.screen(library);

  util::Table t("Hit list");
  t.header({"rank", "ligand", "best energy", "spot", "virtual s"});
  int rank = 1;
  for (const vs::LigandHit& h : hits) {
    t.row({std::to_string(rank++), h.ligand_name, util::Table::num(h.best_score, 3),
           std::to_string(h.best_spot_id), util::Table::num(h.virtual_seconds, 3)});
  }
  t.print();

  if (args.has("json")) {
    std::ofstream out(args.get("json"));
    if (!out) throw std::runtime_error("cannot open " + args.get("json"));
    out << vs::hits_to_json(receptor.name(), args.get("node", std::string("hertz")), hits)
        << '\n';
    std::printf("wrote %s\n", args.get("json").c_str());
  }
  return 0;
}

int cmd_tables(const util::ArgParser& args) {
  const std::string which = args.get("which", std::string("all"));
  if (which == "6" || which == "all") {
    vs::print_experiment_table(vs::run_jupiter_table(mol::kDataset2BSM));
  }
  if (which == "7" || which == "all") {
    vs::print_experiment_table(vs::run_jupiter_table(mol::kDataset2BXG));
  }
  if (which == "8" || which == "all") {
    vs::print_experiment_table(vs::run_hertz_table(mol::kDataset2BSM));
  }
  if (which == "9" || which == "all") {
    vs::print_experiment_table(vs::run_hertz_table(mol::kDataset2BXG));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    if (args.positionals().empty()) usage();
    const std::string cmd = args.positionals().front();
    if (cmd == "dock") return cmd_dock(args);
    if (cmd == "screen") return cmd_screen(args);
    if (cmd == "tables") return cmd_tables(args);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metadock: %s\n", e.what());
    return 1;
  }
}
