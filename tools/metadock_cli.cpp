// metadock — command-line driver for the library.
//
//   metadock dock   [--receptor F.pdb] [--ligand F.pdb] [--dataset 2BSM|2BXG]
//                   [--node hertz|jupiter] [--strategy het|hom|cpu|coop]
//                   [--mh M1|M2|M3|M4|SA|TS] [--scale 0.02] [--seed 42] [--conformers N]
//                   [--out complex.pdb]
//   metadock screen [--count 8] [--dataset ...] [--node ...] [--mh ...]
//                   [--scale ...] [--seed ...] [--batch-size N]
//                   [--top-percent P] [--hits-jsonl F] [--resume]
//   metadock serve  (--jobs-dir D [--drain] [--poll-ms N] | --stdin)
//                   [--max-jobs N]
//   metadock cluster [--nodes N] [--mixed | --node hertz|jupiter]
//                   [--policy static|static-prop|dynamic|stealing] [--count N]
//                   [--steal-threshold S] [--node-fault-kill N@T]
//                   [--node-fault-straggle N@T:K] [--node-fault-seed N]
//                   [--screen] [--json F.json]
//   metadock tables [--which 6|7|8|9|all]
//
// Without --receptor/--ligand, the synthetic dataset structures are used,
// so the tool runs out of the box.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "geom/transform.h"
#include "gpusim/fault_plan.h"
#include "mol/library.h"
#include "mol/pdb.h"
#include "mol/synth.h"
#include "obs/observer.h"
#include "sched/executor.h"
#include "scoring/batch_engine.h"
#include "util/args.h"
#include "util/table.h"
#include "util/json.h"
#include "vs/batch_screening.h"
#include "vs/cluster_screening.h"
#include "vs/experiment.h"
#include "vs/job_server.h"
#include "vs/report.h"
#include "vs/screening.h"

namespace {

using namespace metadock;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  metadock dock   [--receptor F.pdb] [--ligand F.pdb] [--dataset 2BSM|2BXG]\n"
               "                  [--node hertz|jupiter] [--strategy het|hom|cpu|coop]\n"
               "                  [--mh M1|M2|M3|M4|SA|TS] [--scale S] [--seed N] [--out F.pdb]\n"
               "                  [--conformers N]\n"
               "  metadock screen [--count N] [--dataset ...] [--node ...] [--mh ...]\n"
               "                  [--scale S] [--seed N] [--json F.json]\n"
               "                  [--batch-size N] [--top-percent P] [--hits-jsonl F.jsonl]\n"
               "                  [--resume]\n"
               "  metadock serve  (--jobs-dir D [--drain] [--poll-ms N] | --stdin)\n"
               "                  [--max-jobs N] [--metrics-out F.json]\n"
               "  metadock cluster [--nodes N] [--mixed | --node hertz|jupiter]\n"
               "                  [--policy static|static-prop|dynamic|stealing]\n"
               "                  [--count N] [--dataset ...] [--mh ...] [--scale S]\n"
               "                  [--seed N] [--steal-threshold S] [--node-fault-kill N@T]\n"
               "                  [--node-fault-straggle N@T:K] [--node-fault-seed N]\n"
               "                  [--screen] [--json F.json]\n"
               "  metadock tables [--which 6|7|8|9|all]\n"
               "\n"
               "multi-node campaign simulation (cluster):\n"
               "  --nodes N              simulated node count (default 8)\n"
               "  --mixed                1x jupiter : 3x hertz node pattern (default:\n"
               "                         every node is --node, default hertz)\n"
               "  --policy P             ligand distribution: static | static-prop |\n"
               "                         dynamic | stealing (default stealing)\n"
               "  --count N              synthetic library size (default 64)\n"
               "  --steal-threshold S    remaining-work level (virtual s) below which a\n"
               "                         stealing node solicits work (default 0 = auto)\n"
               "  --node-fault-kill N@T  kill node N at virtual time T s (comma list)\n"
               "  --node-fault-straggle N@T:K\n"
               "                         slow node N by factor K after T s (comma list)\n"
               "  --node-fault-seed N    seed for the node-fault schedule (default 1)\n"
               "  --screen               also dock the library (hit list bit-identical\n"
               "                         to single-node screen for every policy)\n"
               "  --json F.json          write the cluster report as JSON\n"
               "\n"
               "batch screening (screen):\n"
               "  --batch-size N         ligands docked per batch; the JSONL stream is\n"
               "                         flushed at every batch boundary (default 64)\n"
               "  --top-percent P        retain only the best P%% of the library in the\n"
               "                         ranked hit list, streaming min-heap, 0 < P <= 100\n"
               "                         (default 100)\n"
               "  --hits-jsonl F.jsonl   stream one hit record per docked ligand (JSONL);\n"
               "                         required for --resume\n"
               "  --resume               skip ligands already recorded in --hits-jsonl\n"
               "                         (a torn trailing line is discarded); the final\n"
               "                         stream is byte-identical to an uninterrupted run\n"
               "\n"
               "serve:\n"
               "  --jobs-dir D           watch D for *.job.json files (renamed to .done /\n"
               "                         .failed after processing)\n"
               "  --drain                exit when no pending jobs remain\n"
               "  --poll-ms N            directory scan interval (default 200)\n"
               "  --stdin                read job-file paths from stdin, one per line\n"
               "  --max-jobs N           stop after N jobs (default unlimited)\n"
               "  SIGINT                 finishes the in-flight batch, flushes the JSONL\n"
               "                         stream and exits; interrupted jobs resume on the\n"
               "                         next run\n"
               "\n"
               "fault injection (dock and screen):\n"
               "  --fault-seed N         seed for the fault schedule (default 1)\n"
               "  --fault-kill D@T       kill device D at virtual time T s (comma list)\n"
               "  --fault-transient D@P  transient failure probability P on device D\n"
               "  --fault-straggle D@T:K slow device D by factor K after T s\n"
               "  --fault-retries N      retries per transient failure (default 3)\n"
               "  --fault-rebalance N    re-derive shares every N batches (default off)\n"
               "\n"
               "observability (dock and screen):\n"
               "  --trace-out F.json     Chrome trace_event JSON of the virtual-time run\n"
               "                         (open in chrome://tracing or ui.perfetto.dev)\n"
               "  --metrics-out F.json   counters/gauges/histograms summary\n"
               "                         (includes host.pairs_per_second, the real host\n"
               "                         scoring throughput)\n"
               "\n"
               "host scoring (dock and screen):\n"
               "  --scoring-impl I       auto|tiled|batched-scalar|batched-simd (default\n"
               "                         auto: the batched engine, SIMD when the CPU\n"
               "                         supports AVX2+FMA)\n"
               "  --simd-level L         auto|scalar|avx2|avx512 — instruction set for\n"
               "                         batched-simd (default auto: widest supported)\n"
               "  --score-cache N        share an N-entry score cache across the run;\n"
               "                         revisited conformations skip rescoring with\n"
               "                         bit-identical results (default 0 = off)\n"
               "\n"
               "batch dispatch (dock and screen):\n"
               "  --overlap on|off       double-buffered stream overlap per device slice\n"
               "                         (default on; off reproduces the fully synchronous\n"
               "                         Algorithm 2 round; scores are bit-identical)\n"
               "  --cpu-tail-share F     fraction of each batch the host CPU scores\n"
               "                         concurrently with the GPU pipelines (default 0;\n"
               "                         requires --overlap on; 0 <= F < 1)\n");
  std::exit(2);
}

/// Splits "a,b,c" into pieces (no empties for an empty input).
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size() && !s.empty()) {
    const std::size_t comma = s.find(',', start);
    out.push_back(s.substr(start, comma == std::string::npos ? comma : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Parses "D@X" (and optionally "D@X:Y") fault entries.
void parse_fault_entry(const std::string& entry, const char* flag, int& device, double& x,
                       double* y = nullptr) {
  const std::size_t at = entry.find('@');
  if (at == std::string::npos || at == 0) usage((std::string(flag) + ": expected D@...").c_str());
  try {
    device = std::stoi(entry.substr(0, at));
    std::string rest = entry.substr(at + 1);
    const std::size_t colon = rest.find(':');
    if (y != nullptr) {
      if (colon == std::string::npos) {
        usage((std::string(flag) + ": expected D@T:K").c_str());
      }
      *y = std::stod(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    x = std::stod(rest);
  } catch (const std::exception&) {
    usage((std::string(flag) + ": malformed entry '" + entry + "'").c_str());
  }
}

/// Applies the --fault-* flags to the executor options.
void apply_fault_flags(const util::ArgParser& args, sched::ExecutorOptions& exec) {
  gpusim::FaultPlan plan;
  plan.set_seed(static_cast<std::uint64_t>(args.get("fault-seed", std::int64_t{1})));
  for (const std::string& e : split_list(args.get("fault-kill", std::string()))) {
    int d = 0;
    double t = 0.0;
    parse_fault_entry(e, "--fault-kill", d, t);
    plan.kill(d, t);
  }
  for (const std::string& e : split_list(args.get("fault-transient", std::string()))) {
    int d = 0;
    double p = 0.0;
    parse_fault_entry(e, "--fault-transient", d, p);
    plan.transient(d, p);
  }
  for (const std::string& e : split_list(args.get("fault-straggle", std::string()))) {
    int d = 0;
    double t = 0.0;
    double k = 1.0;
    parse_fault_entry(e, "--fault-straggle", d, t, &k);
    plan.straggle(d, t, k);
  }
  exec.fault_plan = plan;
  exec.fault_policy.max_retries = static_cast<int>(args.get("fault-retries", std::int64_t{3}));
  exec.fault_policy.rebalance_batches =
      static_cast<std::size_t>(args.get("fault-rebalance", std::int64_t{0}));
}

/// Applies --scoring-impl, --simd-level and --score-cache to the executor
/// options.
void apply_scoring_impl(const util::ArgParser& args, sched::ExecutorOptions& exec) {
  try {
    if (args.has("scoring-impl")) {
      exec.kernel.impl = scoring::scoring_impl_from(args.get("scoring-impl"));
    }
    if (args.has("simd-level")) {
      exec.kernel.simd_level = scoring::simd_level_from(args.get("simd-level"));
      if (!scoring::simd_level_supported(exec.kernel.simd_level)) {
        usage("--simd-level: this CPU/build does not support the requested level");
      }
    }
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  const auto cache = args.get("score-cache", std::int64_t{0});
  if (cache < 0) usage("--score-cache: entry count must be >= 0");
  exec.score_cache_capacity = static_cast<std::size_t>(cache);
}

/// Applies --overlap and --cpu-tail-share to the executor options.
void apply_dispatch_flags(const util::ArgParser& args, sched::ExecutorOptions& exec) {
  const std::string overlap = args.get("overlap", std::string("on"));
  if (overlap == "on") {
    exec.overlap = true;
  } else if (overlap == "off") {
    exec.overlap = false;
  } else {
    usage("--overlap: expected on|off");
  }
  const double tail = args.get("cpu-tail-share", 0.0);
  if (tail < 0.0 || tail >= 1.0) usage("--cpu-tail-share: expected 0 <= F < 1");
  if (tail > 0.0 && !exec.overlap) usage("--cpu-tail-share: requires --overlap on");
  exec.cpu_tail_share = tail;
}

/// True when either --trace-out or --metrics-out asks for an observer.
bool observability_requested(const util::ArgParser& args) {
  return args.has("trace-out") || args.has("metrics-out");
}

/// Writes the trace/metrics files requested on the command line.
void write_observability(const util::ArgParser& args, const obs::Observer& observer) {
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << observer.tracer.to_chrome_json() << '\n';
    std::printf("wrote %s (%zu spans)\n", path.c_str(), observer.tracer.size());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << observer.metrics.to_json() << '\n';
    std::printf("wrote %s\n", path.c_str());
  }
}

void print_fault_summary(const sched::FaultReport& f) {
  if (!f.any()) return;
  std::printf("faults: %llu transient (%llu retries), %llu device(s) lost, %llu re-splits, "
              "%llu rebalances, %.4f s lost%s\n",
              static_cast<unsigned long long>(f.transient_faults),
              static_cast<unsigned long long>(f.retries),
              static_cast<unsigned long long>(f.devices_lost),
              static_cast<unsigned long long>(f.resplits),
              static_cast<unsigned long long>(f.rebalances), f.time_lost_seconds,
              f.degraded_to_cpu ? " — degraded to CPU" : "");
}

mol::Dataset dataset_from(const std::string& name) {
  if (name == "2BSM") return mol::kDataset2BSM;
  if (name == "2BXG") return mol::kDataset2BXG;
  usage("unknown --dataset (expected 2BSM or 2BXG)");
}

sched::NodeConfig node_from(const std::string& name) {
  if (name == "hertz") return sched::hertz();
  if (name == "jupiter") return sched::jupiter();
  usage("unknown --node (expected hertz or jupiter)");
}

sched::Strategy strategy_from(const std::string& name) {
  if (name == "het") return sched::Strategy::kHeterogeneous;
  if (name == "hom") return sched::Strategy::kHomogeneous;
  if (name == "cpu") return sched::Strategy::kCpu;
  if (name == "coop") return sched::Strategy::kCooperative;
  usage("unknown --strategy (expected het, hom, cpu or coop)");
}

sched::DistributionPolicy policy_from(const std::string& name) {
  if (name == "static") return sched::DistributionPolicy::kStatic;
  if (name == "static-prop") return sched::DistributionPolicy::kStaticProportional;
  if (name == "dynamic") return sched::DistributionPolicy::kDynamic;
  if (name == "stealing") return sched::DistributionPolicy::kWorkStealing;
  usage("unknown --policy (expected static, static-prop, dynamic or stealing)");
}

meta::MetaheuristicParams mh_from(const std::string& name) {
  if (name == "M1") return meta::m1_genetic();
  if (name == "M2") return meta::m2_scatter_full();
  if (name == "M3") return meta::m3_scatter_light();
  if (name == "M4") return meta::m4_local_search();
  if (name == "SA") return meta::sa_annealing();
  if (name == "TS") return meta::tabu_search();
  usage("unknown --mh (expected M1, M2, M3, M4, SA or TS)");
}

int cmd_dock(const util::ArgParser& args) {
  const mol::Dataset ds = dataset_from(args.get("dataset", std::string("2BSM")));
  const mol::Molecule receptor = args.has("receptor")
                                     ? mol::read_pdb_file(args.get("receptor"))
                                     : mol::make_dataset_receptor(ds);
  mol::Molecule ligand = args.has("ligand") ? mol::read_pdb_file(args.get("ligand"))
                                            : mol::make_dataset_ligand(ds);
  ligand.center_at_origin();

  vs::ScreeningOptions options;
  options.params = mh_from(args.get("mh", std::string("M3")));
  options.exec.strategy = strategy_from(args.get("strategy", std::string("het")));
  options.scale = args.get("scale", 0.02);
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  apply_fault_flags(args, options.exec);
  apply_scoring_impl(args, options.exec);
  apply_dispatch_flags(args, options.exec);
  obs::Observer observer;
  if (observability_requested(args)) options.exec.observer = &observer;

  vs::VirtualScreeningEngine engine(receptor, node_from(args.get("node", std::string("hertz"))),
                                    options);
  std::printf("docking %s (%zu atoms) against %s (%zu atoms), %zu spots, %s/%s\n",
              ligand.name().c_str(), ligand.size(), receptor.name().c_str(), receptor.size(),
              engine.spots().size(), args.get("node", std::string("hertz")).c_str(),
              options.params.name.c_str());

  const auto n_conformers = args.get("conformers", std::int64_t{1});
  vs::LigandHit hit;
  if (n_conformers > 1) {
    mol::ConformerParams cp;
    cp.count = static_cast<std::size_t>(n_conformers);
    std::vector<double> per_conformer;
    hit = engine.dock_ensemble(ligand, cp, &per_conformer);
    std::printf("ensemble of %zu conformers; per-conformer best energies:", per_conformer.size());
    for (double e : per_conformer) std::printf(" %.2f", e);
    std::printf("\n");
  } else {
    hit = engine.dock(ligand);
  }
  std::printf("best energy %.4f kcal/mol at spot %d, pose (%.2f, %.2f, %.2f)\n",
              hit.best_score, hit.best_spot_id, static_cast<double>(hit.best_pose.position.x),
              static_cast<double>(hit.best_pose.position.y),
              static_cast<double>(hit.best_pose.position.z));
  std::printf("virtual time %.3f s, modeled energy %.0f J\n", hit.virtual_seconds,
              hit.energy_joules);
  print_fault_summary(hit.faults);
  write_observability(args, observer);

  if (args.has("out")) {
    mol::Molecule posed = ligand;
    posed.transform({hit.best_pose.orientation, hit.best_pose.position});
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    mol::write_complex_pdb(out, receptor, posed);
    std::printf("wrote %s\n", args.get("out").c_str());
  }
  return 0;
}

/// True once SIGINT fired; `serve` (and batched `screen`) finish the
/// in-flight batch, flush the stream and exit cleanly.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_sigint(int) { g_interrupted = 1; }

void install_sigint_handler() {
  g_interrupted = 0;
  std::signal(SIGINT, handle_sigint);
}

int cmd_screen(const util::ArgParser& args) {
  const mol::Dataset ds = dataset_from(args.get("dataset", std::string("2BSM")));
  const mol::Molecule receptor = args.has("receptor")
                                     ? mol::read_pdb_file(args.get("receptor"))
                                     : mol::make_dataset_receptor(ds);

  mol::LibraryParams lib;
  lib.count = static_cast<std::size_t>(args.get("count", std::int64_t{4}));
  lib.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
  const auto library = mol::make_ligand_library(lib);

  vs::ScreeningOptions options;
  options.params = mh_from(args.get("mh", std::string("M1")));
  options.params.population_per_spot = 16;
  options.exec.strategy = strategy_from(args.get("strategy", std::string("het")));
  options.scale = args.get("scale", 0.005);
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  apply_fault_flags(args, options.exec);
  apply_scoring_impl(args, options.exec);
  apply_dispatch_flags(args, options.exec);
  obs::Observer observer;
  if (observability_requested(args)) options.exec.observer = &observer;

  vs::VirtualScreeningEngine engine(receptor, node_from(args.get("node", std::string("hertz"))),
                                    options);

  // Batch mode: any batch flag routes the library through the batch
  // screener (JSONL streaming, top-N% retention, resume).  A plain screen
  // stays on the simple all-in-memory path.
  const bool batch_mode = args.has("batch-size") || args.has("top-percent") ||
                          args.has("hits-jsonl") || args.has("resume");
  std::vector<vs::LigandHit> hits;
  if (batch_mode) {
    install_sigint_handler();
    vs::BatchScreeningOptions batch;
    batch.batch_size = static_cast<std::size_t>(args.get("batch-size", std::int64_t{64}));
    batch.top_percent = args.get("top-percent", 100.0);
    batch.hits_path = args.get("hits-jsonl", std::string());
    batch.resume = args.has("resume");
    if (observability_requested(args)) batch.observer = &observer;
    batch.should_stop = [] { return g_interrupted != 0; };
    vs::BatchScreener screener(engine, batch);
    vs::BatchScreeningResult result = screener.run(library);
    std::printf("batch screening: %zu admitted, %zu completed (%zu new, %zu resumed), "
                "%zu retained (top %.1f%%)%s\n",
                result.admitted, result.completed, result.newly_docked, result.resumed_skips,
                result.retained.size(), batch.top_percent,
                result.interrupted ? " — INTERRUPTED (stream flushed, rerun with --resume)"
                                   : "");
    if (!batch.hits_path.empty()) std::printf("hits stream: %s\n", batch.hits_path.c_str());
    hits = std::move(result.retained);
  } else {
    hits = engine.screen(library);
  }

  util::Table t("Hit list");
  t.header({"rank", "ligand", "best energy", "spot", "virtual s"});
  int rank = 1;
  for (const vs::LigandHit& h : hits) {
    t.row({std::to_string(rank++), h.ligand_name, util::Table::num(h.best_score, 3),
           std::to_string(h.best_spot_id), util::Table::num(h.virtual_seconds, 3)});
  }
  t.print();
  sched::FaultReport screen_faults;
  for (const vs::LigandHit& h : hits) screen_faults.merge(h.faults);
  print_fault_summary(screen_faults);
  write_observability(args, observer);

  if (args.has("json")) {
    std::ofstream out(args.get("json"));
    if (!out) throw std::runtime_error("cannot open " + args.get("json"));
    out << vs::hits_to_json(receptor.name(), args.get("node", std::string("hertz")), hits)
        << '\n';
    std::printf("wrote %s\n", args.get("json").c_str());
  }
  return 0;
}

int cmd_serve(const util::ArgParser& args) {
  const bool use_stdin = args.has("stdin");
  const std::string jobs_dir = args.get("jobs-dir", std::string());
  if (use_stdin == !jobs_dir.empty()) {
    usage("serve: pass exactly one of --jobs-dir or --stdin");
  }
  install_sigint_handler();

  obs::Observer observer;
  vs::JobServerOptions options;
  options.jobs_dir = jobs_dir;
  options.drain = args.has("drain");
  options.poll_ms = static_cast<int>(args.get("poll-ms", std::int64_t{200}));
  options.max_jobs = static_cast<std::size_t>(args.get("max-jobs", std::int64_t{0}));
  options.observer = &observer;
  options.should_stop = [] { return g_interrupted != 0; };
  options.log = &std::cout;
  vs::JobServer server(options);

  if (use_stdin) {
    std::printf("serving jobs from stdin (one job-file path per line)\n");
  } else {
    std::printf("serving jobs from %s%s\n", jobs_dir.c_str(),
                options.drain ? " (drain mode)" : "");
  }
  const std::vector<vs::JobOutcome> outcomes =
      use_stdin ? server.serve_stream(std::cin) : server.serve_directory();

  std::size_t ok = 0, failed = 0, interrupted = 0;
  for (const vs::JobOutcome& o : outcomes) {
    if (!o.ok) {
      ++failed;
    } else if (o.interrupted) {
      ++interrupted;
    } else {
      ++ok;
    }
  }
  std::printf("serve: %zu job(s) completed, %zu failed, %zu interrupted%s\n", ok, failed,
              interrupted, g_interrupted != 0 ? " (SIGINT)" : "");
  write_observability(args, observer);
  return failed == 0 ? 0 : 1;
}

int cmd_cluster(const util::ArgParser& args) {
  const auto n_nodes = args.get("nodes", std::int64_t{8});
  if (n_nodes < 1) usage("--nodes: expected >= 1");
  const std::string base_node = args.get("node", std::string("hertz"));
  std::vector<sched::NodeConfig> nodes;
  nodes.reserve(static_cast<std::size_t>(n_nodes));
  for (std::int64_t i = 0; i < n_nodes; ++i) {
    nodes.push_back(args.has("mixed") ? (i % 4 == 0 ? sched::jupiter() : sched::hertz())
                                      : node_from(base_node));
  }

  const mol::Dataset ds = dataset_from(args.get("dataset", std::string("2BSM")));
  const mol::Molecule receptor = args.has("receptor")
                                     ? mol::read_pdb_file(args.get("receptor"))
                                     : mol::make_dataset_receptor(ds);
  mol::LibraryParams lib;
  lib.count = static_cast<std::size_t>(args.get("count", std::int64_t{64}));
  lib.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
  const auto library = mol::make_ligand_library(lib);

  vs::ScreeningOptions options;
  options.params = mh_from(args.get("mh", std::string("M3")));
  options.scale = args.get("scale", 0.01);
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));

  sched::ClusterOptions copt;
  copt.steal_threshold_s = args.get("steal-threshold", 0.0);
  copt.node_faults.set_seed(
      static_cast<std::uint64_t>(args.get("node-fault-seed", std::int64_t{1})));
  for (const std::string& e : split_list(args.get("node-fault-kill", std::string()))) {
    int n = 0;
    double t = 0.0;
    parse_fault_entry(e, "--node-fault-kill", n, t);
    copt.node_faults.kill(n, t);
  }
  for (const std::string& e : split_list(args.get("node-fault-straggle", std::string()))) {
    int n = 0;
    double t = 0.0;
    double k = 1.0;
    parse_fault_entry(e, "--node-fault-straggle", n, t, &k);
    copt.node_faults.straggle(n, t, k);
  }
  obs::Observer observer;
  if (observability_requested(args)) copt.observer = &observer;

  vs::VirtualScreeningEngine engine(receptor, node_from(base_node), options);
  vs::ClusterScreener screener(engine, nodes, copt);
  const sched::DistributionPolicy policy =
      policy_from(args.get("policy", std::string("stealing")));

  std::printf("simulating a %lld-node %s cluster, %zu-ligand library, policy %s\n",
              static_cast<long long>(n_nodes), args.has("mixed") ? "mixed" : base_node.c_str(),
              library.size(), sched::policy_name(policy).data());

  sched::ClusterReport report;
  if (args.has("screen")) {
    const vs::ClusterScreeningResult result = screener.screen(library, policy);
    report = result.report;
    util::Table hits("Hit list (bit-identical to single-node screen)");
    hits.header({"rank", "ligand", "best energy", "spot", "docked on"});
    int rank = 1;
    for (const vs::LigandHit& h : result.hits) {
      hits.row({std::to_string(rank++), h.ligand_name, util::Table::num(h.best_score, 3),
                std::to_string(h.best_spot_id),
                "node " + std::to_string(report.docked_on[h.ligand_index])});
    }
    hits.print();
  } else {
    report = screener.estimate(library, policy);
  }

  util::Table t("Per-node campaign attribution");
  t.header({"node", "ligands", "busy s", "last result s"});
  for (std::size_t n = 0; n < report.node_seconds.size(); ++n) {
    t.row({std::to_string(n), std::to_string(report.ligands_per_node[n]),
           util::Table::num(report.node_busy_seconds[n], 3),
           util::Table::num(report.node_seconds[n], 3)});
  }
  t.print();
  std::printf("makespan %.3f s, comm %.3f s, balance %.2f, %llu messages\n",
              report.makespan_seconds, report.comm_seconds, report.balance_efficiency,
              static_cast<unsigned long long>(report.messages.total_count()));
  if (report.steals + report.failed_steals + report.handoffs > 0) {
    std::printf("steals: %zu granted (%zu ligands, %zu in-flight handoffs), %zu came up empty\n",
                report.steals, report.stolen_ligands, report.handoffs, report.failed_steals);
  }
  if (report.nodes_lost > 0) {
    std::printf("faults: %zu node(s) lost, %zu ligand(s) reassigned, %zu re-docked\n",
                report.nodes_lost, report.reassigned_ligands, report.redocked_ligands);
  }
  write_observability(args, observer);

  if (args.has("json")) {
    util::JsonWriter jw;
    jw.begin_object();
    jw.key("nodes").value(static_cast<std::uint64_t>(report.node_seconds.size()));
    jw.key("policy").value(std::string(sched::policy_name(report.policy)));
    jw.key("ligands").value(static_cast<std::uint64_t>(library.size()));
    jw.key("makespan_seconds").value(report.makespan_seconds);
    jw.key("comm_seconds").value(report.comm_seconds);
    jw.key("balance_efficiency").value(report.balance_efficiency);
    jw.key("messages").value(report.messages.total_count());
    jw.key("steals").value(static_cast<std::uint64_t>(report.steals));
    jw.key("stolen_ligands").value(static_cast<std::uint64_t>(report.stolen_ligands));
    jw.key("handoffs").value(static_cast<std::uint64_t>(report.handoffs));
    jw.key("failed_steals").value(static_cast<std::uint64_t>(report.failed_steals));
    jw.key("nodes_lost").value(static_cast<std::uint64_t>(report.nodes_lost));
    jw.key("reassigned_ligands").value(static_cast<std::uint64_t>(report.reassigned_ligands));
    jw.key("redocked_ligands").value(static_cast<std::uint64_t>(report.redocked_ligands));
    jw.key("node_seconds").begin_array();
    for (double s : report.node_seconds) jw.value(s);
    jw.end_array();
    jw.key("node_busy_seconds").begin_array();
    for (double s : report.node_busy_seconds) jw.value(s);
    jw.end_array();
    jw.key("ligands_per_node").begin_array();
    for (std::size_t c : report.ligands_per_node) jw.value(static_cast<std::uint64_t>(c));
    jw.end_array();
    jw.end_object();
    std::ofstream out(args.get("json"));
    if (!out) throw std::runtime_error("cannot open " + args.get("json"));
    out << jw.str() << '\n';
    std::printf("wrote %s\n", args.get("json").c_str());
  }
  return 0;
}

int cmd_tables(const util::ArgParser& args) {
  const std::string which = args.get("which", std::string("all"));
  if (which == "6" || which == "all") {
    vs::print_experiment_table(vs::run_jupiter_table(mol::kDataset2BSM));
  }
  if (which == "7" || which == "all") {
    vs::print_experiment_table(vs::run_jupiter_table(mol::kDataset2BXG));
  }
  if (which == "8" || which == "all") {
    vs::print_experiment_table(vs::run_hertz_table(mol::kDataset2BSM));
  }
  if (which == "9" || which == "all") {
    vs::print_experiment_table(vs::run_hertz_table(mol::kDataset2BXG));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    if (args.positionals().empty()) usage();
    const std::string cmd = args.positionals().front();
    if (cmd == "dock") return cmd_dock(args);
    if (cmd == "screen") return cmd_screen(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "cluster") return cmd_cluster(args);
    if (cmd == "tables") return cmd_tables(args);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metadock: %s\n", e.what());
    return 1;
  }
}
