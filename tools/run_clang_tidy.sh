#!/usr/bin/env bash
# Run clang-tidy over src/ and diff the findings against the committed
# baseline (tools/clang_tidy_baseline.txt).  Any finding not in the
# baseline fails the check; baseline entries that no longer fire are
# reported so the baseline can shrink.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir: a configured build tree containing compile_commands.json
#              (default: build).  CMAKE_EXPORT_COMPILE_COMMANDS is ON
#              globally, so any preset works.
#
# Exit codes:
#   0  clean (no findings beyond the baseline)
#   1  new findings
#   77 clang-tidy or compile_commands.json unavailable (CTest SKIP)
#
# The container used for CI does not ship clang-tidy; the 77 path keeps
# the CTest entry green-as-skipped there while developer machines with
# LLVM installed get the full gate.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
baseline="$repo_root/tools/clang_tidy_baseline.txt"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
  echo "run_clang_tidy: clang-tidy not found on PATH — skipping (install LLVM to enable)"
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing — configure a build first" >&2
  exit 77
fi

cd "$repo_root"

# src/ translation units only; headers are pulled in via HeaderFilterRegex.
mapfile -t tus < <(git ls-files 'src/*.cpp' 2>/dev/null || find src -name '*.cpp' | sort)
if [ "${#tus[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no src/ translation units found" >&2
  exit 77
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "run_clang_tidy: checking ${#tus[@]} translation units with $("$tidy" --version | head -1)"
# clang-tidy exits non-zero when it emits warnings; we parse instead.
"$tidy" -p "$build_dir" --quiet "${tus[@]}" > "$raw" 2>/dev/null || true

# Normalize "/abs/path/file.cpp:12:3: warning: ... [check-name]" into
# "relative/path/file.cpp:check-name" so line drift doesn't churn the
# baseline.
normalize() {
  sed -n 's|^\('"$repo_root"'/\)\{0,1\}\([^:]*\):[0-9]*:[0-9]*: warning: .*\[\([a-z0-9.,-]*\)\]$|\2:\3|p' "$1" | sort -u
}

current="$(normalize "$raw")"
allowed="$(grep -v '^[[:space:]]*#' "$baseline" | grep -v '^[[:space:]]*$' | sort -u || true)"

new="$(comm -23 <(printf '%s\n' "$current" | sed '/^$/d') \
               <(printf '%s\n' "$allowed" | sed '/^$/d'))"
stale="$(comm -13 <(printf '%s\n' "$current" | sed '/^$/d') \
                 <(printf '%s\n' "$allowed" | sed '/^$/d'))"

if [ -n "$stale" ]; then
  echo "run_clang_tidy: note — baseline entries that no longer fire (consider removing):"
  printf '  %s\n' $stale
fi

if [ -n "$new" ]; then
  echo "run_clang_tidy: FAIL — findings not in the baseline:" >&2
  printf '  %s\n' $new >&2
  echo "(fix them, or append to tools/clang_tidy_baseline.txt with justification)" >&2
  exit 1
fi

echo "run_clang_tidy: OK — no findings beyond the baseline"
