#!/usr/bin/env sh
# Repo hygiene gate: build artifacts must never be committed.
#
# Fails when any tracked path lives under a build directory (build/,
# build-asan/, build-*/ at any depth) or is an object/archive file.  Runs
# as a CTest test (see tools/CMakeLists.txt); outside a git checkout (e.g.
# a source tarball) it skips instead of failing.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  echo "check_repo_hygiene: not a git checkout, skipping"
  exit 0
fi

bad="$(git ls-files -- 'build/*' 'build-*/*' '*/build/*' '*/build-*/*' \
  '*.o' '*.obj' '*.a' || true)"

if [ -n "$bad" ]; then
  echo "check_repo_hygiene: FAIL — build artifacts are tracked by git:" >&2
  echo "$bad" | head -20 >&2
  n="$(echo "$bad" | wc -l)"
  echo "($n tracked artifact(s); untrack with 'git rm -r --cached <path>'" >&2
  echo " and keep build directories in .gitignore)" >&2
  exit 1
fi

# The static-analysis configuration must stay tracked: deleting .clang-tidy
# or the suppression baseline would silently disable the clang-tidy gate
# (run_clang_tidy.sh diffs against the baseline, and an absent file reads
# as "no suppressions" on machines without the checkout history).  The same
# goes for the thread-safety gate: losing the annotation shim, the
# must-fail fixture, or the CI workflow would turn the lock-discipline
# check (DESIGN.md §16) into a silent no-op.
missing=""
for f in .clang-tidy tools/clang_tidy_baseline.txt \
         src/util/thread_annotations.h src/util/sync.h \
         tools/run_thread_safety.sh \
         tools/thread_safety_fixtures/broken_unlocked_access.cpp \
         tools/thread_safety_fixtures/clean_guarded_access.cpp \
         .github/workflows/checks.yml; do
  if ! git ls-files --error-unmatch "$f" > /dev/null 2>&1; then
    missing="$missing $f"
  fi
done
if [ -n "$missing" ]; then
  echo "check_repo_hygiene: FAIL — static-analysis config not tracked by git:$missing" >&2
  echo "(git add the file(s); the clang-tidy gate depends on them)" >&2
  exit 1
fi

echo "check_repo_hygiene: OK — no tracked build artifacts; static-analysis config tracked"
