#!/usr/bin/env sh
# Repo hygiene gate: build artifacts must never be committed.
#
# Fails when any tracked path lives under a build directory (build/,
# build-asan/, build-*/ at any depth) or is an object/archive file.  Runs
# as a CTest test (see tools/CMakeLists.txt); outside a git checkout (e.g.
# a source tarball) it skips instead of failing.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  echo "check_repo_hygiene: not a git checkout, skipping"
  exit 0
fi

bad="$(git ls-files -- 'build/*' 'build-*/*' '*/build/*' '*/build-*/*' \
  '*.o' '*.obj' '*.a' || true)"

if [ -n "$bad" ]; then
  echo "check_repo_hygiene: FAIL — build artifacts are tracked by git:" >&2
  echo "$bad" | head -20 >&2
  n="$(echo "$bad" | wc -l)"
  echo "($n tracked artifact(s); untrack with 'git rm -r --cached <path>'" >&2
  echo " and keep build directories in .gitignore)" >&2
  exit 1
fi

echo "check_repo_hygiene: OK — no tracked build artifacts"
