#!/usr/bin/env bash
# One-shot driver for every correctness-tooling gate:
#
#   1. repo hygiene        (tools/check_repo_hygiene.sh)
#   2. metadock-lint       (determinism invariants over src/)
#   3. metadock-lint selftest (fixture trees)
#   4. BENCH schema        (committed BENCH_scoring.json vs check_bench_scoring.py)
#   5. clang-tidy baseline (skipped when LLVM is absent)
#
# These are the same checks CTest runs under `ctest -L static_analysis`;
# this script exists so they can run without a configured build tree
# (clang-tidy, which needs compile_commands.json, degrades to a skip).
#
# Usage: tools/run_checks.sh [build-dir]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
fail=0
skip=0

run() {
  name="$1"; shift
  echo "==> $name"
  "$@"
  code=$?
  if [ "$code" -eq 77 ]; then
    echo "==> $name: SKIPPED"
    skip=$((skip + 1))
  elif [ "$code" -ne 0 ]; then
    echo "==> $name: FAILED (exit $code)" >&2
    fail=$((fail + 1))
  else
    echo "==> $name: OK"
  fi
  echo
}

run "repo hygiene"            "$repo_root/tools/check_repo_hygiene.sh"
run "metadock-lint (src/)"    python3 "$repo_root/tools/metadock_lint.py" --root "$repo_root"
run "metadock-lint selftest"  python3 "$repo_root/tools/test_metadock_lint.py"
run "BENCH_scoring schema"    python3 "$repo_root/tools/check_bench_scoring.py" "$repo_root/BENCH_scoring.json"
run "clang-tidy baseline"     "$repo_root/tools/run_clang_tidy.sh" "$build_dir"

if [ "$fail" -ne 0 ]; then
  echo "run_checks: $fail check(s) FAILED ($skip skipped)" >&2
  exit 1
fi
echo "run_checks: all checks passed ($skip skipped)"
