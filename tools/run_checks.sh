#!/usr/bin/env bash
# One-shot driver for every correctness-tooling gate:
#
#   1. repo hygiene        (tools/check_repo_hygiene.sh)
#   2. metadock-lint       (determinism invariants over src/)
#   3. metadock-lint selftest (fixture trees)
#   4. BENCH schemas       (committed BENCH_scoring.json / BENCH_cluster.json
#                           vs their tools/check_bench_*.py validators)
#   5. clang-tidy baseline (skipped when LLVM is absent)
#   6. thread-safety gate  (fixture self-check + whole-tree clang build under
#                           -Wthread-safety; skipped when clang is absent)
#   7. serve smoke         (metadock serve drains a 3-job directory; skipped
#                           when the CLI is not built)
#
# These are the same checks CTest runs under `ctest -L static_analysis`;
# this script exists so they can run without a configured build tree
# (clang-tidy, which needs compile_commands.json, degrades to a skip).
#
# Usage: tools/run_checks.sh [build-dir]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
fail=0
skip=0

run() {
  name="$1"; shift
  echo "==> $name"
  "$@"
  code=$?
  if [ "$code" -eq 77 ]; then
    echo "==> $name: SKIPPED"
    skip=$((skip + 1))
  elif [ "$code" -ne 0 ]; then
    echo "==> $name: FAILED (exit $code)" >&2
    fail=$((fail + 1))
  else
    echo "==> $name: OK"
  fi
  echo
}

# End-to-end smoke of the batch-screening service (DESIGN.md §14): drain a
# directory of three tiny jobs and require every job file renamed `.done`
# with a hits stream beside it.
serve_smoke() {
  bin="$build_dir/tools/metadock"
  if [ ! -x "$bin" ]; then
    echo "serve smoke: $bin not built; skipping"
    return 77
  fi
  dir="$(mktemp -d)" || return 1
  for i in 1 2 3; do
    printf '%s\n' '{"ligands": 2, "min_atoms": 8, "max_atoms": 12, "receptor_atoms": 300, "scale": 0.002, "batch_size": 2, "population_per_spot": 8}' \
      > "$dir/job$i.job.json"
  done
  "$bin" serve --jobs-dir "$dir" --drain > /dev/null
  code=$?
  done_count=$(find "$dir" -name '*.job.json.done' | wc -l)
  hits_count=$(find "$dir" -name '*.hits.jsonl' | wc -l)
  rm -rf "$dir"
  if [ "$code" -ne 0 ] || [ "$done_count" -ne 3 ] || [ "$hits_count" -ne 3 ]; then
    echo "serve smoke: exit $code, $done_count/3 done, $hits_count/3 hit streams" >&2
    return 1
  fi
}

run "repo hygiene"            "$repo_root/tools/check_repo_hygiene.sh"
run "metadock-lint (src/)"    python3 "$repo_root/tools/metadock_lint.py" --root "$repo_root"
run "metadock-lint selftest"  python3 "$repo_root/tools/test_metadock_lint.py"
run "BENCH_scoring schema"    python3 "$repo_root/tools/check_bench_scoring.py" "$repo_root/BENCH_scoring.json"
run "BENCH_cluster schema"    python3 "$repo_root/tools/check_bench_cluster.py" "$repo_root/BENCH_cluster.json"
run "clang-tidy baseline"     "$repo_root/tools/run_clang_tidy.sh" "$build_dir"
run "thread-safety (clang)"   "$repo_root/tools/run_thread_safety.sh"
run "serve smoke (3 jobs)"    serve_smoke

if [ "$fail" -ne 0 ]; then
  echo "run_checks: $fail check(s) FAILED ($skip skipped)" >&2
  exit 1
fi
echo "run_checks: all checks passed ($skip skipped)"
