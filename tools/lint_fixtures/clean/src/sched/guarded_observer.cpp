// Fixture: every sanctioned null-guard idiom for obs::Observer* handles.
// Expected: zero findings.

namespace metadock::obs {
struct FixtureMetrics {
  void bump() {}
};
struct Observer {
  FixtureMetrics metrics;
};
}  // namespace metadock::obs

namespace metadock::sched {

struct FixtureOptions {
  obs::Observer* observer = nullptr;
};

void binding_guard(const FixtureOptions& options) {
  if (obs::Observer* o = options.observer) {
    o->metrics.bump();
  }
}

void early_return_guard(obs::Observer* observer) {
  if (observer == nullptr) return;
  observer->metrics.bump();
}

void plain_if_guard(obs::Observer* observer) {
  if (observer != nullptr) {
    observer->metrics.bump();
  }
}

struct Emitter {
  obs::Observer* obs_ = nullptr;
  void emit() {
    if (obs_ != nullptr) {
      obs_->metrics.bump();
    }
  }
};

}  // namespace metadock::sched
