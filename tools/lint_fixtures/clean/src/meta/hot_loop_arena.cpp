// Fixture: the sanctioned hot-loop idiom — storage bound outside the
// markers, only span writes inside, and a justified allow() for the one
// deliberate exception.  Identifiers merely *containing* banned words
// (renewal, vector_view) must not trip the rule.  Expected: zero findings.
#include <cstddef>
#include <span>
#include <vector>

namespace metadock::meta {

void generation_arena_fixture(std::span<double> scratch, int generations) {
  std::vector<double> setup(scratch.size());  // fine: before hot-begin
  setup.reserve(scratch.size() * 2);          // fine: before hot-begin
  // metadock-lint: hot-begin(generation-loop)
  double renewal = 0.0;  // contains "new" inside an identifier: no finding
  for (int gen = 0; gen < generations; ++gen) {
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      scratch[i] = renewal + static_cast<double>(gen);
    }
    // One sanctioned growth call, justified and suppressed:
    // metadock-lint: allow(MDL007) one-time spill recorded outside steady state
    setup.push_back(scratch[0]);
  }
  // metadock-lint: hot-end
  setup.resize(scratch.size());  // fine: after hot-end

  // A second region on the same file re-arms the scan cleanly.
  // metadock-lint: hot-begin(include-merge)
  for (std::size_t i = 0; i < scratch.size(); ++i) scratch[i] *= 0.5;
  // metadock-lint: hot-end
}

}  // namespace metadock::meta
