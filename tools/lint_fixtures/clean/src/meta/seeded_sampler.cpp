// Fixture: the sanctioned randomness idiom — a counter-based stream
// derived from the run seed, so the trajectory is schedule-independent.
// Expected: zero findings.
#include <cstdint>

namespace metadock::util {
struct StreamFixture {
  std::uint64_t state;
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};
inline StreamFixture stream(std::uint64_t seed, std::uint64_t key) {
  return StreamFixture{seed ^ (key * 0x9e3779b97f4a7c15ULL)};
}
}  // namespace metadock::util

namespace metadock::meta {

double mutate_seeded(std::uint64_t run_seed, std::uint64_t individual, double value) {
  util::StreamFixture rng = util::stream(run_seed, individual);
  return value + rng.uniform();
}

}  // namespace metadock::meta
