// Fixture: util/ is not a simulator layer, so wall clocks are fine here
// (this is where the real WallTimer lives).  MDL002's RNG ban still
// applies repo-wide, so only the clock appears.
// Expected: zero findings.
#include <chrono>

namespace metadock::util {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace metadock::util
