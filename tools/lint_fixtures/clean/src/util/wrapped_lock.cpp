// Fixture: the sanctioned escape hatch for MDL010 — a raw primitive with
// an explicit allow() pragma and a reason (the one legitimate shape: an
// FFI boundary that must hand a native handle to C code).
// Expected: no findings.
#include <mutex>

namespace metadock::util {

struct NativeHandoff {
  // metadock-lint: allow(raw-lock-primitive) C API consumes the native handle
  std::mutex mu;
};

}  // namespace metadock::util
