// Fixture: the sanctioned raw-clock-advance site — the stream-merging
// helper itself, which re-aligns every timeline right after the bump and
// says so with an allow() pragma.
// Expected: zero findings.

namespace metadock::gpusim {

class Widget {
 public:
  void sync() {
    // metadock-lint: allow(raw-clock-advance) sync() is the merge point
    clock_.advance_ns(cursor_ - clock_ns_);
    cursor_ = clock_ns_;
    // metadock-lint: allow(MDL008) advance helper re-aligns the timelines
    clock_.advance_seconds(0.0);
  }

 private:
  struct Clock {
    void advance_seconds(double) {}
    void advance_ns(unsigned long long) {}
  } clock_;
  unsigned long long cursor_ = 0;
  unsigned long long clock_ns_ = 0;
};

}  // namespace metadock::gpusim
