// Fixture: the one legitimate wall-clock use in a simulator layer —
// measuring real host throughput for observability, never feeding results
// — carries an allow() pragma with its reason.
// Expected: zero findings.
#include <chrono>

namespace metadock::gpusim {

double host_throughput_probe() {
  // metadock-lint: allow(wall-clock) host-throughput metrics only
  const auto t0 = std::chrono::steady_clock::now();
  double work = 0.0;
  for (int i = 0; i < 100; ++i) work += static_cast<double>(i);
  // metadock-lint: allow(MDL001) host-throughput metrics only
  const auto t1 = std::chrono::steady_clock::now();
  return work + std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace metadock::gpusim
