// Fixture: the sanctioned accumulation direction — per-pair float terms
// summed into a double accumulator, matching the scalar and AVX2 kernels.
// Expected: zero findings.
#include <cstddef>

namespace metadock::scoring {

double tile_energy(const float* r2, std::size_t n) {
  double energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float inv2 = 1.0f / r2[i];
    const float inv6 = inv2 * inv2 * inv2;
    float pair = inv6 * inv6 - inv6;
    pair += inv2 * 0.25f;
    energy += pair;
  }
  return energy;
}

}  // namespace metadock::scoring
