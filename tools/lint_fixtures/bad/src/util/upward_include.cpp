// Fixture: util (the base layer) reaching up into sched.  The layering
// DAG (ALLOWED_DEPS) lets util include nothing, so this edge is rejected.
// Expected: MDL009 at the include line.
#include "sched/indirect_clock.h"

namespace metadock::util {

int upward() { return 2; }

}  // namespace metadock::util
