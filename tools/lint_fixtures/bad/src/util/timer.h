// Fixture: stand-in for the real util/timer.h wall-clock header.  util/ is
// not a simulator layer, so this file itself is clean — the violation is
// *reaching* it from sched/ (see indirect_clock.h / uses_indirect.cpp).
#pragma once

namespace metadock::util {
struct WallTimerFixture {};
}  // namespace metadock::util
