// Fixture: library code reaching into the test tree.
// Expected: MDL006 at the include line.
#include "testing/fixtures.h"

namespace metadock::vs {

int uses_fixture() { return 0; }

}  // namespace metadock::vs
