// Fixture: raw device-clock bumps in the device model — the stream
// cursors and engine timelines never hear about them, so sync() would
// report a clock ahead of every stream.
// Expected: MDL008 at both marked lines.

namespace metadock::gpusim {

class Widget {
 public:
  void skip_ahead(double s) {
    clock_.advance_seconds(s);                     // BAD: MDL008
    clock_.advance_ns(1'000'000);                  // BAD: MDL008
  }

 private:
  struct Clock {
    void advance_seconds(double) {}
    void advance_ns(unsigned long long) {}
  } clock_;
};

}  // namespace metadock::gpusim
