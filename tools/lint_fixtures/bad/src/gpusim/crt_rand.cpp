// Fixture: C RNG in the device simulator — globally seeded state, not
// reproducible across threads or runs.
// Expected: MDL002 at both marked lines.
#include <cstdlib>

namespace metadock::gpusim {

double jitter_launch() {
  srand(42);                                       // BAD: MDL002
  return static_cast<double>(rand()) / 32768.0;    // BAD: MDL002
}

}  // namespace metadock::gpusim
