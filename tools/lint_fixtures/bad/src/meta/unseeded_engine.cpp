// Fixture: ambient randomness inside the metaheuristic layer.  Both the
// entropy source and the engine are banned: results would differ per run
// (random_device) and per scheduling (a shared mt19937 stream).
// Expected: MDL002 (random_device) and MDL003 (mt19937).
#include <random>

namespace metadock::meta {

double mutate_unseeded(double value) {
  std::random_device entropy;                 // BAD: MDL002
  std::mt19937 engine(entropy());             // BAD: MDL003
  return value + static_cast<double>(engine() % 7);
}

}  // namespace metadock::meta
