// Fixture: heap growth inside a marked hot region.  The generation loop
// is allocation-free by contract (DESIGN.md §12) — every construct below
// either calls an allocator or declares a container that owns one.
// Expected: MDL007 on the new-expression, the malloc, the std::vector
// declaration, and the push_back; nothing outside the markers fires.
#include <cstdlib>
#include <vector>

namespace metadock::meta {

void generation_fixture(std::vector<double>& out, int generations) {
  std::vector<double> warmup(8);  // fine: before hot-begin
  // metadock-lint: hot-begin(generation-loop)
  for (int gen = 0; gen < generations; ++gen) {
    double* scratch = new double[16];          // BAD: MDL007
    void* raw = std::malloc(64);               // BAD: MDL007
    std::vector<double> children;              // BAD: MDL007
    out.push_back(scratch[0]);                 // BAD: MDL007
    std::free(raw);
    delete[] scratch;
  }
  // metadock-lint: hot-end
  out.resize(warmup.size());  // fine: after hot-end
}

}  // namespace metadock::meta
