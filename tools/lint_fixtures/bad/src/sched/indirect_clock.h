// Fixture: a sched header that pulls the wall-clock timer in directly.
// Expected: MDL001 at the include line.
#pragma once

#include "util/timer.h"

namespace metadock::sched {
using WallHandle = util::WallTimerFixture;
}  // namespace metadock::sched
