// Fixture: obs::Observer* dereferenced without a null guard.  Observers
// are nullable by contract (nullptr = observability off), so this crashes
// every unobserved run.
// Expected: MDL005 at both marked lines.

namespace metadock::obs {
struct FixtureMetrics {
  void bump() {}
};
struct Observer {
  FixtureMetrics metrics;
};
}  // namespace metadock::obs

namespace metadock::sched {

struct FixtureOptions {
  obs::Observer* observer = nullptr;
};

void record_batch(const FixtureOptions& options, obs::Observer* observer) {
  options.observer->metrics.bump();  // BAD: MDL005
  observer->metrics.bump();          // BAD: MDL005
}

}  // namespace metadock::sched
