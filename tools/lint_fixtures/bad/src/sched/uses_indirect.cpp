// Fixture: no clock named anywhere in this TU — the wall clock arrives
// through the include graph (indirect_clock.h -> util/timer.h).
// Expected: MDL001 at the include line (transitive).
#include "sched/indirect_clock.h"

namespace metadock::sched {

int uses_indirect() { return 1; }

}  // namespace metadock::sched
