// Fixture: a scheduler timing its partition decision with a wall clock —
// the canonical determinism break (split depends on host speed).
// Expected: MDL001 at both marked lines.
#include <chrono>

namespace metadock::sched {

double measure_partition() {
  const auto t0 = std::chrono::steady_clock::now();  // BAD: MDL001
  double work = 0.0;
  for (int i = 0; i < 1000; ++i) work += static_cast<double>(i);
  const auto t1 = std::chrono::high_resolution_clock::now();  // BAD: MDL001
  return std::chrono::duration<double>(t1 - t0).count() + work;
}

}  // namespace metadock::sched
