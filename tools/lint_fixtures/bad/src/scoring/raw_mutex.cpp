// Fixture: raw standard lock primitives instead of the util/sync.h
// capability wrappers — clang -Wthread-safety cannot see the critical
// sections they form.  Expected: MDL010 on each primitive line.
#include <condition_variable>
#include <mutex>

namespace metadock::scoring {

struct RawLocked {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic_flag busy = ATOMIC_FLAG_INIT;
};

void touch(RawLocked& r) {
  std::lock_guard<std::mutex> lock(r.mu);
  r.cv.notify_one();
}

}  // namespace metadock::scoring
