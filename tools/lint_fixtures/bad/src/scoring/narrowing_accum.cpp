// Fixture: a float accumulator fed double-typed terms in a scoring TU.
// The kernels' contract is float pair terms accumulated into double;
// narrowing per-term makes the scalar and SIMD paths diverge.
// Expected: MDL004 at both marked lines.
#include <cstddef>

namespace metadock::scoring {

float tile_energy(const float* r2, std::size_t n) {
  float energy = 0.0f;
  double correction = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    energy += correction / r2[i];  // BAD: MDL004 (double variable)
    energy += 0.5 * r2[i];         // BAD: MDL004 (double literal)
  }
  return energy;
}

}  // namespace metadock::scoring
