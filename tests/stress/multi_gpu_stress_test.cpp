// Race-stress harness for MultiGpuBatchScorer under concurrent execution
// (run under the tsan preset; also part of the plain-test tier).
//
// A scorer instance is single-threaded by contract, but production runs
// many of them at once: one per node of a screening campaign, all feeding
// one obs::Observer, all pushing their numeric work through the shared
// ThreadPool::global().  This harness runs several scorers on concurrent
// host threads — 4 simulated devices each, mid-batch device death and
// transient kernel faults injected so retries, quarantines and re-splits
// race the observer's tracer/metrics emission — and then asserts the two
// determinism invariants:
//
//   1. per-pose energies are bit-for-bit equal to the single-threaded
//      fault-free reference, no matter how slices were re-split around
//      faults or interleaved across host threads;
//   2. the shared observer's counters add up exactly (no lost or torn
//      updates across threads).
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "cpusim/cpu_spec.h"
#include "gpusim/fault_plan.h"
#include "gpusim/runtime.h"
#include "mol/synth.h"
#include "obs/observer.h"
#include "scoring/batch_engine.h"
#include "scoring/lennard_jones.h"
#include "sched/multi_gpu.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace metadock::sched {
namespace {

constexpr std::size_t kDevices = 4;
constexpr std::size_t kThreads = 4;
constexpr int kBatches = 6;

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  Fixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 160;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 9;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

/// Per-device busy seconds of one fault-free batch sequence under the same
/// split mode, used to aim the injected deaths mid-slice.
std::vector<double> clean_busy_seconds(const Fixture& f,
                                       const std::vector<scoring::Pose>& poses,
                                       bool dynamic) {
  gpusim::Runtime rt = testing::mixed_node_runtime({}, kDevices);
  MultiGpuOptions opt;
  opt.dynamic = dynamic;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  std::vector<double> out(poses.size());
  for (int b = 0; b < kBatches; ++b) mgs.evaluate(poses, out);
  std::vector<double> busy(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    busy[d] = rt.device(static_cast<int>(d)).busy_seconds();
  }
  return busy;
}

struct StressOutcome {
  std::vector<double> scores;
  FaultReport faults;
};

/// One thread's workload: a 4-device node with its own fault schedule, all
/// threads sharing `observer`.
StressOutcome run_node(const Fixture& f, const std::vector<scoring::Pose>& poses,
                       std::size_t tid, double death_at, bool dynamic,
                       obs::Observer* observer) {
  gpusim::FaultPlan plan(1000 + tid);
  plan.kill(static_cast<int>(tid % kDevices), death_at);
  plan.transient(static_cast<int>((tid + 1) % kDevices), 0.3);
  gpusim::Runtime rt = testing::mixed_node_runtime(plan, kDevices);

  MultiGpuOptions opt;
  opt.faults.max_retries = 8;
  opt.dynamic = dynamic;
  opt.cpu_fallback = cpusim::xeon_e5_2620_dual();
  opt.observer = observer;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);

  StressOutcome outcome;
  outcome.scores.resize(poses.size());
  for (int b = 0; b < kBatches; ++b) mgs.evaluate(poses, outcome.scores);
  outcome.faults = mgs.fault_report();
  return outcome;
}

class MultiGpuStress : public ::testing::TestWithParam<bool> {};

TEST_P(MultiGpuStress, ConcurrentFaultyNodesStayBitIdenticalAndCountersAddUp) {
  const bool dynamic = GetParam();
  Fixture f;
  const auto poses = random_poses(384, 7);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);
  const std::vector<double> busy = clean_busy_seconds(f, poses, dynamic);

  obs::Observer observer;
  std::vector<StressOutcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      // Kill each thread's victim mid-way through its expected work.
      const double death_at = 0.5 * busy[tid % kDevices];
      outcomes[tid] = run_node(f, poses, tid, death_at, dynamic, &observer);
    });
  }
  for (auto& t : threads) t.join();

  std::size_t devices_lost = 0;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    for (std::size_t i = 0; i < poses.size(); ++i) {
      ASSERT_DOUBLE_EQ(outcomes[tid].scores[i], expected[i])
          << "thread " << tid << " pose " << i;
    }
    // Death is detected lazily, at the next launch on the dead device.
    // Static shares hand every batch a slice on every alive device, so the
    // victim is always discovered; the cooperative queue may never route
    // another chunk to it (its clock can cross the boundary during a copy),
    // in which case the run correctly finishes without a quarantine.
    if (dynamic) {
      EXPECT_LE(outcomes[tid].faults.devices_lost, 1u) << "thread " << tid;
    } else {
      EXPECT_EQ(outcomes[tid].faults.devices_lost, 1u) << "thread " << tid;
    }
    devices_lost += outcomes[tid].faults.devices_lost;
  }

  // Shared-observer accounting: every quarantine/batch from every thread
  // must land exactly once.
  EXPECT_DOUBLE_EQ(observer.metrics.counter("sched.quarantines").value(),
                   static_cast<double>(devices_lost));
  EXPECT_DOUBLE_EQ(observer.metrics.counter("sched.batches").value(),
                   static_cast<double>(kThreads * kBatches));
  EXPECT_EQ(observer.metrics.histogram("sched.batch_barrier_seconds").count(),
            static_cast<std::size_t>(kThreads * kBatches));
}

INSTANTIATE_TEST_SUITE_P(StaticAndDynamic, MultiGpuStress, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "dynamic" : "static_shares";
                         });

TEST(MultiGpuStressTrace, SharedTracerSurvivesConcurrentEmissionAndExport) {
  Fixture f;
  const auto poses = random_poses(256, 11);
  const std::vector<double> busy = clean_busy_seconds(f, poses, false);

  obs::Observer observer;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      (void)run_node(f, poses, tid, 0.5 * busy[tid % kDevices], false, &observer);
    });
  }
  // Export the trace *while* the nodes are still emitting: serialization
  // racing emission is exactly what a live metrics endpoint does.
  for (int i = 0; i < 10; ++i) {
    (void)observer.tracer.to_chrome_json();
    (void)observer.metrics.to_json();
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(observer.tracer.size(), 0u);
  EXPECT_EQ(observer.tracer.dropped(), 0u);
}

}  // namespace
}  // namespace metadock::sched
