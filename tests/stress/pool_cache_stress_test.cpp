// Race-stress harness for the allocation layer of the hot loop: the
// sharded scoring::ScoreCache (the one genuinely shared-state object the
// PR adds) and util::Arena / thread_arena() (whose safety story is thread
// confinement — each thread churns its own arena, so TSan proves the
// claim that no cross-thread access exists rather than that locks cover
// it).  Runs in the plain tier and as the race gate under the tsan preset
// (`ctest -L stress`).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "geom/quat.h"
#include "meta/cached_evaluator.h"
#include "meta/evaluator.h"
#include "scoring/pose.h"
#include "scoring/score_cache.h"
#include "util/pool.h"
#include "util/rng.h"

namespace metadock {
namespace {

scoring::Pose stress_pose(std::uint64_t key) {
  auto rng = util::stream(0x57E5u, key);
  scoring::Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

/// The deterministic "score" every thread agrees on for a given key, so a
/// cache hit can be checked for exactness without running a real scorer.
double expected_score(std::uint64_t key) {
  return static_cast<double>(key) * 1.25 - 3.0;
}

TEST(PoolCacheStress, SharedCacheHitsAreAlwaysExact) {
  // Threads insert and look up overlapping key ranges in a cache small
  // enough to evict constantly.  The invariant under contention: a hit
  // returns exactly expected_score(key) — never a torn or stale mix.
  scoring::ScoreCacheOptions opt;
  opt.capacity = 1 << 10;
  opt.shards = 4;
  scoring::ScoreCache cache(opt);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kKeys = 512;
  constexpr int kRounds = 40;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad, t] {
      auto rng = util::stream(0xFEED, t);
      for (int round = 0; round < kRounds; ++round) {
        for (std::uint64_t i = 0; i < kKeys; ++i) {
          const std::uint64_t key = (i + t * 37) % kKeys;
          const scoring::Pose pose = stress_pose(key);
          double got = 0.0;
          if (cache.lookup(pose, &got)) {
            if (got != expected_score(key)) bad.fetch_add(1, std::memory_order_relaxed);
          } else {
            cache.insert(pose, expected_score(key));
          }
          if (rng.uniform(0, 1) > 0.999) cache.clear();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
  const scoring::ScoreCacheStats s = cache.stats();
  EXPECT_GT(s.hits + s.misses, 0u);
  EXPECT_LE(s.entries, s.capacity);
}

TEST(PoolCacheStress, PerThreadArenasChurnIndependently) {
  // Every thread hammers its own thread_arena() through nested scopes
  // while the others do the same: thread confinement means TSan must see
  // zero shared accesses, and the contents stay exactly per-thread.
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&bad, t] {
      util::Arena& arena = util::thread_arena();
      for (int round = 0; round < kRounds; ++round) {
        util::ArenaScope outer(arena);
        const std::span<std::uint64_t> mine = arena.make_span<std::uint64_t>(256);
        for (std::size_t i = 0; i < mine.size(); ++i) mine[i] = t * 1000 + i;
        {
          util::ArenaScope inner(arena);
          const std::span<std::uint64_t> scratch = arena.make_span<std::uint64_t>(1024);
          for (std::size_t i = 0; i < scratch.size(); ++i) scratch[i] = ~0ULL;
        }
        // The inner scope's churn must not have touched our span.
        for (std::size_t i = 0; i < mine.size(); ++i) {
          if (mine[i] != t * 1000 + i) bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(PoolCacheStress, ManyCachedEvaluatorsOverOneCache) {
  // The screening topology: one shared ScoreCache, one CachedEvaluator
  // per thread (each single-threaded, per the Evaluator contract), every
  // inner evaluator computing the same deterministic function.  All
  // outputs must be exact regardless of which thread populated the cache.
  scoring::ScoreCacheOptions opt;
  opt.capacity = 1 << 12;
  scoring::ScoreCache cache(opt);
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kBatch = 128;
  constexpr int kRounds = 30;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad, t] {
      // Deterministic stand-in for a scorer: key is recoverable from the
      // pose bits via the same stream that made it.
      meta::CallableEvaluator inner(
          [](std::span<const scoring::Pose> poses, std::span<double> out) {
            for (std::size_t i = 0; i < poses.size(); ++i) {
              out[i] = static_cast<double>(poses[i].position.x) +
                       static_cast<double>(poses[i].position.y) * 0.5;
            }
          });
      meta::CachedEvaluator eval(inner, cache);
      std::vector<scoring::Pose> poses(kBatch);
      std::vector<double> out(kBatch);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < kBatch; ++i) {
          poses[i] = stress_pose((i + t * 17 + round * 3) % 300);
        }
        eval.evaluate(poses, out);
        for (std::size_t i = 0; i < kBatch; ++i) {
          const double want = static_cast<double>(poses[i].position.x) +
                              static_cast<double>(poses[i].position.y) * 0.5;
          if (out[i] != want) bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace metadock
