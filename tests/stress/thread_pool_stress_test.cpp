// Race-stress harness for util::ThreadPool (run under the tsan preset;
// also part of the plain-test tier so the interleavings stay exercised).
//
// Targets the shared state the pool guards: the task queue, the global
// in_flight_ counter behind wait_idle(), the submit()-side first_error_
// slot, and the per-call completion state of parallel_for().  The
// regression tests at the bottom lock in the per-call exception routing:
// with a pool-global error slot, an exception thrown inside one caller's
// parallel_for could surface at a concurrent caller (or at an unrelated
// wait_idle()) instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace metadock::util {
namespace {

TEST(ThreadPoolStress, ConcurrentParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 8;
  constexpr std::size_t kItems = 2048;
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kItems, 0));
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&pool, &hits, c] {
        pool.parallel_for(kItems, [&hits, c](std::size_t i) { ++hits[c][i]; });
      });
    }
    for (auto& t : callers) t.join();
    for (std::size_t c = 0; c < kCallers; ++c) {
      const long total = std::accumulate(hits[c].begin(), hits[c].end(), 0L);
      ASSERT_EQ(total, static_cast<long>(kItems)) << "caller " << c << " round " << round;
    }
  }
}

TEST(ThreadPoolStress, ConcurrentSubmitAndWaitIdle) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // wait_idle() racing the submitters must neither crash nor miscount; the
  // final wait after the join is the one whose postcondition we assert.
  for (int i = 0; i < 50; ++i) pool.wait_idle();
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ExceptionRoutesToTheCallerWhoseFnThrew) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> benign_errors{0};
    std::atomic<int> thrower_errors{0};
    std::thread thrower([&] {
      try {
        pool.parallel_for(256, [](std::size_t i) {
          if (i == 97) throw std::runtime_error("stress: injected");
        });
      } catch (const std::runtime_error&) {
        thrower_errors.fetch_add(1);
      }
    });
    std::thread benign([&] {
      try {
        pool.parallel_for(256, [](std::size_t) {});
      } catch (...) {
        benign_errors.fetch_add(1);
      }
    });
    thrower.join();
    benign.join();
    ASSERT_EQ(thrower_errors.load(), 1) << "round " << round;
    ASSERT_EQ(benign_errors.load(), 0) << "round " << round;
  }
}

TEST(ThreadPoolStress, WaitIdleNeverStealsAParallelForException) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<bool> caught{false};
    std::thread thrower([&] {
      try {
        pool.parallel_for(64, [](std::size_t i) {
          if (i % 16 == 3) throw std::runtime_error("stress: injected");
        });
      } catch (const std::runtime_error&) {
        caught.store(true);
      }
    });
    // A concurrent wait_idle() must pass through clean: only submit()ed
    // tasks feed its error slot.
    EXPECT_NO_THROW(pool.wait_idle());
    thrower.join();
    EXPECT_NO_THROW(pool.wait_idle());
    ASSERT_TRUE(caught.load()) << "round " << round;
  }
}

TEST(ThreadPoolStress, SubmitErrorsStillSurfaceAtWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("stress: submit error"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable and clean afterwards.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolStress, ThrowingFnDoesNotPoisonLaterParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(128, [](std::size_t i) {
        if (i == 0) throw std::runtime_error("stress: injected");
      }),
      std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(128, [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 128u * 127u / 2);
}

TEST(ThreadPoolStress, GlobalPoolSurvivesConcurrentCallers) {
  // The production call sites (virtual devices, the CPU engine) all share
  // ThreadPool::global(); hammer it the same way.
  constexpr std::size_t kCallers = 6;
  std::vector<std::size_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&sums, c] {
      std::vector<std::size_t> local(512, 0);
      ThreadPool::global().parallel_for(512, [&local](std::size_t i) { local[i] = i + 1; });
      sums[c] = std::accumulate(local.begin(), local.end(), std::size_t{0});
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], 512u * 513u / 2) << "caller " << c;
  }
}

}  // namespace
}  // namespace metadock::util
