// Race-stress harness for the observability layer (run under the tsan
// preset; also part of the plain-test tier).
//
// One obs::Observer serves every layer of a run — devices, scorer, node
// executor, engine — and a screening campaign multiplies that by the node
// count, so Tracer and MetricsRegistry see fully concurrent emission.
// These tests hammer instrument creation (registry map inserts), counter /
// gauge / histogram updates, span recording, and the read paths
// (percentiles, JSON export) all at once, then assert exact totals: a torn
// or lost update shows up as an off-by-n even when TSan is not watching.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace metadock::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 2000;

TEST(ObsStress, CountersAreExactUnderConcurrentEmission) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the updates go to one shared counter, half to a per-thread
      // one, so both contention patterns are exercised; instrument lookup
      // races the map inserts of other threads.
      Counter& shared = registry.counter("stress.shared");
      Counter& mine = registry.counter("stress.thread." + std::to_string(t));
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        shared.add();
        mine.add(2.0);
        registry.gauge("stress.gauge").set(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(registry.counter("stress.shared").value(),
                   static_cast<double>(kThreads * kOpsPerThread));
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(registry.counter("stress.thread." + std::to_string(t)).value(),
                     2.0 * static_cast<double>(kOpsPerThread));
  }
  EXPECT_EQ(registry.counter_names().size(), kThreads + 1);
}

TEST(ObsStress, HistogramRecordRacesPercentileReads) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("stress.hist");
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        h.record(static_cast<double>(t * kOpsPerThread + i));
      }
    });
  }
  // percentile() lazily sorts the sample buffer; reading it while writers
  // append is the race this test exists to catch.
  for (int i = 0; i < 200; ++i) {
    (void)h.percentile(50.0);
    (void)h.mean();
    (void)h.count();
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kThreads * kOpsPerThread - 1));
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(ObsStress, TracerRecordRacesExport) {
  Tracer tracer;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        Span s;
        s.name = "stress";
        s.category = "sched";
        s.device = static_cast<int>(t);
        s.start_ns = i;
        s.dur_ns = 1;
        tracer.record(std::move(s));
        if (i % 128 == 0) {
          tracer.mark("mark", "sched", static_cast<int>(t), i);
          tracer.set_track_name(static_cast<int>(t), "track " + std::to_string(t));
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)tracer.to_chrome_json();
    (void)tracer.size();
  }
  for (auto& t : writers) t.join();
  const std::size_t marks = (kOpsPerThread + 127) / 128;
  EXPECT_EQ(tracer.size() + tracer.dropped(), kThreads * (kOpsPerThread + marks));
}

TEST(ObsStress, TracerCapCountsEveryDroppedSpanExactly) {
  Tracer tracer(/*max_spans=*/1024);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        Span s;
        s.name = "stress";
        tracer.record(std::move(s));
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(tracer.size(), 1024u);
  EXPECT_EQ(tracer.dropped(), kThreads * kOpsPerThread - 1024u);
}

TEST(ObsStress, OneObserverManyEmitterLayers) {
  // The full-shape smoke: spans + counters + histograms through one
  // Observer from every thread at once, with a reader thread exporting.
  Observer obs;
  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&obs, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        obs.metrics.counter("sched.batches").add();
        obs.metrics.histogram("sched.batch_barrier_seconds")
            .record(static_cast<double>(i) * 1e-3);
        obs.tracer.mark("batch", "sched", static_cast<int>(t), i);
      }
    });
  }
  std::thread reader([&obs] {
    for (int i = 0; i < 100; ++i) {
      (void)obs.metrics.to_json();
      (void)obs.tracer.to_chrome_json();
    }
  });
  for (auto& t : emitters) t.join();
  reader.join();
  EXPECT_DOUBLE_EQ(obs.metrics.counter("sched.batches").value(),
                   static_cast<double>(kThreads * kOpsPerThread));
  EXPECT_EQ(obs.metrics.histogram("sched.batch_barrier_seconds").count(),
            kThreads * kOpsPerThread);
}

}  // namespace
}  // namespace metadock::obs
