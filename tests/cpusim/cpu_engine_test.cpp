#include "cpusim/cpu_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mol/synth.h"
#include "scoring/batch_engine.h"
#include "util/rng.h"

namespace metadock::cpusim {
namespace {

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  Fixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 150;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 10;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n) {
  util::Xoshiro256 rng(23);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-8, 8)),
                  static_cast<float>(rng.uniform(-8, 8)),
                  static_cast<float>(rng.uniform(-8, 8))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

TEST(CpuEngine, ScoresMatchDirectScorer) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer);
  const auto poses = random_poses(25);
  std::vector<double> out(poses.size());
  engine.score(poses, out);
  // The default impl is the batched engine: bit-exact against it, and
  // within FP-association distance of the per-pose tiled path.
  const scoring::BatchScoringEngine batched(f.scorer);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], batched.score(poses[i])) << i;
    const double ref = f.scorer.score_tiled(poses[i]);
    EXPECT_NEAR(out[i], ref, 1e-5 * (1.0 + std::abs(ref))) << i;
  }
}

TEST(CpuEngine, TiledImplMatchesScorerExactly) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer, scoring::ScoringImpl::kTiled);
  const auto poses = random_poses(25);
  std::vector<double> out(poses.size());
  engine.score(poses, out);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], f.scorer.score_tiled(poses[i])) << i;
  }
}

TEST(CpuEngine, VirtualTimeAdvancesWithWork) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer);
  engine.score_cost_only(100);
  const double t1 = engine.busy_seconds();
  EXPECT_GT(t1, 0.0);
  engine.score_cost_only(100);
  EXPECT_NEAR(engine.busy_seconds(), 2.0 * t1, 1e-9);
}

TEST(CpuEngine, RealAndCostOnlyAgree) {
  Fixture f;
  CpuScoringEngine real(xeon_e3_1220(), f.scorer);
  CpuScoringEngine cost(xeon_e3_1220(), f.scorer);
  const auto poses = random_poses(64);
  std::vector<double> out(poses.size());
  real.score(poses, out);
  cost.score_cost_only(poses.size());
  EXPECT_DOUBLE_EQ(real.busy_seconds(), cost.busy_seconds());
}

TEST(CpuEngine, FasterCpuIsFaster) {
  Fixture f;
  CpuScoringEngine big(xeon_e5_2620_dual(), f.scorer);
  CpuScoringEngine small(xeon_e3_1220(), f.scorer);
  big.score_cost_only(1000);
  small.score_cost_only(1000);
  EXPECT_LT(big.busy_seconds(), small.busy_seconds());
}

TEST(CpuEngine, EnergyIsTdpTimesTime) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer);
  engine.score_cost_only(500);
  EXPECT_NEAR(engine.energy_joules(), engine.spec().tdp_watts * engine.busy_seconds(), 1e-9);
}

TEST(CpuEngine, ResetClearsClock) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer);
  engine.score_cost_only(10);
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.busy_seconds(), 0.0);
}

TEST(CpuEngine, SizeMismatchThrows) {
  Fixture f;
  CpuScoringEngine engine(xeon_e3_1220(), f.scorer);
  const auto poses = random_poses(4);
  std::vector<double> out(5);
  EXPECT_THROW(engine.score(poses, out), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::cpusim
