#include "cpusim/cpu_spec.h"

#include <gtest/gtest.h>

namespace metadock::cpusim {
namespace {

TEST(CpuSpec, JupiterCpuMatchesPaper) {
  const CpuSpec c = xeon_e5_2620_dual();
  EXPECT_EQ(c.cores, 12);  // two hexa-cores
  EXPECT_NEAR(c.clock_ghz, 2.0, 1e-9);
}

TEST(CpuSpec, HertzCpuMatchesPaper) {
  const CpuSpec c = xeon_e3_1220();
  EXPECT_EQ(c.cores, 4);
  EXPECT_NEAR(c.clock_ghz, 3.1, 1e-9);
}

TEST(CpuSpec, PeakGflops) {
  CpuSpec c;
  c.cores = 4;
  c.clock_ghz = 2.0;
  c.flops_per_cycle = 2.0;
  EXPECT_DOUBLE_EQ(c.peak_gflops(), 16.0);
}

TEST(CacheFactor, UnityInsideL1) {
  const CpuSpec c = xeon_e5_2620_dual();
  EXPECT_DOUBLE_EQ(cache_factor(c, 1024), 1.0);
  EXPECT_DOUBLE_EQ(cache_factor(c, static_cast<std::size_t>(c.l1d_kb * 1024)), 1.0);
  EXPECT_DOUBLE_EQ(cache_factor(c, 0), 1.0);
}

TEST(CacheFactor, DecreasesBeyondL1) {
  const CpuSpec c = xeon_e5_2620_dual();
  const double f1 = cache_factor(c, 64 * 1024);
  const double f2 = cache_factor(c, 256 * 1024);
  EXPECT_LT(f1, 1.0);
  EXPECT_LT(f2, f1);
}

TEST(CacheFactor, FlooredByCacheFloor) {
  CpuSpec c = xeon_e5_2620_dual();
  c.cache_floor = 0.5;
  EXPECT_GE(cache_factor(c, std::size_t{1} << 40), 0.5);
}

TEST(CacheFactor, ZeroAlphaDisablesPenalty) {
  CpuSpec c = xeon_e5_2620_dual();
  c.cache_alpha = 0.0;
  EXPECT_DOUBLE_EQ(cache_factor(c, 10 * 1024 * 1024), 1.0);
}

TEST(CacheFactor, JupiterDegradesFasterThanHertz) {
  // Calibrated behaviour behind Tables 6-9: the Jupiter node's OpenMP
  // column grows super-linearly with receptor size, Hertz's almost
  // linearly.
  const std::size_t big = 146 * 1024;  // ~2BXG receptor payload
  EXPECT_LT(cache_factor(xeon_e5_2620_dual(), big), cache_factor(xeon_e3_1220(), big));
}

TEST(PairRate, LinearInPairs) {
  const CpuSpec c = xeon_e3_1220();
  const double t1 = scoring_time_s(c, 1e9, 1000);
  const double t2 = scoring_time_s(c, 2e9, 1000);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(PairRate, BiggerWorkingSetIsSlower) {
  const CpuSpec c = xeon_e5_2620_dual();
  EXPECT_GT(pair_rate(c, 1000), pair_rate(c, 200 * 1024));
}

TEST(PairRate, NegativePairsThrow) {
  EXPECT_THROW((void)scoring_time_s(xeon_e3_1220(), -1.0, 100), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::cpusim
