#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace metadock::obs {
namespace {

TEST(Counter, AccumulatesIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.0);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(Histogram, EmptyStatsAreNaNOrZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.percentile(50.0)));
}

TEST(Histogram, NearestRankPercentiles) {
  Histogram h;
  // 1..10 inserted out of order; nearest-rank percentiles over n=10 are
  // p50 -> rank 5 -> value 5, p90 -> rank 9 -> 9, p99 -> rank 10 -> 10.
  for (double v : {7.0, 1.0, 10.0, 3.0, 5.0, 2.0, 9.0, 4.0, 8.0, 6.0}) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(90.0), 9.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  // Out-of-range p clamps rather than throwing.
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(250.0), 10.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
}

TEST(Histogram, RecordAfterPercentileKeepsOrderCorrect) {
  // percentile() sorts lazily; interleaved record/percentile must not
  // corrupt the ordering.
  Histogram h;
  h.record(5.0);
  h.record(1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
  h.record(0.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
}

TEST(Histogram, OverflowPastCapStillCountsAndSums) {
  Histogram h(/*max_samples=*/2);
  h.record(1.0);
  h.record(2.0);
  h.record(100.0);  // dropped from samples, kept in count/sum
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_DOUBLE_EQ(h.mean(), 103.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);  // stored samples only
}

TEST(MetricsRegistry, InstrumentsAreCreatedOnFirstUseAndStable) {
  MetricsRegistry m;
  Counter& c = m.counter("device.0.kernels");
  c.add(3.0);
  // Creating other instruments must not invalidate the reference.
  for (int i = 0; i < 100; ++i) m.counter("c" + std::to_string(i));
  EXPECT_DOUBLE_EQ(c.value(), 3.0);
  EXPECT_DOUBLE_EQ(m.counter("device.0.kernels").value(), 3.0);
  EXPECT_EQ(m.counter_names().size(), 101u);

  m.gauge("node.imbalance_ratio").set(1.5);
  m.histogram("sched.batch_barrier_seconds").record(0.25);
  EXPECT_EQ(m.gauge_names().size(), 1u);
  EXPECT_EQ(m.histogram_names().size(), 1u);
}

TEST(MetricsRegistry, JsonHasAllThreeSections) {
  MetricsRegistry m;
  m.counter("sched.batches").add(4.0);
  m.gauge("node.imbalance_ratio").set(1.25);
  Histogram& h = m.histogram("device.0.kernel_seconds");
  h.record(2.0);
  h.record(4.0);

  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"sched.batches\":4"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"node.imbalance_ratio\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":4"), std::string::npos);
}

TEST(MetricsRegistry, EmptyHistogramSerializesFinite) {
  MetricsRegistry m;
  m.histogram("empty");
  const std::string json = m.to_json();
  // NaN must never leak into the JSON document.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"min\":0"), std::string::npos);
}

}  // namespace
}  // namespace metadock::obs
