// End-to-end observability: the tracer/metrics pipeline threaded through
// NodeExecutor -> MultiGpuBatchScorer -> gpusim::Device, on the hertz-like
// unequal 2-GPU node where load balance actually matters.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "sched/executor.h"
#include "testing/fixtures.h"

namespace metadock::sched {
namespace {

using testing::paper_problem;
using testing::tiny_problem;

meta::MetaheuristicParams tiny_params() {
  meta::MetaheuristicParams p = meta::m3_scatter_light();
  p.population_per_spot = 8;
  p.generations = 2;
  return p;
}

ExecutorOptions with(Strategy s, obs::Observer* observer = nullptr) {
  ExecutorOptions o;
  o.strategy = s;
  o.observer = observer;
  return o;
}

std::size_t count_spans(const obs::Observer& observer, const std::string& name, int device) {
  std::size_t n = 0;
  for (const obs::Span& s : observer.tracer.spans()) {
    if (s.name == name && s.device == device) ++n;
  }
  return n;
}

TEST(Observability, HetWarmupSplitReducesImbalanceVsEqualPartition) {
  // The whole point of Eq. 1: on Kepler + Fermi, the equal split leaves the
  // fast card idling at every barrier while the heterogeneous split has
  // both finish together.  The imbalance ratio must show exactly that.
  NodeExecutor hom(hertz(), with(Strategy::kHomogeneous));
  NodeExecutor het(hertz(), with(Strategy::kHeterogeneous));
  const ExecutionReport r_hom = hom.estimate(paper_problem(), meta::m1_genetic());
  const ExecutionReport r_het = het.estimate(paper_problem(), meta::m1_genetic());

  EXPECT_GT(r_hom.imbalance_ratio, 1.5);  // equal split on ~2x-unequal cards
  EXPECT_LT(r_het.imbalance_ratio, 1.1);  // warm-up split nearly equalizes
  EXPECT_LT(r_het.imbalance_ratio, r_hom.imbalance_ratio);
  EXPECT_GT(r_het.balance_efficiency, r_hom.balance_efficiency);
  EXPECT_LE(r_het.balance_efficiency, 1.0 + 1e-12);

  // Per-device: under hom both cards score the same count but the slow one
  // works longer; busy_ratio is 1.0 for the slowest device by definition.
  for (const ExecutionReport& r : {r_hom, r_het}) {
    ASSERT_EQ(r.devices.size(), 2u);
    const double max_ratio = std::max(r.devices[0].busy_ratio, r.devices[1].busy_ratio);
    EXPECT_DOUBLE_EQ(max_ratio, 1.0);
    for (const DeviceReport& d : r.devices) {
      EXPECT_GT(d.scoring_seconds, 0.0);
      EXPECT_LE(d.scoring_seconds, d.busy_seconds);
    }
  }
}

TEST(Observability, TracerSeesEveryPipelineStageOnBothDevices) {
  obs::Observer observer;
  NodeExecutor exec(hertz(), with(Strategy::kHeterogeneous, &observer));
  const ExecutionReport r = exec.run(tiny_problem(), tiny_params());
  ASSERT_GT(r.makespan_seconds, 0.0);

  // Both GPUs ran warm-up and scoring kernels on their own tracks.
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(count_spans(observer, "warmup", d), 1u) << "device " << d;
    EXPECT_GT(count_spans(observer, "kernel", d), 0u) << "device " << d;
    EXPECT_GT(count_spans(observer, "h2d", d), 0u) << "device " << d;
    EXPECT_GT(count_spans(observer, "d2h", d), 0u) << "device " << d;
  }
  // Host track: one span per metaheuristic generation per spot, plus the
  // per-batch barrier spans from the scheduler.
  EXPECT_GT(count_spans(observer, "generation", obs::kHostTrack), 0u);
  EXPECT_GT(count_spans(observer, "batch", obs::kHostTrack), 0u);

  // Kernel spans carry the launch geometry and achieved-rate args.
  bool saw_kernel_args = false;
  for (const obs::Span& s : observer.tracer.spans()) {
    if (s.name != "kernel") continue;
    std::vector<std::string> keys;
    keys.reserve(s.args.size());
    for (const auto& [k, v] : s.args) keys.push_back(k);
    saw_kernel_args = std::find(keys.begin(), keys.end(), "gflops") != keys.end() &&
                      std::find(keys.begin(), keys.end(), "blocks") != keys.end();
    break;
  }
  EXPECT_TRUE(saw_kernel_args);

  // The Chrome export of a real run is non-trivial and names both tracks.
  const std::string json = observer.tracer.to_chrome_json();
  EXPECT_NE(json.find("Tesla K40c"), std::string::npos);
  EXPECT_NE(json.find("GTX 580"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Observability, MetricsMirrorTheExecutionReport) {
  obs::Observer observer;
  NodeExecutor exec(hertz(), with(Strategy::kHeterogeneous, &observer));
  const ExecutionReport r = exec.run(tiny_problem(), tiny_params());

  obs::MetricsRegistry& m = observer.metrics;
  EXPECT_DOUBLE_EQ(m.gauge("node.imbalance_ratio").value(), r.imbalance_ratio);
  EXPECT_DOUBLE_EQ(m.gauge("node.balance_efficiency").value(), r.balance_efficiency);
  EXPECT_DOUBLE_EQ(m.gauge("node.makespan_seconds").value(), r.makespan_seconds);
  for (std::size_t d = 0; d < r.devices.size(); ++d) {
    const std::string prefix = "device." + std::to_string(d) + ".";
    EXPECT_DOUBLE_EQ(m.gauge(prefix + "poses_scored").value(),
                     static_cast<double>(r.devices[d].conformations));
    EXPECT_DOUBLE_EQ(m.gauge(prefix + "busy_seconds").value(), r.devices[d].busy_seconds);
    EXPECT_GT(m.counter(prefix + "kernels").value(), 0.0);
    EXPECT_GT(m.counter(prefix + "flops").value(), 0.0);
    EXPECT_GT(m.histogram(prefix + "achieved_gflops").count(), 0u);
  }
  EXPECT_GT(m.counter("sched.batches").value(), 0.0);
  EXPECT_GT(m.counter("meta.evaluations").value(), 0.0);
  EXPECT_GT(m.histogram("sched.batch_barrier_seconds").count(), 0u);
}

TEST(Observability, FaultEventsLandInTraceAndMetrics) {
  gpusim::FaultPlan plan;
  plan.set_seed(11);
  plan.transient(1, 0.05);
  obs::Observer observer;
  ExecutorOptions o = with(Strategy::kHomogeneous, &observer);
  o.fault_plan = plan;
  NodeExecutor exec(hertz(), o);
  const ExecutionReport r = exec.run(tiny_problem(), tiny_params());

  if (r.faults.transient_faults > 0) {
    EXPECT_DOUBLE_EQ(observer.metrics.counter("device.1.transient_faults").value(),
                     static_cast<double>(r.faults.transient_faults));
    EXPECT_GT(count_spans(observer, "kernel(transient)", 1), 0u);
  }
  if (r.faults.retries > 0) {
    EXPECT_DOUBLE_EQ(observer.metrics.counter("sched.retries").value(),
                     static_cast<double>(r.faults.retries));
  }
}

TEST(Observability, NullObserverChangesNothing) {
  // Observability off must be bit-identical science and timing.
  obs::Observer observer;
  NodeExecutor with_obs(hertz(), with(Strategy::kHeterogeneous, &observer));
  NodeExecutor without(hertz(), with(Strategy::kHeterogeneous));
  const ExecutionReport a = with_obs.run(tiny_problem(), tiny_params());
  const ExecutionReport b = without.run(tiny_problem(), tiny_params());
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.imbalance_ratio, b.imbalance_ratio);
  ASSERT_EQ(a.result.spot_results.size(), b.result.spot_results.size());
  for (std::size_t i = 0; i < a.result.spot_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.result.spot_results[i].best.score, b.result.spot_results[i].best.score);
  }
}

}  // namespace
}  // namespace metadock::sched
