#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace metadock::obs {
namespace {

Span make_span(std::string name, std::string category, int device, std::uint64_t start_ns,
               std::uint64_t dur_ns) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.device = device;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  return s;
}

TEST(Tracer, RecordsSpansInOrder) {
  Tracer t;
  t.record(make_span("kernel", "kernel", 0, 100, 50));
  t.record(make_span("h2d", "copy", 1, 200, 10));
  ASSERT_EQ(t.size(), 2u);
  const std::vector<Span> spans = t.spans();
  EXPECT_EQ(spans[0].name, "kernel");
  EXPECT_EQ(spans[0].device, 0);
  EXPECT_EQ(spans[1].name, "h2d");
  EXPECT_EQ(spans[1].start_ns, 200u);
  EXPECT_FALSE(spans[1].instant);
}

TEST(Tracer, MarkRecordsInstantEvent) {
  Tracer t;
  t.mark("device_lost", "fault", 2, 12345, {{"ordinal", 2.0}});
  ASSERT_EQ(t.size(), 1u);
  const Span s = t.spans()[0];
  EXPECT_TRUE(s.instant);
  EXPECT_EQ(s.dur_ns, 0u);
  EXPECT_EQ(s.category, "fault");
  ASSERT_EQ(s.args.size(), 1u);
  EXPECT_EQ(s.args[0].first, "ordinal");
}

TEST(Tracer, CapDropsNewestAndCountsThem) {
  Tracer t(/*max_spans=*/3);
  for (int i = 0; i < 5; ++i) t.record(make_span("s" + std::to_string(i), "kernel", 0, 0, 1));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  // The oldest spans survive (the beginning of the run matters most).
  EXPECT_EQ(t.spans()[0].name, "s0");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, NestedSpansStayContained) {
  // A meta "generation" span encloses the kernel spans launched inside it —
  // the nesting Chrome reconstructs from [ts, ts+dur) containment.
  Tracer t;
  t.record(make_span("generation", "meta", kHostTrack, 1000, 9000));
  t.record(make_span("kernel", "kernel", 0, 1500, 2000));
  t.record(make_span("kernel", "kernel", 0, 4000, 3000));
  const std::vector<Span> spans = t.spans();
  const Span& outer = spans[0];
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, outer.start_ns);
    EXPECT_LE(spans[i].start_ns + spans[i].dur_ns, outer.start_ns + outer.dur_ns);
  }
}

TEST(Tracer, ChromeJsonHasEventsMetadataAndMicrosecondTimestamps) {
  Tracer t;
  t.set_track_name(0, "GPU0 Tesla K40c");
  Span s = make_span("kernel", "kernel", 0, 2000, 500);  // 2 us start, 0.5 us dur
  s.args.emplace_back("blocks", 32.0);
  t.record(s);
  t.mark("resplit", "fault", kHostTrack, 4000);

  const std::string json = t.to_chrome_json("testproc");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"testproc\""), std::string::npos);
  EXPECT_NE(json.find("\"GPU0 Tesla K40c\""), std::string::npos);
  // Complete event with ns -> us conversion and args.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"blocks\":32"), std::string::npos);
  // Instant event on the host track with thread scope.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":9999"), std::string::npos);
  // The host track gets a default name even when never set explicitly.
  EXPECT_NE(json.find("\"host\""), std::string::npos);
}

TEST(Tracer, TrackNameLastWriteWins) {
  Tracer t;
  t.set_track_name(1, "first");
  t.set_track_name(1, "second");
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json.find("\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"second\""), std::string::npos);
}

}  // namespace
}  // namespace metadock::obs
