#include "geom/aabb.h"

#include <gtest/gtest.h>

namespace metadock::geom {
namespace {

TEST(Aabb, StartsEmpty) {
  Aabb b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), Vec3(0, 0, 0));
}

TEST(Aabb, ExtendSinglePoint) {
  Aabb b;
  b.extend({1, 2, 3});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, Vec3(1, 2, 3));
  EXPECT_EQ(b.hi, Vec3(1, 2, 3));
  EXPECT_TRUE(b.contains({1, 2, 3}));
}

TEST(Aabb, ExtendGrowsBox) {
  Aabb b;
  b.extend({0, 0, 0});
  b.extend({1, -2, 3});
  EXPECT_EQ(b.lo, Vec3(0, -2, 0));
  EXPECT_EQ(b.hi, Vec3(1, 0, 3));
  EXPECT_EQ(b.size(), Vec3(1, 2, 3));
  EXPECT_EQ(b.center(), Vec3(0.5f, -1.0f, 1.5f));
}

TEST(Aabb, ExtendWithBox) {
  Aabb a, b;
  a.extend({0, 0, 0});
  b.extend({5, 5, 5});
  b.extend({6, 6, 6});
  a.extend(b);
  EXPECT_EQ(a.hi, Vec3(6, 6, 6));
  EXPECT_EQ(a.lo, Vec3(0, 0, 0));
}

TEST(Aabb, ExtendWithEmptyBoxIsNoop) {
  Aabb a, empty;
  a.extend({1, 1, 1});
  a.extend(empty);
  EXPECT_EQ(a.lo, Vec3(1, 1, 1));
}

TEST(Aabb, PadGrowsAllSides) {
  Aabb b;
  b.extend({0, 0, 0});
  b.pad(2.0f);
  EXPECT_EQ(b.lo, Vec3(-2, -2, -2));
  EXPECT_EQ(b.hi, Vec3(2, 2, 2));
}

TEST(Aabb, PadEmptyStaysEmpty) {
  Aabb b;
  b.pad(1.0f);
  EXPECT_TRUE(b.empty());
}

TEST(Aabb, ContainsBoundariesAndOutside) {
  Aabb b;
  b.extend({0, 0, 0});
  b.extend({1, 1, 1});
  EXPECT_TRUE(b.contains({0.5f, 0.5f, 0.5f}));
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({1, 1, 1}));
  EXPECT_FALSE(b.contains({1.01f, 0.5f, 0.5f}));
  EXPECT_FALSE(b.contains({0.5f, -0.01f, 0.5f}));
}

TEST(Aabb, EmptyContainsNothing) {
  Aabb b;
  EXPECT_FALSE(b.contains({0, 0, 0}));
}

}  // namespace
}  // namespace metadock::geom
