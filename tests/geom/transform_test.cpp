#include "geom/transform.h"

#include <gtest/gtest.h>

#include <numbers>

#include "util/rng.h"

namespace metadock::geom {
namespace {

Transform random_transform(util::Xoshiro256& rng) {
  Transform t;
  t.rotation = random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  t.translation = {static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10))};
  return t;
}

void expect_near(const Vec3& a, const Vec3& b, float tol = 1e-3f) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Transform, IdentityIsNoop) {
  const Transform id;
  expect_near(id.apply({1, 2, 3}), {1, 2, 3}, 1e-6f);
}

TEST(Transform, PureTranslation) {
  Transform t;
  t.translation = {1, -2, 3};
  expect_near(t.apply({0, 0, 0}), {1, -2, 3}, 1e-6f);
}

TEST(Transform, RotationThenTranslationOrder) {
  Transform t;
  t.rotation = Quat::axis_angle({0, 0, 1}, std::numbers::pi_v<float> / 2);
  t.translation = {10, 0, 0};
  // (1,0,0) rotates to (0,1,0), then translates to (10,1,0).
  expect_near(t.apply({1, 0, 0}), {10, 1, 0});
}

TEST(Transform, ThenComposesLeftToRight) {
  util::Xoshiro256 rng(3);
  const Transform a = random_transform(rng), b = random_transform(rng);
  const Vec3 v{1, 2, 3};
  expect_near(a.then(b).apply(v), b.apply(a.apply(v)));
}

TEST(Transform, InverseRoundTrips) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const Transform t = random_transform(rng);
    const Vec3 v{static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-5, 5))};
    expect_near(t.inverse().apply(t.apply(v)), v, 2e-3f);
    expect_near(t.apply(t.inverse().apply(v)), v, 2e-3f);
  }
}

TEST(Transform, ComposeWithInverseIsIdentity) {
  util::Xoshiro256 rng(7);
  const Transform t = random_transform(rng);
  const Transform id = t.then(t.inverse());
  const Vec3 v{4, -1, 2};
  expect_near(id.apply(v), v, 2e-3f);
}

}  // namespace
}  // namespace metadock::geom
