#include "geom/cell_grid.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace metadock::geom {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed, float extent = 20.0f) {
  util::Xoshiro256 rng(seed);
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<float>(rng.uniform(-extent, extent)),
                   static_cast<float>(rng.uniform(-extent, extent)),
                   static_cast<float>(rng.uniform(-extent, extent))});
  }
  return pts;
}

std::size_t brute_count_within(const std::vector<Vec3>& pts, const Vec3& q, float r) {
  std::size_t n = 0;
  for (const Vec3& p : pts) {
    if (p.distance2(q) <= r * r) ++n;
  }
  return n;
}

TEST(CellGrid, EmptyGridQueriesAreEmpty) {
  Aabb empty;
  CellGrid grid(empty, 1.0f);
  EXPECT_EQ(grid.count_within({0, 0, 0}, 5.0f), 0u);
  EXPECT_FALSE(grid.has_point_closer_than({0, 0, 0}, 5.0f));
}

TEST(CellGrid, SinglePointFound) {
  const std::vector<Vec3> pts{{1, 1, 1}};
  const CellGrid grid = CellGrid::over_points(pts, 2.0f);
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.count_within({1, 1, 1}, 0.1f), 1u);
  EXPECT_EQ(grid.count_within({5, 5, 5}, 0.1f), 0u);
}

TEST(CellGrid, ForEachWithinReportsIdsAndPositions) {
  const std::vector<Vec3> pts{{0, 0, 0}, {1, 0, 0}, {10, 0, 0}};
  const CellGrid grid = CellGrid::over_points(pts, 2.0f);
  std::set<std::uint32_t> ids;
  grid.for_each_within({0, 0, 0}, 1.5f, [&](std::uint32_t id, const Vec3& p) {
    ids.insert(id);
    EXPECT_LE(p.distance({0, 0, 0}), 1.5f);
  });
  EXPECT_EQ(ids, (std::set<std::uint32_t>{0, 1}));
}

TEST(CellGrid, HasPointCloserThanIsStrict) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  const CellGrid grid = CellGrid::over_points(pts, 1.0f);
  EXPECT_TRUE(grid.has_point_closer_than({0.5f, 0, 0}, 0.6f));
  EXPECT_FALSE(grid.has_point_closer_than({0.5f, 0, 0}, 0.5f));  // strict <
  EXPECT_FALSE(grid.has_point_closer_than({0.5f, 0, 0}, 0.0f));
}

TEST(CellGrid, QueryOutsideBoundsStillWorks) {
  const std::vector<Vec3> pts{{0, 0, 0}, {1, 1, 1}};
  const CellGrid grid = CellGrid::over_points(pts, 1.0f);
  // Query far outside the grid bounds: clamps to boundary cells.
  EXPECT_EQ(grid.count_within({100, 100, 100}, 1.0f), 0u);
  EXPECT_EQ(grid.count_within({-100, 0, 0}, 150.0f), 2u);
}

class CellGridProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, float, float>> {};

TEST_P(CellGridProperty, CountMatchesBruteForce) {
  const auto [seed, cell_size, radius] = GetParam();
  const std::vector<Vec3> pts = random_points(300, seed);
  const CellGrid grid = CellGrid::over_points(pts, cell_size);
  util::Xoshiro256 rng(seed + 999);
  for (int q = 0; q < 50; ++q) {
    const Vec3 query{static_cast<float>(rng.uniform(-25, 25)),
                     static_cast<float>(rng.uniform(-25, 25)),
                     static_cast<float>(rng.uniform(-25, 25))};
    EXPECT_EQ(grid.count_within(query, radius), brute_count_within(pts, query, radius));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CellGridProperty,
    ::testing::Combine(::testing::Values(1u, 7u), ::testing::Values(1.0f, 3.0f, 8.0f),
                       ::testing::Values(0.5f, 4.0f, 12.0f)));

}  // namespace
}  // namespace metadock::geom
