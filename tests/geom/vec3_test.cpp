#include "geom/vec3.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace metadock::geom {
namespace {

Vec3 random_vec(util::Xoshiro256& rng, float scale = 10.0f) {
  return {static_cast<float>(rng.uniform(-scale, scale)),
          static_cast<float>(rng.uniform(-scale, scale)),
          static_cast<float>(rng.uniform(-scale, scale))};
}

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v, Vec3(0, 0, 0));
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0f;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3, 4, 0};
  EXPECT_FLOAT_EQ(a.dot(a), 25.0f);
  EXPECT_FLOAT_EQ(a.norm2(), 25.0f);
  EXPECT_FLOAT_EQ(a.norm(), 5.0f);
}

TEST(Vec3, CrossProductBasis) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3, NormalizedZeroIsSafe) {
  const Vec3 z{};
  const Vec3 n = z.normalized();
  EXPECT_FLOAT_EQ(n.norm(), 1.0f);
}

TEST(Vec3, Distance) {
  const Vec3 a{0, 0, 0}, b{1, 2, 2};
  EXPECT_FLOAT_EQ(a.distance(b), 3.0f);
  EXPECT_FLOAT_EQ(a.distance2(b), 9.0f);
}

class Vec3Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Vec3Property, CrossIsOrthogonalToOperands) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Vec3 a = random_vec(rng), b = random_vec(rng);
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0f, 1e-3f * (a.norm() * b.norm() + 1.0f));
    EXPECT_NEAR(c.dot(b), 0.0f, 1e-3f * (a.norm() * b.norm() + 1.0f));
  }
}

TEST_P(Vec3Property, NormalizedHasUnitLength) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Vec3 v = random_vec(rng);
    if (v.norm2() < 1e-6f) continue;
    EXPECT_NEAR(v.normalized().norm(), 1.0f, 1e-5f);
  }
}

TEST_P(Vec3Property, TriangleInequality) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Vec3 a = random_vec(rng), b = random_vec(rng);
    EXPECT_LE((a + b).norm(), a.norm() + b.norm() + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vec3Property, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace metadock::geom
