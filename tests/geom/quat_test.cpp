#include "geom/quat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace metadock::geom {
namespace {

constexpr float kPi = std::numbers::pi_v<float>;

Quat random_unit_quat(util::Xoshiro256& rng) {
  return random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
}

TEST(Quat, IdentityLeavesVectorsUnchanged) {
  const Vec3 v{1.5f, -2.0f, 3.0f};
  const Vec3 r = Quat::identity().rotate(v);
  EXPECT_NEAR(r.x, v.x, 1e-6f);
  EXPECT_NEAR(r.y, v.y, 1e-6f);
  EXPECT_NEAR(r.z, v.z, 1e-6f);
}

TEST(Quat, AxisAngleQuarterTurnAboutZ) {
  const Quat q = Quat::axis_angle({0, 0, 1}, kPi / 2);
  const Vec3 r = q.rotate({1, 0, 0});
  EXPECT_NEAR(r.x, 0.0f, 1e-6f);
  EXPECT_NEAR(r.y, 1.0f, 1e-6f);
  EXPECT_NEAR(r.z, 0.0f, 1e-6f);
}

TEST(Quat, AxisAngleFullTurnIsIdentityRotation) {
  const Quat q = Quat::axis_angle({1, 2, 3}, 2 * kPi);
  const Vec3 v{0.3f, -0.7f, 1.1f};
  const Vec3 r = q.rotate(v);
  EXPECT_NEAR(r.x, v.x, 1e-5f);
  EXPECT_NEAR(r.y, v.y, 1e-5f);
  EXPECT_NEAR(r.z, v.z, 1e-5f);
}

TEST(Quat, CompositionOrderMatchesRotationNesting) {
  util::Xoshiro256 rng(5);
  const Quat a = random_unit_quat(rng), b = random_unit_quat(rng);
  const Vec3 v{1, 2, 3};
  const Vec3 lhs = (a * b).rotate(v);
  const Vec3 rhs = a.rotate(b.rotate(v));
  EXPECT_NEAR(lhs.x, rhs.x, 1e-4f);
  EXPECT_NEAR(lhs.y, rhs.y, 1e-4f);
  EXPECT_NEAR(lhs.z, rhs.z, 1e-4f);
}

TEST(Quat, ConjugateInvertsRotation) {
  util::Xoshiro256 rng(7);
  const Quat q = random_unit_quat(rng);
  const Vec3 v{0.5f, 1.5f, -2.5f};
  const Vec3 back = q.conjugate().rotate(q.rotate(v));
  EXPECT_NEAR(back.x, v.x, 1e-4f);
  EXPECT_NEAR(back.y, v.y, 1e-4f);
  EXPECT_NEAR(back.z, v.z, 1e-4f);
}

TEST(Quat, NormalizedDegenerateIsIdentity) {
  const Quat z{0, 0, 0, 0};
  const Quat n = z.normalized();
  EXPECT_FLOAT_EQ(n.w, 1.0f);
}

TEST(Quat, SlerpEndpoints) {
  util::Xoshiro256 rng(11);
  const Quat a = random_unit_quat(rng), b = random_unit_quat(rng);
  const Quat s0 = a.slerp(b, 0.0f);
  const Quat s1 = a.slerp(b, 1.0f);
  EXPECT_NEAR(s0.angle_to(a), 0.0f, 1e-3f);
  EXPECT_NEAR(s1.angle_to(b), 0.0f, 1e-3f);
}

TEST(Quat, SlerpMidpointEquidistant) {
  const Quat a = Quat::identity();
  const Quat b = Quat::axis_angle({0, 0, 1}, kPi / 2);
  const Quat m = a.slerp(b, 0.5f);
  EXPECT_NEAR(m.angle_to(a), m.angle_to(b), 1e-4f);
}

TEST(Quat, SlerpNearlyParallelFallsBackSafely) {
  const Quat a = Quat::identity();
  const Quat b = Quat::axis_angle({0, 0, 1}, 1e-4f);
  const Quat m = a.slerp(b, 0.5f);
  EXPECT_NEAR(m.norm(), 1.0f, 1e-5f);
}

TEST(Quat, AngleToSelfIsZero) {
  util::Xoshiro256 rng(13);
  const Quat q = random_unit_quat(rng);
  EXPECT_NEAR(q.angle_to(q), 0.0f, 1e-3f);
  // q and -q represent the same rotation.
  const Quat neg{-q.w, -q.x, -q.y, -q.z};
  EXPECT_NEAR(q.angle_to(neg), 0.0f, 1e-3f);
}

class QuatProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuatProperty, RotationPreservesLengthsAndAngles) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Quat q = random_unit_quat(rng);
    const Vec3 a{static_cast<float>(rng.uniform(-5, 5)), static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-5, 5))};
    const Vec3 b{static_cast<float>(rng.uniform(-5, 5)), static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-5, 5))};
    const Vec3 ra = q.rotate(a), rb = q.rotate(b);
    EXPECT_NEAR(ra.norm(), a.norm(), 1e-4f * (1.0f + a.norm()));
    EXPECT_NEAR(ra.dot(rb), a.dot(b), 1e-3f * (1.0f + std::abs(a.dot(b))));
  }
}

TEST_P(QuatProperty, RandomQuatIsUnit) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_NEAR(random_unit_quat(rng).norm(), 1.0f, 1e-5f);
  }
}

TEST_P(QuatProperty, RandomQuatCoversOrientationSpace) {
  util::Xoshiro256 rng(GetParam());
  // Mean rotated x-axis over many uniform orientations tends to zero.
  Vec3 mean{};
  const int n = 2000;
  for (int i = 0; i < n; ++i) mean += random_unit_quat(rng).rotate({1, 0, 0});
  mean *= 1.0f / n;
  EXPECT_LT(mean.norm(), 0.08f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuatProperty, ::testing::Values(17u, 29u, 31u));

}  // namespace
}  // namespace metadock::geom
