// Checks the device database against the hardware figures the paper prints
// in Tables 1-3.
#include "gpusim/device_db.h"

#include <gtest/gtest.h>

namespace metadock::gpusim {
namespace {

TEST(DeviceDb, Gtx590MatchesTable2) {
  const DeviceSpec d = geforce_gtx590();
  EXPECT_EQ(d.sm_count, 16);
  EXPECT_EQ(d.cores_per_sm, 32);
  EXPECT_EQ(d.total_cores(), 512);
  EXPECT_NEAR(d.clock_ghz, 1.215, 1e-9);
  EXPECT_NEAR(d.dram_bw_gbs, 163.85, 1e-6);
  EXPECT_EQ(d.arch, Arch::kFermi);
  EXPECT_EQ(d.ccc_major(), 2);
}

TEST(DeviceDb, C2075MatchesTable2) {
  const DeviceSpec d = tesla_c2075();
  EXPECT_EQ(d.sm_count, 14);
  EXPECT_EQ(d.total_cores(), 448);
  EXPECT_NEAR(d.clock_ghz, 1.147, 1e-9);
  EXPECT_NEAR(d.dram_bw_gbs, 144.0, 1e-6);
  EXPECT_NEAR(d.dram_gb, 5.375, 1e-6);
}

TEST(DeviceDb, Gtx580MatchesTable3) {
  const DeviceSpec d = geforce_gtx580();
  EXPECT_EQ(d.total_cores(), 512);
  EXPECT_NEAR(d.clock_ghz, 1.544, 1e-9);
  EXPECT_NEAR(d.dram_bw_gbs, 192.4, 1e-6);
  EXPECT_EQ(d.arch, Arch::kFermi);
}

TEST(DeviceDb, K40cMatchesTable3) {
  const DeviceSpec d = tesla_k40c();
  EXPECT_EQ(d.sm_count, 15);
  EXPECT_EQ(d.cores_per_sm, 192);
  EXPECT_EQ(d.total_cores(), 2880);
  EXPECT_EQ(d.arch, Arch::kKepler);
  EXPECT_EQ(d.max_threads_per_sm, 2048);
  EXPECT_EQ(d.registers_per_sm, 65536);
  // "raw processing power of up to 5068 GFLOPS" at boost clock.
  EXPECT_NEAR(d.peak_gflops(), 5068.0, 10.0);
  EXPECT_NEAR(d.dram_bw_gbs, 288.38, 1e-6);
}

TEST(DeviceDb, GenerationCardsMatchTable1Peaks) {
  // Table 1 peak single-precision GFLOPS: 672 / 1178 / 4290 / 4980.
  EXPECT_NEAR(generation_card(Arch::kTesla).peak_gflops(), 672.0, 5.0);
  EXPECT_NEAR(generation_card(Arch::kFermi).peak_gflops(), 1178.0, 5.0);
  EXPECT_NEAR(generation_card(Arch::kKepler).peak_gflops(), 4290.0, 5.0);
  EXPECT_NEAR(generation_card(Arch::kMaxwell).peak_gflops(), 4980.0, 5.0);
}

TEST(DeviceDb, GenerationCardsMatchTable1Shapes) {
  // Table 1: SMs 30/16/15/16, cores/SM 8/32/192/128, shared 16/48/48/64 KB.
  const DeviceSpec t = generation_card(Arch::kTesla);
  EXPECT_EQ(t.sm_count, 30);
  EXPECT_EQ(t.cores_per_sm, 8);
  EXPECT_EQ(t.shared_mem_per_sm_kb, 16);
  const DeviceSpec f = generation_card(Arch::kFermi);
  EXPECT_EQ(f.total_cores(), 512);
  EXPECT_EQ(f.shared_mem_per_sm_kb, 48);
  const DeviceSpec k = generation_card(Arch::kKepler);
  EXPECT_EQ(k.total_cores(), 2880);
  const DeviceSpec m = generation_card(Arch::kMaxwell);
  EXPECT_EQ(m.total_cores(), 2048);
  EXPECT_EQ(m.shared_mem_per_sm_kb, 64);
}

TEST(DeviceDb, EvaluationCardsAreTheFourPaperGpus) {
  const auto cards = evaluation_cards();
  ASSERT_EQ(cards.size(), 4u);
  EXPECT_EQ(cards[0].name, "GeForce GTX 590");
  EXPECT_EQ(cards[1].name, "Tesla C2075");
  EXPECT_EQ(cards[2].name, "GeForce GTX 580");
  EXPECT_EQ(cards[3].name, "Tesla K40c");
}

TEST(DeviceDb, HertzGpusHaveLargeEffectiveGap) {
  // The Hertz heterogeneous gain (~1.5x) requires the K40c to be roughly
  // twice as fast as the GTX 580 in sustained terms.
  const double k40 = tesla_k40c().sustained_gflops();
  const double gtx = geforce_gtx580().sustained_gflops();
  EXPECT_GT(k40 / gtx, 1.8);
  EXPECT_LT(k40 / gtx, 2.5);
}

TEST(DeviceDb, XeonPhiModelsTheMicFutureWork) {
  const DeviceSpec d = xeon_phi_5110p();
  EXPECT_EQ(d.arch, Arch::kMic);
  EXPECT_EQ(d.sm_count, 60);
  EXPECT_NEAR(d.peak_gflops(), 2022.0, 10.0);
  EXPECT_EQ(d.ccc_major(), 0);  // not a CUDA device
  // Sustained: slower than both Hertz GPUs (that is the ablation's point).
  EXPECT_LT(d.sustained_gflops(), geforce_gtx580().sustained_gflops());
}

TEST(DeviceDb, JupiterGpusAreNearlyEqual) {
  // "Although GTX590 and Tesla C2075 are different GPU cards, their
  // computational capabilities are pretty much the same."
  const double a = geforce_gtx590().sustained_gflops();
  const double b = tesla_c2075().sustained_gflops();
  EXPECT_NEAR(a / b, 1.0, 0.12);
}

}  // namespace
}  // namespace metadock::gpusim
