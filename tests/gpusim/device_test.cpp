#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "gpusim/device_db.h"

namespace metadock::gpusim {
namespace {

KernelLaunch small_launch() {
  KernelLaunch l;
  l.grid_blocks = 32;
  l.block_threads = 128;
  return l;
}

TEST(Device, ClockStartsAtZero) {
  Device dev(geforce_gtx580());
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
  EXPECT_EQ(dev.kernels_launched(), 0u);
}

TEST(Device, LaunchAdvancesClockAndCounts) {
  Device dev(geforce_gtx580());
  KernelCost c;
  c.flops = 1e9;
  dev.launch(small_launch(), c);
  EXPECT_GT(dev.busy_seconds(), 0.0);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, LaunchExecutesEveryBlockExactlyOnce) {
  Device dev(geforce_gtx580());
  KernelCost c;
  c.flops = 1.0;
  // Blocks may run on any host thread (as on real hardware); each index
  // must be executed exactly once.
  std::vector<std::atomic<int>> seen(32);
  dev.launch(small_launch(), c, [&](std::int64_t b) {
    seen[static_cast<std::size_t>(b)].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Device, TransfersAdvanceClockAndAccumulateBytes) {
  Device dev(geforce_gtx580());
  dev.copy_to_device(1e6);
  const double t1 = dev.busy_seconds();
  EXPECT_GT(t1, 0.0);
  dev.copy_from_device(2e6);
  EXPECT_GT(dev.busy_seconds(), t1);
  EXPECT_DOUBLE_EQ(dev.bytes_transferred(), 3e6);
}

TEST(Device, AdvanceSecondsAddsStallTime) {
  Device dev(geforce_gtx580());
  dev.advance_seconds(0.5);
  EXPECT_NEAR(dev.busy_seconds(), 0.5, 1e-9);
}

TEST(Device, EnergyTracksBusyTime) {
  Device dev(geforce_gtx580());
  dev.advance_seconds(2.0);
  EXPECT_NEAR(dev.energy_joules(), dev.spec().tdp_watts * 2.0 * 0.85, 1e-6);
}

TEST(Device, ResetClearsEverything) {
  Device dev(geforce_gtx580());
  KernelCost c;
  c.flops = 1e9;
  dev.launch(small_launch(), c);
  dev.copy_to_device(100.0);
  dev.reset();
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
  EXPECT_EQ(dev.kernels_launched(), 0u);
  EXPECT_DOUBLE_EQ(dev.bytes_transferred(), 0.0);
}

TEST(Device, AllocationTracksAndEnforcesCapacity) {
  DeviceSpec spec = geforce_gtx580();  // 1.536 GB
  Device dev(spec);
  dev.allocate(1e9);
  EXPECT_DOUBLE_EQ(dev.allocated_bytes(), 1e9);
  EXPECT_THROW(dev.allocate(1e9), std::runtime_error);  // 2 GB > 1.536 GB
  dev.deallocate(5e8);
  EXPECT_DOUBLE_EQ(dev.allocated_bytes(), 5e8);
  dev.allocate(1e9);  // fits now
  dev.deallocate(1e20);
  EXPECT_DOUBLE_EQ(dev.allocated_bytes(), 0.0);  // clamped at zero
}

TEST(Device, ResetReleasesAllocations) {
  Device dev(geforce_gtx580());
  dev.allocate(1e9);
  dev.reset();
  EXPECT_DOUBLE_EQ(dev.allocated_bytes(), 0.0);
}

TEST(Device, OrdinalIsStored) {
  Device dev(geforce_gtx580(), 3);
  EXPECT_EQ(dev.ordinal(), 3);
}

TEST(VirtualClock, AccumulatesAndConverts) {
  VirtualClock c;
  c.advance_seconds(1.5);
  c.advance_ns(500'000'000);
  EXPECT_NEAR(c.seconds(), 2.0, 1e-9);
  EXPECT_EQ(c.nanoseconds(), 2'000'000'000u);
  c.reset();
  EXPECT_EQ(c.nanoseconds(), 0u);
}

TEST(VirtualClock, IgnoresNegativeAdvances) {
  VirtualClock c;
  c.advance_seconds(-1.0);
  EXPECT_EQ(c.nanoseconds(), 0u);
}

}  // namespace
}  // namespace metadock::gpusim
