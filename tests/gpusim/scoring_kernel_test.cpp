#include "gpusim/scoring_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpusim/device_db.h"
#include "mol/synth.h"
#include "util/rng.h"

namespace metadock::gpusim {
namespace {

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  Fixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 200;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 15;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n) {
  util::Xoshiro256 rng(17);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

TEST(ScoringKernel, UploadAccountedAtConstruction) {
  Fixture f;
  Device dev(geforce_gtx580());
  DeviceScoringKernel kernel(dev, f.scorer);
  EXPECT_GT(dev.busy_seconds(), 0.0);
  EXPECT_GT(dev.bytes_transferred(), 0.0);
}

TEST(ScoringKernel, RealScoresMatchDirectScorer) {
  Fixture f;
  Device dev(geforce_gtx580());
  DeviceScoringKernel kernel(dev, f.scorer);
  const auto poses = random_poses(37);  // not a multiple of the block size
  std::vector<double> gpu(poses.size());
  kernel.score(poses, gpu);
  // The default impl is the batched engine: bit-exact against it (per-pose
  // energies are independent of block boundaries), and within
  // FP-association distance of the per-pose tiled path.
  const scoring::BatchScoringEngine batched(f.scorer);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(gpu[i], batched.score(poses[i])) << i;
    const double ref = f.scorer.score_tiled(poses[i]);
    EXPECT_NEAR(gpu[i], ref, 1e-5 * (1.0 + std::abs(ref))) << i;
  }
}

TEST(ScoringKernel, TiledImplMatchesScorerExactly) {
  Fixture f;
  Device dev(geforce_gtx580());
  ScoringKernelOptions opt;
  opt.impl = scoring::ScoringImpl::kTiled;
  DeviceScoringKernel kernel(dev, f.scorer, opt);
  const auto poses = random_poses(37);
  std::vector<double> gpu(poses.size());
  kernel.score(poses, gpu);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(gpu[i], f.scorer.score_tiled(poses[i])) << i;
  }
}

TEST(ScoringKernel, CostOnlyAdvancesSameTimeAsRealScore) {
  Fixture f;
  Device real_dev(geforce_gtx580());
  Device cost_dev(geforce_gtx580());
  DeviceScoringKernel real_kernel(real_dev, f.scorer);
  DeviceScoringKernel cost_kernel(cost_dev, f.scorer);
  const auto poses = random_poses(100);
  std::vector<double> out(poses.size());
  real_kernel.score(poses, out);
  cost_kernel.score_cost_only(poses.size());
  EXPECT_DOUBLE_EQ(real_dev.busy_seconds(), cost_dev.busy_seconds());
}

TEST(ScoringKernel, LaunchConfigMapsWarpsToConformations) {
  Fixture f;
  Device dev(geforce_gtx580());
  ScoringKernelOptions opt;
  opt.warps_per_block = 4;
  DeviceScoringKernel kernel(dev, f.scorer, opt);
  const KernelLaunch l = kernel.launch_config(100);
  EXPECT_EQ(l.block_threads, 128);
  EXPECT_EQ(l.grid_blocks, 25);  // ceil(100/4)
  EXPECT_GT(l.shared_bytes_per_block, 0u);
}

TEST(ScoringKernel, NonTiledUsesNoSharedMemory) {
  Fixture f;
  Device dev(geforce_gtx580());
  ScoringKernelOptions opt;
  opt.tiled = false;
  DeviceScoringKernel kernel(dev, f.scorer, opt);
  EXPECT_EQ(kernel.launch_config(100).shared_bytes_per_block, 0u);
}

TEST(ScoringKernel, CostFlopsScaleWithPairs) {
  Fixture f;
  Device dev(geforce_gtx580());
  DeviceScoringKernel kernel(dev, f.scorer);
  const KernelCost c1 = kernel.cost(64);
  const KernelCost c2 = kernel.cost(128);
  EXPECT_NEAR(c2.flops / c1.flops, 2.0, 1e-9);
  EXPECT_NEAR(c1.flops,
              64.0 * static_cast<double>(f.scorer.pairs_per_eval()) *
                  DeviceScoringKernel::kFlopsPerPair,
              1.0);
}

TEST(ScoringKernel, TilingCutsGlobalTraffic) {
  Fixture f;
  Device dev(geforce_gtx580());
  ScoringKernelOptions tiled, naive;
  naive.tiled = false;
  DeviceScoringKernel kt(dev, f.scorer, tiled);
  DeviceScoringKernel kn(dev, f.scorer, naive);
  // Tiled: receptor streamed once per block, reused by all warps and ligand
  // atoms.  Naive: per-pair re-touches, a fraction of which reach DRAM.
  EXPECT_LT(kt.cost(256).global_bytes, kn.cost(256).global_bytes);
  const double pairs = 256.0 * static_cast<double>(f.scorer.pairs_per_eval());
  EXPECT_GT(kn.cost(256).global_bytes,
            pairs * DeviceScoringKernel::kBytesPerReceptorAtom *
                DeviceScoringKernel::kNaiveMissRate * 0.99);
}

TEST(ScoringKernel, SizeMismatchThrows) {
  Fixture f;
  Device dev(geforce_gtx580());
  DeviceScoringKernel kernel(dev, f.scorer);
  const auto poses = random_poses(4);
  std::vector<double> out(3);
  EXPECT_THROW(kernel.score(poses, out), std::invalid_argument);
}

TEST(ScoringKernel, EmptyBatchIsNoop) {
  Fixture f;
  Device dev(geforce_gtx580());
  DeviceScoringKernel kernel(dev, f.scorer);
  const double before = dev.busy_seconds();
  kernel.score({}, {});
  kernel.score_cost_only(0);
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), before);
}

TEST(ScoringKernel, BadOptionsThrow) {
  Fixture f;
  Device dev(geforce_gtx580());
  ScoringKernelOptions opt;
  opt.warps_per_block = 0;
  EXPECT_THROW(DeviceScoringKernel(dev, f.scorer, opt), std::invalid_argument);
}

TEST(ScoringKernel, AllocatesAndReleasesDeviceMemory) {
  Fixture f;
  Device dev(geforce_gtx580());
  {
    DeviceScoringKernel kernel(dev, f.scorer);
    EXPECT_GT(dev.allocated_bytes(), 0.0);
  }
  EXPECT_DOUBLE_EQ(dev.allocated_bytes(), 0.0);
}

TEST(ScoringKernel, OutOfMemoryDeviceThrows) {
  Fixture f;
  DeviceSpec tiny = geforce_gtx580();
  tiny.dram_gb = 1e-9;  // effectively no DRAM
  Device dev(tiny);
  EXPECT_THROW(DeviceScoringKernel(dev, f.scorer), std::runtime_error);
}

TEST(ScoringKernel, FasterDeviceScoresFaster) {
  Fixture f;
  Device fast(tesla_k40c());
  Device slow(geforce_gtx580());
  DeviceScoringKernel kf(fast, f.scorer);
  DeviceScoringKernel ks(slow, f.scorer);
  const double f0 = fast.busy_seconds(), s0 = slow.busy_seconds();
  kf.score_cost_only(4096);
  ks.score_cost_only(4096);
  EXPECT_LT(fast.busy_seconds() - f0, slow.busy_seconds() - s0);
}

}  // namespace
}  // namespace metadock::gpusim
