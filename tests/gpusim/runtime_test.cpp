#include "gpusim/runtime.h"

#include <gtest/gtest.h>

#include "gpusim/device_db.h"
#include "testing/fixtures.h"

namespace metadock::gpusim {
namespace {

Runtime hertz_like() { return testing::mixed_node_runtime(); }

TEST(Runtime, DeviceCountMatchesSpecs) {
  Runtime rt = hertz_like();
  EXPECT_EQ(rt.device_count(), 2);
}

TEST(Runtime, PropertiesQueryWorksLikeNvml) {
  Runtime rt = hertz_like();
  EXPECT_EQ(rt.properties(0).name, "Tesla K40c");
  EXPECT_EQ(rt.properties(1).name, "GeForce GTX 580");
  EXPECT_EQ(rt.device(0).ordinal(), 0);
}

TEST(Runtime, BadOrdinalThrows) {
  Runtime rt = hertz_like();
  EXPECT_THROW((void)rt.device(2), std::out_of_range);
  EXPECT_THROW((void)rt.device(-1), std::out_of_range);
}

TEST(Runtime, MakespanIsBusiestDevice) {
  Runtime rt = hertz_like();
  rt.device(0).advance_seconds(1.0);
  rt.device(1).advance_seconds(3.0);
  EXPECT_NEAR(rt.makespan_seconds(), 3.0, 1e-9);
}

TEST(Runtime, TotalEnergySumsDevices) {
  Runtime rt = hertz_like();
  rt.device(0).advance_seconds(1.0);
  rt.device(1).advance_seconds(1.0);
  EXPECT_NEAR(rt.total_energy_joules(),
              rt.device(0).energy_joules() + rt.device(1).energy_joules(), 1e-9);
}

TEST(Runtime, ResetAllClearsClocks) {
  Runtime rt = hertz_like();
  rt.device(0).advance_seconds(5.0);
  rt.reset_all();
  EXPECT_DOUBLE_EQ(rt.makespan_seconds(), 0.0);
}

TEST(Runtime, EmptyRuntimeIsValid) {
  Runtime rt({});
  EXPECT_EQ(rt.device_count(), 0);
  EXPECT_DOUBLE_EQ(rt.makespan_seconds(), 0.0);
}

}  // namespace
}  // namespace metadock::gpusim
