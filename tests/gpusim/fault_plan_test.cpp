#include "gpusim/fault_plan.h"

#include <gtest/gtest.h>

#include "gpusim/device.h"
#include "gpusim/device_db.h"
#include "gpusim/runtime.h"
#include "testing/fixtures.h"

namespace metadock::gpusim {
namespace {

KernelLaunch small_launch() {
  KernelLaunch l;
  l.grid_blocks = 32;
  l.block_threads = 128;
  return l;
}

KernelCost small_cost() {
  KernelCost c;
  c.flops = 1e9;
  return c;
}

/// Fault-free launch time of `small_launch` on a GTX 580.
double baseline_launch_seconds() {
  static const double t = [] {
    Device dev(geforce_gtx580());
    dev.launch(small_launch(), small_cost());
    return dev.busy_seconds();
  }();
  return t;
}

TEST(FaultPlan, BuilderValidatesArguments) {
  FaultPlan p;
  EXPECT_THROW(p.kill(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(p.kill(0, -1.0), std::invalid_argument);
  EXPECT_THROW(p.transient(0, -0.1), std::invalid_argument);
  EXPECT_THROW(p.transient(0, 1.5), std::invalid_argument);
  EXPECT_THROW(p.straggle(0, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(p.straggle(0, 1.0, 0.5), std::invalid_argument);
  EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, EntriesForSameDeviceMerge) {
  FaultPlan p;
  p.kill(2, 5.0).kill(2, 3.0).transient(2, 0.1).transient(2, 0.4).straggle(2, 9.0, 2.0);
  const DeviceFaultSpec s = p.for_device(2);
  EXPECT_DOUBLE_EQ(s.death_at_seconds, 3.0);       // earliest death wins
  EXPECT_DOUBLE_EQ(s.transient_probability, 0.4);  // highest probability wins
  EXPECT_DOUBLE_EQ(s.straggle_after_seconds, 9.0);
  EXPECT_DOUBLE_EQ(s.straggle_factor, 2.0);
  EXPECT_TRUE(p.for_device(0).benign());
}

TEST(FaultPlan, DeathStopsClockAtBoundary) {
  const double t = baseline_launch_seconds();
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.device = 0;
  fault.death_at_seconds = 2.5 * t;  // dies mid-third-launch
  dev.set_fault(fault, 1);

  dev.launch(small_launch(), small_cost());
  dev.launch(small_launch(), small_cost());
  EXPECT_FALSE(dev.is_dead());
  EXPECT_THROW(dev.launch(small_launch(), small_cost()), DeviceLostError);
  EXPECT_TRUE(dev.is_dead());
  // The clock stops at the death boundary, not at the launch's full length.
  EXPECT_NEAR(dev.busy_seconds(), 2.5 * t, 1e-9);
  // Dead devices reject further launches without advancing time.
  EXPECT_THROW(dev.launch(small_launch(), small_cost()), DeviceLostError);
  EXPECT_NEAR(dev.busy_seconds(), 2.5 * t, 1e-9);
  EXPECT_EQ(dev.kernels_launched(), 2u);
}

TEST(FaultPlan, DeathAtTimeZeroIsDeadOnArrival) {
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.death_at_seconds = 0.0;
  dev.set_fault(fault, 1);
  EXPECT_TRUE(dev.is_dead());
  EXPECT_THROW(dev.launch(small_launch(), small_cost()), DeviceLostError);
}

TEST(FaultPlan, BlockFunctionNeverRunsOnFault) {
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.transient_probability = 1.0;
  dev.set_fault(fault, 7);
  int blocks_run = 0;
  EXPECT_THROW(
      dev.launch(small_launch(), small_cost(), [&](std::int64_t) { ++blocks_run; }),
      TransientFaultError);
  EXPECT_EQ(blocks_run, 0);  // no partial results escape a failed launch
}

TEST(FaultPlan, TransientProbabilityEndpoints) {
  DeviceFaultSpec always;
  always.transient_probability = 1.0;
  Device flaky(geforce_gtx580());
  flaky.set_fault(always, 3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(flaky.launch(small_launch(), small_cost()), TransientFaultError);
  }
  EXPECT_EQ(flaky.transient_faults_injected(), 5u);
  // A failed launch still pays its kernel time (the work was attempted).
  EXPECT_NEAR(flaky.busy_seconds(), 5.0 * baseline_launch_seconds(), 1e-9);

  DeviceFaultSpec never;
  never.transient_probability = 0.0;
  Device solid(geforce_gtx580());
  solid.set_fault(never, 3);
  for (int i = 0; i < 5; ++i) solid.launch(small_launch(), small_cost());
  EXPECT_EQ(solid.transient_faults_injected(), 0u);
}

TEST(FaultPlan, TransientSequenceIsSeededAndReproducible) {
  auto fault_pattern = [](std::uint64_t seed) {
    DeviceFaultSpec fault;
    fault.transient_probability = 0.5;
    Device dev(geforce_gtx580());
    dev.set_fault(fault, seed);
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) {
      try {
        dev.launch(small_launch(), small_cost());
        failed.push_back(false);
      } catch (const TransientFaultError&) {
        failed.push_back(true);
      }
    }
    return failed;
  };
  EXPECT_EQ(fault_pattern(11), fault_pattern(11));
  EXPECT_NE(fault_pattern(11), fault_pattern(12));
}

TEST(FaultPlan, StraggleMultipliesKernelTimeAfterOnset) {
  const double t = baseline_launch_seconds();
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.straggle_after_seconds = 1.5 * t;
  fault.straggle_factor = 3.0;
  dev.set_fault(fault, 1);

  dev.launch(small_launch(), small_cost());  // before onset: full speed
  EXPECT_NEAR(dev.busy_seconds(), t, 1e-9);
  dev.launch(small_launch(), small_cost());  // clock at t < onset: still fast
  EXPECT_NEAR(dev.busy_seconds(), 2.0 * t, 1e-9);
  dev.launch(small_launch(), small_cost());  // clock at 2t >= onset: x3
  EXPECT_NEAR(dev.busy_seconds(), 5.0 * t, 1e-9);
  EXPECT_DOUBLE_EQ(dev.slowdown(), 3.0);
}

TEST(FaultPlan, ResetRevivesTheDevice) {
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.death_at_seconds = 1.0;
  dev.set_fault(fault, 1);
  dev.advance_seconds(2.0);
  EXPECT_TRUE(dev.is_dead());
  dev.reset();
  // The clock is back before the death time, so the device runs again.
  EXPECT_FALSE(dev.is_dead());
  EXPECT_NO_THROW(dev.launch(small_launch(), small_cost()));
}

TEST(FaultPlan, RuntimeAttachesFaultsPerOrdinal) {
  FaultPlan plan(99);
  plan.kill(1, 0.0).transient(0, 0.25);
  gpusim::Runtime rt = metadock::testing::mixed_node_runtime(plan);
  EXPECT_DOUBLE_EQ(rt.device(0).fault().transient_probability, 0.25);
  EXPECT_FALSE(rt.device(0).is_dead());
  EXPECT_TRUE(rt.device(1).is_dead());
  EXPECT_EQ(rt.alive_count(), 1);
  EXPECT_EQ(rt.fault_plan().seed(), 99u);
}

TEST(FaultPlan, CopiesStillWorkOnDeadDevices) {
  // cudaMemcpy on a lost device is the scheduler's problem to avoid; the
  // model charges it rather than hiding the time.
  Device dev(geforce_gtx580());
  DeviceFaultSpec fault;
  fault.death_at_seconds = 0.0;
  dev.set_fault(fault, 1);
  EXPECT_NO_THROW(dev.copy_to_device(1e6));
}

}  // namespace
}  // namespace metadock::gpusim
