// Stream/event semantics of the virtual device: per-stream timelines,
// engine contention, event ordering (sync-after-record observes prior
// work; cross-stream wait_event is transitive), per-stream fault
// semantics, and the reuse-after-reset regression for fault plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_db.h"
#include "gpusim/fault_plan.h"
#include "gpusim/runtime.h"
#include "util/rng.h"

namespace metadock::gpusim {
namespace {

KernelLaunch small_launch() {
  KernelLaunch l;
  l.grid_blocks = 64;
  l.block_threads = 128;
  return l;
}

KernelCost small_cost() {
  KernelCost c;
  c.flops = 2e9;
  c.global_bytes = 1e7;
  return c;
}

TEST(Stream, CreateStreamStartsAtTheCurrentClock) {
  Device dev(geforce_gtx580());
  EXPECT_EQ(dev.stream_count(), 1);  // the default stream always exists
  dev.launch(small_launch(), small_cost());
  const int s = dev.create_stream();
  EXPECT_EQ(s, 1);
  EXPECT_EQ(dev.stream_count(), 2);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s), dev.busy_seconds());
}

TEST(Stream, BadStreamIdThrows) {
  Device dev(geforce_gtx580());
  EXPECT_THROW(dev.launch_async(3, small_launch(), small_cost()), std::out_of_range);
  EXPECT_THROW((void)dev.stream_seconds(-1), std::out_of_range);
  EXPECT_THROW((void)dev.record_event(7), std::out_of_range);
}

TEST(Stream, SyncAfterRecordObservesPriorWork) {
  // An event recorded after async work snapshots the stream's cursor; a
  // device sync may never land the clock before that point.
  Device dev(geforce_gtx580());
  const int s = dev.create_stream();
  dev.copy_to_device_async(s, 1e6);
  dev.launch_async(s, small_launch(), small_cost());
  const Event e = dev.record_event(s);
  EXPECT_GT(e.ns, 0u);
  // Async work has not touched the device clock yet...
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
  dev.sync();
  // ...but the sync observes everything the event covers.
  EXPECT_GE(dev.busy_seconds(), static_cast<double>(e.ns) * 1e-9);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s), dev.busy_seconds());
}

TEST(Stream, WaitEventOrdersAcrossStreamsTransitively) {
  // s1 -- e1 --> s2 -- e2 --> s3: work on s3 may not start before the
  // point e1 recorded on s1, even though s3 never waited on e1 directly.
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  const int s3 = dev.create_stream();

  dev.copy_to_device_async(s1, 4e6);
  const Event e1 = dev.record_event(s1);

  dev.wait_event(s2, e1);
  EXPECT_GE(dev.record_event(s2).ns, e1.ns);
  dev.copy_to_device_async(s2, 4e6);
  const Event e2 = dev.record_event(s2);
  EXPECT_GT(e2.ns, e1.ns);  // s2's own work extends past the awaited point

  dev.wait_event(s3, e2);
  const Event e3 = dev.record_event(s3);
  EXPECT_GE(e3.ns, e2.ns);
  EXPECT_GE(e3.ns, e1.ns);  // transitivity through e2
}

TEST(Stream, WaitEventNeverRewindsAStream) {
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.launch_async(s2, small_launch(), small_cost());
  const std::uint64_t before = dev.record_event(s2).ns;
  // e1 is in s2's past: waiting on it must be a no-op.
  const Event e1 = dev.record_event(s1);
  ASSERT_LT(e1.ns, before);
  dev.wait_event(s2, e1);
  EXPECT_EQ(dev.record_event(s2).ns, before);
}

TEST(Stream, SameDirectionCopiesSerializeOnTheEngine) {
  // Two H2D copies on different streams share one PCIe engine: the second
  // queues behind the first exactly.
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.copy_to_device_async(s1, 8e6);
  const double t1 = dev.stream_seconds(s1);
  ASSERT_GT(t1, 0.0);
  dev.copy_to_device_async(s2, 8e6);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s2), 2.0 * t1);
}

TEST(Stream, OppositeDirectionCopiesRunFullDuplex) {
  // H2D and D2H have their own engines: concurrent opposite-direction
  // copies finish together instead of queueing.
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.copy_to_device_async(s1, 8e6);
  dev.copy_from_device_async(s2, 8e6);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s1), dev.stream_seconds(s2));
  dev.sync();
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), dev.stream_seconds(s1));
}

TEST(Stream, CopiesOverlapComputeOnSiblingStreams) {
  // The latency-hiding primitive the scheduler builds on: an H2D on one
  // stream rides under a kernel on another, so the synced clock is the max
  // of the two, not the sum.
  Device dev(geforce_gtx580());
  const int sk = dev.create_stream();
  const int sc = dev.create_stream();
  dev.launch_async(sk, small_launch(), small_cost());
  dev.copy_to_device_async(sc, 4e6);
  const double kernel_s = dev.stream_seconds(sk);
  const double copy_s = dev.stream_seconds(sc);
  ASSERT_GT(kernel_s, 0.0);
  ASSERT_GT(copy_s, 0.0);
  dev.sync();
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), std::max(kernel_s, copy_s));
}

TEST(Stream, SynchronousApiIsAsyncOnDefaultStreamPlusSync) {
  // Legacy callers must see bit-identical clocks: the synchronous API is
  // defined as async-on-stream-0 followed by a device sync.
  Device sync_dev(tesla_k40c());
  Device async_dev(tesla_k40c());

  sync_dev.copy_to_device(5e6);
  sync_dev.launch(small_launch(), small_cost());
  sync_dev.copy_from_device(2e6);

  async_dev.copy_to_device_async(Device::kDefaultStream, 5e6);
  async_dev.sync();
  async_dev.launch_async(Device::kDefaultStream, small_launch(), small_cost());
  async_dev.sync();
  async_dev.copy_from_device_async(Device::kDefaultStream, 2e6);
  async_dev.sync();

  EXPECT_DOUBLE_EQ(sync_dev.busy_seconds(), async_dev.busy_seconds());
  EXPECT_DOUBLE_EQ(sync_dev.bytes_transferred(), async_dev.bytes_transferred());
}

TEST(Stream, AdvanceStreamSecondsStallsOnlyThatStream) {
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.advance_stream_seconds(s1, 0.25);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s1), 0.25);
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s2), 0.0);
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
  dev.sync();
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.25);
}

TEST(Stream, RandomOpSequencesKeepTimelinesMonotone) {
  // Property suite: under arbitrary interleavings of launches, copies,
  // records, waits and syncs across three streams, (a) no stream cursor
  // ever goes backwards, (b) wait_event establishes cursor >= event, and
  // (c) sync lands the clock at the max over all timelines and re-aligns
  // every stream to it.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Device dev(seed % 2 == 0 ? geforce_gtx580() : tesla_k40c());
    std::vector<int> streams = {Device::kDefaultStream, dev.create_stream(),
                                dev.create_stream()};
    std::vector<Event> events;
    util::Xoshiro256 rng(seed);
    const auto pick = [&rng](int n) {  // uniform int in [0, n)
      return std::min(n - 1, static_cast<int>(rng.uniform() * n));
    };
    for (int op = 0; op < 60; ++op) {
      const int s = streams[static_cast<std::size_t>(pick(3))];
      const std::uint64_t before = dev.record_event(s).ns;
      switch (pick(6)) {
        case 0:
          dev.launch_async(s, small_launch(), small_cost());
          break;
        case 1:
          dev.copy_to_device_async(s, 1e6 * static_cast<double>(1 + pick(4)));
          break;
        case 2:
          dev.copy_from_device_async(s, 1e6 * static_cast<double>(1 + pick(4)));
          break;
        case 3:
          events.push_back(dev.record_event(s));
          break;
        case 4:
          if (!events.empty()) {
            const Event& e = events[static_cast<std::size_t>(
                pick(static_cast<int>(events.size())))];
            dev.wait_event(s, e);
            ASSERT_GE(dev.record_event(s).ns, e.ns) << "seed " << seed << " op " << op;
          }
          break;
        default: {
          std::uint64_t horizon = 0;
          for (const int t : streams) horizon = std::max(horizon, dev.record_event(t).ns);
          dev.sync();
          const std::uint64_t now = static_cast<std::uint64_t>(dev.busy_seconds() * 1e9 + 0.5);
          EXPECT_GE(now, horizon) << "seed " << seed << " op " << op;
          for (const int t : streams) {
            EXPECT_DOUBLE_EQ(dev.stream_seconds(t), dev.busy_seconds())
                << "seed " << seed << " op " << op;
          }
          break;
        }
      }
      ASSERT_GE(dev.record_event(s).ns, before) << "seed " << seed << " op " << op;
    }
  }
}

TEST(StreamFaults, DeathClampsAllStreamsAtTheBoundary) {
  // A card falling off the bus stops every stream: no timeline may show
  // progress past the death boundary, including siblings with in-flight
  // work and the engine-merged clock.
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.copy_to_device_async(s2, 1e5);  // sibling in-flight work, pre-death

  DeviceFaultSpec f;
  f.death_at_seconds = 1e-4;
  dev.set_fault(f, 1);
  KernelCost big;
  big.flops = 1e12;  // crosses the boundary mid-kernel
  EXPECT_THROW(dev.launch_async(s1, small_launch(), big), DeviceLostError);
  EXPECT_TRUE(dev.is_dead());
  EXPECT_NEAR(dev.stream_seconds(s1), f.death_at_seconds, 1e-9);
  EXPECT_NEAR(dev.stream_seconds(s2), f.death_at_seconds, 1e-9);
  dev.sync();
  EXPECT_NEAR(dev.busy_seconds(), f.death_at_seconds, 1e-9);
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), dev.stream_seconds(s1));
  // Every stream is dead, not just the one that hit the boundary.
  EXPECT_THROW(dev.launch_async(s2, small_launch(), small_cost()), DeviceLostError);
  EXPECT_THROW(dev.copy_to_device_async(s2, 1.0), DeviceLostError);
}

TEST(StreamFaults, TransientFailsOnlyTheLaunchingStream) {
  Device dev(geforce_gtx580());
  const int s1 = dev.create_stream();
  const int s2 = dev.create_stream();
  dev.copy_to_device_async(s2, 2e6);
  const double sibling_before = dev.stream_seconds(s2);

  DeviceFaultSpec f;
  f.transient_probability = 1.0;
  dev.set_fault(f, 3);
  EXPECT_THROW(dev.launch_async(s1, small_launch(), small_cost()), TransientFaultError);
  EXPECT_EQ(dev.transient_faults_injected(), 1u);
  EXPECT_FALSE(dev.is_dead());
  // The failed launch still occupied its own stream (the time is lost)...
  EXPECT_GT(dev.stream_seconds(s1), 0.0);
  // ...but the sibling keeps its in-flight copy untouched.
  EXPECT_DOUBLE_EQ(dev.stream_seconds(s2), sibling_before);
}

TEST(StreamFaults, ResetRestoresFreshlyConstructedState) {
  // Reuse-after-reset regression: a reset device must not remember its
  // fault plan (death time, seed) or its extra streams.
  Device dev(geforce_gtx580());
  (void)dev.create_stream();
  DeviceFaultSpec f;
  f.death_at_seconds = 1e-4;
  f.transient_probability = 0.5;
  dev.set_fault(f, 99);
  KernelCost big;
  big.flops = 1e12;
  EXPECT_THROW(dev.launch(small_launch(), big), DeviceLostError);
  ASSERT_TRUE(dev.is_dead());

  dev.reset();
  EXPECT_EQ(dev.stream_count(), 1);
  EXPECT_FALSE(dev.is_dead());
  EXPECT_TRUE(dev.fault().benign());
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
  EXPECT_EQ(dev.kernels_launched(), 0u);
  EXPECT_EQ(dev.transient_faults_injected(), 0u);
  // The old death boundary is gone: the same launch that killed the device
  // now runs to completion, well past the former death time.
  dev.launch(small_launch(), big);
  EXPECT_GT(dev.busy_seconds(), f.death_at_seconds);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(StreamFaults, RuntimeResetReattachesThePlanAndTheFaultsRepeat) {
  // Runtime::reset_all is a fresh run under the SAME plan: the seeded
  // fault sequence must replay identically, launch for launch.
  FaultPlan plan(21);
  plan.transient(0, 0.35);
  Runtime rt({geforce_gtx580()}, plan);

  const auto run_epoch = [&rt] {
    std::vector<int> failed_launches;
    for (int i = 0; i < 24; ++i) {
      try {
        rt.device(0).launch(small_launch(), small_cost());
      } catch (const TransientFaultError&) {
        failed_launches.push_back(i);
      }
    }
    return failed_launches;
  };

  const std::vector<int> first = run_epoch();
  ASSERT_FALSE(first.empty());  // p=0.35 over 24 launches: the seed fires
  const double first_clock = rt.device(0).busy_seconds();

  rt.reset_all();
  EXPECT_DOUBLE_EQ(rt.device(0).busy_seconds(), 0.0);
  EXPECT_FALSE(rt.device(0).fault().benign());  // plan re-attached, not wiped
  const std::vector<int> second = run_epoch();
  EXPECT_EQ(first, second);
  EXPECT_DOUBLE_EQ(rt.device(0).busy_seconds(), first_clock);
}

}  // namespace
}  // namespace metadock::gpusim
