#include "gpusim/device_spec.h"

#include <gtest/gtest.h>

#include "gpusim/device_db.h"

namespace metadock::gpusim {
namespace {

DeviceSpec fermi_like() {
  DeviceSpec d;
  d.sm_count = 16;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.0;
  d.max_threads_per_sm = 1536;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm_kb = 48;
  return d;
}

TEST(DeviceSpec, PeakGflopsIsCoresTimesClockTimesTwo) {
  const DeviceSpec d = fermi_like();
  EXPECT_EQ(d.total_cores(), 512);
  EXPECT_DOUBLE_EQ(d.peak_gflops(), 512.0 * 1.0 * 2.0);
}

TEST(DeviceSpec, SustainedScalesByEfficiency) {
  DeviceSpec d = fermi_like();
  d.compute_efficiency = 0.5;
  EXPECT_DOUBLE_EQ(d.sustained_gflops(), d.peak_gflops() * 0.5);
}

TEST(DeviceSpec, OccupancyLimitedByBlockCap) {
  const DeviceSpec d = fermi_like();
  // 128-thread blocks, no shared memory: thread cap allows 12, block cap 8.
  EXPECT_EQ(d.resident_blocks_per_sm(128, 0), 8);
}

TEST(DeviceSpec, OccupancyLimitedByThreads) {
  const DeviceSpec d = fermi_like();
  // 512-thread blocks: 1536/512 = 3.
  EXPECT_EQ(d.resident_blocks_per_sm(512, 0), 3);
}

TEST(DeviceSpec, OccupancyLimitedBySharedMemory) {
  const DeviceSpec d = fermi_like();
  // 10 KB per block against 48 KB: 4 resident.
  EXPECT_EQ(d.resident_blocks_per_sm(128, 10 * 1024), 4);
}

TEST(DeviceSpec, BlockTooBigIsZero) {
  const DeviceSpec d = fermi_like();
  EXPECT_EQ(d.resident_blocks_per_sm(2048, 0), 0);
  EXPECT_EQ(d.resident_blocks_per_sm(0, 0), 0);
  EXPECT_EQ(d.resident_blocks_per_sm(128, 64 * 1024), 0);
}

TEST(DeviceSpec, CccMajorFollowsArch) {
  DeviceSpec d = fermi_like();
  d.arch = Arch::kFermi;
  EXPECT_EQ(d.ccc_major(), 2);
  d.arch = Arch::kKepler;
  EXPECT_EQ(d.ccc_major(), 3);
  d.arch = Arch::kMaxwell;
  EXPECT_EQ(d.ccc_major(), 5);
  d.arch = Arch::kTesla;
  EXPECT_EQ(d.ccc_major(), 1);
}

TEST(Arch, Table1Metadata) {
  EXPECT_EQ(arch_year(Arch::kTesla), 2007);
  EXPECT_EQ(arch_year(Arch::kFermi), 2010);
  EXPECT_EQ(arch_year(Arch::kKepler), 2012);
  EXPECT_EQ(arch_year(Arch::kMaxwell), 2014);
  EXPECT_DOUBLE_EQ(arch_perf_per_watt(Arch::kTesla), 1.0);
  EXPECT_DOUBLE_EQ(arch_perf_per_watt(Arch::kMaxwell), 12.0);
  EXPECT_EQ(arch_name(Arch::kKepler), "Kepler");
}

}  // namespace
}  // namespace metadock::gpusim
