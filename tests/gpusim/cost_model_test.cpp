#include "gpusim/cost_model.h"

#include <gtest/gtest.h>

#include "gpusim/device_db.h"

namespace metadock::gpusim {
namespace {

KernelLaunch launch_of(std::int64_t blocks, int threads = 128, std::size_t shared = 0) {
  KernelLaunch l;
  l.grid_blocks = blocks;
  l.block_threads = threads;
  l.shared_bytes_per_block = shared;
  return l;
}

KernelCost cost_of(double flops, double bytes = 0.0) {
  KernelCost c;
  c.flops = flops;
  c.global_bytes = bytes;
  return c;
}

TEST(CostModel, TimeGrowsWithFlops) {
  const DeviceSpec d = geforce_gtx580();
  const double t1 = kernel_time_s(d, launch_of(1024), cost_of(1e9));
  const double t2 = kernel_time_s(d, launch_of(1024), cost_of(2e9));
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(CostModel, LargeComputeBoundLaunchApproachesSustainedRate) {
  const DeviceSpec d = geforce_gtx580();
  const double flops = 1e12;
  const double t = kernel_time_s(d, launch_of(100000), cost_of(flops));
  const double implied = flops / t / 1e9;  // GFLOPS
  EXPECT_NEAR(implied, d.sustained_gflops(), d.sustained_gflops() * 0.02);
}

TEST(CostModel, MemoryBoundLaunchFollowsBandwidth) {
  const DeviceSpec d = geforce_gtx580();
  const double bytes = 1e10;
  const double t = kernel_time_s(d, launch_of(100000), cost_of(1.0, bytes));
  const double implied = bytes / t / 1e9;
  EXPECT_NEAR(implied, d.dram_bw_gbs * d.memory_efficiency, d.dram_bw_gbs * 0.02);
}

TEST(CostModel, RooflineTakesTheMax) {
  const DeviceSpec d = geforce_gtx580();
  const double t_c = kernel_time_s(d, launch_of(100000), cost_of(1e12, 1.0));
  const double t_m = kernel_time_s(d, launch_of(100000), cost_of(1.0, 1e10));
  const double t_both = kernel_time_s(d, launch_of(100000), cost_of(1e12, 1e10));
  EXPECT_NEAR(t_both, std::max(t_c, t_m), std::max(t_c, t_m) * 0.01);
}

TEST(CostModel, LaunchOverheadFloorsTinyKernels) {
  const DeviceSpec d = geforce_gtx580();
  CostModelParams p;
  const double t = kernel_time_s(d, launch_of(1), cost_of(1.0), p);
  EXPECT_GE(t, p.launch_overhead_s);
}

TEST(CostModel, LowOccupancySlowsSmallLaunches) {
  const DeviceSpec d = geforce_gtx580();
  // Same total flops, 16 blocks (one per SM, 4 warps each = low occupancy)
  // vs plenty of blocks.
  const double flops = 1e9;
  const double t_small = kernel_time_s(d, launch_of(16), cost_of(flops));
  const double t_large = kernel_time_s(d, launch_of(16000), cost_of(flops * 1000.0)) / 1000.0;
  EXPECT_GT(t_small, 1.5 * t_large);
}

TEST(CostModel, SmTailMakesThroughputSublinearInBlocks) {
  const DeviceSpec d = geforce_gtx580();  // 16 SMs
  // Same per-block cost at saturated occupancy: the (SMs-1)/2 tail means
  // n+1 blocks cost strictly more than n, but per-block time decreases
  // toward the asymptote as the tail amortizes.
  const double per_block = 1e8;
  const double t_n = kernel_time_s(d, launch_of(1600), cost_of(1600 * per_block));
  const double t_n1 = kernel_time_s(d, launch_of(1601), cost_of(1601 * per_block));
  EXPECT_GT(t_n1, t_n);
  const double t_small = kernel_time_s(d, launch_of(160), cost_of(160 * per_block));
  EXPECT_GT(t_small / 160.0, t_n / 1600.0);  // small launches pay more per block
}

TEST(CostModel, FasterDeviceIsFaster) {
  const DeviceSpec fast = tesla_k40c();
  const DeviceSpec slow = geforce_gtx580();
  const KernelLaunch l = launch_of(4096);
  const KernelCost c = cost_of(1e11);
  EXPECT_LT(kernel_time_s(fast, l, c), kernel_time_s(slow, l, c));
}

TEST(CostModel, EmptyLaunchThrows) {
  const DeviceSpec d = geforce_gtx580();
  EXPECT_THROW((void)kernel_time_s(d, launch_of(0), cost_of(1.0)), std::invalid_argument);
  EXPECT_THROW((void)kernel_time_s(d, launch_of(16, 0), cost_of(1.0)), std::invalid_argument);
}

TEST(CostModel, OversizedBlockThrows) {
  const DeviceSpec d = geforce_gtx580();
  EXPECT_THROW((void)kernel_time_s(d, launch_of(16, 2048), cost_of(1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)kernel_time_s(d, launch_of(16, 128, 80 * 1024), cost_of(1.0)),
               std::invalid_argument);
}

TEST(CostModel, TransferTimeIsLatencyPlusBandwidth) {
  const DeviceSpec d = geforce_gtx580();
  CostModelParams p;
  const double t0 = transfer_time_s(d, 0.0, p);
  EXPECT_DOUBLE_EQ(t0, p.transfer_latency_s);
  const double bytes = 6e9;  // exactly one second at 6 GB/s
  EXPECT_NEAR(transfer_time_s(d, bytes, p), 1.0 + p.transfer_latency_s, 1e-9);
}

TEST(CostModel, NegativeTransferThrows) {
  EXPECT_THROW((void)transfer_time_s(geforce_gtx580(), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::gpusim
