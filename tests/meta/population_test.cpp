#include "meta/population.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geom/quat.h"
#include "util/pool.h"
#include "util/rng.h"

namespace metadock::meta {
namespace {

scoring::Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(seed);
  scoring::Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

bool same_pose(const scoring::Pose& a, const scoring::Pose& b) {
  return a.position.x == b.position.x && a.position.y == b.position.y &&
         a.position.z == b.position.z && a.orientation.w == b.orientation.w &&
         a.orientation.x == b.orientation.x && a.orientation.y == b.orientation.y &&
         a.orientation.z == b.orientation.z;
}

TEST(PopulationSoA, RoundTripsIndividuals) {
  util::Arena arena;
  PopulationSoA pop;
  pop.bind(arena, 8);
  pop.set_size(3);
  for (std::size_t i = 0; i < 3; ++i) {
    pop.set_individual(i, {sample_pose(i), static_cast<double>(i) - 1.5});
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const Individual ind = pop.individual(i);
    EXPECT_TRUE(same_pose(ind.pose, sample_pose(i))) << i;
    EXPECT_DOUBLE_EQ(ind.score, static_cast<double>(i) - 1.5);
  }
}

TEST(PopulationSoA, SetSizeThrowsPastCapacityAndKeepsContents) {
  util::Arena arena;
  PopulationSoA pop;
  pop.bind(arena, 4);
  pop.set_size(4);
  pop.set_individual(2, {sample_pose(7), -3.0});
  EXPECT_THROW(pop.set_size(5), std::length_error);
  // Shrink + regrow must not clobber slots below the old size.
  pop.set_size(3);
  pop.set_size(4);
  EXPECT_TRUE(same_pose(pop.pose(2), sample_pose(7)));
  EXPECT_DOUBLE_EQ(pop.score(2), -3.0);
}

TEST(PopulationSoA, PoseViewSeesColumnsWithoutCopy) {
  util::Arena arena;
  PopulationSoA pop;
  pop.bind(arena, 4);
  pop.set_size(2);
  pop.set_pose(0, sample_pose(1));
  pop.set_pose(1, sample_pose(2));
  const scoring::PoseSoAView v = pop.pose_view();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(same_pose(v.get(0), sample_pose(1)));
  EXPECT_TRUE(same_pose(v.get(1), sample_pose(2)));
}

TEST(PopulationSoA, SortByScoreOrdersAllColumnsTogether) {
  util::Arena arena;
  PopulationSoA pop, tmp;
  pop.bind(arena, 16);
  tmp.bind(arena, 16);
  const std::span<std::uint32_t> idx = arena.make_span<std::uint32_t>(16);

  const std::vector<double> scores{4.0, -2.0, 7.0, 0.5, -9.0, 3.25};
  pop.set_size(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    pop.set_individual(i, {sample_pose(i), scores[i]});
  }
  pop.sort_by_score(idx, tmp);

  // Ascending scores, and every pose still travels with its score.
  const std::vector<std::size_t> expected_order{4, 1, 3, 5, 0, 2};
  for (std::size_t i = 0; i + 1 < pop.size(); ++i) {
    EXPECT_LE(pop.score(i), pop.score(i + 1));
  }
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_DOUBLE_EQ(pop.score(i), scores[expected_order[i]]);
    EXPECT_TRUE(same_pose(pop.pose(i), sample_pose(expected_order[i]))) << i;
  }
}

TEST(PopulationSoA, SortRejectsUndersizedScratch) {
  util::Arena arena;
  PopulationSoA pop, small_tmp;
  pop.bind(arena, 8);
  small_tmp.bind(arena, 2);
  const std::span<std::uint32_t> idx = arena.make_span<std::uint32_t>(8);
  pop.set_size(4);
  EXPECT_THROW(pop.sort_by_score(idx.first(2), small_tmp), std::length_error);
  EXPECT_THROW(pop.sort_by_score(idx, small_tmp), std::length_error);
}

TEST(PopulationSoA, MergeKeepBestIsElitist) {
  util::Arena arena;
  PopulationSoA s, scom, tmp;
  s.bind(arena, 8);
  scom.bind(arena, 4);
  tmp.bind(arena, 8);
  const std::span<std::uint32_t> idx = arena.make_span<std::uint32_t>(8);

  s.set_size(4);
  const std::vector<double> base{1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < 4; ++i) s.set_individual(i, {sample_pose(i), base[i]});
  scom.set_size(2);
  scom.set_individual(0, {sample_pose(10), 0.5});   // better than everything
  scom.set_individual(1, {sample_pose(11), 99.0});  // worse than everything

  s.merge_keep_best(scom, 4, idx, tmp);

  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.score(0), 0.5);
  EXPECT_TRUE(same_pose(s.pose(0), sample_pose(10)));
  EXPECT_DOUBLE_EQ(s.score(1), 1.0);
  EXPECT_DOUBLE_EQ(s.score(3), 3.0);  // the 99.0 and the old 4.0 fell off
}

TEST(PopulationSoA, CopyFromReplicatesExactly) {
  util::Arena arena;
  PopulationSoA a, b;
  a.bind(arena, 4);
  b.bind(arena, 4);
  a.set_size(3);
  for (std::size_t i = 0; i < 3; ++i) a.set_individual(i, {sample_pose(20 + i), double(i)});
  b.copy_from(a);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(same_pose(b.pose(i), a.pose(i)));
    EXPECT_DOUBLE_EQ(b.score(i), a.score(i));
  }
}

}  // namespace
}  // namespace metadock::meta
