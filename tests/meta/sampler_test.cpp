#include "meta/sampler.h"

#include <gtest/gtest.h>

namespace metadock::meta {
namespace {

surface::Spot make_spot() {
  surface::Spot s;
  s.id = 1;
  s.center = {10, 0, 0};
  s.outward = {1, 0, 0};
  s.radius = 4.0f;
  return s;
}

TEST(Sampler, InitialPoseWithinSearchSphere) {
  const surface::Spot spot = make_spot();
  const float lig_r = 2.0f;
  auto rng = util::stream(1, 2, 3);
  for (int i = 0; i < 200; ++i) {
    const scoring::Pose p = initial_pose(spot, lig_r, rng);
    const geom::Vec3 anchor = spot.center + spot.outward * (0.8f * lig_r);
    EXPECT_LE(p.position.distance(anchor), spot.radius + 1e-4f);
    EXPECT_NEAR(p.orientation.norm(), 1.0f, 1e-5f);
  }
}

TEST(Sampler, InitialPoseIsPushedOutward) {
  const surface::Spot spot = make_spot();
  auto rng = util::stream(7);
  double mean_x = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) mean_x += initial_pose(spot, 5.0f, rng).position.x;
  mean_x /= n;
  // Anchor at 10 + 0.8*5 = 14 along +x.
  EXPECT_NEAR(mean_x, 14.0, 0.5);
}

TEST(Sampler, CombineBlendsPositionsBetweenParents) {
  auto rng = util::stream(11);
  scoring::Pose a, b;
  a.position = {0, 0, 0};
  b.position = {10, 0, 0};
  for (int i = 0; i < 100; ++i) {
    const scoring::Pose child = combine_poses(a, b, 0.0f, 0.0f, rng);
    EXPECT_GE(child.position.x, -1e-4f);
    EXPECT_LE(child.position.x, 10.0f + 1e-4f);
    EXPECT_NEAR(child.position.y, 0.0f, 1e-4f);
  }
}

TEST(Sampler, CombineMutationAddsSpread) {
  auto rng = util::stream(13);
  scoring::Pose a;  // both parents identical at origin
  double spread = 0.0;
  for (int i = 0; i < 200; ++i) {
    spread += combine_poses(a, a, 1.0f, 0.1f, rng).position.norm();
  }
  EXPECT_GT(spread / 200.0, 0.5);  // mutation moved the children
}

TEST(Sampler, PerturbKeepsOrientationUnit) {
  auto rng = util::stream(17);
  scoring::Pose p;
  for (int i = 0; i < 100; ++i) {
    p = perturb_pose(p, 0.3f, 0.15f, rng);
    EXPECT_NEAR(p.orientation.norm(), 1.0f, 1e-4f);
  }
}

TEST(Sampler, PerturbScaleControlsStepSize) {
  auto rng1 = util::stream(19);
  auto rng2 = util::stream(19);
  scoring::Pose p;
  double small_steps = 0.0, big_steps = 0.0;
  for (int i = 0; i < 200; ++i) {
    small_steps += perturb_pose(p, 0.1f, 0.05f, rng1).position.norm();
    big_steps += perturb_pose(p, 1.0f, 0.05f, rng2).position.norm();
  }
  EXPECT_GT(big_steps, 3.0 * small_steps);
}

TEST(Sampler, ZeroSigmaPerturbationIsAlmostIdentity) {
  auto rng = util::stream(23);
  scoring::Pose p;
  p.position = {1, 2, 3};
  const scoring::Pose q = perturb_pose(p, 0.0f, 0.0f, rng);
  EXPECT_NEAR(q.position.distance(p.position), 0.0f, 1e-5f);
  EXPECT_NEAR(q.orientation.angle_to(p.orientation), 0.0f, 1e-3f);
}

TEST(Sampler, DeterministicGivenSameStream) {
  const surface::Spot spot = make_spot();
  auto rng1 = util::stream(31, 1);
  auto rng2 = util::stream(31, 1);
  const scoring::Pose a = initial_pose(spot, 2.0f, rng1);
  const scoring::Pose b = initial_pose(spot, 2.0f, rng2);
  EXPECT_EQ(a.position, b.position);
}

}  // namespace
}  // namespace metadock::meta
