#include "meta/trace.h"

#include <gtest/gtest.h>

namespace metadock::meta {
namespace {

TEST(Trace, M1IsInitPlusOneCombinePerGeneration) {
  MetaheuristicParams p = m1_genetic();
  p.generations = 3;
  const WorkloadTrace t = WorkloadTrace::from_params(p);
  ASSERT_EQ(t.per_spot_batches.size(), 4u);  // init + 3 combines
  for (std::size_t b : t.per_spot_batches) EXPECT_EQ(b, 64u);
}

TEST(Trace, ImproveBatchesUseImproveCount) {
  MetaheuristicParams p = m3_scatter_light();
  p.generations = 1;
  const WorkloadTrace t = WorkloadTrace::from_params(p);
  // init(64) + combine(64) + 5 x improve(13 = round(0.2*64)).
  ASSERT_EQ(t.per_spot_batches.size(), 7u);
  EXPECT_EQ(t.per_spot_batches[0], 64u);
  EXPECT_EQ(t.per_spot_batches[1], 64u);
  for (std::size_t i = 2; i < 7; ++i) EXPECT_EQ(t.per_spot_batches[i], 13u);
}

TEST(Trace, OnePassSkipsCombine) {
  MetaheuristicParams p = m4_local_search();
  p.improve_steps = 2;
  const WorkloadTrace t = WorkloadTrace::from_params(p);
  ASSERT_EQ(t.per_spot_batches.size(), 3u);  // init + 2 improves
  EXPECT_EQ(t.per_spot_batches[0], 1024u);
  EXPECT_EQ(t.per_spot_batches[1], 1024u);
}

TEST(Trace, EvalsPerSpotMatchesParamsFormula) {
  for (const MetaheuristicParams& p : table4_presets()) {
    const WorkloadTrace t = WorkloadTrace::from_params(p);
    EXPECT_NEAR(static_cast<double>(t.evals_per_spot()), p.expected_evals_per_spot(),
                1e-9)
        << p.name;
  }
}

TEST(Trace, ZeroImproveFractionHasNoImproveBatches) {
  MetaheuristicParams p = m1_genetic();
  p.improve_steps = 10;  // irrelevant without an improve fraction
  const WorkloadTrace t = WorkloadTrace::from_params(p);
  EXPECT_EQ(t.per_spot_batches.size(), 1u + static_cast<std::size_t>(p.generations));
}

}  // namespace
}  // namespace metadock::meta
