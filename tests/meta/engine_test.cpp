#include "meta/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "meta/trace.h"
#include "mol/synth.h"

namespace metadock::meta {
namespace {

// Small shared problem so the full numeric engine stays fast.
const DockingProblem& problem() {
  static const DockingProblem p = [] {
    mol::ReceptorParams rp;
    rp.atom_count = 400;
    rp.seed = 7;
    static const mol::Molecule receptor = mol::make_receptor(rp);
    mol::LigandParams lp;
    lp.atom_count = 12;
    lp.seed = 8;
    static const mol::Molecule ligand = mol::make_ligand(lp);
    return make_problem(receptor, ligand, /*seed=*/42);
  }();
  return p;
}

MetaheuristicParams tiny(const MetaheuristicParams& base, int pop = 8, int gens = 3) {
  MetaheuristicParams p = base;
  p.population_per_spot = pop;
  if (p.population_based) {
    p.generations = gens;
  } else {
    p.improve_steps = std::min(p.improve_steps, 6);
  }
  return p;
}

TEST(Engine, ProblemFactoryFindsSpotsAndRadius) {
  EXPECT_GT(problem().spots.size(), 5u);
  EXPECT_GT(problem().ligand_radius, 0.5f);
}

TEST(Engine, MakeProblemRejectsEmptyMolecules) {
  const mol::Molecule empty;
  mol::LigandParams lp;
  const mol::Molecule lig = mol::make_ligand(lp);
  EXPECT_THROW((void)make_problem(empty, lig), std::invalid_argument);
}

TEST(Engine, InvalidParamsThrow) {
  MetaheuristicParams p = m1_genetic();
  p.population_per_spot = 0;
  EXPECT_THROW(MetaheuristicEngine{p}, std::invalid_argument);
  p = m1_genetic();
  p.generations = 0;
  EXPECT_THROW(MetaheuristicEngine{p}, std::invalid_argument);
  p = m1_genetic();
  p.select_fraction = 0.0;
  EXPECT_THROW(MetaheuristicEngine{p}, std::invalid_argument);
  p = m1_genetic();
  p.improve_fraction = 1.5;
  EXPECT_THROW(MetaheuristicEngine{p}, std::invalid_argument);
}

TEST(Engine, ReturnsOneResultPerSpot) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  const RunResult r = MetaheuristicEngine(tiny(m1_genetic())).run(problem(), eval);
  EXPECT_EQ(r.spot_results.size(), problem().spots.size());
}

TEST(Engine, BestIsMinimumOverSpots) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  const RunResult r = MetaheuristicEngine(tiny(m2_scatter_full())).run(problem(), eval);
  double min_score = r.spot_results.front().best.score;
  for (const SpotResult& sr : r.spot_results) min_score = std::min(min_score, sr.best.score);
  EXPECT_DOUBLE_EQ(r.best.score, min_score);
}

TEST(Engine, DeterministicAcrossRuns) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator e1(scorer), e2(scorer);
  const MetaheuristicEngine engine(tiny(m2_scatter_full()));
  const RunResult a = engine.run(problem(), e1);
  const RunResult b = engine.run(problem(), e2);
  ASSERT_EQ(a.spot_results.size(), b.spot_results.size());
  for (std::size_t i = 0; i < a.spot_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.spot_results[i].best.score, b.spot_results[i].best.score);
  }
}

TEST(Engine, SeedChangesTrajectories) {
  DockingProblem p2 = problem();
  p2.seed = 43;
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator e1(scorer), e2(scorer);
  const MetaheuristicEngine engine(tiny(m1_genetic()));
  const RunResult a = engine.run(problem(), e1);
  const RunResult b = engine.run(p2, e2);
  EXPECT_NE(a.best.score, b.best.score);
}

// THE key scheduling property: a spot's result is identical whether it runs
// alone, with all spots, or in any subset — which is why splitting work
// across heterogeneous devices cannot change the science.
TEST(Engine, SpotResultsAreSubsetInvariant) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  const MetaheuristicEngine engine(tiny(m2_scatter_full()));

  DirectEvaluator e_all(scorer);
  const RunResult all = engine.run(problem(), e_all);

  // Run spots {2, 5} as a pair, and spot 5 alone.
  const std::vector<std::size_t> pair{2, 5};
  const std::vector<std::size_t> solo{5};
  DirectEvaluator e_pair(scorer), e_solo(scorer);
  const RunResult r_pair = engine.run(problem(), e_pair, pair);
  const RunResult r_solo = engine.run(problem(), e_solo, solo);

  auto find = [](const RunResult& r, int id) {
    for (const SpotResult& sr : r.spot_results) {
      if (sr.spot_id == id) return sr.best.score;
    }
    ADD_FAILURE() << "spot " << id << " missing";
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(find(all, 2), find(r_pair, 2));
  EXPECT_DOUBLE_EQ(find(all, 5), find(r_pair, 5));
  EXPECT_DOUBLE_EQ(find(all, 5), find(r_solo, 5));
}

TEST(Engine, MoreGenerationsNeverWorseBest) {
  // Elitist Include: the best individual can only improve with more
  // generations under the same seed.
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams p = tiny(m2_scatter_full(), 8, 1);
  DirectEvaluator e1(scorer);
  const double best1 = MetaheuristicEngine(p).run(problem(), e1).best.score;
  p.generations = 5;
  DirectEvaluator e5(scorer);
  const double best5 = MetaheuristicEngine(p).run(problem(), e5).best.score;
  EXPECT_LE(best5, best1);
}

TEST(Engine, ImproveLowersEnergyVersusNoImprove) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams no_ls = tiny(m1_genetic(), 8, 4);
  MetaheuristicParams ls = no_ls;
  ls.improve_fraction = 1.0;
  ls.improve_steps = 6;
  DirectEvaluator e1(scorer), e2(scorer);
  const double without = MetaheuristicEngine(no_ls).run(problem(), e1).best.score;
  const double with_ls = MetaheuristicEngine(ls).run(problem(), e2).best.score;
  EXPECT_LE(with_ls, without);
}

TEST(Engine, EvaluationCountMatchesFormula) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  for (const MetaheuristicParams& base : table4_presets()) {
    const MetaheuristicParams p = tiny(base);
    DirectEvaluator eval(scorer);
    const RunResult r = MetaheuristicEngine(p).run(problem(), eval);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.evaluations),
                     p.expected_evals_per_spot() * static_cast<double>(problem().spots.size()))
        << p.name;
  }
}

TEST(Engine, BatchScheduleMatchesAnalyticTrace) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  for (const MetaheuristicParams& base : table4_presets()) {
    const MetaheuristicParams p = tiny(base);
    DirectEvaluator eval(scorer);
    const RunResult r = MetaheuristicEngine(p).run(problem(), eval);
    const WorkloadTrace trace = WorkloadTrace::from_params(p);
    ASSERT_EQ(r.batch_sizes.size(), trace.per_spot_batches.size()) << p.name;
    for (std::size_t i = 0; i < trace.per_spot_batches.size(); ++i) {
      EXPECT_EQ(r.batch_sizes[i], trace.per_spot_batches[i] * problem().spots.size())
          << p.name << " batch " << i;
    }
  }
}

TEST(Engine, M4RunsOnePassOfPureLocalSearch) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams p = m4_local_search();
  p.population_per_spot = 16;
  p.improve_steps = 4;
  DirectEvaluator eval(scorer);
  const RunResult r = MetaheuristicEngine(p).run(problem(), eval);
  // init + 4 improve batches, no combine batches.
  EXPECT_EQ(r.batch_sizes.size(), 5u);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(Engine, AnnealingRuleRunsAndElitismHolds) {
  // SA may accept worse moves inside Improve, but Include is elitist, so
  // the run-best is still monotone in generations (the first generation's
  // trajectory is a shared prefix under the same seed).
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams p1 = tiny(sa_annealing(), 8, 1);
  MetaheuristicParams p3 = tiny(sa_annealing(), 8, 3);
  DirectEvaluator e1(scorer), e3(scorer);
  const double best1 = MetaheuristicEngine(p1).run(problem(), e1).best.score;
  const double best3 = MetaheuristicEngine(p3).run(problem(), e3).best.score;
  EXPECT_LE(best3, best1);
  EXPECT_LT(best3, 0.0);
}

TEST(Engine, TabuRuleRunsAndDiffersFromGreedy) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams greedy = tiny(m2_scatter_full(), 8, 3);
  MetaheuristicParams tabu = greedy;
  tabu.accept = AcceptRule::kTabu;
  tabu.tabu_radius = 2.0f;  // aggressive memory so trajectories diverge
  tabu.tabu_tenure = 8;
  DirectEvaluator e1(scorer), e2(scorer);
  const RunResult rg = MetaheuristicEngine(greedy).run(problem(), e1);
  const RunResult rt = MetaheuristicEngine(tabu).run(problem(), e2);
  // Same evaluation schedule, different accepted trajectories.
  EXPECT_EQ(rg.evaluations, rt.evaluations);
  EXPECT_NE(rg.best.score, rt.best.score);
  EXPECT_LT(rt.best.score, 0.0);
}

TEST(Engine, TabuIsDeterministic) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  MetaheuristicParams p = tiny(tabu_search(), 8, 2);
  DirectEvaluator e1(scorer), e2(scorer);
  const double a = MetaheuristicEngine(p).run(problem(), e1).best.score;
  const double b = MetaheuristicEngine(p).run(problem(), e2).best.score;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Engine, BadSpotIndexThrows) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  const std::vector<std::size_t> bad{problem().spots.size() + 10};
  EXPECT_THROW((void)MetaheuristicEngine(tiny(m1_genetic())).run(problem(), eval, bad),
               std::out_of_range);
}

// Property sweep across every preset (the paper's four plus the two
// extension rules): determinism, monotone elitism, and schedule-analytic
// batch counts must hold for all of them.
class PresetSweep : public ::testing::TestWithParam<MetaheuristicParams> {
 protected:
  [[nodiscard]] MetaheuristicParams shrunk() const {
    return tiny(GetParam(), 8, 2);
  }
};

TEST_P(PresetSweep, DeterministicBestScore) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator e1(scorer), e2(scorer);
  const MetaheuristicEngine engine(shrunk());
  EXPECT_DOUBLE_EQ(engine.run(problem(), e1).best.score,
                   engine.run(problem(), e2).best.score);
}

TEST_P(PresetSweep, FindsAttractivePose) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  EXPECT_LT(MetaheuristicEngine(shrunk()).run(problem(), eval).best.score, 0.0);
}

TEST_P(PresetSweep, EvaluationsMatchFormula) {
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  const MetaheuristicParams p = shrunk();
  const RunResult r = MetaheuristicEngine(p).run(problem(), eval);
  EXPECT_DOUBLE_EQ(static_cast<double>(r.evaluations),
                   p.expected_evals_per_spot() * static_cast<double>(problem().spots.size()));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSweep,
                         ::testing::Values(m1_genetic(), m2_scatter_full(),
                                           m3_scatter_light(), m4_local_search(),
                                           sa_annealing(), tabu_search()),
                         [](const auto& info) { return info.param.name; });

TEST(Engine, BestScoresAreNegative) {
  // With a well-formed LJ landscape, docking finds attractive poses.
  scoring::LennardJonesScorer scorer(*problem().receptor, *problem().ligand);
  DirectEvaluator eval(scorer);
  const RunResult r = MetaheuristicEngine(tiny(m2_scatter_full(), 16, 4)).run(problem(), eval);
  EXPECT_LT(r.best.score, 0.0);
}

}  // namespace
}  // namespace metadock::meta
