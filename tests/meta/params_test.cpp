#include "meta/params.h"

#include <gtest/gtest.h>

namespace metadock::meta {
namespace {

// Table 4: initial population, % selected, % improved.
TEST(Params, M1MatchesTable4) {
  const MetaheuristicParams p = m1_genetic();
  EXPECT_EQ(p.population_per_spot, 64);
  EXPECT_DOUBLE_EQ(p.select_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.improve_fraction, 0.0);
  EXPECT_TRUE(p.population_based);
}

TEST(Params, M2MatchesTable4) {
  const MetaheuristicParams p = m2_scatter_full();
  EXPECT_EQ(p.population_per_spot, 64);
  EXPECT_DOUBLE_EQ(p.improve_fraction, 1.0);
  EXPECT_GT(p.improve_steps, 0);
}

TEST(Params, M3MatchesTable4) {
  const MetaheuristicParams p = m3_scatter_light();
  EXPECT_EQ(p.population_per_spot, 64);
  EXPECT_DOUBLE_EQ(p.improve_fraction, 0.2);
}

TEST(Params, M4MatchesTable4) {
  const MetaheuristicParams p = m4_local_search();
  EXPECT_EQ(p.population_per_spot, 1024);
  EXPECT_FALSE(p.population_based);
  EXPECT_EQ(p.generations, 1);  // "M4 applies only one step"
  EXPECT_DOUBLE_EQ(p.improve_fraction, 1.0);
}

TEST(Params, Table4PresetsInOrder) {
  const auto presets = table4_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "M1");
  EXPECT_EQ(presets[3].name, "M4");
}

// The relative evaluation counts reproduce the relative execution times of
// Tables 6-9 (which are dataset-independent in the paper): M2/M1 ~ 1.62,
// M3/M1 ~ 0.51, M4/M1 ~ 50.
TEST(Params, WorkRatiosMatchPaperTables) {
  const double e1 = m1_genetic().expected_evals_per_spot();
  EXPECT_NEAR(m2_scatter_full().expected_evals_per_spot() / e1, 1.62, 0.03);
  EXPECT_NEAR(m3_scatter_light().expected_evals_per_spot() / e1, 0.51, 0.03);
  EXPECT_NEAR(m4_local_search().expected_evals_per_spot() / e1, 50.0, 1.0);
}

TEST(Params, ExpectedEvalsFormulaPopulationBased) {
  MetaheuristicParams p;
  p.population_per_spot = 10;
  p.generations = 3;
  p.improve_fraction = 0.5;
  p.improve_steps = 2;
  // init 10 + 3 * (10 combine + 10*0.5*2 improve) = 10 + 3*20 = 70.
  EXPECT_DOUBLE_EQ(p.expected_evals_per_spot(), 70.0);
}

TEST(Params, ExpectedEvalsFormulaOnePass) {
  MetaheuristicParams p;
  p.population_based = false;
  p.population_per_spot = 100;
  p.generations = 1;
  p.improve_fraction = 1.0;
  p.improve_steps = 4;
  EXPECT_DOUBLE_EQ(p.expected_evals_per_spot(), 500.0);
}

TEST(Params, ScaledReducesGenerations) {
  const MetaheuristicParams p = m1_genetic().scaled(0.25);
  EXPECT_EQ(p.generations, m1_genetic().generations / 4);
}

TEST(Params, ScaledReducesOnePassDepth) {
  const MetaheuristicParams p = m4_local_search().scaled(0.25);
  EXPECT_EQ(p.generations, 1);
  EXPECT_EQ(p.improve_steps, m4_local_search().improve_steps / 4);
}

TEST(Params, ScaledNeverBelowOne) {
  const MetaheuristicParams p = m1_genetic().scaled(1e-9);
  EXPECT_GE(p.generations, 1);
}

TEST(Params, ScaleAboveOneIsIdentity) {
  const MetaheuristicParams p = m2_scatter_full().scaled(2.0);
  EXPECT_EQ(p.generations, m2_scatter_full().generations);
}

TEST(Params, SaPresetUsesAnnealing) {
  EXPECT_EQ(sa_annealing().accept, AcceptRule::kAnnealing);
}

TEST(Params, TabuPresetUsesTabuRule) {
  const MetaheuristicParams p = tabu_search();
  EXPECT_EQ(p.accept, AcceptRule::kTabu);
  EXPECT_GT(p.tabu_tenure, 0);
  EXPECT_GT(p.tabu_radius, 0.0f);
}

}  // namespace
}  // namespace metadock::meta
