#include "sched/message.h"

#include <gtest/gtest.h>

namespace metadock::sched {
namespace {

TEST(Message, TimeIsLatencyPlusBandwidthTable) {
  struct Case {
    double latency_s;
    double bandwidth_gbs;
    double bytes;
    double expect_s;
  };
  const Case cases[] = {
      // Zero payload costs exactly one latency.
      {50e-6, 5.0, 0.0, 50e-6},
      // 5 GB at 5 GB/s is one second plus latency.
      {50e-6, 5.0, 5e9, 1.0 + 50e-6},
      // Control message: latency-dominated.
      {50e-6, 5.0, 64.0, 50e-6 + 64.0 / 5e9},
      // Slow interconnect: bandwidth-dominated.
      {1e-6, 0.1, 1e6, 1e-6 + 1e6 / 0.1e9},
      // Fat pipe, tiny latency.
      {1e-9, 100.0, 1e9, 1e-9 + 0.01},
  };
  for (const Case& c : cases) {
    NetworkModel net;
    net.latency_s = c.latency_s;
    net.bandwidth_gbs = c.bandwidth_gbs;
    EXPECT_DOUBLE_EQ(net.message_time_s(c.bytes), c.expect_s)
        << "latency=" << c.latency_s << " bw=" << c.bandwidth_gbs << " bytes=" << c.bytes;
  }
}

TEST(Message, TimeIsMonotoneInBytes) {
  const NetworkModel net;
  double prev = -1.0;
  for (double bytes : {0.0, 64.0, 1024.0, 65536.0, 1e6, 1e9}) {
    const double t = net.message_time_s(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Message, PayloadHelpersScaleWithScience) {
  EXPECT_DOUBLE_EQ(receptor_payload_bytes(1000), 17e3);
  EXPECT_DOUBLE_EQ(ligand_payload_bytes(0), 64.0);
  EXPECT_DOUBLE_EQ(ligand_payload_bytes(20), 64.0 + 480.0);
  EXPECT_DOUBLE_EQ(handoff_state_bytes(0), 128.0);
  EXPECT_DOUBLE_EQ(handoff_state_bytes(256), 128.0 + 36.0 * 256.0);
}

TEST(Message, EveryKindHasAName) {
  for (std::size_t k = 0; k < kMessageKindCount; ++k) {
    EXPECT_NE(message_name(static_cast<MessageKind>(k)), "unknown");
  }
}

TEST(Message, StatsAccumulatePerKind) {
  MessageStats stats;
  stats.record(MessageKind::kDispatch, 0.25);
  stats.record(MessageKind::kDispatch, 0.50);
  stats.record(MessageKind::kResultReturn, 0.125);
  EXPECT_EQ(stats.of(MessageKind::kDispatch).count, 2u);
  EXPECT_DOUBLE_EQ(stats.of(MessageKind::kDispatch).seconds, 0.75);
  EXPECT_EQ(stats.of(MessageKind::kResultReturn).count, 1u);
  EXPECT_EQ(stats.of(MessageKind::kStealRequest).count, 0u);
  EXPECT_EQ(stats.total_count(), 3u);
  EXPECT_DOUBLE_EQ(stats.total_seconds(), 0.875);
}

}  // namespace
}  // namespace metadock::sched
