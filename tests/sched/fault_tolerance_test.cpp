// Fault-tolerance of the batch scorer and node executor under seeded
// gpusim::FaultPlan schedules: every injected fault is either retried,
// re-split around, or degraded past — the science must be bit-identical to
// a fault-free run, and the FaultReport must account for every fault.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "gpusim/device_db.h"
#include "gpusim/fault_plan.h"
#include "mol/synth.h"
#include "scoring/batch_engine.h"
#include "sched/executor.h"
#include "sched/multi_gpu.h"
#include "sched/node_config.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace metadock::sched {
namespace {

using testing::mixed_node_runtime;
using testing::tiny_problem;

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  Fixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 180;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 11;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n, std::uint64_t seed = 3) {
  util::Xoshiro256 rng(seed);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

meta::MetaheuristicParams tiny_params() {
  meta::MetaheuristicParams p = meta::m3_scatter_light();
  p.population_per_spot = 8;
  p.generations = 2;
  return p;
}

TEST(FaultTolerance, TransientFaultsAreRetriedAndScoresMatch) {
  Fixture f;
  const auto poses = random_poses(256);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  gpusim::FaultPlan plan(17);
  plan.transient(0, 0.4);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuOptions fault_opt;
  fault_opt.faults.max_retries = 8;  // deep enough that no slice exhausts it
  MultiGpuBatchScorer mgs(rt, f.scorer, fault_opt);
  std::vector<double> got(poses.size());
  // One kernel launch per device per batch: several batches give the seeded
  // 40% failure stream enough launches to fire.
  for (int batch = 0; batch < 10; ++batch) {
    mgs.evaluate(poses, got);
    for (std::size_t i = 0; i < poses.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], expected[i]) << "batch " << batch << " pose " << i;
    }
  }
  const FaultReport& r = mgs.fault_report();
  EXPECT_GT(r.transient_faults, 0u);
  EXPECT_EQ(r.devices_lost, 0u);
  // With no quarantine, every observed fault was answered by a retry.
  EXPECT_EQ(r.retries, r.transient_faults);
  EXPECT_GT(r.time_lost_seconds, 0.0);
}

TEST(FaultTolerance, MidRunDeathResplitsAcrossSurvivors) {
  Fixture f;
  const auto poses = random_poses(512);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  // Time a fault-free run of the same batch to place the death mid-slice.
  gpusim::Runtime clean = mixed_node_runtime();
  MultiGpuBatchScorer clean_mgs(clean, f.scorer, {});
  std::vector<double> clean_out(poses.size());
  clean_mgs.evaluate(poses, clean_out);
  const double mid = 0.5 * clean.device(0).busy_seconds();
  ASSERT_GT(mid, 0.0);

  gpusim::FaultPlan plan;
  plan.kill(0, mid);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  std::vector<double> got(poses.size());
  mgs.evaluate(poses, got);

  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expected[i]) << "pose " << i;
  }
  const FaultReport& r = mgs.fault_report();
  EXPECT_EQ(r.devices_lost, 1u);
  ASSERT_EQ(r.lost_devices.size(), 1u);
  EXPECT_EQ(r.lost_devices[0], 0);
  EXPECT_GE(r.resplits, 1u);
  EXPECT_TRUE(mgs.quarantined(0));
  // The survivor absorbed the dead device's slice: nothing was dropped.
  const auto& confs = mgs.device_conformations();
  EXPECT_EQ(std::accumulate(confs.begin(), confs.end(), std::size_t{0}), poses.size());
}

TEST(FaultTolerance, AllDevicesLostWithoutFallbackThrows) {
  Fixture f;
  gpusim::FaultPlan plan;
  plan.kill(0, 0.0).kill(1, 0.0);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  EXPECT_THROW(mgs.evaluate_cost_only(64), gpusim::AllDevicesLostError);
}

TEST(FaultTolerance, AllDevicesLostDegradesToCpu) {
  Fixture f;
  const auto poses = random_poses(96);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  gpusim::FaultPlan plan;
  plan.kill(0, 0.0).kill(1, 0.0);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuOptions opt;
  opt.cpu_fallback = hertz().cpu;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  std::vector<double> got(poses.size());
  mgs.evaluate(poses, got);

  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expected[i]) << "pose " << i;
  }
  const FaultReport& r = mgs.fault_report();
  EXPECT_TRUE(r.degraded_to_cpu);
  EXPECT_EQ(r.devices_lost, 2u);
  EXPECT_EQ(r.cpu_fallback_conformations, poses.size());
  EXPECT_GT(mgs.node_seconds(), 0.0);  // CPU time is accounted on the node
}

TEST(FaultTolerance, CountersMatchThePlanExactly) {
  // p = 1 on device 0 with max_retries = 2: the first slice fails the
  // initial attempt plus both retries (3 transients, 2 retries), the device
  // is quarantined, and its slice is re-split onto device 1 (1 re-split).
  Fixture f;
  gpusim::FaultPlan plan(5);
  plan.transient(0, 1.0);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuOptions opt;
  opt.faults.max_retries = 2;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  mgs.evaluate_cost_only(256);

  const FaultReport& r = mgs.fault_report();
  EXPECT_EQ(r.transient_faults, 3u);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.devices_lost, 1u);
  EXPECT_EQ(r.resplits, 1u);
  EXPECT_TRUE(mgs.quarantined(0));
  EXPECT_FALSE(mgs.quarantined(1));
  // Device-side injection count agrees with the scheduler's observation.
  EXPECT_EQ(rt.device(0).transient_faults_injected(), r.transient_faults);
  const auto& confs = mgs.device_conformations();
  EXPECT_EQ(confs[0], 0u);
  EXPECT_EQ(confs[1], 256u);
}

TEST(FaultTolerance, StragglerRebalanceShiftsShares) {
  // Two identical cards, one throttled x4 from the start: the periodic
  // observed-throughput rebalance demotes the straggler's share.
  Fixture f;
  gpusim::FaultPlan plan;
  plan.straggle(0, 0.0, 4.0);
  gpusim::Runtime rt(
      {gpusim::geforce_gtx580(), gpusim::geforce_gtx580()}, plan);
  MultiGpuOptions opt;
  opt.faults.rebalance_batches = 2;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  for (int i = 0; i < 6; ++i) mgs.evaluate_cost_only(2048);

  EXPECT_GE(mgs.fault_report().rebalances, 1u);
  const std::vector<double>& shares = mgs.current_shares();
  EXPECT_LT(shares[0], 0.35);  // x4 slowdown -> ~1/5 of the throughput
  EXPECT_GT(shares[1], 0.65);
  // Later batches give the healthy card most of the work.
  const auto& confs = mgs.device_conformations();
  EXPECT_GT(confs[1], confs[0]);
}

TEST(FaultTolerance, DynamicModeRoutesAroundDeath) {
  Fixture f;
  const auto poses = random_poses(300);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  gpusim::Runtime clean = mixed_node_runtime();
  MultiGpuOptions opt;
  opt.dynamic = true;
  opt.chunk_blocks = 2;
  {
    MultiGpuBatchScorer clean_mgs(clean, f.scorer, opt);
    std::vector<double> out(poses.size());
    clean_mgs.evaluate(poses, out);
  }
  const double mid = 0.5 * clean.device(0).busy_seconds();

  gpusim::FaultPlan plan;
  plan.kill(0, mid);
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  std::vector<double> got(poses.size());
  mgs.evaluate(poses, got);

  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expected[i]) << "pose " << i;
  }
  EXPECT_EQ(mgs.fault_report().devices_lost, 1u);
  const auto& confs = mgs.device_conformations();
  EXPECT_EQ(std::accumulate(confs.begin(), confs.end(), std::size_t{0}), poses.size());
}

TEST(FaultTolerance, ExecutorSurvivesWarmupDeath) {
  // Device 0 dead before the warm-up: Eq. 1 runs over the survivor only and
  // the whole docking still completes with fault-free science.
  ExecutorOptions clean_opt;
  clean_opt.strategy = Strategy::kHeterogeneous;
  NodeExecutor clean(hertz(), clean_opt);
  const ExecutionReport ref = clean.run(tiny_problem(), tiny_params());

  ExecutorOptions opt = clean_opt;
  opt.fault_plan.kill(0, 0.0);
  NodeExecutor exec(hertz(), opt);
  const ExecutionReport r = exec.run(tiny_problem(), tiny_params());

  ASSERT_EQ(r.result.spot_results.size(), ref.result.spot_results.size());
  for (std::size_t i = 0; i < r.result.spot_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.result.spot_results[i].best.score,
                     ref.result.spot_results[i].best.score)
        << "spot " << i;
  }
  EXPECT_EQ(r.faults.devices_lost, 1u);
  ASSERT_EQ(r.faults.lost_devices.size(), 1u);
  EXPECT_EQ(r.faults.lost_devices[0], 0);
  EXPECT_EQ(r.devices[0].conformations, 0u);
  EXPECT_GT(r.devices[1].conformations, 0u);
  EXPECT_FALSE(ref.faults.any());  // the clean run reports a clean bill
}

// The acceptance scenario: a four-GPU node loses one card mid-run.  The
// screening completes, best energies are identical to the fault-free run,
// the survivors absorb the lost share, and the report accounts for the
// death.
TEST(FaultTolerance, FourGpuNodeSurvivesMidRunDeathWithIdenticalScience) {
  NodeConfig node = jupiter_homogeneous();  // 4x GTX 590 dies
  ASSERT_EQ(node.gpu_count(), 4);

  for (const Strategy strategy :
       {Strategy::kHomogeneous, Strategy::kHeterogeneous, Strategy::kCooperative}) {
    ExecutorOptions clean_opt;
    clean_opt.strategy = strategy;
    NodeExecutor clean(node, clean_opt);
    const ExecutionReport ref = clean.run(tiny_problem(), tiny_params());
    // Midway between the end of the warm-up (if any) and the device's last
    // work — strictly a mid-scoring death, never a warm-up death.
    const double mid = 0.5 * (ref.warmup_seconds + ref.devices[1].busy_seconds);
    ASSERT_GT(mid, ref.warmup_seconds);

    ExecutorOptions opt = clean_opt;
    opt.fault_plan.kill(1, mid);
    NodeExecutor exec(node, opt);
    const ExecutionReport r = exec.run(tiny_problem(), tiny_params());

    // Identical best energy at every spot.
    ASSERT_EQ(r.result.spot_results.size(), ref.result.spot_results.size());
    for (std::size_t i = 0; i < r.result.spot_results.size(); ++i) {
      EXPECT_DOUBLE_EQ(r.result.spot_results[i].best.score,
                       ref.result.spot_results[i].best.score)
          << strategy_name(strategy) << " spot " << i;
    }
    // Full fault accounting: exactly one quarantine, at least one re-split
    // (the in-flight slice moved to the survivors), no CPU degradation.
    EXPECT_EQ(r.faults.devices_lost, 1u) << strategy_name(strategy);
    ASSERT_EQ(r.faults.lost_devices.size(), 1u) << strategy_name(strategy);
    EXPECT_EQ(r.faults.lost_devices[0], 1) << strategy_name(strategy);
    EXPECT_GE(r.faults.resplits, 1u) << strategy_name(strategy);
    EXPECT_FALSE(r.faults.degraded_to_cpu) << strategy_name(strategy);
    // Nothing dropped: the four devices together scored every conformation
    // the fault-free run scored.
    auto total = [](const ExecutionReport& e) {
      std::size_t n = 0;
      for (const DeviceReport& d : e.devices) n += d.conformations;
      return n;
    };
    EXPECT_EQ(total(r), total(ref)) << strategy_name(strategy);
    // The survivors absorbed the lost share.  Under the static splits the
    // all-equal node re-splits into near-equal thirds; the cooperative
    // queue guarantees only that every survivor keeps pulling.
    std::vector<std::size_t> survivors;
    std::size_t survivor_sum = 0;
    std::size_t ref_survivor_sum = 0;
    for (std::size_t d = 0; d < r.devices.size(); ++d) {
      if (d == 1) continue;
      survivors.push_back(r.devices[d].conformations);
      survivor_sum += r.devices[d].conformations;
      ref_survivor_sum += ref.devices[d].conformations;
    }
    EXPECT_GT(survivor_sum, ref_survivor_sum) << strategy_name(strategy);
    if (strategy != Strategy::kCooperative) {
      const auto lo = *std::min_element(survivors.begin(), survivors.end());
      const auto hi = *std::max_element(survivors.begin(), survivors.end());
      EXPECT_LT(static_cast<double>(hi - lo), 0.25 * static_cast<double>(hi))
          << strategy_name(strategy);
    }
    for (std::size_t s : survivors) EXPECT_GT(s, 0u) << strategy_name(strategy);
    EXPECT_GT(r.devices[1].conformations, 0u) << strategy_name(strategy);
    EXPECT_LT(r.devices[1].conformations, ref.devices[1].conformations)
        << strategy_name(strategy);
  }
}

// Cross-strategy determinism harness: on the same problem, every strategy
// must reproduce the CPU reference spot-by-spot — fault-free AND with a
// device dying mid-run.
TEST(FaultTolerance, StrategiesAgreeWithCpuReferenceUnderFaults) {
  NodeExecutor cpu(hertz(), [] {
    ExecutorOptions o;
    o.strategy = Strategy::kCpu;
    return o;
  }());
  const ExecutionReport ref = cpu.run(tiny_problem(), tiny_params());
  std::map<int, double> reference;
  for (const auto& sr : ref.result.spot_results) reference[sr.spot_id] = sr.best.score;

  for (const Strategy strategy :
       {Strategy::kHomogeneous, Strategy::kHeterogeneous, Strategy::kCooperative}) {
    // Probe the fault-free run for a mid-run death time.
    ExecutorOptions clean_opt;
    clean_opt.strategy = strategy;
    NodeExecutor clean(hertz(), clean_opt);
    const ExecutionReport probe = clean.run(tiny_problem(), tiny_params());
    const double mid = 0.5 * probe.devices[0].busy_seconds;

    for (const bool faulty : {false, true}) {
      ExecutorOptions opt = clean_opt;
      if (faulty) {
        opt.fault_plan.set_seed(23).kill(0, mid).transient(1, 0.05);
      }
      NodeExecutor exec(hertz(), opt);
      const ExecutionReport r = exec.run(tiny_problem(), tiny_params());
      ASSERT_EQ(r.result.spot_results.size(), reference.size());
      for (const auto& sr : r.result.spot_results) {
        EXPECT_DOUBLE_EQ(sr.best.score, reference[sr.spot_id])
            << strategy_name(strategy) << (faulty ? " faulty" : " clean") << " spot "
            << sr.spot_id;
      }
      if (faulty) {
        EXPECT_EQ(r.faults.devices_lost, 1u) << strategy_name(strategy);
      } else {
        EXPECT_FALSE(r.faults.any()) << strategy_name(strategy);
      }
    }
  }
}

TEST(FaultTolerance, BadFaultPolicyThrows) {
  ExecutorOptions o;
  o.fault_policy.max_retries = -1;
  EXPECT_THROW(NodeExecutor(hertz(), o), std::invalid_argument);
  o = ExecutorOptions{};
  o.fault_policy.backoff_cap_s = 0.0;
  o.fault_policy.backoff_base_s = 1.0;
  EXPECT_THROW(NodeExecutor(hertz(), o), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::sched
