#include "sched/partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace metadock::sched {
namespace {

void expect_exact_cover(const Partition& p, std::size_t n) {
  std::set<std::size_t> seen;
  for (const auto& bin : p) {
    for (std::size_t i : bin) EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
  }
  EXPECT_EQ(seen.size(), n);
  if (n > 0) {
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(EqualPartition, CoversExactly) {
  const Partition p = equal_partition(10, 3);
  ASSERT_EQ(p.size(), 3u);
  expect_exact_cover(p, 10);
}

TEST(EqualPartition, SizesDifferByAtMostOne) {
  const Partition p = equal_partition(17, 5);
  std::size_t mn = 1000, mx = 0;
  for (const auto& bin : p) {
    mn = std::min(mn, bin.size());
    mx = std::max(mx, bin.size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(EqualPartition, FewerItemsThanBins) {
  const Partition p = equal_partition(2, 5);
  expect_exact_cover(p, 2);
  int empties = 0;
  for (const auto& bin : p) empties += bin.empty();
  EXPECT_EQ(empties, 3);
}

TEST(EqualPartition, ZeroItems) {
  expect_exact_cover(equal_partition(0, 4), 0);
}

TEST(EqualPartition, ZeroBinsThrows) {
  EXPECT_THROW((void)equal_partition(5, 0), std::invalid_argument);
}

TEST(WeightedPartition, ProportionalToWeights) {
  const Partition p = weighted_partition(100, {3.0, 1.0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].size(), 75u);
  EXPECT_EQ(p[1].size(), 25u);
  expect_exact_cover(p, 100);
}

TEST(WeightedPartition, LargestRemainderRounding) {
  // Exact shares 3.33 / 3.33 / 3.33: one bin gets the extra item.
  const Partition p = weighted_partition(10, {1.0, 1.0, 1.0});
  std::size_t total = 0;
  for (const auto& bin : p) total += bin.size();
  EXPECT_EQ(total, 10u);
  expect_exact_cover(p, 10);
}

TEST(WeightedPartition, ZeroWeightBinGetsNothing) {
  const Partition p = weighted_partition(10, {1.0, 0.0});
  EXPECT_EQ(p[0].size(), 10u);
  EXPECT_TRUE(p[1].empty());
}

TEST(WeightedPartition, BinsAreContiguousRanges) {
  const Partition p = weighted_partition(20, {1.0, 2.0, 1.0});
  std::size_t next = 0;
  for (const auto& bin : p) {
    for (std::size_t i : bin) EXPECT_EQ(i, next++);
  }
}

TEST(WeightedPartition, InvalidWeightsThrow) {
  EXPECT_THROW((void)weighted_partition(10, {}), std::invalid_argument);
  EXPECT_THROW((void)weighted_partition(10, {-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_partition(10, {0.0, 0.0}), std::invalid_argument);
}

TEST(Percents, SlowestIsOne) {
  // Eq. 1: Percent = t / t_slowest.
  const auto p = percents_from_times({2.0, 4.0, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
}

TEST(Percents, TwiceAsFastIsHalf) {
  // "a GPU two times faster than slowest GPU would have Percent = 0.5".
  const auto p = percents_from_times({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(Percents, EmptyAndInvalid) {
  // An empty warm-up (every device quarantined) must be a diagnosable
  // error, not a silent {} that fails somewhere downstream.
  EXPECT_THROW((void)percents_from_times({}), std::invalid_argument);
  EXPECT_THROW((void)percents_from_times({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)percents_from_times({-1.0}), std::invalid_argument);
}

TEST(Shares, InverseOfPercentsNormalized) {
  const auto s = shares_from_percents({0.5, 1.0});
  EXPECT_DOUBLE_EQ(s[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0 / 3.0);
  EXPECT_NEAR(s[0] + s[1], 1.0, 1e-12);
}

TEST(Shares, EqualPercentsEqualShares) {
  const auto s = shares_from_percents({1.0, 1.0, 1.0, 1.0});
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(Shares, NonPositivePercentThrows) {
  EXPECT_THROW((void)shares_from_percents({1.0, 0.0}), std::invalid_argument);
}

TEST(Shares, EmptyThrows) {
  EXPECT_THROW((void)shares_from_percents({}), std::invalid_argument);
}

// Table-driven edge cases for the warm-up -> split pipeline.  Each case is
// a (times, expected shares) pair run through percents_from_times +
// shares_from_percents end to end.
TEST(WarmupSplit, TableDrivenSharesFromTimes) {
  struct Case {
    const char* name;
    std::vector<double> times;
    std::vector<double> expected_shares;
  };
  const Case cases[] = {
      {"single device", {3.0}, {1.0}},
      {"two equal", {2.0, 2.0}, {0.5, 0.5}},
      {"2x faster gets 2x work", {1.0, 2.0}, {2.0 / 3.0, 1.0 / 3.0}},
      {"three-way 1:2:4", {1.0, 2.0, 4.0}, {4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0}},
      {"tiny absolute times", {1e-9, 2e-9}, {2.0 / 3.0, 1.0 / 3.0}},
  };
  for (const Case& c : cases) {
    const auto shares = shares_from_percents(percents_from_times(c.times));
    ASSERT_EQ(shares.size(), c.expected_shares.size()) << c.name;
    double sum = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_NEAR(shares[i], c.expected_shares[i], 1e-12) << c.name << " share " << i;
      sum += shares[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << c.name;
  }
}

// weighted_partition with fewer items than bins: some bins are empty, but
// the partition still covers every item exactly once and respects the
// weight ordering (heavier bins are served first).
TEST(WeightedPartition, FewerItemsThanBinsTableDriven) {
  struct Case {
    const char* name;
    std::size_t n_items;
    std::vector<double> weights;
  };
  const Case cases[] = {
      {"0 items, 3 bins", 0, {1.0, 2.0, 3.0}},
      {"1 item, 4 bins", 1, {1.0, 1.0, 1.0, 1.0}},
      {"2 items, 5 skewed bins", 2, {10.0, 1.0, 1.0, 1.0, 1.0}},
      {"3 items, 6 equal bins", 3, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0}},
      {"zero-weight bin among few items", 2, {1.0, 0.0, 1.0}},
  };
  for (const Case& c : cases) {
    const Partition p = weighted_partition(c.n_items, c.weights);
    ASSERT_EQ(p.size(), c.weights.size()) << c.name;
    expect_exact_cover(p, c.n_items);
    // Zero-weight bins must stay empty even under largest-remainder fill.
    for (std::size_t b = 0; b < p.size(); ++b) {
      if (c.weights[b] == 0.0) {
        EXPECT_TRUE(p[b].empty()) << c.name << " bin " << b;
      }
    }
  }
}

class PartitionSweep : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionSweep, EqualPartitionAlwaysCovers) {
  const auto [items, bins] = GetParam();
  expect_exact_cover(equal_partition(items, bins), items);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionSweep,
                         ::testing::Combine(::testing::Values(0u, 1u, 7u, 64u, 1000u),
                                            ::testing::Values(1u, 2u, 6u, 13u)));

}  // namespace
}  // namespace metadock::sched
