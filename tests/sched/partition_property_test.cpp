// Randomized property sweep over the partition/split primitives: for ~1000
// seeded share vectors, the invariants the schedulers rely on must hold
// exactly — every conformation is assigned exactly once, strides stay
// contiguous, zero-weight bins stay empty, and apportionment is within one
// unit (block) of the exact proportional split.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "sched/multi_gpu.h"
#include "sched/partition.h"
#include "util/rng.h"

namespace metadock::sched {
namespace {

struct SharedVector {
  std::size_t n = 0;
  int warps_per_block = 1;
  std::vector<double> shares;
};

/// Seeded random scenario: bin count 1..8, shares in [0, 1) with forced
/// zeros sprinkled in, at least one positive share.
SharedVector make_scenario(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  SharedVector s;
  s.n = rng.below(5000);
  s.warps_per_block = static_cast<int>(1 + rng.below(8));
  const std::size_t bins = 1 + rng.below(8);
  s.shares.resize(bins, 0.0);
  for (double& w : s.shares) {
    if (rng.below(4) == 0) continue;  // ~25% exact-zero weights
    w = rng.uniform(0.0, 1.0);
  }
  double sum = 0.0;
  for (double w : s.shares) sum += w;
  if (sum <= 0.0) s.shares[rng.below(bins)] = 1.0;
  return s;
}

TEST(PartitionProperty, SplitBatchInvariantsOverSeededShareVectors) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const SharedVector s = make_scenario(seed);
    const std::vector<std::size_t> counts = split_batch(s.n, s.warps_per_block, s.shares);
    ASSERT_EQ(counts.size(), s.shares.size()) << "seed " << seed;

    const auto wpb = static_cast<std::size_t>(s.warps_per_block);
    std::size_t total = 0;
    std::size_t partial_bins = 0;
    double share_sum = 0.0;
    for (double w : s.shares) share_sum += w;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      total += counts[b];
      if (counts[b] % wpb != 0) ++partial_bins;
      if (s.shares[b] == 0.0) {
        EXPECT_EQ(counts[b], 0u) << "seed " << seed << " bin " << b;
      }
      // Block-granular apportionment: within one block of exact, plus the
      // tail block the last nonzero bin absorbs.
      const double exact = static_cast<double>(s.n) * s.shares[b] / share_sum;
      EXPECT_NEAR(static_cast<double>(counts[b]), exact, 2.0 * static_cast<double>(wpb))
          << "seed " << seed << " bin " << b;
    }
    EXPECT_EQ(total, s.n) << "seed " << seed;
    // Only the bin that hits the batch tail may hold a partial block.
    EXPECT_LE(partial_bins, 1u) << "seed " << seed;
  }
}

TEST(PartitionProperty, SplitBatchSmallerThanOneBlock) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    util::Xoshiro256 rng(seed);
    const std::size_t bins = 1 + rng.below(6);
    std::vector<double> shares(bins);
    for (double& w : shares) w = rng.uniform(0.05, 1.0);
    const std::size_t n = 1 + rng.below(3);  // n < warps_per_block = 4
    const std::vector<std::size_t> counts = split_batch(n, 4, shares);
    std::size_t total = 0;
    std::size_t nonzero = 0;
    for (std::size_t c : counts) {
      total += c;
      nonzero += c > 0 ? 1 : 0;
    }
    // A sub-block batch is one block: exactly one device runs it.
    EXPECT_EQ(total, n) << "seed " << seed;
    EXPECT_EQ(nonzero, 1u) << "seed " << seed;
  }
}

TEST(PartitionProperty, SplitBatchSingleDeviceTakesEverything) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    util::Xoshiro256 rng(seed);
    const std::size_t n = rng.below(10000);
    const std::vector<std::size_t> counts =
        split_batch(n, static_cast<int>(1 + rng.below(16)), {rng.uniform(0.01, 5.0)});
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], n) << "seed " << seed;
  }
}

TEST(PartitionProperty, WeightedPartitionInvariantsOverSeededWeights) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const SharedVector s = make_scenario(seed);
    const Partition part = weighted_partition(s.n, s.shares);
    ASSERT_EQ(part.size(), s.shares.size()) << "seed " << seed;

    double share_sum = 0.0;
    for (double w : s.shares) share_sum += w;
    // Contiguity: concatenating the bins in order reproduces 0..n-1.
    std::size_t next = 0;
    for (std::size_t b = 0; b < part.size(); ++b) {
      for (std::size_t item : part[b]) {
        ASSERT_EQ(item, next) << "seed " << seed << " bin " << b;
        ++next;
      }
      if (s.shares[b] == 0.0) {
        EXPECT_TRUE(part[b].empty()) << "seed " << seed << " bin " << b;
      }
      // Largest-remainder apportionment is within one item of exact.
      const double exact = static_cast<double>(s.n) * s.shares[b] / share_sum;
      EXPECT_LE(std::fabs(static_cast<double>(part[b].size()) - exact), 1.0)
          << "seed " << seed << " bin " << b;
    }
    EXPECT_EQ(next, s.n) << "seed " << seed;
  }
}

}  // namespace
}  // namespace metadock::sched
