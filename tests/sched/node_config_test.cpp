#include "sched/node_config.h"

#include <gtest/gtest.h>

namespace metadock::sched {
namespace {

TEST(NodeConfig, JupiterMatchesTable2) {
  const NodeConfig n = jupiter();
  EXPECT_EQ(n.gpu_count(), 6);  // 4x GTX 590 + 2x Tesla C2075
  int gtx = 0, tesla = 0;
  for (const auto& g : n.gpus) {
    gtx += g.name == "GeForce GTX 590";
    tesla += g.name == "Tesla C2075";
  }
  EXPECT_EQ(gtx, 4);
  EXPECT_EQ(tesla, 2);
  EXPECT_EQ(n.cpu.cores, 12);
}

TEST(NodeConfig, JupiterHomogeneousIsTheFourGtx590) {
  const NodeConfig n = jupiter_homogeneous();
  EXPECT_EQ(n.gpu_count(), 4);
  for (const auto& g : n.gpus) EXPECT_EQ(g.name, "GeForce GTX 590");
}

TEST(NodeConfig, HertzMatchesTable3) {
  const NodeConfig n = hertz();
  ASSERT_EQ(n.gpu_count(), 2);
  EXPECT_EQ(n.gpus[0].name, "Tesla K40c");
  EXPECT_EQ(n.gpus[1].name, "GeForce GTX 580");
  EXPECT_EQ(n.cpu.cores, 4);
}

TEST(NodeConfig, HertzWithPhiAddsTheMic) {
  const NodeConfig n = hertz_with_phi();
  ASSERT_EQ(n.gpu_count(), 3);
  EXPECT_EQ(n.gpus[2].name, "Xeon Phi 5110P");
  EXPECT_EQ(n.gpus[2].arch, gpusim::Arch::kMic);
}

TEST(NodeConfig, HertzIsMoreHeterogeneousThanJupiter) {
  // The paper: "The GPU heterogeneity in this system is higher than in the
  // previous one."  Measured as max/min sustained throughput.
  auto spread = [](const NodeConfig& n) {
    double lo = 1e18, hi = 0.0;
    for (const auto& g : n.gpus) {
      lo = std::min(lo, g.sustained_gflops());
      hi = std::max(hi, g.sustained_gflops());
    }
    return hi / lo;
  };
  EXPECT_GT(spread(hertz()), 1.8);
  EXPECT_LT(spread(jupiter()), 1.2);
}

}  // namespace
}  // namespace metadock::sched
