// Event-driven cluster simulator invariants, driven through synthetic
// ClusterWorkloads (node speeds are inputs here, so every scheduling claim
// is exact and cheap — no engine replays).
#include "sched/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace metadock::sched {
namespace {

std::vector<NodeConfig> n_nodes(std::size_t n) {
  return std::vector<NodeConfig>(n, hertz());
}

ClusterWorkload uniform_workload(std::vector<double> bases, std::size_t n_ligands,
                                 std::size_t units = 1) {
  ClusterWorkload w;
  w.node_base_seconds = std::move(bases);
  w.ligand_cost.assign(n_ligands, 1.0);
  w.units_per_ligand = units;
  return w;
}

constexpr DistributionPolicy kAllPolicies[] = {
    DistributionPolicy::kStatic, DistributionPolicy::kStaticProportional,
    DistributionPolicy::kDynamic, DistributionPolicy::kWorkStealing};

TEST(ClusterSimulate, LigandsPerNodeSumsToLibraryForEveryPolicy) {
  ClusterSim sim(n_nodes(3));
  const ClusterWorkload w = uniform_workload({1.0, 0.5, 0.25}, 50, 4);
  for (DistributionPolicy policy : kAllPolicies) {
    const ClusterReport r = sim.simulate(w, policy);
    EXPECT_EQ(std::accumulate(r.ligands_per_node.begin(), r.ligands_per_node.end(),
                              std::size_t{0}),
              50u)
        << policy_name(policy);
    for (int node : r.docked_on) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 3);
    }
    for (double s : r.ligand_seconds) EXPECT_GT(s, 0.0);
  }
}

TEST(ClusterSimulate, ProportionalSplitFollowsNodeSpeed) {
  ClusterSim sim(n_nodes(2));
  // Node 1 is 4x faster: Eq. 1 across nodes gives it ~4/5 of the library.
  const ClusterWorkload w = uniform_workload({1.0, 0.25}, 50);
  const ClusterReport prop = sim.simulate(w, DistributionPolicy::kStaticProportional);
  EXPECT_GE(prop.ligands_per_node[1], 35u);
  EXPECT_LE(prop.ligands_per_node[1], 45u);
  const ClusterReport blind = sim.simulate(w, DistributionPolicy::kStatic);
  EXPECT_LT(prop.makespan_seconds, blind.makespan_seconds);
}

TEST(ClusterSimulate, DynamicNotSlowerThanStaticOnHeterogeneousNodes) {
  ClusterSim sim(n_nodes(3));
  const ClusterWorkload w = uniform_workload({1.0, 0.5, 0.25}, 40);
  const double t_static = sim.simulate(w, DistributionPolicy::kStatic).makespan_seconds;
  const double t_dynamic = sim.simulate(w, DistributionPolicy::kDynamic).makespan_seconds;
  EXPECT_LE(t_dynamic, t_static * 1.001);
}

TEST(ClusterSimulate, StealingBeatsDynamicUnderSeededStraggler) {
  // Four equal nodes; node 1 slows 8x after t=5 (thermal event).  The
  // dynamic master/worker can strand its last pulled ligand on the
  // straggler for 8 ligand-times; stealing migrates the queued backlog and
  // hands off the in-flight docking at a generation boundary.
  ClusterOptions opt;
  opt.node_faults.straggle(1, 5.0, 8.0);
  ClusterSim sim(n_nodes(4), opt);
  const ClusterWorkload w = uniform_workload({1.0, 1.0, 1.0, 1.0}, 40, 10);
  const ClusterReport dyn = sim.simulate(w, DistributionPolicy::kDynamic);
  const ClusterReport steal = sim.simulate(w, DistributionPolicy::kWorkStealing);
  EXPECT_LT(steal.makespan_seconds, dyn.makespan_seconds);
  EXPECT_GE(steal.steals + steal.handoffs, 1u);
}

TEST(ClusterSimulate, MakespanEqualsLastResultArrival) {
  ClusterOptions opt;
  opt.node_faults.straggle(0, 2.0, 4.0);
  ClusterSim sim(n_nodes(3), opt);
  const ClusterReport r = sim.simulate(uniform_workload({1.0, 0.5, 0.25}, 30, 5),
                                       DistributionPolicy::kWorkStealing);
  EXPECT_DOUBLE_EQ(r.makespan_seconds,
                   *std::max_element(r.node_seconds.begin(), r.node_seconds.end()));
}

TEST(ClusterSimulate, StealAccountingMatchesMessages) {
  ClusterOptions opt;
  opt.node_faults.straggle(1, 3.0, 8.0);
  ClusterSim sim(n_nodes(4), opt);
  const ClusterReport r = sim.simulate(uniform_workload({1.0, 1.0, 1.0, 1.0}, 40, 10),
                                       DistributionPolicy::kWorkStealing);
  const std::uint64_t requests = r.messages.of(MessageKind::kStealRequest).count;
  // Every resolved request is exactly one grant, handoff, or failure; a
  // request can still be in flight when the campaign ends.
  EXPECT_LE(r.steals + r.handoffs + r.failed_steals, requests);
  EXPECT_GE(requests, 1u);
  EXPECT_GE(r.stolen_ligands, r.steals);  // a granted steal moves >= 1 ligand
}

TEST(ClusterSimulate, NodeDeathReassignsShardAndCampaignCompletes) {
  for (DistributionPolicy policy : kAllPolicies) {
    ClusterOptions opt;
    opt.node_faults.kill(2, 3.5);
    ClusterSim sim(n_nodes(3), opt);
    const ClusterReport r = sim.simulate(uniform_workload({1.0, 1.0, 1.0}, 30, 2), policy);
    EXPECT_EQ(std::accumulate(r.ligands_per_node.begin(), r.ligands_per_node.end(),
                              std::size_t{0}),
              30u)
        << policy_name(policy);
    EXPECT_EQ(r.nodes_lost, 1u);
    // Results the dead node returned before dying are kept...
    EXPECT_GT(r.ligands_per_node[2], 0u) << policy_name(policy);
    // ...and its unfinished work moved to survivors instead of vanishing.
    EXPECT_GE(r.reassigned_ligands + r.redocked_ligands, 1u) << policy_name(policy);
  }
}

TEST(ClusterSimulate, RedockedLigandChargedTwiceButDockedOnce) {
  ClusterOptions opt;
  opt.node_faults.kill(1, 2.5);
  ClusterSim sim(n_nodes(2), opt);
  const ClusterReport r =
      sim.simulate(uniform_workload({1.0, 1.0}, 12, 4), DistributionPolicy::kStatic);
  ASSERT_EQ(r.nodes_lost, 1u);
  ASSERT_GE(r.redocked_ligands, 1u);
  // The in-flight ligand at death burned compute on the dead node and again
  // on the survivor, so someone's ligand bill exceeds its nominal cost.
  const double nominal = 1.0;  // base 1.0 x cost 1.0
  const bool any_double_charged =
      std::any_of(r.ligand_seconds.begin(), r.ligand_seconds.end(),
                  [&](double s) { return s > nominal * 1.01; });
  EXPECT_TRUE(any_double_charged);
  // But every accepted result came from an alive node exactly once.
  for (int node : r.docked_on) EXPECT_GE(node, 0);
}

TEST(ClusterSimulate, EveryNodeDeadThrows) {
  for (DistributionPolicy policy :
       {DistributionPolicy::kStatic, DistributionPolicy::kDynamic}) {
    ClusterOptions opt;
    opt.node_faults.kill(0, 0.5);
    ClusterSim sim(n_nodes(1), opt);
    EXPECT_THROW(
        static_cast<void>(sim.simulate(uniform_workload({1.0}, 10), policy)),
        std::runtime_error)
        << policy_name(policy);
  }
}

TEST(ClusterSimulate, CommSecondsMatchesMessageAccounting) {
  ClusterSim sim(n_nodes(3));
  const ClusterReport r = sim.simulate(uniform_workload({1.0, 0.5, 0.25}, 25, 3),
                                       DistributionPolicy::kDynamic);
  EXPECT_DOUBLE_EQ(r.comm_seconds,
                   r.messages.total_seconds() + r.messages.master_service_seconds);
  EXPECT_GT(r.messages.of(MessageKind::kPullRequest).count, 0u);
  EXPECT_EQ(r.messages.of(MessageKind::kResultReturn).count, 25u);
}

TEST(ClusterSimulate, RepeatRunsAreBitIdentical) {
  ClusterOptions opt;
  opt.node_faults.kill(3, 4.0).straggle(1, 2.0, 6.0);
  ClusterSim sim(n_nodes(4), opt);
  const ClusterWorkload w = uniform_workload({1.0, 0.5, 1.0, 0.25}, 60, 8);
  const ClusterReport a = sim.simulate(w, DistributionPolicy::kWorkStealing);
  const ClusterReport b = sim.simulate(w, DistributionPolicy::kWorkStealing);
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.docked_on, b.docked_on);
  EXPECT_EQ(a.node_seconds, b.node_seconds);
}

TEST(ClusterSimulate, MalformedWorkloadThrows) {
  ClusterSim sim(n_nodes(2));
  ClusterWorkload bad_size = uniform_workload({1.0}, 5);  // 1 base, 2 nodes
  EXPECT_THROW(static_cast<void>(sim.simulate(bad_size, DistributionPolicy::kStatic)),
               std::invalid_argument);
  ClusterWorkload bad_base = uniform_workload({1.0, 0.0}, 5);
  EXPECT_THROW(static_cast<void>(sim.simulate(bad_base, DistributionPolicy::kStatic)),
               std::invalid_argument);
  ClusterWorkload bad_units = uniform_workload({1.0, 1.0}, 5, 1);
  bad_units.units_per_ligand = 0;
  EXPECT_THROW(static_cast<void>(sim.simulate(bad_units, DistributionPolicy::kStatic)),
               std::invalid_argument);
}

TEST(ClusterSimulate, BalanceEfficiencyImprovesWithStealing) {
  // Proportional warm start is blind to the mid-campaign straggle; stealing
  // rebalances it away, so busy time spreads more evenly.
  ClusterOptions opt;
  opt.node_faults.straggle(0, 4.0, 8.0);
  ClusterSim sim(n_nodes(4), opt);
  const ClusterWorkload w = uniform_workload({1.0, 1.0, 1.0, 1.0}, 48, 10);
  const ClusterReport fixed = sim.simulate(w, DistributionPolicy::kStaticProportional);
  const ClusterReport steal = sim.simulate(w, DistributionPolicy::kWorkStealing);
  EXPECT_LE(steal.makespan_seconds, fixed.makespan_seconds);
}

}  // namespace
}  // namespace metadock::sched
