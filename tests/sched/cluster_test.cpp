#include "sched/cluster.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/fixtures.h"

namespace metadock::sched {
namespace {

// Cluster scheduling behaviour (who gets more ligands, comm overhead
// ratios) only shows at realistic per-ligand costs, so these tests use the
// paper-scale 2BSM problem; the replays are still millisecond-cheap.
const meta::DockingProblem& problem() { return testing::paper_problem(); }

meta::MetaheuristicParams small_params() {
  meta::MetaheuristicParams p = meta::m1_genetic();
  p.generations = 10;
  return p;
}

std::vector<std::size_t> uniform_ligands(std::size_t n, std::size_t atoms = 12) {
  return std::vector<std::size_t>(n, atoms);
}

TEST(Cluster, RequiresAtLeastOneNode) {
  EXPECT_THROW(ClusterSim({}), std::invalid_argument);
}

TEST(Cluster, AllLigandsAreAssigned) {
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(23), small_params(),
                                              DistributionPolicy::kDynamic);
  EXPECT_EQ(std::accumulate(r.ligands_per_node.begin(), r.ligands_per_node.end(),
                            std::size_t{0}),
            23u);
}

TEST(Cluster, DynamicNeverSlowerThanStatic) {
  ClusterSim sim({hertz(), jupiter(), hertz()});
  const auto ligands = uniform_ligands(40);
  const double t_static =
      sim.screen_estimate(problem(), ligands, small_params(), DistributionPolicy::kStatic)
          .makespan_seconds;
  const double t_dynamic =
      sim.screen_estimate(problem(), ligands, small_params(), DistributionPolicy::kDynamic)
          .makespan_seconds;
  EXPECT_LE(t_dynamic, t_static * 1.001);
}

TEST(Cluster, DynamicGivesFasterNodesMoreLigands) {
  // Jupiter's 6 GPUs outrun Hertz's 2 in aggregate.
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(30), small_params(),
                                              DistributionPolicy::kDynamic);
  EXPECT_GT(r.ligands_per_node[1], r.ligands_per_node[0]);
}

TEST(Cluster, StaticRoundRobinIgnoresSpeed) {
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(30), small_params(),
                                              DistributionPolicy::kStatic);
  EXPECT_EQ(r.ligands_per_node[0], 15u);
  EXPECT_EQ(r.ligands_per_node[1], 15u);
}

TEST(Cluster, DynamicBalancesHeterogeneousCluster) {
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(60), small_params(),
                                              DistributionPolicy::kDynamic);
  // Node finish times within ~1.5 ligand-times of each other.
  const double spread = *std::max_element(r.node_seconds.begin(), r.node_seconds.end()) -
                        *std::min_element(r.node_seconds.begin(), r.node_seconds.end());
  const double per_ligand = r.makespan_seconds / 30.0;  // rough upper bound
  EXPECT_LT(spread, 2.0 * per_ligand);
}

TEST(Cluster, MakespanIsSlowestNode) {
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(10), small_params(),
                                              DistributionPolicy::kStatic);
  EXPECT_DOUBLE_EQ(r.makespan_seconds,
                   *std::max_element(r.node_seconds.begin(), r.node_seconds.end()));
}

TEST(Cluster, BiggerLigandsCostMore) {
  ClusterSim sim({hertz()});
  const double t_small = sim.screen_estimate(problem(), uniform_ligands(8, 10), small_params(),
                                             DistributionPolicy::kStatic)
                             .makespan_seconds;
  const double t_big = sim.screen_estimate(problem(), uniform_ligands(8, 40), small_params(),
                                           DistributionPolicy::kStatic)
                           .makespan_seconds;
  EXPECT_GT(t_big, 2.0 * t_small);
}

TEST(Cluster, CommTimeAccountedButSmall) {
  ClusterSim sim({hertz(), jupiter()});
  const ClusterReport r = sim.screen_estimate(problem(), uniform_ligands(12), small_params(),
                                              DistributionPolicy::kDynamic);
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_LT(r.comm_seconds, 0.05 * r.makespan_seconds);
}

TEST(Cluster, EmptyLibraryIsJustBroadcast) {
  ClusterSim sim({hertz()});
  const ClusterReport r = sim.screen_estimate(problem(), {}, small_params(),
                                              DistributionPolicy::kDynamic);
  EXPECT_EQ(r.ligands_per_node[0], 0u);
  EXPECT_GT(r.makespan_seconds, 0.0);  // receptor broadcast
  EXPECT_LT(r.makespan_seconds, 1.0);
}

}  // namespace
}  // namespace metadock::sched
