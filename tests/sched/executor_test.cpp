#include "sched/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "testing/fixtures.h"

namespace metadock::sched {
namespace {

using testing::paper_problem;
using testing::tiny_problem;

meta::MetaheuristicParams tiny_params() {
  meta::MetaheuristicParams p = meta::m3_scatter_light();
  p.population_per_spot = 8;
  p.generations = 2;
  return p;
}

ExecutorOptions with(Strategy s) {
  ExecutorOptions o;
  o.strategy = s;
  return o;
}

TEST(Executor, CpuStrategyRunsAndTimes) {
  NodeExecutor exec(hertz(), with(Strategy::kCpu));
  const ExecutionReport r = exec.run(tiny_problem(), tiny_params());
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.result.spot_results.size(), tiny_problem().spots.size());
  EXPECT_DOUBLE_EQ(r.warmup_seconds, 0.0);
}

TEST(Executor, AllStrategiesProduceIdenticalScience) {
  // Who computes a conformation's score must not affect the score — the
  // guarantee that makes the heterogeneous split legitimate.
  std::map<int, double> reference;
  for (const Strategy s : {Strategy::kCpu, Strategy::kHomogeneous, Strategy::kHeterogeneous,
                           Strategy::kCooperative}) {
    NodeExecutor exec(hertz(), with(s));
    const ExecutionReport r = exec.run(tiny_problem(), tiny_params());
    if (reference.empty()) {
      for (const auto& sr : r.result.spot_results) reference[sr.spot_id] = sr.best.score;
    } else {
      ASSERT_EQ(r.result.spot_results.size(), reference.size());
      for (const auto& sr : r.result.spot_results) {
        EXPECT_DOUBLE_EQ(sr.best.score, reference[sr.spot_id])
            << "strategy " << strategy_name(s) << " spot " << sr.spot_id;
      }
    }
  }
}

TEST(Executor, HeterogeneousBeatsHomogeneousOnHertz) {
  // Kepler vs Fermi: the paper reports 1.31-1.56x at paper scale.
  NodeExecutor hom(hertz(), with(Strategy::kHomogeneous));
  NodeExecutor het(hertz(), with(Strategy::kHeterogeneous));
  const double t_hom = hom.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  const double t_het = het.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  EXPECT_GT(t_hom / t_het, 1.3);
  EXPECT_LT(t_hom / t_het, 1.7);
}

TEST(Executor, HeterogeneousIsNearNeutralOnJupiter) {
  // Near-identical Fermi cards: the paper reports only 1.01-1.06x.
  NodeExecutor hom(jupiter(), with(Strategy::kHomogeneous));
  NodeExecutor het(jupiter(), with(Strategy::kHeterogeneous));
  const double t_hom = hom.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  const double t_het = het.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  EXPECT_GT(t_hom / t_het, 0.98);
  EXPECT_LT(t_hom / t_het, 1.10);
}

TEST(Executor, Eq1AbsorbsASlowMicDevice) {
  // Future-work node: adding a Xeon Phi slows the equal split down to the
  // Phi's pace, while the heterogeneous split gives it a small share and
  // still improves on plain Hertz.
  NodeExecutor hom(hertz_with_phi(), with(Strategy::kHomogeneous));
  NodeExecutor het(hertz_with_phi(), with(Strategy::kHeterogeneous));
  NodeExecutor het_plain(hertz(), with(Strategy::kHeterogeneous));
  const double t_hom = hom.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  const double t_het = het.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  const double t_plain =
      het_plain.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  EXPECT_GT(t_hom / t_het, 2.5);   // equal split is crippled by the Phi
  EXPECT_LT(t_het, t_plain * 1.1); // het split at least keeps pace
}

TEST(Executor, GpuStrategiesBeatCpuByWideMargin) {
  NodeExecutor cpu(jupiter(), with(Strategy::kCpu));
  NodeExecutor gpu(jupiter(), with(Strategy::kHeterogeneous));
  const double t_cpu = cpu.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  const double t_gpu = gpu.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  EXPECT_GT(t_cpu / t_gpu, 40.0);
}

TEST(Executor, WarmupMeasuresPercentPerEq1) {
  NodeExecutor het(hertz(), with(Strategy::kHeterogeneous));
  const ExecutionReport r = het.estimate(paper_problem(), tiny_params());
  ASSERT_EQ(r.devices.size(), 2u);
  // GTX 580 is the slowest -> Percent = 1; K40c roughly twice as fast.
  EXPECT_DOUBLE_EQ(r.devices[1].percent, 1.0);
  EXPECT_LT(r.devices[0].percent, 0.6);
  EXPECT_GT(r.warmup_seconds, 0.0);
}

TEST(Executor, HeterogeneousSharesFollowSpeed) {
  NodeExecutor het(hertz(), with(Strategy::kHeterogeneous));
  const ExecutionReport r = het.estimate(paper_problem(), tiny_params());
  EXPECT_GT(r.devices[0].share, 0.60);  // K40c takes about 2/3
  EXPECT_NEAR(r.devices[0].share + r.devices[1].share, 1.0, 1e-9);
}

TEST(Executor, HomogeneousSplitsEqually) {
  NodeExecutor hom(jupiter(), with(Strategy::kHomogeneous));
  const ExecutionReport r = hom.estimate(paper_problem(), tiny_params());
  for (const DeviceReport& d : r.devices) {
    EXPECT_NEAR(d.share, 1.0 / 6.0, 0.02);
  }
}

TEST(Executor, EstimateMatchesRealRunTiming) {
  // run() and estimate() must account identical virtual time: the replay
  // is the same schedule through the same models.
  NodeExecutor a(hertz(), with(Strategy::kHomogeneous));
  NodeExecutor b(hertz(), with(Strategy::kHomogeneous));
  const double t_run = a.run(tiny_problem(), tiny_params()).makespan_seconds;
  const double t_est = b.estimate(tiny_problem(), tiny_params()).makespan_seconds;
  EXPECT_NEAR(t_run, t_est, 1e-9 + 1e-6 * t_run);
}

TEST(Executor, EstimateMatchesRealRunTimingHeterogeneous) {
  NodeExecutor a(hertz(), with(Strategy::kHeterogeneous));
  NodeExecutor b(hertz(), with(Strategy::kHeterogeneous));
  const double t_run = a.run(tiny_problem(), tiny_params()).makespan_seconds;
  const double t_est = b.estimate(tiny_problem(), tiny_params()).makespan_seconds;
  EXPECT_NEAR(t_run, t_est, 1e-9 + 1e-6 * t_run);
}

TEST(Executor, CooperativeBalancesWithoutWarmup) {
  NodeExecutor coop(hertz(), with(Strategy::kCooperative));
  const ExecutionReport r = coop.estimate(paper_problem(), meta::m1_genetic());
  EXPECT_DOUBLE_EQ(r.warmup_seconds, 0.0);
  // Dynamic pulls land close to the heterogeneous static split, paying a
  // modest dispatch overhead but saving the warm-up phase.
  NodeExecutor het(hertz(), with(Strategy::kHeterogeneous));
  const double t_het = het.estimate(paper_problem(), meta::m1_genetic()).makespan_seconds;
  EXPECT_LT(r.makespan_seconds, 1.25 * t_het);
  // And the fast device pulled more work.
  EXPECT_GT(r.devices[0].share, 0.55);
}

TEST(Executor, EnergyIsPositiveAndSummed) {
  NodeExecutor exec(hertz(), with(Strategy::kHomogeneous));
  const ExecutionReport r = exec.estimate(tiny_problem(), tiny_params());
  double sum = 0.0;
  for (const DeviceReport& d : r.devices) sum += d.energy_joules;
  EXPECT_NEAR(r.energy_joules, sum, 1e-9);
  EXPECT_GT(r.energy_joules, 0.0);
}

TEST(Executor, SpotOverrideScalesWork) {
  // Use an M1-style workload (large combine batches): those stay in the
  // occupancy-saturated regime where time is linear in spots.  (M3's small
  // improve batches are occupancy-bound, where doubling the spots improves
  // GPU utilization instead of doubling the time — also physical.)
  meta::MetaheuristicParams p = meta::m1_genetic();
  p.generations = 4;
  NodeExecutor a(hertz(), with(Strategy::kHomogeneous));
  NodeExecutor b(hertz(), with(Strategy::kHomogeneous));
  const double t1 = a.estimate(paper_problem(), p, 60).makespan_seconds;
  const double t2 = b.estimate(paper_problem(), p, 120).makespan_seconds;
  EXPECT_GT(t2, 1.7 * t1);
}

TEST(Executor, GpuStrategyWithoutGpusThrows) {
  NodeConfig n = hertz();
  n.gpus.clear();
  EXPECT_THROW(NodeExecutor(n, with(Strategy::kHomogeneous)), std::invalid_argument);
}

TEST(Executor, BadOptionsThrow) {
  ExecutorOptions o;
  o.warmup_iterations = 0;
  EXPECT_THROW(NodeExecutor(hertz(), o), std::invalid_argument);
  o = ExecutorOptions{};
  o.chunk_blocks = 0;
  EXPECT_THROW(NodeExecutor(hertz(), o), std::invalid_argument);
}

TEST(Executor, StrategyNamesAreStable) {
  EXPECT_EQ(strategy_name(Strategy::kCpu), "OpenMP-CPU");
  EXPECT_EQ(strategy_name(Strategy::kHomogeneous), "homogeneous");
  EXPECT_EQ(strategy_name(Strategy::kHeterogeneous), "heterogeneous");
  EXPECT_EQ(strategy_name(Strategy::kCooperative), "cooperative");
}

}  // namespace
}  // namespace metadock::sched
