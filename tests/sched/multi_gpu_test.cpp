#include "sched/multi_gpu.h"

#include "scoring/batch_engine.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/device_db.h"
#include "mol/synth.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace metadock::sched {
namespace {

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  Fixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 180;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 11;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n, std::uint64_t seed = 3) {
  util::Xoshiro256 rng(seed);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

TEST(SplitBatch, EqualSharesSplitEvenlyInBlocks) {
  const auto counts = split_batch(100, 4, {1.0, 1.0});
  EXPECT_EQ(counts[0] + counts[1], 100u);
  // 25 blocks split 13/12 -> 52/48 conformations.
  EXPECT_EQ(counts[0] % 4, 0u);
  EXPECT_LE(counts[0], 52u);
}

TEST(SplitBatch, WeightedShares) {
  const auto counts = split_batch(400, 4, {3.0, 1.0});
  EXPECT_EQ(counts[0] + counts[1], 400u);
  EXPECT_EQ(counts[0], 300u);
  EXPECT_EQ(counts[1], 100u);
}

TEST(SplitBatch, TailBlockPaddingAbsorbed) {
  // 10 conformations, blocks of 4 -> 3 blocks; counts sum to exactly 10.
  const auto counts = split_batch(10, 4, {1.0, 1.0});
  EXPECT_EQ(counts[0] + counts[1], 10u);
}

TEST(SplitBatch, SingleDeviceTakesAll) {
  const auto counts = split_batch(77, 4, {1.0});
  EXPECT_EQ(counts[0], 77u);
}

TEST(SplitBatch, ZeroConformations) {
  const auto counts = split_batch(0, 4, {1.0, 1.0});
  EXPECT_EQ(counts[0] + counts[1], 0u);
}

TEST(SplitBatch, InvalidArgsThrow) {
  EXPECT_THROW((void)split_batch(10, 0, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)split_batch(10, 4, {}), std::invalid_argument);
  EXPECT_THROW((void)split_batch(10, 4, {-1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)split_batch(10, 4, {0.0, 0.0}), std::invalid_argument);
}

// Property sweep: arbitrary share vectors must cover every conformation
// exactly once and stay proportional within one block.
class SplitSweep : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(SplitSweep, CoversAndStaysProportional) {
  const auto [n, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  const std::size_t bins = 2 + rng.below(5);
  std::vector<double> shares(bins);
  double sum = 0.0;
  for (double& s : shares) {
    s = rng.uniform(0.05, 1.0);
    sum += s;
  }
  const auto counts = split_batch(n, 4, shares);
  std::size_t total = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    total += counts[b];
    // Proportionality within one block plus the shared tail block.
    const double exact = static_cast<double>(n) * shares[b] / sum;
    EXPECT_NEAR(static_cast<double>(counts[b]), exact, 8.0 + 4.0) << "bin " << b;
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitSweep,
                         ::testing::Combine(::testing::Values(1u, 63u, 64u, 1000u, 8192u),
                                            ::testing::Values(3u, 7u, 11u)));

TEST(MultiGpu, ScoresMatchDirectScorerRegardlessOfSplit) {
  Fixture f;
  const auto poses = random_poses(123);
  // The reference is the same batched engine that backs the device kernels:
  // per-pose energies are independent of how the batch is split, so every
  // split must reproduce them bit-exactly.
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  // Three very different splits must all produce identical science.
  for (const MultiGpuOptions& opt :
       {MultiGpuOptions{},  // equal static
        [] {
          MultiGpuOptions o;
          o.shares = {5.0, 1.0};
          return o;
        }(),
        [] {
          MultiGpuOptions o;
          o.dynamic = true;
          o.chunk_blocks = 2;
          return o;
        }()}) {
    gpusim::Runtime rt = testing::mixed_node_runtime();
    MultiGpuOptions options = opt;
    MultiGpuBatchScorer mgs(rt, f.scorer, options);
    std::vector<double> got(poses.size());
    mgs.evaluate(poses, got);
    for (std::size_t i = 0; i < poses.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], expected[i]) << "pose " << i;
    }
  }
}

TEST(MultiGpu, AllConformationsAccounted) {
  Fixture f;
  gpusim::Runtime rt = testing::mixed_node_runtime();
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  mgs.evaluate_cost_only(500);
  mgs.evaluate_cost_only(300);
  const auto& confs = mgs.device_conformations();
  EXPECT_EQ(std::accumulate(confs.begin(), confs.end(), std::size_t{0}), 800u);
}

TEST(MultiGpu, NodeTimeIsBarrierAware) {
  // With two identical devices and equal shares, node time per batch is
  // roughly the time of half the batch, not the full batch.
  Fixture f;
  gpusim::Runtime rt2({gpusim::geforce_gtx580(), gpusim::geforce_gtx580()});
  gpusim::Runtime rt1({gpusim::geforce_gtx580()});
  MultiGpuBatchScorer two(rt2, f.scorer, {});
  MultiGpuBatchScorer one(rt1, f.scorer, {});
  two.evaluate_cost_only(4096);
  one.evaluate_cost_only(4096);
  EXPECT_LT(two.node_seconds(), 0.7 * one.node_seconds());
}

TEST(MultiGpu, NodeTimeTracksSlowestDevice) {
  // All work forced onto the slow device: node time equals its time even
  // though the fast device sits idle.
  Fixture f;
  gpusim::Runtime rt = testing::mixed_node_runtime();
  MultiGpuOptions opt;
  opt.shares = {0.0, 1.0};
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  const double upload = mgs.node_seconds();
  mgs.evaluate_cost_only(1024);
  EXPECT_EQ(mgs.device_conformations()[0], 0u);
  EXPECT_EQ(mgs.device_conformations()[1], 1024u);
  EXPECT_GT(mgs.node_seconds(), upload);
}

TEST(MultiGpu, DynamicModeGivesFasterDeviceMoreWork) {
  Fixture f;
  gpusim::Runtime rt = testing::mixed_node_runtime();
  MultiGpuOptions opt;
  opt.dynamic = true;
  opt.chunk_blocks = 4;
  MultiGpuBatchScorer mgs(rt, f.scorer, opt);
  for (int i = 0; i < 5; ++i) mgs.evaluate_cost_only(2048);
  const auto& confs = mgs.device_conformations();
  EXPECT_GT(confs[0], confs[1]);  // K40c pulls more chunks
}

TEST(MultiGpu, ShareCountMismatchThrows) {
  Fixture f;
  gpusim::Runtime rt = testing::mixed_node_runtime();
  MultiGpuOptions opt;
  opt.shares = {1.0, 1.0, 1.0};
  EXPECT_THROW(MultiGpuBatchScorer(rt, f.scorer, opt), std::invalid_argument);
}

TEST(MultiGpu, NoDevicesThrows) {
  Fixture f;
  gpusim::Runtime rt({});
  EXPECT_THROW(MultiGpuBatchScorer(rt, f.scorer, {}), std::invalid_argument);
}

TEST(MultiGpu, EvaluateSizeMismatchThrows) {
  Fixture f;
  gpusim::Runtime rt({gpusim::geforce_gtx580()});
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  const auto poses = random_poses(4);
  std::vector<double> out(5);
  EXPECT_THROW(mgs.evaluate(poses, out), std::invalid_argument);
}

TEST(MultiGpu, UploadChargedOnce) {
  Fixture f;
  gpusim::Runtime rt({gpusim::geforce_gtx580()});
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  const double upload = mgs.node_seconds();
  EXPECT_GT(upload, 0.0);
  mgs.evaluate_cost_only(64);
  mgs.evaluate_cost_only(64);
  // Two equal batches cost the same increment: node time is linear after
  // the one-time upload.
  const double after2 = mgs.node_seconds();
  mgs.evaluate_cost_only(64);
  mgs.evaluate_cost_only(64);
  EXPECT_NEAR(mgs.node_seconds() - after2, after2 - upload, 1e-9);
}

}  // namespace
}  // namespace metadock::sched
