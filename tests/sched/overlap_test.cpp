// Overlapped (double-buffered) dispatch of the batch scorer: strategy
// invariance (bit-identical science with --overlap on|off, with and
// without an injected mid-run device death), latency hiding on a
// transfer-bound workload, the concurrent CPU tail partition, re-splits
// of in-flight half-batches, and the evaluate_cost_only replay-parity
// guarantee for the rebalance window.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "gpusim/fault_plan.h"
#include "gpusim/runtime.h"
#include "meta/params.h"
#include "mol/synth.h"
#include "obs/observer.h"
#include "scoring/batch_engine.h"
#include "sched/executor.h"
#include "sched/multi_gpu.h"
#include "sched/node_config.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace metadock::sched {
namespace {

using testing::mixed_node_runtime;
using testing::tiny_problem;

/// Fragment-sized docking system: 352 pairs per pose makes the kernel
/// cheap relative to the PCIe copies, so the pipeline's latency hiding is
/// visible in the virtual timeline (the regime BENCH_scoring.json gates).
struct FragmentFixture {
  mol::Molecule receptor;
  mol::Molecule ligand;
  scoring::LennardJonesScorer scorer;

  FragmentFixture()
      : receptor([] {
          mol::ReceptorParams p;
          p.atom_count = 32;
          return mol::make_receptor(p);
        }()),
        ligand([] {
          mol::LigandParams p;
          p.atom_count = 11;
          return mol::make_ligand(p);
        }()),
        scorer(receptor, ligand) {}
};

std::vector<scoring::Pose> random_poses(std::size_t n, std::uint64_t seed = 5) {
  util::Xoshiro256 rng(seed);
  std::vector<scoring::Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

meta::MetaheuristicParams tiny(meta::MetaheuristicParams p) {
  p.population_per_spot = 8;
  p.generations = 2;
  return p;
}

ExecutorOptions overlap_options(bool overlap) {
  ExecutorOptions o;
  o.strategy = Strategy::kHeterogeneous;
  o.warmup_iterations = 2;
  o.warmup_batch = 256;
  o.overlap = overlap;
  return o;
}

TEST(Overlap, BitIdenticalScienceAcrossMetaheuristics) {
  // The acceptance bar: across M1-M4, --overlap on|off must produce
  // bit-identical spot results, with and without a device death injected
  // mid-run.  Overlap only changes the virtual timeline, never a score.
  const std::vector<std::pair<std::string, meta::MetaheuristicParams>> presets = {
      {"M1", tiny(meta::m1_genetic())},
      {"M2", tiny(meta::m2_scatter_full())},
      {"M3", tiny(meta::m3_scatter_light())},
      {"M4", tiny(meta::m4_local_search())},
  };
  for (const auto& [name, params] : presets) {
    // Fault-free reference: the serial (paper-faithful) path.
    NodeExecutor serial(hertz(), overlap_options(false));
    const ExecutionReport ref = serial.run(tiny_problem(), params);
    std::map<int, double> expected;
    for (const auto& sr : ref.result.spot_results) expected[sr.spot_id] = sr.best.score;
    ASSERT_FALSE(expected.empty());

    // A death halfway through the fault-free makespan lands mid-run in
    // both timelines (overlap finishes no later than serial).
    gpusim::FaultPlan death;
    death.kill(0, 0.5 * ref.makespan_seconds);

    for (const bool overlap : {true, false}) {
      for (const bool inject : {false, true}) {
        ExecutorOptions o = overlap_options(overlap);
        if (inject) o.fault_plan = death;
        NodeExecutor exec(hertz(), o);
        const ExecutionReport r = exec.run(tiny_problem(), params);
        ASSERT_EQ(r.result.spot_results.size(), expected.size());
        for (const auto& sr : r.result.spot_results) {
          EXPECT_DOUBLE_EQ(sr.best.score, expected[sr.spot_id])
              << name << " overlap=" << overlap << " death=" << inject << " spot "
              << sr.spot_id;
        }
        if (inject) {
          EXPECT_EQ(r.faults.devices_lost, 1u) << name << " overlap=" << overlap;
        } else {
          EXPECT_FALSE(r.faults.any()) << name << " overlap=" << overlap;
        }
      }
    }
  }
}

TEST(Overlap, HidesTransfersOnTransferBoundBatches) {
  // Same workload, same shares, same scores — the overlapped pipeline
  // must beat the serial copy->launch->copy round by the BENCH gate
  // (1.25x) on the transfer-bound fragment regime.
  FragmentFixture f;
  const std::size_t batch = 1 << 18;
  const auto batch_time = [&f, batch](bool overlap) {
    gpusim::Runtime rt(hertz().gpus);
    MultiGpuOptions o;
    o.overlap = overlap;
    MultiGpuBatchScorer mgs(rt, f.scorer, o);
    const double setup = mgs.node_seconds();  // molecule upload
    for (int i = 0; i < 4; ++i) mgs.evaluate_cost_only(batch);
    return (mgs.node_seconds() - setup) / 4.0;
  };
  const double serial_s = batch_time(false);
  const double overlapped_s = batch_time(true);
  ASSERT_GT(serial_s, 0.0);
  ASSERT_GT(overlapped_s, 0.0);
  EXPECT_GT(serial_s / overlapped_s, 1.25);
}

TEST(Overlap, CpuTailScoresConcurrentlyAndMatches) {
  FragmentFixture f;
  const auto poses = random_poses(4096);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  const NodeConfig node = hertz();
  gpusim::Runtime rt(node.gpus);
  MultiGpuOptions o;
  o.cpu_tail_share = 0.25;
  o.cpu_fallback = node.cpu;
  MultiGpuBatchScorer mgs(rt, f.scorer, o);
  std::vector<double> got(poses.size());
  mgs.evaluate(poses, got);

  for (std::size_t i = 0; i < poses.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], expected[i]) << "pose " << i;
  }
  // The tail really ran on the host engine, concurrently (not as degraded
  // fallback), and every conformation is accounted exactly once.
  EXPECT_GT(mgs.cpu_tail_conformations(), 0u);
  EXPECT_LE(mgs.cpu_tail_conformations(), poses.size() / 4 + 1);
  EXPECT_FALSE(mgs.fault_report().degraded_to_cpu);
  EXPECT_EQ(mgs.fault_report().cpu_fallback_conformations, 0u);
  std::size_t gpu_confs = 0;
  for (const std::size_t c : mgs.device_conformations()) gpu_confs += c;
  EXPECT_EQ(gpu_confs + mgs.cpu_tail_conformations(), poses.size());
  EXPECT_GT(mgs.cpu_energy_joules(), 0.0);
}

TEST(Overlap, CpuTailOptionIsValidated) {
  FragmentFixture f;
  gpusim::Runtime rt(hertz().gpus);
  MultiGpuOptions no_engine;
  no_engine.cpu_tail_share = 0.2;  // no cpu_fallback to run it on
  EXPECT_THROW(MultiGpuBatchScorer(rt, f.scorer, no_engine), std::invalid_argument);
  MultiGpuOptions bad_share;
  bad_share.cpu_fallback = hertz().cpu;
  bad_share.cpu_tail_share = 1.0;  // the GPUs must keep a head partition
  EXPECT_THROW(MultiGpuBatchScorer(rt, f.scorer, bad_share), std::invalid_argument);
}

TEST(Overlap, MidPipelineDeathResplitsWithoutDroppingScores) {
  // Kill device 0 at several points inside its double-buffered pipeline
  // (first half, between the halves, during D2H): whatever prefix
  // completed is kept, the rest re-splits to the survivor, and every
  // score still matches the host reference.
  FragmentFixture f;
  const auto poses = random_poses(2048);
  std::vector<double> expected(poses.size());
  scoring::BatchScoringEngine(f.scorer).score_batch(poses, expected);

  gpusim::Runtime clean = mixed_node_runtime();
  MultiGpuBatchScorer clean_mgs(clean, f.scorer, {});
  std::vector<double> out(poses.size());
  clean_mgs.evaluate(poses, out);
  const double slice_s = clean.device(0).busy_seconds();
  ASSERT_GT(slice_s, 0.0);

  for (const double frac : {0.2, 0.55, 0.95}) {
    gpusim::FaultPlan plan;
    plan.kill(0, frac * slice_s);
    gpusim::Runtime rt = mixed_node_runtime(plan);
    MultiGpuBatchScorer mgs(rt, f.scorer, {});  // overlap defaults on
    std::vector<double> got(poses.size());
    mgs.evaluate(poses, got);
    for (std::size_t i = 0; i < poses.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], expected[i]) << "kill@" << frac << " pose " << i;
    }
    const FaultReport& r = mgs.fault_report();
    EXPECT_EQ(r.devices_lost, 1u) << "kill@" << frac;
    EXPECT_GE(r.resplits, 1u) << "kill@" << frac;
    EXPECT_TRUE(mgs.quarantined(0)) << "kill@" << frac;
    // The survivor absorbed everything the dead device did not finish.
    EXPECT_EQ(mgs.device_conformations()[0] + mgs.device_conformations()[1], poses.size())
        << "kill@" << frac;
  }
}

TEST(Overlap, LateDeathKeepsTheDeliveredHalfBatch) {
  // At a scale where the double buffer engages (bandwidth-bound halves), a
  // death late in the pipeline must keep the first half's already-
  // downloaded scores: only the in-flight remainder re-splits.
  FragmentFixture f;
  const std::size_t n = 65536;
  gpusim::Runtime clean = mixed_node_runtime();
  MultiGpuBatchScorer clean_mgs(clean, f.scorer, {});
  clean_mgs.evaluate_cost_only(n);
  const double slice_s = clean.device(0).busy_seconds();
  const std::size_t half = clean_mgs.device_conformations()[0] / 2;
  ASSERT_GT(half, 0u);

  gpusim::FaultPlan plan;
  plan.kill(0, 0.9 * slice_s);  // during the second half of the pipeline
  gpusim::Runtime rt = mixed_node_runtime(plan);
  MultiGpuBatchScorer mgs(rt, f.scorer, {});
  mgs.evaluate_cost_only(n);
  const FaultReport& r = mgs.fault_report();
  EXPECT_EQ(r.devices_lost, 1u);
  EXPECT_EQ(r.resplits, 1u);
  // The first half came home before the card died; the survivor absorbed
  // exactly the rest.
  EXPECT_EQ(mgs.device_conformations()[0], half);
  EXPECT_EQ(mgs.device_conformations()[1], n - half);
}

TEST(Overlap, CostOnlyReplayMatchesRealRunTime) {
  // evaluate_cost_only must feed the rebalance window (window_confs_/
  // window_seconds_) exactly like evaluate: with periodic rebalancing on,
  // a trace replay re-derives the same shares at the same batches and
  // lands on the identical barrier-aware node time.
  FragmentFixture f;
  const auto poses = random_poses(512);
  for (const bool overlap : {true, false}) {
    MultiGpuOptions o;
    o.overlap = overlap;
    o.faults.rebalance_batches = 3;

    gpusim::Runtime real_rt = mixed_node_runtime();
    MultiGpuBatchScorer real(real_rt, f.scorer, o);
    std::vector<double> out(poses.size());
    for (int b = 0; b < 8; ++b) real.evaluate(poses, out);

    gpusim::Runtime replay_rt = mixed_node_runtime();
    MultiGpuBatchScorer replay(replay_rt, f.scorer, o);
    for (int b = 0; b < 8; ++b) replay.evaluate_cost_only(poses.size());

    EXPECT_GT(real.fault_report().rebalances, 0u) << "overlap=" << overlap;
    EXPECT_EQ(replay.fault_report().rebalances, real.fault_report().rebalances)
        << "overlap=" << overlap;
    EXPECT_EQ(replay.current_shares(), real.current_shares()) << "overlap=" << overlap;
    EXPECT_DOUBLE_EQ(replay.node_seconds(), real.node_seconds()) << "overlap=" << overlap;
    EXPECT_EQ(replay.device_conformations(), real.device_conformations())
        << "overlap=" << overlap;
  }
}

TEST(Overlap, SavedSecondsCounterAndStreamTracksAreEmitted) {
  FragmentFixture f;
  obs::Observer observer;
  gpusim::Runtime rt(hertz().gpus);
  for (int d = 0; d < rt.device_count(); ++d) {
    rt.device(d).set_observer(&observer);
  }
  MultiGpuOptions o;
  o.observer = &observer;
  MultiGpuBatchScorer mgs(rt, f.scorer, o);
  for (int i = 0; i < 2; ++i) mgs.evaluate_cost_only(1 << 18);

  // The pipeline accounts what overlap saved vs the serial round...
  EXPECT_GT(observer.metrics.counter("sched.overlap.saved_seconds").value(), 0.0);
  // ...and the per-stream work lands on named "device.N.stream.S" tracks.
  const std::string json = observer.tracer.to_chrome_json();
  EXPECT_NE(json.find("device.0.stream.1"), std::string::npos);
  EXPECT_NE(json.find("device.0.stream.2"), std::string::npos);
}

TEST(Overlap, ExecutorEstimateImprovesWithOverlap) {
  // At paper scale the copies are a small slice of the round, but hiding
  // them must never cost time — and the het-vs-hom gap on hertz holds
  // with the pipeline on.
  const auto makespan = [](Strategy s, bool overlap) {
    ExecutorOptions o = overlap_options(overlap);
    o.strategy = s;
    NodeExecutor exec(hertz(), o);
    return exec.estimate(testing::paper_problem(), meta::m1_genetic()).makespan_seconds;
  };
  const double het_on = makespan(Strategy::kHeterogeneous, true);
  const double het_off = makespan(Strategy::kHeterogeneous, false);
  const double hom_on = makespan(Strategy::kHomogeneous, true);
  const double hom_off = makespan(Strategy::kHomogeneous, false);
  EXPECT_LT(het_on, het_off);
  EXPECT_LT(hom_on, hom_off);
  // The paper's het-vs-hom gap survives overlap — and widens: the Eq. 1
  // split keeps every pipeline saturated, so hiding the copies helps the
  // balanced run at least as much as the equal split.
  EXPECT_GT(hom_on / het_on, 1.3);
  EXPECT_GE(hom_on / het_on, hom_off / het_off);
}

}  // namespace
}  // namespace metadock::sched
