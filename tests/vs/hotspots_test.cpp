#include "vs/hotspots.h"

#include <gtest/gtest.h>

#include "meta/evaluator.h"
#include "testing/fixtures.h"

namespace metadock::vs {
namespace {

const meta::RunResult& run() {
  static const meta::RunResult r = [] {
    const meta::DockingProblem& p = testing::tiny_problem();
    static const scoring::LennardJonesScorer scorer(*p.receptor, *p.ligand);
    meta::MetaheuristicParams params = meta::m3_scatter_light();
    params.population_per_spot = 8;
    params.generations = 2;
    meta::DirectEvaluator eval(scorer);
    return meta::MetaheuristicEngine(params).run(p, eval);
  }();
  return r;
}

TEST(Hotspots, MapCoversEveryVisitedSpotSortedBestFirst) {
  const auto map = surface_score_map(run(), testing::tiny_problem().spots);
  ASSERT_EQ(map.size(), run().spot_results.size());
  for (std::size_t i = 1; i < map.size(); ++i) {
    EXPECT_LE(map[i - 1].best_energy, map[i].best_energy);
  }
}

TEST(Hotspots, MapCarriesSpotGeometry) {
  const auto& spots = testing::tiny_problem().spots;
  const auto map = surface_score_map(run(), spots);
  for (const SpotScore& s : map) {
    ASSERT_GE(s.spot_id, 0);
    ASSERT_LT(static_cast<std::size_t>(s.spot_id), spots.size());
    EXPECT_EQ(s.center, spots[static_cast<std::size_t>(s.spot_id)].center);
  }
}

TEST(Hotspots, UnknownSpotThrows) {
  meta::RunResult bogus = run();
  bogus.spot_results.front().spot_id = 99999;
  EXPECT_THROW((void)surface_score_map(bogus, testing::tiny_problem().spots),
               std::invalid_argument);
}

TEST(Hotspots, HotspotsAreTopFractionAndAttractive) {
  const auto map = surface_score_map(run(), testing::tiny_problem().spots);
  const auto hot = hotspots(map, 0.2);
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), map.size());
  EXPECT_EQ(hot.front().spot_id, map.front().spot_id);
  const double best = map.front().best_energy;
  const double worst = map.back().best_energy;
  for (const SpotScore& s : hot) {
    EXPECT_LT(s.best_energy, 0.0);
    EXPECT_LE(s.best_energy, best + 0.2 * (worst - best) + 1e-12);
  }
}

TEST(Hotspots, ZeroFractionKeepsOnlyTheBest) {
  const auto map = surface_score_map(run(), testing::tiny_problem().spots);
  const auto hot = hotspots(map, 0.0);
  ASSERT_GE(hot.size(), 1u);
  for (const SpotScore& s : hot) {
    EXPECT_DOUBLE_EQ(s.best_energy, map.front().best_energy);
  }
}

TEST(Hotspots, FullFractionKeepsAllAttractive) {
  const auto map = surface_score_map(run(), testing::tiny_problem().spots);
  std::size_t attractive = 0;
  for (const SpotScore& s : map) attractive += s.best_energy < 0.0;
  EXPECT_EQ(hotspots(map, 1.0).size(), attractive);
}

TEST(Hotspots, EmptyAndInvalidInputs) {
  EXPECT_TRUE(hotspots({}, 0.2).empty());
  const auto map = surface_score_map(run(), testing::tiny_problem().spots);
  EXPECT_THROW((void)hotspots(map, -0.1), std::invalid_argument);
  EXPECT_THROW((void)hotspots(map, 1.1), std::invalid_argument);
}

TEST(Hotspots, AllRepulsiveMapYieldsNoHotspots) {
  std::vector<SpotScore> map(3);
  map[0].best_energy = 1.0;
  map[1].best_energy = 2.0;
  map[2].best_energy = 3.0;
  EXPECT_TRUE(hotspots(map, 0.5).empty());
}

}  // namespace
}  // namespace metadock::vs
