// Job-file parsing and the `metadock serve` loop: directory lifecycle
// (.done / .failed renames), the stdin protocol, cooperative shutdown, and
// server-level resume of an interrupted job.
#include "vs/job_server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"
#include "vs/batch_screening.h"

namespace metadock::vs {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the gtest temp dir.
fs::path temp_dir(const std::string& name) {
  static int counter = 0;
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("metadock_serve_" + std::to_string(counter++) + "_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const fs::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
}

/// A tiny job that docks quickly: 3 ligands of 8-14 atoms at scale 0.002.
std::string tiny_job_json(const std::string& extra = "") {
  return std::string("{\"ligands\": 3, \"min_atoms\": 8, \"max_atoms\": 14, "
                     "\"receptor_atoms\": 300, \"scale\": 0.002, \"batch_size\": 2, "
                     "\"population_per_spot\": 8" +
                     (extra.empty() ? "" : ", " + extra) + "}");
}

// ---------------------------------------------------------------------------
// parse_job_file
// ---------------------------------------------------------------------------

TEST(JobSpecParse, DefaultsFillEveryField) {
  const fs::path dir = temp_dir("defaults");
  const fs::path path = dir / "alpha.job.json";
  write_file(path, "{}");
  const JobSpec spec = parse_job_file(path.string());
  EXPECT_EQ(spec.name, "alpha");  // derived from the stem, .job.json stripped
  EXPECT_EQ(spec.job_path, path.string());
  EXPECT_EQ(spec.ligand_count, 16u);
  EXPECT_EQ(spec.min_atoms, 20u);
  EXPECT_EQ(spec.max_atoms, 60u);
  EXPECT_EQ(spec.dataset, "2BSM");
  EXPECT_EQ(spec.receptor_atoms, 0u);
  EXPECT_EQ(spec.mh, "M1");
  EXPECT_EQ(spec.node, "hertz");
  EXPECT_EQ(spec.strategy, "het");
  EXPECT_EQ(spec.batch_size, 64u);
  EXPECT_DOUBLE_EQ(spec.top_percent, 100.0);
  EXPECT_EQ(spec.hits_path, path.string() + ".hits.jsonl");
  EXPECT_TRUE(spec.resume);
}

TEST(JobSpecParse, OverridesAreHonoured) {
  const fs::path dir = temp_dir("overrides");
  const fs::path path = dir / "beta.job.json";
  write_file(path,
             "{\"name\": \"custom\", \"ligands\": 5, \"min_atoms\": 6, \"max_atoms\": 9, "
             "\"library_seed\": 99, \"dataset\": \"2BXG\", \"mh\": \"M4\", "
             "\"node\": \"jupiter\", \"strategy\": \"cpu\", \"scale\": 0.25, "
             "\"seed\": 17, \"batch_size\": 2, \"top_percent\": 40.0, "
             "\"hits\": \"custom.jsonl\", \"resume\": false}");
  const JobSpec spec = parse_job_file(path.string());
  EXPECT_EQ(spec.name, "custom");
  EXPECT_EQ(spec.ligand_count, 5u);
  EXPECT_EQ(spec.min_atoms, 6u);
  EXPECT_EQ(spec.max_atoms, 9u);
  EXPECT_EQ(spec.library_seed, 99u);
  EXPECT_EQ(spec.dataset, "2BXG");
  EXPECT_EQ(spec.mh, "M4");
  EXPECT_EQ(spec.node, "jupiter");
  EXPECT_EQ(spec.strategy, "cpu");
  EXPECT_DOUBLE_EQ(spec.scale, 0.25);
  EXPECT_EQ(spec.seed, 17u);
  EXPECT_EQ(spec.batch_size, 2u);
  EXPECT_DOUBLE_EQ(spec.top_percent, 40.0);
  EXPECT_EQ(spec.hits_path, "custom.jsonl");
  EXPECT_FALSE(spec.resume);
}

TEST(JobSpecParse, RejectsMissingAndMalformedAndOutOfRange) {
  const fs::path dir = temp_dir("bad");
  EXPECT_THROW((void)parse_job_file((dir / "absent.job.json").string()), std::runtime_error);

  const fs::path malformed = dir / "malformed.job.json";
  write_file(malformed, "{\"ligands\": ");
  EXPECT_THROW((void)parse_job_file(malformed.string()), util::JsonParseError);

  const fs::path not_object = dir / "array.job.json";
  write_file(not_object, "[1, 2]");
  EXPECT_THROW((void)parse_job_file(not_object.string()), std::runtime_error);

  const fs::path zero = dir / "zero.job.json";
  write_file(zero, "{\"ligands\": 0}");
  EXPECT_THROW((void)parse_job_file(zero.string()), std::invalid_argument);

  const fs::path atoms = dir / "atoms.job.json";
  write_file(atoms, "{\"min_atoms\": 10, \"max_atoms\": 5}");
  EXPECT_THROW((void)parse_job_file(atoms.string()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// serve_directory
// ---------------------------------------------------------------------------

TEST(JobServer, DrainProcessesAllJobsAndRenamesDone) {
  const fs::path dir = temp_dir("drain");
  write_file(dir / "a.job.json", tiny_job_json());
  write_file(dir / "b.job.json", tiny_job_json("\"top_percent\": 50.0"));
  write_file(dir / "notes.txt", "not a job");  // must be ignored

  obs::Observer observer;
  JobServerOptions options;
  options.jobs_dir = dir.string();
  options.drain = true;
  options.observer = &observer;
  JobServer server(options);
  const std::vector<JobOutcome> outcomes = server.serve_directory();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].name, "a");  // lexicographic order
  EXPECT_EQ(outcomes[1].name, "b");
  for (const JobOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_EQ(outcome.result.completed, 3u);
    EXPECT_TRUE(fs::exists(outcome.hits_path));
    EXPECT_FALSE(fs::exists(outcome.job_path));
    EXPECT_TRUE(fs::exists(outcome.job_path + ".done"));
  }
  EXPECT_EQ(outcomes[0].result.retained.size(), 3u);
  EXPECT_EQ(outcomes[1].result.retained.size(), 2u);  // ceil(3 * 50%)
  EXPECT_TRUE(fs::exists(dir / "notes.txt"));
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.serve.jobs_completed").value(), 2.0);
}

TEST(JobServer, FailingJobIsRenamedFailedAndCounted) {
  const fs::path dir = temp_dir("fail");
  write_file(dir / "bad.job.json", "{\"mh\": \"M9\"}");
  write_file(dir / "good.job.json", tiny_job_json());

  obs::Observer observer;
  JobServerOptions options;
  options.jobs_dir = dir.string();
  options.drain = true;
  options.observer = &observer;
  JobServer server(options);
  const std::vector<JobOutcome> outcomes = server.serve_directory();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("M9"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir / "bad.job.json.failed"));  // never reprocessed
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_TRUE(fs::exists(dir / "good.job.json.done"));
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.serve.jobs_failed").value(), 1.0);
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.serve.jobs_completed").value(), 1.0);
}

TEST(JobServer, MaxJobsStopsEarly) {
  const fs::path dir = temp_dir("maxjobs");
  write_file(dir / "a.job.json", tiny_job_json());
  write_file(dir / "b.job.json", tiny_job_json());
  JobServerOptions options;
  options.jobs_dir = dir.string();
  options.drain = true;
  options.max_jobs = 1;
  JobServer server(options);
  const std::vector<JobOutcome> outcomes = server.serve_directory();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(fs::exists(dir / "a.job.json.done"));
  EXPECT_TRUE(fs::exists(dir / "b.job.json"));  // untouched, next run's work
}

TEST(JobServer, StopHookPreventsFurtherJobs) {
  const fs::path dir = temp_dir("stop");
  write_file(dir / "a.job.json", tiny_job_json());
  write_file(dir / "b.job.json", tiny_job_json());
  JobServerOptions options;
  options.jobs_dir = dir.string();
  options.drain = true;
  int calls = 0;
  // Polls 1-3 (serve loop, pre-job check, batch 0) pass; poll 4 — the
  // batch screener's check before batch 1 — requests stop.  Job a finishes
  // its in-flight batch, flushes, and reports interrupted; job b never runs.
  options.should_stop = [&calls] { return ++calls > 3; };
  JobServer server(options);
  const std::vector<JobOutcome> outcomes = server.serve_directory();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].interrupted);
  EXPECT_TRUE(fs::exists(dir / "a.job.json"));  // kept for resume
  EXPECT_TRUE(fs::exists(dir / "b.job.json"));  // never started
}

// The serve-level resume contract: an interrupted job keeps its file and
// its flushed stream; the next serve run resumes it and finishes with the
// same hits an uninterrupted run produces.
TEST(JobServer, InterruptedJobResumesOnNextRun) {
  // Reference: the same job, uninterrupted.
  const fs::path ref_dir = temp_dir("resume_ref");
  write_file(ref_dir / "job.job.json", tiny_job_json());
  JobServerOptions ref_options;
  ref_options.jobs_dir = ref_dir.string();
  ref_options.drain = true;
  JobServer ref_server(ref_options);
  const std::vector<JobOutcome> ref = ref_server.serve_directory();
  ASSERT_EQ(ref.size(), 1u);
  ASSERT_TRUE(ref[0].ok);

  const fs::path dir = temp_dir("resume");
  write_file(dir / "job.job.json", tiny_job_json());

  // Run 1: stop after the first batch-boundary poll — SIGINT mid-job.
  {
    JobServerOptions options;
    options.jobs_dir = dir.string();
    options.drain = true;
    int polls = 0;
    // Stop at the screener's pre-batch-1 poll (serve loop + pre-job check
    // + batch 0 account for the first three), so exactly one batch lands.
    options.should_stop = [&polls] { return ++polls > 3; };
    JobServer server(options);
    const std::vector<JobOutcome> outcomes = server.serve_directory();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].interrupted);
    EXPECT_EQ(outcomes[0].result.newly_docked, 2u);  // one flushed batch
    EXPECT_TRUE(fs::exists(dir / "job.job.json"));
  }

  // Run 2: no stop hook; the job resumes from its stream and completes.
  obs::Observer observer;
  JobServerOptions options;
  options.jobs_dir = dir.string();
  options.drain = true;
  options.observer = &observer;
  JobServer server(options);
  const std::vector<JobOutcome> outcomes = server.serve_directory();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[0].interrupted);
  EXPECT_EQ(outcomes[0].result.resumed_skips, 2u);
  EXPECT_EQ(outcomes[0].result.newly_docked, 1u);
  EXPECT_EQ(outcomes[0].result.completed, 3u);
  EXPECT_TRUE(fs::exists(dir / "job.job.json.done"));
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.resumed_skips").value(), 2.0);

  // Same hit list as the uninterrupted reference, bit for bit.
  const auto& got = outcomes[0].result.retained;
  const auto& want = ref[0].result.retained;
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].ligand_index, want[i].ligand_index);
    EXPECT_EQ(got[i].best_score, want[i].best_score);
  }
}

// ---------------------------------------------------------------------------
// serve_stream
// ---------------------------------------------------------------------------

TEST(JobServer, StreamProtocolProcessesPathsPerLine) {
  const fs::path dir = temp_dir("stream");
  write_file(dir / "one.job.json", tiny_job_json());
  write_file(dir / "two.job.json", tiny_job_json());
  std::istringstream in("  " + (dir / "one.job.json").string() + "  \n" +  // padded
                        "\n" +                                             // blank: skipped
                        (dir / "two.job.json").string() + "\n");
  JobServer server({});
  const std::vector<JobOutcome> outcomes = server.serve_stream(in);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].name, "one");
  EXPECT_EQ(outcomes[1].name, "two");
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_TRUE(fs::exists(dir / "one.job.json.done"));
  EXPECT_TRUE(fs::exists(dir / "two.job.json.done"));
}

TEST(JobServer, StreamReportsMissingJobAsFailure) {
  std::istringstream in("/nonexistent/path.job.json\n");
  JobServer server({});
  const std::vector<JobOutcome> outcomes = server.serve_stream(in);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[0].error.empty());
}

TEST(JobServer, RejectsNegativePollInterval) {
  JobServerOptions options;
  options.poll_ms = -1;
  EXPECT_THROW(JobServer server(options), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::vs
