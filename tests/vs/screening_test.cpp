#include "vs/screening.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mol/library.h"
#include "mol/synth.h"

namespace metadock::vs {
namespace {

const mol::Molecule& receptor() {
  static const mol::Molecule r = [] {
    mol::ReceptorParams p;
    p.atom_count = 350;
    p.seed = 31;
    return mol::make_receptor(p);
  }();
  return r;
}

ScreeningOptions fast_options() {
  ScreeningOptions o;
  o.params = meta::m3_scatter_light();
  o.params.population_per_spot = 8;
  o.params.generations = 200;
  o.scale = 0.01;  // -> 2 generations
  return o;
}

std::vector<mol::Molecule> small_library(std::size_t n) {
  mol::LibraryParams p;
  p.count = n;
  p.min_atoms = 8;
  p.max_atoms = 16;
  return make_ligand_library(p);
}

TEST(Screening, ConstructorDetectsSpots) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  EXPECT_GT(engine.spots().size(), 3u);
}

TEST(Screening, InvalidScaleThrows) {
  ScreeningOptions o = fast_options();
  o.scale = 0.0;
  EXPECT_THROW(VirtualScreeningEngine(receptor(), sched::hertz(), o), std::invalid_argument);
  o.scale = 1.5;
  EXPECT_THROW(VirtualScreeningEngine(receptor(), sched::hertz(), o), std::invalid_argument);
}

TEST(Screening, DockReturnsCompleteHit) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(1);
  const LigandHit hit = engine.dock(lib[0], 7);
  EXPECT_EQ(hit.ligand_index, 7u);
  EXPECT_EQ(hit.ligand_name, "lig-0");
  EXPECT_GE(hit.best_spot_id, 0);
  EXPECT_GT(hit.virtual_seconds, 0.0);
  EXPECT_GT(hit.energy_joules, 0.0);
  EXPECT_LT(hit.best_score, 1e9);
}

TEST(Screening, ScreenRanksByScore) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto hits = engine.screen(small_library(4));
  ASSERT_EQ(hits.size(), 4u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].best_score, hits[i].best_score);
  }
}

TEST(Screening, EveryLigandAppearsOnce) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto hits = engine.screen(small_library(5));
  std::set<std::size_t> indices;
  for (const auto& h : hits) indices.insert(h.ligand_index);
  EXPECT_EQ(indices.size(), 5u);
}

TEST(Screening, DeterministicAcrossEngines) {
  VirtualScreeningEngine a(receptor(), sched::hertz(), fast_options());
  VirtualScreeningEngine b(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(2);
  EXPECT_DOUBLE_EQ(a.dock(lib[0]).best_score, b.dock(lib[0]).best_score);
}

TEST(Screening, SeedAffectsResults) {
  ScreeningOptions o1 = fast_options(), o2 = fast_options();
  o2.seed = 777;
  VirtualScreeningEngine a(receptor(), sched::hertz(), o1);
  VirtualScreeningEngine b(receptor(), sched::hertz(), o2);
  const auto lib = small_library(1);
  EXPECT_NE(a.dock(lib[0]).best_score, b.dock(lib[0]).best_score);
}

TEST(Screening, EnsembleDockingReturnsBestConformer) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(1);
  mol::ConformerParams cp;
  cp.count = 3;
  std::vector<double> per_conformer;
  const LigandHit hit = engine.dock_ensemble(lib[0], cp, &per_conformer, 5);
  ASSERT_EQ(per_conformer.size(), 3u);
  double best = per_conformer[0];
  for (double e : per_conformer) best = std::min(best, e);
  EXPECT_DOUBLE_EQ(hit.best_score, best);
  EXPECT_EQ(hit.ligand_index, 5u);
  EXPECT_EQ(hit.ligand_name, lib[0].name());
}

TEST(Screening, EnsembleCostAccumulatesOverConformers) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(1);
  const LigandHit single = engine.dock(lib[0]);
  mol::ConformerParams cp;
  cp.count = 3;
  const LigandHit ensemble = engine.dock_ensemble(lib[0], cp);
  EXPECT_GT(ensemble.virtual_seconds, 2.0 * single.virtual_seconds);
}

// Regression for the unstable-sort bug: screen() used std::sort with a
// score-only comparator, so equal-score ligands ranked nondeterministically.
// hit_before must break score ties by ligand index, and sort_hits must
// produce the unique total order even when the input arrives worst-first.
TEST(Screening, EqualScoreHitsSortByLigandIndex) {
  std::vector<LigandHit> hits;
  for (std::size_t i = 0; i < 8; ++i) {
    LigandHit h;
    h.ligand_index = 7 - i;  // descending indices, all the same score
    h.best_score = -5.25;
    hits.push_back(h);
  }
  sort_hits(hits);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].ligand_index, i);

  LigandHit a, b;
  a.best_score = b.best_score = 1.0;
  a.ligand_index = 1;
  b.ligand_index = 2;
  EXPECT_TRUE(hit_before(a, b));
  EXPECT_FALSE(hit_before(b, a));
  EXPECT_FALSE(hit_before(a, a));  // irreflexive: strict total order
  b.best_score = 0.5;
  EXPECT_TRUE(hit_before(b, a));  // score still dominates
}

// Duplicate ligands dock to bit-identical scores (same molecule, same
// seed-by-index stream would differ — so dock the same index twice) and the
// ranked list must still be deterministic: ties resolve by index.
TEST(Screening, DuplicateLigandsRankDeterministically) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(1);
  // Two hits with identical scores but different library positions, plus a
  // distinct third; simulate the duplicate-ligand screen result.
  LigandHit first = engine.dock(lib[0], 0);
  LigandHit dup = first;
  dup.ligand_index = 3;
  LigandHit other = engine.dock(lib[0], 1);
  std::vector<LigandHit> hits = {dup, other, first};
  sort_hits(hits);
  ASSERT_EQ(hits.size(), 3u);
  // Equal-score pair ordered by index regardless of input order.
  std::vector<LigandHit> again = {first, other, dup};
  sort_hits(again);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].ligand_index, again[i].ligand_index);
    EXPECT_EQ(hits[i].best_score, again[i].best_score);
  }
  EXPECT_LT(std::find_if(hits.begin(), hits.end(),
                         [](const LigandHit& h) { return h.ligand_index == 0; }),
            std::find_if(hits.begin(), hits.end(),
                         [](const LigandHit& h) { return h.ligand_index == 3; }));
}

TEST(Screening, CpuNodeWorksToo) {
  ScreeningOptions o = fast_options();
  o.exec.strategy = sched::Strategy::kCpu;
  VirtualScreeningEngine engine(receptor(), sched::hertz(), o);
  const auto lib = small_library(1);
  const LigandHit hit = engine.dock(lib[0]);
  EXPECT_GT(hit.virtual_seconds, 0.0);
}

}  // namespace
}  // namespace metadock::vs
