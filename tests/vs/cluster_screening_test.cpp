// Multi-node screening science gate: the hit list a simulated cluster
// campaign returns must be bit-identical to single-node screen() for every
// distribution policy and node-fault schedule — distribution changes
// *when*, never *what*.
#include "vs/cluster_screening.h"

#include <gtest/gtest.h>

#include <numeric>

#include "mol/library.h"
#include "mol/synth.h"

namespace metadock::vs {
namespace {

const mol::Molecule& receptor() {
  static const mol::Molecule r = [] {
    mol::ReceptorParams p;
    p.atom_count = 350;
    p.seed = 31;
    return mol::make_receptor(p);
  }();
  return r;
}

ScreeningOptions fast_options() {
  ScreeningOptions o;
  o.params = meta::m3_scatter_light();
  o.params.population_per_spot = 8;
  o.params.generations = 200;
  o.scale = 0.01;  // -> 2 generations
  return o;
}

std::vector<mol::Molecule> small_library(std::size_t n) {
  mol::LibraryParams p;
  p.count = n;
  p.min_atoms = 8;
  p.max_atoms = 16;
  return make_ligand_library(p);
}

std::vector<sched::NodeConfig> three_nodes() {
  return {sched::hertz(), sched::jupiter(), sched::hertz()};
}

void expect_hits_identical(const std::vector<LigandHit>& a, const std::vector<LigandHit>& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ligand_index, b[i].ligand_index) << what << " rank " << i;
    EXPECT_EQ(a[i].best_score, b[i].best_score) << what << " rank " << i;  // bitwise
    EXPECT_EQ(a[i].best_spot_id, b[i].best_spot_id) << what << " rank " << i;
    EXPECT_EQ(a[i].best_pose.position.x, b[i].best_pose.position.x) << what << " rank " << i;
    EXPECT_EQ(a[i].best_pose.position.y, b[i].best_pose.position.y) << what << " rank " << i;
    EXPECT_EQ(a[i].best_pose.position.z, b[i].best_pose.position.z) << what << " rank " << i;
  }
}

constexpr sched::DistributionPolicy kAllPolicies[] = {
    sched::DistributionPolicy::kStatic, sched::DistributionPolicy::kStaticProportional,
    sched::DistributionPolicy::kDynamic, sched::DistributionPolicy::kWorkStealing};

TEST(ClusterScreening, BitIdenticalToSingleNodeForEveryPolicy) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(10);
  const std::vector<LigandHit> single = engine.screen(lib);
  for (sched::DistributionPolicy policy : kAllPolicies) {
    ClusterScreener screener(engine, three_nodes());
    const ClusterScreeningResult r = screener.screen(lib, policy);
    expect_hits_identical(single, r.hits, sched::policy_name(policy).data());
  }
}

TEST(ClusterScreening, BitIdenticalUnderNodeDeathAndStraggle) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(10);
  const std::vector<LigandHit> single = engine.screen(lib);

  // Time the fault mid-campaign: a third of the fault-free makespan.
  ClusterScreener healthy(engine, three_nodes());
  const double makespan =
      healthy.screen(lib, sched::DistributionPolicy::kWorkStealing).report.makespan_seconds;

  for (sched::DistributionPolicy policy : kAllPolicies) {
    sched::ClusterOptions opt;
    opt.node_faults.kill(1, makespan / 3.0).straggle(2, makespan / 4.0, 6.0);
    ClusterScreener screener(engine, three_nodes(), opt);
    const ClusterScreeningResult r = screener.screen(lib, policy);
    EXPECT_EQ(r.report.nodes_lost, 1u) << sched::policy_name(policy);
    expect_hits_identical(single, r.hits, sched::policy_name(policy).data());
  }
}

TEST(ClusterScreening, ReportAccountsEveryLigand) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  const auto lib = small_library(8);
  ClusterScreener screener(engine, three_nodes());
  const ClusterScreeningResult r =
      screener.screen(lib, sched::DistributionPolicy::kDynamic);
  EXPECT_EQ(std::accumulate(r.report.ligands_per_node.begin(),
                            r.report.ligands_per_node.end(), std::size_t{0}),
            lib.size());
  ASSERT_EQ(r.report.docked_on.size(), lib.size());
  for (int node : r.report.docked_on) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 3);
  }
  EXPECT_GT(r.report.makespan_seconds, 0.0);
}

TEST(ClusterScreening, EmptyLibraryIsBroadcastOnly) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  ClusterScreener screener(engine, three_nodes());
  const ClusterScreeningResult r =
      screener.screen({}, sched::DistributionPolicy::kWorkStealing);
  EXPECT_TRUE(r.hits.empty());
  EXPECT_GT(r.report.makespan_seconds, 0.0);
  EXPECT_LT(r.report.makespan_seconds, 1.0);
}

}  // namespace
}  // namespace metadock::vs
