// Batch-screening pipeline: top-N% retention, JSONL streaming, and the
// crash/resume contract (byte-identical stream, bit-identical hit lists,
// no double-counted cost).
#include "vs/batch_screening.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mol/library.h"
#include "mol/synth.h"
#include "vs/report.h"

namespace metadock::vs {
namespace {

namespace fs = std::filesystem;

const mol::Molecule& receptor() {
  static const mol::Molecule r = [] {
    mol::ReceptorParams p;
    p.atom_count = 350;
    p.seed = 31;
    return mol::make_receptor(p);
  }();
  return r;
}

ScreeningOptions fast_options() {
  ScreeningOptions o;
  o.params = meta::m3_scatter_light();
  o.params.population_per_spot = 8;
  o.params.generations = 200;
  o.scale = 0.01;
  return o;
}

std::vector<mol::Molecule> small_library(std::size_t n) {
  mol::LibraryParams p;
  p.count = n;
  p.min_atoms = 8;
  p.max_atoms = 16;
  return make_ligand_library(p);
}

/// Unique path inside the gtest temp dir.
std::string temp_path(const std::string& name) {
  static int counter = 0;
  return (fs::path(::testing::TempDir()) / ("metadock_batch_" + std::to_string(counter++) +
                                            "_" + name))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Bitwise hit equality (every field the JSONL record carries).
void expect_hits_bitwise_equal(const std::vector<LigandHit>& a,
                               const std::vector<LigandHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ligand_index, b[i].ligand_index) << i;
    EXPECT_EQ(a[i].ligand_name, b[i].ligand_name) << i;
    EXPECT_EQ(a[i].best_score, b[i].best_score) << i;
    EXPECT_EQ(a[i].best_spot_id, b[i].best_spot_id) << i;
    EXPECT_EQ(a[i].best_pose.position.x, b[i].best_pose.position.x) << i;
    EXPECT_EQ(a[i].best_pose.position.y, b[i].best_pose.position.y) << i;
    EXPECT_EQ(a[i].best_pose.position.z, b[i].best_pose.position.z) << i;
    EXPECT_EQ(a[i].best_pose.orientation.w, b[i].best_pose.orientation.w) << i;
    EXPECT_EQ(a[i].best_pose.orientation.x, b[i].best_pose.orientation.x) << i;
    EXPECT_EQ(a[i].virtual_seconds, b[i].virtual_seconds) << i;
    EXPECT_EQ(a[i].energy_joules, b[i].energy_joules) << i;
    EXPECT_EQ(a[i].faults.devices_lost, b[i].faults.devices_lost) << i;
    EXPECT_EQ(a[i].faults.transient_faults, b[i].faults.transient_faults) << i;
  }
}

// ---------------------------------------------------------------------------
// TopHitsRetainer
// ---------------------------------------------------------------------------

LigandHit hit_of(std::size_t index, double score) {
  LigandHit h;
  h.ligand_index = index;
  h.best_score = score;
  return h;
}

TEST(TopHitsRetainer, KeepsTheKBestUnderTotalOrder) {
  TopHitsRetainer r(3);
  for (double s : {5.0, -1.0, 3.0, -4.0, 2.0, 0.0}) {
    r.offer(hit_of(static_cast<std::size_t>(s + 10), s));
  }
  EXPECT_EQ(r.size(), 3u);
  const auto hits = r.take_sorted();
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_DOUBLE_EQ(hits[0].best_score, -4.0);
  EXPECT_DOUBLE_EQ(hits[1].best_score, -1.0);
  EXPECT_DOUBLE_EQ(hits[2].best_score, 0.0);
  EXPECT_EQ(r.size(), 0u);  // emptied by take_sorted
}

TEST(TopHitsRetainer, EqualScoresRetainLowestIndices) {
  // Ties must resolve exactly as sort_hits does: lowest ligand_index wins
  // retention, whatever the offer order.
  TopHitsRetainer r(2);
  r.offer(hit_of(9, 1.0));
  r.offer(hit_of(2, 1.0));
  r.offer(hit_of(5, 1.0));
  r.offer(hit_of(0, 1.0));
  const auto hits = r.take_sorted();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].ligand_index, 0u);
  EXPECT_EQ(hits[1].ligand_index, 2u);
}

TEST(TopHitsRetainer, MatchesSortAndTruncateForAnyOfferOrder) {
  std::vector<LigandHit> all;
  // Scores engineered with many ties.
  const double scores[] = {2.0, -1.0, 2.0, 0.5, -1.0, 2.0, 0.5, -3.0, 0.5, -1.0};
  for (std::size_t i = 0; i < 10; ++i) all.push_back(hit_of(i, scores[i]));
  std::vector<LigandHit> expect = all;
  sort_hits(expect);
  for (std::size_t k = 1; k <= all.size(); ++k) {
    for (int rotation = 0; rotation < 10; ++rotation) {
      TopHitsRetainer r(k);
      for (std::size_t i = 0; i < all.size(); ++i) {
        r.offer(all[(i + static_cast<std::size_t>(rotation)) % all.size()]);
      }
      const auto kept = r.take_sorted();
      ASSERT_EQ(kept.size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(kept[i].ligand_index, expect[i].ligand_index) << "k=" << k;
      }
    }
  }
}

TEST(TopHitsRetainer, ZeroCapacityRetainsNothing) {
  TopHitsRetainer r(0);
  r.offer(hit_of(0, -1.0));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.take_sorted().empty());
}

TEST(BatchScreening, RetainCapacityTable) {
  struct Case {
    std::size_t admitted;
    double top_percent;
    std::size_t want;
  };
  const Case cases[] = {
      {0, 50.0, 0},   {1, 1.0, 1},     {100, 10.0, 10}, {100, 100.0, 100},
      {10, 25.0, 3},  // ceil(2.5)
      {10, 0.1, 1},   // floor would be 0; at least one hit is kept
      {3, 100.0, 3},  {1000000, 1.0, 10000},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(retain_capacity_for(c.admitted, c.top_percent), c.want)
        << c.admitted << " @ " << c.top_percent;
  }
}

// ---------------------------------------------------------------------------
// Options validation
// ---------------------------------------------------------------------------

TEST(BatchScreening, RejectsInvalidOptions) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  BatchScreeningOptions bad;
  bad.batch_size = 0;
  EXPECT_THROW(BatchScreener(engine, bad), std::invalid_argument);
  bad = {};
  bad.top_percent = 0.0;
  EXPECT_THROW(BatchScreener(engine, bad), std::invalid_argument);
  bad = {};
  bad.top_percent = 101.0;
  EXPECT_THROW(BatchScreener(engine, bad), std::invalid_argument);
  bad = {};
  bad.resume = true;  // no hits_path
  EXPECT_THROW(BatchScreener(engine, bad), std::invalid_argument);
}

TEST(BatchScreening, EmptyLibraryIsANoOp) {
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  BatchScreener screener(engine, {});
  const auto result = screener.run({});
  EXPECT_EQ(result.admitted, 0u);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_TRUE(result.retained.empty());
  EXPECT_FALSE(result.interrupted);
}

// ---------------------------------------------------------------------------
// Equivalence with screen(): any batch size, full retention, with and
// without injected device death, across M1-M4 (satellite property test).
// ---------------------------------------------------------------------------

TEST(BatchScreening, BatchedFullRetentionMatchesScreenAcrossMetaheuristics) {
  const auto library = small_library(5);
  const meta::MetaheuristicParams presets[] = {meta::m1_genetic(), meta::m2_scatter_full(),
                                               meta::m3_scatter_light(),
                                               meta::m4_local_search()};
  for (const auto& preset : presets) {
    for (const bool with_death : {false, true}) {
      ScreeningOptions options = fast_options();
      options.params = preset;
      options.params.population_per_spot = 8;
      options.params.generations = 200;
      options.scale = 0.005;
      if (with_death) options.exec.fault_plan.kill(1, 0.001);

      VirtualScreeningEngine reference_engine(receptor(), sched::hertz(), options);
      const std::vector<LigandHit> expect = reference_engine.screen(library);

      for (const std::size_t batch_size : {std::size_t{1}, std::size_t{2}, std::size_t{16}}) {
        VirtualScreeningEngine engine(receptor(), sched::hertz(), options);
        BatchScreeningOptions batch;
        batch.batch_size = batch_size;
        batch.top_percent = 100.0;
        BatchScreener screener(engine, batch);
        const auto result = screener.run(library);
        EXPECT_EQ(result.admitted, library.size());
        EXPECT_EQ(result.completed, library.size());
        EXPECT_EQ(result.newly_docked, library.size());
        SCOPED_TRACE(preset.name + " batch=" + std::to_string(batch_size) +
                     (with_death ? " death" : ""));
        expect_hits_bitwise_equal(result.retained, expect);
      }
    }
  }
}

TEST(BatchScreening, TopPercentKeepsExactlyTheBestPrefix) {
  const auto library = small_library(7);
  ScreeningOptions options = fast_options();
  VirtualScreeningEngine reference_engine(receptor(), sched::hertz(), options);
  std::vector<LigandHit> expect = reference_engine.screen(library);

  VirtualScreeningEngine engine(receptor(), sched::hertz(), options);
  BatchScreeningOptions batch;
  batch.batch_size = 3;
  batch.top_percent = 40.0;  // ceil(2.8) = 3 of 7
  BatchScreener screener(engine, batch);
  const auto result = screener.run(library);
  EXPECT_EQ(result.retain_capacity, 3u);
  expect.resize(3);
  expect_hits_bitwise_equal(result.retained, expect);
}

// ---------------------------------------------------------------------------
// JSONL streaming + resume
// ---------------------------------------------------------------------------

TEST(BatchScreening, StreamsOneRecordPerLigandInIndexOrder) {
  const auto library = small_library(5);
  const std::string path = temp_path("stream.jsonl");
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  BatchScreeningOptions batch;
  batch.batch_size = 2;
  batch.hits_path = path;
  BatchScreener screener(engine, batch);
  const auto result = screener.run(library);
  EXPECT_EQ(result.completed, 5u);

  const ResumeState state = read_jsonl_hits(path);
  EXPECT_EQ(state.discarded_lines, 0u);
  ASSERT_EQ(state.hits.size(), 5u);
  for (std::size_t i = 0; i < state.hits.size(); ++i) {
    EXPECT_EQ(state.hits[i].ligand_index, i);
  }
  // Stream records roundtrip exactly: parsing and re-serializing a line
  // reproduces it byte-for-byte.
  std::ifstream in(path);
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(hit_to_json_line(hit_from_json(util::JsonValue::parse(line))), line) << i;
    ++i;
  }
  std::remove(path.c_str());
}

TEST(BatchScreening, ReadJsonlHitsMissingFileIsEmpty) {
  const ResumeState state = read_jsonl_hits(temp_path("never_written.jsonl"));
  EXPECT_TRUE(state.hits.empty());
  EXPECT_EQ(state.valid_bytes, 0u);
}

TEST(BatchScreening, ReadJsonlHitsStopsAtTornTail) {
  const std::string path = temp_path("torn.jsonl");
  LigandHit a = hit_of(0, -1.0);
  LigandHit b = hit_of(1, -2.0);
  const std::string line_a = hit_to_json_line(a);
  const std::string line_b = hit_to_json_line(b);
  {
    std::ofstream out(path, std::ios::binary);
    out << line_a << '\n' << line_b << '\n' << "{\"index\":2,\"lig";  // torn write
  }
  const ResumeState state = read_jsonl_hits(path);
  ASSERT_EQ(state.hits.size(), 2u);
  EXPECT_EQ(state.discarded_lines, 1u);
  EXPECT_EQ(state.valid_bytes, line_a.size() + line_b.size() + 2);
  std::remove(path.c_str());
}

// The headline acceptance test: a run killed after batch k, resumed with
// resume=true, must produce a byte-identical JSONL stream and a
// bit-identical retained hit list versus an uninterrupted run — and must
// not re-account the cost of the ligands recovered from the stream.
TEST(BatchScreening, KillAfterBatchKThenResumeIsByteIdentical) {
  const auto library = small_library(7);
  const ScreeningOptions options = fast_options();

  // Reference: uninterrupted run.
  const std::string full_path = temp_path("full.jsonl");
  VirtualScreeningEngine full_engine(receptor(), sched::hertz(), options);
  BatchScreeningOptions full_batch;
  full_batch.batch_size = 2;
  full_batch.top_percent = 50.0;
  full_batch.hits_path = full_path;
  BatchScreener full_screener(full_engine, full_batch);
  const auto full = full_screener.run(library);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(full.completed, 7u);

  for (const std::size_t kill_after : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE("killed after batch " + std::to_string(kill_after));
    const std::string path = temp_path("killed.jsonl");

    // Phase 1: the "crashed" run — stops at a batch boundary.
    VirtualScreeningEngine engine1(receptor(), sched::hertz(), options);
    BatchScreeningOptions batch1 = full_batch;
    batch1.hits_path = path;
    batch1.max_batches = kill_after;
    BatchScreener screener1(engine1, batch1);
    const auto part1 = screener1.run(library);
    EXPECT_TRUE(part1.interrupted);
    EXPECT_EQ(part1.newly_docked, kill_after * 2);

    // Phase 2: resume.
    VirtualScreeningEngine engine2(receptor(), sched::hertz(), options);
    BatchScreeningOptions batch2 = full_batch;
    batch2.hits_path = path;
    batch2.resume = true;
    BatchScreener screener2(engine2, batch2);
    const auto part2 = screener2.run(library);
    EXPECT_FALSE(part2.interrupted);
    EXPECT_EQ(part2.resumed_skips, kill_after * 2);
    EXPECT_EQ(part2.newly_docked, 7u - kill_after * 2);
    EXPECT_EQ(part2.completed, 7u);

    // Byte-identical stream, bit-identical retained list.
    EXPECT_EQ(slurp(path), slurp(full_path));
    expect_hits_bitwise_equal(part2.retained, full.retained);

    // No double-counting: the resumed run accounts only the ligands it
    // docked itself, and the two phases partition the full run's cost.
    EXPECT_LT(part2.virtual_seconds, full.virtual_seconds);
    EXPECT_NEAR(part1.virtual_seconds + part2.virtual_seconds, full.virtual_seconds,
                1e-9 * full.virtual_seconds);
    EXPECT_NEAR(part1.energy_joules + part2.energy_joules, full.energy_joules,
                1e-9 * full.energy_joules);
    std::remove(path.c_str());
  }
  std::remove(full_path.c_str());
}

// Same story under device death: fault accounting must partition too —
// resumed records never re-contribute their FaultReport.
TEST(BatchScreening, ResumeDoesNotDoubleCountFaults) {
  const auto library = small_library(6);
  ScreeningOptions options = fast_options();
  options.exec.fault_plan.kill(1, 0.001);  // device 1 dies in every dock

  const std::string full_path = temp_path("faults_full.jsonl");
  VirtualScreeningEngine full_engine(receptor(), sched::hertz(), options);
  BatchScreeningOptions full_batch;
  full_batch.batch_size = 2;
  full_batch.hits_path = full_path;
  BatchScreener full_screener(full_engine, full_batch);
  const auto full = full_screener.run(library);
  ASSERT_GT(full.faults.devices_lost, 0u);

  const std::string path = temp_path("faults_killed.jsonl");
  VirtualScreeningEngine engine1(receptor(), sched::hertz(), options);
  BatchScreeningOptions batch1 = full_batch;
  batch1.hits_path = path;
  batch1.max_batches = 2;
  BatchScreener screener1(engine1, batch1);
  const auto part1 = screener1.run(library);
  EXPECT_TRUE(part1.interrupted);

  VirtualScreeningEngine engine2(receptor(), sched::hertz(), options);
  BatchScreeningOptions batch2 = full_batch;
  batch2.hits_path = path;
  batch2.resume = true;
  BatchScreener screener2(engine2, batch2);
  const auto part2 = screener2.run(library);

  // Each dock loses device 1 once; resplits accumulate per newly docked
  // ligand only.  4 ligands were resumed, so a double-count would inflate
  // part2 well past the 2-ligand share.
  EXPECT_EQ(part1.faults.resplits + part2.faults.resplits, full.faults.resplits);
  EXPECT_EQ(part2.newly_docked, 2u);
  EXPECT_EQ(slurp(path), slurp(full_path));
  expect_hits_bitwise_equal(part2.retained, full.retained);
  std::remove(path.c_str());
  std::remove(full_path.c_str());
}

TEST(BatchScreening, ResumeAfterTornTailRedocksTheTornLigand) {
  const auto library = small_library(4);
  const ScreeningOptions options = fast_options();

  const std::string full_path = temp_path("tear_full.jsonl");
  VirtualScreeningEngine full_engine(receptor(), sched::hertz(), options);
  BatchScreeningOptions batch;
  batch.batch_size = 2;
  batch.hits_path = full_path;
  BatchScreener full_screener(full_engine, batch);
  (void)full_screener.run(library);

  // Corrupt copy: first 2 full records + a torn third line.
  const std::string path = temp_path("tear.jsonl");
  {
    std::ifstream in(full_path, std::ios::binary);
    std::string line;
    std::ofstream out(path, std::ios::binary);
    for (int i = 0; i < 2 && std::getline(in, line); ++i) out << line << '\n';
    out << "{\"index\":2,\"ligand\":\"lig";  // the crash tore this write
  }

  VirtualScreeningEngine engine(receptor(), sched::hertz(), options);
  BatchScreeningOptions resume_batch = batch;
  resume_batch.hits_path = path;
  resume_batch.resume = true;
  BatchScreener screener(engine, resume_batch);
  const auto result = screener.run(library);
  EXPECT_EQ(result.resumed_skips, 2u);
  EXPECT_EQ(result.newly_docked, 2u);
  EXPECT_EQ(result.discarded_lines, 1u);
  EXPECT_EQ(slurp(path), slurp(full_path));
  std::remove(path.c_str());
  std::remove(full_path.c_str());
}

TEST(BatchScreening, StopHookFinishesInFlightBatchAndFlushes) {
  const auto library = small_library(6);
  const std::string path = temp_path("stop.jsonl");
  VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
  BatchScreeningOptions batch;
  batch.batch_size = 2;
  batch.hits_path = path;
  int polls = 0;
  batch.should_stop = [&polls] { return ++polls > 1; };  // stop before batch 2
  BatchScreener screener(engine, batch);
  const auto result = screener.run(library);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.newly_docked, 2u);  // exactly the first batch
  const ResumeState state = read_jsonl_hits(path);
  EXPECT_EQ(state.hits.size(), 2u);  // flushed before returning
  std::remove(path.c_str());
}

TEST(BatchScreening, MetricsCountAdmittedCompletedRetainedResumed) {
  const auto library = small_library(4);
  const std::string path = temp_path("metrics.jsonl");
  obs::Observer observer;

  {
    VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
    BatchScreeningOptions batch;
    batch.batch_size = 2;
    batch.hits_path = path;
    batch.max_batches = 1;
    batch.observer = &observer;
    batch.job_name = "jobA";
    BatchScreener screener(engine, batch);
    (void)screener.run(library);
  }
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.admitted").value(), 4.0);
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.completed").value(), 2.0);
  EXPECT_DOUBLE_EQ(observer.metrics.gauge("vs.batch.progress").value(), 0.5);
  EXPECT_DOUBLE_EQ(observer.metrics.gauge("vs.job.jobA.progress").value(), 0.5);

  {
    VirtualScreeningEngine engine(receptor(), sched::hertz(), fast_options());
    BatchScreeningOptions batch;
    batch.batch_size = 2;
    batch.hits_path = path;
    batch.resume = true;
    batch.observer = &observer;
    BatchScreener screener(engine, batch);
    (void)screener.run(library);
  }
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.resumed_skips").value(), 2.0);
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.completed").value(), 4.0);
  // retained accumulates per run: 2 flushed by the interrupted run + 4 by
  // the completed resume.
  EXPECT_DOUBLE_EQ(observer.metrics.counter("vs.batch.retained").value(), 6.0);
  EXPECT_DOUBLE_EQ(observer.metrics.gauge("vs.batch.progress").value(), 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metadock::vs
