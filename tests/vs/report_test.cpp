#include "vs/report.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace metadock::vs {
namespace {

LigandHit sample_hit() {
  LigandHit h;
  h.ligand_index = 3;
  h.ligand_name = "lig-3";
  h.best_score = -12.5;
  h.best_spot_id = 7;
  h.best_pose.position = {1.0f, 2.0f, 3.0f};
  h.virtual_seconds = 0.25;
  h.energy_joules = 42.0;
  return h;
}

TEST(Report, HitsJsonContainsAllFields) {
  const std::string json = hits_to_json("2BSM", "Hertz", {sample_hit()});
  EXPECT_NE(json.find(R"("receptor":"2BSM")"), std::string::npos);
  EXPECT_NE(json.find(R"("node":"Hertz")"), std::string::npos);
  EXPECT_NE(json.find(R"("ligand":"lig-3")"), std::string::npos);
  EXPECT_NE(json.find(R"("best_energy":-12.5)"), std::string::npos);
  EXPECT_NE(json.find(R"("spot":7)"), std::string::npos);
  EXPECT_NE(json.find(R"("x":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("virtual_seconds":0.25)"), std::string::npos);
}

TEST(Report, EmptyHitListIsValid) {
  const std::string json = hits_to_json("r", "n", {});
  EXPECT_NE(json.find(R"("hits":[])"), std::string::npos);
}

TEST(Report, ScoreMapJsonHasBothSections) {
  SpotScore s;
  s.spot_id = 1;
  s.best_energy = -3.0;
  s.center = {4, 5, 6};
  const std::string json = score_map_to_json({s}, {s});
  EXPECT_NE(json.find(R"("score_map":[{"spot":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("hotspots":[{"spot":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("energy":-3)"), std::string::npos);
}

TEST(Report, HitsJsonEmitsFaultsOnlyWhenAnyOccurred) {
  LigandHit clean = sample_hit();
  EXPECT_EQ(hits_to_json("r", "n", {clean}).find("\"faults\""), std::string::npos);

  LigandHit faulty = sample_hit();
  faulty.faults.transient_faults = 4;
  faulty.faults.retries = 3;
  faulty.faults.lost_devices = {1};
  faulty.faults.devices_lost = 1;
  faulty.faults.degraded_to_cpu = true;
  const std::string json = hits_to_json("r", "n", {faulty});
  EXPECT_NE(json.find(R"("transient_faults":4)"), std::string::npos);
  EXPECT_NE(json.find(R"("retries":3)"), std::string::npos);
  EXPECT_NE(json.find(R"("lost_devices":[1])"), std::string::npos);
  EXPECT_NE(json.find(R"("degraded_to_cpu":true)"), std::string::npos);
}

TEST(Report, ExecutionJsonCarriesDeviceBreakdown) {
  sched::ExecutorOptions opts;
  opts.strategy = sched::Strategy::kHeterogeneous;
  sched::NodeExecutor exec(sched::hertz(), opts);
  meta::MetaheuristicParams params = meta::m3_scatter_light();
  params.generations = 2;
  const sched::ExecutionReport r = exec.estimate(testing::tiny_problem(), params);
  const std::string json = execution_to_json(r);
  EXPECT_NE(json.find(R"("node":"Hertz")"), std::string::npos);
  EXPECT_NE(json.find(R"("strategy":"heterogeneous")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"Tesla K40c")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"GeForce GTX 580")"), std::string::npos);
  EXPECT_NE(json.find("\"makespan_seconds\":"), std::string::npos);
  // A fault-free execution still carries the (all-zero) fault section.
  EXPECT_NE(json.find(R"("faults":{"transient_faults":0)"), std::string::npos);
}

}  // namespace
}  // namespace metadock::vs
