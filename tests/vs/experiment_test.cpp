// Integration tests asserting the paper's headline claims hold in the
// regenerated tables (shape, not absolute seconds).
#include "vs/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace metadock::vs {
namespace {

const ExperimentTable& table6() {
  static const ExperimentTable t = run_jupiter_table(mol::kDataset2BSM);
  return t;
}
const ExperimentTable& table7() {
  static const ExperimentTable t = run_jupiter_table(mol::kDataset2BXG);
  return t;
}
const ExperimentTable& table8() {
  static const ExperimentTable t = run_hertz_table(mol::kDataset2BSM);
  return t;
}
const ExperimentTable& table9() {
  static const ExperimentTable t = run_hertz_table(mol::kDataset2BXG);
  return t;
}

TEST(Experiment, TablesHaveFourMetaheuristicRows) {
  for (const ExperimentTable* t : {&table6(), &table7(), &table8(), &table9()}) {
    ASSERT_EQ(t->rows.size(), 4u);
    EXPECT_EQ(t->rows[0].metaheuristic, "M1");
    EXPECT_EQ(t->rows[3].metaheuristic, "M4");
    EXPECT_GT(t->spots, 50u);
  }
}

TEST(Experiment, JupiterLayoutHasHomogeneousSystemColumn) {
  EXPECT_TRUE(table6().has_hom_system);
  EXPECT_FALSE(table8().has_hom_system);
  for (const ExperimentRow& r : table6().rows) EXPECT_GT(r.hom_system_s, 0.0);
}

TEST(Experiment, MultiGpuSpeedupIsLarge) {
  // "This homogeneous execution reports a factor of up to 92x speed-up."
  for (const ExperimentTable* t : {&table6(), &table7(), &table8(), &table9()}) {
    for (const ExperimentRow& r : t->rows) {
      EXPECT_GT(r.speedup_openmp_vs_het(), 40.0) << t->title << " " << r.metaheuristic;
      EXPECT_LT(r.speedup_openmp_vs_het(), 150.0) << t->title;
    }
  }
}

TEST(Experiment, SpeedupGrowsWithProblemSize) {
  // "the speed-up increases with the problem size, and so the multiGPU
  // versions prove to be scalable" (2BXG ~2.6x larger than 2BSM).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(table7().rows[i].speedup_openmp_vs_het(),
              table6().rows[i].speedup_openmp_vs_het());
    EXPECT_GT(table9().rows[i].speedup_openmp_vs_het(),
              table8().rows[i].speedup_openmp_vs_het());
  }
}

TEST(Experiment, HertzHeterogeneousGainIsLarge) {
  // Kepler + Fermi: "reaching up to 1.56x speedup compared to a
  // homogeneous approach".
  for (const ExperimentRow& r : table8().rows) {
    EXPECT_GT(r.speedup_het_vs_hom(), 1.3) << r.metaheuristic;
    EXPECT_LT(r.speedup_het_vs_hom(), 1.7) << r.metaheuristic;
  }
}

TEST(Experiment, JupiterHeterogeneousGainIsMinimal) {
  // Near-identical Fermi cards: "minimal differences ... (up to 6% gains)".
  for (const ExperimentTable* t : {&table6(), &table7()}) {
    for (const ExperimentRow& r : t->rows) {
      EXPECT_GT(r.speedup_het_vs_hom(), 0.97) << r.metaheuristic;
      EXPECT_LT(r.speedup_het_vs_hom(), 1.10) << r.metaheuristic;
    }
  }
}

TEST(Experiment, RelativeMetaheuristicCostsMatchTable4Design) {
  // M2 ~ 1.6x M1, M3 ~ 0.5x M1, M4 ~ 50x M1 in every configuration.
  for (const ExperimentTable* t : {&table6(), &table7(), &table8(), &table9()}) {
    const double m1 = t->rows[0].openmp_s;
    EXPECT_NEAR(t->rows[1].openmp_s / m1, 1.62, 0.05) << t->title;
    EXPECT_NEAR(t->rows[2].openmp_s / m1, 0.51, 0.04) << t->title;
    EXPECT_NEAR(t->rows[3].openmp_s / m1, 50.0, 2.0) << t->title;
  }
}

TEST(Experiment, M4HasBestGpuSpeedup) {
  // "The M4 metaheuristic ... achieving the best speed-up ratios."
  for (const ExperimentTable* t : {&table6(), &table7(), &table8(), &table9()}) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(t->rows[3].speedup_openmp_vs_het(),
                t->rows[i].speedup_openmp_vs_het() * 0.98)
          << t->title;
    }
  }
}

TEST(Experiment, M3HasWeakestGpuSpeedup) {
  // Lighter local search -> smaller batches -> lower GPU efficiency.
  for (const ExperimentTable* t : {&table6(), &table7(), &table8(), &table9()}) {
    for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      EXPECT_LE(t->rows[2].speedup_openmp_vs_het(),
                t->rows[i].speedup_openmp_vs_het() * 1.02)
          << t->title;
    }
  }
}

TEST(Experiment, HeterogeneousSystemBeatsHomogeneousSystemOnJupiter) {
  // Adding the two C2075s (hom computation on 6 GPUs) beats 4 GPUs.
  for (const ExperimentTable* t : {&table6(), &table7()}) {
    for (const ExperimentRow& r : t->rows) {
      EXPECT_LT(r.het_hom_s, r.hom_system_s) << r.metaheuristic;
    }
  }
}

TEST(Experiment, AbsoluteMagnitudesAreInPaperBallpark) {
  // Calibration check (loose): Table 6 M1 OpenMP is 269.45 s in the paper.
  EXPECT_NEAR(table6().rows[0].openmp_s, 269.0, 70.0);
  // Table 9 M4 heterogeneous computation is 1253.64 s in the paper.
  EXPECT_NEAR(table9().rows[3].het_het_s, 1254.0, 400.0);
}

TEST(Experiment, SpotCountScalesWithReceptor) {
  EXPECT_GT(table7().spots, table6().spots);
}

// Regression for the unguarded-division bug: a default-constructed (or
// partially filled) row must report 0.0 speed-ups, not inf/NaN.
TEST(Experiment, SpeedupGuardsZeroDenominator) {
  struct Case {
    double openmp_s, het_hom_s, het_het_s;
    double want_het_vs_hom, want_openmp_vs_het;
  };
  const Case cases[] = {
      {0.0, 0.0, 0.0, 0.0, 0.0},        // untouched row
      {100.0, 50.0, 0.0, 0.0, 0.0},     // timing missing -> guarded
      {100.0, 50.0, 25.0, 2.0, 4.0},    // normal row
      {0.0, 0.0, 10.0, 0.0, 0.0},       // zero numerators are fine
      {100.0, 50.0, -1.0, 0.0, 0.0},    // negative timing treated as unset
  };
  for (const Case& c : cases) {
    ExperimentRow row;
    row.openmp_s = c.openmp_s;
    row.hom_system_s = 0.0;
    row.het_hom_s = c.het_hom_s;
    row.het_het_s = c.het_het_s;
    EXPECT_DOUBLE_EQ(row.speedup_het_vs_hom(), c.want_het_vs_hom) << c.het_het_s;
    EXPECT_DOUBLE_EQ(row.speedup_openmp_vs_het(), c.want_openmp_vs_het) << c.het_het_s;
    EXPECT_TRUE(std::isfinite(row.speedup_het_vs_hom()));
    EXPECT_TRUE(std::isfinite(row.speedup_openmp_vs_het()));
  }
}

}  // namespace
}  // namespace metadock::vs
