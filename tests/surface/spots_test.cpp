#include "surface/spots.h"

#include <gtest/gtest.h>

#include "mol/synth.h"

namespace metadock::surface {
namespace {

const mol::Molecule& small_receptor() {
  static const mol::Molecule r = [] {
    mol::ReceptorParams p;
    p.atom_count = 800;
    p.seed = 99;
    return mol::make_receptor(p);
  }();
  return r;
}

TEST(NeighbourCounts, SizeMatchesAtoms) {
  const auto counts = neighbour_counts(small_receptor(), 8.0f);
  EXPECT_EQ(counts.size(), small_receptor().size());
}

TEST(NeighbourCounts, ExcludesSelf) {
  mol::Molecule lone("x");
  lone.add_atom(mol::Element::kC, {0, 0, 0});
  EXPECT_EQ(neighbour_counts(lone, 5.0f)[0], 0);
}

TEST(NeighbourCounts, SurfaceAtomsHaveFewerNeighbours) {
  const mol::Molecule& r = small_receptor();
  const auto counts = neighbour_counts(r, 8.0f);
  const float radius = r.radius_about_centroid();
  double inner_sum = 0.0, outer_sum = 0.0;
  int inner_n = 0, outer_n = 0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const float d = r.position(i).norm();
    if (d < 0.4f * radius) {
      inner_sum += counts[i];
      ++inner_n;
    } else if (d > 0.9f * radius) {
      outer_sum += counts[i];
      ++outer_n;
    }
  }
  ASSERT_GT(inner_n, 0);
  ASSERT_GT(outer_n, 0);
  EXPECT_GT(inner_sum / inner_n, 1.5 * outer_sum / outer_n);
}

TEST(ExposedAtoms, OnlyPolarWhenRequested) {
  SpotParams p;
  p.only_polar_atoms = true;
  const mol::Molecule& r = small_receptor();
  for (std::size_t idx : exposed_atoms(r, p)) {
    const mol::Element e = r.element(idx);
    EXPECT_TRUE(e == mol::Element::kN || e == mol::Element::kO);
  }
}

TEST(ExposedAtoms, AllowingAllElementsFindsMore) {
  SpotParams polar, all;
  all.only_polar_atoms = false;
  EXPECT_GT(exposed_atoms(small_receptor(), all).size(),
            exposed_atoms(small_receptor(), polar).size());
}

TEST(ExposedAtoms, HigherFractionFindsMore) {
  SpotParams lo, hi;
  lo.exposure_fraction = 0.6f;
  hi.exposure_fraction = 0.95f;
  EXPECT_GE(exposed_atoms(small_receptor(), hi).size(),
            exposed_atoms(small_receptor(), lo).size());
}

TEST(FindSpots, ReturnsSpotsWithSequentialIds) {
  const auto spots = find_spots(small_receptor());
  ASSERT_FALSE(spots.empty());
  for (std::size_t i = 0; i < spots.size(); ++i) {
    EXPECT_EQ(spots[i].id, static_cast<int>(i));
    EXPECT_GE(spots[i].support, 1);
  }
}

TEST(FindSpots, SpotsLieOnOrOutsideTheSurface) {
  const mol::Molecule& r = small_receptor();
  const float radius = r.radius_about_centroid();
  for (const Spot& s : find_spots(r)) {
    const float d = s.center.norm();  // receptor is centered at origin
    EXPECT_GT(d, 0.5f * radius);
    EXPECT_LT(d, radius + 10.0f);
  }
}

TEST(FindSpots, OutwardVectorsPointAwayFromCenter) {
  for (const Spot& s : find_spots(small_receptor())) {
    EXPECT_NEAR(s.outward.norm(), 1.0f, 1e-4f);
    EXPECT_GT(s.outward.dot(s.center.normalized()), 0.0f);
  }
}

TEST(FindSpots, Deterministic) {
  const auto a = find_spots(small_receptor());
  const auto b = find_spots(small_receptor());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].center, b[i].center);
  }
}

TEST(FindSpots, LargerClusterRadiusFewerSpots) {
  SpotParams small_r, big_r;
  small_r.cluster_radius = 3.0f;
  big_r.cluster_radius = 8.0f;
  EXPECT_GT(find_spots(small_receptor(), small_r).size(),
            find_spots(small_receptor(), big_r).size());
}

TEST(FindSpots, SearchRadiusPropagates) {
  SpotParams p;
  p.search_radius = 6.5f;
  for (const Spot& s : find_spots(small_receptor(), p)) {
    EXPECT_FLOAT_EQ(s.radius, 6.5f);
  }
}

TEST(FindSpots, BiggerReceptorMoreSpots) {
  mol::ReceptorParams big;
  big.atom_count = 2000;
  big.seed = 99;
  EXPECT_GT(find_spots(mol::make_receptor(big)).size(),
            find_spots(small_receptor()).size());
}

}  // namespace
}  // namespace metadock::surface
