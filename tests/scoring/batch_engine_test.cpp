// Property tests for the batched scoring engine: the type-partitioned
// layout is a permutation of the receptor, and every implementation —
// reference score(), batched-scalar, batched-SIMD — computes the same
// energy up to FP association order.
#include "scoring/batch_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mol/synth.h"
#include "util/rng.h"

namespace metadock::scoring {
namespace {

mol::Molecule make_receptor(std::size_t atoms, std::uint64_t seed = 11) {
  mol::ReceptorParams p;
  p.atom_count = atoms;
  p.seed = seed;
  return mol::make_receptor(p);
}

mol::Molecule make_ligand(std::size_t atoms, std::uint64_t seed = 12) {
  mol::LigandParams p;
  p.atom_count = atoms;
  p.seed = seed;
  return mol::make_ligand(p);
}

std::vector<Pose> random_poses(std::size_t n, std::uint64_t seed = 5) {
  util::Xoshiro256 rng(seed);
  std::vector<Pose> poses(n);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-12, 12)),
                  static_cast<float>(rng.uniform(-12, 12)),
                  static_cast<float>(rng.uniform(-12, 12))};
    p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  }
  return poses;
}

/// FP-association tolerance: the paths reorder float additions, nothing
/// else, so agreement is a few ulps of the largest partial sum.
void expect_close(double got, double ref, const char* what, std::size_t i) {
  EXPECT_NEAR(got, ref, 1e-4 * (1.0 + std::abs(ref))) << what << " pose " << i;
}

// ---------------------------------------------------------------------------
// PartitionedReceptor properties

TEST(PartitionedReceptor, PermutationRoundTripsEveryAtom) {
  const mol::Molecule mol = make_receptor(517);  // not a tile multiple
  const ReceptorAtoms receptor = ReceptorAtoms::from(mol);
  for (std::size_t tile : {1u, 17u, 64u, 256u, 1000u}) {
    const PartitionedReceptor part = PartitionedReceptor::build(receptor, tile);
    ASSERT_EQ(part.size(), receptor.size()) << "tile " << tile;

    // perm is a permutation of [0, n).
    std::vector<std::uint32_t> seen(part.size(), 0);
    for (std::uint32_t src : part.perm) {
      ASSERT_LT(src, part.size());
      ++seen[src];
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](std::uint32_t c) { return c == 1; }))
        << "tile " << tile;

    // Every atom's payload survives the reorder.
    for (std::size_t dst = 0; dst < part.size(); ++dst) {
      const std::size_t src = part.perm[dst];
      EXPECT_EQ(part.x[dst], receptor.x[src]);
      EXPECT_EQ(part.y[dst], receptor.y[src]);
      EXPECT_EQ(part.z[dst], receptor.z[src]);
      EXPECT_EQ(part.charge[dst], receptor.charge[src]);
      EXPECT_EQ(part.type[dst], receptor.type[src]);
    }
  }
}

TEST(PartitionedReceptor, RunsAreTileBoundedAndTypeConstant) {
  const mol::Molecule mol = make_receptor(517);
  const ReceptorAtoms receptor = ReceptorAtoms::from(mol);
  for (std::size_t tile : {1u, 17u, 64u, 256u, 1000u}) {
    const PartitionedReceptor part = PartitionedReceptor::build(receptor, tile);
    ASSERT_EQ(part.tiles(), (part.size() + tile - 1) / tile) << "tile " << tile;

    std::size_t covered = 0;
    for (std::size_t t = 0; t < part.tiles(); ++t) {
      const std::size_t tile_lo = t * tile;
      const std::size_t tile_hi = std::min(part.size(), tile_lo + tile);
      for (std::uint32_t r = part.tile_runs[t]; r < part.tile_runs[t + 1]; ++r) {
        const TypeRun& run = part.runs[r];
        ASSERT_GT(run.count, 0u);
        // Runs never straddle a tile boundary: the partition only permutes
        // *within* tiles, which is what keeps the batched energy within FP
        // association distance of the tiled path.
        EXPECT_GE(run.begin, tile_lo);
        EXPECT_LE(run.begin + run.count, tile_hi);
        for (std::size_t i = run.begin; i < run.begin + run.count; ++i) {
          EXPECT_EQ(part.type[i], run.type);
        }
        covered += run.count;
      }
    }
    EXPECT_EQ(covered, part.size()) << "tile " << tile;

    // Atom i stays in tile i / tile_size.
    for (std::size_t dst = 0; dst < part.size(); ++dst) {
      EXPECT_EQ(dst / tile, part.perm[dst] / tile) << "tile " << tile;
    }
  }
}

TEST(PartitionedReceptor, ZeroTileSizeThrows) {
  const ReceptorAtoms receptor = ReceptorAtoms::from(make_receptor(10));
  EXPECT_THROW(PartitionedReceptor::build(receptor, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Implementation equivalence

struct EquivCase {
  bool coulomb;
  float cutoff;
  int tile_size;
};

class BatchEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BatchEquivalence, ScalarSimdAndReferenceAgree) {
  const EquivCase c = GetParam();
  const mol::Molecule rec = make_receptor(333);  // not a multiple of any tile
  const mol::Molecule lig = make_ligand(13);
  ScoringOptions opt;
  opt.coulomb = c.coulomb;
  opt.cutoff = c.cutoff;
  opt.tile_size = c.tile_size;
  const LennardJonesScorer scorer(rec, lig, opt);

  BatchEngineOptions scalar_opt;
  scalar_opt.simd = SimdLevel::kScalar;
  scalar_opt.pose_block = 16;
  const BatchScoringEngine scalar(scorer, scalar_opt);

  // Batch sizes around the pose-block boundary: 1, a partial block, one
  // full block, and a block plus a remainder.
  for (std::size_t n : {1u, 7u, 16u, 17u}) {
    const auto poses = random_poses(n, 100 + n);
    std::vector<double> got(n);
    scalar.score_batch(poses, got);
    for (std::size_t i = 0; i < n; ++i) {
      expect_close(got[i], scorer.score(poses[i]), "scalar-vs-reference", i);
      // Pose-block traversal must not change per-pose energies: a block of
      // one is the degenerate traversal, so it pins block invariance.
      EXPECT_DOUBLE_EQ(got[i], scalar.score(poses[i])) << i;
    }

    if (simd_kernel_supported()) {
      BatchEngineOptions simd_opt = scalar_opt;
      simd_opt.simd = SimdLevel::kAvx2;
      const BatchScoringEngine simd(scorer, simd_opt);
      std::vector<double> simd_got(n);
      simd.score_batch(poses, simd_got);
      for (std::size_t i = 0; i < n; ++i) {
        expect_close(simd_got[i], got[i], "simd-vs-scalar", i);
        expect_close(simd_got[i], scorer.score(poses[i]), "simd-vs-reference", i);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalence,
    ::testing::Values(EquivCase{false, 0.0f, 256}, EquivCase{true, 0.0f, 256},
                      EquivCase{false, 8.0f, 256}, EquivCase{true, 8.0f, 256},
                      EquivCase{false, 0.0f, 1}, EquivCase{false, 0.0f, 17},
                      EquivCase{true, 6.5f, 64}, EquivCase{false, 0.0f, 4096}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      const EquivCase& c = info.param;
      std::string name = c.coulomb ? "coulomb" : "lj";
      name += c.cutoff > 0.0f ? "_cut" : "_nocut";
      name += "_tile" + std::to_string(c.tile_size);
      return name;
    });

TEST(BatchScoringEngine, AutoImplResolvesToConcrete) {
  EXPECT_NE(resolve_scoring_impl(ScoringImpl::kAuto), ScoringImpl::kAuto);
  EXPECT_EQ(resolve_scoring_impl(ScoringImpl::kTiled), ScoringImpl::kTiled);
  EXPECT_EQ(resolve_scoring_impl(ScoringImpl::kBatched), ScoringImpl::kBatched);
  if (simd_kernel_supported()) {
    EXPECT_EQ(resolve_scoring_impl(ScoringImpl::kAuto), ScoringImpl::kBatchedSimd);
  } else {
    EXPECT_EQ(resolve_scoring_impl(ScoringImpl::kAuto), ScoringImpl::kBatched);
  }
}

TEST(BatchScoringEngine, ImplNamesRoundTrip) {
  for (ScoringImpl impl : {ScoringImpl::kAuto, ScoringImpl::kTiled, ScoringImpl::kBatched,
                           ScoringImpl::kBatchedSimd}) {
    EXPECT_EQ(scoring_impl_from(scoring_impl_name(impl)), impl);
  }
  EXPECT_EQ(scoring_impl_from("batched"), ScoringImpl::kBatched);
  EXPECT_THROW(scoring_impl_from("fancy"), std::invalid_argument);
}

TEST(BatchScoringEngine, BadOptionsThrow) {
  const mol::Molecule rec = make_receptor(50);
  const mol::Molecule lig = make_ligand(5);
  const LennardJonesScorer scorer(rec, lig);
  BatchEngineOptions opt;
  opt.pose_block = 0;
  EXPECT_THROW(BatchScoringEngine(scorer, opt), std::invalid_argument);
  if (!simd_kernel_supported()) {
    BatchEngineOptions simd_opt;
    simd_opt.simd = SimdLevel::kAvx2;
    EXPECT_THROW(BatchScoringEngine(scorer, simd_opt), std::invalid_argument);
  }
}

TEST(BatchScoringEngine, SizeMismatchThrows) {
  const mol::Molecule rec = make_receptor(50);
  const mol::Molecule lig = make_ligand(5);
  const LennardJonesScorer scorer(rec, lig);
  const BatchScoringEngine engine(scorer);
  const auto poses = random_poses(4);
  std::vector<double> out(3);
  EXPECT_THROW(engine.score_batch(poses, out), std::invalid_argument);
}

}  // namespace
}  // namespace metadock::scoring
