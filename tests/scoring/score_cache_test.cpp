#include "scoring/score_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "geom/quat.h"
#include "util/rng.h"

namespace metadock::scoring {
namespace {

Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(seed);
  Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

TEST(ScoreCache, MissThenHitRoundTripsExactDouble) {
  ScoreCache cache;
  const Pose pose = sample_pose(1);
  double got = 0.0;
  EXPECT_FALSE(cache.lookup(pose, &got));
  const double score = -12.3456789012345678;
  cache.insert(pose, score);
  ASSERT_TRUE(cache.lookup(pose, &got));
  // Bit-identical, not just close: the cache stores the double verbatim.
  EXPECT_EQ(got, score);

  const ScoreCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ScoreCache, ExactBitKeysDistinguishNearbyPoses) {
  ScoreCache cache;
  Pose a = sample_pose(2);
  Pose b = a;
  b.position.x = std::nextafter(b.position.x, 1e9f);  // 1 ulp apart
  cache.insert(a, 1.0);
  cache.insert(b, 2.0);
  double got = 0.0;
  ASSERT_TRUE(cache.lookup(a, &got));
  EXPECT_EQ(got, 1.0);
  ASSERT_TRUE(cache.lookup(b, &got));
  EXPECT_EQ(got, 2.0);
}

TEST(ScoreCache, InsertSameKeyOverwrites) {
  ScoreCache cache;
  const Pose pose = sample_pose(3);
  cache.insert(pose, 1.0);
  cache.insert(pose, 2.0);
  double got = 0.0;
  ASSERT_TRUE(cache.lookup(pose, &got));
  EXPECT_EQ(got, 2.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ScoreCache, EvictionNeverServesWrongScore) {
  // A cache far smaller than the working set: plenty of evictions, but a
  // hit must still return exactly what was inserted for that exact pose.
  ScoreCacheOptions opt;
  opt.capacity = 64;
  opt.shards = 2;
  ScoreCache cache(opt);
  constexpr int kPoses = 2000;
  for (int i = 0; i < kPoses; ++i) {
    cache.insert(sample_pose(static_cast<std::uint64_t>(i)), static_cast<double>(i) * 0.5);
  }
  const ScoreCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, s.capacity);
  int hits = 0;
  for (int i = 0; i < kPoses; ++i) {
    double got = 0.0;
    if (cache.lookup(sample_pose(static_cast<std::uint64_t>(i)), &got)) {
      EXPECT_EQ(got, static_cast<double>(i) * 0.5) << i;
      ++hits;
    }
  }
  EXPECT_GT(hits, 0);
}

TEST(ScoreCache, ClearEmptiesButKeepsCapacity) {
  ScoreCache cache;
  cache.insert(sample_pose(4), 1.0);
  const std::size_t cap = cache.stats().capacity;
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().capacity, cap);
  double got = 0.0;
  EXPECT_FALSE(cache.lookup(sample_pose(4), &got));
}

TEST(ScoreCache, CapacityAndShardsRoundUpToPowersOfTwo) {
  ScoreCacheOptions opt;
  opt.capacity = 100;
  opt.shards = 3;
  const ScoreCache cache(opt);
  const ScoreCacheStats s = cache.stats();
  EXPECT_EQ(s.shards, 4u);
  EXPECT_EQ(s.capacity % s.shards, 0u);
  EXPECT_GE(s.capacity, 100u);
  EXPECT_EQ(s.capacity & (s.capacity - 1), 0u);
}

TEST(ScoreCache, BadOptionsThrow) {
  ScoreCacheOptions opt;
  opt.capacity = 0;
  EXPECT_THROW(ScoreCache{opt}, std::invalid_argument);
  opt = {};
  opt.shards = 0;
  EXPECT_THROW(ScoreCache{opt}, std::invalid_argument);
  opt = {};
  opt.quantum = 0.0f;
  EXPECT_THROW(ScoreCache{opt}, std::invalid_argument);
  opt = {};
  opt.max_probe = 0;
  EXPECT_THROW(ScoreCache{opt}, std::invalid_argument);
}

TEST(ScoreCache, SeedChangesPlacementNotCorrectness) {
  ScoreCacheOptions a_opt;
  a_opt.capacity = 256;
  ScoreCacheOptions b_opt = a_opt;
  b_opt.seed = a_opt.seed ^ 0x9e3779b97f4a7c15ULL;
  ScoreCache a(a_opt), b(b_opt);
  for (int i = 0; i < 100; ++i) {
    const Pose pose = sample_pose(static_cast<std::uint64_t>(i));
    a.insert(pose, static_cast<double>(i));
    b.insert(pose, static_cast<double>(i));
  }
  for (int i = 0; i < 100; ++i) {
    const Pose pose = sample_pose(static_cast<std::uint64_t>(i));
    double ga = 0.0, gb = 0.0;
    const bool ha = a.lookup(pose, &ga);
    const bool hb = b.lookup(pose, &gb);
    if (ha) {
      EXPECT_EQ(ga, static_cast<double>(i));
    }
    if (hb) {
      EXPECT_EQ(gb, static_cast<double>(i));
    }
  }
}

}  // namespace
}  // namespace metadock::scoring
