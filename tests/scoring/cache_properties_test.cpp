// Property suite for the score cache's correctness contract: with exact-bit
// keys, turning the cache on may only change *when* the scorer runs, never
// what it returns.  Every comparison here is EXPECT_EQ on doubles — the
// contract is bit-identity, not tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "geom/quat.h"
#include "meta/cached_evaluator.h"
#include "meta/engine.h"
#include "meta/evaluator.h"
#include "mol/synth.h"
#include "obs/observer.h"
#include "scoring/score_cache.h"
#include "util/pool.h"
#include "util/rng.h"

namespace metadock {
namespace {

constexpr std::size_t kPoses = 1000;

const mol::Molecule& test_receptor() {
  static const mol::Molecule m = [] {
    mol::ReceptorParams p;
    p.atom_count = 400;
    p.seed = 7;
    return mol::make_receptor(p);
  }();
  return m;
}

const mol::Molecule& test_ligand() {
  static const mol::Molecule m = [] {
    mol::LigandParams p;
    p.atom_count = 12;
    p.seed = 8;
    return mol::make_ligand(p);
  }();
  return m;
}

const scoring::LennardJonesScorer& test_scorer() {
  static const scoring::LennardJonesScorer s(test_receptor(), test_ligand());
  return s;
}

scoring::Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(0xCACEu, seed);
  scoring::Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-15, 15)),
                   static_cast<float>(rng.uniform(-15, 15)),
                   static_cast<float>(rng.uniform(-15, 15))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

std::vector<scoring::Pose> seeded_poses() {
  std::vector<scoring::Pose> poses;
  poses.reserve(kPoses);
  for (std::size_t i = 0; i < kPoses; ++i) poses.push_back(sample_pose(i));
  return poses;
}

TEST(CacheProperties, CachedScoresAreBitIdenticalToUncached) {
  const std::vector<scoring::Pose> poses = seeded_poses();
  std::vector<double> plain(kPoses), cached(kPoses);

  meta::BatchedEvaluator uncached_eval(test_scorer());
  uncached_eval.evaluate(poses, plain);

  scoring::ScoreCache cache;
  meta::BatchedEvaluator inner(test_scorer());
  meta::CachedEvaluator cached_eval(inner, cache);
  cached_eval.evaluate(poses, cached);
  for (std::size_t i = 0; i < kPoses; ++i) EXPECT_EQ(cached[i], plain[i]) << i;

  // Second pass: everything is served from the cache, still bit-identical.
  std::vector<double> warm(kPoses);
  cached_eval.evaluate(poses, warm);
  for (std::size_t i = 0; i < kPoses; ++i) EXPECT_EQ(warm[i], plain[i]) << i;
  EXPECT_GE(cache.stats().hits, kPoses);
}

TEST(CacheProperties, SoaAndAosEntryPointsAgreeThroughTheCache) {
  const std::vector<scoring::Pose> poses = seeded_poses();
  std::vector<double> via_aos(kPoses), via_soa(kPoses);

  util::Arena arena;
  scoring::PoseSoA soa;
  soa.bind(arena, kPoses);
  for (const scoring::Pose& p : poses) soa.push(p);

  scoring::ScoreCache cache;
  meta::BatchedEvaluator inner(test_scorer());
  meta::CachedEvaluator eval(inner, cache);
  eval.evaluate(poses, via_aos);
  eval.evaluate_soa(soa.view(), via_soa);
  for (std::size_t i = 0; i < kPoses; ++i) EXPECT_EQ(via_soa[i], via_aos[i]) << i;
}

TEST(CacheProperties, TinyCacheUnderEvictionStaysBitIdentical) {
  const std::vector<scoring::Pose> poses = seeded_poses();
  std::vector<double> plain(kPoses), cached(kPoses);

  meta::BatchedEvaluator uncached_eval(test_scorer());
  uncached_eval.evaluate(poses, plain);

  scoring::ScoreCacheOptions opt;
  opt.capacity = 32;  // far below the working set: constant eviction
  scoring::ScoreCache cache(opt);
  meta::BatchedEvaluator inner(test_scorer());
  meta::CachedEvaluator eval(inner, cache);
  eval.evaluate(poses, cached);
  eval.evaluate(poses, cached);
  for (std::size_t i = 0; i < kPoses; ++i) EXPECT_EQ(cached[i], plain[i]) << i;
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheProperties, ObserverCountersAddUpToLookups) {
  const std::vector<scoring::Pose> poses = seeded_poses();
  std::vector<double> out(kPoses);
  obs::Observer observer;
  scoring::ScoreCache cache;
  meta::BatchedEvaluator inner(test_scorer());
  meta::CachedEvaluator eval(inner, cache, &observer);
  eval.evaluate(poses, out);
  eval.evaluate(poses, out);
  const double hits = observer.metrics.counter("meta.score_cache.hits").value();
  const double misses = observer.metrics.counter("meta.score_cache.misses").value();
  EXPECT_EQ(hits + misses, static_cast<double>(2 * kPoses));
  EXPECT_EQ(hits, static_cast<double>(eval.hits()));
  EXPECT_EQ(misses, static_cast<double>(eval.misses()));
  EXPECT_GE(eval.hits(), kPoses);  // the whole second pass
}

// --- engine-trajectory identity across the metaheuristic presets ----------

class CacheTrajectory : public ::testing::TestWithParam<const char*> {};

meta::MetaheuristicParams preset_from(const std::string& name) {
  meta::MetaheuristicParams p;
  if (name == "M1") p = meta::m1_genetic();
  if (name == "M2") p = meta::m2_scatter_full();
  if (name == "M3") p = meta::m3_scatter_light();
  if (name == "M4") p = meta::m4_local_search();
  p.population_per_spot = 8;
  if (p.population_based) {
    p.generations = 3;
  } else if (p.improve_steps > 6) {
    p.improve_steps = 6;
  }
  return p;
}

TEST_P(CacheTrajectory, BestEnergyTrajectoryIsIdenticalCacheOnVsOff) {
  const meta::DockingProblem problem =
      meta::make_problem(test_receptor(), test_ligand(), /*seed=*/42);
  const meta::MetaheuristicEngine engine(preset_from(GetParam()));

  meta::BatchedEvaluator off_eval(test_scorer());
  const meta::RunResult off = engine.run(problem, off_eval);

  scoring::ScoreCache cache;
  meta::BatchedEvaluator inner(test_scorer());
  meta::CachedEvaluator on_eval(inner, cache);
  const meta::RunResult on = engine.run(problem, on_eval);

  // Identical science: per-spot bests, global best, and the workload trace
  // (batch sizes are recorded before scoring, so caching cannot thin them).
  ASSERT_EQ(on.spot_results.size(), off.spot_results.size());
  for (std::size_t i = 0; i < on.spot_results.size(); ++i) {
    EXPECT_EQ(on.spot_results[i].spot_id, off.spot_results[i].spot_id);
    EXPECT_EQ(on.spot_results[i].best.score, off.spot_results[i].best.score) << i;
  }
  EXPECT_EQ(on.best.score, off.best.score);
  EXPECT_EQ(on.best_spot_id, off.best_spot_id);
  EXPECT_EQ(on.evaluations, off.evaluations);
  ASSERT_EQ(on.batch_sizes.size(), off.batch_sizes.size());
  for (std::size_t i = 0; i < on.batch_sizes.size(); ++i) {
    EXPECT_EQ(on.batch_sizes[i], off.batch_sizes[i]) << i;
  }

  // A warm second cache-on run replays the exact same trajectory.
  meta::CachedEvaluator warm_eval(inner, cache);
  const meta::RunResult warm = engine.run(problem, warm_eval);
  EXPECT_EQ(warm.best.score, off.best.score);
  EXPECT_GT(warm_eval.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Presets, CacheTrajectory,
                         ::testing::Values("M1", "M2", "M3", "M4"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace metadock
