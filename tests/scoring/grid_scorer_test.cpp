#include "scoring/grid_scorer.h"

#include <gtest/gtest.h>

#include <vector>

#include "mol/synth.h"
#include "util/rng.h"
#include "util/stats.h"

namespace metadock::scoring {
namespace {

struct Fixture {
  mol::Molecule receptor;
  mol::Molecule ligand;

  Fixture() {
    mol::ReceptorParams rp;
    rp.atom_count = 250;
    rp.seed = 77;
    receptor = mol::make_receptor(rp);
    mol::LigandParams lp;
    lp.atom_count = 12;
    lp.seed = 78;
    ligand = mol::make_ligand(lp);
  }
};

TEST(GridScorer, RejectsBadInputs) {
  Fixture f;
  const mol::Molecule empty;
  EXPECT_THROW(GridScorer(empty, f.ligand), std::invalid_argument);
  EXPECT_THROW(GridScorer(f.receptor, empty), std::invalid_argument);
  GridScorerOptions opt;
  opt.spacing = 0.0f;
  EXPECT_THROW(GridScorer(f.receptor, f.ligand, opt), std::invalid_argument);
}

TEST(GridScorer, BuildsOneGridPerLigandElement) {
  Fixture f;
  const GridScorer grid(f.receptor, f.ligand);
  // Synthetic ligands contain C/N/O heavy atoms plus hydrogens.
  EXPECT_GE(grid.grids_built(), 2u);
  EXPECT_LE(grid.grids_built(), 4u);
  EXPECT_GT(grid.grid_points(), 1000u);
  EXPECT_GT(grid.payload_bytes(), 0u);
}

TEST(GridScorer, NodeValueMatchesDirectProbeEnergy) {
  // The lattice stores the exact cutoff-limited probe energy: compare one
  // node against a single-atom "ligand" scored by the direct path with the
  // same cutoff applied manually.
  Fixture f;
  GridScorerOptions opt;
  opt.cutoff = 8.0f;
  const GridScorer grid(f.receptor, f.ligand, opt);

  // Probe element C at a node near the box center.
  const geom::Vec3 lo = grid.box().lo;
  const int ix = 10, iy = 12, iz = 9;
  const geom::Vec3 p{lo.x + 10 * opt.spacing, lo.y + 12 * opt.spacing,
                     lo.z + 9 * opt.spacing};
  double expected = 0.0;
  const PairTable& table = PairTable::instance();
  for (std::size_t i = 0; i < f.receptor.size(); ++i) {
    const float r2 = std::max(p.distance2(f.receptor.position(i)), 0.01f);
    if (r2 > opt.cutoff * opt.cutoff) continue;
    const float inv2 = 1.0f / r2;
    const float inv6 = inv2 * inv2 * inv2;
    const PairCoeff& c = table.get(mol::Element::kC, f.receptor.element(i));
    expected += (c.a * inv6 - c.b) * inv6;
  }
  EXPECT_NEAR(grid.node_value(mol::Element::kC, ix, iy, iz), expected,
              1e-4 * (1.0 + std::abs(expected)));
}

TEST(GridScorer, TracksCutoffMatchedDirectScoring) {
  // Compare against the direct pair sum with the *same* cutoff, so the only
  // discrepancy is trilinear interpolation.  Sampled over surface poses,
  // grid and direct energies must be strongly correlated and close in the
  // smooth attractive region.
  Fixture f;
  GridScorerOptions gopt;
  ScoringOptions dopt;
  dopt.cutoff = gopt.cutoff;
  const LennardJonesScorer direct(f.receptor, f.ligand, dopt);
  const GridScorer grid(f.receptor, f.ligand, gopt);
  util::Xoshiro256 rng(5);
  const float r = f.receptor.radius_about_centroid() + 3.0f;

  std::vector<double> ds, gs;
  util::StatAccumulator rel_err;
  for (int i = 0; i < 300 && ds.size() < 40; ++i) {
    Pose pose;
    const geom::Vec3 dir{static_cast<float>(rng.normal()), static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
    pose.position = dir.normalized() * r;
    pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
    const double d = direct.score(pose);
    if (d > -0.5 || d < -100.0) continue;  // keep smooth attractive poses
    const double g = grid.score(pose);
    ds.push_back(d);
    gs.push_back(g);
    rel_err.add(std::abs(g - d) / std::abs(d));
  }
  ASSERT_GT(ds.size(), 10u);
  EXPECT_LT(rel_err.mean(), 0.20);

  // Pearson correlation between the two scorers.
  util::StatAccumulator sd, sg;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sd.add(ds[i]);
    sg.add(gs[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    cov += (ds[i] - sd.mean()) * (gs[i] - sg.mean());
  }
  cov /= static_cast<double>(ds.size() - 1);
  EXPECT_GT(cov / (sd.stddev() * sg.stddev()), 0.93);
}

TEST(GridScorer, OutOfBoxPosesArePenalized) {
  Fixture f;
  const GridScorer grid(f.receptor, f.ligand);
  Pose far_away;
  far_away.position = {500.0f, 0.0f, 0.0f};
  EXPECT_GE(grid.score(far_away),
            grid.options().out_of_box_penalty * 0.5 * static_cast<double>(f.ligand.size()));
}

TEST(GridScorer, BatchMatchesSingle) {
  Fixture f;
  const GridScorer grid(f.receptor, f.ligand);
  util::Xoshiro256 rng(9);
  std::vector<Pose> poses(10);
  for (auto& p : poses) {
    p.position = {static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10)),
                  static_cast<float>(rng.uniform(-10, 10))};
  }
  std::vector<double> out(poses.size());
  grid.score_batch(poses, out);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], grid.score(poses[i]));
  }
}

TEST(GridScorer, BatchSizeMismatchThrows) {
  Fixture f;
  const GridScorer grid(f.receptor, f.ligand);
  std::vector<Pose> poses(3);
  std::vector<double> out(4);
  EXPECT_THROW(grid.score_batch(poses, out), std::invalid_argument);
}

TEST(GridScorer, FinerSpacingReducesError) {
  Fixture f;
  const LennardJonesScorer direct(f.receptor, f.ligand);
  GridScorerOptions coarse, fine;
  coarse.spacing = 1.5f;
  fine.spacing = 0.5f;
  const GridScorer gc(f.receptor, f.ligand, coarse);
  const GridScorer gf(f.receptor, f.ligand, fine);

  util::Xoshiro256 rng(11);
  const float r = f.receptor.radius_about_centroid() + 3.0f;
  double err_c = 0.0, err_f = 0.0;
  int n = 0;
  for (int i = 0; i < 100 && n < 20; ++i) {
    Pose pose;
    const geom::Vec3 dir{static_cast<float>(rng.normal()), static_cast<float>(rng.normal()),
                         static_cast<float>(rng.normal())};
    pose.position = dir.normalized() * r;
    const double d = direct.score(pose);
    if (d > -0.5 || d < -100.0) continue;
    err_c += std::abs(gc.score(pose) - d);
    err_f += std::abs(gf.score(pose) - d);
    ++n;
  }
  ASSERT_GT(n, 5);
  EXPECT_LT(err_f, err_c);
}

TEST(GridScorer, CoulombGridChangesEnergies) {
  Fixture f;
  GridScorerOptions with;
  with.coulomb = true;
  const GridScorer g_with(f.receptor, f.ligand, with);
  const GridScorer g_without(f.receptor, f.ligand);
  Pose pose;
  pose.position = {0.0f, 0.0f, f.receptor.radius_about_centroid() + 2.0f};
  EXPECT_NE(g_with.score(pose), g_without.score(pose));
}

TEST(GridScorer, NodeValueValidation) {
  Fixture f;
  const GridScorer grid(f.receptor, f.ligand);
  EXPECT_THROW((void)grid.node_value(mol::Element::kBr, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)grid.node_value(mol::Element::kC, -1, 0, 0), std::out_of_range);
  EXPECT_THROW((void)grid.node_value(mol::Element::kC, 100000, 0, 0), std::out_of_range);
}

}  // namespace
}  // namespace metadock::scoring
