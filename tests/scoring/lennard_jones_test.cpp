#include "scoring/lennard_jones.h"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "mol/synth.h"
#include "util/rng.h"

namespace metadock::scoring {
namespace {

mol::Molecule single_atom(mol::Element e, const geom::Vec3& at, float q = 0.0f) {
  mol::Molecule m("one");
  m.add_atom(e, at, q);
  return m;
}

Pose random_pose(util::Xoshiro256& rng, float extent = 15.0f) {
  Pose p;
  p.position = {static_cast<float>(rng.uniform(-extent, extent)),
                static_cast<float>(rng.uniform(-extent, extent)),
                static_cast<float>(rng.uniform(-extent, extent))};
  p.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return p;
}

TEST(LennardJones, TwoAtomEnergyMatchesClosedForm) {
  const mol::Molecule receptor = single_atom(mol::Element::kC, {0, 0, 0});
  const mol::Molecule ligand = single_atom(mol::Element::kC, {0, 0, 0});
  const LennardJonesScorer scorer(receptor, ligand);
  const double rmin = 2.0 * mol::lj_params(mol::Element::kC).rmin_half;
  const double eps = mol::lj_params(mol::Element::kC).epsilon;

  Pose pose;
  pose.position = {static_cast<float>(rmin), 0, 0};
  // At the minimum distance the energy is -epsilon.
  EXPECT_NEAR(scorer.score(pose), -eps, 1e-3);

  pose.position = {static_cast<float>(2.0 * rmin), 0, 0};
  // Far side of the well: small negative.
  EXPECT_LT(scorer.score(pose), 0.0);
  EXPECT_GT(scorer.score(pose), -eps);
}

TEST(LennardJones, ClashIsStronglyRepulsive) {
  const mol::Molecule receptor = single_atom(mol::Element::kC, {0, 0, 0});
  const mol::Molecule ligand = single_atom(mol::Element::kC, {0, 0, 0});
  const LennardJonesScorer scorer(receptor, ligand);
  Pose pose;
  pose.position = {0.5f, 0, 0};
  EXPECT_GT(scorer.score(pose), 100.0);
}

TEST(LennardJones, OverlappingAtomsAreFiniteViaClamp) {
  const mol::Molecule receptor = single_atom(mol::Element::kO, {0, 0, 0});
  const mol::Molecule ligand = single_atom(mol::Element::kO, {0, 0, 0});
  const LennardJonesScorer scorer(receptor, ligand);
  Pose pose;  // exactly on top
  const double e = scorer.score(pose);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_GT(e, 0.0);
}

TEST(LennardJones, FarLigandHasNegligibleEnergy) {
  const mol::Molecule receptor = single_atom(mol::Element::kC, {0, 0, 0});
  const mol::Molecule ligand = single_atom(mol::Element::kC, {0, 0, 0});
  const LennardJonesScorer scorer(receptor, ligand);
  Pose pose;
  pose.position = {200.0f, 0, 0};
  EXPECT_NEAR(scorer.score(pose), 0.0, 1e-6);
}

TEST(LennardJones, RotationAboutOwnAxisOfSymmetricLigandIsInvariant) {
  // A single-atom ligand is rotation invariant: orientation must not matter.
  const mol::Molecule receptor = single_atom(mol::Element::kN, {1, 2, 3});
  const mol::Molecule ligand = single_atom(mol::Element::kO, {0, 0, 0});
  const LennardJonesScorer scorer(receptor, ligand);
  util::Xoshiro256 rng(3);
  Pose a, b;
  a.position = b.position = {4, 5, 6};
  b.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  EXPECT_NEAR(scorer.score(a), scorer.score(b), 1e-9);
}

TEST(LennardJones, ThrowsOnEmptyMolecules) {
  const mol::Molecule receptor = single_atom(mol::Element::kC, {0, 0, 0});
  const mol::Molecule empty;
  EXPECT_THROW(LennardJonesScorer(empty, receptor), std::invalid_argument);
  EXPECT_THROW(LennardJonesScorer(receptor, empty), std::invalid_argument);
}

TEST(LennardJones, ThrowsOnBadTileSize) {
  const mol::Molecule m = single_atom(mol::Element::kC, {0, 0, 0});
  ScoringOptions opt;
  opt.tile_size = 0;
  EXPECT_THROW(LennardJonesScorer(m, m, opt), std::invalid_argument);
}

TEST(LennardJones, CoulombTermChangesEnergy) {
  const mol::Molecule receptor = single_atom(mol::Element::kO, {0, 0, 0}, -0.5f);
  const mol::Molecule ligand = single_atom(mol::Element::kH, {0, 0, 0}, 0.3f);
  ScoringOptions with, without;
  with.coulomb = true;
  const LennardJonesScorer sc_with(receptor, ligand, with);
  const LennardJonesScorer sc_without(receptor, ligand, without);
  Pose pose;
  pose.position = {3.0f, 0, 0};
  // Opposite charges attract: the Coulomb term lowers the energy.
  EXPECT_LT(sc_with.score(pose), sc_without.score(pose));
}

TEST(LennardJones, CutoffDropsDistantPairs) {
  const mol::Molecule receptor = single_atom(mol::Element::kC, {0, 0, 0});
  const mol::Molecule ligand = single_atom(mol::Element::kC, {0, 0, 0});
  ScoringOptions opt;
  opt.cutoff = 8.0f;
  const LennardJonesScorer cut(receptor, ligand, opt);
  const LennardJonesScorer full(receptor, ligand);
  Pose near_pose, far_pose;
  near_pose.position = {4.0f, 0, 0};
  far_pose.position = {9.0f, 0, 0};
  // Inside the cutoff both agree; beyond it the cutoff scorer sees nothing.
  EXPECT_NEAR(cut.score(near_pose), full.score(near_pose), 1e-9);
  EXPECT_DOUBLE_EQ(cut.score(far_pose), 0.0);
  EXPECT_LT(full.score(far_pose), 0.0);
}

TEST(LennardJones, CutoffConsistentBetweenPaths) {
  mol::ReceptorParams rp;
  rp.atom_count = 200;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 9;
  const mol::Molecule ligand = mol::make_ligand(lp);
  ScoringOptions opt;
  opt.cutoff = 6.0f;
  const LennardJonesScorer scorer(receptor, ligand, opt);
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 10; ++i) {
    const Pose pose = random_pose(rng);
    const double ref = scorer.score(pose);
    EXPECT_NEAR(scorer.score_tiled(pose), ref, 1e-5 * (1.0 + std::abs(ref)));
  }
}

TEST(LennardJones, BatchMatchesIndividualScores) {
  mol::ReceptorParams rp;
  rp.atom_count = 150;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 12;
  const mol::Molecule ligand = mol::make_ligand(lp);
  const LennardJonesScorer scorer(receptor, ligand);

  util::Xoshiro256 rng(5);
  std::vector<Pose> poses;
  for (int i = 0; i < 20; ++i) poses.push_back(random_pose(rng));
  std::vector<double> batch(poses.size());
  scorer.score_batch(poses, batch);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_NEAR(batch[i], scorer.score_tiled(poses[i]), 1e-9);
  }
}

TEST(LennardJones, BatchSizeMismatchThrows) {
  const mol::Molecule m = single_atom(mol::Element::kC, {0, 0, 0});
  const LennardJonesScorer scorer(m, m);
  std::vector<Pose> poses(3);
  std::vector<double> out(2);
  EXPECT_THROW(scorer.score_batch(poses, out), std::invalid_argument);
}

TEST(LennardJones, PairsPerEvalIsProduct) {
  mol::ReceptorParams rp;
  rp.atom_count = 100;
  mol::LigandParams lp;
  lp.atom_count = 10;
  const LennardJonesScorer scorer(mol::make_receptor(rp), mol::make_ligand(lp));
  EXPECT_EQ(scorer.pairs_per_eval(), 1000u);
}

// Property sweep: the tiled path agrees with the reference path for every
// tile size, pose, and the Coulomb toggle.
class TiledAgreement : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TiledAgreement, TiledEqualsReference) {
  const auto [tile, coulomb] = GetParam();
  mol::ReceptorParams rp;
  rp.atom_count = 333;  // not a multiple of any tile size: exercises tails
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 17;
  const mol::Molecule ligand = mol::make_ligand(lp);

  ScoringOptions opt;
  opt.tile_size = tile;
  opt.coulomb = coulomb;
  const LennardJonesScorer scorer(receptor, ligand, opt);

  util::Xoshiro256 rng(7);
  for (int i = 0; i < 25; ++i) {
    const Pose pose = random_pose(rng, 25.0f);
    const double ref = scorer.score(pose);
    const double tiled = scorer.score_tiled(pose);
    // The scoring TU builds with relaxed FP; allow for re-association.
    EXPECT_NEAR(tiled, ref, 1e-5 * (1.0 + std::abs(ref))) << "pose " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TileSweep, TiledAgreement,
                         ::testing::Combine(::testing::Values(1, 7, 64, 256, 1024),
                                            ::testing::Bool()));

}  // namespace
}  // namespace metadock::scoring
