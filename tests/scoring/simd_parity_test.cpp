// Table-driven parity of the three batch kernels (scalar / AVX2 / AVX-512)
// on edge shapes: pair counts not divisible by any lane width, single-atom
// ligands, empty batches.  Kernels agree up to FP association order, so the
// comparison is the relative-tolerance idiom used by the equivalence suite;
// unsupported ISAs skip rather than fail, so the suite is green on any host.
#include "scoring/batch_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/quat.h"
#include "mol/synth.h"
#include "scoring/lennard_jones.h"
#include "scoring/pose_block.h"
#include "util/pool.h"
#include "util/rng.h"

namespace metadock::scoring {
namespace {

Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(0x51D0u, seed);
  Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10)),
                   static_cast<float>(rng.uniform(-10, 10))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

struct ParityShape {
  const char* name;
  std::size_t receptor_atoms;  // deliberately not multiples of 8 or 16
  std::size_t ligand_atoms;
  std::size_t pose_count;
};

const std::vector<ParityShape>& shapes() {
  static const std::vector<ParityShape> s{
      {"empty_batch", 33, 5, 0},
      {"single_pose_sub_lane_receptor", 13, 5, 1},
      {"single_atom_ligand", 33, 1, 5},
      {"odd_everything", 13, 3, 5},
      {"one_full_lane_plus_tail", 17, 1, 5},
      {"paper_like_small", 101, 7, 33},
  };
  return s;
}

class SimdParity : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    if (!simd_level_supported(GetParam())) {
      GTEST_SKIP() << simd_level_name(GetParam()) << " kernel unavailable on this host";
    }
  }
};

TEST_P(SimdParity, MatchesScalarOnEdgeShapes) {
  for (const ParityShape& shape : shapes()) {
    mol::ReceptorParams rp;
    rp.atom_count = shape.receptor_atoms;
    rp.seed = 11;
    const mol::Molecule receptor = mol::make_receptor(rp);
    mol::LigandParams lp;
    lp.atom_count = shape.ligand_atoms;
    lp.seed = 12;
    const mol::Molecule ligand = mol::make_ligand(lp);
    const LennardJonesScorer scorer(receptor, ligand);

    std::vector<Pose> poses;
    for (std::size_t i = 0; i < shape.pose_count; ++i) poses.push_back(sample_pose(i));
    std::vector<double> ref(shape.pose_count), got(shape.pose_count);

    BatchEngineOptions scalar_opt;
    scalar_opt.simd = SimdLevel::kScalar;
    const BatchScoringEngine scalar(scorer, scalar_opt);
    scalar.score_batch(poses, ref);

    BatchEngineOptions opt;
    opt.simd = GetParam();
    const BatchScoringEngine engine(scorer, opt);
    engine.score_batch(poses, got);

    for (std::size_t i = 0; i < shape.pose_count; ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-4 * (1.0 + std::abs(ref[i])))
          << shape.name << " pose " << i << " at " << simd_level_name(GetParam());
    }
  }
}

TEST_P(SimdParity, CoulombAndCutoffVariantsMatchScalar) {
  mol::ReceptorParams rp;
  rp.atom_count = 45;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 7;
  const mol::Molecule ligand = mol::make_ligand(lp);

  for (const bool coulomb : {false, true}) {
    for (const float cutoff : {0.0f, 6.5f}) {
      ScoringOptions so;
      so.coulomb = coulomb;
      so.cutoff = cutoff;
      const LennardJonesScorer scorer(receptor, ligand, so);

      std::vector<Pose> poses;
      for (std::size_t i = 0; i < 9; ++i) poses.push_back(sample_pose(100 + i));
      std::vector<double> ref(poses.size()), got(poses.size());

      BatchEngineOptions scalar_opt;
      scalar_opt.simd = SimdLevel::kScalar;
      BatchScoringEngine(scorer, scalar_opt).score_batch(poses, ref);
      BatchEngineOptions opt;
      opt.simd = GetParam();
      BatchScoringEngine(scorer, opt).score_batch(poses, got);

      for (std::size_t i = 0; i < poses.size(); ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-4 * (1.0 + std::abs(ref[i])))
            << "coulomb=" << coulomb << " cutoff=" << cutoff << " pose " << i;
      }
    }
  }
}

TEST_P(SimdParity, SoaEntryPointMatchesAos) {
  mol::ReceptorParams rp;
  rp.atom_count = 33;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 5;
  const mol::Molecule ligand = mol::make_ligand(lp);
  const LennardJonesScorer scorer(receptor, ligand);

  std::vector<Pose> poses;
  for (std::size_t i = 0; i < 21; ++i) poses.push_back(sample_pose(200 + i));

  util::Arena arena;
  PoseSoA soa;
  soa.bind(arena, poses.size());
  for (const Pose& p : poses) soa.push(p);

  BatchEngineOptions opt;
  opt.simd = GetParam();
  const BatchScoringEngine engine(scorer, opt);
  std::vector<double> aos(poses.size()), soa_out(poses.size());
  engine.score_batch(poses, aos);
  engine.score_batch(soa.view(), soa_out);
  // Same engine, same kernel, same per-pose math: bit-identical.
  for (std::size_t i = 0; i < poses.size(); ++i) EXPECT_EQ(soa_out[i], aos[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Levels, SimdParity,
                         ::testing::Values(SimdLevel::kScalar, SimdLevel::kAvx2,
                                           SimdLevel::kAvx512),
                         [](const ::testing::TestParamInfo<SimdLevel>& info) {
                           return std::string(simd_level_name(info.param));
                         });

}  // namespace
}  // namespace metadock::scoring
