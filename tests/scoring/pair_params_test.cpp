#include "scoring/pair_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace metadock::scoring {
namespace {

TEST(PairTable, SymmetricInElements) {
  const PairTable& t = PairTable::instance();
  for (int i = 0; i < mol::kElementCount; ++i) {
    for (int j = 0; j < mol::kElementCount; ++j) {
      const auto a = static_cast<mol::Element>(i);
      const auto b = static_cast<mol::Element>(j);
      EXPECT_FLOAT_EQ(t.get(a, b).a, t.get(b, a).a);
      EXPECT_FLOAT_EQ(t.get(a, b).b, t.get(b, a).b);
    }
  }
}

TEST(PairTable, LorentzBerthelotCombination) {
  const PairTable& t = PairTable::instance();
  const mol::LjParams c = mol::lj_params(mol::Element::kC);
  const mol::LjParams o = mol::lj_params(mol::Element::kO);
  const double rmin = static_cast<double>(c.rmin_half) + o.rmin_half;
  const double eps = std::sqrt(static_cast<double>(c.epsilon) * o.epsilon);
  const double r6 = std::pow(rmin, 6.0);
  const PairCoeff& p = t.get(mol::Element::kC, mol::Element::kO);
  EXPECT_NEAR(p.a, eps * r6 * r6, 1e-2 * p.a);
  EXPECT_NEAR(p.b, 2.0 * eps * r6, 1e-4 * p.b);
}

TEST(PairTable, MinimumSitsAtRmin) {
  // E(r) = A/r^12 - B/r^6 has its minimum where r^6 = 2A/B = rmin^6.
  const PairTable& t = PairTable::instance();
  const PairCoeff& p = t.get(mol::Element::kC, mol::Element::kC);
  const double rmin6 = 2.0 * static_cast<double>(p.a) / p.b;
  const double rmin = std::pow(rmin6, 1.0 / 6.0);
  const double expected = 2.0 * mol::lj_params(mol::Element::kC).rmin_half;
  EXPECT_NEAR(rmin, expected, 1e-3 * expected);
}

TEST(PairTable, WellDepthAtMinimumIsEpsilon) {
  const PairTable& t = PairTable::instance();
  const PairCoeff& p = t.get(mol::Element::kN, mol::Element::kN);
  const double rmin = 2.0 * mol::lj_params(mol::Element::kN).rmin_half;
  const double inv6 = 1.0 / std::pow(rmin, 6.0);
  const double e = (p.a * inv6 - p.b) * inv6;
  EXPECT_NEAR(e, -mol::lj_params(mol::Element::kN).epsilon, 1e-3);
}

TEST(PairTable, RowPointerMatchesGet) {
  const PairTable& t = PairTable::instance();
  const PairCoeff* row = t.row(mol::Element::kO);
  for (int j = 0; j < mol::kElementCount; ++j) {
    EXPECT_FLOAT_EQ(row[j].a, t.get(mol::Element::kO, static_cast<mol::Element>(j)).a);
  }
}

TEST(PairTable, AllCoefficientsPositive) {
  const PairTable& t = PairTable::instance();
  for (int i = 0; i < mol::kElementCount; ++i) {
    for (int j = 0; j < mol::kElementCount; ++j) {
      const PairCoeff& p = t.get(static_cast<mol::Element>(i), static_cast<mol::Element>(j));
      EXPECT_GT(p.a, 0.0f);
      EXPECT_GT(p.b, 0.0f);
    }
  }
}

TEST(PairTable, InstanceIsSingleton) {
  EXPECT_EQ(&PairTable::instance(), &PairTable::instance());
}

}  // namespace
}  // namespace metadock::scoring
