#include "util/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace metadock::util {
namespace {

TEST(Arena, RejectsZeroChunkBytes) {
  EXPECT_THROW(Arena{0}, std::invalid_argument);
}

TEST(Arena, SpansAreZeroFilledAndDisjoint) {
  Arena arena(256);
  const std::span<std::uint32_t> a = arena.make_span<std::uint32_t>(10);
  const std::span<std::uint32_t> b = arena.make_span<std::uint32_t>(10);
  ASSERT_EQ(a.size(), 10u);
  for (std::uint32_t v : a) EXPECT_EQ(v, 0u);
  for (std::uint32_t v : b) EXPECT_EQ(v, 0u);
  // Writing one span never touches the other.
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0xAAAAAAAAu;
  for (std::uint32_t v : b) EXPECT_EQ(v, 0u);
}

TEST(Arena, AlignmentIsHonored) {
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the bump pointer
  void* p = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  const std::span<double> big = arena.make_span<double>(1000);
  ASSERT_EQ(big.size(), 1000u);
  big[999] = 1.0;
  EXPECT_GE(arena.capacity_bytes(), 8000u);
}

TEST(Arena, ResetRecyclesCapacityWithoutFreeing) {
  Arena arena(128);
  (void)arena.make_span<double>(100);
  const std::size_t cap = arena.capacity_bytes();
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), cap);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.reset_count(), 1u);
  // Steady state: the same allocation pattern grows no new chunks.
  (void)arena.make_span<double>(100);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, MarkRewindReleasesLifo) {
  Arena arena(256);
  (void)arena.make_span<float>(8);
  const std::size_t used = arena.used_bytes();
  const Arena::Marker m = arena.mark();
  (void)arena.make_span<float>(64);
  EXPECT_GT(arena.used_bytes(), used);
  arena.rewind(m);
  EXPECT_EQ(arena.used_bytes(), used);
}

TEST(Arena, ScopeRewindsOnDestruction) {
  Arena arena;
  (void)arena.make_span<int>(4);
  const std::size_t used = arena.used_bytes();
  {
    ArenaScope scope(arena);
    (void)arena.make_span<int>(1000);
    EXPECT_GT(arena.used_bytes(), used);
  }
  EXPECT_EQ(arena.used_bytes(), used);
}

TEST(Arena, RewoundMemoryIsRezeroedOnReuse) {
  Arena arena(256);
  const Arena::Marker m = arena.mark();
  std::span<std::uint8_t> first = arena.make_span<std::uint8_t>(32);
  std::memset(first.data(), 0xFF, first.size());
  arena.rewind(m);
  const std::span<std::uint8_t> second = arena.make_span<std::uint8_t>(32);
  for (std::uint8_t v : second) EXPECT_EQ(v, 0u);
}

TEST(Arena, PeakBytesTracksHighWater) {
  Arena arena(64);
  {
    ArenaScope scope(arena);
    (void)arena.make_span<double>(50);
  }
  EXPECT_GE(arena.peak_bytes(), 400u);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(ArenaVector, PushBackWithinCapacity) {
  Arena arena;
  ArenaVector<int> v(arena, 4);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 3);
  EXPECT_THROW(v.push_back(5), std::length_error);
}

TEST(ArenaVector, BackAndPopBackMirrorStdVector) {
  Arena arena;
  ArenaVector<int> v(arena, 4);
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.back(), 1);
  v.pop_back();
  EXPECT_TRUE(v.empty());
  EXPECT_THROW(v.pop_back(), std::length_error);
}

TEST(ArenaVector, SetSizeRezerosOnRegrow) {
  Arena arena;
  ArenaVector<int> v(arena, 8);
  for (int i = 0; i < 8; ++i) v.push_back(100 + i);
  v.set_size(2);
  v.set_size(8);
  EXPECT_EQ(v[0], 100);
  EXPECT_EQ(v[1], 101);
  for (std::size_t i = 2; i < 8; ++i) EXPECT_EQ(v[i], 0);
  EXPECT_THROW(v.set_size(9), std::length_error);
}

TEST(ArenaVector, SpanCoversExactlySizeElements) {
  Arena arena;
  ArenaVector<double> v(arena, 6);
  v.push_back(1.5);
  v.push_back(2.5);
  const std::span<const double> s = std::as_const(v).span();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1.5);
  EXPECT_EQ(s[1], 2.5);
}

TEST(ThreadArena, IsDistinctPerThread) {
  Arena* main_arena = &thread_arena();
  Arena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &thread_arena(); });
  t.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
  EXPECT_EQ(main_arena, &thread_arena());
}

}  // namespace
}  // namespace metadock::util
