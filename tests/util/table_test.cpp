#include "util/table.h"

#include <gtest/gtest.h>

namespace metadock::util {
namespace {

TEST(Table, NumFormatsFixedDecimals) {
  EXPECT_EQ(Table::num(3.14159), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RendersHeaderAndRows) {
  Table t("title");
  t.header({"a", "bb"}).row({"1", "2"}).row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 333 "), std::string::npos);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t;
  t.header({"x", "y"}).row({"longvalue", "1"});
  const std::string s = t.str();
  // Every line between rules has the same length.
  std::size_t first_len = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (first_len == 0) {
      first_len = len;
    } else {
      EXPECT_EQ(len, first_len);
    }
    pos = eol + 1;
  }
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.header({"a", "b", "c"}).row({"1"});
  EXPECT_NE(t.str().find("| 1 "), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t;
  t.header({"a", "b"}).row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.row({"has,comma", "has\"quote"});
  EXPECT_EQ(t.csv(), "\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, EmptyTableRendersRulesOnly) {
  Table t;
  EXPECT_EQ(t.csv(), "");
  EXPECT_FALSE(t.str().empty());
}

}  // namespace
}  // namespace metadock::util
