#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace metadock::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("METADOCK_TEST_VAR"); }
  static void set(const char* v) { setenv("METADOCK_TEST_VAR", v, 1); }
};

TEST_F(EnvTest, StringFallbackWhenUnset) {
  EXPECT_EQ(env_or("METADOCK_TEST_VAR", std::string("dflt")), "dflt");
}

TEST_F(EnvTest, StringReadsValue) {
  set("hello");
  EXPECT_EQ(env_or("METADOCK_TEST_VAR", std::string("dflt")), "hello");
}

TEST_F(EnvTest, EmptyStringFallsBack) {
  set("");
  EXPECT_EQ(env_or("METADOCK_TEST_VAR", std::string("dflt")), "dflt");
}

TEST_F(EnvTest, DoubleParses) {
  set("2.5");
  EXPECT_DOUBLE_EQ(env_or("METADOCK_TEST_VAR", 1.0), 2.5);
}

TEST_F(EnvTest, DoubleFallbackOnGarbage) {
  set("abc");
  EXPECT_DOUBLE_EQ(env_or("METADOCK_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, IntParses) {
  set("-42");
  EXPECT_EQ(env_or("METADOCK_TEST_VAR", std::int64_t{0}), -42);
}

TEST_F(EnvTest, IntFallbackWhenUnset) {
  EXPECT_EQ(env_or("METADOCK_TEST_VAR", std::int64_t{9}), 9);
}

TEST_F(EnvTest, FlagTrueVariants) {
  for (const char* v : {"1", "true", "YES", "On"}) {
    set(v);
    EXPECT_TRUE(env_flag("METADOCK_TEST_VAR")) << v;
  }
}

TEST_F(EnvTest, FlagFalseVariants) {
  for (const char* v : {"0", "false", "no", "off", "banana"}) {
    set(v);
    EXPECT_FALSE(env_flag("METADOCK_TEST_VAR")) << v;
  }
}

TEST_F(EnvTest, FlagFallback) {
  EXPECT_TRUE(env_flag("METADOCK_TEST_VAR", true));
  EXPECT_FALSE(env_flag("METADOCK_TEST_VAR", false));
}

}  // namespace
}  // namespace metadock::util
