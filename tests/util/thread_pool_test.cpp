#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace metadock::util {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, WaitIdleReturnsWhenNothingSubmitted) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, GlobalIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, ThrowingTaskNeitherDeadlocksNorTerminates) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  // Before the fix this hung forever: the throwing task never decremented
  // in_flight_ (or std::terminate'd the process from the worker thread).
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, ThrowingParallelForPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::logic_error("index 37");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, FirstExceptionWinsAndCarriesItsMessage) {
  ThreadPool pool(1);  // single worker => deterministic task order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The error was consumed by the rethrow; subsequent rounds run clean.
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
  pool.wait_idle();  // no stale exception left behind
}

TEST(ThreadPool, NonThrowingTasksStillCompleteAlongsideThrower) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    if (i == 13) {
      pool.submit([] { throw std::runtime_error("task 13"); });
    } else {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every other task ran to completion: no work is silently dropped.
  EXPECT_EQ(counter.load(), 99);
}

TEST(ThreadPool, DestructorJoinsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    // No explicit wait: the destructor must drain the queue.
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace metadock::util
