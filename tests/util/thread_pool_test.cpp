#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace metadock::util {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, WaitIdleReturnsWhenNothingSubmitted) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, GlobalIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorJoinsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    // No explicit wait: the destructor must drain the queue.
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace metadock::util
