#include "util/args.h"

#include <gtest/gtest.h>

namespace metadock::util {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, PositionalsCollected) {
  const ArgParser a = parse({"dock", "extra"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "dock");
  EXPECT_EQ(a.positionals()[1], "extra");
}

TEST(Args, KeyValueSpaceForm) {
  const ArgParser a = parse({"--node", "hertz"});
  EXPECT_TRUE(a.has("node"));
  EXPECT_EQ(a.get("node"), "hertz");
}

TEST(Args, KeyValueEqualsForm) {
  const ArgParser a = parse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(a.get("scale", 1.0), 0.25);
}

TEST(Args, BareFlag) {
  const ArgParser a = parse({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose", std::string("x")), "");
}

TEST(Args, FlagFollowedByOption) {
  const ArgParser a = parse({"--verbose", "--node", "jupiter"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("node"), "jupiter");
}

TEST(Args, NumericFallbacks) {
  const ArgParser a = parse({"--seed", "7"});
  EXPECT_EQ(a.get("seed", std::int64_t{42}), 7);
  EXPECT_EQ(a.get("missing", std::int64_t{42}), 42);
  EXPECT_DOUBLE_EQ(a.get("missing", 1.5), 1.5);
}

TEST(Args, BadNumberThrows) {
  const ArgParser a = parse({"--scale", "abc"});
  EXPECT_THROW((void)a.get("scale", 1.0), std::invalid_argument);
  EXPECT_THROW((void)a.get("scale", std::int64_t{1}), std::invalid_argument);
}

TEST(Args, MixedPositionalsAndOptions) {
  const ArgParser a = parse({"dock", "--mh", "M2", "--out=f.pdb"});
  EXPECT_EQ(a.positionals().size(), 1u);
  EXPECT_EQ(a.get("mh"), "M2");
  EXPECT_EQ(a.get("out"), "f.pdb");
}

TEST(Args, UnknownKeysDetected) {
  const ArgParser a = parse({"--mh", "M2", "--typo", "x"});
  const auto unknown = a.unknown_keys({"mh", "node"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, EmptyArgvIsEmpty) {
  const ArgParser a = parse({});
  EXPECT_TRUE(a.positionals().empty());
  EXPECT_FALSE(a.has("anything"));
}

}  // namespace
}  // namespace metadock::util
