#include "util/json.h"

#include <gtest/gtest.h>

namespace metadock::util {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter o;
  o.begin_object().end_object();
  EXPECT_EQ(o.str(), "{}");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(Json, KeyValuePairs) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("two");
  w.key("c").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array();
  w.value(1);
  w.begin_object().key("x").value(2.5).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,{"x":2.5}]})");
}

TEST(Json, ArrayCommas) {
  JsonWriter w;
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, UnsignedAndSizeValues) {
  JsonWriter w;
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(std::size_t{7});
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,7]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
}

}  // namespace
}  // namespace metadock::util
