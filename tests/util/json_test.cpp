#include "util/json.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

namespace metadock::util {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter o;
  o.begin_object().end_object();
  EXPECT_EQ(o.str(), "{}");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(Json, KeyValuePairs) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("two");
  w.key("c").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array();
  w.value(1);
  w.begin_object().key("x").value(2.5).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,{"x":2.5}]})");
}

TEST(Json, ArrayCommas) {
  JsonWriter w;
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, UnsignedAndSizeValues) {
  JsonWriter w;
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(std::size_t{7});
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,7]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1e3").as_double(), -1000.0);
  EXPECT_EQ(JsonValue::parse("42").as_int64(), 42);
  EXPECT_EQ(JsonValue::parse("42").as_uint64(), 42u);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonReader, ParsesContainersAndLookup) {
  const JsonValue v = JsonValue::parse(R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int64(), 1);
  const auto& arr = v.at("b").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").as_double(), 2.5);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::out_of_range);
}

TEST(JsonReader, FallbackAccessors) {
  const JsonValue v = JsonValue::parse(R"({"n":7,"s":"str","b":true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("nope", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "dflt"), "str");
  EXPECT_EQ(v.string_or("nope", "dflt"), "dflt");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("nope", false));
  // Wrong-typed members also yield the fallback.
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\tA")").as_string(), "a\"b\\c\nd\tA");
}

TEST(JsonReader, RoundtripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("lig \"x\"\n");
  w.key("score").value_exact(-12.345678901234567);
  w.key("ids").begin_array().value(1).value(2).end_array();
  w.end_object();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("name").as_string(), "lig \"x\"\n");
  EXPECT_EQ(v.at("score").as_double(), -12.345678901234567);
  EXPECT_EQ(v.at("ids").as_array().size(), 2u);
}

TEST(JsonReader, ValueExactRoundtripsAwkwardDoubles) {
  // 0.1 and friends do not survive the default %.10g writer; value_exact
  // must reproduce the bits for every case.
  const double cases[] = {0.1,   1.0 / 3.0, -7.23456789012345678e-300, 6.02214076e23,
                          0.0,   -0.0,      1e-9,
                          123.456789012345678, -1.5e-45};
  for (const double d : cases) {
    JsonWriter w;
    w.begin_array();
    w.value_exact(d);
    w.end_array();
    const JsonValue v = JsonValue::parse(w.str());
    const double back = v.as_array()[0].as_double();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0) << w.str();
  }
}

TEST(JsonReader, MalformedInputThrowsWithOffset) {
  const char* bad[] = {"",     "{",        "[1,",       "{\"a\":}", "tru",
                       "1.2.3", "\"unterm", "[1] extra", "{\"a\" 1}"};
  for (const char* text : bad) {
    EXPECT_THROW((void)JsonValue::parse(text), JsonParseError) << text;
  }
  try {
    (void)JsonValue::parse("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(JsonReader, TypeMismatchThrows) {
  const JsonValue v = JsonValue::parse(R"({"n":1.5})");
  EXPECT_THROW((void)v.at("n").as_string(), std::logic_error);
  EXPECT_THROW((void)v.at("n").as_int64(), std::logic_error);  // non-integral
  EXPECT_THROW((void)JsonValue::parse("-3").as_uint64(), std::logic_error);
  EXPECT_THROW((void)v.as_array(), std::logic_error);
}

TEST(JsonReader, DeepNestingIsRejectedNotCrashing) {
  std::string deep(2000, '[');
  deep += std::string(2000, ']');
  EXPECT_THROW((void)JsonValue::parse(deep), JsonParseError);
}

}  // namespace
}  // namespace metadock::util
