#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace metadock::util {
namespace {

TEST(SplitMix64, AdvancesStateAndMixes) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

TEST(SplitMix64, DeterministicForEqualStates) {
  std::uint64_t s1 = 123, s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, SpreadsSmallInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(hash_combine(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Xoshiro256, UniformMeanIsHalf) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowStaysBelow) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(31);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Xoshiro256, NormalMomentsMatchStandardNormal) {
  Xoshiro256 rng(37);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro256, NormalScalesMeanAndSigma) {
  Xoshiro256 rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Xoshiro256, BernoulliRate) {
  Xoshiro256 rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Stream, SameKeysSameStream) {
  Xoshiro256 a = stream(1, 2, 3);
  Xoshiro256 b = stream(1, 2, 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Stream, DifferentKeysIndependentStreams) {
  Xoshiro256 a = stream(1, 2, 3);
  Xoshiro256 b = stream(1, 2, 4);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Stream, KeyArityMatters) {
  Xoshiro256 a = stream(1, 2);
  Xoshiro256 b = stream(1, 2, 0);
  EXPECT_NE(a(), b());
}

// Property sweep: streams derived from many spot/generation keys never
// collide in their first output (schedule-independence relies on this).
class StreamSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamSweep, FirstDrawsAreDistinctAcrossSubkeys) {
  const std::uint64_t seed = GetParam();
  std::set<std::uint64_t> seen;
  for (std::uint64_t spot = 0; spot < 64; ++spot) {
    for (std::uint64_t gen = 0; gen < 16; ++gen) {
      Xoshiro256 rng = stream(seed, spot, gen);
      seen.insert(rng());
    }
  }
  EXPECT_EQ(seen.size(), 64u * 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSweep, ::testing::Values(0u, 1u, 42u, 0xDEADBEEFu));

}  // namespace
}  // namespace metadock::util
