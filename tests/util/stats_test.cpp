#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace metadock::util {
namespace {

TEST(StatAccumulator, EmptyIsWellDefined) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(StatAccumulator, SingleValue) {
  StatAccumulator s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmptyIsIdentity) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  StatAccumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(StatAccumulator, StddevIsSqrtVariance) {
  StatAccumulator s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

// Nearest-rank percentile, table-driven over the edge shapes that bit the
// bench reporting: one sample, two samples, exact-boundary ranks, unsorted
// input, duplicated values.
struct PercentileCase {
  const char* name;
  std::vector<double> samples;
  double p;
  double expected;
};

class PercentileTable : public ::testing::TestWithParam<PercentileCase> {};

TEST_P(PercentileTable, NearestRank) {
  const PercentileCase& c = GetParam();
  EXPECT_DOUBLE_EQ(percentile(c.samples, c.p), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Stats, PercentileTable,
    ::testing::Values(
        PercentileCase{"one_sample_p0", {42.0}, 0.0, 42.0},
        PercentileCase{"one_sample_p50", {42.0}, 50.0, 42.0},
        PercentileCase{"one_sample_p100", {42.0}, 100.0, 42.0},
        PercentileCase{"two_samples_min", {7.0, 3.0}, 0.0, 3.0},
        PercentileCase{"two_samples_median", {7.0, 3.0}, 50.0, 3.0},
        PercentileCase{"two_samples_median_plus", {7.0, 3.0}, 50.1, 7.0},
        PercentileCase{"two_samples_max", {7.0, 3.0}, 100.0, 7.0},
        PercentileCase{"unsorted_p25", {9.0, 1.0, 5.0, 3.0}, 25.0, 1.0},
        PercentileCase{"unsorted_p75", {9.0, 1.0, 5.0, 3.0}, 75.0, 5.0},
        PercentileCase{"exact_boundary_p20_of_five", {1.0, 2.0, 3.0, 4.0, 5.0}, 20.0, 1.0},
        PercentileCase{"just_past_boundary", {1.0, 2.0, 3.0, 4.0, 5.0}, 20.1, 2.0},
        PercentileCase{"duplicates", {2.0, 2.0, 2.0, 8.0}, 75.0, 2.0},
        PercentileCase{"negative_values", {-3.0, -1.0, -2.0}, 100.0, -1.0}),
    [](const ::testing::TestParamInfo<PercentileCase>& info) { return info.param.name; });

TEST(Percentile, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
}

TEST(Percentile, OutOfRangePThrows) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)percentile(one, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(one, 100.1), std::invalid_argument);
}

TEST(Percentile, DoesNotMutateInput) {
  const std::vector<double> samples{5.0, 1.0, 3.0};
  (void)percentile(samples, 50.0);
  EXPECT_EQ(samples[0], 5.0);
  EXPECT_EQ(samples[1], 1.0);
  EXPECT_EQ(samples[2], 3.0);
}

}  // namespace
}  // namespace metadock::util
