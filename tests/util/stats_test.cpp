#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace metadock::util {
namespace {

TEST(StatAccumulator, EmptyIsWellDefined) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(StatAccumulator, SingleValue) {
  StatAccumulator s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmptyIsIdentity) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  StatAccumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(StatAccumulator, StddevIsSqrtVariance) {
  StatAccumulator s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

}  // namespace
}  // namespace metadock::util
