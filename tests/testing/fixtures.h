// Shared test fixtures.
//
// Two docking problems:
//   * tiny_problem()  — a few hundred atoms; cheap enough for full numeric
//     engine runs in unit tests.
//   * paper_problem() — the real 2BSM-sized system; used by estimate-based
//     (cost-model replay) tests, where the paper's performance shape only
//     emerges at realistic batch sizes (tiny workloads are launch-overhead
//     dominated, on real GPUs as much as in the model).
#pragma once

#include "meta/engine.h"
#include "mol/synth.h"

namespace metadock::testing {

inline const meta::DockingProblem& tiny_problem() {
  static const meta::DockingProblem p = [] {
    mol::ReceptorParams rp;
    rp.atom_count = 350;
    rp.seed = 21;
    static const mol::Molecule receptor = mol::make_receptor(rp);
    mol::LigandParams lp;
    lp.atom_count = 10;
    lp.seed = 22;
    static const mol::Molecule ligand = mol::make_ligand(lp);
    return meta::make_problem(receptor, ligand, 42);
  }();
  return p;
}

inline const meta::DockingProblem& paper_problem() {
  static const meta::DockingProblem p = [] {
    static const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
    static const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
    return meta::make_problem(receptor, ligand, 42);
  }();
  return p;
}

}  // namespace metadock::testing
