// Shared test fixtures.
//
// Two docking problems:
//   * tiny_problem()  — a few hundred atoms; cheap enough for full numeric
//     engine runs in unit tests.
//   * paper_problem() — the real 2BSM-sized system; used by estimate-based
//     (cost-model replay) tests, where the paper's performance shape only
//     emerges at realistic batch sizes (tiny workloads are launch-overhead
//     dominated, on real GPUs as much as in the model).
//
// And a mixed node:
//   * mixed_node_specs()/mixed_node_runtime() — an unequal-speed
//     Kepler + Fermi device set (hertz-like; tiles to more devices by
//     alternating the two cards), with an optional fault plan attached.
#pragma once

#include <vector>

#include "gpusim/device_db.h"
#include "gpusim/fault_plan.h"
#include "gpusim/runtime.h"
#include "meta/engine.h"
#include "mol/synth.h"

namespace metadock::testing {

inline std::vector<gpusim::DeviceSpec> mixed_node_specs(int n_devices = 2) {
  std::vector<gpusim::DeviceSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_devices));
  for (int d = 0; d < n_devices; ++d) {
    specs.push_back(d % 2 == 0 ? gpusim::tesla_k40c() : gpusim::geforce_gtx580());
  }
  return specs;
}

inline gpusim::Runtime mixed_node_runtime(const gpusim::FaultPlan& plan = {},
                                          int n_devices = 2) {
  return gpusim::Runtime(mixed_node_specs(n_devices), plan);
}

inline const meta::DockingProblem& tiny_problem() {
  static const meta::DockingProblem p = [] {
    mol::ReceptorParams rp;
    rp.atom_count = 350;
    rp.seed = 21;
    static const mol::Molecule receptor = mol::make_receptor(rp);
    mol::LigandParams lp;
    lp.atom_count = 10;
    lp.seed = 22;
    static const mol::Molecule ligand = mol::make_ligand(lp);
    return meta::make_problem(receptor, ligand, 42);
  }();
  return p;
}

inline const meta::DockingProblem& paper_problem() {
  static const meta::DockingProblem p = [] {
    static const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
    static const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
    return meta::make_problem(receptor, ligand, 42);
  }();
  return p;
}

}  // namespace metadock::testing
