#include "mol/pdb.h"

#include "mol/synth.h"

#include <gtest/gtest.h>

#include <sstream>

namespace metadock::mol {
namespace {

Molecule sample() {
  Molecule m("sample");
  m.add_atom(Element::kC, {1.5f, -2.25f, 10.125f});
  m.add_atom(Element::kO, {0.0f, 0.0f, 0.0f});
  m.add_atom(Element::kCl, {-3.5f, 4.0f, 2.0f});
  return m;
}

TEST(Pdb, WriteReadRoundTripsCoordinates) {
  std::ostringstream out;
  write_pdb(out, sample());
  std::istringstream in(out.str());
  const Molecule m = read_pdb(in);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(m.position(i).x, sample().position(i).x, 1e-3f);
    EXPECT_NEAR(m.position(i).y, sample().position(i).y, 1e-3f);
    EXPECT_NEAR(m.position(i).z, sample().position(i).z, 1e-3f);
  }
}

TEST(Pdb, WriteReadRoundTripsElements) {
  std::ostringstream out;
  write_pdb(out, sample());
  std::istringstream in(out.str());
  const Molecule m = read_pdb(in);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.element(0), Element::kC);
  EXPECT_EQ(m.element(1), Element::kO);
  EXPECT_EQ(m.element(2), Element::kCl);
}

TEST(Pdb, ReadParsesAtomRecords) {
  const std::string pdb =
      "ATOM      1  CA  ALA A   1      11.104   6.134  -6.504  1.00  0.00           C\n"
      "HETATM    2  O   HOH A   2       1.000   2.000   3.000  1.00  0.00           O\n"
      "REMARK ignored line\n"
      "END\n";
  std::istringstream in(pdb);
  const Molecule m = read_pdb(in);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NEAR(m.position(0).x, 11.104f, 1e-3f);
  EXPECT_NEAR(m.position(1).z, 3.0f, 1e-3f);
  EXPECT_EQ(m.element(0), Element::kC);
  EXPECT_EQ(m.element(1), Element::kO);
}

TEST(Pdb, ElementFallsBackToAtomNameColumn) {
  // No element field (short line): infer from atom-name column, skipping
  // leading digits.
  const std::string pdb = "ATOM      1 1HB  ALA A   1       1.000   2.000   3.000\n";
  std::istringstream in(pdb);
  const Molecule m = read_pdb(in);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.element(0), Element::kH);
}

TEST(Pdb, ThrowsOnTruncatedCoordinates) {
  const std::string pdb = "ATOM      1  CA  ALA A   1      11.104\n";
  std::istringstream in(pdb);
  EXPECT_THROW((void)read_pdb(in), std::runtime_error);
}

TEST(Pdb, ThrowsOnGarbageCoordinates) {
  const std::string pdb =
      "ATOM      1  CA  ALA A   1      xxxxxxxx   6.134  -6.504  1.00  0.00           C\n";
  std::istringstream in(pdb);
  EXPECT_THROW((void)read_pdb(in), std::runtime_error);
}

TEST(Pdb, ReadFileMissingThrows) {
  EXPECT_THROW((void)read_pdb_file("/nonexistent/file.pdb"), std::runtime_error);
}

TEST(Pdb, ComplexContainsBothChainsAndTer) {
  Molecule receptor("r");
  receptor.add_atom(Element::kC, {0, 0, 0});
  Molecule ligand("l");
  ligand.add_atom(Element::kN, {5, 0, 0});
  std::ostringstream out;
  write_complex_pdb(out, receptor, ligand);
  const std::string s = out.str();
  EXPECT_NE(s.find(" A"), std::string::npos);
  EXPECT_NE(s.find(" B"), std::string::npos);
  EXPECT_NE(s.find("TER"), std::string::npos);
  EXPECT_NE(s.find("END"), std::string::npos);

  // And it parses back with both atoms.
  std::istringstream in(s);
  EXPECT_EQ(read_pdb(in).size(), 2u);
}

// Property sweep: write->read roundtrip over a variety of generated
// ligands (sizes, elements) preserves geometry to PDB's fixed precision.
class PdbRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdbRoundTrip, LibraryLigandSurvives) {
  LigandParams p;
  p.seed = GetParam();
  p.atom_count = 20 + (GetParam() % 30);
  const Molecule original = make_ligand(p);
  std::ostringstream out;
  write_pdb(out, original);
  std::istringstream in(out.str());
  const Molecule back = read_pdb(in);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.element(i), original.element(i)) << i;
    EXPECT_NEAR(back.position(i).distance(original.position(i)), 0.0f, 2e-3f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdbRoundTrip, ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(Pdb, SerialNumbersIncrease) {
  std::ostringstream out;
  write_pdb(out, sample());
  EXPECT_NE(out.str().find("HETATM    1"), std::string::npos);
  EXPECT_NE(out.str().find("HETATM    3"), std::string::npos);
}

}  // namespace
}  // namespace metadock::mol
