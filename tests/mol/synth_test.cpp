#include "mol/synth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/cell_grid.h"

namespace metadock::mol {
namespace {

TEST(SynthReceptor, ExactAtomCount) {
  ReceptorParams p;
  p.atom_count = 500;
  EXPECT_EQ(make_receptor(p).size(), 500u);
}

TEST(SynthReceptor, DeterministicInSeed) {
  ReceptorParams p;
  p.atom_count = 200;
  const Molecule a = make_receptor(p);
  const Molecule b = make_receptor(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
    EXPECT_EQ(a.element(i), b.element(i));
  }
}

TEST(SynthReceptor, DifferentSeedsDiffer) {
  ReceptorParams p1, p2;
  p1.atom_count = p2.atom_count = 100;
  p1.seed = 1;
  p2.seed = 2;
  const Molecule a = make_receptor(p1), b = make_receptor(p2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = !(a.position(i) == b.position(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthReceptor, RespectsMinimumSpacing) {
  ReceptorParams p;
  p.atom_count = 400;
  p.min_spacing = 1.7;
  const Molecule m = make_receptor(p);
  const auto pts = m.positions();
  const geom::CellGrid grid = geom::CellGrid::over_points(pts, 2.0f);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    // Each atom's closest neighbour must be >= min_spacing away (allow
    // epsilon; positions went through float).
    std::size_t close = grid.count_within(pts[i], static_cast<float>(p.min_spacing) - 0.01f);
    EXPECT_EQ(close, 1u) << "atom " << i << " has a too-close neighbour";
  }
}

TEST(SynthReceptor, CentroidAtOrigin) {
  ReceptorParams p;
  p.atom_count = 300;
  EXPECT_LT(make_receptor(p).centroid().norm(), 1e-3f);
}

TEST(SynthReceptor, RadiusMatchesDensityModel) {
  ReceptorParams p;
  p.atom_count = 1000;
  const Molecule m = make_receptor(p);
  const double expected_r =
      std::cbrt(3.0 * 1000.0 / (4.0 * std::numbers::pi * p.density));
  EXPECT_NEAR(m.radius_about_centroid(), expected_r, expected_r * 0.15);
}

TEST(SynthReceptor, ElementMixIsProteinLike) {
  ReceptorParams p;
  p.atom_count = 2000;
  const Molecule m = make_receptor(p);
  std::size_t h = 0, c = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    h += m.element(i) == Element::kH;
    c += m.element(i) == Element::kC;
  }
  EXPECT_NEAR(static_cast<double>(h) / 2000.0, 0.50, 0.05);
  EXPECT_NEAR(static_cast<double>(c) / 2000.0, 0.32, 0.05);
}

TEST(SynthReceptor, ZeroAtomsIsEmpty) {
  ReceptorParams p;
  p.atom_count = 0;
  EXPECT_TRUE(make_receptor(p).empty());
}

TEST(SynthReceptor, InvalidParamsThrow) {
  ReceptorParams p;
  p.density = 0.0;
  EXPECT_THROW((void)make_receptor(p), std::invalid_argument);
  p.density = 0.1;
  p.min_spacing = -1.0;
  EXPECT_THROW((void)make_receptor(p), std::invalid_argument);
}

TEST(SynthReceptor, ImpossiblePackingFailsLoudly) {
  ReceptorParams p;
  p.atom_count = 500;
  p.density = 0.1;
  p.min_spacing = 10.0;  // cannot pack 500 atoms 10 A apart at this density
  EXPECT_THROW((void)make_receptor(p), std::runtime_error);
}

TEST(SynthLigand, ExactAtomCount) {
  LigandParams p;
  p.atom_count = 45;
  EXPECT_EQ(make_ligand(p).size(), 45u);
}

TEST(SynthLigand, DeterministicInSeed) {
  LigandParams p;
  p.atom_count = 30;
  const Molecule a = make_ligand(p), b = make_ligand(p);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.position(i), b.position(i));
}

TEST(SynthLigand, HeavyAtomsFormConnectedSkeleton) {
  LigandParams p;
  p.atom_count = 40;
  const Molecule m = make_ligand(p);
  // Heavy atoms come first (half the set); each must have a neighbour
  // within bond length + tolerance.
  const std::size_t heavy = (p.atom_count + 1) / 2;
  for (std::size_t i = 0; i < heavy; ++i) {
    float min_d = 1e9f;
    for (std::size_t j = 0; j < heavy; ++j) {
      if (i != j) min_d = std::min(min_d, m.position(i).distance(m.position(j)));
    }
    EXPECT_LT(min_d, 1.6f) << "heavy atom " << i << " is disconnected";
  }
}

TEST(SynthLigand, CentroidAtOrigin) {
  LigandParams p;
  p.atom_count = 25;
  EXPECT_LT(make_ligand(p).centroid().norm(), 1e-3f);
}

TEST(SynthLigand, IsCompact) {
  LigandParams p;
  p.atom_count = 45;
  EXPECT_LT(make_ligand(p).radius_about_centroid(), 20.0f);
}

class DatasetTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetTest, Table5AtomCounts) {
  const Dataset ds = GetParam();
  EXPECT_EQ(make_dataset_receptor(ds).size(), ds.receptor_atoms);
  EXPECT_EQ(make_dataset_ligand(ds).size(), ds.ligand_atoms);
}

TEST_P(DatasetTest, NamesCarryPdbId) {
  const Dataset ds = GetParam();
  EXPECT_NE(make_dataset_receptor(ds).name().find(ds.pdb_id), std::string::npos);
  EXPECT_NE(make_dataset_ligand(ds).name().find(ds.pdb_id), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Table5, DatasetTest, ::testing::Values(kDataset2BSM, kDataset2BXG),
                         [](const auto& info) { return std::string(info.param.pdb_id); });

}  // namespace
}  // namespace metadock::mol
