#include "mol/library.h"

#include <gtest/gtest.h>

namespace metadock::mol {
namespace {

TEST(Library, ProducesRequestedCount) {
  LibraryParams p;
  p.count = 12;
  EXPECT_EQ(make_ligand_library(p).size(), 12u);
}

TEST(Library, AtomCountsWithinRange) {
  LibraryParams p;
  p.count = 20;
  p.min_atoms = 15;
  p.max_atoms = 40;
  for (const Molecule& m : make_ligand_library(p)) {
    EXPECT_GE(m.size(), 15u);
    EXPECT_LE(m.size(), 40u);
  }
}

TEST(Library, SizesVaryAcrossLigands) {
  LibraryParams p;
  p.count = 30;
  p.min_atoms = 10;
  p.max_atoms = 60;
  std::size_t min_seen = 1000, max_seen = 0;
  for (const Molecule& m : make_ligand_library(p)) {
    min_seen = std::min(min_seen, m.size());
    max_seen = std::max(max_seen, m.size());
  }
  EXPECT_LT(min_seen, max_seen);
}

TEST(Library, DeterministicInSeed) {
  LibraryParams p;
  p.count = 5;
  const auto a = make_ligand_library(p);
  const auto b = make_ligand_library(p);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(a[i].position(0), b[i].position(0));
  }
}

TEST(Library, LigandsAreNamedByIndex) {
  LibraryParams p;
  p.count = 3;
  const auto lib = make_ligand_library(p);
  EXPECT_EQ(lib[0].name(), "lig-0");
  EXPECT_EQ(lib[2].name(), "lig-2");
}

TEST(Library, InvalidRangeThrows) {
  LibraryParams p;
  p.min_atoms = 50;
  p.max_atoms = 10;
  EXPECT_THROW((void)make_ligand_library(p), std::invalid_argument);
  p.min_atoms = 0;
  EXPECT_THROW((void)make_ligand_library(p), std::invalid_argument);
}

TEST(Library, ZeroCountIsEmpty) {
  LibraryParams p;
  p.count = 0;
  EXPECT_TRUE(make_ligand_library(p).empty());
}

}  // namespace
}  // namespace metadock::mol
