#include "mol/conformers.h"

#include <gtest/gtest.h>

#include "mol/synth.h"

namespace metadock::mol {
namespace {

Molecule test_ligand(std::size_t atoms = 30, std::uint64_t seed = 5) {
  LigandParams p;
  p.atom_count = atoms;
  p.seed = seed;
  return make_ligand(p);
}

TEST(Conformers, RotateTorsionMovesOnlyDownstream) {
  // Kinked chain C0-C1-C2-C3 (collinear chains rotate onto themselves);
  // rotate about C1-C2.
  Molecule m("chain");
  m.add_atom(Element::kC, {0, 0, 0});
  m.add_atom(Element::kC, {1.5f, 0, 0});
  m.add_atom(Element::kC, {2.3f, 1.3f, 0});
  m.add_atom(Element::kC, {3.8f, 1.3f, 0});
  const auto bonds = infer_bonds(m);
  ASSERT_EQ(bonds.size(), 3u);
  const Molecule before = m;
  rotate_torsion(m, bonds, {1, 2}, 1.0f);
  EXPECT_EQ(m.position(0), before.position(0));
  EXPECT_EQ(m.position(1), before.position(1));
  // The axis atom stays; the tail moves.
  EXPECT_NEAR(m.position(2).distance(before.position(2)), 0.0f, 1e-5f);
  EXPECT_GT(m.position(3).distance(before.position(3)), 0.05f);
}

TEST(Conformers, RotationPreservesBondLengths) {
  Molecule m = test_ligand();
  const auto bonds = infer_bonds(m);
  const auto torsions = rotatable_bonds(m, bonds);
  ASSERT_FALSE(torsions.empty());
  std::vector<float> before;
  for (const Bond& b : bonds) before.push_back(m.position(b.a).distance(m.position(b.b)));
  rotate_torsion(m, bonds, torsions.front(), 2.0f);
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    EXPECT_NEAR(m.position(bonds[i].a).distance(m.position(bonds[i].b)), before[i], 1e-4f);
  }
}

TEST(Conformers, FullTurnIsIdentity) {
  Molecule m = test_ligand();
  const Molecule before = m;
  const auto bonds = infer_bonds(m);
  const auto torsions = rotatable_bonds(m, bonds);
  ASSERT_FALSE(torsions.empty());
  rotate_torsion(m, bonds, torsions.front(), 2.0f * 3.14159265358979f);
  EXPECT_NEAR(rmsd(m, before), 0.0, 1e-4);
}

TEST(Conformers, EnsembleHasRequestedSizeAndKeepsInput) {
  const Molecule lig = test_ligand();
  ConformerParams p;
  p.count = 6;
  const auto ensemble = generate_conformers(lig, p);
  ASSERT_EQ(ensemble.size(), 6u);
  Molecule centered = lig;
  centered.center_at_origin();
  EXPECT_NEAR(rmsd(ensemble[0], centered), 0.0, 1e-5);
  for (const Molecule& c : ensemble) EXPECT_EQ(c.size(), lig.size());
}

TEST(Conformers, EnsembleIsDiverse) {
  const Molecule lig = test_ligand(40);
  ConformerParams p;
  p.count = 6;
  const auto ensemble = generate_conformers(lig, p);
  int distinct = 0;
  for (std::size_t i = 1; i < ensemble.size(); ++i) {
    if (rmsd(ensemble[i], ensemble[0]) > 0.3) ++distinct;
  }
  EXPECT_GE(distinct, 3);
}

TEST(Conformers, ConformersIntroduceNoNewClashes) {
  const Molecule lig = test_ligand(40);
  ConformerParams p;
  p.count = 8;
  const auto ensemble = generate_conformers(lig, p);
  const auto bonds = infer_bonds(ensemble[0]);
  const std::size_t base = count_clashes(ensemble[0], bonds, p.clash_vdw_fraction);
  for (const Molecule& c : ensemble) {
    EXPECT_LE(count_clashes(c, bonds, p.clash_vdw_fraction), base);
  }
}

TEST(Conformers, CountClashesDetectsOverlap) {
  // Two carbons far beyond bonding range but closer than the vdW limit
  // would require an intermediate topology; build a 5-atom chain folded
  // back on itself.
  Molecule m("fold");
  m.add_atom(Element::kC, {0, 0, 0});
  m.add_atom(Element::kC, {1.5f, 0, 0});
  m.add_atom(Element::kC, {2.3f, 1.3f, 0});
  m.add_atom(Element::kC, {1.5f, 2.6f, 0});
  m.add_atom(Element::kC, {0.0f, 2.6f, 0});
  const auto bonds = infer_bonds(m);
  // Atom 0 and atom 4 are 4 bonds apart and only 2.6 A apart in space:
  // below 0.55 * (1.7 + 1.7) = 1.87?  2.6 > 1.87, so no clash yet.
  EXPECT_EQ(count_clashes(m, bonds, 0.55f), 0u);
  // With a generous fraction the same pair registers as a clash.
  EXPECT_GE(count_clashes(m, bonds, 0.9f), 1u);
}

TEST(Conformers, DeterministicInSeed) {
  const Molecule lig = test_ligand();
  ConformerParams p;
  p.count = 4;
  const auto a = generate_conformers(lig, p);
  const auto b = generate_conformers(lig, p);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(rmsd(a[i], b[i]), 0.0, 1e-9);
}

TEST(Conformers, SeedChangesEnsemble) {
  const Molecule lig = test_ligand(40);
  ConformerParams p1, p2;
  p1.count = p2.count = 4;
  p2.seed = 99;
  const auto a = generate_conformers(lig, p1);
  const auto b = generate_conformers(lig, p2);
  EXPECT_GT(rmsd(a[1], b[1]), 1e-3);
}

TEST(Conformers, RigidMoleculeYieldsCopies) {
  Molecule rigid("co");  // a two-atom molecule has no rotatable bonds
  rigid.add_atom(Element::kC, {0, 0, 0});
  rigid.add_atom(Element::kO, {1.2f, 0, 0});
  const auto ensemble = generate_conformers(rigid, {});
  ASSERT_EQ(ensemble.size(), ConformerParams{}.count);
  for (const Molecule& c : ensemble) EXPECT_NEAR(rmsd(c, ensemble[0]), 0.0, 1e-6);
}

TEST(Conformers, EmptyInputThrows) {
  EXPECT_THROW((void)generate_conformers(Molecule{}, {}), std::invalid_argument);
}

TEST(Conformers, RmsdValidation) {
  Molecule a("a"), b("b");
  a.add_atom(Element::kC, {0, 0, 0});
  EXPECT_THROW((void)rmsd(a, b), std::invalid_argument);
  b.add_atom(Element::kC, {3, 4, 0});
  EXPECT_NEAR(rmsd(a, b), 5.0, 1e-6);
}

}  // namespace
}  // namespace metadock::mol
