#include "mol/atom.h"

#include <gtest/gtest.h>

namespace metadock::mol {
namespace {

TEST(Atom, LjParamsArePositiveForAllElements) {
  for (int i = 0; i < kElementCount; ++i) {
    const LjParams p = lj_params(static_cast<Element>(i));
    EXPECT_GT(p.rmin_half, 0.0f);
    EXPECT_GT(p.epsilon, 0.0f);
  }
}

TEST(Atom, VdwRadiiAreChemicallyOrdered) {
  // Hydrogen is the smallest; sulfur larger than oxygen.
  EXPECT_LT(vdw_radius(Element::kH), vdw_radius(Element::kC));
  EXPECT_LT(vdw_radius(Element::kO), vdw_radius(Element::kS));
}

TEST(Atom, SymbolRoundTripsForAllElements) {
  for (int i = 0; i < kElementCount - 1; ++i) {
    const auto e = static_cast<Element>(i);
    if (e == Element::kOther) continue;
    EXPECT_EQ(element_from_symbol(element_symbol(e)), e) << element_symbol(e);
  }
}

TEST(Atom, SymbolParsingIsCaseAndSpaceInsensitive) {
  EXPECT_EQ(element_from_symbol(" c "), Element::kC);
  EXPECT_EQ(element_from_symbol("cl"), Element::kCl);
  EXPECT_EQ(element_from_symbol("Cl"), Element::kCl);
  EXPECT_EQ(element_from_symbol("BR"), Element::kBr);
}

TEST(Atom, UnknownSymbolsMapToOther) {
  EXPECT_EQ(element_from_symbol("Zz"), Element::kOther);
  EXPECT_EQ(element_from_symbol(""), Element::kOther);
  EXPECT_EQ(element_from_symbol("Fe"), Element::kOther);
}

TEST(Atom, HydrogenHasShallowestWell) {
  for (int i = 1; i < kElementCount; ++i) {
    EXPECT_LE(lj_params(Element::kH).epsilon, lj_params(static_cast<Element>(i)).epsilon);
  }
}

}  // namespace
}  // namespace metadock::mol
