#include "mol/molecule.h"

#include <gtest/gtest.h>

#include <numbers>

namespace metadock::mol {
namespace {

Molecule three_atoms() {
  Molecule m("m");
  m.add_atom(Element::kC, {0, 0, 0}, 0.1f);
  m.add_atom(Element::kO, {3, 0, 0}, -0.5f);
  m.add_atom(Element::kN, {0, 3, 0}, -0.3f);
  return m;
}

TEST(Molecule, SizeAndAccessors) {
  const Molecule m = three_atoms();
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.element(1), Element::kO);
  EXPECT_FLOAT_EQ(m.charge(1), -0.5f);
  EXPECT_EQ(m.position(2), geom::Vec3(0, 3, 0));
  EXPECT_EQ(m.name(), "m");
}

TEST(Molecule, SpansMatchAtoms) {
  const Molecule m = three_atoms();
  EXPECT_EQ(m.xs().size(), 3u);
  EXPECT_FLOAT_EQ(m.xs()[1], 3.0f);
  EXPECT_FLOAT_EQ(m.ys()[2], 3.0f);
  EXPECT_EQ(m.elements()[0], Element::kC);
}

TEST(Molecule, CentroidIsMeanPosition) {
  const Molecule m = three_atoms();
  const geom::Vec3 c = m.centroid();
  EXPECT_NEAR(c.x, 1.0f, 1e-6f);
  EXPECT_NEAR(c.y, 1.0f, 1e-6f);
  EXPECT_NEAR(c.z, 0.0f, 1e-6f);
}

TEST(Molecule, EmptyCentroidIsOrigin) {
  const Molecule m;
  EXPECT_EQ(m.centroid(), geom::Vec3(0, 0, 0));
}

TEST(Molecule, BoundsCoverAllAtoms) {
  const Molecule m = three_atoms();
  const geom::Aabb b = m.bounds();
  EXPECT_EQ(b.lo, geom::Vec3(0, 0, 0));
  EXPECT_EQ(b.hi, geom::Vec3(3, 3, 0));
}

TEST(Molecule, TranslateMovesEveryAtom) {
  Molecule m = three_atoms();
  m.translate({1, 2, 3});
  EXPECT_EQ(m.position(0), geom::Vec3(1, 2, 3));
  EXPECT_EQ(m.position(1), geom::Vec3(4, 2, 3));
}

TEST(Molecule, CenterAtOriginZerosCentroid) {
  Molecule m = three_atoms();
  m.center_at_origin();
  EXPECT_NEAR(m.centroid().norm(), 0.0f, 1e-5f);
}

TEST(Molecule, TransformRotatesAboutOrigin) {
  Molecule m("t");
  m.add_atom(Element::kC, {1, 0, 0});
  geom::Transform t;
  t.rotation = geom::Quat::axis_angle({0, 0, 1}, std::numbers::pi_v<float> / 2);
  m.transform(t);
  EXPECT_NEAR(m.position(0).x, 0.0f, 1e-5f);
  EXPECT_NEAR(m.position(0).y, 1.0f, 1e-5f);
}

TEST(Molecule, RadiusAboutCentroid) {
  Molecule m("r");
  m.add_atom(Element::kC, {-2, 0, 0});
  m.add_atom(Element::kC, {2, 0, 0});
  EXPECT_NEAR(m.radius_about_centroid(), 2.0f, 1e-5f);
}

TEST(Molecule, TranslationPreservesRadius) {
  Molecule m = three_atoms();
  const float r = m.radius_about_centroid();
  m.translate({100, -50, 25});
  EXPECT_NEAR(m.radius_about_centroid(), r, 1e-3f);
}

TEST(Molecule, PayloadBytesScaleWithSize) {
  const Molecule m = three_atoms();
  EXPECT_EQ(m.payload_bytes(), 3u * (3 * 4 + 4 + 1));
}

TEST(Molecule, ReserveDoesNotChangeSize) {
  Molecule m;
  m.reserve(100);
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace metadock::mol
