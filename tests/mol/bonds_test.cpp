#include "mol/bonds.h"

#include <gtest/gtest.h>

#include "mol/synth.h"

namespace metadock::mol {
namespace {

/// A butane-like chain: four carbons at 1.5 A spacing along x.
Molecule carbon_chain(int n = 4) {
  Molecule m("chain");
  for (int i = 0; i < n; ++i) {
    m.add_atom(Element::kC, {1.5f * static_cast<float>(i), 0, 0});
  }
  return m;
}

/// A triangle ring of three carbons.
Molecule ring3() {
  Molecule m("ring");
  m.add_atom(Element::kC, {0, 0, 0});
  m.add_atom(Element::kC, {1.5f, 0, 0});
  m.add_atom(Element::kC, {0.75f, 1.3f, 0});
  return m;
}

TEST(Bonds, ChainHasSequentialBonds) {
  const Molecule m = carbon_chain();
  const auto bonds = infer_bonds(m);
  ASSERT_EQ(bonds.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bonds[i].a, i);
    EXPECT_EQ(bonds[i].b, i + 1);
  }
}

TEST(Bonds, DistantAtomsAreNotBonded) {
  Molecule m("far");
  m.add_atom(Element::kC, {0, 0, 0});
  m.add_atom(Element::kC, {3.0f, 0, 0});
  EXPECT_TRUE(infer_bonds(m).empty());
}

TEST(Bonds, HydrogenBondLengthIsShorter) {
  Molecule m("ch");
  m.add_atom(Element::kC, {0, 0, 0});
  m.add_atom(Element::kH, {1.1f, 0, 0});  // typical C-H
  EXPECT_EQ(infer_bonds(m).size(), 1u);
  Molecule far("ch2");
  far.add_atom(Element::kC, {0, 0, 0});
  far.add_atom(Element::kH, {1.9f, 0, 0});  // too far for C-H
  EXPECT_TRUE(infer_bonds(far).empty());
}

TEST(Bonds, AdjacencyIsSymmetric) {
  const Molecule m = carbon_chain();
  const auto adj = adjacency(m, infer_bonds(m));
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_EQ(adj[0].size(), 1u);
  EXPECT_EQ(adj[1].size(), 2u);
  EXPECT_EQ(adj[2].size(), 2u);
  EXPECT_EQ(adj[3].size(), 1u);
}

TEST(Bonds, ChainMiddleBondIsRotatable) {
  const Molecule m = carbon_chain();
  const auto bonds = infer_bonds(m);
  const auto rot = rotatable_bonds(m, bonds);
  // Only C1-C2 is rotatable: C0-C1 and C2-C3 end in terminal heavy atoms.
  ASSERT_EQ(rot.size(), 1u);
  EXPECT_EQ(rot[0].a, 1u);
  EXPECT_EQ(rot[0].b, 2u);
}

TEST(Bonds, RingBondsAreNotRotatable) {
  const Molecule m = ring3();
  const auto bonds = infer_bonds(m);
  ASSERT_EQ(bonds.size(), 3u);
  EXPECT_TRUE(rotatable_bonds(m, bonds).empty());
}

TEST(Bonds, DownstreamAtomsOfChainBond) {
  const Molecule m = carbon_chain();
  const auto bonds = infer_bonds(m);
  const auto down = downstream_atoms(m, bonds, {1, 2});
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], 2u);
  EXPECT_EQ(down[1], 3u);
}

TEST(Bonds, DownstreamOnRingThrows) {
  const Molecule m = ring3();
  const auto bonds = infer_bonds(m);
  EXPECT_THROW((void)downstream_atoms(m, bonds, bonds[0]), std::invalid_argument);
}

TEST(Bonds, SyntheticLigandIsConnected) {
  LigandParams p;
  p.atom_count = 30;
  const Molecule lig = make_ligand(p);
  const auto bonds = infer_bonds(lig);
  // Heavy skeleton is chain-grown at bond length; every atom bonded.
  const auto adj = adjacency(lig, bonds);
  std::size_t isolated = 0;
  for (const auto& nbrs : adj) isolated += nbrs.empty();
  EXPECT_EQ(isolated, 0u);
}

TEST(Bonds, SyntheticLigandHasRotatableBonds) {
  LigandParams p;
  p.atom_count = 40;
  const Molecule lig = make_ligand(p);
  EXPECT_FALSE(rotatable_bonds(lig, infer_bonds(lig)).empty());
}

}  // namespace
}  // namespace metadock::mol
