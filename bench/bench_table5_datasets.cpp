// Reproduces Table 5: atom counts of the benchmark compounds, as produced
// by the synthetic generators, plus the surface-spot counts the screening
// pipeline derives from them.
#include "meta/engine.h"
#include "mol/synth.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  Table t("Table 5 — benchmark compounds (synthetic equivalents)");
  t.header({"Compound", "Atoms", "Radius A", "Surface spots"});
  for (const mol::Dataset& ds : {mol::kDataset2BSM, mol::kDataset2BXG}) {
    const mol::Molecule receptor = mol::make_dataset_receptor(ds);
    const mol::Molecule ligand = mol::make_dataset_ligand(ds);
    const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
    t.row({std::string(ds.pdb_id) + " Receptor", std::to_string(receptor.size()),
           Table::num(receptor.radius_about_centroid(), 1),
           std::to_string(problem.spots.size())});
    t.row({std::string(ds.pdb_id) + " Ligand", std::to_string(ligand.size()),
           Table::num(ligand.radius_about_centroid(), 1), "-"});
  }
  t.print();
  return 0;
}
