// Reproduces Table 1: CUDA summary by hardware generation — multiprocessor
// counts, cores, shared memory, CCC, peak single-precision GFLOPS and the
// normalized performance-per-watt trend.
#include <string>

#include "gpusim/device_db.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  Table t("Table 1 — CUDA summary by generation");
  t.header({"Generation", "Year", "SMs (up to)", "Cores/SM", "Total cores",
            "Shared KB", "CCC", "Peak GFLOPS", "Perf/W (norm.)"});
  for (const gpusim::DeviceSpec& d : gpusim::generation_cards()) {
    t.row({std::string(gpusim::arch_name(d.arch)), std::to_string(gpusim::arch_year(d.arch)),
           std::to_string(d.sm_count), std::to_string(d.cores_per_sm),
           std::to_string(d.total_cores()), std::to_string(d.shared_mem_per_sm_kb),
           std::to_string(d.ccc_major()) + ".x", Table::num(d.peak_gflops(), 0),
           Table::num(gpusim::arch_perf_per_watt(d.arch), 0)});
  }
  t.print();
  return 0;
}
