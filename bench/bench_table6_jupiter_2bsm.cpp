// Reproduces Table 6: execution time (seconds) for protein PDB:2BSM on
// Jupiter — OpenMP baseline, homogeneous system (4x GTX 590), heterogeneous
// system (4x GTX 590 + 2x Tesla C2075) under homogeneous and heterogeneous
// computation, with the paper's two speed-up columns.
#include "vs/experiment.h"

int main() {
  metadock::vs::print_experiment_table(
      metadock::vs::run_jupiter_table(metadock::mol::kDataset2BSM));
  return 0;
}
