// Reproduces Table 9: execution time (seconds) for protein PDB:2BXG on
// Hertz (Tesla K40c + GeForce GTX 580) — the paper's largest speed-ups
// (up to 120x over OpenMP) with two GPUs matching six on Jupiter.
#include "vs/experiment.h"

int main() {
  metadock::vs::print_experiment_table(
      metadock::vs::run_hertz_table(metadock::mol::kDataset2BXG));
  return 0;
}
