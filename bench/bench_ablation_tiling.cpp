// Ablation: shared-memory tiling on vs off.
//
// The paper: "Our CUDA implementations take advantage of data-locality
// through tilling implementation via shared memory, which benefits the
// receptor scalability."  With tiling, a block streams the receptor from
// DRAM once for all of its warps; without it, every warp (conformation)
// streams the receptor itself.  This bench times one M1 generation batch on
// each evaluation GPU for both kernels and both datasets.
#include <cstdio>

#include "gpusim/device_db.h"
#include "gpusim/scoring_kernel.h"
#include "meta/engine.h"
#include "mol/synth.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  for (const mol::Dataset& ds : {mol::kDataset2BSM, mol::kDataset2BXG}) {
    const mol::Molecule receptor = mol::make_dataset_receptor(ds);
    const mol::Molecule ligand = mol::make_dataset_ligand(ds);
    const scoring::LennardJonesScorer scorer(receptor, ligand);
    const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
    const std::size_t batch = 64 * problem.spots.size();  // one M1 generation

    Table t("Tiling ablation — " + std::string(ds.pdb_id) + " (" + std::to_string(batch) +
            " conformations per launch)");
    t.header({"GPU", "tiled ms", "naive ms", "tiled speed-up"});
    for (const gpusim::DeviceSpec& spec : gpusim::evaluation_cards()) {
      gpusim::ScoringKernelOptions tiled, naive;
      naive.tiled = false;
      gpusim::Device dt(spec), dn(spec);
      gpusim::DeviceScoringKernel kt(dt, scorer, tiled);
      gpusim::DeviceScoringKernel kn(dn, scorer, naive);
      const double t0 = dt.busy_seconds(), n0 = dn.busy_seconds();
      kt.score_cost_only(batch);
      kn.score_cost_only(batch);
      const double t_tiled = dt.busy_seconds() - t0;
      const double t_naive = dn.busy_seconds() - n0;
      t.row({spec.name, Table::num(t_tiled * 1e3), Table::num(t_naive * 1e3),
             Table::num(t_naive / t_tiled)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
