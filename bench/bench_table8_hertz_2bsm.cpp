// Reproduces Table 8: execution time (seconds) for protein PDB:2BSM on
// Hertz (Tesla K40c + GeForce GTX 580).  This node's GPU heterogeneity is
// high (Kepler vs Fermi), so the heterogeneous algorithm's gain over the
// homogeneous split is large — up to 1.56x in the paper.
#include "vs/experiment.h"

int main() {
  metadock::vs::print_experiment_table(
      metadock::vs::run_hertz_table(metadock::mol::kDataset2BSM));
  return 0;
}
