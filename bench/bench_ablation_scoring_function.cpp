// Ablation: scoring-function choice (the paper's closing remark — "with
// many other types of scoring functions still to be explored, this field
// seems to offer a promising ... area of research").
//
// Runs the same M3 docking (identical seeds, spots and schedule) under
// three scoring functions on the host and compares real wall-clock cost
// per evaluation and the resulting best energies:
//   * full LJ pair sum (the paper's function),
//   * cutoff LJ (8 A),
//   * precomputed AutoDock-style grid with trilinear interpolation.
#include <cstdio>
#include <vector>

#include "meta/engine.h"
#include "meta/evaluator.h"
#include "mol/synth.h"
#include "scoring/grid_scorer.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace metadock;
  using util::Table;

  // Host wall-clock bench: keep the system small enough to run in seconds.
  mol::ReceptorParams rp;
  rp.atom_count = 1024;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 24;
  const mol::Molecule ligand = mol::make_ligand(lp);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

  meta::MetaheuristicParams params = meta::m3_scatter_light();
  params.population_per_spot = 16;
  params.generations = 6;
  const meta::MetaheuristicEngine engine(params);

  Table t("Scoring-function ablation — " + std::to_string(receptor.size()) +
          "-atom receptor, " + std::to_string(problem.spots.size()) + " spots, M3");
  t.header({"scoring function", "setup s", "docking s", "us/eval", "best energy"});

  auto run_with = [&](const char* name, meta::Evaluator& eval, double setup_s) {
    util::WallTimer timer;
    const meta::RunResult r = engine.run(problem, eval);
    const double dock_s = timer.seconds();
    t.row({name, Table::num(setup_s, 3), Table::num(dock_s, 3),
           Table::num(dock_s * 1e6 / static_cast<double>(r.evaluations), 2),
           Table::num(r.best.score, 3)});
  };

  {
    util::WallTimer setup;
    const scoring::LennardJonesScorer full(receptor, ligand);
    const double setup_s = setup.seconds();
    meta::DirectEvaluator eval(full);
    run_with("full LJ pair sum", eval, setup_s);
  }
  {
    util::WallTimer setup;
    scoring::ScoringOptions opt;
    opt.cutoff = 8.0f;
    const scoring::LennardJonesScorer cut(receptor, ligand, opt);
    const double setup_s = setup.seconds();
    meta::DirectEvaluator eval(cut);
    run_with("cutoff LJ (8 A)", eval, setup_s);
  }
  {
    util::WallTimer setup;
    scoring::GridScorerOptions gopt;
    gopt.spacing = 0.5f;  // balance build time vs accuracy for this bench
    const scoring::GridScorer grid(receptor, ligand, gopt);
    const double setup_s = setup.seconds();
    meta::CallableEvaluator eval(
        [&grid](std::span<const scoring::Pose> poses, std::span<double> out) {
          grid.score_batch(poses, out);
        });
    run_with("precomputed grid (0.5 A)", eval, setup_s);
    std::printf("grid: %zu points, %zu probe grids, %.1f MB\n", grid.grid_points(),
                grid.grids_built(), static_cast<double>(grid.payload_bytes()) / 1e6);
  }
  t.print();
  std::printf("\nthe grid amortizes its build cost once evaluations dominate — the\n"
              "classic memory-for-compute trade of docking codes.\n");
  return 0;
}
