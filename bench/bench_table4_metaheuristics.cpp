// Reproduces Table 4: the algorithm parameters of the four metaheuristics,
// plus the derived relative work (evaluations per spot, normalized to M1)
// that underlies the relative execution times of Tables 6-9.
#include "meta/params.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const auto presets = meta::table4_presets();
  const double m1 = presets[0].expected_evals_per_spot();

  Table t("Table 4 — metaheuristic parameters");
  t.header({"Metaheuristic", "Initial population (S)", "% selected for Ssel", "% improved",
            "LS steps", "Generations", "Evals/spot", "Work vs M1"});
  for (const meta::MetaheuristicParams& p : presets) {
    t.row({p.name, std::to_string(p.population_per_spot) + "*spots",
           p.population_based ? Table::num(p.select_fraction * 100.0, 0) + "%"
                              : "does not apply",
           Table::num(p.improve_fraction * 100.0, 0) + "%", std::to_string(p.improve_steps),
           std::to_string(p.generations), Table::num(p.expected_evals_per_spot(), 0),
           Table::num(p.expected_evals_per_spot() / m1, 2) + "x"});
  }
  t.print();
  return 0;
}
