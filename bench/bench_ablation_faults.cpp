// Ablation: degraded-node throughput under injected faults.
//
// Sweeps the transient failure probability and the number of devices killed
// mid-run on both evaluation nodes (M1, 2BSM), reporting the makespan
// penalty relative to the fault-free heterogeneous run plus the fault
// accounting (retries, re-splits, time lost).  This quantifies what the
// retry/quarantine/re-split machinery costs — and what it saves, since a
// fault-free scheduler would simply not finish these runs.
#include <cstdio>
#include <string>

#include "meta/engine.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const meta::MetaheuristicParams params = meta::m1_genetic();
  const mol::Dataset ds = mol::kDataset2BSM;
  const mol::Molecule receptor = mol::make_dataset_receptor(ds);
  const mol::Molecule ligand = mol::make_dataset_ligand(ds);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

  for (const sched::NodeConfig& node : {sched::hertz(), sched::jupiter()}) {
    sched::ExecutorOptions base;
    base.strategy = sched::Strategy::kHeterogeneous;
    const sched::ExecutionReport clean =
        sched::NodeExecutor(node, base).estimate(problem, params);

    Table t("Fault ablation — " + node.name + ", " + ds.pdb_id + ", M1 heterogeneous");
    t.header({"fault schedule", "makespan s", "slowdown", "retries", "re-splits",
              "time lost s"});
    t.row({"fault-free", Table::num(clean.makespan_seconds), "1.00", "0", "0", "0"});

    // Transient failure-rate sweep: every device flaky with probability p.
    for (const double p : {0.01, 0.05, 0.1, 0.2}) {
      sched::ExecutorOptions opt = base;
      opt.fault_plan.set_seed(29);
      for (int d = 0; d < node.gpu_count(); ++d) opt.fault_plan.transient(d, p);
      const sched::ExecutionReport r =
          sched::NodeExecutor(node, opt).estimate(problem, params);
      char label[64];
      std::snprintf(label, sizeof label, "transient p=%.2f on all GPUs", p);
      t.row({label, Table::num(r.makespan_seconds),
             Table::num(r.makespan_seconds / clean.makespan_seconds),
             std::to_string(r.faults.retries), std::to_string(r.faults.resplits),
             Table::num(r.faults.time_lost_seconds, 4)});
    }

    // Device-death sweep: kill 1..2 cards halfway through the clean run.
    const double mid = 0.5 * clean.makespan_seconds;
    for (int killed = 1; killed <= 2 && killed < node.gpu_count(); ++killed) {
      sched::ExecutorOptions opt = base;
      for (int d = 0; d < killed; ++d) opt.fault_plan.kill(d, mid);
      const sched::ExecutionReport r =
          sched::NodeExecutor(node, opt).estimate(problem, params);
      t.row({std::to_string(killed) + " device(s) dead at t=" + Table::num(mid, 2),
             Table::num(r.makespan_seconds),
             Table::num(r.makespan_seconds / clean.makespan_seconds),
             std::to_string(r.faults.retries), std::to_string(r.faults.resplits),
             Table::num(r.faults.time_lost_seconds, 4)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
