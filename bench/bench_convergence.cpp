// Solution-quality convergence of the four metaheuristics.
//
// The paper evaluates wall-clock only; this bench adds the quality axis the
// metaheuristic choice actually trades against: best binding energy found
// as a function of scoring evaluations spent, per Table 4 preset, under
// identical seeds and spots.  Real numeric docking on a reduced system so
// it finishes in seconds.
#include <cstdio>

#include "meta/engine.h"
#include "meta/evaluator.h"
#include "mol/synth.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  mol::ReceptorParams rp;
  rp.atom_count = 800;
  const mol::Molecule receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = 20;
  const mol::Molecule ligand = mol::make_ligand(lp);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const scoring::LennardJonesScorer scorer(receptor, ligand);

  Table t("Best energy vs evaluation budget — " + std::to_string(problem.spots.size()) +
          " spots (lower is better)");
  t.header({"metaheuristic", "~25% budget", "~50% budget", "full budget", "evals (full)"});

  for (const meta::MetaheuristicParams& preset : meta::table4_presets()) {
    // Shrink each preset uniformly so the full budget is ~80k evaluations.
    meta::MetaheuristicParams base = preset;
    base.population_per_spot = preset.population_based ? 16 : 128;
    const double target = 80000.0 / static_cast<double>(problem.spots.size());
    const double full_evals = base.expected_evals_per_spot();
    meta::MetaheuristicParams full = base.scaled(std::min(1.0, target / full_evals));

    std::vector<std::string> row{preset.name};
    std::uint64_t full_count = 0;
    for (const double fraction : {0.25, 0.5, 1.0}) {
      const meta::MetaheuristicParams p = full.scaled(fraction);
      meta::DirectEvaluator eval(scorer);
      const meta::RunResult r = meta::MetaheuristicEngine(p).run(problem, eval);
      row.push_back(Table::num(r.best.score, 3));
      full_count = r.evaluations;
    }
    row.push_back(std::to_string(full_count));
    t.row(row);
  }
  t.print();
  std::printf("\nM3's selective local search (improve only the best fifth) is the most\n"
              "evaluation-efficient; M4's pure multi-start local search pays for skipping\n"
              "recombination — hybrid metaheuristics earn their complexity.\n");
  return 0;
}
