// Multi-node scaling — the event-driven cluster simulator (DESIGN.md §15).
//
// Screens a 1536-ligand 2BSM campaign on simulated clusters of 8/32/128
// mixed nodes (1x Jupiter : 3x Hertz) under all four distribution policies,
// in two fault arms:
//
//   * fault-free  — healthy cluster;
//   * node-death  — node 1 straggles 8x a quarter into the campaign, and
//     nodes 2 and 5 die outright at 1/3 and 1/2 of the reference makespan
//     (the reference is the fault-free proportional-split run of that
//     cluster size, so fault times scale with N).
//
// Every number is virtual time from the shared clock, so the emitted
// BENCH_cluster.json is deterministic and tools/check_bench_cluster.py can
// hold hard gates against it: stealing must keep >= 70% scaling efficiency
// at 32 nodes fault-free, and must beat the dynamic master/worker on
// makespan at 32 nodes in the straggler/death arm.
//
//   scaling_efficiency = (hertz_work_seconds / makespan) / ideal_speedup
//
// where hertz_work_seconds is the campaign's total compute on one Hertz
// node and ideal_speedup is the cluster's aggregate speed in Hertz units —
// 1.0 means perfect balance with zero communication cost.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "meta/engine.h"
#include "mol/library.h"
#include "mol/synth.h"
#include "sched/cluster.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace metadock;

constexpr std::size_t kLibraryLigands = 1536;
constexpr std::size_t kMinAtoms = 20;
constexpr std::size_t kMaxAtoms = 60;
constexpr double kStraggleFactor = 8.0;

std::vector<sched::NodeConfig> mixed_cluster(int n) {
  std::vector<sched::NodeConfig> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes.push_back(i % 4 == 0 ? sched::jupiter() : sched::hertz());
  }
  return nodes;
}

struct Row {
  int nodes = 0;
  sched::DistributionPolicy policy = sched::DistributionPolicy::kStatic;
  std::string faults;
  sched::ClusterReport report;
  double speedup = 0.0;
  double ideal_speedup = 0.0;
  double efficiency = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string emit_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--emit-json=";
    if (arg.rfind(prefix, 0) == 0) emit_path = arg.substr(prefix.size());
  }

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const meta::MetaheuristicParams params = meta::m3_scatter_light();

  mol::LibraryParams lib;
  lib.count = kLibraryLigands;
  lib.min_atoms = kMinAtoms;
  lib.max_atoms = kMaxAtoms;
  std::vector<std::size_t> atoms;
  for (const auto& m : mol::make_ligand_library(lib)) atoms.push_back(m.size());

  // Hertz-unit yardsticks, shared by every cluster size.
  const double hertz_base = [&] {
    sched::ClusterSim one({sched::hertz()});
    return one.workload_for(problem, atoms, params).node_base_seconds[0];
  }();

  std::vector<Row> rows;
  const sched::DistributionPolicy policies[] = {
      sched::DistributionPolicy::kStatic, sched::DistributionPolicy::kStaticProportional,
      sched::DistributionPolicy::kDynamic, sched::DistributionPolicy::kWorkStealing};

  double hertz_work = 0.0;
  std::size_t units_per_ligand = 0;
  for (const int n : {8, 32, 128}) {
    sched::ClusterSim healthy(mixed_cluster(n));
    const sched::ClusterWorkload w = healthy.workload_for(problem, atoms, params);
    units_per_ligand = w.units_per_ligand;
    hertz_work = hertz_base *
                 std::accumulate(w.ligand_cost.begin(), w.ligand_cost.end(), 0.0);
    double ideal = 0.0;
    for (double base : w.node_base_seconds) ideal += hertz_base / base;

    // Fault times scale with the cluster: anchor them to the fault-free
    // proportional split so every size sees a mid-campaign event.
    const double ref =
        healthy.simulate(w, sched::DistributionPolicy::kStaticProportional).makespan_seconds;
    sched::ClusterOptions death_opt;
    death_opt.node_faults.straggle(1, ref / 4.0, kStraggleFactor)
        .kill(2, ref / 3.0)
        .kill(5, ref / 2.0);
    sched::ClusterSim wounded(mixed_cluster(n), death_opt);

    for (const sched::DistributionPolicy policy : policies) {
      for (const bool death : {false, true}) {
        Row row;
        row.nodes = n;
        row.policy = policy;
        row.faults = death ? "node-death" : "fault-free";
        row.report = (death ? wounded : healthy).simulate(w, policy);
        row.speedup = hertz_work / row.report.makespan_seconds;
        row.ideal_speedup = ideal;
        row.efficiency = row.speedup / ideal;
        rows.push_back(std::move(row));
      }
    }
  }

  util::Table t("Multi-node scaling — " + std::to_string(kLibraryLigands) +
                "-ligand campaign, 2BSM, M3, mixed 1:3 Jupiter:Hertz (1x Hertz = " +
                util::Table::num(hertz_work) + " s of compute)");
  t.header({"nodes", "policy", "faults", "makespan s", "speedup", "efficiency", "steals",
            "handoffs", "redocked"});
  for (const Row& r : rows) {
    t.row({std::to_string(r.nodes), std::string(sched::policy_name(r.policy)), r.faults,
           util::Table::num(r.report.makespan_seconds), util::Table::num(r.speedup),
           util::Table::num(r.efficiency),
           std::to_string(r.report.steals + r.report.stolen_ligands),
           std::to_string(r.report.handoffs), std::to_string(r.report.redocked_ligands)});
  }
  t.print();
  std::printf("\nstealing holds proportional-split efficiency through stragglers and node\n"
              "death; per-ligand dynamic dispatch pays the master's control plane at scale.\n");

  if (emit_path.empty()) return 0;

  util::JsonWriter jw;
  jw.begin_object();
  jw.key("schema").value("metadock.bench_cluster/1");
  jw.key("config").begin_object();
  jw.key("dataset").value("2BSM");
  jw.key("mh").value(params.name);
  jw.key("library_ligands").value(static_cast<std::uint64_t>(kLibraryLigands));
  jw.key("min_atoms").value(static_cast<std::uint64_t>(kMinAtoms));
  jw.key("max_atoms").value(static_cast<std::uint64_t>(kMaxAtoms));
  jw.key("units_per_ligand").value(static_cast<std::uint64_t>(units_per_ligand));
  jw.key("node_pattern").value("1x jupiter : 3x hertz");
  jw.key("straggle_factor").value(kStraggleFactor);
  jw.key("hertz_base_seconds").value(hertz_base);
  jw.key("hertz_work_seconds").value(hertz_work);
  const sched::NetworkModel net;
  jw.key("network").begin_object();
  jw.key("latency_s").value(net.latency_s);
  jw.key("bandwidth_gbs").value(net.bandwidth_gbs);
  jw.key("master_service_s").value(net.master_service_s);
  jw.key("death_detect_s").value(net.death_detect_s);
  jw.end_object();
  jw.end_object();
  jw.key("results").begin_array();
  for (const Row& r : rows) {
    const std::size_t docked = std::accumulate(r.report.ligands_per_node.begin(),
                                               r.report.ligands_per_node.end(), std::size_t{0});
    jw.begin_object();
    jw.key("nodes").value(r.nodes);
    jw.key("policy").value(std::string(sched::policy_name(r.policy)));
    jw.key("faults").value(r.faults);
    jw.key("makespan_seconds").value(r.report.makespan_seconds);
    jw.key("comm_seconds").value(r.report.comm_seconds);
    jw.key("speedup_vs_hertz").value(r.speedup);
    jw.key("ideal_speedup").value(r.ideal_speedup);
    jw.key("scaling_efficiency").value(r.efficiency);
    jw.key("balance_efficiency").value(r.report.balance_efficiency);
    jw.key("ligands_docked").value(static_cast<std::uint64_t>(docked));
    jw.key("messages").value(r.report.messages.total_count());
    jw.key("steals").value(static_cast<std::uint64_t>(r.report.steals));
    jw.key("stolen_ligands").value(static_cast<std::uint64_t>(r.report.stolen_ligands));
    jw.key("handoffs").value(static_cast<std::uint64_t>(r.report.handoffs));
    jw.key("failed_steals").value(static_cast<std::uint64_t>(r.report.failed_steals));
    jw.key("nodes_lost").value(static_cast<std::uint64_t>(r.report.nodes_lost));
    jw.key("reassigned_ligands")
        .value(static_cast<std::uint64_t>(r.report.reassigned_ligands));
    jw.key("redocked_ligands").value(static_cast<std::uint64_t>(r.report.redocked_ligands));
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();

  std::ofstream out(emit_path);
  if (!out) {
    std::fprintf(stderr, "bench_ablation_multinode: cannot write %s\n", emit_path.c_str());
    return 1;
  }
  out << jw.str() << "\n";
  std::printf("wrote %s\n", emit_path.c_str());
  return 0;
}
