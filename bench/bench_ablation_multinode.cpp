// Ablation: multi-node scaling (the paper's future-work direction).
//
// Sweeps cluster size for a 96-ligand screening campaign (2BSM receptor)
// under static and dynamic ligand distribution, on homogeneous
// (all-Hertz) and heterogeneous (Jupiter + Hertz mix) clusters.
#include <algorithm>
#include <cstdio>

#include "meta/engine.h"
#include "mol/library.h"
#include "mol/synth.h"
#include "sched/cluster.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const meta::MetaheuristicParams params = meta::m3_scatter_light();

  mol::LibraryParams lib;
  lib.count = 96;
  lib.min_atoms = 20;
  lib.max_atoms = 60;
  std::vector<std::size_t> atoms;
  for (const auto& m : mol::make_ligand_library(lib)) atoms.push_back(m.size());

  const double t_one = [&] {
    sched::ClusterSim one({sched::hertz()});
    return one
        .screen_estimate(problem, atoms, params, sched::DistributionPolicy::kDynamic)
        .makespan_seconds;
  }();

  Table t("Multi-node scaling — 96-ligand campaign, 2BSM, M3 (1x Hertz = " +
          Table::num(t_one) + " s)");
  t.header({"cluster", "policy", "makespan s", "speed-up vs 1x Hertz",
            "ligands/node (min..max)"});
  for (int n : {1, 2, 4, 8}) {
    for (const bool mixed : {false, true}) {
      std::vector<sched::NodeConfig> nodes;
      for (int i = 0; i < n; ++i) {
        nodes.push_back(mixed && i % 2 == 0 ? sched::jupiter() : sched::hertz());
      }
      sched::ClusterSim sim(nodes);
      for (const auto policy :
           {sched::DistributionPolicy::kStatic, sched::DistributionPolicy::kDynamic}) {
        const sched::ClusterReport r = sim.screen_estimate(problem, atoms, params, policy);
        const auto [mn, mx] = std::minmax_element(r.ligands_per_node.begin(),
                                                  r.ligands_per_node.end());
        t.row({std::to_string(n) + (mixed ? "x mixed" : "x Hertz"),
               policy == sched::DistributionPolicy::kStatic ? "static" : "dynamic",
               Table::num(r.makespan_seconds), Table::num(t_one / r.makespan_seconds),
               std::to_string(*mn) + ".." + std::to_string(*mx)});
      }
    }
  }
  t.print();
  std::printf("\ndynamic dispatch matters most on mixed clusters, exactly as the in-node\n"
              "heterogeneous split matters most on Hertz.\n");
  return 0;
}
