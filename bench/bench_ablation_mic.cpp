// Ablation: adding an Intel Xeon Phi (MIC) to the Hertz node — the paper's
// future-work configuration ("each node with several computational
// components, e.g., multicore, heterogeneous GPUs and MICs").
//
// With three accelerators of three different speeds, the homogeneous equal
// split is bounded by the slowest device, so the Eq. 1 heterogeneous split
// matters even more than on plain Hertz.
#include <cstdio>

#include "meta/engine.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const meta::MetaheuristicParams params = meta::m1_genetic();

  Table t("MIC extension — 2BSM, M1");
  t.header({"node", "strategy", "makespan s", "het gain", "device shares"});
  for (const sched::NodeConfig& node : {sched::hertz(), sched::hertz_with_phi()}) {
    double t_hom = 0.0;
    for (const sched::Strategy s :
         {sched::Strategy::kHomogeneous, sched::Strategy::kHeterogeneous}) {
      sched::ExecutorOptions opts;
      opts.strategy = s;
      sched::NodeExecutor exec(node, opts);
      const sched::ExecutionReport r = exec.estimate(problem, params);
      if (s == sched::Strategy::kHomogeneous) t_hom = r.makespan_seconds;
      std::string shares;
      for (const auto& d : r.devices) {
        if (!shares.empty()) shares += " / ";
        shares += Table::num(d.share * 100.0, 0) + "%";
      }
      t.row({node.name, std::string(sched::strategy_name(s)),
             Table::num(r.makespan_seconds),
             s == sched::Strategy::kHomogeneous ? "1.00"
                                                : Table::num(t_hom / r.makespan_seconds),
             shares});
    }
  }
  t.print();
  std::printf("\nthe Phi is slower than either GPU, so the equal split drags the whole\n"
              "node down to its pace — exactly the failure mode Eq. 1 repairs.\n");
  return 0;
}
