// Reproduces Tables 2-3: the hardware inventories of the two evaluation
// nodes, Jupiter and Hertz, as modeled by the simulator.
#include <cstdio>
#include <string>

#include "sched/node_config.h"
#include "util/table.h"

namespace {

void print_node(const metadock::sched::NodeConfig& node, const char* table_name) {
  using metadock::util::Table;
  Table t(std::string(table_name) + " — " + node.name);
  t.header({"Device", "Class", "SMs", "Cores/SM", "Total cores", "Clock MHz", "DRAM GB",
            "BW GB/s", "CCC", "Peak GFLOPS"});
  t.row({node.cpu.name, "CPU", "-", "-", std::to_string(node.cpu.cores),
         Table::num(node.cpu.clock_ghz * 1000.0, 0), "-", "-", "-",
         Table::num(node.cpu.peak_gflops(), 0)});
  for (const auto& g : node.gpus) {
    t.row({g.name, std::string(metadock::gpusim::arch_name(g.arch)),
           std::to_string(g.sm_count), std::to_string(g.cores_per_sm),
           std::to_string(g.total_cores()), Table::num(g.clock_ghz * 1000.0, 0),
           Table::num(g.dram_gb, 2), Table::num(g.dram_bw_gbs, 2),
           std::to_string(g.ccc_major()) + ".0", Table::num(g.peak_gflops(), 0)});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_node(metadock::sched::jupiter(), "Table 2");
  print_node(metadock::sched::hertz(), "Table 3");
  return 0;
}
