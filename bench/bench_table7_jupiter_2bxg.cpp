// Reproduces Table 7: execution time (seconds) for protein PDB:2BXG on
// Jupiter (4x GTX 590 + 2x Tesla C2075).  The paper's headline scaling
// claim lives here: the speed-up over OpenMP grows with receptor size
// (2BXG is ~2.6x larger than 2BSM), peaking at ~92x for M4.
#include "vs/experiment.h"

int main() {
  metadock::vs::print_experiment_table(
      metadock::vs::run_jupiter_table(metadock::mol::kDataset2BXG));
  return 0;
}
