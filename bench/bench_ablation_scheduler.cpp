// Ablation: scheduling strategy and cooperative chunk granularity.
//
// Compares, on both nodes and both datasets (M1): the homogeneous split,
// the warm-up-based heterogeneous split (the paper's contribution), and the
// dynamic cooperative queue at several chunk sizes — quantifying the
// balance-vs-dispatch-overhead trade the paper's "cooperative scheduling of
// jobs" navigates.
#include <cstdio>

#include "meta/engine.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const meta::MetaheuristicParams params = meta::m1_genetic();
  for (const mol::Dataset& ds : {mol::kDataset2BSM, mol::kDataset2BXG}) {
    const mol::Molecule receptor = mol::make_dataset_receptor(ds);
    const mol::Molecule ligand = mol::make_dataset_ligand(ds);
    const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

    for (const sched::NodeConfig& node : {sched::hertz(), sched::jupiter()}) {
      Table t("Scheduler ablation — " + node.name + ", " + ds.pdb_id + ", M1");
      t.header({"scheduler", "makespan s", "warm-up s", "vs homogeneous"});

      sched::ExecutorOptions hom;
      hom.strategy = sched::Strategy::kHomogeneous;
      const double t_hom =
          sched::NodeExecutor(node, hom).estimate(problem, params).makespan_seconds;
      t.row({"homogeneous (equal split)", Table::num(t_hom), "-", "1.00"});

      sched::ExecutorOptions het;
      het.strategy = sched::Strategy::kHeterogeneous;
      const sched::ExecutionReport rh =
          sched::NodeExecutor(node, het).estimate(problem, params);
      t.row({"heterogeneous (Eq. 1 split)", Table::num(rh.makespan_seconds),
             Table::num(rh.warmup_seconds, 4), Table::num(t_hom / rh.makespan_seconds)});

      for (const std::size_t chunk : {std::size_t{16}, std::size_t{64}, std::size_t{128},
                                      std::size_t{512}}) {
        sched::ExecutorOptions coop;
        coop.strategy = sched::Strategy::kCooperative;
        coop.chunk_blocks = chunk;
        const sched::ExecutionReport rc =
            sched::NodeExecutor(node, coop).estimate(problem, params);
        t.row({"cooperative, " + std::to_string(chunk) + "-block chunks",
               Table::num(rc.makespan_seconds), "-",
               Table::num(t_hom / rc.makespan_seconds)});
      }
      t.print();
      std::printf("\n");
    }
  }
  return 0;
}
