// Ablation: sensitivity of the heterogeneous split to the warm-up
// configuration.
//
// The paper uses "five to ten" metaheuristic iterations to measure Percent
// (Eq. 1).  This bench sweeps the warm-up iteration count and probe batch
// size on Hertz and reports (a) the measured Percent of the K40c, (b) the
// end-to-end M1 makespan with the resulting split, and (c) the warm-up cost
// itself — showing why a too-small probe mis-measures the ratio (SM-count
// quantization) while a large one only adds overhead.
#include <cstdio>

#include "meta/engine.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const meta::MetaheuristicParams params = meta::m1_genetic();

  // Homogeneous reference (no warm-up at all).
  sched::ExecutorOptions hom;
  hom.strategy = sched::Strategy::kHomogeneous;
  const double t_hom =
      sched::NodeExecutor(sched::hertz(), hom).estimate(problem, params).makespan_seconds;

  Table t("Warm-up ablation — Hertz, 2BSM, M1 (homogeneous reference " +
          Table::num(t_hom) + " s)");
  t.header({"warm-up iters", "probe conformations", "K40c Percent", "warm-up s",
            "makespan s", "gain vs homogeneous"});
  for (const int iters : {1, 5, 8, 10, 50}) {
    for (const std::size_t batch : {std::size_t{64}, std::size_t{512}, std::size_t{2048},
                                    std::size_t{8192}}) {
      sched::ExecutorOptions het;
      het.strategy = sched::Strategy::kHeterogeneous;
      het.warmup_iterations = iters;
      het.warmup_batch = batch;
      sched::NodeExecutor exec(sched::hertz(), het);
      const sched::ExecutionReport r = exec.estimate(problem, params);
      t.row({std::to_string(iters), std::to_string(batch),
             Table::num(r.devices[0].percent, 3), Table::num(r.warmup_seconds, 4),
             Table::num(r.makespan_seconds), Table::num(t_hom / r.makespan_seconds)});
    }
  }
  t.print();
  std::printf("\npaper setting: 5-10 iterations; the probe batch must be large enough to\n"
              "be representative (hundreds of blocks) or Percent is distorted.\n");
  return 0;
}
