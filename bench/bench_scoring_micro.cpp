// Google-benchmark microbenchmarks of the real host scoring paths: the
// reference loop, the cache-blocked (tiled) loop at several tile sizes, the
// Coulomb extension, and the end-to-end engine generation.  These measure
// real wall-clock on the build host (not virtual time) — they are how the
// CPU-side implementation itself is kept honest.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "meta/engine.h"
#include "meta/evaluator.h"
#include "mol/synth.h"
#include "scoring/lennard_jones.h"
#include "util/rng.h"

namespace {

using namespace metadock;

const mol::Molecule& receptor(std::size_t atoms) {
  static std::map<std::size_t, mol::Molecule> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    mol::ReceptorParams p;
    p.atom_count = atoms;
    it = cache.emplace(atoms, mol::make_receptor(p)).first;
  }
  return it->second;
}

const mol::Molecule& ligand() {
  static const mol::Molecule m = [] {
    mol::LigandParams p;
    p.atom_count = 45;
    return mol::make_ligand(p);
  }();
  return m;
}

scoring::Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(seed);
  scoring::Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

void BM_ScoreReference(benchmark::State& state) {
  const auto r_atoms = static_cast<std::size_t>(state.range(0));
  const scoring::LennardJonesScorer scorer(receptor(r_atoms), ligand());
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreReference)->Arg(512)->Arg(3264)->Arg(8609);

void BM_ScoreTiled(benchmark::State& state) {
  const auto r_atoms = static_cast<std::size_t>(state.range(0));
  scoring::ScoringOptions opt;
  opt.tile_size = static_cast<int>(state.range(1));
  const scoring::LennardJonesScorer scorer(receptor(r_atoms), ligand(), opt);
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score_tiled(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreTiled)
    ->Args({3264, 64})
    ->Args({3264, 256})
    ->Args({3264, 1024})
    ->Args({8609, 256});

void BM_ScoreWithCoulomb(benchmark::State& state) {
  scoring::ScoringOptions opt;
  opt.coulomb = true;
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand(), opt);
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score_tiled(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreWithCoulomb);

void BM_ScoreBatch(benchmark::State& state) {
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand());
  std::vector<scoring::Pose> poses;
  for (int i = 0; i < 32; ++i) poses.push_back(sample_pose(static_cast<std::uint64_t>(i)));
  std::vector<double> out(poses.size());
  for (auto _ : state) {
    scorer.score_batch(poses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreBatch);

void BM_EngineGeneration(benchmark::State& state) {
  // One M1 generation over a small problem: measures the non-scoring
  // template machinery (select/combine/include, RNG streams) plus scoring.
  mol::ReceptorParams rp;
  rp.atom_count = 512;
  static const mol::Molecule rec = mol::make_receptor(rp);
  static const mol::Molecule lig = ligand();
  const meta::DockingProblem problem = meta::make_problem(rec, lig);
  const scoring::LennardJonesScorer scorer(rec, lig);
  meta::MetaheuristicParams params = meta::m1_genetic();
  params.population_per_spot = 16;
  params.generations = 1;
  const meta::MetaheuristicEngine engine(params);
  for (auto _ : state) {
    meta::DirectEvaluator eval(scorer);
    benchmark::DoNotOptimize(engine.run(problem, eval));
  }
}
BENCHMARK(BM_EngineGeneration);

}  // namespace

BENCHMARK_MAIN();
