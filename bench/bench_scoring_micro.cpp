// Google-benchmark microbenchmarks of the real host scoring paths: the
// reference loop, the cache-blocked (tiled) loop at several tile sizes, the
// Coulomb extension, the batched engine (scalar and SIMD), the grid scorer,
// and the end-to-end engine generation.  These measure real wall-clock on
// the build host (not virtual time) — they are how the CPU-side
// implementation itself is kept honest.
//
// Besides the google-benchmark mode, `--emit-json=PATH` runs a fixed
// comparison of the four LJ implementations at 2BSM scale (3264 x 45) and
// writes a schema-versioned JSON summary — the generator of the repo's
// BENCH_scoring.json (see README).  `--emit-min-seconds=S` shrinks the
// per-implementation measurement window for smoke tests.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cpusim/cpu_engine.h"
#include "gpusim/runtime.h"
#include "gpusim/scoring_kernel.h"
#include "meta/cached_evaluator.h"
#include "meta/engine.h"
#include "meta/evaluator.h"
#include "mol/synth.h"
#include "sched/multi_gpu.h"
#include "sched/node_config.h"
#include "scoring/batch_engine.h"
#include "scoring/grid_scorer.h"
#include "scoring/lennard_jones.h"
#include "scoring/score_cache.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace metadock;

const mol::Molecule& receptor(std::size_t atoms) {
  static std::map<std::size_t, mol::Molecule> cache;
  auto it = cache.find(atoms);
  if (it == cache.end()) {
    mol::ReceptorParams p;
    p.atom_count = atoms;
    it = cache.emplace(atoms, mol::make_receptor(p)).first;
  }
  return it->second;
}

const mol::Molecule& ligand() {
  static const mol::Molecule m = [] {
    mol::LigandParams p;
    p.atom_count = 45;
    return mol::make_ligand(p);
  }();
  return m;
}

scoring::Pose sample_pose(std::uint64_t seed) {
  auto rng = util::stream(seed);
  scoring::Pose pose;
  pose.position = {static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20)),
                   static_cast<float>(rng.uniform(-20, 20))};
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

void BM_ScoreReference(benchmark::State& state) {
  const auto r_atoms = static_cast<std::size_t>(state.range(0));
  const scoring::LennardJonesScorer scorer(receptor(r_atoms), ligand());
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreReference)->Arg(512)->Arg(3264)->Arg(8609);

void BM_ScoreTiled(benchmark::State& state) {
  const auto r_atoms = static_cast<std::size_t>(state.range(0));
  scoring::ScoringOptions opt;
  opt.tile_size = static_cast<int>(state.range(1));
  const scoring::LennardJonesScorer scorer(receptor(r_atoms), ligand(), opt);
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score_tiled(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreTiled)
    ->Args({3264, 64})
    ->Args({3264, 256})
    ->Args({3264, 1024})
    ->Args({8609, 256});

void BM_ScoreWithCoulomb(benchmark::State& state) {
  scoring::ScoringOptions opt;
  opt.coulomb = true;
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand(), opt);
  const scoring::Pose pose = sample_pose(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score_tiled(pose));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreWithCoulomb);

void BM_ScoreBatch(benchmark::State& state) {
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand());
  std::vector<scoring::Pose> poses;
  for (int i = 0; i < 32; ++i) poses.push_back(sample_pose(static_cast<std::uint64_t>(i)));
  std::vector<double> out(poses.size());
  for (auto _ : state) {
    scorer.score_batch(poses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_ScoreBatch);

void BM_BatchEngine(benchmark::State& state) {
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand());
  scoring::BatchEngineOptions opt;
  opt.simd = state.range(0) != 0 ? scoring::SimdLevel::kAvx2 : scoring::SimdLevel::kScalar;
  if (opt.simd == scoring::SimdLevel::kAvx2 && !scoring::simd_kernel_supported()) {
    state.SkipWithError("AVX2 kernel unavailable on this host");
    return;
  }
  const scoring::BatchScoringEngine engine(scorer, opt);
  std::vector<scoring::Pose> poses;
  for (int i = 0; i < 32; ++i) poses.push_back(sample_pose(static_cast<std::uint64_t>(i)));
  std::vector<double> out(poses.size());
  for (auto _ : state) {
    engine.score_batch(poses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          static_cast<std::int64_t>(scorer.pairs_per_eval()));
}
BENCHMARK(BM_BatchEngine)->Arg(0)->Arg(1);

void BM_GridScorer(benchmark::State& state) {
  // Coarse lattice over a small receptor keeps the one-time grid build in
  // the low seconds; interpolation cost per pose is what's measured.
  static const scoring::GridScorer* grid = [] {
    scoring::GridScorerOptions opt;
    opt.spacing = 0.75f;
    return new scoring::GridScorer(receptor(512), ligand(), opt);
  }();
  std::vector<scoring::Pose> poses;
  for (int i = 0; i < 32; ++i) poses.push_back(sample_pose(static_cast<std::uint64_t>(i)));
  std::vector<double> out(poses.size());
  for (auto _ : state) {
    grid->score_batch(poses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GridScorer);

void BM_EngineGeneration(benchmark::State& state) {
  // One M1 generation over a small problem: measures the non-scoring
  // template machinery (select/combine/include, RNG streams) plus scoring.
  mol::ReceptorParams rp;
  rp.atom_count = 512;
  static const mol::Molecule rec = mol::make_receptor(rp);
  static const mol::Molecule lig = ligand();
  const meta::DockingProblem problem = meta::make_problem(rec, lig);
  const scoring::LennardJonesScorer scorer(rec, lig);
  meta::MetaheuristicParams params = meta::m1_genetic();
  params.population_per_spot = 16;
  params.generations = 1;
  const meta::MetaheuristicEngine engine(params);
  for (auto _ : state) {
    meta::DirectEvaluator eval(scorer);
    benchmark::DoNotOptimize(engine.run(problem, eval));
  }
}
BENCHMARK(BM_EngineGeneration);

// ---------------------------------------------------------------------------
// --emit-json: fixed four-way LJ comparison at 2BSM scale

struct EmitResult {
  std::string impl;
  double pairs_per_second = 0.0;
};

/// Best-of-three throughput of `fn` (which scores `pairs` pairs per call)
/// over windows of at least `min_seconds`.
template <typename Fn>
double measure_pairs_per_second(Fn&& fn, double pairs_per_call, double min_seconds) {
  fn();  // warm the caches and the thread-local scratch
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const util::WallTimer timer;
    std::int64_t calls = 0;
    while (timer.seconds() < min_seconds) {
      fn();
      ++calls;
    }
    best = std::max(best, static_cast<double>(calls) * pairs_per_call / timer.seconds());
  }
  return best;
}

// ---------------------------------------------------------------------------
// --emit-json "generation" section: end-to-end metaheuristic throughput

/// The pre-SoA data path, kept as the bench baseline: an AoS-only batched
/// evaluator.  It does not override evaluate_soa, so the engine's columns
/// are gathered back into Pose structs before every batch — exactly the
/// repack the SoA population was introduced to remove.
class AosBatchedEvaluator final : public meta::Evaluator {
 public:
  AosBatchedEvaluator(const scoring::LennardJonesScorer& scorer,
                      scoring::BatchEngineOptions options)
      : engine_(scorer, options) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    engine_.score_batch(poses, out);
  }

 private:
  scoring::BatchScoringEngine engine_;
};

struct GenerationResult {
  std::string mode;
  double evals_per_second = 0.0;
  bool has_cache = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Best-of-three end-to-end engine throughput (pose evaluations per second)
/// over windows of at least `min_seconds`.  A fresh evaluator per run keeps
/// the modes comparable; shared state that should persist between runs (the
/// score cache) lives outside `make_eval`.
double measure_generation_eps(const meta::MetaheuristicEngine& engine,
                              const meta::DockingProblem& problem,
                              const std::function<std::unique_ptr<meta::Evaluator>()>& make_eval,
                              double min_seconds) {
  {
    auto warm = make_eval();  // warm caches, arenas and (when present) the score cache
    (void)engine.run(problem, *warm);
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const util::WallTimer timer;
    std::uint64_t evals = 0;
    while (timer.seconds() < min_seconds) {
      auto eval = make_eval();
      evals += engine.run(problem, *eval).evaluations;
    }
    best = std::max(best, static_cast<double>(evals) / timer.seconds());
  }
  return best;
}

// ---------------------------------------------------------------------------
// --emit-json "overlap" section: stream-overlap dispatch on virtual hertz
//
// Unlike the sections above, these numbers are *virtual* time from the
// device models — deterministic, independent of the build host.  The
// workload is deliberately a small-fragment screen (tiny receptor and
// ligand, huge batch): per-pose compute shrinks with the molecule sizes
// while the 28-byte pose upload does not, so PCIe time is a large slice of
// each batch and the double-buffered pipeline has something to hide.  At
// 2BSM scale the same kernels are compute-bound and copies are ~1% of a
// batch, so overlap wins little there (see DESIGN.md §13).

struct OverlapModeResult {
  std::string mode;
  double batch_seconds = 0.0;
};

/// Eq.1-style probe: per-device cost-only timing on a throwaway runtime;
/// shares proportional to measured throughput.
std::vector<double> overlap_probe_shares(const sched::NodeConfig& node,
                                         const scoring::LennardJonesScorer& scorer,
                                         std::size_t probe_poses) {
  std::vector<double> shares(node.gpus.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < node.gpus.size(); ++i) {
    gpusim::Runtime rt({node.gpus[i]});
    gpusim::DeviceScoringKernel probe(rt.device(0), scorer);
    const double before = rt.device(0).busy_seconds();
    probe.score_cost_only(probe_poses);
    shares[i] = 1.0 / (rt.device(0).busy_seconds() - before);
    sum += shares[i];
  }
  for (double& s : shares) s /= sum;
  return shares;
}

/// Mean per-batch barrier time of `batches` cost-only batches under one
/// dispatch mode (fresh runtime per mode; the molecule-upload prologue is
/// excluded).
double overlap_batch_seconds(const sched::NodeConfig& node,
                             const scoring::LennardJonesScorer& scorer,
                             const std::vector<double>& shares, bool overlap,
                             double cpu_tail_share, std::size_t batch_poses, int batches) {
  gpusim::Runtime rt(node.gpus);
  sched::MultiGpuOptions mg;
  mg.shares = shares;
  mg.overlap = overlap;
  mg.cpu_tail_share = cpu_tail_share;
  mg.cpu_fallback = node.cpu;
  sched::MultiGpuBatchScorer mgs(rt, scorer, mg);
  const double after_setup = mgs.node_seconds();
  for (int b = 0; b < batches; ++b) mgs.evaluate_cost_only(batch_poses);
  return (mgs.node_seconds() - after_setup) / batches;
}

void emit_overlap_section(util::JsonWriter& w) {
  constexpr std::size_t kReceptorAtoms = 32;
  constexpr std::size_t kLigandAtoms = 11;
  constexpr std::size_t kBatch = 262144;
  constexpr int kBatches = 4;

  mol::ReceptorParams rp;
  rp.atom_count = kReceptorAtoms;
  const mol::Molecule frag_receptor = mol::make_receptor(rp);
  mol::LigandParams lp;
  lp.atom_count = kLigandAtoms;
  const mol::Molecule frag_ligand = mol::make_ligand(lp);
  const scoring::LennardJonesScorer scorer(frag_receptor, frag_ligand);

  const sched::NodeConfig node = sched::hertz();
  const std::vector<double> shares = overlap_probe_shares(node, scorer, kBatch);

  const double serial_s =
      overlap_batch_seconds(node, scorer, shares, /*overlap=*/false, 0.0, kBatch, kBatches);
  const double overlapped_s =
      overlap_batch_seconds(node, scorer, shares, /*overlap=*/true, 0.0, kBatch, kBatches);

  // Tail share that lets the host CPU finish its partition just as the GPU
  // pipelines drain theirs: s * t_cpu = (1 - s) * t_gpu per batch.
  cpusim::CpuScoringEngine cpu_probe(node.cpu, scorer);
  cpu_probe.score_cost_only(kBatch);
  const double t_cpu = cpu_probe.busy_seconds();
  const double tail_share =
      std::min(0.45, t_cpu > 0.0 ? overlapped_s / (overlapped_s + t_cpu) : 0.0);
  const double tail_s =
      overlap_batch_seconds(node, scorer, shares, /*overlap=*/true, tail_share, kBatch, kBatches);

  std::vector<OverlapModeResult> modes;
  modes.push_back({"serial", serial_s});
  modes.push_back({"overlapped", overlapped_s});
  modes.push_back({"overlapped-cpu-tail", tail_s});

  w.key("overlap").begin_object();
  w.key("config").begin_object();
  w.key("node").value(node.name);
  w.key("receptor_atoms").value(std::uint64_t{kReceptorAtoms});
  w.key("ligand_atoms").value(std::uint64_t{kLigandAtoms});
  w.key("pairs_per_eval").value(static_cast<std::uint64_t>(scorer.pairs_per_eval()));
  w.key("batch_poses").value(std::uint64_t{kBatch});
  w.key("batches").value(static_cast<std::uint64_t>(kBatches));
  w.key("shares").begin_array();
  for (const double s : shares) w.value(s);
  w.end_array();
  w.key("cpu_tail_share").value(tail_share);
  w.end_object();
  w.key("results").begin_array();
  for (const OverlapModeResult& m : modes) {
    w.begin_object();
    w.key("mode").value(m.mode);
    w.key("batch_seconds").value(m.batch_seconds);
    w.key("speedup_vs_serial").value(m.batch_seconds > 0.0 ? serial_s / m.batch_seconds : 0.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  for (const OverlapModeResult& m : modes) {
    std::printf("  overlap %-20s %.6f s/batch (%.2fx vs serial)\n", m.mode.c_str(),
                m.batch_seconds, m.batch_seconds > 0.0 ? serial_s / m.batch_seconds : 0.0);
  }
}

int emit_json(const std::string& path, double min_seconds) {
  const scoring::LennardJonesScorer scorer(receptor(3264), ligand());
  constexpr std::size_t kPoses = 32;
  std::vector<scoring::Pose> poses;
  for (std::size_t i = 0; i < kPoses; ++i) poses.push_back(sample_pose(i));
  std::vector<double> out(poses.size());
  const double pairs_per_call =
      static_cast<double>(scorer.pairs_per_eval()) * static_cast<double>(kPoses);

  std::vector<EmitResult> results;
  results.push_back({"reference", measure_pairs_per_second(
                                      [&] {
                                        for (std::size_t i = 0; i < kPoses; ++i) {
                                          out[i] = scorer.score(poses[i]);
                                        }
                                      },
                                      pairs_per_call, min_seconds)});
  results.push_back({"tiled", measure_pairs_per_second(
                                  [&] {
                                    for (std::size_t i = 0; i < kPoses; ++i) {
                                      out[i] = scorer.score_tiled(poses[i]);
                                    }
                                  },
                                  pairs_per_call, min_seconds)});
  scoring::BatchEngineOptions scalar_opt;
  scalar_opt.simd = scoring::SimdLevel::kScalar;
  const scoring::BatchScoringEngine scalar(scorer, scalar_opt);
  results.push_back({"batched-scalar",
                     measure_pairs_per_second([&] { scalar.score_batch(poses, out); },
                                              pairs_per_call, min_seconds)});
  if (scoring::simd_kernel_supported()) {
    scoring::BatchEngineOptions simd_opt;
    simd_opt.simd = scoring::SimdLevel::kAvx2;
    const scoring::BatchScoringEngine simd(scorer, simd_opt);
    results.push_back({"batched-simd",
                       measure_pairs_per_second([&] { simd.score_batch(poses, out); },
                                                pairs_per_call, min_seconds)});
  }
  if (scoring::avx512_kernel_supported()) {
    scoring::BatchEngineOptions avx512_opt;
    avx512_opt.simd = scoring::SimdLevel::kAvx512;
    const scoring::BatchScoringEngine wide(scorer, avx512_opt);
    results.push_back({"batched-avx512",
                       measure_pairs_per_second([&] { wide.score_batch(poses, out); },
                                                pairs_per_call, min_seconds)});
  }

  double tiled_pps = 0.0;
  for (const EmitResult& r : results) {
    if (r.impl == "tiled") tiled_pps = r.pairs_per_second;
  }

  // End-to-end generation throughput: the same M1 engine run under four
  // evaluator configurations.  "batched-aos" is the pre-SoA/pre-cache
  // configuration (AoS repack + AVX2 when available) and is the speedup
  // baseline; "batched-soa" adds the columnar population and the widest
  // supported kernel; "batched-soa-cache" adds a warm score cache (seeded
  // runs revisit identical conformations, so the steady-state workload is
  // cache hits).
  mol::ReceptorParams grp;
  grp.atom_count = 512;
  const mol::Molecule gen_receptor = mol::make_receptor(grp);
  meta::DockingProblem gen_problem = meta::make_problem(gen_receptor, ligand());
  constexpr std::size_t kGenSpots = 8;
  if (gen_problem.spots.size() > kGenSpots) gen_problem.spots.resize(kGenSpots);
  meta::MetaheuristicParams gen_params = meta::m1_genetic();
  gen_params.population_per_spot = 16;
  gen_params.generations = 4;
  const meta::MetaheuristicEngine gen_engine(gen_params);
  const scoring::LennardJonesScorer gen_scorer(gen_receptor, ligand());

  scoring::BatchEngineOptions aos_opt;
  aos_opt.simd = scoring::simd_kernel_supported() ? scoring::SimdLevel::kAvx2
                                                  : scoring::SimdLevel::kScalar;
  scoring::ScoreCacheOptions cache_opt;
  cache_opt.capacity = std::size_t{1} << 17;
  scoring::ScoreCache gen_cache(cache_opt);

  std::vector<GenerationResult> gen_results;
  gen_results.push_back(
      {"tiled-aos",
       measure_generation_eps(
           gen_engine, gen_problem,
           [&] { return std::make_unique<meta::DirectEvaluator>(gen_scorer); }, min_seconds),
       false, 0, 0});
  gen_results.push_back(
      {"batched-aos",
       measure_generation_eps(
           gen_engine, gen_problem,
           [&] { return std::make_unique<AosBatchedEvaluator>(gen_scorer, aos_opt); },
           min_seconds),
       false, 0, 0});
  gen_results.push_back(
      {"batched-soa",
       measure_generation_eps(
           gen_engine, gen_problem,
           [&] { return std::make_unique<meta::BatchedEvaluator>(gen_scorer); }, min_seconds),
       false, 0, 0});
  {
    // The inner evaluator outlives every CachedEvaluator handed to a run.
    meta::BatchedEvaluator gen_inner(gen_scorer);
    const double eps = measure_generation_eps(
        gen_engine, gen_problem,
        [&]() -> std::unique_ptr<meta::Evaluator> {
          return std::make_unique<meta::CachedEvaluator>(gen_inner, gen_cache);
        },
        min_seconds);
    const scoring::ScoreCacheStats cs = gen_cache.stats();
    gen_results.push_back({"batched-soa-cache", eps, true, cs.hits, cs.misses});
  }
  double gen_baseline = 0.0;
  for (const GenerationResult& r : gen_results) {
    if (r.mode == "batched-aos") gen_baseline = r.evals_per_second;
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("metadock.bench_scoring/3");
  w.key("dataset").begin_object();
  w.key("name").value("2BSM-scale synthetic");
  w.key("receptor_atoms").value(std::uint64_t{3264});
  w.key("ligand_atoms").value(std::uint64_t{45});
  w.key("pairs_per_eval").value(static_cast<std::uint64_t>(scorer.pairs_per_eval()));
  w.end_object();
  w.key("simd").begin_object();
  w.key("kernel_compiled").value(scoring::simd_kernel_compiled());
  w.key("kernel_supported").value(scoring::simd_kernel_supported());
  w.key("avx512_compiled").value(scoring::avx512_kernel_compiled());
  w.key("avx512_supported").value(scoring::avx512_kernel_supported());
  w.key("default_level").value(std::string(scoring::simd_level_name(scoring::default_simd_level())));
  w.end_object();
  w.key("config").begin_object();
  w.key("pose_batch").value(std::uint64_t{kPoses});
  w.key("pose_block").value(scalar.pose_block());
  w.key("tile_size").value(scorer.options().tile_size);
  w.key("min_seconds_per_window").value(min_seconds);
  w.end_object();
  w.key("results").begin_array();
  for (const EmitResult& r : results) {
    w.begin_object();
    w.key("impl").value(r.impl);
    w.key("pairs_per_second").value(r.pairs_per_second);
    w.key("speedup_vs_tiled").value(tiled_pps > 0.0 ? r.pairs_per_second / tiled_pps : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("generation").begin_object();
  w.key("config").begin_object();
  w.key("mh").value(gen_params.name);
  w.key("receptor_atoms").value(static_cast<std::uint64_t>(gen_receptor.size()));
  w.key("ligand_atoms").value(static_cast<std::uint64_t>(ligand().size()));
  w.key("spots").value(static_cast<std::uint64_t>(gen_problem.spots.size()));
  w.key("population_per_spot").value(static_cast<std::uint64_t>(gen_params.population_per_spot));
  w.key("generations").value(static_cast<std::uint64_t>(gen_params.generations));
  w.key("score_cache_entries").value(static_cast<std::uint64_t>(gen_cache.stats().capacity));
  w.end_object();
  w.key("results").begin_array();
  for (const GenerationResult& r : gen_results) {
    w.begin_object();
    w.key("mode").value(r.mode);
    w.key("evals_per_second").value(r.evals_per_second);
    w.key("speedup_vs_batched_aos")
        .value(gen_baseline > 0.0 ? r.evals_per_second / gen_baseline : 0.0);
    if (r.has_cache) {
      w.key("cache_hits").value(r.cache_hits);
      w.key("cache_misses").value(r.cache_misses);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  emit_overlap_section(w);
  w.end_object();

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_scoring_micro: cannot open %s\n", path.c_str());
    return 1;
  }
  file << w.str() << '\n';
  std::printf("wrote %s\n", path.c_str());
  for (const EmitResult& r : results) {
    std::printf("  %-15s %.3e pairs/s (%.2fx vs tiled)\n", r.impl.c_str(), r.pairs_per_second,
                tiled_pps > 0.0 ? r.pairs_per_second / tiled_pps : 0.0);
  }
  for (const GenerationResult& r : gen_results) {
    std::printf("  gen %-17s %.3e evals/s (%.2fx vs batched-aos)\n", r.mode.c_str(),
                r.evals_per_second, gen_baseline > 0.0 ? r.evals_per_second / gen_baseline : 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_path;
  double min_seconds = 0.4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--emit-json=", 0) == 0) {
      emit_path = std::string(arg.substr(12));
    } else if (arg.rfind("--emit-min-seconds=", 0) == 0) {
      min_seconds = std::stod(std::string(arg.substr(19)));
    }
  }
  if (!emit_path.empty()) return emit_json(emit_path, min_seconds);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
