// Ablation: CUDA thread-block granularity.
//
// The paper maps one conformation to one warp and groups warps into blocks
// "depending on the CUDA thread block granularity".  This bench sweeps
// warps-per-block for one M1 generation batch on each evaluation GPU: small
// blocks waste shared-memory reuse and occupancy slots, huge blocks hit the
// residency limits.
#include <cstdio>
#include <stdexcept>

#include "gpusim/device_db.h"
#include "gpusim/scoring_kernel.h"
#include "meta/engine.h"
#include "mol/synth.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const scoring::LennardJonesScorer scorer(receptor, ligand);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);
  const std::size_t batch = 64 * problem.spots.size();

  Table t("Block-granularity ablation — 2BSM, one M1 generation (" +
          std::to_string(batch) + " conformations)");
  std::vector<std::string> header{"warps/block (threads)"};
  for (const auto& spec : gpusim::evaluation_cards()) header.push_back(spec.name + " ms");
  t.header(header);

  for (const int wpb : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row{std::to_string(wpb) + " (" + std::to_string(wpb * 32) + ")"};
    for (const gpusim::DeviceSpec& spec : gpusim::evaluation_cards()) {
      gpusim::ScoringKernelOptions opt;
      opt.warps_per_block = wpb;
      gpusim::Device dev(spec);
      try {
        gpusim::DeviceScoringKernel kernel(dev, scorer, opt);
        const double t0 = dev.busy_seconds();
        kernel.score_cost_only(batch);
        row.push_back(Table::num((dev.busy_seconds() - t0) * 1e3));
      } catch (const std::invalid_argument&) {
        row.push_back("n/a");  // block exceeds device limits
      }
    }
    t.row(row);
  }
  t.print();
  std::printf("\nthe library default is 4 warps (128 threads) per block.\n");
  return 0;
}
