// Energy accounting — the paper's sustainability thread ("Heterogeneity may
// limit acceleration and waste energy unless programmers develop smarter
// applications", plus Table 1's performance-per-watt row).
//
// Reports modeled energy-to-solution (J) and energy efficiency for the M1
// workload on both datasets: the OpenMP baseline against the GPU
// strategies.  GPUs draw more power but finish so much sooner that
// energy-to-solution drops by an order of magnitude.
#include <cstdio>

#include "meta/engine.h"
#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;
  using util::Table;

  const meta::MetaheuristicParams params = meta::m1_genetic();
  for (const mol::Dataset& ds : {mol::kDataset2BSM, mol::kDataset2BXG}) {
    const mol::Molecule receptor = mol::make_dataset_receptor(ds);
    const mol::Molecule ligand = mol::make_dataset_ligand(ds);
    const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

    for (const sched::NodeConfig& node : {sched::jupiter(), sched::hertz()}) {
      Table t("Energy to solution — " + node.name + ", " + ds.pdb_id + ", M1");
      t.header({"strategy", "time s", "energy kJ", "avg power W", "vs OpenMP energy"});
      double openmp_energy = 0.0;
      for (const sched::Strategy s :
           {sched::Strategy::kCpu, sched::Strategy::kHomogeneous,
            sched::Strategy::kHeterogeneous}) {
        sched::ExecutorOptions opts;
        opts.strategy = s;
        sched::NodeExecutor exec(node, opts);
        const sched::ExecutionReport r = exec.estimate(problem, params);
        if (s == sched::Strategy::kCpu) openmp_energy = r.energy_joules;
        t.row({std::string(sched::strategy_name(s)), Table::num(r.makespan_seconds),
               Table::num(r.energy_joules / 1e3),
               Table::num(r.energy_joules / r.makespan_seconds, 0),
               Table::num(openmp_energy / r.energy_joules, 1) + "x less"});
      }
      t.print();
      std::printf("\n");
    }
  }
  return 0;
}
