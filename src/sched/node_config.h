// Node descriptions: a multicore CPU plus a set of (possibly heterogeneous)
// GPUs.  The two evaluation nodes of the paper (Tables 2-3) are provided as
// factories, including Jupiter's "homogeneous system" subset (only the four
// GTX 590 dies) used as the homogeneous baseline in Tables 6-7.
#pragma once

#include <string>
#include <vector>

#include "cpusim/cpu_spec.h"
#include "gpusim/device_spec.h"

namespace metadock::sched {

struct NodeConfig {
  std::string name;
  cpusim::CpuSpec cpu;
  std::vector<gpusim::DeviceSpec> gpus;

  [[nodiscard]] int gpu_count() const noexcept { return static_cast<int>(gpus.size()); }
};

/// Jupiter, full heterogeneous system: 4x GTX 590 + 2x Tesla C2075,
/// 2x Xeon E5-2620 (12 cores).
[[nodiscard]] NodeConfig jupiter();

/// Jupiter's homogeneous subset: only the 4 GTX 590 dies.
[[nodiscard]] NodeConfig jupiter_homogeneous();

/// Hertz: Tesla K40c + GTX 580, Xeon E3-1220.
[[nodiscard]] NodeConfig hertz();

/// The paper's future-work node: Hertz extended with an Intel Xeon Phi
/// ("multicore, heterogeneous GPUs and MICs" behind one scheduler).
[[nodiscard]] NodeConfig hertz_with_phi();

}  // namespace metadock::sched
