// meta::Evaluator adapters binding the metaheuristic engine to the
// simulated compute resources.
#pragma once

#include "cpusim/cpu_engine.h"
#include "gpusim/scoring_kernel.h"
#include "meta/evaluator.h"

namespace metadock::sched {

/// Scores batches on one virtual GPU (really computes; clock advances by
/// the device model).
class GpuEvaluator final : public meta::Evaluator {
 public:
  GpuEvaluator(gpusim::Device& device, const scoring::LennardJonesScorer& scorer,
               gpusim::ScoringKernelOptions options = {})
      : kernel_(device, scorer, options) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    kernel_.score(poses, out);
  }

  [[nodiscard]] double virtual_seconds() const override {
    return kernel_.device().busy_seconds();
  }

  [[nodiscard]] gpusim::DeviceScoringKernel& kernel() noexcept { return kernel_; }

 private:
  gpusim::DeviceScoringKernel kernel_;
};

/// Scores batches with the host threads while accumulating CPU-model
/// virtual time (the OpenMP baseline).
class CpuModelEvaluator final : public meta::Evaluator {
 public:
  CpuModelEvaluator(cpusim::CpuSpec spec, const scoring::LennardJonesScorer& scorer,
                    scoring::ScoringImpl impl = scoring::ScoringImpl::kAuto,
                    obs::Observer* observer = nullptr,
                    scoring::SimdLevel simd_level = scoring::default_simd_level())
      : engine_(std::move(spec), scorer, impl, simd_level) {
    engine_.set_observer(observer);
  }

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    engine_.score(poses, out);
  }

  [[nodiscard]] double virtual_seconds() const override { return engine_.busy_seconds(); }

  [[nodiscard]] cpusim::CpuScoringEngine& engine() noexcept { return engine_; }

 private:
  cpusim::CpuScoringEngine engine_;
};

}  // namespace metadock::sched
