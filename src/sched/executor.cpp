#include "sched/executor.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "meta/cached_evaluator.h"
#include "meta/trace.h"
#include "scoring/score_cache.h"
#include "sched/evaluators.h"
#include "sched/partition.h"

namespace metadock::sched {
namespace {

/// Per-device busy_seconds snapshot — the scoring-phase origin.
std::vector<double> busy_baseline(const gpusim::Runtime& rt) {
  std::vector<double> base(static_cast<std::size_t>(rt.device_count()), 0.0);
  for (int d = 0; d < rt.device_count(); ++d) {
    base[static_cast<std::size_t>(d)] = rt.device(d).busy_seconds();
  }
  return base;
}

}  // namespace

std::string_view strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kCpu:
      return "OpenMP-CPU";
    case Strategy::kHomogeneous:
      return "homogeneous";
    case Strategy::kHeterogeneous:
      return "heterogeneous";
    case Strategy::kCooperative:
      return "cooperative";
  }
  return "?";
}

NodeExecutor::NodeExecutor(NodeConfig node, ExecutorOptions options)
    : node_(std::move(node)), options_(options) {
  if (options_.strategy != Strategy::kCpu && node_.gpus.empty()) {
    throw std::invalid_argument("NodeExecutor: GPU strategy on a node without GPUs");
  }
  if (options_.warmup_iterations <= 0 || options_.warmup_batch == 0) {
    throw std::invalid_argument("NodeExecutor: warm-up configuration must be positive");
  }
  if (options_.chunk_blocks == 0) {
    throw std::invalid_argument("NodeExecutor: chunk_blocks must be positive");
  }
  if (options_.fault_policy.max_retries < 0 || options_.fault_policy.backoff_base_s < 0.0 ||
      options_.fault_policy.backoff_cap_s < options_.fault_policy.backoff_base_s) {
    throw std::invalid_argument("NodeExecutor: bad fault policy");
  }
  if (options_.cpu_tail_share < 0.0 || options_.cpu_tail_share >= 1.0) {
    throw std::invalid_argument("NodeExecutor: cpu_tail_share must be in [0, 1)");
  }
}

NodeExecutor::WarmupResult NodeExecutor::warmup(
    gpusim::Runtime& rt, const scoring::LennardJonesScorer& scorer) const {
  const auto n_dev = static_cast<std::size_t>(rt.device_count());
  WarmupResult w;
  w.times.assign(n_dev, 0.0);
  w.percents.assign(n_dev, 0.0);
  w.shares.assign(n_dev, 0.0);

  auto lose = [&w](int d) {
    ++w.faults.devices_lost;
    w.faults.lost_devices.push_back(d);
  };

  for (int d = 0; d < rt.device_count(); ++d) {
    gpusim::Device& dev = rt.device(d);
    if (dev.is_dead()) {
      lose(d);
      continue;
    }
    const double before = dev.busy_seconds();
    bool alive = true;
    {
      // Throwaway kernel instance: the warm-up "is not trying to solve the
      // docking problem in any meaningful sense" — it only probes speed.
      // Transient failures are retried (and lengthen the measured time, as
      // they would on real flaky hardware); a death or retry exhaustion
      // gives the device share 0.
      gpusim::DeviceScoringKernel probe(dev, scorer, options_.kernel);
      for (int it = 0; it < options_.warmup_iterations && alive; ++it) {
        double backoff = options_.fault_policy.backoff_base_s;
        for (int attempt = 0;; ++attempt) {
          const double attempt_before = dev.busy_seconds();
          try {
            probe.score_cost_only(options_.warmup_batch);
            break;
          } catch (const gpusim::TransientFaultError&) {
            ++w.faults.transient_faults;
            w.faults.time_lost_seconds += dev.busy_seconds() - attempt_before;
            if (attempt >= options_.fault_policy.max_retries) {
              alive = false;
              break;
            }
            ++w.faults.retries;
            dev.advance_seconds(backoff);
            w.faults.time_lost_seconds += backoff;
            backoff = std::min(backoff * 2.0, options_.fault_policy.backoff_cap_s);
          } catch (const gpusim::DeviceLostError&) {
            w.faults.time_lost_seconds += dev.busy_seconds() - attempt_before;
            alive = false;
            break;
          }
        }
      }
    }
    if (!alive) {
      lose(d);
      continue;
    }
    w.times[static_cast<std::size_t>(d)] = dev.busy_seconds() - before;
    if (options_.observer != nullptr) {
      obs::Span span;
      span.name = "warmup";
      span.category = "warmup";
      span.device = d;
      span.start_ns = static_cast<std::uint64_t>(before * 1e9);
      span.dur_ns = static_cast<std::uint64_t>(w.times[static_cast<std::size_t>(d)] * 1e9);
      span.args.emplace_back("iterations", static_cast<double>(options_.warmup_iterations));
      options_.observer->tracer.record(span);
    }
  }

  // Eq. 1 over the surviving devices; the lost ones keep the 0 sentinel.
  const double slowest = *std::max_element(w.times.begin(), w.times.end());
  if (slowest > 0.0) {
    double inv_sum = 0.0;
    for (std::size_t d = 0; d < n_dev; ++d) {
      if (w.times[d] <= 0.0) continue;
      w.percents[d] = w.times[d] / slowest;
      inv_sum += 1.0 / w.percents[d];
    }
    for (std::size_t d = 0; d < n_dev; ++d) {
      if (w.percents[d] > 0.0) w.shares[d] = (1.0 / w.percents[d]) / inv_sum;
    }
  }
  return w;
}

MultiGpuOptions NodeExecutor::multi_gpu_options(const WarmupResult& w) const {
  MultiGpuOptions mg;
  mg.kernel = options_.kernel;
  mg.faults = options_.fault_policy;
  mg.observer = options_.observer;
  mg.overlap = options_.overlap;
  mg.cpu_tail_share = options_.cpu_tail_share;
  // The node's CPU is always the last line of defense: if every GPU dies,
  // the run degrades to the kCpu scoring path instead of aborting.
  mg.cpu_fallback = node_.cpu;
  switch (options_.strategy) {
    case Strategy::kHomogeneous:
      mg.shares.assign(node_.gpus.size(), 1.0);
      break;
    case Strategy::kHeterogeneous:
      mg.shares = w.shares;
      break;
    case Strategy::kCooperative:
      mg.dynamic = true;
      mg.chunk_blocks = options_.chunk_blocks;
      break;
    case Strategy::kCpu:
      throw std::logic_error("multi_gpu_options: CPU strategy has no GPU splitter");
  }
  return mg;
}

void NodeExecutor::fill_report(ExecutionReport& report, const gpusim::Runtime& rt,
                               const MultiGpuBatchScorer& scorer, const WarmupResult& w,
                               const std::vector<double>& scoring_base) const {
  const std::vector<std::size_t>& confs = scorer.device_conformations();
  const auto total = static_cast<double>(
      std::accumulate(confs.begin(), confs.end(), std::size_t{0}));
  for (int d = 0; d < rt.device_count(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    const gpusim::Device& dev = rt.device(d);
    DeviceReport dr;
    dr.name = dev.spec().name;
    dr.conformations = confs[i];
    dr.share = total > 0.0 ? static_cast<double>(dr.conformations) / total : 0.0;
    dr.percent = w.percents.empty() ? 1.0 : w.percents[i];
    dr.busy_seconds = dev.busy_seconds();
    dr.scoring_seconds =
        dr.busy_seconds - (i < scoring_base.size() ? scoring_base[i] : 0.0);
    dr.energy_joules = dev.energy_joules();
    report.devices.push_back(dr);
  }

  // Scoring-phase balance over the devices that actually scored work: a
  // quarantined or share-0 device waits at no barrier, so it must not drag
  // the ratio to infinity.
  double t_min = 0.0, t_max = 0.0, t_sum = 0.0;
  std::size_t participants = 0;
  for (const DeviceReport& dr : report.devices) {
    if (dr.conformations == 0 || dr.scoring_seconds <= 0.0) continue;
    t_min = participants == 0 ? dr.scoring_seconds : std::min(t_min, dr.scoring_seconds);
    t_max = std::max(t_max, dr.scoring_seconds);
    t_sum += dr.scoring_seconds;
    ++participants;
  }
  if (participants >= 2 && t_min > 0.0) {
    report.imbalance_ratio = t_max / t_min;
    report.balance_efficiency = (t_sum / static_cast<double>(participants)) / t_max;
  }
  for (DeviceReport& dr : report.devices) {
    dr.busy_ratio = t_max > 0.0 ? dr.scoring_seconds / t_max : 0.0;
  }

  report.makespan_seconds = report.warmup_seconds + scorer.node_seconds();
  report.energy_joules = rt.total_energy_joules() + scorer.cpu_energy_joules();
  report.faults = w.faults;
  report.faults.merge(scorer.fault_report());

  if (options_.observer != nullptr) {
    obs::MetricsRegistry& m = options_.observer->metrics;
    m.gauge("node.makespan_seconds").set(report.makespan_seconds);
    m.gauge("node.warmup_seconds").set(report.warmup_seconds);
    m.gauge("node.energy_joules").set(report.energy_joules);
    m.gauge("node.imbalance_ratio").set(report.imbalance_ratio);
    m.gauge("node.balance_efficiency").set(report.balance_efficiency);
    for (std::size_t d = 0; d < report.devices.size(); ++d) {
      const DeviceReport& dr = report.devices[d];
      const std::string prefix = "device." + std::to_string(d) + ".";
      m.gauge(prefix + "poses_scored").set(static_cast<double>(dr.conformations));
      m.gauge(prefix + "busy_seconds").set(dr.busy_seconds);
      m.gauge(prefix + "scoring_seconds").set(dr.scoring_seconds);
      m.gauge(prefix + "busy_ratio").set(dr.busy_ratio);
      m.gauge(prefix + "share").set(dr.share);
    }
  }
}

ExecutionReport NodeExecutor::run(const meta::DockingProblem& problem,
                                  const meta::MetaheuristicParams& params) {
  const scoring::LennardJonesScorer scorer(*problem.receptor, *problem.ligand);
  const meta::MetaheuristicEngine engine(params, options_.observer);

  // Optional score cache: a decorator around whichever evaluator the
  // strategy picks.  Scores are bit-identical with or without it (the
  // cache keys on exact pose bits), so this is purely a throughput knob.
  std::optional<scoring::ScoreCache> cache;
  if (options_.score_cache_capacity > 0) {
    scoring::ScoreCacheOptions co;
    co.capacity = options_.score_cache_capacity;
    cache.emplace(co);
  }
  const auto run_engine = [&](meta::Evaluator& ev) {
    if (!cache.has_value()) return engine.run(problem, ev);
    meta::CachedEvaluator cached(ev, *cache, options_.observer);
    return engine.run(problem, cached);
  };

  ExecutionReport report;
  report.node = node_.name;
  report.strategy = options_.strategy;

  if (options_.strategy == Strategy::kCpu) {
    CpuModelEvaluator eval(node_.cpu, scorer, options_.kernel.impl, options_.observer,
                           options_.kernel.simd_level);
    report.result = run_engine(eval);
    DeviceReport dr;
    dr.name = node_.cpu.name;
    dr.conformations = report.result.evaluations;
    dr.share = 1.0;
    dr.busy_seconds = eval.engine().busy_seconds();
    dr.energy_joules = eval.engine().energy_joules();
    report.devices.push_back(dr);
    report.makespan_seconds = dr.busy_seconds;
    report.energy_joules = dr.energy_joules;
    return report;
  }

  gpusim::Runtime rt(node_.gpus, options_.fault_plan);
  rt.attach_observer(options_.observer);
  WarmupResult w;
  if (options_.strategy == Strategy::kHeterogeneous) {
    w = warmup(rt, scorer);
    report.warmup_seconds = *std::max_element(w.times.begin(), w.times.end());
  }

  const std::vector<double> scoring_base = busy_baseline(rt);
  MultiGpuBatchScorer mgs(rt, scorer, multi_gpu_options(w));
  report.result = run_engine(mgs);
  fill_report(report, rt, mgs, w, scoring_base);
  return report;
}

ExecutionReport NodeExecutor::estimate(const meta::DockingProblem& problem,
                                       const meta::MetaheuristicParams& params,
                                       std::size_t spot_override) {
  const scoring::LennardJonesScorer scorer(*problem.receptor, *problem.ligand);
  const meta::WorkloadTrace trace = meta::WorkloadTrace::from_params(params);
  const std::size_t n_spots = spot_override ? spot_override : problem.spots.size();

  ExecutionReport report;
  report.node = node_.name;
  report.strategy = options_.strategy;

  if (options_.strategy == Strategy::kCpu) {
    cpusim::CpuScoringEngine engine(node_.cpu, scorer);
    engine.score_cost_only(trace.evals_per_spot() * n_spots);
    DeviceReport dr;
    dr.name = node_.cpu.name;
    dr.conformations = trace.evals_per_spot() * n_spots;
    dr.share = 1.0;
    dr.busy_seconds = engine.busy_seconds();
    dr.energy_joules = engine.energy_joules();
    report.devices.push_back(dr);
    report.makespan_seconds = dr.busy_seconds;
    report.energy_joules = dr.energy_joules;
    return report;
  }

  gpusim::Runtime rt(node_.gpus, options_.fault_plan);
  rt.attach_observer(options_.observer);
  WarmupResult w;
  if (options_.strategy == Strategy::kHeterogeneous) {
    w = warmup(rt, scorer);
    report.warmup_seconds = *std::max_element(w.times.begin(), w.times.end());
  }

  const std::vector<double> scoring_base = busy_baseline(rt);
  MultiGpuBatchScorer mgs(rt, scorer, multi_gpu_options(w));
  for (std::size_t batch : trace.per_spot_batches) {
    mgs.evaluate_cost_only(batch * n_spots);
  }
  fill_report(report, rt, mgs, w, scoring_base);
  return report;
}

}  // namespace metadock::sched
