#include "sched/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace metadock::sched {

Partition equal_partition(std::size_t n_items, std::size_t n_bins) {
  if (n_bins == 0) throw std::invalid_argument("equal_partition: zero bins");
  Partition out(n_bins);
  const std::size_t base = n_items / n_bins;
  const std::size_t extra = n_items % n_bins;
  std::size_t next = 0;
  for (std::size_t b = 0; b < n_bins; ++b) {
    const std::size_t take = base + (b < extra ? 1 : 0);
    out[b].resize(take);
    std::iota(out[b].begin(), out[b].end(), next);
    next += take;
  }
  return out;
}

Partition weighted_partition(std::size_t n_items, const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_partition: no weights");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("weighted_partition: weights must be finite and >= 0");
    }
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("weighted_partition: weights sum to zero");

  // Largest-remainder apportionment.
  const std::size_t n_bins = weights.size();
  std::vector<std::size_t> counts(n_bins, 0);
  std::vector<double> remainders(n_bins, 0.0);
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < n_bins; ++b) {
    const double exact = static_cast<double>(n_items) * weights[b] / sum;
    counts[b] = static_cast<std::size_t>(std::floor(exact));
    remainders[b] = exact - std::floor(exact);
    assigned += counts[b];
  }
  std::vector<std::size_t> order(n_bins);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return remainders[a] > remainders[b]; });
  for (std::size_t i = 0; assigned < n_items; ++i) {
    ++counts[order[i % n_bins]];
    ++assigned;
  }

  Partition out(n_bins);
  std::size_t next = 0;
  for (std::size_t b = 0; b < n_bins; ++b) {
    out[b].resize(counts[b]);
    std::iota(out[b].begin(), out[b].end(), next);
    next += counts[b];
  }
  return out;
}

std::vector<double> percents_from_times(const std::vector<double>& warmup_times) {
  if (warmup_times.empty()) {
    // An empty vector means the warm-up measured nothing — typically every
    // device was quarantined by the fault plan.  Silently returning {} lets
    // shares_from_percents/weighted_partition fail later with a message
    // that no longer points at the cause, so diagnose it here.
    throw std::invalid_argument(
        "percents_from_times: no warm-up times (every device lost before the warm-up?)");
  }
  const double slowest = *std::max_element(warmup_times.begin(), warmup_times.end());
  if (slowest <= 0.0) {
    throw std::invalid_argument("percents_from_times: warm-up times must be positive");
  }
  std::vector<double> out;
  out.reserve(warmup_times.size());
  for (double t : warmup_times) {
    if (t <= 0.0) {
      throw std::invalid_argument("percents_from_times: warm-up times must be positive");
    }
    out.push_back(t / slowest);
  }
  return out;
}

std::vector<double> shares_from_percents(const std::vector<double>& percents) {
  if (percents.empty()) {
    throw std::invalid_argument("shares_from_percents: no Percent values (empty device list?)");
  }
  std::vector<double> shares;
  shares.reserve(percents.size());
  double sum = 0.0;
  for (double p : percents) {
    if (p <= 0.0) throw std::invalid_argument("shares_from_percents: Percent must be positive");
    shares.push_back(1.0 / p);
    sum += shares.back();
  }
  for (double& s : shares) s /= sum;
  return shares;
}

}  // namespace metadock::sched
