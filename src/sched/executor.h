// Node-level execution strategies — the heart of the paper.
//
//   * kCpu           — the OpenMP multicore baseline (no GPUs).
//   * kHomogeneous   — Algorithm 2: one controller thread per GPU; every
//                      scoring batch is "equally distributed among GPUs in
//                      form of CUDA thread blocks".
//   * kHeterogeneous — Section 3.3: a warm-up phase times a few
//                      metaheuristic iterations on every GPU, Percent_g =
//                      t_g / t_slowest (Eq. 1), and every batch is split
//                      proportionally to 1/Percent so all GPUs finish each
//                      barrier together.
//   * kCooperative   — dynamic extension ("cooperative scheduling of
//                      jobs"): devices pull block chunks from a shared
//                      queue; no warm-up needed, but each pull pays a
//                      dispatch latency.
//
// Every strategy exists in two forms: run() really executes the docking
// (numeric results + virtual time), and estimate() replays the analytic
// workload trace through the same device models, timing a full paper-scale
// run in milliseconds of host time.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "gpusim/runtime.h"
#include "gpusim/scoring_kernel.h"
#include "meta/engine.h"
#include "meta/params.h"
#include "sched/multi_gpu.h"
#include "sched/node_config.h"

namespace metadock::sched {

enum class Strategy { kCpu, kHomogeneous, kHeterogeneous, kCooperative };

[[nodiscard]] std::string_view strategy_name(Strategy s);

struct ExecutorOptions {
  Strategy strategy = Strategy::kHeterogeneous;
  /// Warm-up iterations (the paper uses five to ten).
  int warmup_iterations = 8;
  /// Conformations per warm-up iteration per GPU.  Must be large enough
  /// that SM-count quantization does not distort the measured Percent —
  /// the warm-up "measures the execution time of a small number of
  /// iterations of the metaheuristic", and a metaheuristic iteration is a
  /// full population batch, so a few hundred blocks is representative.
  std::size_t warmup_batch = 2048;
  /// Blocks per queue pull for kCooperative.
  std::size_t chunk_blocks = 128;
  gpusim::ScoringKernelOptions kernel;
  /// Seeded fault schedule injected into the node's devices (empty = none).
  gpusim::FaultPlan fault_plan;
  /// Retry/quarantine/rebalance policy applied when faults fire.
  FaultPolicy fault_policy;
  /// Observability sink (nullable = off): spans for warm-up, kernels,
  /// copies and metaheuristic iterations on the devices' virtual clocks,
  /// plus the per-device/imbalance metrics (see DESIGN.md §9).
  obs::Observer* observer = nullptr;
  /// Score-cache entry budget (`--score-cache`); 0 disables the cache.
  /// When on, the evaluator is wrapped in meta::CachedEvaluator so
  /// revisited conformations skip rescoring — scores are bit-identical
  /// either way (exact-bit keys; see scoring/score_cache.h).
  std::size_t score_cache_capacity = 0;
  /// Double-buffered stream overlap per device slice (`--overlap`); ignored
  /// by kCooperative whose chunk queue already interleaves devices.  Scores
  /// are bit-identical either way — only the virtual timeline changes.
  bool overlap = true;
  /// Fraction of each batch the host CPU scores concurrently with the GPU
  /// pipelines (`--cpu-tail-share`, overlapped strategies only; needs the
  /// node's CPU spec, which NodeConfig always carries).  Must be in [0, 1).
  double cpu_tail_share = 0.0;
};

struct DeviceReport {
  std::string name;
  /// Conformations this device scored over the whole run.
  std::size_t conformations = 0;
  double share = 0.0;    // fraction of all conformations
  double percent = 1.0;  // Eq. 1 value measured in the warm-up
  double busy_seconds = 0.0;
  /// Busy seconds in the scoring phase only (excludes the warm-up probe) —
  /// the time the Eq. 1 split is supposed to equalize across devices.
  double scoring_seconds = 0.0;
  /// scoring_seconds / slowest device's scoring_seconds (t_g/t_slowest);
  /// 1.0 for the slowest device, 0 for a device that scored nothing.
  double busy_ratio = 0.0;
  double energy_joules = 0.0;
};

struct ExecutionReport {
  std::string node;
  Strategy strategy = Strategy::kCpu;
  /// End-to-end virtual time: warm-up (if any) + the barrier-aware sum of
  /// per-batch maxima.
  double makespan_seconds = 0.0;
  double warmup_seconds = 0.0;
  double energy_joules = 0.0;
  /// Scoring-phase load imbalance: slowest / fastest scoring_seconds over
  /// the devices that scored work (1.0 = perfectly balanced; 1.0 when
  /// fewer than two devices participated).  The Eq. 1 warm-up split exists
  /// to push this toward 1 on unequal devices.
  double imbalance_ratio = 1.0;
  /// mean / max scoring_seconds over participating devices — the fraction
  /// of the barrier interval the average device was busy (1.0 = no device
  /// ever waited at the batch barrier).
  double balance_efficiency = 1.0;
  std::vector<DeviceReport> devices;
  /// Retries, quarantines, re-splits and degradation under the fault plan
  /// (all zero for a fault-free run).
  FaultReport faults;
  /// Populated by run(); empty for estimate().
  meta::RunResult result;
};

class NodeExecutor {
 public:
  NodeExecutor(NodeConfig node, ExecutorOptions options = {});

  /// Really executes the docking under the configured strategy.
  [[nodiscard]] ExecutionReport run(const meta::DockingProblem& problem,
                                    const meta::MetaheuristicParams& params);

  /// Times a run of `params` over problem.spots (or `spot_override` spots
  /// when nonzero) by replaying the analytic workload trace — no numerics.
  [[nodiscard]] ExecutionReport estimate(const meta::DockingProblem& problem,
                                         const meta::MetaheuristicParams& params,
                                         std::size_t spot_override = 0);

  [[nodiscard]] const NodeConfig& node() const noexcept { return node_; }
  [[nodiscard]] const ExecutorOptions& options() const noexcept { return options_; }

 private:
  struct WarmupResult {
    std::vector<double> times;     // per-GPU warm-up seconds (0 = device lost)
    std::vector<double> percents;  // Eq. 1 (0 sentinel for lost devices)
    std::vector<double> shares;    // Eq. 1 shares (0 for lost devices)
    FaultReport faults;            // faults absorbed during the warm-up
  };

  /// Runs the warm-up probe on every GPU of `rt` (cost-only; it occupies
  /// the devices exactly as the real warm-up occupies real GPUs).  A device
  /// that dies or exhausts its retries during the probe gets share 0; the
  /// remaining devices split the work by Eq. 1 as usual.
  [[nodiscard]] WarmupResult warmup(gpusim::Runtime& rt,
                                    const scoring::LennardJonesScorer& scorer) const;

  /// Builds the batch-splitter configuration for the strategy.
  [[nodiscard]] MultiGpuOptions multi_gpu_options(const WarmupResult& w) const;

  /// Shared tail of run()/estimate(): fills the per-device section and the
  /// imbalance figures.  `scoring_base` is each device's busy_seconds
  /// sampled after the warm-up, so scoring_seconds = busy - base isolates
  /// the phase the Eq. 1 split is meant to balance.
  void fill_report(ExecutionReport& report, const gpusim::Runtime& rt,
                   const MultiGpuBatchScorer& scorer, const WarmupResult& w,
                   const std::vector<double>& scoring_base) const;

  NodeConfig node_;
  ExecutorOptions options_;
};

}  // namespace metadock::sched
