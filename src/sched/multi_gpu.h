// Multi-GPU batch scorer — Algorithm 2 of the paper.
//
// Every scoring call (one Scom batch) is split across the node's GPUs at
// thread-block granularity: device g receives a contiguous stride of
// conformations sized by its share ("each GPU calculates the scoring
// function for a set of candidate solutions ... equally distributed among
// GPUs in form of CUDA thread blocks" — or proportionally to 1/Percent in
// the heterogeneous algorithm).  The host joins all controller threads
// before the metaheuristic continues, so each batch costs the *maximum*
// over the devices' times — the barrier that makes load balance matter.
//
// Split policies:
//   * static shares (homogeneous = equal, heterogeneous = Eq. 1 warm-up) —
//     one H2D/kernel/D2H round per device per batch;
//   * dynamic ("cooperative scheduling of jobs"): blocks are pulled from a
//     shared queue in fixed-size chunks by whichever device is predicted
//     free first; needs no warm-up but pays a dispatch latency per pull.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "gpusim/runtime.h"
#include "gpusim/scoring_kernel.h"
#include "meta/evaluator.h"
#include "scoring/lennard_jones.h"

namespace metadock::sched {

struct MultiGpuOptions {
  gpusim::ScoringKernelOptions kernel;
  /// Static split: per-device work shares (normalized internally).  Leave
  /// empty with dynamic=true for the cooperative scheduler.
  std::vector<double> shares;
  /// Dynamic block-queue mode.
  bool dynamic = false;
  /// Blocks per queue pull in dynamic mode.  Each pull costs a dispatch
  /// latency plus a kernel-launch overhead, so very small chunks trade
  /// balance for overhead (the scheduler-granularity ablation).
  std::size_t chunk_blocks = 128;
  /// Modeled host-side dispatch latency per dynamic pull, seconds.
  double pull_latency_s = 3e-6;
};

/// Splits `n` conformations into per-device contiguous counts proportional
/// to `shares`, rounded to whole blocks of `warps_per_block` conformations
/// (largest-remainder on blocks).
[[nodiscard]] std::vector<std::size_t> split_batch(std::size_t n, int warps_per_block,
                                                   const std::vector<double>& shares);

class MultiGpuBatchScorer final : public meta::Evaluator {
 public:
  /// Binds all devices of `rt`; the molecule upload to every device is
  /// accounted immediately (devices load in parallel -> node pays the max).
  MultiGpuBatchScorer(gpusim::Runtime& rt, const scoring::LennardJonesScorer& scorer,
                      MultiGpuOptions options);

  /// Real scoring: splits the batch, runs every device's slice, advances
  /// node time by the slowest device's delta.
  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override;

  /// Cost-only variant for trace replay.
  void evaluate_cost_only(std::size_t n);

  /// Barrier-aware node time: molecule upload + sum over batches of the
  /// slowest device's per-batch time.
  [[nodiscard]] double node_seconds() const noexcept { return node_seconds_; }

  /// Conformations each device has scored so far.
  [[nodiscard]] const std::vector<std::size_t>& device_conformations() const noexcept {
    return device_confs_;
  }

 private:
  template <typename RunSlice>
  void dispatch(std::size_t n, RunSlice&& run_slice);

  gpusim::Runtime& rt_;
  MultiGpuOptions options_;
  std::deque<gpusim::DeviceScoringKernel> kernels_;
  std::vector<double> norm_shares_;
  std::vector<std::size_t> device_confs_;
  double node_seconds_ = 0.0;
};

}  // namespace metadock::sched
