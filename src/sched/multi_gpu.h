// Multi-GPU batch scorer — Algorithm 2 of the paper, hardened against
// device faults.
//
// Every scoring call (one Scom batch) is split across the node's GPUs at
// thread-block granularity: device g receives a contiguous stride of
// conformations sized by its share ("each GPU calculates the scoring
// function for a set of candidate solutions ... equally distributed among
// GPUs in form of CUDA thread blocks" — or proportionally to 1/Percent in
// the heterogeneous algorithm).  The host joins all controller threads
// before the metaheuristic continues, so each batch costs the *maximum*
// over the devices' times — the barrier that makes load balance matter.
//
// Split policies:
//   * static shares (homogeneous = equal, heterogeneous = Eq. 1 warm-up) —
//     one H2D/kernel/D2H round per device per batch;
//   * dynamic ("cooperative scheduling of jobs"): blocks are pulled from a
//     shared queue in fixed-size chunks by whichever device is predicted
//     free first; needs no warm-up but pays a dispatch latency per pull.
//
// Overlapped dispatch (`overlap`, default on for the static splits): each
// device's slice becomes a double-buffered two-stream pipeline — upload
// half 1 / launch half 1 / upload half 2 (overlapping kernel 1) / launch
// half 2 / download (overlapping kernel 2 via a recorded event) — so the
// barrier hides most of the PCIe time behind compute.  Optionally the host
// CPU scores a tail share of every batch concurrently (`cpu_tail_share`)
// and the barrier takes max(GPU pipelines, CPU tail).  Scores are
// bit-identical to the serial path; only the virtual timeline changes.
//
// Fault tolerance (gpusim::FaultPlan attached to the Runtime):
//   * transient launch failures are retried with capped exponential
//     backoff (FaultPolicy);
//   * a dead device (or one that exhausts its retries) is quarantined; its
//     in-flight slice is re-split across the survivors with the shares
//     renormalized, so survivors absorb the lost share proportionally;
//   * static shares are optionally re-derived from observed per-device
//     throughput every `rebalance_batches` batches (straggler demotion);
//   * when every GPU is lost, scoring degrades to the CPU model
//     (`cpu_fallback`) instead of aborting; without a fallback the typed
//     gpusim::AllDevicesLostError is raised.
// Every retry/quarantine/re-split is counted in the FaultReport, and no
// score is ever silently dropped: a slice either completes on some device
// (or the CPU) or the scorer throws.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "cpusim/cpu_engine.h"
#include "gpusim/runtime.h"
#include "gpusim/scoring_kernel.h"
#include "meta/evaluator.h"
#include "obs/observer.h"
#include "sched/fault.h"
#include "scoring/lennard_jones.h"
#include "util/pool.h"
#include "util/sync.h"

namespace metadock::sched {

struct MultiGpuOptions {
  gpusim::ScoringKernelOptions kernel;
  /// Static split: per-device work shares (normalized internally).  Leave
  /// empty with dynamic=true for the cooperative scheduler.
  std::vector<double> shares;
  /// Dynamic block-queue mode.
  bool dynamic = false;
  /// Blocks per queue pull in dynamic mode.  Each pull costs a dispatch
  /// latency plus a kernel-launch overhead, so very small chunks trade
  /// balance for overhead (the scheduler-granularity ablation).
  std::size_t chunk_blocks = 128;
  /// Modeled host-side dispatch latency per dynamic pull, seconds.
  double pull_latency_s = 3e-6;
  /// Retry/quarantine/rebalance policy for injected faults.
  FaultPolicy faults;
  /// Double-buffered stream overlap (`--overlap`): each device's slice is
  /// pipelined as two half-batches across two streams, so H2D for one half
  /// overlaps the kernel of the other and D2H rides the transfer stream.
  /// Off reproduces the paper's fully synchronous Algorithm 2 round.
  /// Ignored (always serial) in dynamic mode, whose chunk queue already
  /// interleaves devices.  Scores are bit-identical either way — only the
  /// virtual timeline changes.
  bool overlap = true;
  /// Fraction of every batch the host CPU scores concurrently with the GPU
  /// pipelines (`--cpu-tail-share`, overlapped static mode only): the
  /// barrier takes max(GPU pipelines, CPU tail).  0 disables the tail;
  /// requires `cpu_fallback` as the engine.  Must be < 1.
  double cpu_tail_share = 0.0;
  /// CPU that absorbs the workload once every GPU is lost.  Without it, an
  /// all-devices-lost run throws gpusim::AllDevicesLostError.
  std::optional<cpusim::CpuSpec> cpu_fallback;
  /// Observability sink (nullable = off): batch spans on the host track,
  /// retry/quarantine/re-split/rebalance events, "sched.*" counters.
  obs::Observer* observer = nullptr;
};

/// Splits `n` conformations into per-device contiguous counts proportional
/// to `shares`, rounded to whole blocks of `warps_per_block` conformations
/// (largest-remainder on blocks).
[[nodiscard]] std::vector<std::size_t> split_batch(std::size_t n, int warps_per_block,
                                                   const std::vector<double>& shares);

/// Allocation-free core of split_batch: writes per-device counts into
/// `counts` (size must equal shares.size()); working buffers come from
/// `scratch` (LIFO-released before returning).
void split_batch_into(std::size_t n, int warps_per_block, std::span<const double> shares,
                      std::span<std::size_t> counts, util::Arena& scratch);

class MultiGpuBatchScorer final : public meta::Evaluator {
 public:
  /// Binds all devices of `rt`; the molecule upload to every device is
  /// accounted immediately (devices load in parallel -> node pays the max).
  /// Devices already dead under the runtime's fault plan are quarantined
  /// up front.
  MultiGpuBatchScorer(gpusim::Runtime& rt, const scoring::LennardJonesScorer& scorer,
                      MultiGpuOptions options);

  /// Real scoring: splits the batch, runs every device's slice, advances
  /// node time by the slowest device's delta.
  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override;

  /// Cost-only variant for trace replay.
  void evaluate_cost_only(std::size_t n);

  /// Barrier-aware node time: molecule upload + sum over batches of the
  /// slowest device's per-batch time (plus CPU-fallback time when engaged).
  [[nodiscard]] double node_seconds() const noexcept {
    util::ScopedSerial own(serial_);
    return node_seconds_;
  }

  /// Engine-facing timeline (meta::Evaluator): the barrier-aware node time.
  [[nodiscard]] double virtual_seconds() const override {
    util::ScopedSerial own(serial_);
    return node_seconds_;
  }

  /// Conformations each device has scored so far.
  [[nodiscard]] const std::vector<std::size_t>& device_conformations() const noexcept {
    util::ScopedSerial own(serial_);
    return device_confs_;
  }

  /// Fault accounting for the work dispatched so far.
  [[nodiscard]] const FaultReport& fault_report() const noexcept {
    util::ScopedSerial own(serial_);
    return faults_;
  }

  /// Modeled energy spent by the CPU engines (fallback + tail; 0 when
  /// neither was ever engaged).
  [[nodiscard]] double cpu_energy_joules() const noexcept {
    return (cpu_ ? cpu_->energy_joules() : 0.0) +
           (tail_cpu_ ? tail_cpu_->energy_joules() : 0.0);
  }

  /// Conformations the CPU tail partition has scored so far.
  [[nodiscard]] std::size_t cpu_tail_conformations() const noexcept {
    util::ScopedSerial own(serial_);
    return cpu_tail_confs_;
  }

  /// True when the device has been quarantined (dead or retries exhausted).
  [[nodiscard]] bool quarantined(std::size_t device) const {
    util::ScopedSerial own(serial_);
    return quarantined_.at(device);
  }

  /// Current static shares (renormalization happens at split time; all-zero
  /// means every device is quarantined).
  [[nodiscard]] const std::vector<double>& current_shares() const noexcept {
    util::ScopedSerial own(serial_);
    return shares_;
  }

 private:
  struct Slice {
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  template <typename RunSlice, typename RunAsync, typename CpuSlice, typename TailSlice>
  void dispatch(std::size_t n, RunSlice&& run_slice, RunAsync&& run_async,
                CpuSlice&& cpu_slice, TailSlice&& tail_slice) REQUIRES(serial_);

  /// Runs one slice on one device, retrying transients per the policy.
  /// Returns false when the device must be quarantined (slice not done).
  template <typename RunSlice>
  bool run_with_retries(std::size_t d, std::size_t offset, std::size_t count,
                        RunSlice&& run_slice) REQUIRES(serial_);

  /// Overlapped double-buffered pipeline for one device's slice: the slice
  /// is split into two block-aligned halves issued on two streams (upload
  /// overlaps the sibling half's kernel; downloads ride the first stream,
  /// the second half joining via a recorded event).  Returns the completed
  /// prefix in poses — `count` on success, less when the device died or
  /// exhausted its retries mid-pipeline (the caller re-splits the rest).
  template <typename RunAsync>
  std::size_t run_overlapped(std::size_t d, std::size_t offset, std::size_t count,
                             RunAsync&& run_async) REQUIRES(serial_);

  /// Retry loop for one half on one stream; backoff stalls only that
  /// stream.  Returns false on retry exhaustion; DeviceLostError escapes to
  /// run_overlapped.
  template <typename RunAsync>
  bool run_half_with_retries(std::size_t d, int stream, std::size_t offset,
                             std::size_t count, RunAsync&& run_async) REQUIRES(serial_);

  [[nodiscard]] bool overlap_enabled() const noexcept {
    return options_.overlap && !options_.dynamic;
  }
  /// Lazily creates the two pipeline streams of device `d`.
  void ensure_streams(std::size_t d) REQUIRES(serial_);
  /// Lazily creates the CPU tail engine (requires cpu_fallback; validated
  /// at construction).
  cpusim::CpuScoringEngine& engage_tail() REQUIRES(serial_);

  void quarantine(std::size_t d) REQUIRES(serial_);
  [[nodiscard]] std::vector<std::size_t> alive_devices() const REQUIRES(serial_);
  /// Allocation-free variant for dispatch(): refills `out` with the
  /// indices of non-quarantined devices.
  void alive_into(util::ArenaVector<std::size_t>& out) const REQUIRES(serial_);
  /// Ensures the CPU fallback engine exists (throws AllDevicesLostError
  /// when no fallback CPU was configured).
  cpusim::CpuScoringEngine& engage_cpu() REQUIRES(serial_);
  void maybe_rebalance() REQUIRES(serial_);

  /// Single-owner role capability (DESIGN.md §16): the Evaluator contract
  /// says one logical thread drives the scorer, and every entry point
  /// claims this role for its duration.  The scoring-callback lambdas in
  /// evaluate()/evaluate_cost_only() are analyzed as separate functions
  /// without the role, which is exactly the point — they may touch only
  /// the unguarded engine state (kernels_, cpu_, tail_cpu_), never the
  /// dispatch bookkeeping below.
  mutable util::Serial serial_;

  gpusim::Runtime& rt_;
  MultiGpuOptions options_;
  std::deque<std::optional<gpusim::DeviceScoringKernel>> kernels_;
  /// Working shares; 0 for quarantined devices.
  std::vector<double> shares_ GUARDED_BY(serial_);
  std::vector<bool> quarantined_ GUARDED_BY(serial_);
  std::vector<std::size_t> device_confs_ GUARDED_BY(serial_);
  double node_seconds_ GUARDED_BY(serial_) = 0.0;

  /// Backs all per-batch scratch in dispatch() (slice worklist, shares,
  /// split counts, device snapshots).  The scorer is single-threaded per
  /// the Evaluator contract, so a member arena is thread-confined; each
  /// dispatch() opens an ArenaScope, so steady state allocates nothing.
  util::Arena arena_;
  FaultReport faults_ GUARDED_BY(serial_);
  std::optional<cpusim::CpuScoringEngine> cpu_;
  /// Separate engine for the concurrent tail partition: the fallback engine
  /// (`cpu_`) serializes behind the barrier, the tail runs inside it.
  std::optional<cpusim::CpuScoringEngine> tail_cpu_;
  std::size_t cpu_tail_confs_ GUARDED_BY(serial_) = 0;
  /// Per-device pipeline stream ids ({-1,-1} until first overlapped use).
  std::vector<std::array<int, 2>> stream_ids_ GUARDED_BY(serial_);
  const scoring::LennardJonesScorer& scorer_;
  // Observed-throughput window for straggler rebalancing.  Both evaluate()
  // and evaluate_cost_only() feed it through the shared dispatch path, so a
  // trace replay rebalances exactly like the real run it replays.
  std::vector<std::size_t> window_confs_ GUARDED_BY(serial_);
  std::vector<double> window_seconds_ GUARDED_BY(serial_);
  std::size_t batches_dispatched_ GUARDED_BY(serial_) = 0;
};

}  // namespace metadock::sched
