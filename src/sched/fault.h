// Fault-handling policy and accounting for the node schedulers.
//
// The batch scorer survives the fault classes of gpusim::FaultPlan by
//   * retrying transient failures with capped exponential backoff,
//   * quarantining dead devices and re-splitting their in-flight slice
//     across the survivors (shares renormalized, so survivors absorb the
//     lost share proportionally to their Eq. 1 shares),
//   * periodically re-deriving shares from observed per-device throughput
//     (the "re-warm-up" that demotes stragglers), and
//   * degrading to the CPU scoring path when every GPU is lost.
// FaultReport is the per-run account of all of it, threaded through
// sched::ExecutionReport into vs reports.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace metadock::sched {

struct FaultPolicy {
  /// Retries per transient failure before the device is quarantined.
  int max_retries = 3;
  /// First retry backoff (virtual seconds); doubles per retry up to the cap.
  double backoff_base_s = 1e-4;
  double backoff_cap_s = 1e-2;
  /// Re-derive static shares from observed per-device throughput every this
  /// many batches (0 = off).  This is the periodic re-warm-up that shrinks a
  /// straggler's share after its slowdown sets in.
  std::size_t rebalance_batches = 0;
};

struct FaultReport {
  /// Transient kernel failures observed (injected faults that fired).
  std::uint64_t transient_faults = 0;
  /// Retry launches issued in response.
  std::uint64_t retries = 0;
  /// Devices quarantined (died, or exhausted their retries).
  std::uint64_t devices_lost = 0;
  /// Slices re-split across survivors after a quarantine.
  std::uint64_t resplits = 0;
  /// Observed-throughput share recomputations performed.
  std::uint64_t rebalances = 0;
  /// Conformations absorbed by the CPU fallback path.
  std::uint64_t cpu_fallback_conformations = 0;
  /// Virtual time burned by failed launches and backoff stalls.
  double time_lost_seconds = 0.0;
  /// True once every GPU was lost and the run continued on the CPU model.
  bool degraded_to_cpu = false;
  /// Ordinals of quarantined devices, in quarantine order.
  std::vector<int> lost_devices;

  [[nodiscard]] bool any() const noexcept {
    return transient_faults > 0 || retries > 0 || devices_lost > 0 || resplits > 0 ||
           rebalances > 0 || cpu_fallback_conformations > 0 || degraded_to_cpu ||
           time_lost_seconds > 0.0;
  }

  /// Combines accounting from two phases over the same devices (e.g.
  /// warm-up + batch scoring).  A device can only die once, so losses are
  /// deduplicated by ordinal.
  void merge(const FaultReport& o) {
    transient_faults += o.transient_faults;
    retries += o.retries;
    resplits += o.resplits;
    rebalances += o.rebalances;
    cpu_fallback_conformations += o.cpu_fallback_conformations;
    time_lost_seconds += o.time_lost_seconds;
    degraded_to_cpu = degraded_to_cpu || o.degraded_to_cpu;
    for (int d : o.lost_devices) {
      if (std::find(lost_devices.begin(), lost_devices.end(), d) == lost_devices.end()) {
        lost_devices.push_back(d);
      }
    }
    devices_lost = lost_devices.size();
  }
};

}  // namespace metadock::sched
