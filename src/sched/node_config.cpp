#include "sched/node_config.h"

#include "gpusim/device_db.h"

namespace metadock::sched {

NodeConfig jupiter() {
  NodeConfig n;
  n.name = "Jupiter";
  n.cpu = cpusim::xeon_e5_2620_dual();
  for (int i = 0; i < 4; ++i) n.gpus.push_back(gpusim::geforce_gtx590());
  for (int i = 0; i < 2; ++i) n.gpus.push_back(gpusim::tesla_c2075());
  return n;
}

NodeConfig jupiter_homogeneous() {
  NodeConfig n;
  n.name = "Jupiter (4x GTX 590)";
  n.cpu = cpusim::xeon_e5_2620_dual();
  for (int i = 0; i < 4; ++i) n.gpus.push_back(gpusim::geforce_gtx590());
  return n;
}

NodeConfig hertz() {
  NodeConfig n;
  n.name = "Hertz";
  n.cpu = cpusim::xeon_e3_1220();
  n.gpus.push_back(gpusim::tesla_k40c());
  n.gpus.push_back(gpusim::geforce_gtx580());
  return n;
}

NodeConfig hertz_with_phi() {
  NodeConfig n = hertz();
  n.name = "Hertz + Xeon Phi";
  n.gpus.push_back(gpusim::xeon_phi_5110p());
  return n;
}

}  // namespace metadock::sched
