#include "sched/message.h"

namespace metadock::sched {

std::string_view message_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kBroadcast: return "broadcast";
    case MessageKind::kShardSend: return "shard_send";
    case MessageKind::kPullRequest: return "pull_request";
    case MessageKind::kDispatch: return "dispatch";
    case MessageKind::kResultReturn: return "result_return";
    case MessageKind::kStealRequest: return "steal_request";
    case MessageKind::kStealForward: return "steal_forward";
    case MessageKind::kStealBlock: return "steal_block";
    case MessageKind::kHandoffState: return "handoff_state";
    case MessageKind::kDeathNotice: return "death_notice";
  }
  return "unknown";
}

}  // namespace metadock::sched
