// MPI-style message layer for the multi-node cluster simulator.
//
// Every byte that crosses the interconnect is priced by NetworkModel
// (latency + bandwidth, the alpha-beta model), and every send is accounted
// per message kind in MessageStats so a ClusterReport can show where the
// communication time went.  The master additionally serializes its
// *control plane*: dispatch decisions, steal brokering and death handling
// occupy the master for `master_service_s` each — the classic master/worker
// scaling ceiling that continuous work stealing exists to avoid.  Result
// returns sink through a parallel collector and pay network time only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace metadock::sched {

/// Latency + bandwidth interconnect model shared by every message of a
/// cluster campaign, plus the two control-plane constants of the master.
struct NetworkModel {
  double latency_s = 50e-6;
  double bandwidth_gbs = 5.0;
  /// Master control-plane serialization: each pull request, steal
  /// brokering step, shard dispatch and death reassignment occupies the
  /// master for this long.  With N nodes pulling one ligand at a time the
  /// master saturates at 1/master_service_s dispatches per second — the
  /// reason per-ligand master/worker stops scaling before work stealing.
  double master_service_s = 1e-4;
  /// Failure-detector timeout: virtual seconds between a node dying and
  /// the master learning about it (heartbeat loss) and starting to
  /// reassign the dead node's shard.
  double death_detect_s = 2e-3;

  [[nodiscard]] double message_time_s(double bytes) const {
    return latency_s + bytes / (bandwidth_gbs * 1e9);
  }
};

/// Every message class the cluster protocol sends.
enum class MessageKind {
  kBroadcast = 0,    // receptor to all nodes (tree)
  kShardSend,        // initial ligand shard to one node (static/stealing)
  kPullRequest,      // idle worker asks the master for a ligand (dynamic)
  kDispatch,         // master ships one ligand (dynamic) or a reassigned block
  kResultReturn,     // per-ligand best pose back to the master
  kStealRequest,     // under-threshold node asks the master for work
  kStealForward,     // master forwards the request to the chosen victim
  kStealBlock,       // victim ships queued ligands (or a grant denial)
  kHandoffState,     // victim ships an in-flight ligand's population state
  kDeathNotice,      // failure detector: master learns a node died
};
inline constexpr std::size_t kMessageKindCount = 10;

[[nodiscard]] std::string_view message_name(MessageKind kind);

/// Wire sizes (bytes).  Control messages are tiny and latency-bound;
/// ligand descriptors and population state scale with the science payload.
inline constexpr double kControlBytes = 64.0;
inline constexpr double kResultBytes = 512.0;

/// Receptor broadcast payload: coordinates + element + charge per atom.
[[nodiscard]] constexpr double receptor_payload_bytes(std::size_t receptor_atoms) {
  return 17.0 * static_cast<double>(receptor_atoms);
}

/// One ligand's dispatch payload: descriptor plus coordinates/topology.
[[nodiscard]] constexpr double ligand_payload_bytes(std::size_t ligand_atoms) {
  return 64.0 + 24.0 * static_cast<double>(ligand_atoms);
}

/// Population state shipped when an in-flight docking migrates at a
/// generation boundary: one pose + score per individual.
[[nodiscard]] constexpr double handoff_state_bytes(std::size_t population) {
  return 128.0 + 36.0 * static_cast<double>(population);
}

/// Per-kind send accounting for one simulated campaign.
struct MessageStats {
  struct Entry {
    std::uint64_t count = 0;
    double seconds = 0.0;
  };
  std::array<Entry, kMessageKindCount> by_kind{};
  /// Seconds the master's control plane spent serialized on handling.
  double master_service_seconds = 0.0;

  void record(MessageKind kind, double seconds) {
    Entry& e = by_kind[static_cast<std::size_t>(kind)];
    ++e.count;
    e.seconds += seconds;
  }

  [[nodiscard]] const Entry& of(MessageKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (const Entry& e : by_kind) n += e.count;
    return n;
  }

  /// Network seconds over all sends (excludes master service, which is
  /// reported separately — it overlaps transfers of other messages).
  [[nodiscard]] double total_seconds() const {
    double s = 0.0;
    for (const Entry& e : by_kind) s += e.seconds;
    return s;
  }
};

}  // namespace metadock::sched
