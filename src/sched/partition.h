// Spot partitioning across devices.
//
// Spots are the independent unit of work ("All these spots are independent
// from each other and, thus, they offer great opportunities for data-based
// parallelization").  The homogeneous algorithm deals them out equally; the
// heterogeneous algorithm deals them proportionally to measured device
// speed (Eq. 1's Percent).
#pragma once

#include <cstddef>
#include <vector>

namespace metadock::sched {

using Partition = std::vector<std::vector<std::size_t>>;

/// Splits [0, n_items) into n_bins contiguous, equal-as-possible ranges
/// (the paper's homogeneous distribution).
[[nodiscard]] Partition equal_partition(std::size_t n_items, std::size_t n_bins);

/// Splits [0, n_items) into contiguous ranges sized proportionally to
/// `weights` (largest-remainder rounding; every positive-weight bin with
/// work available gets at least the rounding it deserves).  Weights must be
/// non-negative with a positive sum.  When n_items < n_bins some bins are
/// necessarily empty — still a valid partition (every item is assigned
/// exactly once); consumers must tolerate empty bins rather than assume
/// bin.front() exists.
[[nodiscard]] Partition weighted_partition(std::size_t n_items,
                                           const std::vector<double>& weights);

/// Eq. 1: Percent_g = time_g / time_slowest, so the slowest device has
/// Percent = 1 and a device twice as fast has Percent = 0.5.  Throws
/// std::invalid_argument on an empty vector (a fault plan can quarantine
/// every device before the warm-up measures anything) and on non-positive
/// times.
[[nodiscard]] std::vector<double> percents_from_times(const std::vector<double>& warmup_times);

/// Work shares implied by the Percent values: share_g ∝ 1 / Percent_g,
/// normalized to sum to 1.  Throws std::invalid_argument on an empty vector
/// or non-positive Percent values.
[[nodiscard]] std::vector<double> shares_from_percents(const std::vector<double>& percents);

}  // namespace metadock::sched
