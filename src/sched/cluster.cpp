#include "sched/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/sync.h"

namespace metadock::sched {

std::string_view policy_name(DistributionPolicy policy) {
  switch (policy) {
    case DistributionPolicy::kStatic: return "static";
    case DistributionPolicy::kStaticProportional: return "static-prop";
    case DistributionPolicy::kDynamic: return "dynamic";
    case DistributionPolicy::kWorkStealing: return "stealing";
  }
  return "unknown";
}

ClusterSim::ClusterSim(std::vector<NodeConfig> nodes, ClusterOptions options)
    : nodes_(std::move(nodes)), options_(std::move(options)) {
  if (nodes_.empty()) throw std::invalid_argument("ClusterSim: need at least one node");
}

ClusterSim::ClusterSim(std::vector<NodeConfig> nodes, NetworkModel network,
                       ExecutorOptions node_options)
    : ClusterSim(std::move(nodes), [&] {
        ClusterOptions o;
        o.network = network;
        o.node_options = std::move(node_options);
        return o;
      }()) {}

ClusterWorkload ClusterSim::workload_for(const meta::DockingProblem& problem,
                                         const std::vector<std::size_t>& ligand_atom_counts,
                                         const meta::MetaheuristicParams& params) const {
  ClusterWorkload w;
  const auto representative_atoms = static_cast<double>(problem.ligand->size());

  // Per-node time for the representative ligand, replayed once per distinct
  // node configuration through the real executor stack.  The cluster
  // observer must not see N warm-up probes, so the per-node estimates run
  // unobserved.
  ExecutorOptions probe_options = options_.node_options;
  probe_options.observer = nullptr;
  std::map<std::string, double> base_by_name;
  w.node_base_seconds.reserve(nodes_.size());
  for (const NodeConfig& node : nodes_) {
    auto it = base_by_name.find(node.name);
    if (it == base_by_name.end()) {
      NodeExecutor exec(node, probe_options);
      it = base_by_name.emplace(node.name, exec.estimate(problem, params).makespan_seconds)
               .first;
    }
    w.node_base_seconds.push_back(it->second);
  }

  w.ligand_cost.reserve(ligand_atom_counts.size());
  for (std::size_t atoms : ligand_atom_counts) {
    w.ligand_cost.push_back(static_cast<double>(atoms) / representative_atoms);
  }
  w.units_per_ligand = static_cast<std::size_t>(std::max(1, params.generations));
  w.receptor_bytes = receptor_payload_bytes(problem.receptor->size());
  w.ligand_bytes = ligand_payload_bytes(problem.ligand->size());
  w.state_bytes = handoff_state_bytes(static_cast<std::size_t>(params.population_per_spot) *
                                      problem.spots.size());
  return w;
}

ClusterReport ClusterSim::screen_estimate(const meta::DockingProblem& problem,
                                          const std::vector<std::size_t>& ligand_atom_counts,
                                          const meta::MetaheuristicParams& params,
                                          DistributionPolicy policy) const {
  return simulate(workload_for(problem, ligand_atom_counts, params), policy);
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

enum class Ev : std::uint8_t {
  kLigandDone,
  kResultArrive,
  kPullArrive,
  kDispatchArrive,
  kStealReqArrive,
  kStealForwardArrive,
  kBlockArrive,
  kHandoffCut,
  kHandoffArrive,
  kNodeDeath,
  kDeathDetect,
};

struct Event {
  double t = 0.0;
  std::uint64_t seq = 0;  // deterministic tie-break: insertion order
  Ev kind = Ev::kLigandDone;
  int node = -1;           // acting node (thief/victim/worker, per kind)
  std::uint32_t lig = 0;
  int aux = -1;            // peer node, block index, or remaining units
  std::uint64_t epoch = 0; // run-segment validity stamp
  int aux2 = -1;           // kHandoffCut only: remaining units for the thief
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

struct NodeState {
  bool alive = true;
  double straggle_after = kNever;
  double straggle_factor = 1.0;
  std::deque<std::uint32_t> queue;
  // Current run segment: `seg_units` units of `current` starting at
  // `seg_start` with nominal `unit_work_s` seconds per unit.
  bool busy = false;
  std::uint32_t current = 0;
  double seg_start = 0.0;
  std::size_t seg_units = 0;
  double unit_work_s = 0.0;
  std::uint64_t epoch = 0;
  // An in-flight docking handed over mid-steal lands here when the thief
  // picked up other work in the meantime; it runs before the queue.
  bool has_partial = false;
  std::uint32_t partial_lig = 0;
  std::size_t partial_units = 0;
  bool steal_outstanding = false;
  double busy_seconds = 0.0;
  double last_result_arrival = 0.0;
  std::size_t credited = 0;
  double base = 0.0;   // seconds per cost-1.0 ligand
  double speed = 0.0;  // 1 / base
  double threshold_s = 0.0;
  std::vector<std::uint32_t> staged_lost;  // filled at death, drained at detect
};

/// The whole campaign simulation; one instance per simulate() call.
class CampaignSim {
 public:
  CampaignSim(const std::vector<NodeConfig>& nodes, const ClusterOptions& options,
              const ClusterWorkload& w, DistributionPolicy policy)
      : nodes_(nodes), opt_(options), w_(w), policy_(policy) {}

  ClusterReport run();

 private:
  // --- accounting helpers -------------------------------------------------
  double send(MessageKind kind, double bytes) REQUIRES(serial_) {
    const double s = opt_.network.message_time_s(bytes);
    stats_.record(kind, s);
    return s;
  }
  /// Serializes a control message on the master; returns handling-done time.
  double master_handle(double arrival) REQUIRES(serial_) {
    const double done = std::max(arrival, master_free_at_) + opt_.network.master_service_s;
    master_free_at_ = done;
    stats_.master_service_seconds += opt_.network.master_service_s;
    return done;
  }
  void push(double t, Ev kind, int node, std::uint32_t lig = 0, int aux = -1,
            std::uint64_t epoch = 0) REQUIRES(serial_) {
    events_.push(Event{t, seq_++, kind, node, lig, aux, epoch});
  }
  double lig_work(int n, std::uint32_t lig) const REQUIRES(serial_) {
    return node_[static_cast<std::size_t>(n)].base * w_.ligand_cost[lig];
  }
  double lig_bytes(std::uint32_t lig) const { return w_.ligand_bytes * w_.ligand_cost[lig]; }

  /// Elapsed virtual seconds for `work` nominal seconds starting at `t`,
  /// stretched by the node's straggle factor past its onset.
  double run_elapsed(const NodeState& s, double t, double work) const {
    if (work <= 0.0) return 0.0;
    if (t >= s.straggle_after) return work * s.straggle_factor;
    const double head = s.straggle_after - t;
    if (work <= head) return work;
    return head + (work - head) * s.straggle_factor;
  }

  void record_span(int n, std::uint32_t lig, double start, double end, const char* what);

  // --- protocol steps -----------------------------------------------------
  void begin_run(int n, double t, std::uint32_t lig, std::size_t units) REQUIRES(serial_);
  void start_next(int n, double t) REQUIRES(serial_);
  void maybe_steal(int n, double t) REQUIRES(serial_);
  double local_backlog_s(int n, double t) const REQUIRES(serial_);
  void return_to_master(const std::vector<std::uint32_t>& ligs, double t, bool redock)
      REQUIRES(serial_);
  void distribute(std::vector<std::uint32_t> ligs, double t) REQUIRES(serial_);
  void serve_waiting_pulls(double t) REQUIRES(serial_);
  /// Steal denial: count it and bounce an empty block back to the thief.
  void deny_steal(int thief, double t) REQUIRES(serial_);

  void on_ligand_done(const Event& e) REQUIRES(serial_);
  void on_result_arrive(const Event& e) REQUIRES(serial_);
  void on_pull_arrive(const Event& e) REQUIRES(serial_);
  void on_dispatch_arrive(const Event& e) REQUIRES(serial_);
  void on_steal_req_arrive(const Event& e) REQUIRES(serial_);
  void on_steal_forward_arrive(const Event& e) REQUIRES(serial_);
  void on_block_arrive(const Event& e) REQUIRES(serial_);
  void on_handoff_cut(const Event& e) REQUIRES(serial_);
  void on_handoff_arrive(const Event& e) REQUIRES(serial_);
  void on_node_death(const Event& e) REQUIRES(serial_);
  void on_death_detect(const Event& e) REQUIRES(serial_);

  void init_nodes() REQUIRES(serial_);
  void initial_distribution() REQUIRES(serial_);
  /// Contiguous split of `ligs` proportional to node speed by per-ligand
  /// cost (the Eq. 1 idea applied across nodes), restricted to nodes with
  /// eligible[n] != 0.
  std::vector<std::vector<std::uint32_t>> proportional_split(
      const std::vector<std::uint32_t>& ligs, const std::vector<char>& eligible) const
      REQUIRES(serial_);

  const std::vector<NodeConfig>& nodes_;
  const ClusterOptions& opt_;
  const ClusterWorkload& w_;
  DistributionPolicy policy_;

  /// Single-owner role (DESIGN.md §16): run() claims it once, every event
  /// handler and protocol step requires it, and the simulation's entire
  /// mutable state below is guarded by it — a handler leaking into a
  /// concurrent context fails the clang thread-safety gate.
  util::Serial serial_;

  std::vector<NodeState> node_ GUARDED_BY(serial_);
  std::priority_queue<Event, std::vector<Event>, EventLater> events_ GUARDED_BY(serial_);
  std::uint64_t seq_ GUARDED_BY(serial_) = 0;
  MessageStats stats_ GUARDED_BY(serial_);
  double master_free_at_ GUARDED_BY(serial_) = 0.0;
  double bcast_done_ GUARDED_BY(serial_) = 0.0;
  /// Dynamic: undispatched ligands.
  std::deque<std::uint32_t> pool_ GUARDED_BY(serial_);
  /// Dynamic: idle nodes the pool starved.
  std::deque<int> waiting_pulls_ GUARDED_BY(serial_);
  /// Payloads of block messages.
  std::vector<std::vector<std::uint32_t>> blocks_ GUARDED_BY(serial_);
  std::vector<bool> done_ GUARDED_BY(serial_);
  std::size_t done_count_ GUARDED_BY(serial_) = 0;
  double mean_cost_ GUARDED_BY(serial_) = 1.0;
  ClusterReport report_ GUARDED_BY(serial_);
};

void CampaignSim::record_span(int n, std::uint32_t lig, double start, double end,
                              const char* what) {
  if (obs::Observer* o = opt_.observer) {
    obs::Span span;
    span.name = std::string(what) + " L" + std::to_string(lig);
    span.category = "cluster";
    span.device = cluster_node_track(n);
    span.start_ns = static_cast<std::uint64_t>(start * 1e9);
    span.dur_ns = static_cast<std::uint64_t>(std::max(0.0, end - start) * 1e9);
    o->tracer.record(std::move(span));
  }
}

double CampaignSim::local_backlog_s(int n, double t) const {
  const NodeState& s = node_[static_cast<std::size_t>(n)];
  double backlog = 0.0;
  for (std::uint32_t lig : s.queue) backlog += lig_work(n, lig);
  if (s.busy) backlog += s.unit_work_s * static_cast<double>(s.seg_units);
  if (s.has_partial) backlog += s.unit_work_s * static_cast<double>(s.partial_units);
  // The master mirrors each node's backlog from observed service rates, so
  // an active straggle inflates the estimate by the slowdown it is showing.
  if (t >= s.straggle_after) backlog *= s.straggle_factor;
  return backlog;
}

void CampaignSim::begin_run(int n, double t, std::uint32_t lig, std::size_t units) {
  NodeState& s = node_[static_cast<std::size_t>(n)];
  s.busy = true;
  s.current = lig;
  s.seg_start = t;
  s.seg_units = units;
  s.unit_work_s = lig_work(n, lig) / static_cast<double>(w_.units_per_ligand);
  const double work = s.unit_work_s * static_cast<double>(units);
  push(t + run_elapsed(s, t, work), Ev::kLigandDone, n, lig, -1, s.epoch);
}

void CampaignSim::start_next(int n, double t) {
  NodeState& s = node_[static_cast<std::size_t>(n)];
  if (!s.alive || s.busy) return;
  if (s.has_partial) {
    s.has_partial = false;
    begin_run(n, t, s.partial_lig, s.partial_units);
  } else if (!s.queue.empty()) {
    const std::uint32_t lig = s.queue.front();
    s.queue.pop_front();
    begin_run(n, t, lig, w_.units_per_ligand);
  } else if (policy_ == DistributionPolicy::kDynamic) {
    push(t + send(MessageKind::kPullRequest, kControlBytes), Ev::kPullArrive, n);
    return;
  }
  if (policy_ == DistributionPolicy::kWorkStealing) maybe_steal(n, t);
}

void CampaignSim::maybe_steal(int n, double t) {
  NodeState& s = node_[static_cast<std::size_t>(n)];
  if (!s.alive || s.steal_outstanding) return;
  if (local_backlog_s(n, t) >= s.threshold_s) return;
  s.steal_outstanding = true;
  push(t + send(MessageKind::kStealRequest, kControlBytes), Ev::kStealReqArrive, n);
}

void CampaignSim::serve_waiting_pulls(double t) {
  while (!waiting_pulls_.empty() && !pool_.empty()) {
    const int n = waiting_pulls_.front();
    waiting_pulls_.pop_front();
    const std::uint32_t lig = pool_.front();
    pool_.pop_front();
    const double done = master_handle(t);
    push(done + send(MessageKind::kDispatch, lig_bytes(lig)), Ev::kDispatchArrive, n, lig);
  }
}

void CampaignSim::return_to_master(const std::vector<std::uint32_t>& ligs, double t,
                                   bool redock) {
  if (ligs.empty()) return;
  if (redock) {
    report_.redocked_ligands += ligs.size();
  } else {
    report_.reassigned_ligands += ligs.size();
  }
  distribute(std::vector<std::uint32_t>(ligs.begin(), ligs.end()), t);
}

void CampaignSim::distribute(std::vector<std::uint32_t> ligs, double t) {
  if (ligs.empty()) return;
  bool any_alive = false;
  for (const NodeState& s : node_) any_alive = any_alive || s.alive;
  if (!any_alive) {
    throw std::runtime_error("cluster: every node died with work outstanding");
  }
  if (policy_ == DistributionPolicy::kDynamic) {
    for (std::uint32_t lig : ligs) pool_.push_back(lig);
    serve_waiting_pulls(t);
    return;
  }
  // Backlog-aware reassignment: the master hands a dead node's shard to the
  // survivors that are keeping up, not to one already drowning (a straggler
  // would hoard the block until the end-game steals pried it loose).
  std::vector<char> eligible(node_.size(), 0);
  double backlog_sum = 0.0;
  std::size_t alive = 0;
  for (std::size_t n = 0; n < node_.size(); ++n) {
    if (!node_[n].alive) continue;
    ++alive;
    backlog_sum += local_backlog_s(static_cast<int>(n), t);
  }
  const double backlog_mean = backlog_sum / static_cast<double>(alive);
  for (std::size_t n = 0; n < node_.size(); ++n) {
    eligible[n] = node_[n].alive &&
                  local_backlog_s(static_cast<int>(n), t) <= 1.5 * backlog_mean;
  }
  const std::vector<std::vector<std::uint32_t>> shares = proportional_split(ligs, eligible);
  for (std::size_t n = 0; n < shares.size(); ++n) {
    if (shares[n].empty()) continue;
    double bytes = 0.0;
    for (std::uint32_t lig : shares[n]) bytes += lig_bytes(lig);
    const double handled = master_handle(t);
    blocks_.push_back(shares[n]);
    push(handled + send(MessageKind::kDispatch, bytes), Ev::kBlockArrive, static_cast<int>(n),
         0, static_cast<int>(blocks_.size() - 1));
  }
}

std::vector<std::vector<std::uint32_t>> CampaignSim::proportional_split(
    const std::vector<std::uint32_t>& ligs, const std::vector<char>& eligible) const {
  const std::size_t n_nodes = node_.size();
  std::vector<std::vector<std::uint32_t>> shares(n_nodes);
  double total_speed = 0.0;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (eligible[n]) total_speed += node_[n].speed;
  }
  double total_cost = 0.0;
  for (std::uint32_t lig : ligs) total_cost += w_.ligand_cost[lig];
  // Walk the ligand list once, cutting at cumulative-cost boundaries
  // proportional to each alive node's speed.
  double cum_target = 0.0;
  double cum_cost = 0.0;
  std::size_t i = 0;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (!eligible[n]) continue;
    cum_target += total_cost * node_[n].speed / total_speed;
    while (i < ligs.size() &&
           (cum_cost + w_.ligand_cost[ligs[i]] * 0.5 <= cum_target || shares[n].empty())) {
      // A ligand goes to the share whose boundary covers its midpoint; every
      // eligible node with library left gets at least one.
      if (cum_cost >= cum_target && !shares[n].empty()) break;
      cum_cost += w_.ligand_cost[ligs[i]];
      shares[n].push_back(ligs[i]);
      ++i;
    }
  }
  // Rounding leftovers ride with the last eligible node.
  for (std::size_t n = n_nodes; n-- > 0 && i < ligs.size();) {
    if (!eligible[n]) continue;
    while (i < ligs.size()) shares[n].push_back(ligs[i++]);
  }
  return shares;
}

void CampaignSim::on_ligand_done(const Event& e) {
  NodeState& s = node_[static_cast<std::size_t>(e.node)];
  if (!s.alive || e.epoch != s.epoch || !s.busy || s.current != e.lig) return;
  const double compute = e.t - s.seg_start;
  s.busy_seconds += compute;
  report_.ligand_seconds[e.lig] += compute;
  record_span(e.node, e.lig, s.seg_start, e.t, "dock");
  s.busy = false;
  push(e.t + send(MessageKind::kResultReturn, kResultBytes), Ev::kResultArrive, e.node, e.lig);
  start_next(e.node, e.t);
}

void CampaignSim::on_result_arrive(const Event& e) {
  if (done_[e.lig]) return;
  done_[e.lig] = true;
  ++done_count_;
  NodeState& s = node_[static_cast<std::size_t>(e.node)];
  ++s.credited;
  s.last_result_arrival = e.t;
  report_.docked_on[e.lig] = e.node;
}

void CampaignSim::on_pull_arrive(const Event& e) {
  const double handled = master_handle(e.t);
  if (pool_.empty()) {
    waiting_pulls_.push_back(e.node);
    return;
  }
  const std::uint32_t lig = pool_.front();
  pool_.pop_front();
  push(handled + send(MessageKind::kDispatch, lig_bytes(lig)), Ev::kDispatchArrive, e.node,
       lig);
}

void CampaignSim::on_dispatch_arrive(const Event& e) {
  NodeState& s = node_[static_cast<std::size_t>(e.node)];
  if (!s.alive) {
    // The transport layer bounces a dispatch to a dead node back to the
    // master; the ligand was queued work, not lost progress.
    return_to_master({e.lig}, e.t, /*redock=*/false);
    return;
  }
  s.queue.push_back(e.lig);
  start_next(e.node, e.t);
}

void CampaignSim::on_steal_req_arrive(const Event& e) {
  const int thief = e.node;
  const double handled = master_handle(e.t);
  // Victim selection: the straggler with the largest backlog estimate (the
  // master's bookkeeping mirrors the piggybacked per-result estimates).  A
  // victim must be at least twice as deep as the thief, plus one mean
  // ligand of margin — without that guard, evenly-loaded nodes below
  // threshold ping-pong blocks between each other for the whole end-game.
  // The margin stays at a single ligand (not a threshold fraction) so a
  // near-idle thief can still drain the last few-second backlog off the
  // makespan-critical node.
  const double thief_backlog = local_backlog_s(thief, handled);
  const double floor = 2.0 * thief_backlog +
                       node_[static_cast<std::size_t>(thief)].base * mean_cost_;
  int queued_victim = -1, busy_victim = -1;
  double queued_best = floor, busy_best = floor;
  for (std::size_t n = 0; n < node_.size(); ++n) {
    if (static_cast<int>(n) == thief || !node_[n].alive) continue;
    const double backlog = local_backlog_s(static_cast<int>(n), handled);
    if (!node_[n].queue.empty() && backlog > queued_best) {
      queued_best = backlog;
      queued_victim = static_cast<int>(n);
    }
    if (node_[n].busy && backlog > busy_best) {
      busy_best = backlog;
      busy_victim = static_cast<int>(n);
    }
  }
  const int victim = queued_victim >= 0 ? queued_victim : busy_victim;
  if (victim < 0) {
    ++report_.failed_steals;
    push(handled + send(MessageKind::kStealBlock, kControlBytes), Ev::kBlockArrive, thief, 0,
         -1);
    return;
  }
  push(handled + send(MessageKind::kStealForward, kControlBytes), Ev::kStealForwardArrive,
       victim, 0, thief);
}

void CampaignSim::deny_steal(int thief, double t) {
  ++report_.failed_steals;
  push(t + send(MessageKind::kStealBlock, kControlBytes), Ev::kBlockArrive, thief, 0, -1);
}

void CampaignSim::on_steal_forward_arrive(const Event& e) {
  const int victim = e.node;
  const int thief = e.aux;
  NodeState& v = node_[static_cast<std::size_t>(victim)];
  if (!v.alive) {
    deny_steal(thief, e.t);
    return;
  }
  NodeState& th = node_[static_cast<std::size_t>(thief)];
  if (!v.queue.empty()) {
    // Ship up to half the queued cost off the back of the victim's queue,
    // capped by the thief's own remaining work (the steal request
    // piggybacks that estimate): a thief mid-shard takes a threshold-sized
    // block, a nearly-idle one takes a ligand or two — so a drowning
    // victim's backlog spreads across many thieves (who come back for
    // more) instead of re-creating the straggler on one of them, and the
    // end-game degrades to per-ligand granularity like the dynamic policy.
    double queue_cost = 0.0;
    for (std::uint32_t lig : v.queue) queue_cost += w_.ligand_cost[lig];
    const double cap = std::clamp(local_backlog_s(thief, e.t) / th.base, mean_cost_,
                                  th.threshold_s / th.base);
    const double target = std::min(queue_cost / 2.0, cap);
    std::vector<std::uint32_t> block;
    double moved = 0.0;
    double bytes = 0.0;
    while (!v.queue.empty() && (block.empty() || moved < target)) {
      const std::uint32_t lig = v.queue.back();
      if (!block.empty() && moved + w_.ligand_cost[lig] > target + 1e-12) break;
      v.queue.pop_back();
      moved += w_.ligand_cost[lig];
      bytes += lig_bytes(lig);
      block.push_back(lig);
    }
    std::reverse(block.begin(), block.end());
    ++report_.steals;
    report_.stolen_ligands += block.size();
    blocks_.push_back(std::move(block));
    push(e.t + send(MessageKind::kStealBlock, bytes), Ev::kBlockArrive, thief, 0,
         static_cast<int>(blocks_.size() - 1));
    return;
  }
  if (v.busy && w_.units_per_ligand > 1) {
    // In-flight handoff: find the first generation boundary at or after the
    // forward's arrival, and move the unstarted tail to the thief if the
    // thief would finish it sooner than the victim.
    std::size_t k = 0;
    double boundary = v.seg_start;
    while (k < v.seg_units && boundary < e.t) {
      ++k;
      boundary = v.seg_start +
                 run_elapsed(v, v.seg_start, v.unit_work_s * static_cast<double>(k));
    }
    const std::size_t remaining = v.seg_units - k;
    if (remaining >= 1) {
      const double tail_work =
          lig_work(thief, v.current) / static_cast<double>(w_.units_per_ligand) *
          static_cast<double>(remaining);
      const double state_s = opt_.network.message_time_s(w_.state_bytes);
      const double thief_finish = boundary + state_s + run_elapsed(th, boundary + state_s, tail_work);
      const double victim_finish =
          boundary + run_elapsed(v, boundary, v.unit_work_s * static_cast<double>(remaining));
      if (th.alive && thief_finish < victim_finish) {
        ++v.epoch;  // cancels the scheduled kLigandDone
        events_.push(Event{boundary, seq_++, Ev::kHandoffCut, victim, v.current, thief,
                           v.epoch, static_cast<int>(remaining)});
        return;
      }
    }
  }
  deny_steal(thief, e.t);
}

void CampaignSim::on_handoff_cut(const Event& e) {
  const int victim = e.node;
  NodeState& v = node_[static_cast<std::size_t>(victim)];
  const int thief = e.aux;
  if (!v.alive || e.epoch != v.epoch || !v.busy || v.current != e.lig) {
    // The victim died (or was re-cut) before the boundary; the death path
    // owns the ligand now.  Unstick the waiting thief with a denial.
    ++report_.failed_steals;
    push(e.t + send(MessageKind::kStealBlock, kControlBytes), Ev::kBlockArrive, thief, 0, -1);
    return;
  }
  const auto remaining = static_cast<std::size_t>(e.aux2);
  const double compute = e.t - v.seg_start;
  v.busy_seconds += compute;
  report_.ligand_seconds[e.lig] += compute;
  record_span(victim, e.lig, v.seg_start, e.t, "dock(head)");
  v.busy = false;
  ++report_.handoffs;
  push(e.t + send(MessageKind::kHandoffState, w_.state_bytes), Ev::kHandoffArrive, thief,
       e.lig, static_cast<int>(remaining));
  start_next(victim, e.t);
}

void CampaignSim::on_handoff_arrive(const Event& e) {
  NodeState& th = node_[static_cast<std::size_t>(e.node)];
  th.steal_outstanding = false;
  if (!th.alive) {
    // Thief died with the state on the wire: all progress is lost and the
    // ligand re-docks from scratch on a survivor.
    return_to_master({e.lig}, e.t, /*redock=*/true);
    return;
  }
  const auto remaining = static_cast<std::size_t>(e.aux);
  if (th.busy) {
    th.has_partial = true;
    th.partial_lig = e.lig;
    th.partial_units = remaining;
    return;
  }
  begin_run(e.node, e.t, e.lig, remaining);
}

void CampaignSim::on_block_arrive(const Event& e) {
  NodeState& th = node_[static_cast<std::size_t>(e.node)];
  th.steal_outstanding = false;
  if (e.aux < 0) return;  // denial: idle until new work or a later trigger
  const std::vector<std::uint32_t>& ligs = blocks_[static_cast<std::size_t>(e.aux)];
  if (!th.alive) {
    return_to_master(ligs, e.t, /*redock=*/false);
    return;
  }
  for (std::uint32_t lig : ligs) th.queue.push_back(lig);
  if (policy_ == DistributionPolicy::kWorkStealing && !th.queue.empty()) {
    // Keep the queue in LPT order so a death-reassigned expensive ligand
    // lands ahead of the cheap end-game tail instead of docking last and
    // stretching the makespan by its full duration.
    std::stable_sort(th.queue.begin(), th.queue.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return w_.ligand_cost[a] > w_.ligand_cost[b];
                     });
  }
  start_next(e.node, e.t);
  if (policy_ == DistributionPolicy::kWorkStealing) maybe_steal(e.node, e.t);
}

void CampaignSim::on_node_death(const Event& e) {
  NodeState& s = node_[static_cast<std::size_t>(e.node)];
  if (!s.alive) return;
  s.alive = false;
  ++s.epoch;
  ++report_.nodes_lost;
  if (obs::Observer* o = opt_.observer) {
    o->tracer.mark("node death", "fault", cluster_node_track(e.node),
                   static_cast<std::uint64_t>(e.t * 1e9),
                   {{"node", static_cast<double>(e.node)}});
  }
  s.staged_lost.clear();
  if (s.busy) {
    // Un-shipped progress dies with the node: count the burned compute and
    // restart the docking from scratch on a survivor.
    const double compute = std::max(0.0, e.t - s.seg_start);
    s.busy_seconds += compute;
    report_.ligand_seconds[s.current] += compute;
    record_span(e.node, s.current, s.seg_start, e.t, "dock(lost)");
    s.busy = false;
    s.staged_lost.push_back(s.current);
  }
  if (s.has_partial) {
    s.has_partial = false;
    s.staged_lost.push_back(s.partial_lig);
  }
  const std::size_t queued = s.queue.size();
  for (std::uint32_t lig : s.queue) s.staged_lost.push_back(lig);
  s.queue.clear();
  report_.reassigned_ligands += queued;
  report_.redocked_ligands += s.staged_lost.size() - queued;
  stats_.record(MessageKind::kDeathNotice, opt_.network.latency_s);
  push(e.t + opt_.network.death_detect_s, Ev::kDeathDetect, e.node);
}

void CampaignSim::on_death_detect(const Event& e) {
  NodeState& s = node_[static_cast<std::size_t>(e.node)];
  const double handled = master_handle(e.t);
  std::vector<std::uint32_t> lost;
  lost.swap(s.staged_lost);
  // Counting happened at death; distribute() must not re-count.
  distribute(std::move(lost), handled);
}

void CampaignSim::init_nodes() {
  node_.assign(nodes_.size(), NodeState{});
  double total_cost = 0.0;
  for (double c : w_.ligand_cost) total_cost += c;
  const double mean_cost =
      w_.ligand_cost.empty() ? 1.0 : total_cost / static_cast<double>(w_.ligand_cost.size());
  mean_cost_ = mean_cost;
  double total_speed = 0.0;
  for (double base : w_.node_base_seconds) total_speed += 1.0 / base;
  // Balanced-parallel phase length: what the campaign takes when every node
  // carries exactly its proportional share.  The auto steal threshold is a
  // slice of this, so thieves solicit work well before running dry and the
  // brokering round trip (plus a straggler's drain) overlaps their own
  // in-flight dockings.
  const double parallel_s = total_cost / total_speed;
  for (std::size_t n = 0; n < node_.size(); ++n) {
    NodeState& s = node_[n];
    s.base = w_.node_base_seconds[n];
    s.speed = 1.0 / s.base;
    s.threshold_s = opt_.steal_threshold_s > 0.0
                        ? opt_.steal_threshold_s
                        : std::max(2.0 * s.base * mean_cost, 0.1 * parallel_s);
    const gpusim::DeviceFaultSpec spec = opt_.node_faults.for_device(static_cast<int>(n));
    s.straggle_after = spec.straggle_after_seconds;
    s.straggle_factor = spec.straggle_factor;
    s.last_result_arrival = bcast_done_;
    if (spec.death_at_seconds != gpusim::kNeverSeconds) {
      push(spec.death_at_seconds, Ev::kNodeDeath, static_cast<int>(n));
    }
    if (obs::Observer* o = opt_.observer) {
      o->tracer.set_track_name(cluster_node_track(static_cast<int>(n)),
                               "node." + std::to_string(n) + " " + nodes_[n].name);
    }
  }
}

void CampaignSim::initial_distribution() {
  const std::size_t n_nodes = node_.size();
  const std::size_t n_ligands = w_.ligand_cost.size();
  std::vector<std::uint32_t> all(n_ligands);
  for (std::size_t i = 0; i < n_ligands; ++i) all[i] = static_cast<std::uint32_t>(i);

  switch (policy_) {
    case DistributionPolicy::kDynamic:
      for (std::uint32_t lig : all) pool_.push_back(lig);
      for (std::size_t n = 0; n < n_nodes; ++n) {
        push(bcast_done_ + send(MessageKind::kPullRequest, kControlBytes), Ev::kPullArrive,
             static_cast<int>(n));
      }
      return;
    case DistributionPolicy::kStatic: {
      std::vector<std::vector<std::uint32_t>> shards(n_nodes);
      for (std::uint32_t lig : all) shards[lig % n_nodes].push_back(lig);
      for (std::size_t n = 0; n < n_nodes; ++n) {
        if (shards[n].empty()) continue;
        double bytes = 0.0;
        for (std::uint32_t lig : shards[n]) bytes += lig_bytes(lig);
        const double handled = master_handle(bcast_done_);
        blocks_.push_back(std::move(shards[n]));
        push(handled + send(MessageKind::kShardSend, bytes), Ev::kBlockArrive,
             static_cast<int>(n), 0, static_cast<int>(blocks_.size() - 1));
      }
      return;
    }
    case DistributionPolicy::kStaticProportional:
    case DistributionPolicy::kWorkStealing: {
      std::vector<std::vector<std::uint32_t>> shards =
          proportional_split(all, std::vector<char>(n_nodes, 1));
      if (policy_ == DistributionPolicy::kWorkStealing) {
        // LPT within each shard: dock expensive ligands first so the
        // end-game runs on cheap, fine-grained ones (smaller makespan
        // quantization) and steals — which take from the queue's back —
        // ship the cheapest payloads.  Ties break on ligand index to keep
        // runs bit-reproducible.
        for (auto& shard : shards) {
          std::stable_sort(shard.begin(), shard.end(),
                           [&](std::uint32_t a, std::uint32_t b) {
                             return w_.ligand_cost[a] > w_.ligand_cost[b];
                           });
        }
      }
      for (std::size_t n = 0; n < n_nodes; ++n) {
        if (shards[n].empty()) continue;
        double bytes = 0.0;
        for (std::uint32_t lig : shards[n]) bytes += lig_bytes(lig);
        const double handled = master_handle(bcast_done_);
        blocks_.push_back(shards[n]);
        push(handled + send(MessageKind::kShardSend, bytes), Ev::kBlockArrive,
             static_cast<int>(n), 0, static_cast<int>(blocks_.size() - 1));
      }
      return;
    }
  }
}

ClusterReport CampaignSim::run() {
  // One instance per simulate() call, driven by exactly this loop: claim
  // the role once and every handler below inherits it.
  const util::ScopedSerial own(serial_);
  const std::size_t n_nodes = nodes_.size();
  const std::size_t n_ligands = w_.ligand_cost.size();

  report_.policy = policy_;
  report_.node_seconds.assign(n_nodes, 0.0);
  report_.ligands_per_node.assign(n_nodes, 0);
  report_.node_busy_seconds.assign(n_nodes, 0.0);
  report_.docked_on.assign(n_ligands, -1);
  report_.ligand_seconds.assign(n_ligands, 0.0);
  done_.assign(n_ligands, false);

  // Receptor broadcast over a tree: the critical path is ~log2(N) hops.
  const double hops = std::max(1.0, std::ceil(std::log2(static_cast<double>(n_nodes) + 1.0)));
  bcast_done_ = opt_.network.message_time_s(w_.receptor_bytes) * hops;
  stats_.record(MessageKind::kBroadcast, bcast_done_);

  init_nodes();
  initial_distribution();

  double makespan = bcast_done_;
  std::uint64_t processed = 0;
  while (done_count_ < n_ligands && !events_.empty()) {
    const Event e = events_.top();
    events_.pop();
    if (++processed > (n_ligands + n_nodes + 16) * 1024) {
      throw std::logic_error("cluster: event budget exhausted (protocol livelock?)");
    }
    switch (e.kind) {
      case Ev::kLigandDone: on_ligand_done(e); break;
      case Ev::kResultArrive:
        on_result_arrive(e);
        makespan = std::max(makespan, e.t);
        break;
      case Ev::kPullArrive: on_pull_arrive(e); break;
      case Ev::kDispatchArrive: on_dispatch_arrive(e); break;
      case Ev::kStealReqArrive: on_steal_req_arrive(e); break;
      case Ev::kStealForwardArrive: on_steal_forward_arrive(e); break;
      case Ev::kBlockArrive: on_block_arrive(e); break;
      case Ev::kHandoffCut: on_handoff_cut(e); break;
      case Ev::kHandoffArrive: on_handoff_arrive(e); break;
      case Ev::kNodeDeath: on_node_death(e); break;
      case Ev::kDeathDetect: on_death_detect(e); break;
    }
  }
  if (done_count_ < n_ligands) {
    throw std::logic_error("cluster: simulation stalled with ligands outstanding");
  }

  for (std::size_t n = 0; n < n_nodes; ++n) {
    report_.node_seconds[n] = node_[n].last_result_arrival;
    report_.ligands_per_node[n] = node_[n].credited;
    report_.node_busy_seconds[n] = node_[n].busy_seconds;
  }
  report_.makespan_seconds = makespan;
  report_.messages = stats_;
  report_.comm_seconds = stats_.total_seconds() + stats_.master_service_seconds;

  double busy_sum = 0.0, busy_max = 0.0;
  std::size_t participants = 0;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (node_[n].busy_seconds <= 0.0) continue;
    ++participants;
    busy_sum += node_[n].busy_seconds;
    busy_max = std::max(busy_max, node_[n].busy_seconds);
  }
  report_.balance_efficiency =
      participants < 2 ? 1.0 : busy_sum / static_cast<double>(participants) / busy_max;

  if (obs::Observer* o = opt_.observer) {
    obs::MetricsRegistry& m = o->metrics;
    m.counter("sched.cluster.campaigns").add();
    m.counter("sched.cluster.messages").add(static_cast<double>(stats_.total_count()));
    m.counter("sched.cluster.comm_seconds").add(report_.comm_seconds);
    m.counter("sched.cluster.steals").add(static_cast<double>(report_.steals));
    m.counter("sched.cluster.stolen_ligands").add(static_cast<double>(report_.stolen_ligands));
    m.counter("sched.cluster.handoffs").add(static_cast<double>(report_.handoffs));
    m.counter("sched.cluster.failed_steals").add(static_cast<double>(report_.failed_steals));
    m.counter("sched.cluster.node_deaths").add(static_cast<double>(report_.nodes_lost));
    m.counter("sched.cluster.reassigned_ligands")
        .add(static_cast<double>(report_.reassigned_ligands));
    m.counter("sched.cluster.redocked_ligands")
        .add(static_cast<double>(report_.redocked_ligands));
    m.gauge("sched.cluster.makespan_seconds").set(report_.makespan_seconds);
    m.gauge("sched.cluster.balance_efficiency").set(report_.balance_efficiency);
    for (std::size_t n = 0; n < n_nodes; ++n) {
      m.histogram("sched.cluster.node_busy_seconds").record(node_[n].busy_seconds);
    }
  }
  return report_;
}

}  // namespace

ClusterReport ClusterSim::simulate(const ClusterWorkload& workload,
                                   DistributionPolicy policy) const {
  if (workload.node_base_seconds.size() != nodes_.size()) {
    throw std::invalid_argument("ClusterSim::simulate: node_base_seconds size mismatch");
  }
  for (double b : workload.node_base_seconds) {
    if (!(b > 0.0)) throw std::invalid_argument("ClusterSim::simulate: non-positive node base");
  }
  for (double c : workload.ligand_cost) {
    if (!(c > 0.0)) throw std::invalid_argument("ClusterSim::simulate: non-positive ligand cost");
  }
  if (workload.units_per_ligand < 1) {
    throw std::invalid_argument("ClusterSim::simulate: units_per_ligand must be >= 1");
  }
  CampaignSim sim(nodes_, options_, workload, policy);
  return sim.run();
}

}  // namespace metadock::sched
