#include "sched/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace metadock::sched {

ClusterSim::ClusterSim(std::vector<NodeConfig> nodes, NetworkModel network,
                       ExecutorOptions node_options)
    : nodes_(std::move(nodes)), network_(network), node_options_(node_options) {
  if (nodes_.empty()) throw std::invalid_argument("ClusterSim: need at least one node");
}

ClusterReport ClusterSim::screen_estimate(const meta::DockingProblem& problem,
                                          const std::vector<std::size_t>& ligand_atom_counts,
                                          const meta::MetaheuristicParams& params,
                                          DistributionPolicy policy) {
  const std::size_t n_ligands = ligand_atom_counts.size();
  const auto representative_atoms = static_cast<double>(problem.ligand->size());

  // Per-node time for the representative ligand; other ligands scale by
  // their atom count (pair sum is receptor_atoms x ligand_atoms).
  std::vector<double> base(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeExecutor exec(nodes_[n], node_options_);
    base[n] = exec.estimate(problem, params).makespan_seconds;
  }
  auto ligand_time = [&](std::size_t node, std::size_t lig) {
    return base[node] * static_cast<double>(ligand_atom_counts[lig]) / representative_atoms;
  };

  // Receptor broadcast (tree: critical path ~ log2(nodes) hops) plus a
  // per-ligand dispatch request and result return.
  const double receptor_bytes = 17.0 * static_cast<double>(problem.receptor->size());
  const double bcast =
      network_.message_time_s(receptor_bytes) *
      std::max(1.0, std::ceil(std::log2(static_cast<double>(nodes_.size()) + 1.0)));
  const double per_ligand_msgs = network_.message_time_s(256.0)    // dispatch
                                 + network_.message_time_s(512.0); // best-pose result

  ClusterReport report;
  report.policy = policy;
  report.node_seconds.assign(nodes_.size(), bcast);
  report.ligands_per_node.assign(nodes_.size(), 0);
  report.comm_seconds = bcast;

  if (policy == DistributionPolicy::kStatic) {
    // Equal split, ligand i -> node i % N (no speed awareness — the
    // baseline the dynamic policy improves on).
    for (std::size_t i = 0; i < n_ligands; ++i) {
      const std::size_t n = i % nodes_.size();
      report.node_seconds[n] += ligand_time(n, i) + per_ligand_msgs;
      ++report.ligands_per_node[n];
    }
  } else {
    // Master/worker: next ligand goes to the node that frees up first.
    for (std::size_t i = 0; i < n_ligands; ++i) {
      const auto n = static_cast<std::size_t>(
          std::min_element(report.node_seconds.begin(), report.node_seconds.end()) -
          report.node_seconds.begin());
      report.node_seconds[n] += ligand_time(n, i) + per_ligand_msgs;
      ++report.ligands_per_node[n];
    }
  }
  report.makespan_seconds =
      *std::max_element(report.node_seconds.begin(), report.node_seconds.end());
  report.comm_seconds += per_ligand_msgs * static_cast<double>(n_ligands);
  return report;
}

}  // namespace metadock::sched
