// Multi-node cluster simulation — the paper's future-work direction:
// "adapt our virtual screening method to more complex systems comprising
// several computational nodes working together with the message-passing
// paradigm, and each node with several computational components".
//
// A virtual-screening campaign (one docking run per library ligand) is
// distributed across heterogeneous nodes by an event-driven simulator on a
// shared virtual clock.  Communication is MPI-style through NetworkModel
// (see sched/message.h): the receptor is broadcast once over a tree,
// ligands move as priced messages, and per-ligand results return to the
// master.  Four distribution policies:
//
//   * kStatic             — blind round-robin (ligand i -> node i % N), the
//                           baseline every other policy improves on;
//   * kStaticProportional — Eq. 1 applied across nodes: contiguous shards
//                           sized by measured node throughput, split by
//                           per-ligand cost, sent once up front;
//   * kDynamic            — master/worker: an idle node pulls the next
//                           ligand; every pull serializes on the master's
//                           control plane (NetworkModel::master_service_s),
//                           so per-ligand dispatch stops scaling with N;
//   * kWorkStealing       — proportional warm-start plus continuous
//                           rebalancing: a node whose remaining-work
//                           estimate falls below a threshold steals ligand
//                           blocks from the straggler with the largest
//                           backlog, and when no queued work is left it can
//                           take over an in-flight docking at a generation
//                           boundary (the victim ships its population
//                           state).  Steal brokering and block transfer are
//                           on the critical path.
//
// Whole-node faults reuse gpusim::FaultPlan with the *node index* as the
// ordinal: `kill(n, t)` kills node n outright at virtual time t (its queue
// and in-flight docking are reassigned to survivors once the failure
// detector fires; results already returned to the master are kept and
// never re-docked), and `straggle(n, t, k)` slows every ligand on node n
// by k after t — the whole-node analogue of PR 1's device faults.
//
// The simulator prices *time*; docking *numerics* are node-placement
// independent, so vs::ClusterScreener pairs a ClusterReport from here with
// per-ligand results that are bit-identical to single-node screen().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "gpusim/fault_plan.h"
#include "meta/engine.h"
#include "meta/params.h"
#include "obs/observer.h"
#include "sched/executor.h"
#include "sched/message.h"
#include "sched/node_config.h"

namespace metadock::sched {

enum class DistributionPolicy { kStatic, kStaticProportional, kDynamic, kWorkStealing };

[[nodiscard]] std::string_view policy_name(DistributionPolicy policy);

/// Tracer tid for a cluster node's track ("node.N <name>" in the exported
/// trace); above the device/stream track ranges.
inline constexpr int kClusterTrackBase = 1 << 22;
[[nodiscard]] constexpr int cluster_node_track(int node) noexcept {
  return kClusterTrackBase + node;
}

struct ClusterOptions {
  NetworkModel network;
  /// Per-node executor stack (strategy, warm-up, device fault plan, ...)
  /// used to derive each node's throughput.
  ExecutorOptions node_options;
  /// Remaining-work level (virtual seconds) below which a kWorkStealing
  /// node solicits more work *before* it runs dry, hiding the brokering
  /// round trip behind its in-flight docking.  <= 0 selects the default:
  /// the larger of twice the node's mean per-ligand time and 10% of the
  /// campaign's balanced-parallel phase (so end-game rebalancing starts
  /// while nodes still have own work to overlap it with).
  double steal_threshold_s = 0.0;
  /// Node-death / node-straggle schedule; ordinal = node index.
  gpusim::FaultPlan node_faults;
  /// Observability sink (nullable = off): sched.cluster.* metrics plus a
  /// per-node tracer track of docking segments (see DESIGN.md §15).
  obs::Observer* observer = nullptr;
};

/// The cost-model inputs of one campaign, decoupled from DockingProblem so
/// tests can drive the event simulator with synthetic node speeds.
struct ClusterWorkload {
  /// Seconds each node needs for a ligand of cost 1.0 (the representative
  /// ligand); size must equal the cluster's node count.
  std::vector<double> node_base_seconds;
  /// Per-ligand cost multiplier (atom count relative to the representative:
  /// the pair sum is receptor_atoms x ligand_atoms).
  std::vector<double> ligand_cost;
  /// Sequential checkpoints per docking (metaheuristic generations).  An
  /// in-flight steal hands the unstarted tail of these units to the thief;
  /// 1 makes every docking indivisible.
  std::size_t units_per_ligand = 1;
  /// Message payloads (see sched/message.h for the derivation helpers).
  double receptor_bytes = 100e3;
  /// Dispatch payload for a ligand of cost 1.0 (scaled by ligand_cost).
  double ligand_bytes = 1024.0;
  /// Population state shipped by an in-flight handoff.
  double state_bytes = 16e3;
};

struct ClusterReport {
  DistributionPolicy policy = DistributionPolicy::kStatic;
  /// Virtual time the master received the campaign's last result.
  double makespan_seconds = 0.0;
  /// Network seconds summed over every send plus master service time (the
  /// comm bill, most of it overlapped with computation).
  double comm_seconds = 0.0;
  /// Per node: when the master received its last result (time of the
  /// receptor broadcast for a node that returned nothing).  The makespan
  /// is the max over these.
  std::vector<double> node_seconds;
  /// Results credited per node; sums to the library size (a ligand counts
  /// for the node whose result the master accepted).
  std::vector<std::size_t> ligands_per_node;
  /// Compute-busy seconds per node (excludes idle and transfer waits).
  std::vector<double> node_busy_seconds;
  /// Per ligand: node whose result the master accepted.
  std::vector<int> docked_on;
  /// Per ligand: compute seconds charged across the cluster, including
  /// work lost to node death and re-docked on a survivor.
  std::vector<double> ligand_seconds;
  /// mean / max node_busy_seconds over nodes that docked work.
  double balance_efficiency = 1.0;
  MessageStats messages;
  std::size_t steals = 0;           // granted steal requests
  std::size_t stolen_ligands = 0;   // queued ligands moved by steals
  std::size_t handoffs = 0;         // in-flight dockings migrated
  std::size_t failed_steals = 0;    // brokered requests that found no work
  std::size_t nodes_lost = 0;       // whole-node deaths
  std::size_t reassigned_ligands = 0;  // queued ligands moved off dead nodes
  std::size_t redocked_ligands = 0;    // in-flight at death, restarted
};

class ClusterSim {
 public:
  ClusterSim(std::vector<NodeConfig> nodes, ClusterOptions options = {});
  /// Back-compat constructor (pre-event-driven call sites).
  ClusterSim(std::vector<NodeConfig> nodes, NetworkModel network,
             ExecutorOptions node_options = {});

  /// Times a screening campaign.  `problem` provides the receptor, spots
  /// and a representative ligand; `ligand_atom_counts` gives the library
  /// (per-ligand cost scales with its atom count).  Each node's base speed
  /// comes from a NodeExecutor::estimate replay of `params` on its device
  /// stack; the event simulator then plays the campaign out.
  [[nodiscard]] ClusterReport screen_estimate(const meta::DockingProblem& problem,
                                              const std::vector<std::size_t>& ligand_atom_counts,
                                              const meta::MetaheuristicParams& params,
                                              DistributionPolicy policy) const;

  /// Builds the cost-model inputs screen_estimate feeds the simulator —
  /// exposed so the vs layer can shard a real library with the same costs.
  [[nodiscard]] ClusterWorkload workload_for(const meta::DockingProblem& problem,
                                             const std::vector<std::size_t>& ligand_atom_counts,
                                             const meta::MetaheuristicParams& params) const;

  /// The event-driven core: plays one campaign on the shared virtual
  /// clock.  Throws std::invalid_argument on malformed workloads and
  /// std::runtime_error when every node dies with work outstanding.
  [[nodiscard]] ClusterReport simulate(const ClusterWorkload& workload,
                                       DistributionPolicy policy) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<NodeConfig>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const ClusterOptions& options() const noexcept { return options_; }

 private:
  std::vector<NodeConfig> nodes_;
  ClusterOptions options_;
};

}  // namespace metadock::sched
