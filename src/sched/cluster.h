// Multi-node cluster simulation — the paper's future-work direction:
// "adapt our virtual screening method to more complex systems comprising
// several computational nodes working together with the message-passing
// paradigm, and each node with several computational components".
//
// A virtual-screening campaign (one docking run per library ligand) is
// distributed across heterogeneous nodes.  Communication follows an
// MPI-style master/worker pattern with a latency+bandwidth network model:
// the receptor is broadcast once, ligands are dispatched either statically
// (equal split) or dynamically (a worker requests the next ligand when it
// finishes), and per-ligand results return to the master.
#pragma once

#include <cstddef>
#include <vector>

#include "meta/engine.h"
#include "meta/params.h"
#include "sched/executor.h"
#include "sched/node_config.h"

namespace metadock::sched {

struct NetworkModel {
  double latency_s = 50e-6;
  double bandwidth_gbs = 5.0;

  [[nodiscard]] double message_time_s(double bytes) const {
    return latency_s + bytes / (bandwidth_gbs * 1e9);
  }
};

enum class DistributionPolicy { kStatic, kDynamic };

struct ClusterReport {
  DistributionPolicy policy = DistributionPolicy::kStatic;
  double makespan_seconds = 0.0;
  double comm_seconds = 0.0;  // total message time on the critical path
  std::vector<double> node_seconds;
  std::vector<std::size_t> ligands_per_node;
};

class ClusterSim {
 public:
  ClusterSim(std::vector<NodeConfig> nodes, NetworkModel network = {},
             ExecutorOptions node_options = {});

  /// Times a screening campaign.  `problem` provides the receptor, spot
  /// count and a representative ligand; `ligand_atom_counts` gives the
  /// library (per-ligand cost scales with its atom count, since the pair
  /// sum is receptor_atoms x ligand_atoms).
  [[nodiscard]] ClusterReport screen_estimate(const meta::DockingProblem& problem,
                                              const std::vector<std::size_t>& ligand_atom_counts,
                                              const meta::MetaheuristicParams& params,
                                              DistributionPolicy policy);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  std::vector<NodeConfig> nodes_;
  NetworkModel network_;
  ExecutorOptions node_options_;
};

}  // namespace metadock::sched
