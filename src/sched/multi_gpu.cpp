#include "sched/multi_gpu.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace metadock::sched {

std::vector<std::size_t> split_batch(std::size_t n, int warps_per_block,
                                     const std::vector<double>& shares) {
  if (shares.empty()) throw std::invalid_argument("split_batch: no shares");
  if (warps_per_block <= 0) throw std::invalid_argument("split_batch: bad block size");
  double sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::invalid_argument("split_batch: negative share");
    sum += s;
  }
  if (sum <= 0.0) throw std::invalid_argument("split_batch: shares sum to zero");

  // Apportion whole blocks by largest remainder, then convert to
  // conformations; the final device absorbs the tail block's padding.
  const auto wpb = static_cast<std::size_t>(warps_per_block);
  const std::size_t total_blocks = (n + wpb - 1) / wpb;
  const std::size_t bins = shares.size();
  std::vector<std::size_t> blocks(bins, 0);
  std::vector<double> rema(bins, 0.0);
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double exact = static_cast<double>(total_blocks) * shares[b] / sum;
    blocks[b] = static_cast<std::size_t>(exact);
    rema[b] = exact - static_cast<double>(blocks[b]);
    assigned += blocks[b];
  }
  std::vector<std::size_t> order(bins);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return rema[a] > rema[b]; });
  for (std::size_t i = 0; assigned < total_blocks; ++i) {
    ++blocks[order[i % bins]];
    ++assigned;
  }

  std::vector<std::size_t> confs(bins, 0);
  std::size_t given = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    confs[b] = std::min(blocks[b] * wpb, n - given);
    given += confs[b];
  }
  return confs;
}

MultiGpuBatchScorer::MultiGpuBatchScorer(gpusim::Runtime& rt,
                                         const scoring::LennardJonesScorer& scorer,
                                         MultiGpuOptions options)
    : rt_(rt), options_(std::move(options)) {
  const auto n_dev = static_cast<std::size_t>(rt_.device_count());
  if (n_dev == 0) throw std::invalid_argument("MultiGpuBatchScorer: no devices");
  if (!options_.dynamic) {
    if (options_.shares.empty()) options_.shares.assign(n_dev, 1.0);
    if (options_.shares.size() != n_dev) {
      throw std::invalid_argument("MultiGpuBatchScorer: shares/device count mismatch");
    }
  }
  device_confs_.assign(n_dev, 0);

  // Molecule upload happens on all devices concurrently.
  std::vector<double> before(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) before[d] = rt_.device(static_cast<int>(d)).busy_seconds();
  for (std::size_t d = 0; d < n_dev; ++d) {
    kernels_.emplace_back(rt_.device(static_cast<int>(d)), scorer, options_.kernel);
  }
  double max_delta = 0.0;
  for (std::size_t d = 0; d < n_dev; ++d) {
    max_delta = std::max(max_delta,
                         rt_.device(static_cast<int>(d)).busy_seconds() - before[d]);
  }
  node_seconds_ += max_delta;

  if (!options_.dynamic) {
    norm_shares_ = options_.shares;
    const double sum = std::accumulate(norm_shares_.begin(), norm_shares_.end(), 0.0);
    for (double& s : norm_shares_) s /= sum;
  }
}

template <typename RunSlice>
void MultiGpuBatchScorer::dispatch(std::size_t n, RunSlice&& run_slice) {
  if (n == 0) return;
  const auto n_dev = kernels_.size();
  std::vector<double> before(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) {
    before[d] = rt_.device(static_cast<int>(d)).busy_seconds();
  }

  // Algorithm 2: "Host_To_GPU(Scom, Stmp)" — the whole batch is uploaded to
  // every GPU before each device launches on its stride.
  const std::vector<std::size_t> confs_before = device_confs_;
  for (std::size_t d = 0; d < n_dev; ++d) {
    rt_.device(static_cast<int>(d))
        .copy_to_device(gpusim::DeviceScoringKernel::kBytesPerPose * static_cast<double>(n));
  }

  if (!options_.dynamic) {
    const std::vector<std::size_t> counts =
        split_batch(n, options_.kernel.warps_per_block, norm_shares_);
    std::size_t offset = 0;
    for (std::size_t d = 0; d < n_dev; ++d) {
      if (counts[d] == 0) continue;
      run_slice(d, offset, counts[d]);
      device_confs_[d] += counts[d];
      offset += counts[d];
    }
  } else {
    // Cooperative queue: hand out chunk_blocks-sized chunks to the device
    // whose virtual clock is lowest (i.e. the one that would request work
    // first).  Each pull pays a host dispatch latency.
    const auto wpb = static_cast<std::size_t>(options_.kernel.warps_per_block);
    const std::size_t chunk = std::max<std::size_t>(1, options_.chunk_blocks) * wpb;
    std::vector<double> eta(n_dev);
    for (std::size_t d = 0; d < n_dev; ++d) {
      eta[d] = rt_.device(static_cast<int>(d)).busy_seconds();
    }
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      const std::size_t take = std::min(chunk, n - lo);
      const auto d = static_cast<std::size_t>(
          std::min_element(eta.begin(), eta.end()) - eta.begin());
      gpusim::Device& dev = rt_.device(static_cast<int>(d));
      dev.advance_seconds(options_.pull_latency_s);
      run_slice(d, lo, take);
      device_confs_[d] += take;
      eta[d] = dev.busy_seconds();
    }
  }

  // "GPU_To_Host(Scom, Stmp)": each device returns the scores it produced.
  for (std::size_t d = 0; d < n_dev; ++d) {
    const std::size_t scored = device_confs_[d] - confs_before[d];
    if (scored > 0) {
      rt_.device(static_cast<int>(d)).copy_from_device(8.0 * static_cast<double>(scored));
    }
  }

  double max_delta = 0.0;
  for (std::size_t d = 0; d < n_dev; ++d) {
    max_delta = std::max(max_delta,
                         rt_.device(static_cast<int>(d)).busy_seconds() - before[d]);
  }
  node_seconds_ += max_delta;
}

void MultiGpuBatchScorer::evaluate(std::span<const scoring::Pose> poses,
                                   std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("MultiGpuBatchScorer::evaluate: size mismatch");
  }
  dispatch(poses.size(), [&](std::size_t d, std::size_t offset, std::size_t count) {
    kernels_[d].launch_scoring(poses.subspan(offset, count), out.subspan(offset, count));
  });
}

void MultiGpuBatchScorer::evaluate_cost_only(std::size_t n) {
  dispatch(n, [&](std::size_t d, std::size_t, std::size_t count) {
    kernels_[d].launch_cost_only(count);
  });
}

}  // namespace metadock::sched
