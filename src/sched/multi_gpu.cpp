#include "sched/multi_gpu.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace metadock::sched {

void split_batch_into(std::size_t n, int warps_per_block, std::span<const double> shares,
                      std::span<std::size_t> counts, util::Arena& scratch) {
  if (shares.empty()) throw std::invalid_argument("split_batch: no shares");
  if (warps_per_block <= 0) throw std::invalid_argument("split_batch: bad block size");
  if (counts.size() != shares.size()) {
    throw std::invalid_argument("split_batch_into: counts/shares size mismatch");
  }
  double sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::invalid_argument("split_batch: negative share");
    sum += s;
  }
  if (sum <= 0.0) throw std::invalid_argument("split_batch: shares sum to zero");

  // Apportion whole blocks by largest remainder, then convert to
  // conformations; the final device absorbs the tail block's padding.
  const util::ArenaScope scope(scratch);
  const auto wpb = static_cast<std::size_t>(warps_per_block);
  const std::size_t total_blocks = (n + wpb - 1) / wpb;
  const std::size_t bins = shares.size();
  const std::span<std::size_t> blocks = scratch.make_span<std::size_t>(bins);
  const std::span<double> rema = scratch.make_span<double>(bins);
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double exact = static_cast<double>(total_blocks) * shares[b] / sum;
    blocks[b] = static_cast<std::size_t>(exact);
    rema[b] = exact - static_cast<double>(blocks[b]);
    assigned += blocks[b];
  }
  const std::span<std::size_t> order = scratch.make_span<std::size_t>(bins);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return rema[a] > rema[b]; });
  for (std::size_t i = 0; assigned < total_blocks; ++i) {
    ++blocks[order[i % bins]];
    ++assigned;
  }

  std::size_t given = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    counts[b] = std::min(blocks[b] * wpb, n - given);
    given += counts[b];
  }
}

std::vector<std::size_t> split_batch(std::size_t n, int warps_per_block,
                                     const std::vector<double>& shares) {
  std::vector<std::size_t> confs(shares.size(), 0);
  split_batch_into(n, warps_per_block, shares, confs, util::thread_arena());
  return confs;
}

MultiGpuBatchScorer::MultiGpuBatchScorer(gpusim::Runtime& rt,
                                         const scoring::LennardJonesScorer& scorer,
                                         MultiGpuOptions options)
    : rt_(rt), options_(std::move(options)), scorer_(scorer) {
  // Nobody else can hold the role during construction; claiming it here
  // lets quarantine() and the share bookkeeping run under the capability.
  const util::ScopedSerial own(serial_);
  const auto n_dev = static_cast<std::size_t>(rt_.device_count());
  if (n_dev == 0) throw std::invalid_argument("MultiGpuBatchScorer: no devices");
  if (options_.observer != nullptr) rt_.attach_observer(options_.observer);
  if (!options_.dynamic) {
    if (options_.shares.empty()) options_.shares.assign(n_dev, 1.0);
    if (options_.shares.size() != n_dev) {
      throw std::invalid_argument("MultiGpuBatchScorer: shares/device count mismatch");
    }
  }
  if (options_.cpu_tail_share < 0.0 || options_.cpu_tail_share >= 1.0) {
    throw std::invalid_argument("MultiGpuBatchScorer: cpu_tail_share must be in [0, 1)");
  }
  if (options_.cpu_tail_share > 0.0 && !options_.cpu_fallback) {
    throw std::invalid_argument(
        "MultiGpuBatchScorer: cpu_tail_share needs a cpu_fallback engine");
  }
  device_confs_.assign(n_dev, 0);
  quarantined_.assign(n_dev, false);
  window_confs_.assign(n_dev, 0);
  window_seconds_.assign(n_dev, 0.0);
  stream_ids_.assign(n_dev, {-1, -1});

  if (!options_.dynamic) {
    shares_ = options_.shares;
    const double sum = std::accumulate(shares_.begin(), shares_.end(), 0.0);
    // All-zero shares (every device declared lost before the run, e.g. by a
    // fault-tolerant warm-up) are legal: the split masks quarantined
    // devices and the CPU fallback absorbs the work.
    if (sum > 0.0) {
      for (double& s : shares_) s /= sum;
    }
  } else {
    shares_.assign(n_dev, 0.0);  // cooperative mode tracks no static shares
  }

  // Molecule upload happens on all live devices concurrently; a device
  // already dead under the fault plan is quarantined without an upload.
  std::vector<double> before(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) before[d] = rt_.device(static_cast<int>(d)).busy_seconds();
  for (std::size_t d = 0; d < n_dev; ++d) {
    kernels_.emplace_back();
    if (rt_.device(static_cast<int>(d)).is_dead()) {
      quarantine(d);
      continue;
    }
    kernels_.back().emplace(rt_.device(static_cast<int>(d)), scorer, options_.kernel);
  }
  double max_delta = 0.0;
  for (std::size_t d = 0; d < n_dev; ++d) {
    if (quarantined_[d]) continue;
    max_delta = std::max(max_delta,
                         rt_.device(static_cast<int>(d)).busy_seconds() - before[d]);
  }
  node_seconds_ += max_delta;
}

void MultiGpuBatchScorer::quarantine(std::size_t d) {
  if (quarantined_[d]) return;
  quarantined_[d] = true;
  if (d < shares_.size()) shares_[d] = 0.0;
  ++faults_.devices_lost;
  faults_.lost_devices.push_back(static_cast<int>(d));
  if (obs::Observer* o = options_.observer) {
    const gpusim::Device& dev = rt_.device(static_cast<int>(d));
    o->tracer.mark("quarantine", "fault", static_cast<int>(d),
                   static_cast<std::uint64_t>(dev.busy_seconds() * 1e9));
    o->metrics.counter("sched.quarantines").add();
  }
}

std::vector<std::size_t> MultiGpuBatchScorer::alive_devices() const {
  std::vector<std::size_t> alive;
  for (std::size_t d = 0; d < quarantined_.size(); ++d) {
    if (!quarantined_[d]) alive.push_back(d);
  }
  return alive;
}

void MultiGpuBatchScorer::alive_into(util::ArenaVector<std::size_t>& out) const {
  out.clear();
  for (std::size_t d = 0; d < quarantined_.size(); ++d) {
    if (!quarantined_[d]) out.push_back(d);
  }
}

cpusim::CpuScoringEngine& MultiGpuBatchScorer::engage_cpu() {
  if (!cpu_) {
    if (!options_.cpu_fallback) {
      throw gpusim::AllDevicesLostError(
          "MultiGpuBatchScorer: every device is lost and no CPU fallback is configured");
    }
    // Same host implementation as the device kernels, so degradation does
    // not change the science (bit-identical per-pose energies).
    cpu_.emplace(*options_.cpu_fallback, scorer_, options_.kernel.impl);
    cpu_->set_observer(options_.observer);
    faults_.degraded_to_cpu = true;
  }
  return *cpu_;
}

cpusim::CpuScoringEngine& MultiGpuBatchScorer::engage_tail() {
  if (!tail_cpu_) {
    // Same host implementation as the device kernels: the tail partition
    // changes where poses are scored, never what they score.
    tail_cpu_.emplace(*options_.cpu_fallback, scorer_, options_.kernel.impl);
    tail_cpu_->set_observer(options_.observer);
  }
  return *tail_cpu_;
}

void MultiGpuBatchScorer::ensure_streams(std::size_t d) {
  if (stream_ids_[d][0] >= 0) return;
  gpusim::Device& dev = rt_.device(static_cast<int>(d));
  stream_ids_[d][0] = dev.create_stream();
  stream_ids_[d][1] = dev.create_stream();
}

template <typename RunSlice>
bool MultiGpuBatchScorer::run_with_retries(std::size_t d, std::size_t offset,
                                           std::size_t count, RunSlice&& run_slice) {
  gpusim::Device& dev = rt_.device(static_cast<int>(d));
  double backoff = options_.faults.backoff_base_s;
  for (int attempt = 0;; ++attempt) {
    const double before = dev.busy_seconds();
    try {
      run_slice(d, offset, count);
      device_confs_[d] += count;
      window_confs_[d] += count;
      window_seconds_[d] += dev.busy_seconds() - before;
      return true;
    } catch (const gpusim::TransientFaultError&) {
      ++faults_.transient_faults;
      faults_.time_lost_seconds += dev.busy_seconds() - before;
      if (attempt >= options_.faults.max_retries) return false;
      ++faults_.retries;
      const std::uint64_t backoff_start_ns =
          static_cast<std::uint64_t>(dev.busy_seconds() * 1e9);
      dev.advance_seconds(backoff);
      if (obs::Observer* o = options_.observer) {
        obs::Span s;
        s.name = "retry_backoff";
        s.category = "fault";
        s.device = static_cast<int>(d);
        s.start_ns = backoff_start_ns;
        s.dur_ns = static_cast<std::uint64_t>(dev.busy_seconds() * 1e9) - backoff_start_ns;
        s.args = {{"attempt", static_cast<double>(attempt + 1)}};
        o->tracer.record(std::move(s));
        o->metrics.counter("sched.retries").add();
      }
      faults_.time_lost_seconds += backoff;
      backoff = std::min(backoff * 2.0, options_.faults.backoff_cap_s);
    } catch (const gpusim::DeviceLostError&) {
      faults_.time_lost_seconds += dev.busy_seconds() - before;
      return false;
    }
  }
}

template <typename RunAsync>
bool MultiGpuBatchScorer::run_half_with_retries(std::size_t d, int stream, std::size_t offset,
                                                std::size_t count, RunAsync&& run_async) {
  if (count == 0) return true;
  gpusim::Device& dev = rt_.device(static_cast<int>(d));
  double backoff = options_.faults.backoff_base_s;
  for (int attempt = 0;; ++attempt) {
    const double before = dev.stream_seconds(stream);
    try {
      run_async(d, stream, offset, count);
      return true;
    } catch (const gpusim::TransientFaultError&) {
      ++faults_.transient_faults;
      faults_.time_lost_seconds += dev.stream_seconds(stream) - before;
      if (attempt >= options_.faults.max_retries) return false;
      ++faults_.retries;
      const std::uint64_t backoff_start_ns =
          static_cast<std::uint64_t>(dev.stream_seconds(stream) * 1e9);
      // The backoff stalls only the failing stream; the sibling half keeps
      // its pipeline running.
      dev.advance_stream_seconds(stream, backoff);
      if (obs::Observer* o = options_.observer) {
        obs::Span s;
        s.name = "retry_backoff";
        s.category = "fault";
        s.device = obs::stream_track(static_cast<int>(d), stream);
        s.start_ns = backoff_start_ns;
        s.dur_ns = static_cast<std::uint64_t>(dev.stream_seconds(stream) * 1e9) - backoff_start_ns;
        s.args = {{"attempt", static_cast<double>(attempt + 1)}};
        o->tracer.record(std::move(s));
        o->metrics.counter("sched.retries").add();
      }
      faults_.time_lost_seconds += backoff;
      backoff = std::min(backoff * 2.0, options_.faults.backoff_cap_s);
    }
  }
}

template <typename RunAsync>
std::size_t MultiGpuBatchScorer::run_overlapped(std::size_t d, std::size_t offset,
                                                std::size_t count, RunAsync&& run_async) {
  gpusim::Device& dev = rt_.device(static_cast<int>(d));
  gpusim::DeviceScoringKernel& kern = *kernels_[d];
  ensure_streams(d);
  const int s0 = stream_ids_[d][0];
  const int s1 = stream_ids_[d][1];
  const double before = dev.busy_seconds();

  // Block-aligned halves of the double buffer: splitting mid-block would
  // change the launch geometry (and so the scores' block mapping).  Split
  // only when the cost model predicts the pipeline beats a single-shot
  // round for this slice: halving can lose by stretching the kernels
  // (modeled occupancy scales with resident warps per SM, so sub-saturation
  // halves each cost as much as the whole) or by fixed per-op overheads
  // (an extra kernel launch plus doubled transfer latencies) that small
  // slices cannot hide.  The estimate prices both effects directly.
  const auto wpb = static_cast<std::size_t>(options_.kernel.warps_per_block);
  const std::size_t blocks = (count + wpb - 1) / wpb;
  std::size_t c0 = count;
  if (blocks >= 2) {
    const std::size_t half = std::min(count, (blocks + 1) / 2 * wpb);
    const auto tx = [&](double bytes) {
      return gpusim::transfer_time_s(dev.spec(), bytes, dev.cost_params());
    };
    const auto kt = [&](std::size_t m) {
      return gpusim::kernel_time_s(dev.spec(), kern.launch_config(m), kern.cost(m),
                                   dev.cost_params()) *
             dev.slowdown();
    };
    constexpr double kB2D = gpusim::DeviceScoringKernel::kBytesPerPose;
    const std::size_t rest = count - half;
    const double single_s = tx(kB2D * static_cast<double>(count)) + kt(count) +
                            tx(8.0 * static_cast<double>(count));
    // Pipeline shape: h2d(half) ; kernel(half) || h2d(rest) ; kernel(rest)
    // || d2h(half) ; d2h(rest) — the maxes cover transfer-bound slices
    // where a copy outlasts the kernel it hides under.
    const double h2d0 = tx(kB2D * static_cast<double>(half));
    const double k1_end =
        h2d0 + std::max(kt(half), tx(kB2D * static_cast<double>(rest))) + kt(rest);
    const double split_s =
        std::max(k1_end, h2d0 + kt(half) + tx(8.0 * static_cast<double>(half))) +
        tx(8.0 * static_cast<double>(rest));
    if (split_s < single_s) c0 = half;
  }
  const std::size_t c1 = count - c0;

  std::size_t done = 0;  // scores that reached the host
  bool died = false;
  try {
    kern.upload_poses_async(s0, c0);
    if (run_half_with_retries(d, s0, offset, c0, run_async)) {
      // The first half's scores come home as soon as its kernel ends,
      // riding the d2h engine under the sibling kernel.  A half only
      // counts as done once its scores are on the host: a death before
      // this copy completes loses the scores with the card, and the
      // caller rescores the poses on a survivor.
      kern.download_scores_async(s0, c0);
      done = c0;
      if (c1 > 0) {
        // The second upload rides s1, overlapping the first half's kernel
        // on s0 (different engines; issue order does not move the virtual
        // start times, which only depend on stream cursors and engines).
        kern.upload_poses_async(s1, c1);
        if (run_half_with_retries(d, s1, offset + c0, c1, run_async)) {
          // The second half's scores join s0 via a recorded event — the
          // cross-stream dependency.
          dev.wait_event(s0, dev.record_event(s1));
          kern.download_scores_async(s0, c1);
          done = count;
        }
      }
    }
  } catch (const gpusim::DeviceLostError&) {
    // Death clamps every stream at the boundary (the card fell off the
    // bus); halves that completed before it keep their scores, the caller
    // re-splits the rest across the survivors.
    died = true;
  }
  dev.sync();
  const double delta = dev.busy_seconds() - before;
  if (done > 0) {
    device_confs_[d] += done;
    window_confs_[d] += done;
    window_seconds_[d] += delta;
  }
  if (died && done == 0) {
    // Nothing was credited, so the whole pipeline's time is lost with the
    // device (transient-retry losses are accounted inside the retry loop).
    faults_.time_lost_seconds += delta;
  }
  return done;
}

void MultiGpuBatchScorer::maybe_rebalance() {
  if (options_.dynamic || options_.faults.rebalance_batches == 0) return;
  if (++batches_dispatched_ % options_.faults.rebalance_batches != 0) return;
  const std::vector<std::size_t> alive = alive_devices();
  if (alive.size() < 2) return;
  // Only rebalance from a complete observation window: every survivor must
  // have scored something since the last rebalance, else throughputs are
  // not comparable.
  double sum = 0.0;
  std::vector<double> throughput(alive.size(), 0.0);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const std::size_t d = alive[i];
    if (window_confs_[d] == 0 || window_seconds_[d] <= 0.0) return;
    throughput[i] = static_cast<double>(window_confs_[d]) / window_seconds_[d];
    sum += throughput[i];
  }
  for (std::size_t i = 0; i < alive.size(); ++i) shares_[alive[i]] = throughput[i] / sum;
  ++faults_.rebalances;
  if (obs::Observer* o = options_.observer) {
    o->tracer.mark("rebalance", "sched", obs::kHostTrack,
                   static_cast<std::uint64_t>(node_seconds_ * 1e9));
    o->metrics.counter("sched.rebalances").add();
  }
  std::fill(window_confs_.begin(), window_confs_.end(), 0);
  std::fill(window_seconds_.begin(), window_seconds_.end(), 0.0);
}

template <typename RunSlice, typename RunAsync, typename CpuSlice, typename TailSlice>
void MultiGpuBatchScorer::dispatch(std::size_t n, RunSlice&& run_slice, RunAsync&& run_async,
                                   CpuSlice&& cpu_slice, TailSlice&& tail_slice) {
  if (n == 0) return;
  const double batch_start_s = node_seconds_;
  const auto n_dev = kernels_.size();
  // All per-batch bookkeeping (device snapshots, slice worklist, split
  // weights/counts) is carved from the member arena and released at the
  // end of the batch: after the first batch warms the chunks, dispatch()
  // performs zero heap allocations.
  const util::ArenaScope batch_scope(arena_);
  const std::span<double> before = arena_.make_span<double>(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) {
    before[d] = rt_.device(static_cast<int>(d)).busy_seconds();
  }
  const double cpu_before = cpu_ ? cpu_->busy_seconds() : 0.0;
  const bool overlapped = overlap_enabled();
  bool any_alive = false;
  for (std::size_t d = 0; d < n_dev; ++d) any_alive = any_alive || !quarantined_[d];

  // CPU tail partition (overlapped mode only): the host scores the batch's
  // last `cpu_tail_share` poses concurrently with the GPU pipelines; the
  // barrier below takes max(GPU pipelines, CPU tail).  With no GPU left the
  // whole batch goes through the serialized fallback path instead.
  std::size_t head = n;
  double tail_delta = 0.0;
  if (overlapped && options_.cpu_tail_share > 0.0 && any_alive) {
    const auto tail =
        static_cast<std::size_t>(static_cast<double>(n) * options_.cpu_tail_share);
    if (tail > 0) {
      head = n - tail;
      cpusim::CpuScoringEngine& cpu = engage_tail();
      const double tail_before = cpu.busy_seconds();
      tail_slice(head, tail);
      tail_delta = cpu.busy_seconds() - tail_before;
      cpu_tail_confs_ += tail;
      if (obs::Observer* o = options_.observer) {
        o->metrics.counter("sched.cpu_tail_poses").add(static_cast<double>(tail));
      }
    }
  }

  const std::span<std::size_t> confs_before = arena_.make_span<std::size_t>(n_dev);
  std::copy(device_confs_.begin(), device_confs_.end(), confs_before.begin());
  if (!overlapped) {
    // Algorithm 2: "Host_To_GPU(Scom, Stmp)" — the whole batch is uploaded
    // to every live GPU before each device launches on its stride.  The
    // overlapped path instead uploads per-pipeline halves inside
    // run_overlapped, hiding them behind the sibling half's kernel.
    for (std::size_t d = 0; d < n_dev; ++d) {
      if (quarantined_[d]) continue;
      rt_.device(static_cast<int>(d))
          .copy_to_device(gpusim::DeviceScoringKernel::kBytesPerPose * static_cast<double>(n));
    }
  }

  if (!options_.dynamic) {
    // Worklist of contiguous slices.  The whole batch starts as one slice;
    // a quarantine pushes the failed slice back for a re-split across the
    // survivors (or the CPU fallback once nobody survives).  Capacity
    // bound: each push after the first is preceded by a quarantine, and a
    // device is quarantined at most once ever, so n_dev + 1 slices cover
    // the worst case.
    util::ArenaVector<Slice> pending(arena_, n_dev + 1);
    pending.push_back({0, head});
    util::ArenaVector<std::size_t> alive(arena_, n_dev);
    const std::span<double> weights_buf = arena_.make_span<double>(n_dev);
    const std::span<std::size_t> counts_buf = arena_.make_span<std::size_t>(n_dev);
    bool first_split = true;
    while (!pending.empty()) {
      const Slice slice = pending.back();
      pending.pop_back();
      alive_into(alive);
      if (alive.empty()) {
        // Engage here, not inside the callback: cpu_slice is analyzed
        // without the serial_ role, so it may only touch the engine.
        engage_cpu();
        cpu_slice(slice.offset, slice.count);
        faults_.cpu_fallback_conformations += slice.count;
        if (obs::Observer* o = options_.observer) {
          o->metrics.counter("sched.cpu_fallback_poses").add(static_cast<double>(slice.count));
        }
        continue;
      }
      if (!first_split) {
        ++faults_.resplits;
        if (obs::Observer* o = options_.observer) {
          o->tracer.mark("resplit", "fault", obs::kHostTrack,
                         static_cast<std::uint64_t>(node_seconds_ * 1e9),
                         {{"poses", static_cast<double>(slice.count)}});
          o->metrics.counter("sched.resplits").add();
        }
      }
      first_split = false;
      const std::span<double> weights = weights_buf.first(alive.size());
      std::fill(weights.begin(), weights.end(), 1.0);
      double wsum = 0.0;
      for (std::size_t i = 0; i < alive.size(); ++i) wsum += shares_[alive[i]];
      if (wsum > 0.0) {
        for (std::size_t i = 0; i < alive.size(); ++i) weights[i] = shares_[alive[i]];
      }
      const std::span<std::size_t> counts = counts_buf.first(alive.size());
      split_batch_into(slice.count, options_.kernel.warps_per_block, weights, counts, arena_);
      std::size_t offset = slice.offset;
      for (std::size_t i = 0; i < alive.size(); ++i) {
        if (counts[i] == 0) continue;
        const std::size_t d = alive[i];
        if (overlapped) {
          const std::size_t done = run_overlapped(d, offset, counts[i], run_async);
          if (done < counts[i]) {
            // Both in-flight half-batches merge back into one remainder
            // slice: completed poses keep their scores, the rest re-split.
            quarantine(d);
            pending.push_back({offset + done, counts[i] - done});
          }
        } else if (!run_with_retries(d, offset, counts[i], run_slice)) {
          quarantine(d);
          pending.push_back({offset, counts[i]});
        }
        offset += counts[i];
      }
    }
  } else {
    // Cooperative queue: hand out chunk_blocks-sized chunks to the live
    // device whose virtual clock is lowest (i.e. the one that would request
    // work first).  Each pull pays a host dispatch latency; a failed chunk
    // goes back to the queue after the device is quarantined.
    const auto wpb = static_cast<std::size_t>(options_.kernel.warps_per_block);
    const std::size_t chunk = std::max<std::size_t>(1, options_.chunk_blocks) * wpb;
    // Re-pushes (one per quarantine, after a pop) never grow the worklist
    // past its initial size, but budget n_dev extra slots anyway — the
    // bound is cheap and the overflow throw is a loud failure.
    util::ArenaVector<Slice> pending(arena_, (n + chunk - 1) / chunk + n_dev);
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      pending.push_back({lo, std::min(chunk, n - lo)});
    }
    std::reverse(pending.begin(), pending.end());  // pop_back walks ascending
    util::ArenaVector<std::size_t> alive(arena_, n_dev);
    while (!pending.empty()) {
      const Slice slice = pending.back();
      pending.pop_back();
      alive_into(alive);
      if (alive.empty()) {
        engage_cpu();
        cpu_slice(slice.offset, slice.count);
        faults_.cpu_fallback_conformations += slice.count;
        if (obs::Observer* o = options_.observer) {
          o->metrics.counter("sched.cpu_fallback_poses").add(static_cast<double>(slice.count));
        }
        continue;
      }
      std::size_t d = alive[0];
      for (std::size_t cand : alive) {
        if (rt_.device(static_cast<int>(cand)).busy_seconds() <
            rt_.device(static_cast<int>(d)).busy_seconds()) {
          d = cand;
        }
      }
      rt_.device(static_cast<int>(d)).advance_seconds(options_.pull_latency_s);
      if (!run_with_retries(d, slice.offset, slice.count, run_slice)) {
        quarantine(d);
        pending.push_back(slice);
        ++faults_.resplits;
        if (obs::Observer* o = options_.observer) o->metrics.counter("sched.resplits").add();
      }
    }
  }

  if (!overlapped) {
    // "GPU_To_Host(Scom, Stmp)": each device returns the scores it
    // produced.  The overlapped path downloaded them inside the pipelines.
    for (std::size_t d = 0; d < n_dev; ++d) {
      const std::size_t scored = device_confs_[d] - confs_before[d];
      if (scored > 0) {
        rt_.device(static_cast<int>(d)).copy_from_device(8.0 * static_cast<double>(scored));
      }
    }
  }

  double max_delta = 0.0;
  for (std::size_t d = 0; d < n_dev; ++d) {
    max_delta = std::max(max_delta,
                         rt_.device(static_cast<int>(d)).busy_seconds() - before[d]);
  }
  // The CPU tail ran concurrently with the GPU pipelines: the batch costs
  // the slower of the two.
  node_seconds_ += std::max(max_delta, tail_delta);
  // CPU fallback work happens after the failure is detected, so it
  // serializes behind the surviving devices' barrier.
  if (cpu_) node_seconds_ += cpu_->busy_seconds() - cpu_before;

  if (overlapped) {
    if (obs::Observer* o = options_.observer) {
      // Counterfactual: what the fully synchronous Algorithm 2 round would
      // have cost the barrier — whole-head upload, one kernel over the
      // device's scored poses, score download — maximized over the
      // participants.  The clamp keeps fault-path noise out of the counter.
      double serial_max = 0.0;
      for (std::size_t d = 0; d < n_dev; ++d) {
        const std::size_t scored = device_confs_[d] - confs_before[d];
        if (scored == 0 || !kernels_[d].has_value()) continue;
        gpusim::Device& dev = rt_.device(static_cast<int>(d));
        const gpusim::DeviceScoringKernel& kern = *kernels_[d];
        const double serial_d =
            gpusim::transfer_time_s(dev.spec(),
                                    gpusim::DeviceScoringKernel::kBytesPerPose *
                                        static_cast<double>(head),
                                    dev.cost_params()) +
            gpusim::kernel_time_s(dev.spec(), kern.launch_config(scored), kern.cost(scored),
                                  dev.cost_params()) *
                dev.slowdown() +
            gpusim::transfer_time_s(dev.spec(), 8.0 * static_cast<double>(scored),
                                    dev.cost_params());
        serial_max = std::max(serial_max, serial_d);
      }
      const double saved = serial_max - std::max(max_delta, tail_delta);
      if (saved > 0.0) o->metrics.counter("sched.overlap.saved_seconds").add(saved);
    }
  }

  if (obs::Observer* o = options_.observer) {
    obs::Span s;
    s.name = "batch";
    s.category = "sched";
    s.device = obs::kHostTrack;
    s.start_ns = static_cast<std::uint64_t>(batch_start_s * 1e9);
    s.dur_ns = static_cast<std::uint64_t>((node_seconds_ - batch_start_s) * 1e9);
    s.args = {{"poses", static_cast<double>(n)}};
    o->tracer.record(std::move(s));
    o->metrics.counter("sched.batches").add();
    o->metrics.histogram("sched.batch_barrier_seconds").record(node_seconds_ - batch_start_s);
  }

  maybe_rebalance();
}

void MultiGpuBatchScorer::evaluate(std::span<const scoring::Pose> poses,
                                   std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("MultiGpuBatchScorer::evaluate: size mismatch");
  }
  const util::ScopedSerial own(serial_);
  // The callbacks run without the serial_ role (a lambda body is analyzed
  // as its own function), so they touch only unguarded engine state;
  // dispatch() engages the CPU engines before ever invoking the CPU paths.
  dispatch(
      poses.size(),
      [&](std::size_t d, std::size_t offset, std::size_t count) {
        kernels_[d]->launch_scoring(poses.subspan(offset, count), out.subspan(offset, count));
      },
      [&](std::size_t d, int stream, std::size_t offset, std::size_t count) {
        kernels_[d]->launch_scoring_async(stream, poses.subspan(offset, count),
                                          out.subspan(offset, count));
      },
      [&](std::size_t offset, std::size_t count) {
        cpu_->score(poses.subspan(offset, count), out.subspan(offset, count));
      },
      [&](std::size_t offset, std::size_t count) {
        tail_cpu_->score(poses.subspan(offset, count), out.subspan(offset, count));
      });
}

void MultiGpuBatchScorer::evaluate_cost_only(std::size_t n) {
  const util::ScopedSerial own(serial_);
  dispatch(
      n,
      [&](std::size_t d, std::size_t, std::size_t count) {
        kernels_[d]->launch_cost_only(count);
      },
      [&](std::size_t d, int stream, std::size_t, std::size_t count) {
        kernels_[d]->launch_cost_only_async(stream, count);
      },
      [&](std::size_t, std::size_t count) { cpu_->score_cost_only(count); },
      [&](std::size_t, std::size_t count) { tail_cpu_->score_cost_only(count); });
}

}  // namespace metadock::sched
