// Pose-space sampling operators: initialization around a surface spot,
// crossover of two parent poses, mutation, and local-search perturbation.
// All operators draw from caller-supplied RNGs so determinism is owned by
// the engine's counter-based stream scheme.
#pragma once

#include "geom/vec3.h"
#include "scoring/pose.h"
#include "surface/spots.h"
#include "util/rng.h"

namespace metadock::meta {

/// Uniformly random pose in the spot's search region: position inside a
/// sphere of spot.radius around the anchor (pushed off the surface by the
/// ligand radius so initial conformations are not buried), orientation
/// uniform on SO(3).
[[nodiscard]] scoring::Pose initial_pose(const surface::Spot& spot, float ligand_radius,
                                         util::Xoshiro256& rng);

/// Blend crossover: position = lerp(a, b, u) with u ~ U(0,1); orientation =
/// slerp(a, b, u'); followed by Gaussian mutation of the given sigmas.
[[nodiscard]] scoring::Pose combine_poses(const scoring::Pose& a, const scoring::Pose& b,
                                          float mutate_t, float mutate_r,
                                          util::Xoshiro256& rng);

/// Local-search neighbour: small Gaussian translation + small rotation
/// about a random axis.
[[nodiscard]] scoring::Pose perturb_pose(const scoring::Pose& pose, float sigma_t, float sigma_r,
                                         util::Xoshiro256& rng);

}  // namespace metadock::meta
