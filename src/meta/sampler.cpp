#include "meta/sampler.h"

#include "geom/quat.h"

namespace metadock::meta {

namespace {

geom::Vec3 random_in_sphere(float radius, util::Xoshiro256& rng) {
  for (;;) {
    const geom::Vec3 p{static_cast<float>(rng.uniform(-1.0, 1.0)),
                       static_cast<float>(rng.uniform(-1.0, 1.0)),
                       static_cast<float>(rng.uniform(-1.0, 1.0))};
    if (p.norm2() <= 1.0f) return p * radius;
  }
}

geom::Vec3 random_axis(util::Xoshiro256& rng) {
  for (;;) {
    const geom::Vec3 p = random_in_sphere(1.0f, rng);
    if (p.norm2() > 1e-4f) return p.normalized();
  }
}

}  // namespace

scoring::Pose initial_pose(const surface::Spot& spot, float ligand_radius,
                           util::Xoshiro256& rng) {
  scoring::Pose pose;
  const geom::Vec3 anchor = spot.center + spot.outward * (0.8f * ligand_radius);
  pose.position = anchor + random_in_sphere(spot.radius, rng);
  pose.orientation = geom::random_quat(rng.uniformf(), rng.uniformf(), rng.uniformf());
  return pose;
}

scoring::Pose combine_poses(const scoring::Pose& a, const scoring::Pose& b, float mutate_t,
                            float mutate_r, util::Xoshiro256& rng) {
  scoring::Pose child;
  const float u = rng.uniformf();
  child.position = a.position + (b.position - a.position) * u;
  child.orientation = a.orientation.slerp(b.orientation, rng.uniformf());
  return perturb_pose(child, mutate_t, mutate_r, rng);
}

scoring::Pose perturb_pose(const scoring::Pose& pose, float sigma_t, float sigma_r,
                           util::Xoshiro256& rng) {
  scoring::Pose out;
  out.position = pose.position + geom::Vec3{static_cast<float>(rng.normal(0.0, sigma_t)),
                                            static_cast<float>(rng.normal(0.0, sigma_t)),
                                            static_cast<float>(rng.normal(0.0, sigma_t))};
  const float angle = static_cast<float>(rng.normal(0.0, sigma_r));
  out.orientation =
      (geom::Quat::axis_angle(random_axis(rng), angle) * pose.orientation).normalized();
  return out;
}

}  // namespace metadock::meta
