// Scoring back-end interface for the metaheuristic engine.
//
// The engine gathers every conformation that needs scoring in a phase into
// one batch — the set the paper ships to the GPUs as "CUDA thread blocks"
// (one warp per conformation).  Implementations are: direct host scoring
// (tests/examples), the CPU-model engine (OpenMP column), and the multi-GPU
// executors in `sched`.
#pragma once

#include <cstdint>
#include <span>

#include "scoring/batch_engine.h"
#include "scoring/lennard_jones.h"
#include "scoring/pose.h"
#include "scoring/pose_block.h"
#include "util/pool.h"

namespace metadock::meta {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Scores every pose into out (same indexing).  Must be deterministic in
  /// the poses — results may not depend on batch splitting.
  virtual void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) = 0;

  /// Columnar entry point: the engine's SoA population feeds batches
  /// through this.  The default adapter materializes an AoS copy in the
  /// calling thread's arena and forwards to evaluate(), so existing
  /// evaluators work unchanged; columnar back-ends (BatchedEvaluator)
  /// override it to skip the repack.  Overrides MUST score identically
  /// to evaluate() on the same poses — the property tests compare them
  /// bit for bit.
  virtual void evaluate_soa(const scoring::PoseSoAView& poses, std::span<double> out) {
    util::Arena& arena = util::thread_arena();
    util::ArenaScope scope(arena);
    std::span<scoring::Pose> aos = arena.make_span<scoring::Pose>(poses.size());
    for (std::size_t i = 0; i < poses.size(); ++i) aos[i] = poses.get(i);
    evaluate(aos, out);
  }

  /// Virtual seconds consumed by this evaluator's backing resources so far
  /// (the barrier-aware node time for multi-device evaluators).  Gives the
  /// observability layer a timeline for engine-level spans; evaluators
  /// without a clock (host scoring in tests) report 0.
  [[nodiscard]] virtual double virtual_seconds() const { return 0.0; }
};

/// Adapts any batch-scoring callable (e.g. scoring::GridScorer) to the
/// Evaluator interface: Fn(std::span<const Pose>, std::span<double>).
template <typename Fn>
class CallableEvaluator final : public Evaluator {
 public:
  explicit CallableEvaluator(Fn fn) : fn_(std::move(fn)) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    fn_(poses, out);
    evals_ += poses.size();
  }

  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }

 private:
  Fn fn_;
  std::uint64_t evals_ = 0;
};

/// Scores on the calling thread with the batched engine (pose-blocked,
/// type-partitioned; SIMD when available) — the fast host path for tests,
/// examples and tools that do not need a simulated device behind them.
class BatchedEvaluator final : public Evaluator {
 public:
  explicit BatchedEvaluator(const scoring::LennardJonesScorer& scorer,
                            scoring::BatchEngineOptions options = {})
      : engine_(scorer, options) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    engine_.score_batch(poses, out);
    calls_ += 1;
    evals_ += poses.size();
  }

  /// Columns flow straight into the engine — no AoS repack.
  void evaluate_soa(const scoring::PoseSoAView& poses, std::span<double> out) override {
    engine_.score_batch(poses, out);
    calls_ += 1;
    evals_ += poses.size();
  }

  [[nodiscard]] const scoring::BatchScoringEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }

 private:
  scoring::BatchScoringEngine engine_;
  std::uint64_t calls_ = 0;
  std::uint64_t evals_ = 0;
};

/// Scores on the calling thread with the reference tiled path.
class DirectEvaluator final : public Evaluator {
 public:
  explicit DirectEvaluator(const scoring::LennardJonesScorer& scorer) : scorer_(scorer) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    scorer_.score_batch(poses, out);
    calls_ += 1;
    evals_ += poses.size();
  }

  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }

 private:
  const scoring::LennardJonesScorer& scorer_;
  std::uint64_t calls_ = 0;
  std::uint64_t evals_ = 0;
};

}  // namespace metadock::meta
