#include "meta/engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "meta/sampler.h"
#include "util/rng.h"

namespace metadock::meta {

namespace {

// Operation tags folded into RNG stream keys so every (spot, generation,
// phase, index) tuple draws from an independent stream.
enum StreamTag : std::uint64_t {
  kTagInit = 0x1717,
  kTagCombine = 0xC0B1,
  kTagImprove = 0x1111,
  kTagAccept = 0xACC6,
};

struct SpotState {
  const surface::Spot* spot = nullptr;
  Population s;     // S: the reference set
  Population scom;  // Scom: newly combined elements
  /// Indices into scom currently undergoing local search.
  std::vector<std::size_t> improving;
};

/// Gathers pending poses from all spots, evaluates them in one batch, and
/// scatters scores back via the supplied setters.
class BatchCollector {
 public:
  BatchCollector(Evaluator& eval, RunResult& result, obs::Observer* obs)
      : eval_(eval), result_(result), obs_(obs) {}

  void add(const scoring::Pose& pose, double* score_out) {
    poses_.push_back(pose);
    outs_.push_back(score_out);
  }

  void flush() {
    if (poses_.empty()) return;
    scores_.resize(poses_.size());
    eval_.evaluate(poses_, scores_);
    for (std::size_t i = 0; i < outs_.size(); ++i) *outs_[i] = scores_[i];
    result_.evaluations += poses_.size();
    result_.batch_sizes.push_back(poses_.size());
    if (obs_ != nullptr) {
      obs_->metrics.histogram("meta.batch_size").record(static_cast<double>(poses_.size()));
      obs_->metrics.counter("meta.evaluations").add(static_cast<double>(poses_.size()));
    }
    poses_.clear();
    outs_.clear();
  }

 private:
  Evaluator& eval_;
  RunResult& result_;
  obs::Observer* obs_;
  std::vector<scoring::Pose> poses_;
  std::vector<double*> outs_;
  std::vector<double> scores_;
};

/// RAII span over one engine phase (init / a generation), timed on the
/// evaluator's virtual clock and recorded on the host track.
class PhaseSpan {
 public:
  PhaseSpan(obs::Observer* obs, const Evaluator& eval, std::string name, double gen = -1.0)
      : obs_(obs), eval_(eval), name_(std::move(name)), gen_(gen) {
    if (obs_ != nullptr) start_s_ = eval_.virtual_seconds();
  }
  ~PhaseSpan() {
    if (obs_ == nullptr) return;
    obs::Span s;
    s.name = std::move(name_);
    s.category = "meta";
    s.device = obs::kHostTrack;
    s.start_ns = static_cast<std::uint64_t>(start_s_ * 1e9);
    s.dur_ns = static_cast<std::uint64_t>((eval_.virtual_seconds() - start_s_) * 1e9);
    if (gen_ >= 0.0) s.args = {{"generation", gen_}};
    obs_->tracer.record(std::move(s));
  }

 private:
  obs::Observer* obs_;
  const Evaluator& eval_;
  std::string name_;
  double gen_;
  double start_s_ = 0.0;
};

/// Rank-biased parent pick: u^2 biases toward the front (best) of the
/// sorted mating pool — "Elements are selected for combination from the
/// best ones".
std::size_t pick_parent(std::size_t pool_size, util::Xoshiro256& rng) {
  const double u = rng.uniform();
  return static_cast<std::size_t>(u * u * static_cast<double>(pool_size));
}

}  // namespace

DockingProblem make_problem(const mol::Molecule& receptor, const mol::Molecule& ligand,
                            std::uint64_t seed, const surface::SpotParams& spot_params) {
  if (receptor.empty() || ligand.empty()) {
    throw std::invalid_argument("make_problem: receptor and ligand must be non-empty");
  }
  DockingProblem p;
  p.receptor = &receptor;
  p.ligand = &ligand;
  p.spots = surface::find_spots(receptor, spot_params);
  p.seed = seed;
  p.ligand_radius = ligand.radius_about_centroid();
  return p;
}

MetaheuristicEngine::MetaheuristicEngine(MetaheuristicParams params, obs::Observer* observer)
    : params_(std::move(params)), obs_(observer) {
  if (params_.population_per_spot <= 0) {
    throw std::invalid_argument("MetaheuristicEngine: population_per_spot must be positive");
  }
  if (params_.generations <= 0) {
    throw std::invalid_argument("MetaheuristicEngine: generations must be positive");
  }
  if (params_.select_fraction <= 0.0 || params_.select_fraction > 1.0) {
    throw std::invalid_argument("MetaheuristicEngine: select_fraction must be in (0,1]");
  }
  if (params_.improve_fraction < 0.0 || params_.improve_fraction > 1.0) {
    throw std::invalid_argument("MetaheuristicEngine: improve_fraction must be in [0,1]");
  }
}

RunResult MetaheuristicEngine::run(const DockingProblem& problem, Evaluator& eval,
                                   std::span<const std::size_t> spot_indices) const {
  if (problem.receptor == nullptr || problem.ligand == nullptr) {
    throw std::invalid_argument("MetaheuristicEngine::run: problem not initialized");
  }
  std::vector<std::size_t> all;
  if (spot_indices.empty()) {
    all.resize(problem.spots.size());
    std::iota(all.begin(), all.end(), 0);
    spot_indices = all;
  }

  RunResult result;
  const auto pop = static_cast<std::size_t>(params_.population_per_spot);
  const auto improve_count =
      static_cast<std::size_t>(std::lround(params_.improve_fraction * static_cast<double>(pop)));

  std::vector<SpotState> states;
  states.reserve(spot_indices.size());
  for (std::size_t idx : spot_indices) {
    if (idx >= problem.spots.size()) {
      throw std::out_of_range("MetaheuristicEngine::run: spot index out of range");
    }
    states.push_back({&problem.spots[idx], {}, {}, {}});
  }

  BatchCollector batch(eval, result, obs_);

  // ---- Initialize(S) ----
  {
    PhaseSpan span(obs_, eval, "initialize");
    for (SpotState& st : states) {
      st.s.resize(pop);
      for (std::size_t i = 0; i < pop; ++i) {
        auto rng = util::stream(problem.seed, st.spot->id, kTagInit, i);
        st.s[i].pose = initial_pose(*st.spot, problem.ligand_radius, rng);
        batch.add(st.s[i].pose, &st.s[i].score);
      }
    }
    batch.flush();
  }
  for (SpotState& st : states) std::sort(st.s.begin(), st.s.end(), better);

  // ---- while no End(S) ----
  double temperature = params_.annealing_t0;
  for (int gen = 0; gen < params_.generations; ++gen) {
    PhaseSpan gen_span(obs_, eval, "generation", static_cast<double>(gen));
    if (params_.population_based) {
      // ---- Select(S, Ssel) ----  S is kept sorted; the mating pool is its
      // best select_fraction prefix.
      const auto pool = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(params_.select_fraction *
                                                  static_cast<double>(pop))));

      // ---- Combine(Ssel, Scom) ----
      for (SpotState& st : states) {
        st.scom.resize(pop);
        for (std::size_t i = 0; i < pop; ++i) {
          auto rng = util::stream(problem.seed, st.spot->id, kTagCombine, gen, i);
          const Individual& pa = st.s[pick_parent(pool, rng)];
          const Individual& pb = st.s[pick_parent(pool, rng)];
          st.scom[i].pose = combine_poses(pa.pose, pb.pose, params_.combine_mutation_t,
                                          params_.combine_mutation_r, rng);
          batch.add(st.scom[i].pose, &st.scom[i].score);
        }
      }
      batch.flush();

      // The improved subset is the best improve_count of Scom.
      for (SpotState& st : states) {
        std::sort(st.scom.begin(), st.scom.end(), better);
        st.improving.resize(improve_count);
        std::iota(st.improving.begin(), st.improving.end(), 0);
      }
    } else {
      // Neighbourhood metaheuristic (M4): Improve works on S directly.
      for (SpotState& st : states) {
        st.scom = st.s;
        st.improving.resize(improve_count);
        std::iota(st.improving.begin(), st.improving.end(), 0);
      }
    }

    // ---- Improve(Scom) ---- hill climbing / annealing / tabu search on
    // the chosen set.
    if (!states.empty() && improve_count > 0 && params_.improve_steps > 0) {
      std::vector<Individual> proposals(states.size() * improve_count);
      // Tabu memory per improving slot: positions we recently left (the
      // short-term memory), plus the best individual visited so far — tabu
      // search walks to the best *non-tabu* neighbour even when it is
      // worse, so the incumbent best is tracked separately and restored
      // after the walk.  Reset every generation; keyed per spot, so subset
      // invariance is preserved.
      std::vector<std::vector<geom::Vec3>> tabu_mem;
      std::vector<Individual> slot_best;
      if (params_.accept == AcceptRule::kTabu) {
        tabu_mem.assign(states.size() * improve_count, {});
        slot_best.resize(states.size() * improve_count);
        for (std::size_t si = 0; si < states.size(); ++si) {
          for (std::size_t k = 0; k < improve_count; ++k) {
            slot_best[si * improve_count + k] =
                states[si].scom[states[si].improving[k]];
          }
        }
      }
      for (int step = 0; step < params_.improve_steps; ++step) {
        for (std::size_t si = 0; si < states.size(); ++si) {
          SpotState& st = states[si];
          for (std::size_t k = 0; k < improve_count; ++k) {
            auto rng =
                util::stream(problem.seed, st.spot->id, kTagImprove, gen, step, k);
            Individual& prop = proposals[si * improve_count + k];
            prop.pose = perturb_pose(st.scom[st.improving[k]].pose, params_.ls_translate,
                                     params_.ls_rotate, rng);
            batch.add(prop.pose, &prop.score);
          }
        }
        batch.flush();
        for (std::size_t si = 0; si < states.size(); ++si) {
          SpotState& st = states[si];
          for (std::size_t k = 0; k < improve_count; ++k) {
            const std::size_t slot = si * improve_count + k;
            Individual& cur = st.scom[st.improving[k]];
            const Individual& prop = proposals[slot];
            bool accept = prop.score < cur.score;
            if (params_.accept == AcceptRule::kAnnealing && !accept) {
              auto rng =
                  util::stream(problem.seed, st.spot->id, kTagAccept, gen, step, k);
              const double d = prop.score - cur.score;
              accept = rng.uniform() < std::exp(-d / std::max(temperature, 1e-9));
            } else if (params_.accept == AcceptRule::kTabu) {
              // Walk to the neighbour even when worse, unless it re-enters
              // recently visited territory; aspiration overrides tabu when
              // the move beats the slot's incumbent best.
              bool is_tabu = false;
              const float r2 = params_.tabu_radius * params_.tabu_radius;
              for (const geom::Vec3& p : tabu_mem[slot]) {
                if (prop.pose.position.distance2(p) < r2) {
                  is_tabu = true;
                  break;
                }
              }
              accept = !is_tabu || prop.score < slot_best[slot].score;
            }
            if (accept) {
              if (params_.accept == AcceptRule::kTabu) {
                tabu_mem[slot].push_back(cur.pose.position);
                if (tabu_mem[slot].size() >
                    static_cast<std::size_t>(std::max(1, params_.tabu_tenure))) {
                  tabu_mem[slot].erase(tabu_mem[slot].begin());
                }
                if (prop.score < slot_best[slot].score) slot_best[slot] = prop;
              }
              cur = prop;
            }
          }
        }
        temperature *= params_.annealing_cooling;
      }
      // Tabu walks may end somewhere worse than they passed through;
      // restore each slot's incumbent best before Include.
      if (params_.accept == AcceptRule::kTabu) {
        for (std::size_t si = 0; si < states.size(); ++si) {
          for (std::size_t k = 0; k < improve_count; ++k) {
            Individual& cur = states[si].scom[states[si].improving[k]];
            const Individual& best = slot_best[si * improve_count + k];
            if (best.score < cur.score) cur = best;
          }
        }
      }
    }

    // ---- Include(Scom, S) ---- elitist merge, keep the best |S|.
    for (SpotState& st : states) {
      if (params_.population_based) {
        st.s.insert(st.s.end(), st.scom.begin(), st.scom.end());
        std::sort(st.s.begin(), st.s.end(), better);
        st.s.resize(pop);
      } else {
        // "M4 applies only one step, and so there is no selection of
        // elements after improving": the improved set replaces S.
        st.s = st.scom;
        std::sort(st.s.begin(), st.s.end(), better);
      }
      st.scom.clear();
    }
  }

  // Collect per-spot winners and the global best.
  result.spot_results.reserve(states.size());
  for (const SpotState& st : states) {
    SpotResult sr;
    sr.spot_id = st.spot->id;
    sr.best = st.s.front();
    if (result.best_spot_id < 0 || better(sr.best, result.best)) {
      result.best = sr.best;
      result.best_spot_id = sr.spot_id;
    }
    result.spot_results.push_back(sr);
  }
  return result;
}

}  // namespace metadock::meta
