#include "meta/engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "meta/population.h"
#include "meta/sampler.h"
#include "util/pool.h"
#include "util/rng.h"

namespace metadock::meta {

namespace {

// Operation tags folded into RNG stream keys so every (spot, generation,
// phase, index) tuple draws from an independent stream.
enum StreamTag : std::uint64_t {
  kTagInit = 0x1717,
  kTagCombine = 0xC0B1,
  kTagImprove = 0x1111,
  kTagAccept = 0xACC6,
};

struct SpotState {
  const surface::Spot* spot = nullptr;
  PopulationSoA s;     // S: the reference set (capacity 2*pop for Include's merge)
  PopulationSoA scom;  // Scom: newly combined elements
};

/// Gathers pending poses from all spots into SoA staging, evaluates them
/// in one batch, and scatters scores back via the supplied pointers.  All
/// storage is carved from the run arena at construction — add()/flush()
/// allocate nothing.
class BatchCollector {
 public:
  BatchCollector(Evaluator& eval, RunResult& result, obs::Observer* obs, util::Arena& arena,
                 std::size_t max_batch)
      : eval_(eval), result_(result), obs_(obs), staging_(arena, max_batch),
        outs_(arena, max_batch), scores_(arena.make_span<double>(max_batch)) {}

  void add(const scoring::Pose& pose, double* score_out) {
    staging_.push(pose);
    outs_.push_back(score_out);
  }

  void flush() {
    if (staging_.empty()) return;
    const std::size_t n = staging_.size();
    eval_.evaluate_soa(staging_.view(), scores_.subspan(0, n));
    for (std::size_t i = 0; i < n; ++i) *outs_[i] = scores_[i];
    result_.evaluations += n;
    result_.batch_sizes.push_back(n);
    if (obs_ != nullptr) {
      obs_->metrics.histogram("meta.batch_size").record(static_cast<double>(n));
      obs_->metrics.counter("meta.evaluations").add(static_cast<double>(n));
    }
    staging_.clear();
    outs_.clear();
  }

 private:
  Evaluator& eval_;
  RunResult& result_;
  obs::Observer* obs_;
  scoring::PoseSoA staging_;
  util::ArenaVector<double*> outs_;
  std::span<double> scores_;
};

/// RAII span over one engine phase (init / a generation), timed on the
/// evaluator's virtual clock and recorded on the host track.
class PhaseSpan {
 public:
  PhaseSpan(obs::Observer* obs, const Evaluator& eval, std::string name, double gen = -1.0)
      : obs_(obs), eval_(eval), name_(std::move(name)), gen_(gen) {
    if (obs_ != nullptr) start_s_ = eval_.virtual_seconds();
  }
  ~PhaseSpan() {
    if (obs_ == nullptr) return;
    obs::Span s;
    s.name = std::move(name_);
    s.category = "meta";
    s.device = obs::kHostTrack;
    s.start_ns = static_cast<std::uint64_t>(start_s_ * 1e9);
    s.dur_ns = static_cast<std::uint64_t>((eval_.virtual_seconds() - start_s_) * 1e9);
    if (gen_ >= 0.0) s.args = {{"generation", gen_}};
    obs_->tracer.record(std::move(s));
  }

 private:
  obs::Observer* obs_;
  const Evaluator& eval_;
  std::string name_;
  double gen_;
  double start_s_ = 0.0;
};

/// Rank-biased parent pick: u^2 biases toward the front (best) of the
/// sorted mating pool — "Elements are selected for combination from the
/// best ones".
std::size_t pick_parent(std::size_t pool_size, util::Xoshiro256& rng) {
  const double u = rng.uniform();
  return static_cast<std::size_t>(u * u * static_cast<double>(pool_size));
}

/// Short-term tabu memory: one fixed-capacity ring of recently-left
/// positions per improving slot, flat in the arena.  Replaces the old
/// vector-of-vectors (whose push_back/erase churned the heap every
/// accepted move) with modular-index writes.
struct TabuRings {
  std::span<geom::Vec3> entries;  // slots * cap
  std::span<std::uint32_t> start;
  std::span<std::uint32_t> count;
  std::size_t cap = 0;

  void bind(util::Arena& arena, std::size_t slots, std::size_t capacity) {
    cap = capacity;
    entries = arena.make_span<geom::Vec3>(slots * capacity);
    start = arena.make_span<std::uint32_t>(slots);
    count = arena.make_span<std::uint32_t>(slots);
  }

  void reset() {
    std::fill(start.begin(), start.end(), 0u);
    std::fill(count.begin(), count.end(), 0u);
  }

  [[nodiscard]] bool contains_within(std::size_t slot, const geom::Vec3& p, float r2) const {
    const geom::Vec3* ring = entries.data() + slot * cap;
    for (std::uint32_t i = 0; i < count[slot]; ++i) {
      if (ring[(start[slot] + i) % cap].distance2(p) < r2) return true;
    }
    return false;
  }

  /// Keeps the most recent `cap` positions (drop-oldest on overflow) —
  /// the same window the old push_back/erase-front vector maintained.
  void push(std::size_t slot, const geom::Vec3& p) {
    geom::Vec3* ring = entries.data() + slot * cap;
    if (count[slot] < cap) {
      ring[(start[slot] + count[slot]) % cap] = p;
      ++count[slot];
    } else {
      ring[start[slot]] = p;
      start[slot] = (start[slot] + 1) % cap;
    }
  }
};

}  // namespace

DockingProblem make_problem(const mol::Molecule& receptor, const mol::Molecule& ligand,
                            std::uint64_t seed, const surface::SpotParams& spot_params) {
  if (receptor.empty() || ligand.empty()) {
    throw std::invalid_argument("make_problem: receptor and ligand must be non-empty");
  }
  DockingProblem p;
  p.receptor = &receptor;
  p.ligand = &ligand;
  p.spots = surface::find_spots(receptor, spot_params);
  p.seed = seed;
  p.ligand_radius = ligand.radius_about_centroid();
  return p;
}

MetaheuristicEngine::MetaheuristicEngine(MetaheuristicParams params, obs::Observer* observer)
    : params_(std::move(params)), obs_(observer) {
  if (params_.population_per_spot <= 0) {
    throw std::invalid_argument("MetaheuristicEngine: population_per_spot must be positive");
  }
  if (params_.generations <= 0) {
    throw std::invalid_argument("MetaheuristicEngine: generations must be positive");
  }
  if (params_.select_fraction <= 0.0 || params_.select_fraction > 1.0) {
    throw std::invalid_argument("MetaheuristicEngine: select_fraction must be in (0,1]");
  }
  if (params_.improve_fraction < 0.0 || params_.improve_fraction > 1.0) {
    throw std::invalid_argument("MetaheuristicEngine: improve_fraction must be in [0,1]");
  }
}

RunResult MetaheuristicEngine::run(const DockingProblem& problem, Evaluator& eval,
                                   std::span<const std::size_t> spot_indices) const {
  if (problem.receptor == nullptr || problem.ligand == nullptr) {
    throw std::invalid_argument("MetaheuristicEngine::run: problem not initialized");
  }
  std::vector<std::size_t> all;
  if (spot_indices.empty()) {
    all.resize(problem.spots.size());
    std::iota(all.begin(), all.end(), 0);
    spot_indices = all;
  }

  RunResult result;
  const auto pop = static_cast<std::size_t>(params_.population_per_spot);
  const auto improve_count =
      static_cast<std::size_t>(std::lround(params_.improve_fraction * static_cast<double>(pop)));

  // One arena per run backs every piece of loop-transient state below.
  // Everything is carved out ONCE, before the generation loop; the loop
  // itself only bumps cursors and writes into fixed columns.
  util::Arena arena;

  std::vector<SpotState> states;
  states.reserve(spot_indices.size());
  for (std::size_t idx : spot_indices) {
    if (idx >= problem.spots.size()) {
      throw std::out_of_range("MetaheuristicEngine::run: spot index out of range");
    }
    SpotState st;
    st.spot = &problem.spots[idx];
    st.s.bind(arena, 2 * pop);  // head-room for Include's elitist merge
    st.scom.bind(arena, pop);
    states.push_back(st);
  }

  // Shared sorting scratch (argsort indices + scatter destination) and
  // the improve-phase slots.
  std::span<std::uint32_t> sort_idx = arena.make_span<std::uint32_t>(2 * pop);
  PopulationSoA sort_tmp;
  sort_tmp.bind(arena, 2 * pop);
  const std::size_t improve_slots = states.size() * improve_count;
  std::span<Individual> proposals = arena.make_span<Individual>(improve_slots);
  std::span<Individual> slot_best;
  TabuRings tabu;
  if (params_.accept == AcceptRule::kTabu && improve_slots > 0) {
    slot_best = arena.make_span<Individual>(improve_slots);
    tabu.bind(arena, improve_slots,
              static_cast<std::size_t>(std::max(1, params_.tabu_tenure)));
  }

  // Evaluation batches never exceed one pose per individual per spot.
  BatchCollector batch(eval, result, obs_, arena, states.size() * pop);
  result.batch_sizes.reserve(
      1 + static_cast<std::size_t>(params_.generations) *
              (1 + static_cast<std::size_t>(std::max(0, params_.improve_steps))));

  // ---- Initialize(S) ----
  {
    PhaseSpan span(obs_, eval, "initialize");
    for (SpotState& st : states) {
      st.s.set_size(pop);
      for (std::size_t i = 0; i < pop; ++i) {
        auto rng = util::stream(problem.seed, st.spot->id, kTagInit, i);
        const scoring::Pose pose = initial_pose(*st.spot, problem.ligand_radius, rng);
        st.s.set_pose(i, pose);
        batch.add(pose, st.s.score_slot(i));
      }
    }
    batch.flush();
  }
  for (SpotState& st : states) st.s.sort_by_score(sort_idx, sort_tmp);

  // ---- while no End(S) ----
  // metadock-lint: hot-begin(generation-loop) — MDL007 forbids heap
  // growth in here; all state lives in the run arena above.
  double temperature = params_.annealing_t0;
  for (int gen = 0; gen < params_.generations; ++gen) {
    PhaseSpan gen_span(obs_, eval, "generation", static_cast<double>(gen));
    if (params_.population_based) {
      // ---- Select(S, Ssel) ----  S is kept sorted; the mating pool is its
      // best select_fraction prefix.
      const auto pool = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(params_.select_fraction *
                                                  static_cast<double>(pop))));

      // ---- Combine(Ssel, Scom) ----
      for (SpotState& st : states) {
        st.scom.set_size(pop);
        for (std::size_t i = 0; i < pop; ++i) {
          auto rng = util::stream(problem.seed, st.spot->id, kTagCombine, gen, i);
          const scoring::Pose pa = st.s.pose(pick_parent(pool, rng));
          const scoring::Pose pb = st.s.pose(pick_parent(pool, rng));
          const scoring::Pose child = combine_poses(pa, pb, params_.combine_mutation_t,
                                                    params_.combine_mutation_r, rng);
          st.scom.set_pose(i, child);
          batch.add(child, st.scom.score_slot(i));
        }
      }
      batch.flush();

      // The improved subset is the best improve_count of Scom (its sorted
      // prefix — slot k improves scom[k]).
      for (SpotState& st : states) st.scom.sort_by_score(sort_idx, sort_tmp);
    } else {
      // Neighbourhood metaheuristic (M4): Improve works on S directly.
      for (SpotState& st : states) st.scom.copy_from(st.s);
    }

    // ---- Improve(Scom) ---- hill climbing / annealing / tabu search on
    // the chosen set.
    if (!states.empty() && improve_count > 0 && params_.improve_steps > 0) {
      // Tabu memory per improving slot: positions we recently left (the
      // short-term memory), plus the best individual visited so far — tabu
      // search walks to the best *non-tabu* neighbour even when it is
      // worse, so the incumbent best is tracked separately and restored
      // after the walk.  Reset every generation; keyed per spot, so subset
      // invariance is preserved.
      if (params_.accept == AcceptRule::kTabu) {
        tabu.reset();
        for (std::size_t si = 0; si < states.size(); ++si) {
          for (std::size_t k = 0; k < improve_count; ++k) {
            slot_best[si * improve_count + k] = states[si].scom.individual(k);
          }
        }
      }
      for (int step = 0; step < params_.improve_steps; ++step) {
        for (std::size_t si = 0; si < states.size(); ++si) {
          SpotState& st = states[si];
          for (std::size_t k = 0; k < improve_count; ++k) {
            auto rng =
                util::stream(problem.seed, st.spot->id, kTagImprove, gen, step, k);
            Individual& prop = proposals[si * improve_count + k];
            prop.pose = perturb_pose(st.scom.pose(k), params_.ls_translate,
                                     params_.ls_rotate, rng);
            batch.add(prop.pose, &prop.score);
          }
        }
        batch.flush();
        for (std::size_t si = 0; si < states.size(); ++si) {
          SpotState& st = states[si];
          for (std::size_t k = 0; k < improve_count; ++k) {
            const std::size_t slot = si * improve_count + k;
            const double cur_score = st.scom.score(k);
            const Individual& prop = proposals[slot];
            bool accept = prop.score < cur_score;
            if (params_.accept == AcceptRule::kAnnealing && !accept) {
              auto rng =
                  util::stream(problem.seed, st.spot->id, kTagAccept, gen, step, k);
              const double d = prop.score - cur_score;
              accept = rng.uniform() < std::exp(-d / std::max(temperature, 1e-9));
            } else if (params_.accept == AcceptRule::kTabu) {
              // Walk to the neighbour even when worse, unless it re-enters
              // recently visited territory; aspiration overrides tabu when
              // the move beats the slot's incumbent best.
              const float r2 = params_.tabu_radius * params_.tabu_radius;
              const bool is_tabu = tabu.contains_within(slot, prop.pose.position, r2);
              accept = !is_tabu || prop.score < slot_best[slot].score;
            }
            if (accept) {
              if (params_.accept == AcceptRule::kTabu) {
                tabu.push(slot, st.scom.pose(k).position);
                if (prop.score < slot_best[slot].score) slot_best[slot] = prop;
              }
              st.scom.set_individual(k, prop);
            }
          }
        }
        temperature *= params_.annealing_cooling;
      }
      // Tabu walks may end somewhere worse than they passed through;
      // restore each slot's incumbent best before Include.
      if (params_.accept == AcceptRule::kTabu) {
        for (std::size_t si = 0; si < states.size(); ++si) {
          for (std::size_t k = 0; k < improve_count; ++k) {
            const Individual& best = slot_best[si * improve_count + k];
            if (best.score < states[si].scom.score(k)) {
              states[si].scom.set_individual(k, best);
            }
          }
        }
      }
    }

    // ---- Include(Scom, S) ---- elitist merge, keep the best |S|.
    for (SpotState& st : states) {
      if (params_.population_based) {
        st.s.merge_keep_best(st.scom, pop, sort_idx, sort_tmp);
      } else {
        // "M4 applies only one step, and so there is no selection of
        // elements after improving": the improved set replaces S.
        st.s.copy_from(st.scom);
        st.s.sort_by_score(sort_idx, sort_tmp);
      }
      st.scom.set_size(0);
    }
  }
  // metadock-lint: hot-end

  // Collect per-spot winners and the global best.
  result.spot_results.reserve(states.size());
  for (const SpotState& st : states) {
    SpotResult sr;
    sr.spot_id = st.spot->id;
    sr.best = st.s.individual(0);
    if (result.best_spot_id < 0 || better(sr.best, result.best)) {
      result.best = sr.best;
      result.best_spot_id = sr.spot_id;
    }
    result.spot_results.push_back(sr);
  }
  return result;
}

}  // namespace metadock::meta
