// Structure-of-arrays population storage for the metaheuristic engine.
//
// The AoS `std::vector<Individual>` population forced two costs on the
// generation loop: an allocation (plus copies) every time a phase built
// or merged a set, and a 7-float gather whenever poses were staged for
// the SIMD engine.  PopulationSoA keeps each gene column (position x/y/z,
// quaternion w/x/y/z) and the score contiguous, carved once per run out
// of an arena:
//
//     px  [ pose 0 | pose 1 | ... | pose n-1 ]
//     py  [  ...                             ]
//     pz  [  ...                             ]
//     qw  [  ...                             ]   7 float columns
//     qx  [  ...                             ]
//     qy  [  ...                             ]
//     qz  [  ...                             ]
//     sc  [ double scores                    ]
//
// Select (sort + prefix), Combine (column writes) and Include (merge of
// two sorted sets) all operate on these columns; sorting is an argsort
// over the score column followed by one scatter pass per column, so
// Individuals are never shuffled as 60-byte structs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

#include "meta/individual.h"
#include "scoring/pose.h"
#include "scoring/pose_block.h"
#include "util/pool.h"

namespace metadock::meta {

class PopulationSoA {
 public:
  PopulationSoA() = default;

  /// Carves columns for up to `capacity` individuals out of `arena`.
  /// Like every arena client, the storage lives until the arena rewinds
  /// past it; the engine binds once per run.
  void bind(util::Arena& arena, std::size_t capacity) {
    poses_.bind(arena, capacity);
    score_ = arena.make_span<double>(capacity);
    size_ = 0;
  }

  /// Sets the live count (≤ capacity).  Column contents are untouched:
  /// new slots keep whatever was last written there, and callers
  /// initialize them before reading — the same contract resize() on a
  /// vector of Individuals had in practice.
  void set_size(std::size_t n) {
    if (n > capacity()) throw std::length_error("PopulationSoA: capacity exceeded");
    size_ = n;
    poses_.set_size(n);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return score_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] scoring::Pose pose(std::size_t i) const { return poses_.get(i); }
  void set_pose(std::size_t i, const scoring::Pose& p) { poses_.set(i, p); }

  [[nodiscard]] double score(std::size_t i) const { return score_[i]; }
  double* score_slot(std::size_t i) { return &score_[i]; }
  void set_score(std::size_t i, double s) { score_[i] = s; }

  [[nodiscard]] Individual individual(std::size_t i) const { return {pose(i), score(i)}; }
  void set_individual(std::size_t i, const Individual& ind) {
    set_pose(i, ind.pose);
    score_[i] = ind.score;
  }

  /// Columnar view over the first `size()` poses, ready for
  /// Evaluator::evaluate_soa / BatchScoringEngine::score_batch.
  [[nodiscard]] scoring::PoseSoAView pose_view() const {
    scoring::PoseSoAView v = poses_.view();
    v.n = size_;
    return v;
  }

  /// Copies individual `src_i` of `src` into our slot `dst_i`.
  void assign_from(const PopulationSoA& src, std::size_t src_i, std::size_t dst_i) {
    set_pose(dst_i, src.pose(src_i));
    score_[dst_i] = src.score_[src_i];
  }

  /// Whole-population copy (sizes must fit; used by the M4 path).
  void copy_from(const PopulationSoA& src) {
    set_size(src.size_);
    for (std::size_t i = 0; i < src.size_; ++i) assign_from(src, i, i);
  }

  /// Sorts by ascending score.  `idx` and `tmp` are caller-provided
  /// scratch (capacity ≥ size()) so sorting allocates nothing: argsort
  /// the score column, scatter every column through `tmp`, copy back.
  /// std::sort on 4-byte indices moves an order of magnitude less memory
  /// than sorting whole Individuals, and the scatter is unit-stride.
  void sort_by_score(std::span<std::uint32_t> idx, PopulationSoA& tmp) {
    if (idx.size() < size_ || tmp.capacity() < size_) {
      throw std::length_error("PopulationSoA::sort_by_score: scratch too small");
    }
    for (std::uint32_t i = 0; i < size_; ++i) idx[i] = i;
    const double* sc = score_.data();
    std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(size_),
              [sc](std::uint32_t a, std::uint32_t b) { return sc[a] < sc[b]; });
    tmp.set_size(size_);
    for (std::size_t i = 0; i < size_; ++i) tmp.assign_from(*this, idx[i], i);
    copy_from(tmp);
  }

  /// Elitist Include: appends all of `other`, sorts, truncates to `keep`.
  void merge_keep_best(const PopulationSoA& other, std::size_t keep,
                       std::span<std::uint32_t> idx, PopulationSoA& tmp) {
    const std::size_t total = size_ + other.size_;
    set_size(total);
    for (std::size_t i = 0; i < other.size_; ++i) assign_from(other, i, total - other.size_ + i);
    sort_by_score(idx, tmp);
    set_size(std::min(keep, total));
  }

 private:
  scoring::PoseSoA poses_;
  std::span<double> score_{};
  std::size_t size_ = 0;
};

}  // namespace metadock::meta
