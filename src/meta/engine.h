// MetaheuristicEngine — the paper's Algorithm 1 driver.
//
//   Initialize(S)
//   while no End(S):  Select(S,Ssel); Combine(Ssel,Scom); Improve(Scom);
//                     Include(Scom,S)
//
// The engine runs the template for *many spots at once*, in lockstep: every
// phase gathers the conformations that need scoring across all spots into
// one batch for the Evaluator — exactly the batches the paper ships to GPUs
// (one conformation = one warp).  Two properties matter for the
// heterogeneous scheduler and are covered by tests:
//   * per-spot determinism: a spot's trajectory depends only on
//     (seed, spot id), never on which other spots run alongside it or on
//     which device evaluates it — so splitting spots across devices cannot
//     change the science; and
//   * a fixed batch schedule: the sizes of evaluation batches are an
//     analytic function of the parameters (see trace.h), which lets the
//     platform simulator replay runs at full paper scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "meta/evaluator.h"
#include "meta/individual.h"
#include "meta/params.h"
#include "mol/molecule.h"
#include "obs/observer.h"
#include "surface/spots.h"

namespace metadock::meta {

struct DockingProblem {
  const mol::Molecule* receptor = nullptr;
  const mol::Molecule* ligand = nullptr;
  std::vector<surface::Spot> spots;
  std::uint64_t seed = 42;
  /// Rigid-ligand radius (for clash-free initialization); computed by
  /// make_problem().
  float ligand_radius = 2.0f;
};

/// Builds a problem: detects surface spots and precomputes ligand geometry.
[[nodiscard]] DockingProblem make_problem(const mol::Molecule& receptor,
                                          const mol::Molecule& ligand, std::uint64_t seed = 42,
                                          const surface::SpotParams& spot_params = {});

struct SpotResult {
  int spot_id = -1;
  Individual best;
};

struct RunResult {
  std::vector<SpotResult> spot_results;
  /// Best over all spots run ("the final solution is chosen from all
  /// independent executions").
  Individual best;
  int best_spot_id = -1;
  std::uint64_t evaluations = 0;
  /// Evaluation batch sizes, in issue order (the workload trace).
  std::vector<std::size_t> batch_sizes;
};

class MetaheuristicEngine {
 public:
  /// `observer` (nullable = off) records one span per metaheuristic
  /// iteration on the host track, timed by the evaluator's virtual clock,
  /// plus batch-size histograms ("meta.batch_size").
  explicit MetaheuristicEngine(MetaheuristicParams params, obs::Observer* observer = nullptr);

  [[nodiscard]] const MetaheuristicParams& params() const noexcept { return params_; }

  /// Runs the template over problem.spots[spot_indices] (all spots when
  /// empty).  Scoring goes through `eval`; everything else is host work.
  [[nodiscard]] RunResult run(const DockingProblem& problem, Evaluator& eval,
                              std::span<const std::size_t> spot_indices = {}) const;

 private:
  MetaheuristicParams params_;
  obs::Observer* obs_ = nullptr;
};

}  // namespace metadock::meta
