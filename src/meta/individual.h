// Candidate solutions ("individuals"/"conformations") and per-spot search
// state for the metaheuristic template.
#pragma once

#include <limits>
#include <vector>

#include "scoring/pose.h"

namespace metadock::meta {

struct Individual {
  scoring::Pose pose;
  double score = std::numeric_limits<double>::infinity();
};

/// Sorts better (lower-energy) individuals first.
inline bool better(const Individual& a, const Individual& b) { return a.score < b.score; }

using Population = std::vector<Individual>;

}  // namespace metadock::meta
