// Analytic workload trace of a metaheuristic run.
//
// The engine's evaluation-batch schedule is a pure function of its
// parameters: per spot, one initialization batch, then per generation one
// combine batch (population-based only) and improve_steps local-search
// batches.  The platform simulator replays this schedule against device
// models to time a full paper-scale run without re-doing the numerics;
// tests assert the analytic schedule matches what the engine actually
// issued.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "meta/params.h"

namespace metadock::meta {

struct WorkloadTrace {
  /// Evaluation batch sizes for ONE spot, in issue order.  A run over k
  /// spots issues the same sequence with every entry multiplied by k.
  std::vector<std::size_t> per_spot_batches;

  [[nodiscard]] std::uint64_t evals_per_spot() const {
    return std::accumulate(per_spot_batches.begin(), per_spot_batches.end(),
                           std::uint64_t{0});
  }

  /// Derives the schedule from the parameters.
  static WorkloadTrace from_params(const MetaheuristicParams& p) {
    WorkloadTrace t;
    const auto pop = static_cast<std::size_t>(p.population_per_spot);
    const auto improve_count = static_cast<std::size_t>(
        std::lround(p.improve_fraction * static_cast<double>(pop)));
    t.per_spot_batches.push_back(pop);
    for (int g = 0; g < p.generations; ++g) {
      if (p.population_based) t.per_spot_batches.push_back(pop);
      if (improve_count > 0) {
        for (int s = 0; s < p.improve_steps; ++s) t.per_spot_batches.push_back(improve_count);
      }
    }
    return t;
  }
};

}  // namespace metadock::meta
