// Parameterized metaheuristic configuration (the paper's Algorithm 1).
//
// "Several authors agree that many metaheuristics ... share six basic
// functions: Initialize, End condition, Select, Combine, Improve and
// Include."  MetaDock implements that template once, in
// meta::MetaheuristicEngine; a MetaheuristicParams value instantiates it
// into a concrete metaheuristic.  The four presets below are the paper's
// Table 4 rows, with generation/local-search depths chosen so the relative
// evaluation counts match the relative execution times of Tables 6-9
// (M2 ~ 1.62x M1, M3 ~ 0.5x M1, M4 ~ 50x M1).
#pragma once

#include <string>
#include <vector>

namespace metadock::meta {

/// Move-acceptance rule used by the Improve (local search) phase.
enum class AcceptRule {
  kGreedy,     // hill climbing: accept strictly better neighbours
  kAnnealing,  // simulated annealing: accept worse moves with exp(-dE/T)
  kTabu,       // tabu search: recently visited positions are forbidden
               // unless the move beats the slot's best (aspiration)
};

struct MetaheuristicParams {
  std::string name = "M1";

  /// Candidate solutions maintained per receptor spot (Table 4 column
  /// "Initial population" is population_per_spot * spots).
  int population_per_spot = 64;

  /// End condition: number of template iterations.  A neighbourhood
  /// metaheuristic (M4) "applies only one step".
  int generations = 100;

  /// Fraction of S selected into Ssel as the mating pool.
  double select_fraction = 1.0;

  /// Fraction of Scom improved by local search (Table 4 last column).
  double improve_fraction = 0.0;

  /// Local-search steps applied to each improved element.
  int improve_steps = 0;

  /// True for population-based metaheuristics (M1-M3): Select/Combine/
  /// Include run every generation.  False for neighbourhood metaheuristics
  /// (M4): the initial set is only improved, no recombination.
  bool population_based = true;

  // --- operator scales (Angstrom / radian) ---
  float init_radius_scale = 1.0f;   // multiplies the spot search radius
  float combine_mutation_t = 0.75f; // translation sigma after crossover
  float combine_mutation_r = 0.35f; // rotation sigma after crossover
  float ls_translate = 0.30f;       // local-search translation sigma
  float ls_rotate = 0.15f;          // local-search rotation sigma

  AcceptRule accept = AcceptRule::kGreedy;
  /// Initial temperature for kAnnealing (kcal/mol).
  double annealing_t0 = 5.0;
  /// Per-step multiplicative cooling for kAnnealing.
  double annealing_cooling = 0.95;
  /// kTabu: how many recently visited positions stay forbidden.
  int tabu_tenure = 5;
  /// kTabu: a move landing within this distance (Angstrom) of a remembered
  /// position is tabu.
  float tabu_radius = 0.5f;

  /// Scales generations (and M4's improve_steps) down for fast runs; the
  /// virtual-time harness extrapolates back (see vs::BenchScale).
  [[nodiscard]] MetaheuristicParams scaled(double factor) const;

  /// Scoring evaluations one spot performs under this configuration
  /// (initialization + per-generation combine + improve).
  [[nodiscard]] double expected_evals_per_spot() const;
};

/// Table 4 presets.
[[nodiscard]] MetaheuristicParams m1_genetic();        // GA, no local search
[[nodiscard]] MetaheuristicParams m2_scatter_full();   // scatter-search-like, 100% improved
[[nodiscard]] MetaheuristicParams m3_scatter_light();  // 20% improved
[[nodiscard]] MetaheuristicParams m4_local_search();   // multi-start local search

/// All four, in paper order.
[[nodiscard]] std::vector<MetaheuristicParams> table4_presets();

/// Extension presets (beyond the paper's four, exercising the same
/// template with the alternative acceptance rules the paper's background
/// section lists): simulated annealing and tabu search.
[[nodiscard]] MetaheuristicParams sa_annealing();
[[nodiscard]] MetaheuristicParams tabu_search();

}  // namespace metadock::meta
