// Evaluator decorator that consults a scoring::ScoreCache before
// forwarding to the real back-end.
//
// The decorator partitions each batch into hits and misses, forwards
// only the misses (in their original relative order, as one batch — the
// inner evaluator's determinism contract makes the scores independent of
// that re-batching), then inserts the fresh scores.  Because the cache
// keys on exact pose bits and stores the exact double the inner
// evaluator produced, wrapping an evaluator in this class never changes
// any score — the cache_properties suite pins that down across M1–M4.
//
// Threading: a CachedEvaluator instance is single-threaded, like every
// Evaluator (each engine run drives its evaluator from one thread).  The
// *cache* is the shared, concurrent object: many CachedEvaluators on
// different threads may point at one ScoreCache (that is the whole point
// for screening workloads — spots/ligands revisit each other's work).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "meta/evaluator.h"
#include "obs/observer.h"
#include "scoring/pose.h"
#include "scoring/pose_block.h"
#include "scoring/score_cache.h"

namespace metadock::meta {

class CachedEvaluator final : public Evaluator {
 public:
  /// Both `inner` and `cache` must outlive the decorator.  `observer`
  /// (nullable = off) receives "meta.score_cache.hits" / ".misses"
  /// counters.
  CachedEvaluator(Evaluator& inner, scoring::ScoreCache& cache,
                  obs::Observer* observer = nullptr)
      : inner_(inner), cache_(cache), obs_(observer) {}

  void evaluate(std::span<const scoring::Pose> poses, std::span<double> out) override {
    evaluate_impl([&poses](std::size_t i) { return poses[i]; }, poses.size(), out);
  }

  void evaluate_soa(const scoring::PoseSoAView& poses, std::span<double> out) override {
    evaluate_impl([&poses](std::size_t i) { return poses.get(i); }, poses.size(), out);
  }

  [[nodiscard]] double virtual_seconds() const override { return inner_.virtual_seconds(); }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  template <typename PoseAt>
  void evaluate_impl(PoseAt&& pose_at, std::size_t n, std::span<double> out) {
    // Miss staging grows to the largest batch once and is then reused;
    // steady-state batches allocate nothing.
    miss_poses_.clear();
    miss_index_.clear();
    std::uint64_t batch_hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const scoring::Pose pose = pose_at(i);
      if (cache_.lookup(pose, &out[i])) {
        ++batch_hits;
      } else {
        miss_poses_.push_back(pose);
        miss_index_.push_back(i);
      }
    }
    if (!miss_poses_.empty()) {
      miss_scores_.resize(miss_poses_.size());
      inner_.evaluate(miss_poses_, miss_scores_);
      for (std::size_t m = 0; m < miss_index_.size(); ++m) {
        out[miss_index_[m]] = miss_scores_[m];
        cache_.insert(miss_poses_[m], miss_scores_[m]);
      }
    }
    hits_ += batch_hits;
    misses_ += miss_poses_.size();
    if (obs_ != nullptr) {
      obs_->metrics.counter("meta.score_cache.hits").add(static_cast<double>(batch_hits));
      obs_->metrics.counter("meta.score_cache.misses")
          .add(static_cast<double>(miss_poses_.size()));
    }
  }

  Evaluator& inner_;
  scoring::ScoreCache& cache_;
  obs::Observer* obs_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<scoring::Pose> miss_poses_;
  std::vector<std::size_t> miss_index_;
  std::vector<double> miss_scores_;
};

}  // namespace metadock::meta
