#include "meta/params.h"

#include <algorithm>
#include <cmath>

namespace metadock::meta {

MetaheuristicParams MetaheuristicParams::scaled(double factor) const {
  MetaheuristicParams p = *this;
  if (factor >= 1.0) return p;
  if (p.generations > 1) {
    p.generations = std::max(1, static_cast<int>(std::lround(p.generations * factor)));
  } else {
    // One-pass metaheuristics (M4) carry their work in the LS depth.
    p.improve_steps = std::max(1, static_cast<int>(std::lround(p.improve_steps * factor)));
  }
  return p;
}

double MetaheuristicParams::expected_evals_per_spot() const {
  const double pop = population_per_spot;
  // The engine improves round(improve_fraction * pop) elements per step.
  const auto improved = static_cast<double>(std::lround(improve_fraction * pop));
  if (!population_based) {
    // Initialize + one Improve pass over the whole set.
    return pop + improved * improve_steps;
  }
  // Initialize, then per generation: Combine children (|Scom| = |S|) plus
  // local search on the improved subset of Scom.
  return pop + generations * (pop + improved * improve_steps);
}

MetaheuristicParams m1_genetic() {
  MetaheuristicParams p;
  p.name = "M1";
  p.population_per_spot = 64;
  p.generations = 800;
  p.select_fraction = 1.0;
  p.improve_fraction = 0.0;
  p.improve_steps = 0;
  return p;
}

MetaheuristicParams m2_scatter_full() {
  MetaheuristicParams p;
  p.name = "M2";
  p.population_per_spot = 64;
  p.generations = 216;
  p.select_fraction = 1.0;
  p.improve_fraction = 1.0;
  p.improve_steps = 5;
  return p;
}

MetaheuristicParams m3_scatter_light() {
  MetaheuristicParams p;
  p.name = "M3";
  p.population_per_spot = 64;
  p.generations = 200;
  p.select_fraction = 1.0;
  p.improve_fraction = 0.2;
  p.improve_steps = 5;
  return p;
}

MetaheuristicParams m4_local_search() {
  MetaheuristicParams p;
  p.name = "M4";
  p.population_per_spot = 1024;
  p.generations = 1;
  p.population_based = false;
  p.improve_fraction = 1.0;
  p.improve_steps = 2496;
  return p;
}

std::vector<MetaheuristicParams> table4_presets() {
  return {m1_genetic(), m2_scatter_full(), m3_scatter_light(), m4_local_search()};
}

MetaheuristicParams sa_annealing() {
  MetaheuristicParams p = m2_scatter_full();
  p.name = "SA";
  p.accept = AcceptRule::kAnnealing;
  return p;
}

MetaheuristicParams tabu_search() {
  MetaheuristicParams p = m2_scatter_full();
  p.name = "TS";
  p.accept = AcceptRule::kTabu;
  return p;
}

}  // namespace metadock::meta
