// Ligand library generation.
//
// Virtual screening runs a whole library of small molecules against one
// receptor ("many databases comprise hundreds of thousands of ligands").
// This generator produces a deterministic library of varied synthetic
// ligands for the screening-campaign example and the multi-node bench.
#pragma once

#include <cstdint>
#include <vector>

#include "mol/molecule.h"

namespace metadock::mol {

struct LibraryParams {
  std::size_t count = 16;
  std::size_t min_atoms = 20;
  std::size_t max_atoms = 60;
  std::uint64_t seed = 7;
};

/// Generates `count` ligands with atom counts uniform in
/// [min_atoms, max_atoms]; ligand i is deterministic in (seed, i).
[[nodiscard]] std::vector<Molecule> make_ligand_library(const LibraryParams& params);

}  // namespace metadock::mol
