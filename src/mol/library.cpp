#include "mol/library.h"

#include <stdexcept>
#include <string>

#include "mol/synth.h"
#include "util/rng.h"

namespace metadock::mol {

std::vector<Molecule> make_ligand_library(const LibraryParams& params) {
  if (params.min_atoms == 0 || params.min_atoms > params.max_atoms) {
    throw std::invalid_argument("make_ligand_library: need 0 < min_atoms <= max_atoms");
  }
  std::vector<Molecule> out;
  out.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    auto rng = util::stream(params.seed, 0x11Bu, i);
    LigandParams lp;
    lp.atom_count = params.min_atoms +
                    static_cast<std::size_t>(rng.below(params.max_atoms - params.min_atoms + 1));
    lp.seed = util::hash_combine(params.seed, i);
    Molecule m = make_ligand(lp);
    m.set_name("lig-" + std::to_string(i));
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace metadock::mol
