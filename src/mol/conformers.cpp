#include "mol/conformers.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/quat.h"
#include "util/rng.h"

namespace metadock::mol {

void rotate_torsion(Molecule& mol, const std::vector<Bond>& bonds, const Bond& bond,
                    float angle) {
  const geom::Vec3 pivot = mol.position(bond.a);
  const geom::Vec3 axis = mol.position(bond.b) - pivot;
  if (axis.norm2() < 1e-8f) {
    throw std::invalid_argument("rotate_torsion: degenerate bond axis");
  }
  const geom::Quat rot = geom::Quat::axis_angle(axis, angle);
  for (std::uint32_t i : downstream_atoms(mol, bonds, bond)) {
    if (i == bond.b) continue;  // the axis atom stays put
    mol.set_position(i, rot.rotate(mol.position(i) - pivot) + pivot);
  }
}

namespace {

/// Bond-topology distance up to 3 (1-2, 1-3, 1-4 relations are the pairs a
/// torsion legitimately brings close).
std::vector<std::vector<bool>> within_three_bonds(
    const std::vector<std::vector<std::uint32_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<std::vector<bool>> close_map(n, std::vector<bool>(n, false));
  for (std::size_t start = 0; start < n; ++start) {
    std::vector<std::pair<std::uint32_t, int>> queue{{static_cast<std::uint32_t>(start), 0}};
    std::vector<bool> seen(n, false);
    seen[start] = true;
    for (std::size_t q = 0; q < queue.size(); ++q) {
      const auto [u, depth] = queue[q];
      close_map[start][u] = true;
      if (depth == 3) continue;
      for (std::uint32_t v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back({v, depth + 1});
        }
      }
    }
  }
  return close_map;
}

}  // namespace

std::size_t count_clashes(const Molecule& mol, const std::vector<Bond>& bonds,
                          float clash_vdw_fraction) {
  const auto adj = adjacency(mol, bonds);
  const auto related = within_three_bonds(adj);
  std::size_t clashes = 0;
  for (std::size_t i = 0; i < mol.size(); ++i) {
    for (std::size_t j = i + 1; j < mol.size(); ++j) {
      if (related[i][j]) continue;
      const float limit =
          clash_vdw_fraction * (vdw_radius(mol.element(i)) + vdw_radius(mol.element(j)));
      if (mol.position(i).distance2(mol.position(j)) < limit * limit) ++clashes;
    }
  }
  return clashes;
}

std::vector<Molecule> generate_conformers(const Molecule& ligand,
                                          const ConformerParams& params) {
  if (ligand.empty()) throw std::invalid_argument("generate_conformers: empty ligand");
  if (params.count == 0) return {};

  Molecule base = ligand;
  base.center_at_origin();
  const std::vector<Bond> bonds = infer_bonds(base);
  const std::vector<Bond> torsions = rotatable_bonds(base, bonds);
  const std::size_t base_clashes = count_clashes(base, bonds, params.clash_vdw_fraction);

  std::vector<Molecule> out;
  out.reserve(params.count);
  out.push_back(base);
  if (torsions.empty()) {
    while (out.size() < params.count) out.push_back(base);
    return out;
  }

  constexpr float kTwoPi = 2.0f * std::numbers::pi_v<float>;
  for (std::size_t c = 1; c < params.count; ++c) {
    auto rng = util::stream(params.seed, 0xC0F0u, c);
    Molecule accepted = base;  // fall back to the input if all attempts clash
    for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
      Molecule trial = base;
      const int n_twists = std::min<int>(params.torsions_per_conformer,
                                         static_cast<int>(torsions.size()));
      for (int t = 0; t < n_twists; ++t) {
        const Bond& bond = torsions[rng.below(torsions.size())];
        rotate_torsion(trial, bonds, bond, kTwoPi * rng.uniformf());
      }
      // Accept when the twist introduces no clashes beyond those already
      // present in the input geometry.
      if (count_clashes(trial, bonds, params.clash_vdw_fraction) <= base_clashes) {
        trial.center_at_origin();
        accepted = trial;
        break;
      }
    }
    out.push_back(accepted);
  }
  return out;
}

double rmsd(const Molecule& a, const Molecule& b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmsd: size mismatch");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a.position(i).distance2(b.position(i));
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace metadock::mol
