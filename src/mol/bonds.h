// Covalent-bond inference and molecular topology.
//
// Molecules in MetaDock are coordinate sets (PDB files and the synthetic
// generators carry no CONECT records), so bonds are inferred geometrically:
// two atoms are bonded when their distance is below the sum of their
// covalent radii plus a tolerance — the standard heuristic used by
// molecular viewers.  The topology feeds the torsional conformer generator
// (bonds.h -> conformers.h).
#pragma once

#include <cstdint>
#include <vector>

#include "mol/molecule.h"

namespace metadock::mol {

struct Bond {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Approximate single-bond covalent radius (Angstrom).
[[nodiscard]] constexpr float covalent_radius(Element e) {
  switch (e) {
    case Element::kH:
      return 0.31f;
    case Element::kC:
      return 0.76f;
    case Element::kN:
      return 0.71f;
    case Element::kO:
      return 0.66f;
    case Element::kS:
      return 1.05f;
    case Element::kP:
      return 1.07f;
    case Element::kF:
      return 0.57f;
    case Element::kCl:
      return 1.02f;
    case Element::kBr:
      return 1.20f;
    default:
      return 0.77f;
  }
}

/// Infers bonds by distance: |a-b| <= cov(a) + cov(b) + tolerance.
/// Deterministic, each pair reported once with a < b.
[[nodiscard]] std::vector<Bond> infer_bonds(const Molecule& mol, float tolerance = 0.45f);

/// Adjacency list view of a bond set.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> adjacency(const Molecule& mol,
                                                                const std::vector<Bond>& bonds);

/// A bond is rotatable when it joins two non-terminal heavy atoms and is
/// not part of a ring (rotating it changes the conformation without
/// breaking geometry).
[[nodiscard]] std::vector<Bond> rotatable_bonds(const Molecule& mol,
                                                const std::vector<Bond>& bonds);

/// Atom indices on the `b` side of bond (a, b) when the bond is cut —
/// the subtree a torsion rotation moves.  Throws when (a, b) lies on a
/// ring (both sides connect).
[[nodiscard]] std::vector<std::uint32_t> downstream_atoms(const Molecule& mol,
                                                          const std::vector<Bond>& bonds,
                                                          const Bond& bond);

}  // namespace metadock::mol
