#include "mol/bonds.h"

#include <algorithm>
#include <stdexcept>

#include "geom/cell_grid.h"

namespace metadock::mol {

std::vector<Bond> infer_bonds(const Molecule& mol, float tolerance) {
  std::vector<Bond> bonds;
  if (mol.size() < 2) return bonds;
  const std::vector<geom::Vec3> pts = mol.positions();
  // Largest possible bond length bounds the neighbour search.
  float max_reach = 0.0f;
  for (std::size_t i = 0; i < mol.size(); ++i) {
    max_reach = std::max(max_reach, covalent_radius(mol.element(i)));
  }
  const float search = 2.0f * max_reach + tolerance;
  const geom::CellGrid grid = geom::CellGrid::over_points(pts, search);
  for (std::uint32_t i = 0; i < mol.size(); ++i) {
    grid.for_each_within(pts[i], search, [&](std::uint32_t j, const geom::Vec3& pj) {
      if (j <= i) return;  // each pair once
      const float limit = covalent_radius(mol.element(i)) +
                          covalent_radius(mol.element(j)) + tolerance;
      if (pts[i].distance2(pj) <= limit * limit) bonds.push_back({i, j});
    });
  }
  std::sort(bonds.begin(), bonds.end(), [](const Bond& x, const Bond& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return bonds;
}

std::vector<std::vector<std::uint32_t>> adjacency(const Molecule& mol,
                                                  const std::vector<Bond>& bonds) {
  std::vector<std::vector<std::uint32_t>> adj(mol.size());
  for (const Bond& b : bonds) {
    adj[b.a].push_back(b.b);
    adj[b.b].push_back(b.a);
  }
  return adj;
}

namespace {

/// Reachability from `start` with the (a, b) edge removed.
std::vector<bool> reach_without_edge(const std::vector<std::vector<std::uint32_t>>& adj,
                                     std::uint32_t start, std::uint32_t a, std::uint32_t b) {
  std::vector<bool> seen(adj.size(), false);
  std::vector<std::uint32_t> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (std::uint32_t v : adj[u]) {
      if ((u == a && v == b) || (u == b && v == a)) continue;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

bool is_heavy(const Molecule& mol, std::uint32_t i) {
  return mol.element(i) != Element::kH;
}

}  // namespace

std::vector<Bond> rotatable_bonds(const Molecule& mol, const std::vector<Bond>& bonds) {
  const auto adj = adjacency(mol, bonds);
  auto heavy_degree = [&](std::uint32_t i) {
    int d = 0;
    for (std::uint32_t v : adj[i]) d += is_heavy(mol, v);
    return d;
  };
  std::vector<Bond> out;
  for (const Bond& b : bonds) {
    if (!is_heavy(mol, b.a) || !is_heavy(mol, b.b)) continue;
    // Terminal heavy atoms (only this one heavy neighbour) produce
    // no-op rotations (only hydrogens would spin).
    if (heavy_degree(b.a) < 2 || heavy_degree(b.b) < 2) continue;
    // Ring bonds cannot rotate: the far side is still reachable.
    const std::vector<bool> seen = reach_without_edge(adj, b.a, b.a, b.b);
    if (seen[b.b]) continue;
    out.push_back(b);
  }
  return out;
}

std::vector<std::uint32_t> downstream_atoms(const Molecule& mol,
                                            const std::vector<Bond>& bonds, const Bond& bond) {
  const auto adj = adjacency(mol, bonds);
  if (bond.a >= mol.size() || bond.b >= mol.size()) {
    throw std::out_of_range("downstream_atoms: bond indices out of range");
  }
  const std::vector<bool> from_b = reach_without_edge(adj, bond.b, bond.a, bond.b);
  if (from_b[bond.a]) {
    throw std::invalid_argument("downstream_atoms: bond lies on a ring");
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < mol.size(); ++i) {
    if (from_b[i]) out.push_back(i);
  }
  return out;
}

}  // namespace metadock::mol
