// Chemical elements and per-element force-field parameters.
//
// The paper's scoring function is a Lennard-Jones potential between every
// (receptor atom, ligand atom) pair; parameters here are AMBER-style
// (r_min/2 in Angstrom, epsilon in kcal/mol) with Lorentz-Berthelot
// combination handled in `scoring`.
#pragma once

#include <cstdint>
#include <string_view>

namespace metadock::mol {

enum class Element : std::uint8_t {
  kH = 0,
  kC,
  kN,
  kO,
  kS,
  kP,
  kF,
  kCl,
  kBr,
  kOther,
  kCount,
};

inline constexpr int kElementCount = static_cast<int>(Element::kCount);

/// Lennard-Jones parameters for one element.
struct LjParams {
  float rmin_half;  // Angstrom (r_min / 2)
  float epsilon;    // kcal/mol (well depth)
};

/// Per-element LJ parameters (AMBER ff-style generic values).
[[nodiscard]] constexpr LjParams lj_params(Element e) {
  switch (e) {
    case Element::kH:
      return {1.20f, 0.0157f};
    case Element::kC:
      return {1.908f, 0.086f};
    case Element::kN:
      return {1.824f, 0.17f};
    case Element::kO:
      return {1.661f, 0.21f};
    case Element::kS:
      return {2.00f, 0.25f};
    case Element::kP:
      return {2.10f, 0.20f};
    case Element::kF:
      return {1.75f, 0.061f};
    case Element::kCl:
      return {1.948f, 0.265f};
    case Element::kBr:
      return {2.22f, 0.32f};
    case Element::kOther:
    case Element::kCount:
      return {1.90f, 0.10f};
  }
  return {1.90f, 0.10f};
}

/// Van der Waals radius (Angstrom), used by the surface-exposure heuristic.
[[nodiscard]] constexpr float vdw_radius(Element e) {
  switch (e) {
    case Element::kH:
      return 1.20f;
    case Element::kC:
      return 1.70f;
    case Element::kN:
      return 1.55f;
    case Element::kO:
      return 1.52f;
    case Element::kS:
      return 1.80f;
    case Element::kP:
      return 1.80f;
    case Element::kF:
      return 1.47f;
    case Element::kCl:
      return 1.75f;
    case Element::kBr:
      return 1.85f;
    default:
      return 1.70f;
  }
}

/// PDB-style element symbol.
[[nodiscard]] constexpr std::string_view element_symbol(Element e) {
  switch (e) {
    case Element::kH:
      return "H";
    case Element::kC:
      return "C";
    case Element::kN:
      return "N";
    case Element::kO:
      return "O";
    case Element::kS:
      return "S";
    case Element::kP:
      return "P";
    case Element::kF:
      return "F";
    case Element::kCl:
      return "CL";
    case Element::kBr:
      return "BR";
    default:
      return "X";
  }
}

/// Parses a (case-insensitive, possibly padded) element symbol; unknown
/// symbols map to kOther.
[[nodiscard]] Element element_from_symbol(std::string_view symbol);

}  // namespace metadock::mol
