// Structure-of-arrays molecule representation.
//
// Scoring iterates over every (receptor, ligand) atom pair, so coordinates
// are stored as parallel float arrays: the hot loops stream x/y/z/type
// contiguously, which is also exactly the layout the (virtual) GPU kernels
// tile through shared memory.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/aabb.h"
#include "geom/transform.h"
#include "geom/vec3.h"
#include "mol/atom.h"

namespace metadock::mol {

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] bool empty() const noexcept { return x_.empty(); }

  void reserve(std::size_t n);
  void add_atom(Element e, const geom::Vec3& pos, float charge = 0.0f);

  [[nodiscard]] geom::Vec3 position(std::size_t i) const { return {x_[i], y_[i], z_[i]}; }
  void set_position(std::size_t i, const geom::Vec3& p) {
    x_[i] = p.x;
    y_[i] = p.y;
    z_[i] = p.z;
  }
  [[nodiscard]] Element element(std::size_t i) const { return elements_[i]; }
  [[nodiscard]] float charge(std::size_t i) const { return charges_[i]; }

  [[nodiscard]] std::span<const float> xs() const noexcept { return x_; }
  [[nodiscard]] std::span<const float> ys() const noexcept { return y_; }
  [[nodiscard]] std::span<const float> zs() const noexcept { return z_; }
  [[nodiscard]] std::span<const Element> elements() const noexcept { return elements_; }
  [[nodiscard]] std::span<const float> charges() const noexcept { return charges_; }

  /// All positions as a vector (copies; for grid building etc.).
  [[nodiscard]] std::vector<geom::Vec3> positions() const;

  [[nodiscard]] geom::Aabb bounds() const;
  [[nodiscard]] geom::Vec3 centroid() const;

  /// Maximum distance of any atom from the centroid (the rigid-ligand
  /// "radius" used for clash-free pose initialization).
  [[nodiscard]] float radius_about_centroid() const;

  void translate(const geom::Vec3& d);

  /// Applies a rigid transform to every atom.
  void transform(const geom::Transform& t);

  /// Translates so that the centroid lands at the origin.  Ligands are kept
  /// centered so a conformation's position/orientation act about the center.
  void center_at_origin();

  /// Total memory footprint of the coordinate+type payload, used by the
  /// device model for host<->device transfer costs.
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return size() * (3 * sizeof(float) + sizeof(float) + sizeof(Element));
  }

 private:
  std::string name_;
  std::vector<float> x_, y_, z_;
  std::vector<Element> elements_;
  std::vector<float> charges_;
};

}  // namespace metadock::mol
