// Torsional conformer generation — ensemble docking support.
//
// The paper docks rigid ligands ("we have tested a relatively simple
// variant of the algorithm") and cites flexible docking as the harder
// problem.  The standard way a rigid engine covers ligand flexibility is
// *ensemble docking*: enumerate low-clash torsional conformers of the
// ligand up front and screen each rigid conformer independently.  This
// module rotates random subsets of the ligand's rotatable bonds (from
// bonds.h) by random angles, rejects self-clashing results, and returns a
// deterministic conformer ensemble ready for vs::VirtualScreeningEngine.
#pragma once

#include <cstdint>
#include <vector>

#include "mol/bonds.h"
#include "mol/molecule.h"

namespace metadock::mol {

struct ConformerParams {
  /// Ensemble size, including the input conformation as conformer 0.
  std::size_t count = 8;
  /// How many rotatable bonds each conformer perturbs (capped by the
  /// number available).
  int torsions_per_conformer = 3;
  /// Two atoms separated by more than three bonds clash when their
  /// distance is below this fraction of the sum of their vdW radii.
  /// A trial conformer is accepted when it introduces no clashes beyond
  /// those already present in the input geometry.
  float clash_vdw_fraction = 0.55f;
  /// Attempts per accepted conformer before giving up.
  int max_attempts = 64;
  std::uint64_t seed = 13;
};

/// Number of clashing non-bonded (beyond 1-4) atom pairs under the vdW
/// fraction criterion.  Exposed for tests and diagnostics.
[[nodiscard]] std::size_t count_clashes(const Molecule& mol, const std::vector<Bond>& bonds,
                                        float clash_vdw_fraction = 0.55f);

/// Rotates the downstream side of `bond` by `angle` radians about the bond
/// axis, in place.
void rotate_torsion(Molecule& mol, const std::vector<Bond>& bonds, const Bond& bond,
                    float angle);

/// Generates a torsional ensemble.  Conformer 0 is always the (re-centered)
/// input.  Deterministic in the seed.  Molecules with no rotatable bonds
/// return `count` copies of the input (a rigid ligand has one conformer;
/// callers can detect this via rotatable_bonds()).
[[nodiscard]] std::vector<Molecule> generate_conformers(const Molecule& ligand,
                                                        const ConformerParams& params = {});

/// Root-mean-square deviation between two equal-size conformers (no
/// alignment — both are expected centered; used to check diversity).
[[nodiscard]] double rmsd(const Molecule& a, const Molecule& b);

}  // namespace metadock::mol
