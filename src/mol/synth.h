// Synthetic molecular structure generators.
//
// The paper docks against PDB entries 2BSM (receptor 3264 atoms, ligand 45)
// and 2BXG (receptor 8609 atoms, ligand 32).  Those files are not available
// offline, so we generate deterministic synthetic equivalents: globular
// receptors packed at protein-like atom density with a protein-like element
// mix, and chain-grown small-molecule ligands.  Scoring cost depends only on
// atom counts and spatial distribution, both of which are preserved, so the
// performance study is unaffected; the LJ energy landscape (clash wall,
// attractive well near the surface) is qualitatively the same.
#pragma once

#include <cstdint>

#include "mol/molecule.h"

namespace metadock::mol {

struct ReceptorParams {
  std::size_t atom_count = 3264;
  /// Protein interiors average roughly 0.1 atoms per cubic Angstrom
  /// (hydrogens included); the generator sizes its sphere from this.
  double density = 0.1;
  /// Minimum inter-atom spacing (Angstrom) enforced by rejection.
  double min_spacing = 1.7;
  std::uint64_t seed = 1;
};

struct LigandParams {
  std::size_t atom_count = 45;
  std::uint64_t seed = 2;
};

/// Generates a globular receptor: `atom_count` atoms packed inside a sphere
/// at protein density, protein-like element frequencies, small partial
/// charges.  Deterministic in the seed.  Centered at the origin.
[[nodiscard]] Molecule make_receptor(const ReceptorParams& params);

/// Generates a drug-like ligand: a self-avoiding heavy-atom chain/branch
/// skeleton with bond-length spacing, hydrogens attached last.  Centered at
/// the origin.  Deterministic in the seed.
[[nodiscard]] Molecule make_ligand(const LigandParams& params);

/// The benchmark datasets of the paper (Table 5).
struct Dataset {
  const char* pdb_id;
  std::size_t receptor_atoms;
  std::size_t ligand_atoms;
};

inline constexpr Dataset kDataset2BSM{"2BSM", 3264, 45};
inline constexpr Dataset kDataset2BXG{"2BXG", 8609, 32};

/// Builds the named dataset's receptor (seeded by pdb id).
[[nodiscard]] Molecule make_dataset_receptor(const Dataset& ds);

/// Builds the named dataset's ligand (seeded by pdb id).
[[nodiscard]] Molecule make_dataset_ligand(const Dataset& ds);

}  // namespace metadock::mol
