#include "mol/molecule.h"

namespace metadock::mol {

void Molecule::reserve(std::size_t n) {
  x_.reserve(n);
  y_.reserve(n);
  z_.reserve(n);
  elements_.reserve(n);
  charges_.reserve(n);
}

void Molecule::add_atom(Element e, const geom::Vec3& pos, float charge) {
  x_.push_back(pos.x);
  y_.push_back(pos.y);
  z_.push_back(pos.z);
  elements_.push_back(e);
  charges_.push_back(charge);
}

std::vector<geom::Vec3> Molecule::positions() const {
  std::vector<geom::Vec3> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(position(i));
  return out;
}

geom::Aabb Molecule::bounds() const {
  geom::Aabb box;
  for (std::size_t i = 0; i < size(); ++i) box.extend(position(i));
  return box;
}

geom::Vec3 Molecule::centroid() const {
  if (empty()) return {};
  // Accumulate in double: centroids of ~10^4 float coordinates lose digits.
  double sx = 0.0, sy = 0.0, sz = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    sx += x_[i];
    sy += y_[i];
    sz += z_[i];
  }
  const auto n = static_cast<double>(size());
  return {static_cast<float>(sx / n), static_cast<float>(sy / n), static_cast<float>(sz / n)};
}

float Molecule::radius_about_centroid() const {
  const geom::Vec3 c = centroid();
  float r2 = 0.0f;
  for (std::size_t i = 0; i < size(); ++i) {
    r2 = std::max(r2, position(i).distance2(c));
  }
  return std::sqrt(r2);
}

void Molecule::translate(const geom::Vec3& d) {
  for (std::size_t i = 0; i < size(); ++i) {
    x_[i] += d.x;
    y_[i] += d.y;
    z_[i] += d.z;
  }
}

void Molecule::transform(const geom::Transform& t) {
  for (std::size_t i = 0; i < size(); ++i) {
    set_position(i, t.apply(position(i)));
  }
}

void Molecule::center_at_origin() { translate(-centroid()); }

}  // namespace metadock::mol
