#include "mol/synth.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string_view>

#include "geom/cell_grid.h"
#include "util/rng.h"

namespace metadock::mol {

namespace {

using geom::Vec3;
using util::Xoshiro256;

/// Protein element frequencies, hydrogens included (order matches the
/// cumulative sampling below).
struct ElementMix {
  Element element;
  double fraction;
};

constexpr ElementMix kProteinMix[] = {
    {Element::kH, 0.50}, {Element::kC, 0.32}, {Element::kN, 0.085},
    {Element::kO, 0.085}, {Element::kS, 0.01},
};

Element sample_protein_element(Xoshiro256& rng) {
  double u = rng.uniform();
  for (const auto& m : kProteinMix) {
    if (u < m.fraction) return m.element;
    u -= m.fraction;
  }
  return Element::kC;
}

/// Typical partial charge magnitude per element (very rough; enough to give
/// the optional Coulomb term a realistic scale).
float sample_charge(Element e, Xoshiro256& rng) {
  switch (e) {
    case Element::kO:
      return static_cast<float>(rng.uniform(-0.65, -0.35));
    case Element::kN:
      return static_cast<float>(rng.uniform(-0.55, -0.25));
    case Element::kH:
      return static_cast<float>(rng.uniform(0.05, 0.35));
    case Element::kS:
      return static_cast<float>(rng.uniform(-0.25, 0.05));
    default:
      return static_cast<float>(rng.uniform(-0.15, 0.15));
  }
}

Vec3 random_in_unit_sphere(Xoshiro256& rng) {
  for (;;) {
    const Vec3 p{static_cast<float>(rng.uniform(-1.0, 1.0)),
                 static_cast<float>(rng.uniform(-1.0, 1.0)),
                 static_cast<float>(rng.uniform(-1.0, 1.0))};
    if (p.norm2() <= 1.0f) return p;
  }
}

Vec3 random_unit_vector(Xoshiro256& rng) {
  for (;;) {
    const Vec3 p = random_in_unit_sphere(rng);
    if (p.norm2() > 1e-4f) return p.normalized();
  }
}

std::uint64_t seed_from_id(std::string_view id, std::uint64_t salt) {
  std::uint64_t h = salt;
  for (char c : id) h = util::hash_combine(h, static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace

Molecule make_receptor(const ReceptorParams& params) {
  if (params.atom_count == 0) return Molecule{"receptor"};
  if (params.density <= 0.0 || params.min_spacing <= 0.0) {
    throw std::invalid_argument("make_receptor: density and min_spacing must be positive");
  }
  Xoshiro256 rng = util::stream(params.seed, 0xECE97u);

  // Sphere radius from target density: N = density * (4/3) pi r^3.
  const double r = std::cbrt(3.0 * static_cast<double>(params.atom_count) /
                             (4.0 * std::numbers::pi * params.density));
  const auto radius = static_cast<float>(r);

  geom::Aabb box;
  box.extend({-radius, -radius, -radius});
  box.extend({radius, radius, radius});
  geom::CellGrid grid(box, static_cast<float>(params.min_spacing));

  Molecule mol("receptor");
  mol.reserve(params.atom_count);

  // Rejection-sample positions at min spacing.  At protein density this
  // accepts most draws; cap attempts so a pathological parameter set fails
  // loudly instead of spinning.
  const std::size_t max_attempts = params.atom_count * 4000;
  std::size_t attempts = 0;
  while (mol.size() < params.atom_count) {
    if (++attempts > max_attempts) {
      throw std::runtime_error("make_receptor: cannot pack atoms at requested density/spacing");
    }
    const Vec3 p = random_in_unit_sphere(rng) * radius;
    if (grid.has_point_closer_than(p, static_cast<float>(params.min_spacing))) continue;
    grid.insert(p, static_cast<std::uint32_t>(mol.size()));
    const Element e = sample_protein_element(rng);
    mol.add_atom(e, p, sample_charge(e, rng));
  }
  mol.center_at_origin();
  return mol;
}

Molecule make_ligand(const LigandParams& params) {
  if (params.atom_count == 0) return Molecule{"ligand"};
  Xoshiro256 rng = util::stream(params.seed, 0x116A4Du);

  // Drug-like: roughly half the atoms are heavy (C/N/O), grown as a
  // self-avoiding chain with occasional branches at bond-length spacing;
  // the rest are hydrogens decorating the skeleton.
  const std::size_t heavy_count = std::max<std::size_t>(1, (params.atom_count + 1) / 2);
  const std::size_t h_count = params.atom_count - heavy_count;
  constexpr float kBond = 1.5f;
  constexpr float kMinSep = 1.2f;

  std::vector<Vec3> heavy;
  heavy.reserve(heavy_count);
  heavy.push_back({0.0f, 0.0f, 0.0f});
  std::size_t guard = 0;
  while (heavy.size() < heavy_count) {
    if (++guard > heavy_count * 10000) {
      throw std::runtime_error("make_ligand: self-avoiding growth stalled");
    }
    // Grow from the tail usually, sometimes branch from a random atom.
    const std::size_t from =
        rng.bernoulli(0.8) ? heavy.size() - 1 : static_cast<std::size_t>(rng.below(heavy.size()));
    const Vec3 cand = heavy[from] + random_unit_vector(rng) * kBond;
    bool clash = false;
    for (std::size_t i = 0; i < heavy.size() && !clash; ++i) {
      if (i != from && cand.distance2(heavy[i]) < kMinSep * kMinSep) clash = true;
    }
    if (!clash) heavy.push_back(cand);
  }

  Molecule mol("ligand");
  mol.reserve(params.atom_count);
  for (const Vec3& p : heavy) {
    // Heavy-atom mix for small molecules: mostly carbon.
    const double u = rng.uniform();
    const Element e = u < 0.70 ? Element::kC : (u < 0.85 ? Element::kN : Element::kO);
    mol.add_atom(e, p, sample_charge(e, rng));
  }
  for (std::size_t i = 0; i < h_count; ++i) {
    const Vec3& host = heavy[rng.below(heavy.size())];
    mol.add_atom(Element::kH, host + random_unit_vector(rng) * 1.05f,
                 sample_charge(Element::kH, rng));
  }
  mol.center_at_origin();
  return mol;
}

Molecule make_dataset_receptor(const Dataset& ds) {
  ReceptorParams p;
  p.atom_count = ds.receptor_atoms;
  p.seed = seed_from_id(ds.pdb_id, 0xA11CEu);
  Molecule m = make_receptor(p);
  m.set_name(std::string(ds.pdb_id) + "-receptor");
  return m;
}

Molecule make_dataset_ligand(const Dataset& ds) {
  LigandParams p;
  p.atom_count = ds.ligand_atoms;
  p.seed = seed_from_id(ds.pdb_id, 0xB0B5u);
  Molecule m = make_ligand(p);
  m.set_name(std::string(ds.pdb_id) + "-ligand");
  return m;
}

}  // namespace metadock::mol
