#include "mol/pdb.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace metadock::mol {

namespace {

float parse_coord(const std::string& line, std::size_t begin, std::size_t len) {
  if (line.size() < begin + len) {
    throw std::runtime_error("pdb: truncated coordinate field: " + line);
  }
  const std::string field = line.substr(begin, len);
  try {
    return std::stof(field);
  } catch (const std::exception&) {
    throw std::runtime_error("pdb: bad coordinate '" + field + "'");
  }
}

Element parse_element(const std::string& line) {
  // Columns 77-78 hold the element symbol; older files leave it blank, in
  // which case we fall back to the first letter of the atom name (cols 13-16).
  if (line.size() >= 78) {
    const std::string sym = line.substr(76, 2);
    if (sym != "  ") return element_from_symbol(sym);
  }
  if (line.size() >= 14) {
    // Atom-name column: skip leading digits (e.g. "1HB1").
    for (std::size_t i = 12; i < 16 && i < line.size(); ++i) {
      const char c = line[i];
      if (c != ' ' && (c < '0' || c > '9')) {
        return element_from_symbol(std::string(1, c));
      }
    }
  }
  return Element::kOther;
}

void write_record(std::ostream& out, const Molecule& mol, char chain, int& serial) {
  char buf[96];
  for (std::size_t i = 0; i < mol.size(); ++i) {
    const geom::Vec3 p = mol.position(i);
    const std::string_view sym = element_symbol(mol.element(i));
    std::snprintf(buf, sizeof(buf),
                  "HETATM%5d %-4.4s %-3.3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f          %2.2s\n",
                  serial, sym.data(), "MOL", chain, 1, static_cast<double>(p.x),
                  static_cast<double>(p.y), static_cast<double>(p.z), 1.0, 0.0, sym.data());
    out << buf;
    ++serial;
  }
}

}  // namespace

Molecule read_pdb(std::istream& in, std::string name) {
  Molecule mol(std::move(name));
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("ATOM", 0) != 0 && line.rfind("HETATM", 0) != 0) continue;
    const float x = parse_coord(line, 30, 8);
    const float y = parse_coord(line, 38, 8);
    const float z = parse_coord(line, 46, 8);
    mol.add_atom(parse_element(line), {x, y, z});
  }
  return mol;
}

Molecule read_pdb_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("pdb: cannot open " + path);
  return read_pdb(in, path);
}

void write_pdb(std::ostream& out, const Molecule& mol, char chain) {
  int serial = 1;
  write_record(out, mol, chain, serial);
  out << "END\n";
}

void write_complex_pdb(std::ostream& out, const Molecule& receptor, const Molecule& ligand) {
  int serial = 1;
  write_record(out, receptor, 'A', serial);
  out << "TER\n";
  write_record(out, ligand, 'B', serial);
  out << "END\n";
}

void write_pdb_file(const std::string& path, const Molecule& mol) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("pdb: cannot open " + path + " for writing");
  write_pdb(out, mol);
}

}  // namespace metadock::mol
