#include "mol/atom.h"

#include <cctype>
#include <string>

namespace metadock::mol {

Element element_from_symbol(std::string_view symbol) {
  std::string s;
  for (char c : symbol) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      s += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  if (s == "H") return Element::kH;
  if (s == "C") return Element::kC;
  if (s == "N") return Element::kN;
  if (s == "O") return Element::kO;
  if (s == "S") return Element::kS;
  if (s == "P") return Element::kP;
  if (s == "F") return Element::kF;
  if (s == "CL") return Element::kCl;
  if (s == "BR") return Element::kBr;
  return Element::kOther;
}

}  // namespace metadock::mol
