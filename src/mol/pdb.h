// Minimal Protein Data Bank (PDB) reader/writer.
//
// The paper screens the PDB entries 2BSM and 2BXG.  Offline we synthesize
// equivalently-sized structures (see synth.h), but users with real PDB files
// can load them through this parser: it understands the fixed-column
// ATOM/HETATM records that carry coordinates and element symbols.
#pragma once

#include <iosfwd>
#include <string>

#include "mol/molecule.h"

namespace metadock::mol {

/// Parses ATOM and HETATM records from a PDB stream.  Throws
/// std::runtime_error on malformed coordinate fields.
[[nodiscard]] Molecule read_pdb(std::istream& in, std::string name = "pdb");

/// Reads a PDB file from disk.  Throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] Molecule read_pdb_file(const std::string& path);

/// Writes the molecule as HETATM records (one MODEL).  `chain` is the PDB
/// chain identifier column.
void write_pdb(std::ostream& out, const Molecule& mol, char chain = 'A');

/// Writes receptor (chain A) and a posed ligand (chain B) into one file —
/// the "Figure 1" artifact: a receptor-ligand complex viewable in any
/// molecular viewer.
void write_complex_pdb(std::ostream& out, const Molecule& receptor, const Molecule& ligand);

void write_pdb_file(const std::string& path, const Molecule& mol);

}  // namespace metadock::mol
