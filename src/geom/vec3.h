// 3-component vector used for atom coordinates and conformation positions.
// Coordinates are float (matching the paper's GPU kernels, which run in
// single precision); energy accumulation is done in double at the call site.
#pragma once

#include <cmath>

namespace metadock::geom {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }

  [[nodiscard]] constexpr float dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr float norm2() const { return dot(*this); }
  [[nodiscard]] float norm() const { return std::sqrt(norm2()); }

  /// Unit vector in this direction; the zero vector normalizes to +x so
  /// callers never see NaN.
  [[nodiscard]] Vec3 normalized() const {
    const float n = norm();
    return n > 0.0f ? *this / n : Vec3{1.0f, 0.0f, 0.0f};
  }

  [[nodiscard]] float distance(const Vec3& o) const { return (*this - o).norm(); }
  [[nodiscard]] constexpr float distance2(const Vec3& o) const { return (*this - o).norm2(); }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

}  // namespace metadock::geom
