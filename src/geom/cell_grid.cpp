#include "geom/cell_grid.h"

#include <algorithm>
#include <cmath>

namespace metadock::geom {

CellGrid::CellGrid(const Aabb& bounds, float cell_size) : bounds_(bounds), cell_size_(cell_size) {
  if (bounds_.empty() || cell_size_ <= 0.0f) {
    nx_ = ny_ = nz_ = 0;
    return;
  }
  const Vec3 s = bounds_.size();
  nx_ = std::max(1, static_cast<int>(std::ceil(s.x / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(s.y / cell_size_)));
  nz_ = std::max(1, static_cast<int>(std::ceil(s.z / cell_size_)));
  cells_.resize(static_cast<std::size_t>(nx_) * ny_ * nz_);
}

CellGrid CellGrid::over_points(std::span<const Vec3> points, float cell_size) {
  Aabb box;
  for (const Vec3& p : points) box.extend(p);
  CellGrid grid(box, cell_size);
  for (std::size_t i = 0; i < points.size(); ++i) {
    grid.insert(points[i], static_cast<std::uint32_t>(i));
  }
  return grid;
}

int CellGrid::clamp_coord(float v, float lo, int n) const {
  const int c = static_cast<int>(std::floor((v - lo) / cell_size_));
  return std::clamp(c, 0, n - 1);
}

void CellGrid::insert(const Vec3& p, std::uint32_t id) {
  if (cells_.empty()) return;
  const int cx = clamp_coord(p.x, bounds_.lo.x, nx_);
  const int cy = clamp_coord(p.y, bounds_.lo.y, ny_);
  const int cz = clamp_coord(p.z, bounds_.lo.z, nz_);
  cells_[static_cast<std::size_t>(cell_index(cx, cy, cz))].push_back({p, id});
  points_.push_back({p, id});
}

void CellGrid::for_each_within(const Vec3& p, float radius,
                               const std::function<void(std::uint32_t, const Vec3&)>& fn) const {
  if (cells_.empty() || radius < 0.0f) return;
  const float r2 = radius * radius;
  const int reach = static_cast<int>(std::ceil(radius / cell_size_));
  const int cx = clamp_coord(p.x, bounds_.lo.x, nx_);
  const int cy = clamp_coord(p.y, bounds_.lo.y, ny_);
  const int cz = clamp_coord(p.z, bounds_.lo.z, nz_);
  for (int z = std::max(0, cz - reach); z <= std::min(nz_ - 1, cz + reach); ++z) {
    for (int y = std::max(0, cy - reach); y <= std::min(ny_ - 1, cy + reach); ++y) {
      for (int x = std::max(0, cx - reach); x <= std::min(nx_ - 1, cx + reach); ++x) {
        for (const Entry& e : cells_[static_cast<std::size_t>(cell_index(x, y, z))]) {
          if (e.pos.distance2(p) <= r2) fn(e.id, e.pos);
        }
      }
    }
  }
}

std::size_t CellGrid::count_within(const Vec3& p, float radius) const {
  std::size_t n = 0;
  for_each_within(p, radius, [&n](std::uint32_t, const Vec3&) { ++n; });
  return n;
}

bool CellGrid::has_point_closer_than(const Vec3& p, float min_dist) const {
  if (cells_.empty() || min_dist <= 0.0f) return false;
  const float r2 = min_dist * min_dist;
  const int reach = static_cast<int>(std::ceil(min_dist / cell_size_));
  const int cx = clamp_coord(p.x, bounds_.lo.x, nx_);
  const int cy = clamp_coord(p.y, bounds_.lo.y, ny_);
  const int cz = clamp_coord(p.z, bounds_.lo.z, nz_);
  for (int z = std::max(0, cz - reach); z <= std::min(nz_ - 1, cz + reach); ++z) {
    for (int y = std::max(0, cy - reach); y <= std::min(ny_ - 1, cy + reach); ++y) {
      for (int x = std::max(0, cx - reach); x <= std::min(nx_ - 1, cx + reach); ++x) {
        for (const Entry& e : cells_[static_cast<std::size_t>(cell_index(x, y, z))]) {
          if (e.pos.distance2(p) < r2) return true;
        }
      }
    }
  }
  return false;
}

}  // namespace metadock::geom
