// Axis-aligned bounding box, used to size cell grids and to sanity-check
// synthetic molecule generation.
#pragma once

#include <limits>

#include "geom/vec3.h"

namespace metadock::geom {

struct Aabb {
  Vec3 lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
          std::numeric_limits<float>::max()};
  Vec3 hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
          std::numeric_limits<float>::lowest()};

  [[nodiscard]] constexpr bool empty() const { return lo.x > hi.x; }

  constexpr void extend(const Vec3& p) {
    if (p.x < lo.x) lo.x = p.x;
    if (p.y < lo.y) lo.y = p.y;
    if (p.z < lo.z) lo.z = p.z;
    if (p.x > hi.x) hi.x = p.x;
    if (p.y > hi.y) hi.y = p.y;
    if (p.z > hi.z) hi.z = p.z;
  }

  constexpr void extend(const Aabb& b) {
    if (b.empty()) return;
    extend(b.lo);
    extend(b.hi);
  }

  /// Grows the box by `margin` on every side.
  constexpr void pad(float margin) {
    if (empty()) return;
    const Vec3 m{margin, margin, margin};
    lo -= m;
    hi += m;
  }

  [[nodiscard]] constexpr Vec3 size() const { return empty() ? Vec3{} : hi - lo; }
  [[nodiscard]] constexpr Vec3 center() const { return (lo + hi) * 0.5f; }

  [[nodiscard]] constexpr bool contains(const Vec3& p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }
};

}  // namespace metadock::geom
