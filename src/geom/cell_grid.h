// Uniform cell grid over a point set.  Two uses in MetaDock:
//   * minimum-distance rejection during synthetic molecule generation
//     (packing atoms at protein density without O(n^2) checks), and
//   * neighbour counting for the surface-exposure heuristic in `surface`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace metadock::geom {

class CellGrid {
 public:
  /// Builds a grid with cubic cells of edge `cell_size` covering `bounds`.
  /// cell_size must be > 0; bounds may be empty (then every query is empty).
  CellGrid(const Aabb& bounds, float cell_size);

  /// Builds a grid sized to the points' bounding box and inserts them all.
  static CellGrid over_points(std::span<const Vec3> points, float cell_size);

  /// Inserts a point with an external id.  Points outside the original
  /// bounds are clamped into the boundary cells.
  void insert(const Vec3& p, std::uint32_t id);

  /// Calls fn(id, position) for every inserted point within `radius` of `p`.
  void for_each_within(const Vec3& p, float radius,
                       const std::function<void(std::uint32_t, const Vec3&)>& fn) const;

  /// Number of inserted points within `radius` of `p` (excluding points at
  /// distance exactly > radius).
  [[nodiscard]] std::size_t count_within(const Vec3& p, float radius) const;

  /// True when some inserted point lies strictly closer than `min_dist`.
  [[nodiscard]] bool has_point_closer_than(const Vec3& p, float min_dist) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Entry {
    Vec3 pos;
    std::uint32_t id;
  };

  [[nodiscard]] int cell_index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }
  [[nodiscard]] int clamp_coord(float v, float lo, int n) const;

  Aabb bounds_;
  float cell_size_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::vector<Entry>> cells_;
  std::vector<Entry> points_;
};

}  // namespace metadock::geom
