// Rigid-body transform (rotation then translation).  Applying one to every
// ligand atom produces the atom coordinates of a conformation.
#pragma once

#include "geom/quat.h"
#include "geom/vec3.h"

namespace metadock::geom {

struct Transform {
  Quat rotation = Quat::identity();
  Vec3 translation{};

  [[nodiscard]] Vec3 apply(const Vec3& v) const { return rotation.rotate(v) + translation; }

  /// Composition: (a.then(b)).apply(v) == b.apply(a.apply(v)).
  [[nodiscard]] Transform then(const Transform& b) const {
    return {(b.rotation * rotation).normalized(), b.rotation.rotate(translation) + b.translation};
  }

  [[nodiscard]] Transform inverse() const {
    const Quat inv = rotation.conjugate();
    return {inv, -inv.rotate(translation)};
  }
};

}  // namespace metadock::geom
