#include "geom/quat.h"

#include <algorithm>

namespace metadock::geom {

Quat Quat::slerp(const Quat& to, float t) const {
  Quat b = to;
  float cos_theta = w * b.w + x * b.x + y * b.y + z * b.z;
  // Take the short arc: q and -q are the same rotation.
  if (cos_theta < 0.0f) {
    b = {-b.w, -b.x, -b.y, -b.z};
    cos_theta = -cos_theta;
  }
  if (cos_theta > 0.9995f) {
    // Nearly parallel: fall back to nlerp to avoid dividing by sin(theta)~0.
    Quat r{w + t * (b.w - w), x + t * (b.x - x), y + t * (b.y - y), z + t * (b.z - z)};
    return r.normalized();
  }
  const float theta = std::acos(std::clamp(cos_theta, -1.0f, 1.0f));
  const float sin_theta = std::sin(theta);
  const float wa = std::sin((1.0f - t) * theta) / sin_theta;
  const float wb = std::sin(t * theta) / sin_theta;
  return Quat{wa * w + wb * b.w, wa * x + wb * b.x, wa * y + wb * b.y, wa * z + wb * b.z}
      .normalized();
}

float Quat::angle_to(const Quat& o) const {
  const float d = std::abs(w * o.w + x * o.x + y * o.y + z * o.z);
  return 2.0f * std::acos(std::clamp(d, 0.0f, 1.0f));
}

Quat random_quat(float u1, float u2, float u3) {
  constexpr float kTwoPi = 6.28318530717958647692f;
  const float s1 = std::sqrt(1.0f - u1);
  const float s2 = std::sqrt(u1);
  return {s1 * std::sin(kTwoPi * u2), s1 * std::cos(kTwoPi * u2), s2 * std::sin(kTwoPi * u3),
          s2 * std::cos(kTwoPi * u3)};
}

}  // namespace metadock::geom
