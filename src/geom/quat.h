// Unit quaternions for ligand orientations.  A conformation in the paper is
// a copy of the ligand with a position and orientation relative to a surface
// spot; rotating the rigid ligand is the hot geometric primitive.
#pragma once

#include <cmath>

#include "geom/vec3.h"

namespace metadock::geom {

struct Quat {
  float w = 1.0f;
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Quat() = default;
  constexpr Quat(float w_, float x_, float y_, float z_) : w(w_), x(x_), y(y_), z(z_) {}

  static constexpr Quat identity() { return {}; }

  /// Rotation of `angle` radians about `axis` (need not be unit length).
  static Quat axis_angle(const Vec3& axis, float angle) {
    const Vec3 u = axis.normalized();
    const float h = 0.5f * angle;
    const float s = std::sin(h);
    return {std::cos(h), u.x * s, u.y * s, u.z * s};
  }

  /// Hamilton product: (*this) then... note composition order is
  /// (a*b).rotate(v) == a.rotate(b.rotate(v)).
  constexpr Quat operator*(const Quat& o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z, w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x, w * o.z + x * o.y - y * o.x + z * o.w};
  }

  [[nodiscard]] constexpr Quat conjugate() const { return {w, -x, -y, -z}; }
  [[nodiscard]] constexpr float norm2() const { return w * w + x * x + y * y + z * z; }
  [[nodiscard]] float norm() const { return std::sqrt(norm2()); }

  [[nodiscard]] Quat normalized() const {
    const float n = norm();
    if (n <= 0.0f) return identity();
    return {w / n, x / n, y / n, z / n};
  }

  /// Rotates a vector (assumes *this is unit length).
  [[nodiscard]] constexpr Vec3 rotate(const Vec3& v) const {
    // v' = v + 2*q_vec x (q_vec x v + w*v)
    const Vec3 qv{x, y, z};
    const Vec3 t = qv.cross(v) * 2.0f;
    return v + t * w + qv.cross(t);
  }

  /// Spherical linear interpolation (used by the Combine operator to blend
  /// parent orientations).  t in [0,1].
  [[nodiscard]] Quat slerp(const Quat& to, float t) const;

  /// Geodesic angle to another unit quaternion, in [0, pi].
  [[nodiscard]] float angle_to(const Quat& o) const;
};

/// Uniformly random unit quaternion (Shoemake's method) given three uniform
/// deviates in [0,1).
Quat random_quat(float u1, float u2, float u3);

}  // namespace metadock::geom
