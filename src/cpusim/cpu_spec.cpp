#include "cpusim/cpu_spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "scoring/lennard_jones.h"

namespace metadock::cpusim {

CpuSpec xeon_e5_2620_dual() {
  CpuSpec c;
  c.name = "2x Xeon E5-2620";
  c.cores = 12;
  c.clock_ghz = 2.0;
  // Calibrated against the paper's four Jupiter OpenMP columns: sustained
  // 58.1 (2BSM) and 41.2 (2BXG) Gflop/s imply fpc ~3.2 in-L1 with a strong
  // out-of-L1 falloff (Sandy Bridge EP, quad-channel but 12 threads).
  c.flops_per_cycle = 3.25;
  c.parallel_efficiency = 0.95;
  c.l1d_kb = 32.0;
  c.cache_alpha = 0.40;
  c.tdp_watts = 190.0;  // 2 sockets x 95 W
  return c;
}

CpuSpec xeon_e3_1220() {
  CpuSpec c;
  c.name = "Xeon E3-1220";
  c.cores = 4;
  c.clock_ghz = 3.1;
  // Calibrated against the paper's four Hertz OpenMP columns: sustained
  // 27.0 (2BSM) and 24.9 (2BXG) Gflop/s — a lower in-L1 rate than the E5
  // node (gcc 4.8 scalar code, 4 threads) but a much flatter size falloff
  // (4 threads leave plenty of L2/L3 headroom per core).
  c.flops_per_cycle = 2.43;
  c.parallel_efficiency = 0.95;
  c.l1d_kb = 32.0;
  c.cache_alpha = 0.10;
  c.tdp_watts = 80.0;
  return c;
}

double cache_factor(const CpuSpec& cpu, std::size_t receptor_bytes) {
  const double l1 = cpu.l1d_kb * 1024.0;
  if (receptor_bytes == 0 || static_cast<double>(receptor_bytes) <= l1 ||
      cpu.cache_alpha <= 0.0) {
    return 1.0;
  }
  const double f = std::pow(l1 / static_cast<double>(receptor_bytes), cpu.cache_alpha);
  return std::clamp(f, cpu.cache_floor, 1.0);
}

double pair_rate(const CpuSpec& cpu, std::size_t receptor_bytes) {
  const double flops = cpu.peak_gflops() * cpu.parallel_efficiency * 1e9;
  return flops * cache_factor(cpu, receptor_bytes) / scoring::kModelFlopsPerPair;
}

double scoring_time_s(const CpuSpec& cpu, double pairs, std::size_t receptor_bytes) {
  if (pairs < 0.0) throw std::invalid_argument("scoring_time_s: negative pair count");
  return pairs / pair_rate(cpu, receptor_bytes);
}

}  // namespace metadock::cpusim
