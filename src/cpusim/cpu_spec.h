// CPU performance model for the paper's OpenMP baseline column.
//
// The baseline in Tables 6-9 is an OpenMP scoring loop on the node's Xeons.
// To report that column without the authors' hardware we model the
// multicore's sustained pair-interaction throughput.  Two effects carry the
// paper's shape:
//   * sustained flop rate = cores x clock x flops/cycle x parallel eff.
//   * a working-set penalty: the scalar CPU loop re-streams the receptor
//     per ligand atom, so once the receptor outgrows L1d the per-pair rate
//     drops — which is why the measured GPU-vs-CPU speed-up is larger for
//     the 8609-atom 2BXG receptor than for the 3264-atom 2BSM one (the
//     tiled GPU kernel does not pay this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace metadock::cpusim {

struct CpuSpec {
  std::string name;
  int cores = 4;
  double clock_ghz = 2.0;
  /// Sustained scalar+SSE flops per cycle per core on the LJ inner loop.
  double flops_per_cycle = 3.3;
  /// OpenMP scaling efficiency across the cores.
  double parallel_efficiency = 0.95;
  /// L1 data cache per core (KB) — the working-set knee.
  double l1d_kb = 32.0;
  /// Exponent of the cache penalty (0 disables it).
  double cache_alpha = 0.40;
  /// Lower bound of the cache penalty factor.
  double cache_floor = 0.35;
  double tdp_watts = 95.0;

  [[nodiscard]] double peak_gflops() const {
    return cores * clock_ghz * flops_per_cycle;
  }
};

/// Jupiter's CPU: two hexa-core Xeon E5-2620 @ 2 GHz (12 cores).
[[nodiscard]] CpuSpec xeon_e5_2620_dual();

/// Hertz's CPU: Xeon E3-1220 @ 3.1 GHz (4 cores).
[[nodiscard]] CpuSpec xeon_e3_1220();

/// Cache penalty factor in (cache_floor, 1] for a receptor working set of
/// `receptor_bytes`.
[[nodiscard]] double cache_factor(const CpuSpec& cpu, std::size_t receptor_bytes);

/// Sustained pair-interactions per second for the given working set.
[[nodiscard]] double pair_rate(const CpuSpec& cpu, std::size_t receptor_bytes);

/// Modeled seconds to evaluate `pairs` pair interactions.
[[nodiscard]] double scoring_time_s(const CpuSpec& cpu, double pairs,
                                    std::size_t receptor_bytes);

}  // namespace metadock::cpusim
