#include "cpusim/cpu_engine.h"

#include <stdexcept>

#include "obs/host_metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace metadock::cpusim {

CpuScoringEngine::CpuScoringEngine(CpuSpec spec, const scoring::LennardJonesScorer& scorer,
                                   scoring::ScoringImpl impl, scoring::SimdLevel simd_level)
    : spec_(std::move(spec)), scorer_(scorer) {
  const scoring::ScoringImpl resolved = scoring::resolve_scoring_impl(impl);
  if (resolved != scoring::ScoringImpl::kTiled) {
    scoring::BatchEngineOptions be;
    be.simd = resolved == scoring::ScoringImpl::kBatchedSimd ? simd_level
                                                             : scoring::SimdLevel::kScalar;
    batch_.emplace(scorer_, be);
  }
}

void CpuScoringEngine::score(std::span<const scoring::Pose> poses, std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("CpuScoringEngine::score: size mismatch");
  }
  if (poses.empty()) return;
  const util::WallTimer timer;
  if (batch_.has_value()) {
    // Parallelize across pose blocks, not poses: each task keeps a block of
    // transformed poses hot while it streams the receptor tiles once.
    const auto block = static_cast<std::size_t>(batch_->pose_block());
    const std::size_t n_blocks = (poses.size() + block - 1) / block;
    util::ThreadPool::global().parallel_for(n_blocks, [&](std::size_t b) {
      const std::size_t lo = b * block;
      const std::size_t n = std::min(block, poses.size() - lo);
      batch_->score_batch(poses.subspan(lo, n), out.subspan(lo, n));
    });
  } else {
    util::ThreadPool::global().parallel_for(
        poses.size(), [&](std::size_t i) { out[i] = scorer_.score_tiled(poses[i]); });
  }
  obs::record_host_scoring(
      observer_, timer.seconds(),
      static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(poses.size()));
  score_cost_only(poses.size());
}

void CpuScoringEngine::score_cost_only(std::size_t n) {
  const double pairs =
      static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(n);
  clock_.advance_seconds(scoring_time_s(spec_, pairs, receptor_bytes()));
}

}  // namespace metadock::cpusim
