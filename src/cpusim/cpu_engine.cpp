#include "cpusim/cpu_engine.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace metadock::cpusim {

void CpuScoringEngine::score(std::span<const scoring::Pose> poses, std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("CpuScoringEngine::score: size mismatch");
  }
  if (poses.empty()) return;
  util::ThreadPool::global().parallel_for(
      poses.size(), [&](std::size_t i) { out[i] = scorer_.score_tiled(poses[i]); });
  score_cost_only(poses.size());
}

void CpuScoringEngine::score_cost_only(std::size_t n) {
  const double pairs =
      static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(n);
  clock_.advance_seconds(scoring_time_s(spec_, pairs, receptor_bytes()));
}

}  // namespace metadock::cpusim
