// CPU scoring engine: really evaluates poses on the host (optionally across
// host threads) while accumulating virtual time from the CPU model — the
// OpenMP baseline of Tables 6-9.
#pragma once

#include <optional>
#include <span>

#include "cpusim/cpu_spec.h"
#include "gpusim/virtual_clock.h"
#include "obs/observer.h"
#include "scoring/batch_engine.h"
#include "scoring/lennard_jones.h"
#include "scoring/pose.h"

namespace metadock::cpusim {

class CpuScoringEngine {
 public:
  /// `impl` selects the host scoring path (kAuto = batched engine, SIMD
  /// when the CPU supports it; kTiled = the per-pose path); `simd_level`
  /// selects the SIMD tier behind kBatchedSimd.
  CpuScoringEngine(CpuSpec spec, const scoring::LennardJonesScorer& scorer,
                   scoring::ScoringImpl impl = scoring::ScoringImpl::kAuto,
                   scoring::SimdLevel simd_level = scoring::default_simd_level());

  /// Observability sink for real host throughput (nullable = off): the
  /// host.* scoring metrics defined in obs/host_metrics.h.
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  /// Scores poses for real (parallel across host threads, one pose block
  /// per task when the batched engine is active) and advances the virtual
  /// clock by the model.
  void score(std::span<const scoring::Pose> poses, std::span<double> out);

  /// Advances the clock as score() would for `n` poses, without the numeric
  /// work (trace replay at paper scale).
  void score_cost_only(std::size_t n);

  [[nodiscard]] const CpuSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double busy_seconds() const noexcept { return clock_.seconds(); }
  [[nodiscard]] double energy_joules() const noexcept {
    return spec_.tdp_watts * busy_seconds();
  }
  void reset() noexcept { clock_.reset(); }

 private:
  [[nodiscard]] std::size_t receptor_bytes() const noexcept {
    // Mirror of the GPU model's per-atom payload.
    return static_cast<std::size_t>(17.0 * static_cast<double>(scorer_.receptor_size()));
  }

  CpuSpec spec_;
  const scoring::LennardJonesScorer& scorer_;
  /// Absent when impl resolves to kTiled.
  std::optional<scoring::BatchScoringEngine> batch_;
  obs::Observer* observer_ = nullptr;
  gpusim::VirtualClock clock_;
};

}  // namespace metadock::cpusim
