// The docking scoring kernel on a virtual device.
//
// Mapping follows the paper exactly: "we identify each candidate solution to
// a CUDA warp, and warps are grouped into blocks depending on the CUDA
// thread block granularity".  One warp scores one conformation; its 32 lanes
// stride across receptor atoms; receptor tiles travel through shared memory
// so each block streams the receptor from DRAM once, regardless of how many
// warps it holds (the paper's "tilling implementation via shared memory").
#pragma once

#include <optional>
#include <span>

#include "gpusim/device.h"
#include "scoring/batch_engine.h"
#include "scoring/lennard_jones.h"
#include "scoring/pose.h"

namespace metadock::gpusim {

struct ScoringKernelOptions {
  /// Conformations (warps) per thread block.
  int warps_per_block = 4;
  /// Shared-memory tiling on/off (off models the naive kernel where every
  /// warp streams the receptor from DRAM — the ablation baseline).
  bool tiled = true;
  /// Receptor atoms per shared-memory tile.
  int tile_atoms = 256;
  /// Host implementation doing the real numeric work behind the virtual
  /// kernel.  kAuto picks the batched engine (SIMD when the CPU has
  /// AVX2+FMA); kTiled is the pre-batching per-pose path.
  scoring::ScoringImpl impl = scoring::ScoringImpl::kAuto;
  /// SIMD tier backing kBatchedSimd (`--simd-level`): the highest level
  /// this host supports by default.  Ignored by the other impls.
  scoring::SimdLevel simd_level = scoring::default_simd_level();
};

class DeviceScoringKernel {
 public:
  /// Binds a scorer (receptor + ligand already in SoA form) to a device:
  /// reserves device memory for the molecule payloads (throws
  /// std::runtime_error when the card's DRAM is exhausted) and accounts the
  /// initial host->device upload.  The destructor releases the reservation.
  DeviceScoringKernel(Device& device, const scoring::LennardJonesScorer& scorer,
                      ScoringKernelOptions options = {});
  ~DeviceScoringKernel();

  DeviceScoringKernel(const DeviceScoringKernel&) = delete;
  DeviceScoringKernel& operator=(const DeviceScoringKernel&) = delete;
  DeviceScoringKernel(DeviceScoringKernel&&) = delete;
  DeviceScoringKernel& operator=(DeviceScoringKernel&&) = delete;

  /// Scores `poses` for real and advances the device clock: H2D pose upload,
  /// kernel execution, D2H score download.
  void score(std::span<const scoring::Pose> poses, std::span<double> out);

  /// Advances the clock exactly as score() would for a batch of `n` poses,
  /// without doing the numeric work.  Used by the platform simulator to
  /// replay a recorded workload trace at full paper scale.
  void score_cost_only(std::size_t n);

  /// Kernel-only variants (no H2D/D2H accounting) for callers that manage
  /// transfers at batch level, as Algorithm 2 does: the host uploads the
  /// whole Scom to every GPU once per batch, then each GPU launches on its
  /// stride.
  void launch_scoring(std::span<const scoring::Pose> poses, std::span<double> out);
  void launch_cost_only(std::size_t n);

  /// Stream variants for the overlapped dispatch: the caller owns the
  /// pipeline (uploads poses, launches, downloads scores on streams it
  /// created) and calls Device::sync() at the batch barrier.
  void launch_scoring_async(int stream, std::span<const scoring::Pose> poses,
                            std::span<double> out);
  void launch_cost_only_async(int stream, std::size_t n);
  /// Async H2D of `n` poses' payload (kBytesPerPose each) on `stream`.
  void upload_poses_async(int stream, std::size_t n);
  /// Async D2H of `n` scores (8 bytes each) on `stream`.
  void download_scores_async(int stream, std::size_t n);

  [[nodiscard]] KernelLaunch launch_config(std::size_t n_poses) const;
  [[nodiscard]] KernelCost cost(std::size_t n_poses) const;

  [[nodiscard]] Device& device() noexcept { return device_; }
  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Modeled flops for one receptor-ligand atom pair (shared with cpusim).
  static constexpr double kFlopsPerPair = scoring::kModelFlopsPerPair;
  /// Bytes per receptor atom streamed by the kernel (x, y, z, charge as
  /// floats plus the type byte, padded).
  static constexpr double kBytesPerReceptorAtom = 17.0;
  /// Bytes per uploaded pose (position + quaternion as floats).
  static constexpr double kBytesPerPose = 28.0;
  /// Fraction of the naive (untiled) kernel's per-pair receptor touches
  /// that miss the cache hierarchy and cost DRAM bandwidth.
  static constexpr double kNaiveMissRate = 0.25;

 private:
  Device& device_;
  const scoring::LennardJonesScorer& scorer_;
  ScoringKernelOptions options_;
  /// Batched host engine backing the virtual kernel (absent when
  /// options_.impl resolves to kTiled).  One block of warps maps to one
  /// pose block: pose_block == warps_per_block, so the engine's receptor
  /// sweep mirrors the shared-memory tile being reused by every warp of
  /// the block.
  std::optional<scoring::BatchScoringEngine> batch_;
};

}  // namespace metadock::gpusim
