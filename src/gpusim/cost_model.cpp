#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metadock::gpusim {

double kernel_time_s(const DeviceSpec& dev, const KernelLaunch& launch, const KernelCost& cost,
                     const CostModelParams& params) {
  if (launch.grid_blocks <= 0 || launch.block_threads <= 0) {
    throw std::invalid_argument("kernel_time_s: empty launch");
  }
  const int resident =
      dev.resident_blocks_per_sm(launch.block_threads, launch.shared_bytes_per_block);
  if (resident == 0) {
    throw std::invalid_argument("kernel_time_s: block does not fit on device " + dev.name);
  }

  // (1) SM-granular work quantization.  Hardware dispatches blocks to SMs
  // dynamically as they drain, so the busiest SM ends roughly half a block
  // after the mean — the expected makespan is (blocks + (SMs-1)/2) / SMs
  // block-times per SM, i.e. an effective block count of:
  const auto blocks = static_cast<double>(launch.grid_blocks);
  const double quantized_blocks = blocks + (dev.sm_count - 1) * 0.5;

  // (2) Occupancy-driven latency hiding: fraction of peak issue rate the
  // launch can sustain given its resident warps per SM.
  const double warps_per_block = static_cast<double>(launch.block_threads) / 32.0;
  const double resident_warps =
      std::min<double>(resident, std::ceil(blocks / dev.sm_count)) * warps_per_block;
  const double occupancy =
      std::clamp(resident_warps / params.warps_to_hide_latency, params.min_occupancy_factor, 1.0);

  const double flops_per_block = cost.flops / blocks;
  const double sustained_flops =
      dev.peak_gflops() * 1e9 * dev.compute_efficiency * occupancy;
  const double compute_s = quantized_blocks * flops_per_block / sustained_flops;

  const double sustained_bw = dev.dram_bw_gbs * 1e9 * dev.memory_efficiency;
  const double bytes_per_block = cost.global_bytes / blocks;
  const double memory_s = quantized_blocks * bytes_per_block / sustained_bw;

  // (3) Roofline: compute and memory overlap; launch overhead does not.
  return std::max(compute_s, memory_s) + params.launch_overhead_s;
}

double transfer_time_s(const DeviceSpec& dev, double bytes, const CostModelParams& params) {
  if (bytes < 0.0) throw std::invalid_argument("transfer_time_s: negative byte count");
  return bytes / (dev.pcie_bw_gbs * 1e9) + params.transfer_latency_s;
}

}  // namespace metadock::gpusim
