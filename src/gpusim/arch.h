// GPU hardware generations as summarized in Table 1 of the paper.
#pragma once

#include <string_view>

namespace metadock::gpusim {

enum class Arch {
  kTesla,    // 2007, CCC 1.x
  kFermi,    // 2010, CCC 2.x
  kKepler,   // 2012, CCC 3.x
  kMaxwell,  // 2014, CCC 5.x
  kMic,      // Intel MIC (Xeon Phi) — the paper's future-work accelerator
};

[[nodiscard]] constexpr std::string_view arch_name(Arch a) {
  switch (a) {
    case Arch::kTesla:
      return "Tesla";
    case Arch::kFermi:
      return "Fermi";
    case Arch::kKepler:
      return "Kepler";
    case Arch::kMaxwell:
      return "Maxwell";
    case Arch::kMic:
      return "MIC";
  }
  return "?";
}

[[nodiscard]] constexpr int arch_year(Arch a) {
  switch (a) {
    case Arch::kTesla:
      return 2007;
    case Arch::kFermi:
      return 2010;
    case Arch::kKepler:
      return 2012;
    case Arch::kMaxwell:
      return 2014;
    case Arch::kMic:
      return 2012;
  }
  return 0;
}

/// CUDA Compute Capability major version per generation (0 = not CUDA).
[[nodiscard]] constexpr int arch_ccc_major(Arch a) {
  switch (a) {
    case Arch::kTesla:
      return 1;
    case Arch::kFermi:
      return 2;
    case Arch::kKepler:
      return 3;
    case Arch::kMaxwell:
      return 5;
    case Arch::kMic:
      return 0;
  }
  return 0;
}

/// Approximate normalized performance-per-watt factor (Table 1, last row).
[[nodiscard]] constexpr double arch_perf_per_watt(Arch a) {
  switch (a) {
    case Arch::kTesla:
      return 1.0;
    case Arch::kFermi:
      return 2.0;
    case Arch::kKepler:
      return 6.0;
    case Arch::kMaxwell:
      return 12.0;
    case Arch::kMic:
      return 4.0;
  }
  return 1.0;
}

}  // namespace metadock::gpusim
