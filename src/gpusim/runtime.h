// Node-level runtime emulating the slice of the CUDA runtime + NVML the
// paper's scheduler uses: enumerate devices at run time
// (cudaGetDeviceCount), query their properties, and select one per OpenMP
// thread.
#pragma once

#include <stdexcept>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault_plan.h"

namespace metadock::gpusim {

class Runtime {
 public:
  /// Enumerates `specs` as ordinals 0..n-1; an optional FaultPlan attaches
  /// its per-ordinal fault specs to the devices.
  explicit Runtime(std::vector<DeviceSpec> specs, FaultPlan plan = {})
      : plan_(std::move(plan)) {
    devices_.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      devices_.emplace_back(std::move(specs[i]), static_cast<int>(i));
      devices_.back().set_fault(plan_.for_device(static_cast<int>(i)), plan_.seed());
    }
  }

  /// Attaches an observer to every device (nullable = off); spans land on
  /// per-ordinal tracks of the tracer.
  void attach_observer(obs::Observer* observer) {
    for (Device& d : devices_) d.set_observer(observer);
  }

  /// cudaGetDeviceCount equivalent.
  [[nodiscard]] int device_count() const noexcept { return static_cast<int>(devices_.size()); }

  /// Devices that have not (yet) died under the fault plan.
  [[nodiscard]] int alive_count() const noexcept {
    int n = 0;
    for (const Device& d : devices_) n += d.is_dead() ? 0 : 1;
    return n;
  }

  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  /// cudaSetDevice/handle equivalent: devices are addressed by ordinal.
  [[nodiscard]] Device& device(int ordinal) {
    if (ordinal < 0 || ordinal >= device_count()) {
      throw std::out_of_range("Runtime::device: bad ordinal");
    }
    return devices_[static_cast<std::size_t>(ordinal)];
  }
  [[nodiscard]] const Device& device(int ordinal) const {
    return const_cast<Runtime*>(this)->device(ordinal);
  }

  /// cudaGetDeviceProperties / NVML query equivalent.
  [[nodiscard]] const DeviceSpec& properties(int ordinal) const {
    return device(ordinal).spec();
  }

  /// Virtual time of the slowest (busiest) device — the makespan of work
  /// issued so far.
  [[nodiscard]] double makespan_seconds() const {
    double t = 0.0;
    for (const Device& d : devices_) t = std::max(t, d.busy_seconds());
    return t;
  }

  /// Total modeled energy across devices.
  [[nodiscard]] double total_energy_joules() const {
    double e = 0.0;
    for (const Device& d : devices_) e += d.energy_joules();
    return e;
  }

  /// Resets every device and re-attaches the runtime's fault plan:
  /// Device::reset() now wipes the fault spec too (a standalone reset is a
  /// fresh device), so the runtime restores its own schedule afterwards.
  void reset_all() {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      devices_[i].reset();
      devices_[i].set_fault(plan_.for_device(static_cast<int>(i)), plan_.seed());
    }
  }

 private:
  FaultPlan plan_;
  std::vector<Device> devices_;
};

}  // namespace metadock::gpusim
