#include "gpusim/fault_plan.h"

#include <algorithm>
#include <cmath>

namespace metadock::gpusim {

DeviceFaultSpec& FaultPlan::entry(int device) {
  for (DeviceFaultSpec& f : faults_) {
    if (f.device == device) return f;
  }
  DeviceFaultSpec f;
  f.device = device;
  faults_.push_back(f);
  return faults_.back();
}

FaultPlan& FaultPlan::kill(int device, double at_seconds) {
  if (device < 0) throw std::invalid_argument("FaultPlan::kill: bad device ordinal");
  if (!(at_seconds >= 0.0)) {
    throw std::invalid_argument("FaultPlan::kill: death time must be >= 0");
  }
  DeviceFaultSpec& f = entry(device);
  f.death_at_seconds = std::min(f.death_at_seconds, at_seconds);
  return *this;
}

FaultPlan& FaultPlan::transient(int device, double probability) {
  if (device < 0) throw std::invalid_argument("FaultPlan::transient: bad device ordinal");
  if (!(probability >= 0.0) || probability > 1.0) {
    throw std::invalid_argument("FaultPlan::transient: probability must be in [0, 1]");
  }
  DeviceFaultSpec& f = entry(device);
  f.transient_probability = std::max(f.transient_probability, probability);
  return *this;
}

FaultPlan& FaultPlan::straggle(int device, double after_seconds, double factor) {
  if (device < 0) throw std::invalid_argument("FaultPlan::straggle: bad device ordinal");
  if (!(after_seconds >= 0.0)) {
    throw std::invalid_argument("FaultPlan::straggle: onset time must be >= 0");
  }
  if (!(factor >= 1.0) || !std::isfinite(factor)) {
    throw std::invalid_argument("FaultPlan::straggle: factor must be >= 1");
  }
  DeviceFaultSpec& f = entry(device);
  f.straggle_after_seconds = std::min(f.straggle_after_seconds, after_seconds);
  f.straggle_factor = std::max(f.straggle_factor, factor);
  return *this;
}

DeviceFaultSpec FaultPlan::for_device(int ordinal) const {
  for (const DeviceFaultSpec& f : faults_) {
    if (f.device == ordinal) return f;
  }
  DeviceFaultSpec benign;
  benign.device = ordinal;
  return benign;
}

}  // namespace metadock::gpusim
