// Virtual time accounting for simulated devices.
//
// All performance results in the reproduction are reported in virtual
// seconds accumulated by these clocks, so the benchmark tables are
// deterministic and host-independent (see DESIGN.md "Virtual time").
#pragma once

#include <cstdint>

namespace metadock::gpusim {

class VirtualClock {
 public:
  void advance_seconds(double s) noexcept {
    if (s > 0.0) ns_ += static_cast<std::uint64_t>(s * 1e9 + 0.5);
  }
  void advance_ns(std::uint64_t ns) noexcept { ns_ += ns; }
  void reset() noexcept { ns_ = 0; }

  [[nodiscard]] std::uint64_t nanoseconds() const noexcept { return ns_; }
  [[nodiscard]] double seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }

 private:
  std::uint64_t ns_ = 0;
};

}  // namespace metadock::gpusim
