#include "gpusim/device.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace metadock::gpusim {

void Device::launch(const KernelLaunch& launch, const KernelCost& cost,
                    const std::function<void(std::int64_t)>& block_fn) {
  if (is_dead()) {
    dead_ = true;
    throw DeviceLostError(ordinal_, "device " + spec_.name + " is dead");
  }
  const double now = clock_.seconds();
  const double t = kernel_time_s(spec_, launch, cost, cost_params_) * slowdown();
  if (now + t >= fault_.death_at_seconds) {
    // The launch crosses the death boundary: the device worked until the
    // moment it died and the in-flight slice is lost.
    clock_.advance_seconds(fault_.death_at_seconds - now);
    dead_ = true;
    throw DeviceLostError(ordinal_, "device " + spec_.name + " died mid-kernel");
  }
  ++launch_counter_;
  if (fault_.transient_probability > 0.0) {
    // Counter-based sampling: the fault sequence is a pure function of
    // (plan seed, ordinal, launch index), so a retry (the next launch
    // index) re-samples and runs are reproducible across host threading.
    util::Xoshiro256 rng = util::stream(fault_seed_, static_cast<std::uint64_t>(ordinal_),
                                        launch_counter_);
    if (rng.bernoulli(fault_.transient_probability)) {
      clock_.advance_seconds(t);  // the failed launch still occupied the device
      ++transients_injected_;
      throw TransientFaultError(ordinal_, "transient kernel failure on " + spec_.name);
    }
  }
  clock_.advance_seconds(t);
  ++kernels_;
  if (block_fn) {
    // Blocks are independent by construction (as on real hardware), so the
    // host executes them across its threads; virtual time is already
    // accounted above and does not depend on host speed.
    util::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(launch.grid_blocks),
        [&](std::size_t b) { block_fn(static_cast<std::int64_t>(b)); });
  }
}

void Device::allocate(double bytes) {
  const double capacity = spec_.dram_gb * 1e9;
  if (allocated_bytes_ + bytes > capacity) {
    throw std::runtime_error("Device::allocate: out of memory on " + spec_.name);
  }
  allocated_bytes_ += bytes;
}

void Device::copy_to_device(double bytes) {
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
}

void Device::copy_from_device(double bytes) {
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
}

}  // namespace metadock::gpusim
