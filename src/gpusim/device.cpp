#include "gpusim/device.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace metadock::gpusim {

void Device::set_observer(obs::Observer* observer) {
  obs_ = observer;
  if (obs_ != nullptr) {
    obs_->tracer.set_track_name(ordinal_, "GPU" + std::to_string(ordinal_) + " " + spec_.name);
  }
}

std::string Device::metric_name(const char* what) const {
  return "device." + std::to_string(ordinal_) + "." + what;
}

void Device::launch(const KernelLaunch& launch, const KernelCost& cost,
                    const std::function<void(std::int64_t)>& block_fn) {
  if (is_dead()) {
    dead_ = true;
    if (obs_ != nullptr) {
      obs_->tracer.mark("launch_on_dead_device", "fault", ordinal_, clock_.nanoseconds());
    }
    throw DeviceLostError(ordinal_, "device " + spec_.name + " is dead");
  }
  const double now = clock_.seconds();
  const std::uint64_t start_ns = clock_.nanoseconds();
  const double t = kernel_time_s(spec_, launch, cost, cost_params_) * slowdown();
  if (now + t >= fault_.death_at_seconds) {
    // The launch crosses the death boundary: the device worked until the
    // moment it died and the in-flight slice is lost.
    clock_.advance_seconds(fault_.death_at_seconds - now);
    dead_ = true;
    if (obs_ != nullptr) {
      obs::Span s;
      s.name = "kernel(lost)";
      s.category = "fault";
      s.device = ordinal_;
      s.start_ns = start_ns;
      s.dur_ns = clock_.nanoseconds() - start_ns;
      s.args = {{"blocks", static_cast<double>(launch.grid_blocks)}};
      obs_->tracer.record(std::move(s));
      obs_->tracer.mark("device_lost", "fault", ordinal_, clock_.nanoseconds());
    }
    throw DeviceLostError(ordinal_, "device " + spec_.name + " died mid-kernel");
  }
  ++launch_counter_;
  if (fault_.transient_probability > 0.0) {
    // Counter-based sampling: the fault sequence is a pure function of
    // (plan seed, ordinal, launch index), so a retry (the next launch
    // index) re-samples and runs are reproducible across host threading.
    util::Xoshiro256 rng = util::stream(fault_seed_, static_cast<std::uint64_t>(ordinal_),
                                        launch_counter_);
    if (rng.bernoulli(fault_.transient_probability)) {
      clock_.advance_seconds(t);  // the failed launch still occupied the device
      ++transients_injected_;
      if (obs_ != nullptr) {
        obs::Span s;
        s.name = "kernel(transient)";
        s.category = "fault";
        s.device = ordinal_;
        s.start_ns = start_ns;
        s.dur_ns = clock_.nanoseconds() - start_ns;
        s.args = {{"blocks", static_cast<double>(launch.grid_blocks)}};
        obs_->tracer.record(std::move(s));
        obs_->metrics.counter(metric_name("transient_faults")).add();
      }
      throw TransientFaultError(ordinal_, "transient kernel failure on " + spec_.name);
    }
  }
  clock_.advance_seconds(t);
  ++kernels_;
  if (obs_ != nullptr) {
    obs::Span s;
    s.name = "kernel";
    s.category = "kernel";
    s.device = ordinal_;
    s.start_ns = start_ns;
    s.dur_ns = clock_.nanoseconds() - start_ns;
    s.args = {{"blocks", static_cast<double>(launch.grid_blocks)},
              {"gflops", t > 0.0 ? cost.flops / t * 1e-9 : 0.0},
              {"gbps", t > 0.0 ? cost.global_bytes / t * 1e-9 : 0.0}};
    obs_->tracer.record(std::move(s));
    obs_->metrics.counter(metric_name("kernels")).add();
    obs_->metrics.counter(metric_name("flops")).add(cost.flops);
    obs_->metrics.counter(metric_name("global_bytes")).add(cost.global_bytes);
    obs_->metrics.histogram(metric_name("kernel_seconds")).record(t);
    if (t > 0.0) {
      obs_->metrics.histogram(metric_name("achieved_gflops")).record(cost.flops / t * 1e-9);
      obs_->metrics.histogram(metric_name("achieved_gbps")).record(cost.global_bytes / t * 1e-9);
    }
  }
  if (block_fn) {
    // Blocks are independent by construction (as on real hardware), so the
    // host executes them across its threads; virtual time is already
    // accounted above and does not depend on host speed.
    util::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(launch.grid_blocks),
        [&](std::size_t b) { block_fn(static_cast<std::int64_t>(b)); });
  }
}

void Device::allocate(double bytes) {
  const double capacity = spec_.dram_gb * 1e9;
  if (allocated_bytes_ + bytes > capacity) {
    throw std::runtime_error("Device::allocate: out of memory on " + spec_.name);
  }
  allocated_bytes_ += bytes;
}

void Device::copy_to_device(double bytes) {
  const std::uint64_t start_ns = clock_.nanoseconds();
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
  if (obs_ != nullptr) {
    obs::Span s;
    s.name = "h2d";
    s.category = "copy";
    s.device = ordinal_;
    s.start_ns = start_ns;
    s.dur_ns = clock_.nanoseconds() - start_ns;
    s.args = {{"bytes", bytes}};
    obs_->tracer.record(std::move(s));
    obs_->metrics.counter(metric_name("h2d_bytes")).add(bytes);
  }
}

void Device::copy_from_device(double bytes) {
  const std::uint64_t start_ns = clock_.nanoseconds();
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
  if (obs_ != nullptr) {
    obs::Span s;
    s.name = "d2h";
    s.category = "copy";
    s.device = ordinal_;
    s.start_ns = start_ns;
    s.dur_ns = clock_.nanoseconds() - start_ns;
    s.args = {{"bytes", bytes}};
    obs_->tracer.record(std::move(s));
    obs_->metrics.counter(metric_name("d2h_bytes")).add(bytes);
  }
}

}  // namespace metadock::gpusim
