#include "gpusim/device.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace metadock::gpusim {
namespace {

/// Seconds -> ns with the same rounding as VirtualClock::advance_seconds,
/// so stream cursors and the merged device clock agree bit-for-bit.
std::uint64_t delta_ns(double s) noexcept {
  return s > 0.0 ? static_cast<std::uint64_t>(s * 1e9 + 0.5) : 0;
}

double to_seconds(std::uint64_t ns) noexcept { return static_cast<double>(ns) * 1e-9; }

std::string stream_track_name(int ordinal, int stream) {
  return "device." + std::to_string(ordinal) + ".stream." + std::to_string(stream);
}

}  // namespace

void Device::set_observer(obs::Observer* observer) {
  obs_ = observer;
  if (obs_ != nullptr) {
    obs_->tracer.set_track_name(ordinal_, "GPU" + std::to_string(ordinal_) + " " + spec_.name);
    for (int s = 1; s < stream_count(); ++s) {
      obs_->tracer.set_track_name(obs::stream_track(ordinal_, s), stream_track_name(ordinal_, s));
    }
  }
}

std::string Device::metric_name(const char* what) const {
  return "device." + std::to_string(ordinal_) + "." + what;
}

int Device::create_stream() {
  streams_.push_back(clock_.nanoseconds());
  const int id = static_cast<int>(streams_.size()) - 1;
  if (obs_ != nullptr) {
    obs_->tracer.set_track_name(obs::stream_track(ordinal_, id), stream_track_name(ordinal_, id));
  }
  return id;
}

std::uint64_t& Device::stream_cursor(int stream) {
  if (stream < 0 || stream >= stream_count()) {
    throw std::out_of_range("Device: bad stream id");
  }
  return streams_[static_cast<std::size_t>(stream)];
}

std::uint64_t Device::stream_ns(int stream) const {
  if (stream < 0 || stream >= stream_count()) {
    throw std::out_of_range("Device: bad stream id");
  }
  return streams_[static_cast<std::size_t>(stream)];
}

Event Device::record_event(int stream) const { return Event{stream_ns(stream)}; }

void Device::wait_event(int stream, const Event& event) {
  std::uint64_t& cursor = stream_cursor(stream);
  cursor = std::max(cursor, event.ns);
}

double Device::stream_seconds(int stream) const { return to_seconds(stream_ns(stream)); }

void Device::advance_stream_seconds(int stream, double s) {
  stream_cursor(stream) += delta_ns(s);
}

void Device::sync() noexcept {
  std::uint64_t horizon = clock_.nanoseconds();
  for (const std::uint64_t cursor : streams_) horizon = std::max(horizon, cursor);
  horizon = std::max(std::max(horizon, h2d_engine_ns_),
                     std::max(d2h_engine_ns_, compute_engine_ns_));
  // The stream-aware merge point: all gpusim clock mutation funnels through
  // here so cursors and the clock can never disagree (lint rule MDL008).
  clock_.advance_ns(horizon - clock_.nanoseconds());  // metadock-lint: allow(raw-clock-advance)
  align_timelines_to_clock();
}

void Device::align_timelines_to_clock() noexcept {
  const std::uint64_t now = clock_.nanoseconds();
  for (std::uint64_t& cursor : streams_) cursor = now;
  h2d_engine_ns_ = now;
  d2h_engine_ns_ = now;
  compute_engine_ns_ = now;
}

void Device::advance_seconds(double s) noexcept {
  sync();
  // A host stall applies to the whole (synchronized) device.
  clock_.advance_seconds(s);  // metadock-lint: allow(raw-clock-advance)
  align_timelines_to_clock();
}

void Device::die_at_boundary(std::uint64_t boundary_ns) noexcept {
  // A death mid-stream stops every stream at the boundary: no timeline may
  // show progress past the moment the card fell off the bus.
  for (std::uint64_t& cursor : streams_) cursor = std::max(cursor, boundary_ns);
  h2d_engine_ns_ = std::max(h2d_engine_ns_, boundary_ns);
  d2h_engine_ns_ = std::max(d2h_engine_ns_, boundary_ns);
  compute_engine_ns_ = std::max(compute_engine_ns_, boundary_ns);
  dead_ = true;
}

void Device::launch(const KernelLaunch& launch, const KernelCost& cost,
                    const std::function<void(std::int64_t)>& block_fn) {
  // Synchronous launch == async on the default stream + device sync; the
  // sync also runs on the fault paths, so the merged clock lands exactly
  // where the pre-stream device model left it.
  try {
    launch_async(kDefaultStream, launch, cost, block_fn);
  } catch (...) {
    sync();
    throw;
  }
  sync();
}

void Device::launch_async(int stream, const KernelLaunch& launch, const KernelCost& cost,
                          const std::function<void(std::int64_t)>& block_fn) {
  std::uint64_t& cursor = stream_cursor(stream);
  const std::uint64_t start_ns = std::max(cursor, compute_engine_ns_);
  const double start_s = to_seconds(start_ns);
  const int track = obs::stream_track(ordinal_, stream);
  if (dead_ || start_s >= fault_.death_at_seconds) {
    dead_ = true;
    if (obs_ != nullptr) {
      obs_->tracer.mark("launch_on_dead_device", "fault", track, start_ns);
    }
    throw DeviceLostError(ordinal_, "device " + spec_.name + " is dead");
  }
  const double t = kernel_time_s(spec_, launch, cost, cost_params_) * slowdown_at(start_s);
  if (start_s + t >= fault_.death_at_seconds) {
    // The launch crosses the death boundary: the device worked until the
    // moment it died and the in-flight slice is lost.
    const std::uint64_t boundary_ns = start_ns + delta_ns(fault_.death_at_seconds - start_s);
    die_at_boundary(boundary_ns);
    if (obs_ != nullptr) {
      obs::Span s;
      s.name = "kernel(lost)";
      s.category = "fault";
      s.device = track;
      s.start_ns = start_ns;
      s.dur_ns = boundary_ns - start_ns;
      s.args = {{"blocks", static_cast<double>(launch.grid_blocks)}};
      obs_->tracer.record(std::move(s));
      obs_->tracer.mark("device_lost", "fault", track, boundary_ns);
    }
    throw DeviceLostError(ordinal_, "device " + spec_.name + " died mid-kernel");
  }
  ++launch_counter_;
  if (fault_.transient_probability > 0.0) {
    // Counter-based sampling: the fault sequence is a pure function of
    // (plan seed, ordinal, launch index), so a retry (the next launch
    // index) re-samples and runs are reproducible across host threading.
    util::Xoshiro256 rng = util::stream(fault_seed_, static_cast<std::uint64_t>(ordinal_),
                                        launch_counter_);
    if (rng.bernoulli(fault_.transient_probability)) {
      // The failed launch still occupied this stream and the SMs; sibling
      // streams keep their in-flight work untouched.
      const std::uint64_t end_ns = start_ns + delta_ns(t);
      cursor = end_ns;
      compute_engine_ns_ = std::max(compute_engine_ns_, end_ns);
      ++transients_injected_;
      if (obs_ != nullptr) {
        obs::Span s;
        s.name = "kernel(transient)";
        s.category = "fault";
        s.device = track;
        s.start_ns = start_ns;
        s.dur_ns = end_ns - start_ns;
        s.args = {{"blocks", static_cast<double>(launch.grid_blocks)}};
        obs_->tracer.record(std::move(s));
        obs_->metrics.counter(metric_name("transient_faults")).add();
      }
      throw TransientFaultError(ordinal_, "transient kernel failure on " + spec_.name);
    }
  }
  const std::uint64_t end_ns = start_ns + delta_ns(t);
  cursor = end_ns;
  compute_engine_ns_ = std::max(compute_engine_ns_, end_ns);
  ++kernels_;
  if (obs_ != nullptr) {
    obs::Span s;
    s.name = "kernel";
    s.category = "kernel";
    s.device = track;
    s.start_ns = start_ns;
    s.dur_ns = end_ns - start_ns;
    s.args = {{"blocks", static_cast<double>(launch.grid_blocks)},
              {"gflops", t > 0.0 ? cost.flops / t * 1e-9 : 0.0},
              {"gbps", t > 0.0 ? cost.global_bytes / t * 1e-9 : 0.0}};
    obs_->tracer.record(std::move(s));
    obs_->metrics.counter(metric_name("kernels")).add();
    obs_->metrics.counter(metric_name("flops")).add(cost.flops);
    obs_->metrics.counter(metric_name("global_bytes")).add(cost.global_bytes);
    obs_->metrics.histogram(metric_name("kernel_seconds")).record(t);
    if (t > 0.0) {
      obs_->metrics.histogram(metric_name("achieved_gflops")).record(cost.flops / t * 1e-9);
      obs_->metrics.histogram(metric_name("achieved_gbps")).record(cost.global_bytes / t * 1e-9);
    }
  }
  if (block_fn) {
    // Blocks are independent by construction (as on real hardware), so the
    // host executes them across its threads; virtual time is already
    // accounted above and does not depend on host speed.
    util::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(launch.grid_blocks),
        [&](std::size_t b) { block_fn(static_cast<std::int64_t>(b)); });
  }
}

void Device::allocate(double bytes) {
  const double capacity = spec_.dram_gb * 1e9;
  if (allocated_bytes_ + bytes > capacity) {
    throw std::runtime_error("Device::allocate: out of memory on " + spec_.name);
  }
  allocated_bytes_ += bytes;
}

void Device::do_copy(int stream, double bytes, bool to_device, bool fault_checked) {
  std::uint64_t& cursor = stream_cursor(stream);
  std::uint64_t& engine = to_device ? h2d_engine_ns_ : d2h_engine_ns_;
  const std::uint64_t start_ns = std::max(cursor, engine);
  const double t = transfer_time_s(spec_, bytes, cost_params_);
  const int track = obs::stream_track(ordinal_, stream);
  if (fault_checked) {
    const double start_s = to_seconds(start_ns);
    if (dead_ || start_s >= fault_.death_at_seconds) {
      dead_ = true;
      if (obs_ != nullptr) {
        obs_->tracer.mark("copy_on_dead_device", "fault", track, start_ns);
      }
      throw DeviceLostError(ordinal_, "device " + spec_.name + " is dead");
    }
    if (start_s + t >= fault_.death_at_seconds) {
      const std::uint64_t boundary_ns = start_ns + delta_ns(fault_.death_at_seconds - start_s);
      die_at_boundary(boundary_ns);
      if (obs_ != nullptr) {
        obs::Span s;
        s.name = to_device ? "h2d(lost)" : "d2h(lost)";
        s.category = "fault";
        s.device = track;
        s.start_ns = start_ns;
        s.dur_ns = boundary_ns - start_ns;
        s.args = {{"bytes", bytes}};
        obs_->tracer.record(std::move(s));
        obs_->tracer.mark("device_lost", "fault", track, boundary_ns);
      }
      throw DeviceLostError(ordinal_, "device " + spec_.name + " died mid-copy");
    }
  }
  const std::uint64_t end_ns = start_ns + delta_ns(t);
  cursor = end_ns;
  engine = std::max(engine, end_ns);
  bytes_moved_ += bytes;
  if (obs_ != nullptr) {
    obs::Span s;
    s.name = to_device ? "h2d" : "d2h";
    s.category = "copy";
    s.device = track;
    s.start_ns = start_ns;
    s.dur_ns = end_ns - start_ns;
    s.args = {{"bytes", bytes}};
    obs_->tracer.record(std::move(s));
    obs_->metrics.counter(metric_name(to_device ? "h2d_bytes" : "d2h_bytes")).add(bytes);
  }
}

void Device::copy_to_device(double bytes) {
  // The synchronous copies are deliberately not fault-checked: Algorithm 2
  // charges a dead card's batch-epilogue DMA bookkeeping too, and the
  // scheduler learns about the death from the next launch.
  do_copy(kDefaultStream, bytes, /*to_device=*/true, /*fault_checked=*/false);
  sync();
}

void Device::copy_from_device(double bytes) {
  do_copy(kDefaultStream, bytes, /*to_device=*/false, /*fault_checked=*/false);
  sync();
}

void Device::copy_to_device_async(int stream, double bytes) {
  do_copy(stream, bytes, /*to_device=*/true, /*fault_checked=*/true);
}

void Device::copy_from_device_async(int stream, double bytes) {
  do_copy(stream, bytes, /*to_device=*/false, /*fault_checked=*/true);
}

}  // namespace metadock::gpusim
