#include "gpusim/device.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace metadock::gpusim {

void Device::launch(const KernelLaunch& launch, const KernelCost& cost,
                    const std::function<void(std::int64_t)>& block_fn) {
  clock_.advance_seconds(kernel_time_s(spec_, launch, cost, cost_params_));
  ++kernels_;
  if (block_fn) {
    // Blocks are independent by construction (as on real hardware), so the
    // host executes them across its threads; virtual time is already
    // accounted above and does not depend on host speed.
    util::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(launch.grid_blocks),
        [&](std::size_t b) { block_fn(static_cast<std::int64_t>(b)); });
  }
}

void Device::allocate(double bytes) {
  const double capacity = spec_.dram_gb * 1e9;
  if (allocated_bytes_ + bytes > capacity) {
    throw std::runtime_error("Device::allocate: out of memory on " + spec_.name);
  }
  allocated_bytes_ += bytes;
}

void Device::copy_to_device(double bytes) {
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
}

void Device::copy_from_device(double bytes) {
  clock_.advance_seconds(transfer_time_s(spec_, bytes, cost_params_));
  bytes_moved_ += bytes;
}

}  // namespace metadock::gpusim
