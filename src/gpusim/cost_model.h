// Analytic timing model for virtual kernel launches and transfers.
//
// The model is a roofline with three corrections that the paper's results
// hinge on:
//   1. SM-granular work quantization — a launch cannot finish faster than
//      the busiest SM (ceil(blocks / SMs) block rounds);
//   2. a latency-hiding occupancy factor — throughput degrades when a
//      launch supplies too few resident warps per SM (this is what makes
//      small Improve batches, e.g. metaheuristic M3's 20% local search,
//      less GPU-efficient than M4's giant batches, exactly as measured);
//   3. fixed per-launch overhead.
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/launch.h"

namespace metadock::gpusim {

struct CostModelParams {
  /// Fixed kernel launch overhead (driver + dispatch), seconds.
  double launch_overhead_s = 8e-6;
  /// Host<->device transfer latency per call, seconds.
  double transfer_latency_s = 15e-6;
  /// Resident warps per SM needed to fully hide pipeline/memory latency.
  double warps_to_hide_latency = 16.0;
  /// Floor of the occupancy factor (a single warp still makes progress).
  double min_occupancy_factor = 0.12;
};

/// Virtual seconds a launch takes on `dev`.  Pure function of its inputs.
[[nodiscard]] double kernel_time_s(const DeviceSpec& dev, const KernelLaunch& launch,
                                   const KernelCost& cost, const CostModelParams& params = {});

/// Virtual seconds to move `bytes` across PCIe (one direction).
[[nodiscard]] double transfer_time_s(const DeviceSpec& dev, double bytes,
                                     const CostModelParams& params = {});

}  // namespace metadock::gpusim
