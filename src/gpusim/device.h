// A virtual CUDA device: spec + virtual clock + transfer/energy accounting.
//
// `launch` really executes the supplied per-block function (so numeric
// results are genuine) while advancing the virtual clock by the analytic
// cost model — the separation that lets one host reproduce the timing
// behaviour of six GPUs it does not have.
//
// Streams & events: the device carries per-stream virtual timelines
// (cursors in ns) next to three engine timelines (H2D copy, D2H copy,
// compute).  An async op starts at max(stream cursor, engine timeline) and
// advances both to its end, so copies on one stream overlap kernels on
// another while same-engine ops serialize — the cudaStream_t contention
// model.  `record_event`/`wait_event` express cross-stream dependencies;
// `sync()` (cudaDeviceSynchronize) merges every timeline into the device
// clock and re-aligns them.  The synchronous API is exactly async on the
// default stream followed by sync, so legacy callers see bit-identical
// clocks.  Fault semantics per stream: a death clamps *all* timelines to
// the boundary (every stream stops when the card falls off the bus); a
// transient occupies only the launching stream and the compute engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault_plan.h"
#include "gpusim/launch.h"
#include "gpusim/virtual_clock.h"
#include "obs/observer.h"

namespace metadock::gpusim {

/// A recorded point on a stream's timeline (cudaEvent_t equivalent).
struct Event {
  std::uint64_t ns = 0;
};

class Device {
 public:
  /// The always-present default stream; the synchronous API issues on it.
  static constexpr int kDefaultStream = 0;

  explicit Device(DeviceSpec spec, int ordinal = 0)
      : spec_(std::move(spec)), ordinal_(ordinal) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int ordinal() const noexcept { return ordinal_; }

  /// Launches a kernel: advances the clock by the cost model and, when
  /// `block_fn` is provided, executes it for every block index in order.
  ///
  /// Fault injection (see fault_plan.h): throws DeviceLostError when the
  /// device is dead or dies during this launch (the clock stops at the
  /// death boundary; block_fn never runs), and TransientFaultError when the
  /// seeded per-launch failure fires (the clock pays for the failed launch;
  /// block_fn never runs, so no partial results escape).
  void launch(const KernelLaunch& launch, const KernelCost& cost,
              const std::function<void(std::int64_t)>& block_fn = nullptr);

  // --- Streams & events --------------------------------------------------

  /// cudaStreamCreate: a new stream whose cursor starts at the current
  /// device clock.  Returns its id (>= 1; stream 0 always exists).
  int create_stream();
  [[nodiscard]] int stream_count() const noexcept {
    return static_cast<int>(streams_.size());
  }

  /// Async kernel launch on `stream`: starts at max(stream cursor, compute
  /// engine), advances both; the device clock moves only at sync().  Fault
  /// semantics: a dead device (or a launch that would start past the death
  /// time) throws immediately; a launch crossing the boundary clamps every
  /// timeline to it; a transient advances only this stream + the compute
  /// engine, so sibling streams keep their in-flight work.
  void launch_async(int stream, const KernelLaunch& launch, const KernelCost& cost,
                    const std::function<void(std::int64_t)>& block_fn = nullptr);
  /// Async H2D on `stream`; same-direction copies serialize on the shared
  /// PCIe engine.  Throws DeviceLostError on/through the death boundary.
  void copy_to_device_async(int stream, double bytes);
  /// Async D2H on `stream` (own engine: full-duplex against H2D).
  void copy_from_device_async(int stream, double bytes);

  /// cudaEventRecord: snapshots the stream's cursor.
  [[nodiscard]] Event record_event(int stream) const;
  /// cudaStreamWaitEvent: the stream will not start later work before the
  /// recorded point (cursor = max(cursor, event)).
  void wait_event(int stream, const Event& event);
  /// cudaDeviceSynchronize: merges every stream cursor and engine timeline
  /// into the device clock, then re-aligns them to it.
  void sync() noexcept;

  /// Virtual time of one stream's cursor (>= busy_seconds() mid-epoch).
  [[nodiscard]] double stream_seconds(int stream) const;
  /// Host-imposed stall on one stream only (e.g. a per-stream retry
  /// backoff); sibling streams keep running.
  void advance_stream_seconds(int stream, double s);

  // -----------------------------------------------------------------------

  /// Attaches an observer (nullable = off): every launch and transfer is
  /// recorded as a span on this device's virtual-clock timeline, with
  /// achieved-GFLOPS/GB/s histograms derived from the KernelCost.  Spans
  /// from created streams land on "device.N.stream.S" tracks.
  void set_observer(obs::Observer* observer);
  [[nodiscard]] obs::Observer* observer() const noexcept { return obs_; }

  /// Attaches a fault description (from a gpusim::FaultPlan).
  void set_fault(const DeviceFaultSpec& fault, std::uint64_t plan_seed) noexcept {
    fault_ = fault;
    fault_seed_ = plan_seed;
  }
  [[nodiscard]] const DeviceFaultSpec& fault() const noexcept { return fault_; }

  /// True once the device's clock has reached its planned death time (or a
  /// launch crossed the boundary).
  [[nodiscard]] bool is_dead() const noexcept {
    return dead_ || clock_.seconds() >= fault_.death_at_seconds;
  }

  /// Current kernel slowdown: straggle_factor once the straggle onset has
  /// passed, 1.0 before.
  [[nodiscard]] double slowdown() const noexcept {
    return clock_.seconds() >= fault_.straggle_after_seconds ? fault_.straggle_factor : 1.0;
  }

  /// Transient failures this device has injected so far.
  [[nodiscard]] std::uint64_t transient_faults_injected() const noexcept {
    return transients_injected_;
  }

  /// Advances the whole device by host-imposed stall time (e.g. a
  /// scheduler's dispatch latency): merges outstanding stream work first,
  /// then moves the clock and every timeline together.
  void advance_seconds(double s) noexcept;

  /// Reserves device global memory; throws std::runtime_error when the
  /// allocation would exceed the card's DRAM (cudaMalloc failure).
  void allocate(double bytes);
  /// Releases a previous reservation.
  void deallocate(double bytes) noexcept {
    allocated_bytes_ = std::max(0.0, allocated_bytes_ - bytes);
  }
  [[nodiscard]] double allocated_bytes() const noexcept { return allocated_bytes_; }

  /// Host -> device transfer of `bytes`.
  void copy_to_device(double bytes);
  /// Device -> host transfer of `bytes`.
  void copy_from_device(double bytes);

  [[nodiscard]] double busy_seconds() const noexcept { return clock_.seconds(); }
  [[nodiscard]] std::uint64_t kernels_launched() const noexcept { return kernels_; }
  [[nodiscard]] double bytes_transferred() const noexcept { return bytes_moved_; }

  /// Modeled energy: TDP x busy time x activity factor.
  [[nodiscard]] double energy_joules() const noexcept {
    return spec_.tdp_watts * busy_seconds() * kActivityFactor;
  }

  /// Restores the freshly-constructed state: clock at zero, one (default)
  /// stream, no fault plan attached.  A Runtime re-attaches its plan after
  /// resetting (Runtime::reset_all); a standalone reset really is a new
  /// device.
  void reset() noexcept {
    clock_.reset();
    streams_.assign(1, 0);
    h2d_engine_ns_ = 0;
    d2h_engine_ns_ = 0;
    compute_engine_ns_ = 0;
    kernels_ = 0;
    bytes_moved_ = 0.0;
    allocated_bytes_ = 0.0;
    fault_ = DeviceFaultSpec{};
    fault_seed_ = 0;
    dead_ = false;
    launch_counter_ = 0;
    transients_injected_ = 0;
  }

  CostModelParams& cost_params() noexcept { return cost_params_; }

 private:
  static constexpr double kActivityFactor = 0.85;

  /// "device.<ordinal>.<what>" metric key.
  [[nodiscard]] std::string metric_name(const char* what) const;

  /// Bounds-checked cursor access.
  [[nodiscard]] std::uint64_t& stream_cursor(int stream);
  [[nodiscard]] std::uint64_t stream_ns(int stream) const;
  /// Straggle factor as of a (stream-local) start time.
  [[nodiscard]] double slowdown_at(double start_seconds) const noexcept {
    return start_seconds >= fault_.straggle_after_seconds ? fault_.straggle_factor : 1.0;
  }
  /// Clamps every stream cursor and engine timeline to the death boundary
  /// and marks the device dead: no timeline shows progress past it.
  void die_at_boundary(std::uint64_t boundary_ns) noexcept;
  /// Moves all stream cursors and engine timelines to the current clock.
  void align_timelines_to_clock() noexcept;
  /// Shared copy core; `fault_checked` is false for the legacy synchronous
  /// copies (Algorithm 2 charges a dead card's batch epilogue DMA too).
  void do_copy(int stream, double bytes, bool to_device, bool fault_checked);

  DeviceSpec spec_;
  int ordinal_ = 0;
  obs::Observer* obs_ = nullptr;
  VirtualClock clock_;
  CostModelParams cost_params_;
  /// Per-stream cursors, ns; index 0 is the default stream.
  std::vector<std::uint64_t> streams_ = std::vector<std::uint64_t>(1, 0);
  /// Engine timelines: ops sharing an engine serialize against each other.
  std::uint64_t h2d_engine_ns_ = 0;
  std::uint64_t d2h_engine_ns_ = 0;
  std::uint64_t compute_engine_ns_ = 0;
  std::uint64_t kernels_ = 0;
  double bytes_moved_ = 0.0;
  double allocated_bytes_ = 0.0;
  DeviceFaultSpec fault_;
  std::uint64_t fault_seed_ = 0;
  bool dead_ = false;
  std::uint64_t launch_counter_ = 0;
  std::uint64_t transients_injected_ = 0;
};

}  // namespace metadock::gpusim
