// A virtual CUDA device: spec + virtual clock + transfer/energy accounting.
//
// `launch` really executes the supplied per-block function (so numeric
// results are genuine) while advancing the virtual clock by the analytic
// cost model — the separation that lets one host reproduce the timing
// behaviour of six GPUs it does not have.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault_plan.h"
#include "gpusim/launch.h"
#include "gpusim/virtual_clock.h"
#include "obs/observer.h"

namespace metadock::gpusim {

class Device {
 public:
  explicit Device(DeviceSpec spec, int ordinal = 0)
      : spec_(std::move(spec)), ordinal_(ordinal) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int ordinal() const noexcept { return ordinal_; }

  /// Launches a kernel: advances the clock by the cost model and, when
  /// `block_fn` is provided, executes it for every block index in order.
  ///
  /// Fault injection (see fault_plan.h): throws DeviceLostError when the
  /// device is dead or dies during this launch (the clock stops at the
  /// death boundary; block_fn never runs), and TransientFaultError when the
  /// seeded per-launch failure fires (the clock pays for the failed launch;
  /// block_fn never runs, so no partial results escape).
  void launch(const KernelLaunch& launch, const KernelCost& cost,
              const std::function<void(std::int64_t)>& block_fn = nullptr);

  /// Attaches an observer (nullable = off): every launch and transfer is
  /// recorded as a span on this device's virtual-clock timeline, with
  /// achieved-GFLOPS/GB/s histograms derived from the KernelCost.
  void set_observer(obs::Observer* observer);
  [[nodiscard]] obs::Observer* observer() const noexcept { return obs_; }

  /// Attaches a fault description (from a gpusim::FaultPlan).
  void set_fault(const DeviceFaultSpec& fault, std::uint64_t plan_seed) noexcept {
    fault_ = fault;
    fault_seed_ = plan_seed;
  }
  [[nodiscard]] const DeviceFaultSpec& fault() const noexcept { return fault_; }

  /// True once the device's clock has reached its planned death time (or a
  /// launch crossed the boundary).
  [[nodiscard]] bool is_dead() const noexcept {
    return dead_ || clock_.seconds() >= fault_.death_at_seconds;
  }

  /// Current kernel slowdown: straggle_factor once the straggle onset has
  /// passed, 1.0 before.
  [[nodiscard]] double slowdown() const noexcept {
    return clock_.seconds() >= fault_.straggle_after_seconds ? fault_.straggle_factor : 1.0;
  }

  /// Transient failures this device has injected so far.
  [[nodiscard]] std::uint64_t transient_faults_injected() const noexcept {
    return transients_injected_;
  }

  /// Advances the clock by host-imposed stall time (e.g. a scheduler's
  /// dispatch latency).
  void advance_seconds(double s) noexcept { clock_.advance_seconds(s); }

  /// Reserves device global memory; throws std::runtime_error when the
  /// allocation would exceed the card's DRAM (cudaMalloc failure).
  void allocate(double bytes);
  /// Releases a previous reservation.
  void deallocate(double bytes) noexcept {
    allocated_bytes_ = std::max(0.0, allocated_bytes_ - bytes);
  }
  [[nodiscard]] double allocated_bytes() const noexcept { return allocated_bytes_; }

  /// Host -> device transfer of `bytes`.
  void copy_to_device(double bytes);
  /// Device -> host transfer of `bytes`.
  void copy_from_device(double bytes);

  [[nodiscard]] double busy_seconds() const noexcept { return clock_.seconds(); }
  [[nodiscard]] std::uint64_t kernels_launched() const noexcept { return kernels_; }
  [[nodiscard]] double bytes_transferred() const noexcept { return bytes_moved_; }

  /// Modeled energy: TDP x busy time x activity factor.
  [[nodiscard]] double energy_joules() const noexcept {
    return spec_.tdp_watts * busy_seconds() * kActivityFactor;
  }

  void reset() noexcept {
    clock_.reset();
    kernels_ = 0;
    bytes_moved_ = 0.0;
    allocated_bytes_ = 0.0;
    dead_ = false;
    launch_counter_ = 0;
    transients_injected_ = 0;
  }

  CostModelParams& cost_params() noexcept { return cost_params_; }

 private:
  static constexpr double kActivityFactor = 0.85;

  /// "device.<ordinal>.<what>" metric key.
  [[nodiscard]] std::string metric_name(const char* what) const;

  DeviceSpec spec_;
  int ordinal_ = 0;
  obs::Observer* obs_ = nullptr;
  VirtualClock clock_;
  CostModelParams cost_params_;
  std::uint64_t kernels_ = 0;
  double bytes_moved_ = 0.0;
  double allocated_bytes_ = 0.0;
  DeviceFaultSpec fault_;
  std::uint64_t fault_seed_ = 0;
  bool dead_ = false;
  std::uint64_t launch_counter_ = 0;
  std::uint64_t transients_injected_ = 0;
};

}  // namespace metadock::gpusim
