#include "gpusim/device_spec.h"

#include <algorithm>

namespace metadock::gpusim {

int DeviceSpec::resident_blocks_per_sm(int threads_per_block,
                                       std::size_t shared_bytes_per_block) const {
  if (threads_per_block <= 0 || threads_per_block > max_threads_per_block) return 0;
  int by_threads = max_threads_per_sm / threads_per_block;
  int by_shared = max_blocks_per_sm;
  if (shared_bytes_per_block > 0) {
    const std::size_t shared_per_sm = static_cast<std::size_t>(shared_mem_per_sm_kb) * 1024;
    if (shared_bytes_per_block > shared_per_sm) return 0;
    by_shared = static_cast<int>(shared_per_sm / shared_bytes_per_block);
  }
  return std::max(0, std::min({max_blocks_per_sm, by_threads, by_shared}));
}

}  // namespace metadock::gpusim
