// Static description of a (virtual) CUDA device.
//
// Fields are transcribed from Tables 1-3 of the paper.  The two efficiency
// knobs are the calibration constants of the reproduction: they capture how
// much of a card's peak the docking kernel sustains (real-world kernels on
// Kepler sustained a much lower fraction of peak than on Fermi, which is why
// the paper measures a 1.56x — not 3.2x — heterogeneous gain on Hertz).
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/arch.h"

namespace metadock::gpusim {

struct DeviceSpec {
  std::string name;
  Arch arch = Arch::kFermi;

  int sm_count = 16;          // streaming multiprocessors
  int cores_per_sm = 32;      // CUDA cores per SM
  double clock_ghz = 1.0;     // shader clock
  int max_threads_per_sm = 1536;
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 8;  // resident-block limit (8 on Fermi, 16 Kepler+)
  int shared_mem_per_sm_kb = 48;
  int registers_per_sm = 32768;
  double dram_gb = 1.5;       // global memory size
  double dram_bw_gbs = 150.0; // global memory bandwidth
  double pcie_bw_gbs = 6.0;   // host<->device effective bandwidth
  double tdp_watts = 225.0;

  /// Sustained fraction of peak FLOP throughput for the docking kernel.
  double compute_efficiency = 0.55;
  /// Sustained fraction of peak DRAM bandwidth for streaming loads.
  double memory_efficiency = 0.75;

  [[nodiscard]] int ccc_major() const { return arch_ccc_major(arch); }
  [[nodiscard]] int total_cores() const { return sm_count * cores_per_sm; }

  /// Peak single-precision GFLOPS (FMA counted as two flops).
  [[nodiscard]] double peak_gflops() const {
    return static_cast<double>(total_cores()) * clock_ghz * 2.0;
  }

  /// Sustained GFLOPS under the docking kernel.
  [[nodiscard]] double sustained_gflops() const { return peak_gflops() * compute_efficiency; }

  /// Resident blocks per SM for a given block shape (threads + dynamic
  /// shared memory), i.e. the occupancy calculation.
  [[nodiscard]] int resident_blocks_per_sm(int threads_per_block,
                                           std::size_t shared_bytes_per_block) const;
};

}  // namespace metadock::gpusim
