#include "gpusim/device_db.h"

namespace metadock::gpusim {

DeviceSpec geforce_gtx590() {
  DeviceSpec d;
  d.name = "GeForce GTX 590";
  d.arch = Arch::kFermi;
  d.sm_count = 16;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.215;
  d.max_threads_per_sm = 1536;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm_kb = 48;
  d.registers_per_sm = 32768;
  d.dram_gb = 1.536;
  d.dram_bw_gbs = 163.85;
  d.tdp_watts = 182.0;  // half of the dual-die card's 365 W
  d.compute_efficiency = 0.49;
  d.memory_efficiency = 0.75;
  return d;
}

DeviceSpec tesla_c2075() {
  DeviceSpec d;
  d.name = "Tesla C2075";
  d.arch = Arch::kFermi;
  d.sm_count = 14;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.147;
  d.max_threads_per_sm = 1536;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm_kb = 48;
  d.registers_per_sm = 32768;
  d.dram_gb = 5.375;
  d.dram_bw_gbs = 144.0;  // with ECC enabled
  d.tdp_watts = 225.0;
  // Slightly higher sustained fraction than the GeForce Fermi: the paper
  // observes the two cards' capabilities are "pretty much the same" despite
  // the GTX 590's higher peak.
  d.compute_efficiency = 0.56;
  d.memory_efficiency = 0.75;
  return d;
}

DeviceSpec geforce_gtx580() {
  DeviceSpec d;
  d.name = "GeForce GTX 580";
  d.arch = Arch::kFermi;
  d.sm_count = 16;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.544;
  d.max_threads_per_sm = 1536;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm_kb = 48;
  d.registers_per_sm = 32768;
  d.dram_gb = 1.536;
  d.dram_bw_gbs = 192.4;
  d.tdp_watts = 244.0;
  d.compute_efficiency = 0.49;
  d.memory_efficiency = 0.75;
  return d;
}

DeviceSpec tesla_k40c() {
  DeviceSpec d;
  d.name = "Tesla K40c";
  d.arch = Arch::kKepler;
  d.sm_count = 15;
  d.cores_per_sm = 192;
  d.clock_ghz = 0.88;  // boost clock, as quoted in the paper (5068 GFLOPS)
  d.max_threads_per_sm = 2048;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm_kb = 48;
  d.registers_per_sm = 65536;
  d.dram_gb = 11.52;
  d.dram_bw_gbs = 288.38;
  d.tdp_watts = 235.0;
  // Kepler SMX sustains a far lower fraction of its (huge) peak on
  // latency-bound kernels than Fermi; 0.32 reproduces the ~2.1x effective
  // K40c/GTX580 ratio implied by the paper's Hertz results.
  d.compute_efficiency = 0.32;
  d.memory_efficiency = 0.70;
  return d;
}

DeviceSpec xeon_phi_5110p() {
  DeviceSpec d;
  d.name = "Xeon Phi 5110P";
  d.arch = Arch::kMic;
  d.sm_count = 60;        // in-order cores
  d.cores_per_sm = 16;    // 512-bit SP SIMD lanes
  d.clock_ghz = 1.053;    // peak 60*16*2*1.053 ~ 2022 GFLOPS
  d.max_threads_per_sm = 256;  // 4 hardware threads, modeled loosely
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 4;
  d.shared_mem_per_sm_kb = 512;  // per-core L2 slice
  d.registers_per_sm = 32768;
  d.dram_gb = 8.0;
  d.dram_bw_gbs = 320.0;
  d.pcie_bw_gbs = 6.0;
  d.tdp_watts = 225.0;
  // In-order cores + hard-to-fill 512-bit vectors sustain a modest
  // fraction of peak on irregular pair kernels.
  d.compute_efficiency = 0.20;
  d.memory_efficiency = 0.55;
  return d;
}

DeviceSpec generation_card(Arch arch) {
  if (arch == Arch::kMic) return xeon_phi_5110p();
  DeviceSpec d;
  d.arch = arch;
  switch (arch) {
    case Arch::kMic:
      break;  // handled above
    case Arch::kTesla:
      d.name = "Tesla-generation (2007)";
      d.sm_count = 30;
      d.cores_per_sm = 8;
      d.clock_ghz = 1.40;  // 240 cores * 2 * 1.40 = 672 GFLOPS (Table 1)
      d.max_threads_per_sm = 1024;
      d.max_threads_per_block = 512;
      d.max_blocks_per_sm = 8;
      d.shared_mem_per_sm_kb = 16;
      d.registers_per_sm = 16384;
      d.dram_bw_gbs = 141.7;
      d.tdp_watts = 236.0;
      break;
    case Arch::kFermi:
      d.name = "Fermi-generation (2010)";
      d.sm_count = 16;
      d.cores_per_sm = 32;
      d.clock_ghz = 1.15;  // 512 * 2 * 1.15 = 1178 GFLOPS
      d.max_threads_per_sm = 1536;
      d.max_threads_per_block = 1024;
      d.max_blocks_per_sm = 8;
      d.shared_mem_per_sm_kb = 48;
      d.registers_per_sm = 32768;
      d.dram_bw_gbs = 192.4;
      d.tdp_watts = 244.0;
      break;
    case Arch::kKepler:
      d.name = "Kepler-generation (2012)";
      d.sm_count = 15;
      d.cores_per_sm = 192;
      d.clock_ghz = 0.745;  // 2880 * 2 * 0.745 = 4290 GFLOPS
      d.max_threads_per_sm = 2048;
      d.max_threads_per_block = 1024;
      d.max_blocks_per_sm = 16;
      d.shared_mem_per_sm_kb = 48;
      d.registers_per_sm = 65536;
      d.dram_bw_gbs = 288.4;
      d.tdp_watts = 235.0;
      d.compute_efficiency = 0.32;
      break;
    case Arch::kMaxwell:
      d.name = "Maxwell-generation (2014)";
      d.sm_count = 16;
      d.cores_per_sm = 128;
      d.clock_ghz = 1.216;  // 2048 * 2 * 1.216 = 4980 GFLOPS
      d.max_threads_per_sm = 2048;
      d.max_threads_per_block = 1024;
      d.max_blocks_per_sm = 32;
      d.shared_mem_per_sm_kb = 64;
      d.registers_per_sm = 65536;
      d.dram_bw_gbs = 224.3;
      d.tdp_watts = 165.0;
      d.compute_efficiency = 0.45;
      break;
  }
  return d;
}

std::vector<DeviceSpec> evaluation_cards() {
  return {geforce_gtx590(), tesla_c2075(), geforce_gtx580(), tesla_k40c()};
}

std::vector<DeviceSpec> generation_cards() {
  return {generation_card(Arch::kTesla), generation_card(Arch::kFermi),
          generation_card(Arch::kKepler), generation_card(Arch::kMaxwell)};
}

}  // namespace metadock::gpusim
