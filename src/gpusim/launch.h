// Kernel launch configuration and analytic cost description.
#pragma once

#include <cstdint>

namespace metadock::gpusim {

/// Grid/block shape of a kernel launch (1-D, which is what the docking
/// kernel uses: one warp per conformation, warps grouped into blocks).
struct KernelLaunch {
  std::int64_t grid_blocks = 1;
  int block_threads = 128;
  /// Dynamic shared memory per block (the receptor tile + ligand buffer).
  std::size_t shared_bytes_per_block = 0;

  [[nodiscard]] std::int64_t total_threads() const {
    return grid_blocks * block_threads;
  }
  [[nodiscard]] std::int64_t total_warps() const { return (total_threads() + 31) / 32; }
};

/// Whole-launch analytic cost: how much arithmetic and DRAM traffic the
/// kernel performs.  The cost model turns this into virtual time for a
/// specific device.
struct KernelCost {
  double flops = 0.0;          // single-precision flops, FMA = 2
  double global_bytes = 0.0;   // DRAM traffic (reads + writes)
};

}  // namespace metadock::gpusim
