#include "gpusim/scoring_kernel.h"

#include <stdexcept>

#include "obs/host_metrics.h"
// metadock-lint: allow(wall-clock) host-throughput metrics only, never results
#include "util/timer.h"

namespace metadock::gpusim {

DeviceScoringKernel::DeviceScoringKernel(Device& device,
                                         const scoring::LennardJonesScorer& scorer,
                                         ScoringKernelOptions options)
    : device_(device), scorer_(scorer), options_(options) {
  if (options_.warps_per_block <= 0 || options_.tile_atoms <= 0) {
    throw std::invalid_argument("DeviceScoringKernel: bad options");
  }
  const scoring::ScoringImpl impl = scoring::resolve_scoring_impl(options_.impl);
  if (impl != scoring::ScoringImpl::kTiled) {
    scoring::BatchEngineOptions be;
    be.pose_block = options_.warps_per_block;
    be.simd = impl == scoring::ScoringImpl::kBatchedSimd ? options_.simd_level
                                                         : scoring::SimdLevel::kScalar;
    batch_.emplace(scorer_, be);
  }
  // Initial molecule allocation + upload: receptor and ligand
  // coordinate/type payloads live on the device for the kernel's lifetime.
  const double molecule_bytes =
      kBytesPerReceptorAtom *
      (static_cast<double>(scorer_.receptor_size()) + static_cast<double>(scorer_.ligand_size()));
  device_.allocate(molecule_bytes);
  device_.copy_to_device(molecule_bytes);
}

DeviceScoringKernel::~DeviceScoringKernel() {
  device_.deallocate(kBytesPerReceptorAtom * (static_cast<double>(scorer_.receptor_size()) +
                                              static_cast<double>(scorer_.ligand_size())));
}

KernelLaunch DeviceScoringKernel::launch_config(std::size_t n_poses) const {
  KernelLaunch launch;
  const auto wpb = static_cast<std::size_t>(options_.warps_per_block);
  launch.grid_blocks = static_cast<std::int64_t>((n_poses + wpb - 1) / wpb);
  launch.block_threads = options_.warps_per_block * 32;
  if (options_.tiled) {
    // Receptor tile + transformed-ligand buffer live in shared memory.
    launch.shared_bytes_per_block = static_cast<std::size_t>(
        kBytesPerReceptorAtom * options_.tile_atoms +
        kBytesPerReceptorAtom * static_cast<double>(scorer_.ligand_size()) *
            options_.warps_per_block);
  }
  return launch;
}

KernelCost DeviceScoringKernel::cost(std::size_t n_poses) const {
  KernelCost cost;
  const auto pairs = static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(n_poses);
  cost.flops = pairs * kFlopsPerPair;

  const double receptor_bytes =
      kBytesPerReceptorAtom * static_cast<double>(scorer_.receptor_size());
  const KernelLaunch launch = launch_config(n_poses);
  if (options_.tiled) {
    // Each block streams the receptor once through its shared-memory tiles;
    // the tile is then reused by every warp and every ligand atom.
    cost.global_bytes = receptor_bytes * static_cast<double>(launch.grid_blocks);
  } else {
    // Naive kernel: the inner loop re-touches receptor data once per pair
    // (each ligand atom of each warp re-streams the receptor).  The L2
    // absorbs most touches for receptors of this size; kNaiveMissRate is
    // the fraction that reaches DRAM-equivalent bandwidth.
    cost.global_bytes =
        pairs * kBytesPerReceptorAtom * kNaiveMissRate;
  }
  cost.global_bytes += kBytesPerPose * static_cast<double>(n_poses)  // poses in
                       + 8.0 * static_cast<double>(n_poses);         // scores out
  return cost;
}

void DeviceScoringKernel::score(std::span<const scoring::Pose> poses, std::span<double> out) {
  if (poses.empty()) return;
  device_.copy_to_device(kBytesPerPose * static_cast<double>(poses.size()));
  launch_scoring(poses, out);
  device_.copy_from_device(8.0 * static_cast<double>(poses.size()));
}

void DeviceScoringKernel::score_cost_only(std::size_t n) {
  if (n == 0) return;
  device_.copy_to_device(kBytesPerPose * static_cast<double>(n));
  launch_cost_only(n);
  device_.copy_from_device(8.0 * static_cast<double>(n));
}

void DeviceScoringKernel::launch_scoring(std::span<const scoring::Pose> poses,
                                         std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("DeviceScoringKernel::launch_scoring: size mismatch");
  }
  if (poses.empty()) return;
  const KernelLaunch launch = launch_config(poses.size());
  const auto wpb = static_cast<std::size_t>(options_.warps_per_block);
  // Times the real host work behind host.pairs_per_second; virtual time is
  // advanced by device_.launch() below and never reads this timer.
  // metadock-lint: allow(wall-clock) host-throughput metrics only
  const util::WallTimer timer;
  device_.launch(launch, cost(poses.size()), [&](std::int64_t block) {
    const std::size_t lo = static_cast<std::size_t>(block) * wpb;
    const std::size_t hi = std::min(poses.size(), lo + wpb);
    if (batch_.has_value()) {
      // One block of warps = one pose block: the engine transforms the
      // block's poses once and streams each receptor tile through all of
      // them, like the shared-memory tile shared by the block's warps.
      batch_->score_batch(poses.subspan(lo, hi - lo), out.subspan(lo, hi - lo));
    } else {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = scorer_.score_tiled(poses[i]);
      }
    }
  });
  obs::record_host_scoring(
      device_.observer(), timer.seconds(),
      static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(poses.size()));
}

void DeviceScoringKernel::launch_cost_only(std::size_t n) {
  if (n == 0) return;
  device_.launch(launch_config(n), cost(n));
}

void DeviceScoringKernel::launch_scoring_async(int stream,
                                               std::span<const scoring::Pose> poses,
                                               std::span<double> out) {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("DeviceScoringKernel::launch_scoring_async: size mismatch");
  }
  if (poses.empty()) return;
  const KernelLaunch launch = launch_config(poses.size());
  const auto wpb = static_cast<std::size_t>(options_.warps_per_block);
  // metadock-lint: allow(wall-clock) host-throughput metrics only
  const util::WallTimer timer;
  device_.launch_async(stream, launch, cost(poses.size()), [&](std::int64_t block) {
    const std::size_t lo = static_cast<std::size_t>(block) * wpb;
    const std::size_t hi = std::min(poses.size(), lo + wpb);
    if (batch_.has_value()) {
      batch_->score_batch(poses.subspan(lo, hi - lo), out.subspan(lo, hi - lo));
    } else {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = scorer_.score_tiled(poses[i]);
      }
    }
  });
  obs::record_host_scoring(
      device_.observer(), timer.seconds(),
      static_cast<double>(scorer_.pairs_per_eval()) * static_cast<double>(poses.size()));
}

void DeviceScoringKernel::launch_cost_only_async(int stream, std::size_t n) {
  if (n == 0) return;
  device_.launch_async(stream, launch_config(n), cost(n));
}

void DeviceScoringKernel::upload_poses_async(int stream, std::size_t n) {
  if (n == 0) return;
  device_.copy_to_device_async(stream, kBytesPerPose * static_cast<double>(n));
}

void DeviceScoringKernel::download_scores_async(int stream, std::size_t n) {
  if (n == 0) return;
  device_.copy_from_device_async(stream, 8.0 * static_cast<double>(n));
}

}  // namespace metadock::gpusim
