// Database of the GPU models used in the paper's evaluation (Tables 2-3)
// plus one representative card per hardware generation (Table 1).
//
// The per-card efficiency constants are this reproduction's calibration
// parameters; they are chosen once (see EXPERIMENTS.md) so that the
// *relative* throughput of the cards matches what the paper measured —
// e.g. the near-parity of GTX 590 and Tesla C2075, and the ~2.1x effective
// advantage of the K40c over the GTX 580 implied by the 1.56x heterogeneous
// speedup on Hertz.
#pragma once

#include <vector>

#include "gpusim/device_spec.h"

namespace metadock::gpusim {

/// NVIDIA GeForce GTX 590 (one of the two Fermi dies; the paper counts each
/// die as one GPU, Jupiter has four).
[[nodiscard]] DeviceSpec geforce_gtx590();

/// NVIDIA Tesla C2075 (Fermi, ECC memory) — two of these in Jupiter.
[[nodiscard]] DeviceSpec tesla_c2075();

/// NVIDIA GeForce GTX 580 (Fermi) — the slower Hertz card.
[[nodiscard]] DeviceSpec geforce_gtx580();

/// NVIDIA Tesla K40c (Kepler) — the faster Hertz card.
[[nodiscard]] DeviceSpec tesla_k40c();

/// Intel Xeon Phi 5110P modeled as a throughput device — the paper's
/// future-work direction ("each node with several computational
/// components, e.g., multicore, heterogeneous GPUs and MICs").  A "block"
/// maps to a core's worth of work; 16 SP SIMD lanes x FMA give the peak.
[[nodiscard]] DeviceSpec xeon_phi_5110p();

/// Representative top card of each generation in Table 1.
[[nodiscard]] DeviceSpec generation_card(Arch arch);

/// All four evaluation cards (Tables 2-3).
[[nodiscard]] std::vector<DeviceSpec> evaluation_cards();

/// One card per generation (Table 1 rows).
[[nodiscard]] std::vector<DeviceSpec> generation_cards();

}  // namespace metadock::gpusim
