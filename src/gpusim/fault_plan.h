// Deterministic device-fault injection against the virtual clock.
//
// Production heterogeneous nodes lose devices: cards fall off the bus,
// kernels fail transiently under ECC pressure, and thermally-throttled
// boards straggle.  The paper's barrier-per-batch algorithm assumes none of
// that ever happens.  A FaultPlan describes, per device ordinal, three
// failure classes the scheduler must survive:
//
//   * permanent death — the device stops accepting launches once its
//     virtual clock reaches `death_at_seconds` (a launch in flight at the
//     boundary is lost);
//   * transient kernel failures — each launch fails with probability
//     `transient_probability`, sampled from a counter-based stream keyed by
//     (plan seed, ordinal, launch index) so a run's fault sequence is
//     reproducible regardless of host threading; a retry is a new launch
//     index and re-samples;
//   * straggling — kernel time is multiplied by `straggle_factor` once the
//     clock passes `straggle_after_seconds` (thermal throttling /
//     contention on a shared node).
//
// Faults surface as the typed errors below; `sched::MultiGpuBatchScorer`
// turns them into retries, quarantines and re-splits (see DESIGN.md "Fault
// model & degraded execution").
//
// The ordinal is just an index: the cluster simulator reuses the same plan
// type at *node* granularity (ordinal = node index), where `kill` is
// whole-node death and `straggle` slows every ligand on the node
// (sched::ClusterOptions::node_faults, DESIGN.md §15).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace metadock::gpusim {

/// Sentinel for "this fault never triggers".
inline constexpr double kNeverSeconds = std::numeric_limits<double>::infinity();

/// Merged fault description for one device.
struct DeviceFaultSpec {
  int device = -1;
  double death_at_seconds = kNeverSeconds;
  double transient_probability = 0.0;
  double straggle_after_seconds = kNeverSeconds;
  double straggle_factor = 1.0;

  [[nodiscard]] bool benign() const noexcept {
    return death_at_seconds == kNeverSeconds && transient_probability <= 0.0 &&
           (straggle_after_seconds == kNeverSeconds || straggle_factor == 1.0);
  }
};

/// Base class of every injected fault.
class DeviceFaultError : public std::runtime_error {
 public:
  DeviceFaultError(int device, const std::string& what)
      : std::runtime_error(what), device_(device) {}
  [[nodiscard]] int device() const noexcept { return device_; }

 private:
  int device_;
};

/// A kernel launch failed transiently; retrying may succeed.
class TransientFaultError : public DeviceFaultError {
 public:
  using DeviceFaultError::DeviceFaultError;
};

/// The device died permanently; it must be quarantined.
class DeviceLostError : public DeviceFaultError {
 public:
  using DeviceFaultError::DeviceFaultError;
};

/// Every device of the node is lost and no CPU fallback was configured.
class AllDevicesLostError : public DeviceFaultError {
 public:
  explicit AllDevicesLostError(const std::string& what) : DeviceFaultError(-1, what) {}
};

/// A seeded schedule of device faults.  Builder-style: a plan composes any
/// number of per-device entries; entries for the same ordinal merge (the
/// earliest death, the highest transient probability, the earliest/strongest
/// straggle win).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Permanent death of `device` once its virtual clock reaches `at_seconds`.
  FaultPlan& kill(int device, double at_seconds);
  /// Per-launch transient failure probability for `device`.
  FaultPlan& transient(int device, double probability);
  /// Kernel slowdown by `factor` (>1) after `after_seconds`.
  FaultPlan& straggle(int device, double after_seconds, double factor);

  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  FaultPlan& set_seed(std::uint64_t seed) noexcept {
    seed_ = seed;
    return *this;
  }

  /// Merged fault spec for one ordinal (benign spec when none registered).
  [[nodiscard]] DeviceFaultSpec for_device(int ordinal) const;

  [[nodiscard]] const std::vector<DeviceFaultSpec>& entries() const noexcept { return faults_; }

 private:
  DeviceFaultSpec& entry(int device);

  std::uint64_t seed_ = 0;
  std::vector<DeviceFaultSpec> faults_;
};

}  // namespace metadock::gpusim
