// Metrics registry: named counters, gauges, and histograms.
//
// Everything here measures the simulated execution (virtual seconds,
// modeled GFLOPS), so values are deterministic run-to-run.  Instruments are
// owned by the registry and addressed by name; references stay valid for
// the registry's lifetime (node-keyed std::map, no rehashing).  Naming
// convention (see DESIGN.md §9): dotted paths, "device.<ordinal>.<what>"
// for per-device series, "sched.<what>" / "meta.<what>" / "node.<what>"
// for scheduler, metaheuristic, and report-level numbers.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/sync.h"

namespace metadock::obs {

/// Monotonically increasing sum.
class Counter {
 public:
  void add(double v = 1.0) {
    util::ScopedLock lock(mu_);
    value_ += v;
  }
  [[nodiscard]] double value() const {
    util::ScopedLock lock(mu_);
    return value_;
  }

 private:
  mutable util::Mutex mu_;
  double value_ GUARDED_BY(mu_) = 0.0;
};

/// Last-write-wins point-in-time value.
class Gauge {
 public:
  void set(double v) {
    util::ScopedLock lock(mu_);
    value_ = v;
  }
  [[nodiscard]] double value() const {
    util::ScopedLock lock(mu_);
    return value_;
  }

 private:
  mutable util::Mutex mu_;
  double value_ GUARDED_BY(mu_) = 0.0;
};

/// Sample-exact distribution: stores every recorded value, so percentiles
/// are exact (nearest-rank).  Batch counts per run are at most a few
/// thousand, so memory is not a concern; a cap guards runaway callers.
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 1u << 20) : max_samples_(max_samples) {}

  void record(double v);

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  // NaN when empty
  [[nodiscard]] double max() const;  // NaN when empty
  [[nodiscard]] double mean() const;
  /// Nearest-rank percentile, p in [0, 100].  NaN when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable util::Mutex mu_;
  std::size_t max_samples_;
  /// Lazily re-sorted by percentile(); mutable so reads stay const.
  mutable std::vector<double> samples_ GUARDED_BY(mu_);
  mutable bool sorted_ GUARDED_BY(mu_) = true;
  double sum_ GUARDED_BY(mu_) = 0.0;
  /// Samples dropped past the cap (still counted in count()/sum()).
  std::size_t overflow_ GUARDED_BY(mu_) = 0;
};

class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use.  References
  /// remain valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Summary JSON: {"counters": {name: value}, "gauges": {name: value},
  /// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99}}}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable util::Mutex mu_;
  std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace metadock::obs
