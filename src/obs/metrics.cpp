#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/json.h"

namespace metadock::obs {

void Histogram::record(double v) {
  util::ScopedLock lock(mu_);
  sum_ += v;
  if (samples_.size() >= max_samples_) {
    ++overflow_;
    return;
  }
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
}

std::size_t Histogram::count() const {
  util::ScopedLock lock(mu_);
  return samples_.size() + overflow_;
}

double Histogram::sum() const {
  util::ScopedLock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  util::ScopedLock lock(mu_);
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  util::ScopedLock lock(mu_);
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  util::ScopedLock lock(mu_);
  const std::size_t n = samples_.size() + overflow_;
  return n == 0 ? 0.0 : sum_ / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  util::ScopedLock lock(mu_);
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least ceil(p/100 * n) samples
  // at or below it.
  const auto n = static_cast<double>(samples_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::ScopedLock lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::ScopedLock lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  util::ScopedLock lock(mu_);
  return histograms_[name];
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  util::ScopedLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  util::ScopedLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  util::ScopedLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(name);
  return out;
}

namespace {

/// JSON has no NaN; empty-histogram min/max serialize as 0.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string MetricsRegistry::to_json() const {
  util::ScopedLock lock(mu_);
  util::JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(static_cast<std::uint64_t>(h.count()));
    w.key("sum").value(h.sum());
    w.key("mean").value(h.mean());
    w.key("min").value(finite_or_zero(h.min()));
    w.key("max").value(finite_or_zero(h.max()));
    w.key("p50").value(finite_or_zero(h.percentile(50.0)));
    w.key("p90").value(finite_or_zero(h.percentile(90.0)));
    w.key("p99").value(finite_or_zero(h.percentile(99.0)));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace metadock::obs
