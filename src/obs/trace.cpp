#include "obs/trace.h"

#include <algorithm>

#include "util/json.h"

namespace metadock::obs {

void Tracer::record(Span s) {
  util::ScopedLock lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(s));
}

void Tracer::mark(std::string name, std::string category, int device, std::uint64_t ts_ns,
                  std::vector<std::pair<std::string, double>> args) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.device = device;
  s.start_ns = ts_ns;
  s.instant = true;
  s.args = std::move(args);
  record(std::move(s));
}

void Tracer::set_track_name(int device, std::string name) {
  util::ScopedLock lock(mu_);
  for (auto& [d, n] : track_names_) {
    if (d == device) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(device, std::move(name));
}

std::size_t Tracer::size() const {
  util::ScopedLock lock(mu_);
  return spans_.size();
}

std::size_t Tracer::dropped() const {
  util::ScopedLock lock(mu_);
  return dropped_;
}

std::vector<Span> Tracer::spans() const {
  util::ScopedLock lock(mu_);
  return spans_;
}

void Tracer::clear() {
  util::ScopedLock lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

namespace {

/// Chrome tids must be non-negative; the host track gets a tid above any
/// plausible device ordinal so devices sort first in the viewer.
constexpr int kHostTid = 9999;

int tid_of(int device) { return device == kHostTrack ? kHostTid : device; }

}  // namespace

std::string Tracer::to_chrome_json(const std::string& process_name) const {
  util::ScopedLock lock(mu_);
  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Metadata: process name and track names.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("args").begin_object();
  w.key("name").value(process_name);
  w.end_object();
  w.end_object();
  bool host_named = false;
  for (const auto& [device, name] : track_names_) {
    host_named = host_named || device == kHostTrack;
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid_of(device));
    w.key("args").begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  }
  if (!host_named) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(kHostTid);
    w.key("args").begin_object();
    w.key("name").value("host");
    w.end_object();
    w.end_object();
  }

  for (const Span& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    w.key("ph").value(s.instant ? "i" : "X");
    w.key("pid").value(1);
    w.key("tid").value(tid_of(s.device));
    w.key("ts").value(static_cast<double>(s.start_ns) * 1e-3);  // microseconds
    if (s.instant) {
      w.key("s").value("t");  // instant scope: thread
    } else {
      w.key("dur").value(static_cast<double>(s.dur_ns) * 1e-3);
    }
    if (!s.args.empty()) {
      w.key("args").begin_object();
      for (const auto& [k, v] : s.args) w.key(k).value(v);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

}  // namespace metadock::obs
