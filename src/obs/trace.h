// Structured tracer for the virtual-time execution pipeline.
//
// Spans are keyed to the gpusim virtual clock, not host time: a kernel span
// on device g covers [clock_before, clock_after) of g's VirtualClock, so a
// trace of a simulated 6-GPU run shows the same timeline a real profiler
// would show on the real node — deterministic and host-independent, like
// every other performance number in this reproduction.
//
// Tracks: one per device ordinal (tid = ordinal), plus a host/controller
// track (kHostTrack) whose clock is the scheduler's barrier-aware node
// time.  Export is Chrome trace_event JSON ("X" complete events, "i"
// instant events, "M" metadata for track names) — load the file in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace metadock::obs {

/// tid used for events that belong to the host/controller timeline rather
/// than a device's.
inline constexpr int kHostTrack = -1;

/// tid for a device's per-stream tracks ("device.N.stream.S" in the
/// exported trace).  Stream 0 is the default stream and shares the
/// device's own track (tid = ordinal); created streams get their own.
inline constexpr int kStreamTrackBase = 1 << 16;
inline constexpr int kStreamsPerDeviceTrack = 64;

[[nodiscard]] constexpr int stream_track(int ordinal, int stream) noexcept {
  return stream == 0 ? ordinal
                     : kStreamTrackBase + ordinal * kStreamsPerDeviceTrack + stream;
}

struct Span {
  std::string name;      // e.g. "kernel", "h2d", "warmup", "generation"
  std::string category;  // "kernel" | "copy" | "warmup" | "meta" | "fault" | "sched"
  int device = kHostTrack;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// True for zero-duration marker events (Chrome phase "i").
  bool instant = false;
  /// Numeric arguments rendered into the Chrome "args" object.
  std::vector<std::pair<std::string, double>> args;
};

/// Thread-safe append-only span buffer with a hard cap (oldest spans win;
/// past the cap new spans are counted as dropped, never silently lost).
class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = 1u << 20) : max_spans_(max_spans) {}

  void record(Span s);

  /// Convenience for zero-duration markers.
  void mark(std::string name, std::string category, int device, std::uint64_t ts_ns,
            std::vector<std::pair<std::string, double>> args = {});

  /// Names a track in the exported trace (e.g. device 0 -> "GPU0 Tesla K40c").
  void set_track_name(int device, std::string name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] std::vector<Span> spans() const;
  void clear();

  /// Chrome trace_event JSON (the "JSON object format": {"traceEvents":
  /// [...], "displayTimeUnit": "ms"}).  Timestamps are microseconds of
  /// virtual time.
  [[nodiscard]] std::string to_chrome_json(const std::string& process_name = "metadock") const;

 private:
  mutable util::Mutex mu_;
  std::size_t max_spans_;
  std::size_t dropped_ GUARDED_BY(mu_) = 0;
  std::vector<Span> spans_ GUARDED_BY(mu_);
  std::vector<std::pair<int, std::string>> track_names_ GUARDED_BY(mu_);
};

}  // namespace metadock::obs
