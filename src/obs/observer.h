// The observability handle threaded through the execution stack.
//
// One Observer covers one run (or one CLI invocation): gpusim devices,
// the batch scorer, the node executor and the metaheuristic engine all
// receive a nullable Observer* — null means observability off, and every
// instrumentation site is a single branch in that case (low overhead by
// construction).  See DESIGN.md §9 for the span categories and metric
// names each layer emits.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace metadock::obs {

struct Observer {
  Tracer tracer;
  MetricsRegistry metrics;
};

}  // namespace metadock::obs
