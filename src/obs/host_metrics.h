// Host-side scoring throughput metrics.
//
// The virtual-clock metrics elsewhere in obs measure the *simulated*
// machine; these three series measure the real host doing the numeric
// scoring work (the batched engine's reason to exist).  Names follow the
// DESIGN.md §9 convention:
//
//   host.scoring_wall_seconds  (counter) — wall-clock spent inside host
//                                          scoring kernels,
//   host.scored_pairs          (counter) — receptor-ligand pairs evaluated,
//   host.pairs_per_second      (gauge)   — cumulative pairs / cumulative
//                                          wall, refreshed per episode.
#pragma once

#include "obs/observer.h"

namespace metadock::obs {

/// Records one host scoring episode (`pairs` pair evaluations that took
/// `wall_seconds` of host time).  Null-safe and cheap enough for per-batch
/// call sites; does nothing for empty episodes.
inline void record_host_scoring(Observer* observer, double wall_seconds, double pairs) {
  if (observer == nullptr || pairs <= 0.0) return;
  MetricsRegistry& m = observer->metrics;
  Counter& wall = m.counter("host.scoring_wall_seconds");
  Counter& scored = m.counter("host.scored_pairs");
  wall.add(wall_seconds);
  scored.add(pairs);
  const double total_wall = wall.value();
  if (total_wall > 0.0) {
    m.gauge("host.pairs_per_second").set(scored.value() / total_wall);
  }
}

}  // namespace metadock::obs
