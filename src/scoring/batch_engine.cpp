#include "scoring/batch_engine.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <string>

#include "mol/atom.h"
#include "scoring/pair_params.h"
#include "util/pool.h"

namespace metadock::scoring {

bool simd_kernel_supported() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return simd_kernel_compiled() && __builtin_cpu_supports("avx2") &&
         __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool avx512_kernel_supported() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return avx512_kernel_compiled() && __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

SimdLevel default_simd_level() noexcept {
  // AVX-512 stays opt-in (--simd-level avx512): 512-bit vdivps throughput
  // and frequency licensing make the wider kernel *slower* on the
  // reference host (see BENCH_scoring.json), and that tradeoff is too
  // host-specific to auto-pick the wide path.
  if (simd_kernel_supported()) return SimdLevel::kAvx2;
  return avx512_kernel_supported() ? SimdLevel::kAvx512 : SimdLevel::kScalar;
}

std::string_view simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool simd_level_supported(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return simd_kernel_supported();
    case SimdLevel::kAvx512:
      return avx512_kernel_supported();
  }
  return false;
}

SimdLevel simd_level_from(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "auto") return default_simd_level();
  throw std::invalid_argument("unknown simd level '" + std::string(name) +
                              "' (expected scalar, avx2, avx512 or auto)");
}

ScoringImpl scoring_impl_from(std::string_view name) {
  if (name == "auto") return ScoringImpl::kAuto;
  if (name == "tiled") return ScoringImpl::kTiled;
  if (name == "batched" || name == "batched-scalar") return ScoringImpl::kBatched;
  if (name == "batched-simd") return ScoringImpl::kBatchedSimd;
  throw std::invalid_argument("unknown scoring impl '" + std::string(name) +
                              "' (expected auto, tiled, batched-scalar or batched-simd)");
}

ScoringImpl resolve_scoring_impl(ScoringImpl impl) noexcept {
  if (impl != ScoringImpl::kAuto) return impl;
  return simd_kernel_supported() ? ScoringImpl::kBatchedSimd : ScoringImpl::kBatched;
}

std::string_view scoring_impl_name(ScoringImpl impl) noexcept {
  switch (impl) {
    case ScoringImpl::kAuto:
      return "auto";
    case ScoringImpl::kTiled:
      return "tiled";
    case ScoringImpl::kBatched:
      return "batched-scalar";
    case ScoringImpl::kBatchedSimd:
      return "batched-simd";
  }
  return "?";
}

PartitionedReceptor PartitionedReceptor::build(const ReceptorAtoms& receptor,
                                               std::size_t tile_size) {
  if (tile_size == 0) {
    throw std::invalid_argument("PartitionedReceptor: tile_size must be positive");
  }
  const std::size_t n = receptor.size();
  PartitionedReceptor out;
  out.tile_size = tile_size;
  out.x.resize(n);
  out.y.resize(n);
  out.z.resize(n);
  out.charge.resize(n);
  out.type.resize(n);
  out.perm.resize(n);

  constexpr auto kTypes = static_cast<std::size_t>(mol::kElementCount);
  for (std::size_t base = 0; base < n; base += tile_size) {
    const std::size_t tile_n = std::min(tile_size, n - base);
    out.tile_runs.push_back(static_cast<std::uint32_t>(out.runs.size()));

    // Counting sort by element, stable within each element, tile-local.
    std::array<std::uint32_t, kTypes> count{};
    for (std::size_t i = 0; i < tile_n; ++i) ++count[receptor.type[base + i]];
    std::array<std::uint32_t, kTypes> offset{};
    std::uint32_t acc = 0;
    for (std::size_t t = 0; t < kTypes; ++t) {
      offset[t] = acc;
      if (count[t] > 0) {
        out.runs.push_back({static_cast<std::uint32_t>(base) + acc, count[t],
                            static_cast<std::uint8_t>(t)});
      }
      acc += count[t];
    }
    for (std::size_t i = 0; i < tile_n; ++i) {
      const std::size_t src = base + i;
      const std::size_t dst = base + offset[receptor.type[src]]++;
      out.x[dst] = receptor.x[src];
      out.y[dst] = receptor.y[src];
      out.z[dst] = receptor.z[src];
      out.charge[dst] = receptor.charge[src];
      out.type[dst] = receptor.type[src];
      out.perm[dst] = static_cast<std::uint32_t>(src);
    }
  }
  out.tile_runs.push_back(static_cast<std::uint32_t>(out.runs.size()));
  return out;
}

namespace detail {

void score_block_tile_scalar(const BlockKernelArgs& a) {
  const PairTable& table = PairTable::instance();
  // +inf sentinel keeps the cutoff test branch-free: r2 is clamped to
  // kMinR2, so every pair passes "r2 <= inf".
  const float cut2 = a.cutoff2 > 0.0f ? a.cutoff2 : std::numeric_limits<float>::infinity();
  for (std::size_t p = 0; p < a.n_poses; ++p) {
    const float* lx = a.lx + p * a.lig_n;
    const float* ly = a.ly + p * a.lig_n;
    const float* lz = a.lz + p * a.lig_n;
    double energy = 0.0;
    for (std::size_t j = 0; j < a.lig_n; ++j) {
      const float px = lx[j], py = ly[j], pz = lz[j];
      const PairCoeff* row = table.row(static_cast<mol::Element>(a.ltype[j]));
      const float qscale =
          a.coulomb ? kCoulombConst * a.lcharge[j] / a.dielectric : 0.0f;
      double e = 0.0;
      for (std::size_t r = 0; r < a.n_runs; ++r) {
        const TypeRun& run = a.runs[r];
        // The whole point of the partition: (A, B) are loop constants for
        // the run, so the inner loop is gather-free FMA work.
        const float ca = row[run.type].a;
        const float cb = row[run.type].b;
        const std::size_t end = run.begin + run.count;
        for (std::size_t i = run.begin; i < end; ++i) {
          const float dx = a.rx[i] - px;
          const float dy = a.ry[i] - py;
          const float dz = a.rz[i] - pz;
          const float r2 = std::max(dx * dx + dy * dy + dz * dz, kMinR2);
          const float inv2 = 1.0f / r2;
          const float inv6 = inv2 * inv2 * inv2;
          float pair = (ca * inv6 - cb) * inv6;
          if (a.coulomb) pair += qscale * a.rcharge[i] * inv2;
          e += r2 <= cut2 ? pair : 0.0f;
        }
      }
      energy += e;
    }
    a.energy[p] += energy;
  }
}

}  // namespace detail

BatchScoringEngine::BatchScoringEngine(const LennardJonesScorer& scorer,
                                       BatchEngineOptions options)
    : ligand_(&scorer.ligand()),
      scoring_(scorer.options()),
      options_(options),
      receptor_(PartitionedReceptor::build(scorer.receptor(),
                                           static_cast<std::size_t>(scorer.options().tile_size))) {
  if (options_.pose_block <= 0) {
    throw std::invalid_argument("BatchScoringEngine: pose_block must be positive");
  }
  if (!simd_level_supported(options_.simd)) {
    throw std::invalid_argument(
        std::string("BatchScoringEngine: ") + std::string(simd_level_name(options_.simd)) +
        " kernel requested but unavailable on this host (build with METADOCK_SIMD=ON on x86-64 "
        "and run on a CPU with that ISA; use default_simd_level() to auto-detect)");
  }
}

template <typename PoseAt>
void BatchScoringEngine::score_block_impl(PoseAt&& pose_at, std::size_t n, double* out) const {
  // Scratch comes from the calling thread's arena: zero heap traffic per
  // block after the arena warms up, and thread confinement keeps this
  // safe without synchronization.
  util::Arena& arena = util::thread_arena();
  util::ArenaScope scope(arena);
  const std::size_t lig_n = ligand_->size();
  std::span<float> lx = arena.make_span<float>(n * lig_n);
  std::span<float> ly = arena.make_span<float>(n * lig_n);
  std::span<float> lz = arena.make_span<float>(n * lig_n);
  for (std::size_t p = 0; p < n; ++p) {
    detail::transform_ligand(*ligand_, pose_at(p), lx.data() + p * lig_n, ly.data() + p * lig_n,
                             lz.data() + p * lig_n);
  }
  std::fill(out, out + n, 0.0);

  detail::BlockKernelArgs args;
  args.rx = receptor_.x.data();
  args.ry = receptor_.y.data();
  args.rz = receptor_.z.data();
  args.rcharge = receptor_.charge.data();
  args.lx = lx.data();
  args.ly = ly.data();
  args.lz = lz.data();
  args.ltype = ligand_->type.data();
  args.lcharge = ligand_->charge.data();
  args.lig_n = lig_n;
  args.n_poses = n;
  args.coulomb = scoring_.coulomb;
  args.dielectric = scoring_.dielectric;
  args.cutoff2 = scoring_.cutoff * scoring_.cutoff;
  args.energy = out;

  auto kernel = detail::score_block_tile_scalar;
  if (options_.simd == SimdLevel::kAvx2) kernel = detail::score_block_tile_avx2;
  if (options_.simd == SimdLevel::kAvx512) kernel = detail::score_block_tile_avx512;
  // The tile streams through every pose of the block before the next tile
  // loads — one receptor pass per block, not per pose.
  for (std::size_t t = 0; t < receptor_.tiles(); ++t) {
    args.runs = receptor_.runs.data() + receptor_.tile_runs[t];
    args.n_runs = receptor_.tile_runs[t + 1] - receptor_.tile_runs[t];
    kernel(args);
  }
}

void BatchScoringEngine::score_block(const Pose* poses, std::size_t n, double* out) const {
  score_block_impl([poses](std::size_t p) { return poses[p]; }, n, out);
}

void BatchScoringEngine::score_batch(std::span<const Pose> poses, std::span<double> out) const {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("BatchScoringEngine::score_batch: size mismatch");
  }
  const auto block = static_cast<std::size_t>(options_.pose_block);
  for (std::size_t base = 0; base < poses.size(); base += block) {
    const std::size_t n = std::min(block, poses.size() - base);
    score_block(poses.data() + base, n, out.data() + base);
  }
}

void BatchScoringEngine::score_batch(const PoseSoAView& poses, std::span<double> out) const {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("BatchScoringEngine::score_batch: size mismatch");
  }
  const auto block = static_cast<std::size_t>(options_.pose_block);
  for (std::size_t base = 0; base < poses.size(); base += block) {
    const std::size_t n = std::min(block, poses.size() - base);
    score_block_impl([&poses, base](std::size_t p) { return poses.get(base + p); }, n,
                     out.data() + base);
  }
}

double BatchScoringEngine::score(const Pose& pose) const {
  double out = 0.0;
  score_block(&pose, 1, &out);
  return out;
}

}  // namespace metadock::scoring
