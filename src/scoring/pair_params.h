// Precomputed per-element-pair Lennard-Jones coefficients.
//
// With Lorentz-Berthelot combination, E(r) = eps*((rmin/r)^12 - 2*(rmin/r)^6)
// = A/r^12 - B/r^6 with A = eps*rmin^12 and B = 2*eps*rmin^6.  The hot loops
// index a flat [element][element] table of (A, B).
#pragma once

#include <array>

#include "mol/atom.h"

namespace metadock::scoring {

struct PairCoeff {
  float a;  // eps * rmin^12
  float b;  // 2 * eps * rmin^6
};

class PairTable {
 public:
  PairTable();

  [[nodiscard]] const PairCoeff& get(mol::Element a, mol::Element b) const {
    return table_[static_cast<std::size_t>(a) * mol::kElementCount + static_cast<std::size_t>(b)];
  }

  /// Row for a fixed ligand element (receptor element varies): lets kernels
  /// hoist the row lookup out of the inner loop.
  [[nodiscard]] const PairCoeff* row(mol::Element a) const {
    return table_.data() + static_cast<std::size_t>(a) * mol::kElementCount;
  }

  /// Process-wide table (parameters are compile-time constants).
  static const PairTable& instance();

 private:
  std::array<PairCoeff, static_cast<std::size_t>(mol::kElementCount) * mol::kElementCount> table_;
};

}  // namespace metadock::scoring
