// Explicit AVX2/FMA kernel for the batched scoring engine.
//
// This TU is the only one compiled with -mavx2 -mfma (when METADOCK_SIMD is
// ON and the target is x86-64); everything else in the library stays at the
// baseline ISA, and batch_engine.cpp picks this kernel at runtime via
// cpuid.  Without METADOCK_SIMD the stub at the bottom keeps the symbol
// defined so no build configuration needs link-time surgery.
//
// Per (pose, ligand atom, run): the run's PairCoeff is broadcast once, the
// inner loop walks the run 8 receptor atoms per iteration (unaligned loads
// — the partitioned SoA has no alignment guarantee), computes the LJ (and
// optionally Coulomb) term with FMAs and one division (true IEEE divide,
// not a reciprocal approximation, so lanes match the scalar kernel per
// pair), and masks lanes past the cutoff.  Lane results accumulate in a
// float register across the run (a run is at most tile_size atoms, so the
// partial sums stay at per-pair rounding scale), then one horizontal sum
// per run feeds the per-pose double accumulator — the same
// "float pairs, double total" contract as the scalar kernel.
//
// The coulomb and cutoff flags are hoisted out of the hot loop via
// template parameters: the common full-pair-sum case (no cutoff, LJ only)
// runs with zero per-iteration branching or masking.
#include "scoring/batch_engine.h"

#if defined(METADOCK_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <limits>

#include "scoring/pair_params.h"

namespace metadock::scoring {

bool simd_kernel_compiled() noexcept { return true; }

namespace detail {

namespace {

/// Sum of one 8-lane float accumulator.
inline double hsum(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return static_cast<double>(_mm_cvtss_f32(s));
}

template <bool kCoulomb, bool kCutoff>
void score_block_tile(const BlockKernelArgs& a) {
  const PairTable& table = PairTable::instance();
  const float cut2s =
      a.cutoff2 > 0.0f ? a.cutoff2 : std::numeric_limits<float>::infinity();
  const __m256 vmin_r2 = _mm256_set1_ps(kMinR2);
  const __m256 vcut2 = _mm256_set1_ps(cut2s);
  const __m256 vone = _mm256_set1_ps(1.0f);

  for (std::size_t p = 0; p < a.n_poses; ++p) {
    const float* lx = a.lx + p * a.lig_n;
    const float* ly = a.ly + p * a.lig_n;
    const float* lz = a.lz + p * a.lig_n;
    double energy = 0.0;
    for (std::size_t j = 0; j < a.lig_n; ++j) {
      const float px = lx[j], py = ly[j], pz = lz[j];
      const __m256 vpx = _mm256_set1_ps(px);
      const __m256 vpy = _mm256_set1_ps(py);
      const __m256 vpz = _mm256_set1_ps(pz);
      const PairCoeff* row = table.row(static_cast<mol::Element>(a.ltype[j]));
      const float qscale =
          kCoulomb ? kCoulombConst * a.lcharge[j] / a.dielectric : 0.0f;
      const __m256 vqscale = _mm256_set1_ps(qscale);
      double e = 0.0;
      for (std::size_t r = 0; r < a.n_runs; ++r) {
        const TypeRun& run = a.runs[r];
        const float ca = row[run.type].a;
        const float cb = row[run.type].b;
        const __m256 va = _mm256_set1_ps(ca);
        const __m256 vb = _mm256_set1_ps(cb);
        const std::size_t end = run.begin + run.count;
        std::size_t i = run.begin;
        __m256 vsum = _mm256_setzero_ps();
        for (; i + 8 <= end; i += 8) {
          const __m256 dx = _mm256_sub_ps(_mm256_loadu_ps(a.rx + i), vpx);
          const __m256 dy = _mm256_sub_ps(_mm256_loadu_ps(a.ry + i), vpy);
          const __m256 dz = _mm256_sub_ps(_mm256_loadu_ps(a.rz + i), vpz);
          __m256 r2 = _mm256_fmadd_ps(dz, dz, _mm256_fmadd_ps(dy, dy, _mm256_mul_ps(dx, dx)));
          r2 = _mm256_max_ps(r2, vmin_r2);
          const __m256 inv2 = _mm256_div_ps(vone, r2);
          const __m256 inv6 = _mm256_mul_ps(_mm256_mul_ps(inv2, inv2), inv2);
          __m256 pair = _mm256_mul_ps(_mm256_fmsub_ps(va, inv6, vb), inv6);
          if constexpr (kCoulomb) {
            const __m256 q = _mm256_mul_ps(vqscale, _mm256_loadu_ps(a.rcharge + i));
            pair = _mm256_fmadd_ps(q, inv2, pair);
          }
          if constexpr (kCutoff) {
            pair = _mm256_and_ps(pair, _mm256_cmp_ps(r2, vcut2, _CMP_LE_OQ));
          }
          vsum = _mm256_add_ps(vsum, pair);
        }
        e += hsum(vsum);
        // Scalar tail (< 8 atoms), same math as the vector body.
        for (; i < end; ++i) {
          const float dx = a.rx[i] - px;
          const float dy = a.ry[i] - py;
          const float dz = a.rz[i] - pz;
          const float r2 = std::max(dx * dx + dy * dy + dz * dz, kMinR2);
          const float inv2 = 1.0f / r2;
          const float inv6 = inv2 * inv2 * inv2;
          float pair = (ca * inv6 - cb) * inv6;
          if constexpr (kCoulomb) pair += qscale * a.rcharge[i] * inv2;
          e += (!kCutoff || r2 <= cut2s) ? pair : 0.0f;
        }
      }
      energy += e;
    }
    a.energy[p] += energy;
  }
}

}  // namespace

void score_block_tile_avx2(const BlockKernelArgs& a) {
  const bool cut = a.cutoff2 > 0.0f;
  if (a.coulomb) {
    cut ? score_block_tile<true, true>(a) : score_block_tile<true, false>(a);
  } else {
    cut ? score_block_tile<false, true>(a) : score_block_tile<false, false>(a);
  }
}

}  // namespace detail
}  // namespace metadock::scoring

#else  // !METADOCK_SIMD_AVX2

#include <cstdlib>

namespace metadock::scoring {

bool simd_kernel_compiled() noexcept { return false; }

namespace detail {

void score_block_tile_avx2(const BlockKernelArgs&) {
  // Unreachable: BatchScoringEngine refuses kAvx2 when !simd_kernel_compiled().
  std::abort();
}

}  // namespace detail
}  // namespace metadock::scoring

#endif  // METADOCK_SIMD_AVX2
