#include "scoring/grid_scorer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/cell_grid.h"
#include "scoring/pair_params.h"

namespace metadock::scoring {

namespace {
constexpr float kMinR2 = 0.01f;
constexpr float kCoulombConst = 332.0637f;
}  // namespace

GridScorer::GridScorer(const mol::Molecule& receptor, const mol::Molecule& ligand,
                       GridScorerOptions options)
    : options_(options), ligand_(LigandAtoms::from(ligand)) {
  if (receptor.empty() || ligand.empty()) {
    throw std::invalid_argument("GridScorer: receptor and ligand must be non-empty");
  }
  if (options_.spacing <= 0.0f || options_.cutoff <= 0.0f || options_.padding < 0.0f) {
    throw std::invalid_argument("GridScorer: spacing/cutoff must be positive");
  }

  box_ = receptor.bounds();
  box_.pad(options_.padding);
  const geom::Vec3 size = box_.size();
  nx_ = static_cast<int>(std::floor(size.x / options_.spacing)) + 1;
  ny_ = static_cast<int>(std::floor(size.y / options_.spacing)) + 1;
  nz_ = static_cast<int>(std::floor(size.z / options_.spacing)) + 1;

  // Which probe elements do we need?
  std::array<bool, static_cast<std::size_t>(mol::kElementCount)> needed{};
  for (std::uint8_t t : ligand_.type) needed[t] = true;

  const std::vector<geom::Vec3> positions = receptor.positions();
  const geom::CellGrid cells = geom::CellGrid::over_points(positions, options_.cutoff);
  const PairTable& table = PairTable::instance();
  const float cutoff2 = options_.cutoff * options_.cutoff;

  for (int t = 0; t < mol::kElementCount; ++t) {
    if (needed[static_cast<std::size_t>(t)]) {
      type_grids_[static_cast<std::size_t>(t)].assign(grid_points(), 0.0f);
      ++grids_used_;
    }
  }
  if (options_.coulomb) electro_grid_.assign(grid_points(), 0.0f);

  // Fill all grids in one sweep over lattice nodes: gather the receptor
  // atoms within the cutoff once per node, then accumulate every probe.
  for (int iz = 0; iz < nz_; ++iz) {
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        const geom::Vec3 p{box_.lo.x + static_cast<float>(ix) * options_.spacing,
                           box_.lo.y + static_cast<float>(iy) * options_.spacing,
                           box_.lo.z + static_cast<float>(iz) * options_.spacing};
        const std::size_t node =
            (static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + static_cast<std::size_t>(ix);
        cells.for_each_within(p, options_.cutoff, [&](std::uint32_t id, const geom::Vec3& a) {
          const float r2 = std::max(p.distance2(a), kMinR2);
          if (r2 > cutoff2) return;
          const float inv2 = 1.0f / r2;
          const float inv6 = inv2 * inv2 * inv2;
          const mol::Element re = receptor.element(id);
          for (int t = 0; t < mol::kElementCount; ++t) {
            auto& grid = type_grids_[static_cast<std::size_t>(t)];
            if (grid.empty()) continue;
            const PairCoeff& c = table.get(static_cast<mol::Element>(t), re);
            grid[node] += (c.a * inv6 - c.b) * inv6;
          }
          if (options_.coulomb) {
            electro_grid_[node] +=
                kCoulombConst * receptor.charge(id) * inv2 / options_.dielectric;
          }
        });
      }
    }
  }
}

double GridScorer::node_value(mol::Element e, int ix, int iy, int iz) const {
  const auto& grid = type_grids_[static_cast<std::size_t>(e)];
  if (grid.empty()) throw std::invalid_argument("GridScorer::node_value: no grid for element");
  if (ix < 0 || iy < 0 || iz < 0 || ix >= nx_ || iy >= ny_ || iz >= nz_) {
    throw std::out_of_range("GridScorer::node_value: node outside lattice");
  }
  return grid[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + static_cast<std::size_t>(ix)];
}

double GridScorer::sample(const std::vector<float>& grid, const geom::Vec3& p,
                          bool& outside) const {
  const float fx = (p.x - box_.lo.x) / options_.spacing;
  const float fy = (p.y - box_.lo.y) / options_.spacing;
  const float fz = (p.z - box_.lo.z) / options_.spacing;
  const int ix = static_cast<int>(std::floor(fx));
  const int iy = static_cast<int>(std::floor(fy));
  const int iz = static_cast<int>(std::floor(fz));
  if (ix < 0 || iy < 0 || iz < 0 || ix + 1 >= nx_ || iy + 1 >= ny_ || iz + 1 >= nz_) {
    outside = true;
    return 0.0;
  }
  const float tx = fx - static_cast<float>(ix);
  const float ty = fy - static_cast<float>(iy);
  const float tz = fz - static_cast<float>(iz);
  auto at = [&](int dx, int dy, int dz) {
    return static_cast<double>(
        grid[(static_cast<std::size_t>(iz + dz) * ny_ + (iy + dy)) * nx_ +
             static_cast<std::size_t>(ix + dx)]);
  };
  const double c00 = at(0, 0, 0) * (1 - tx) + at(1, 0, 0) * tx;
  const double c10 = at(0, 1, 0) * (1 - tx) + at(1, 1, 0) * tx;
  const double c01 = at(0, 0, 1) * (1 - tx) + at(1, 0, 1) * tx;
  const double c11 = at(0, 1, 1) * (1 - tx) + at(1, 1, 1) * tx;
  const double c0 = c00 * (1 - ty) + c10 * ty;
  const double c1 = c01 * (1 - ty) + c11 * ty;
  return c0 * (1 - tz) + c1 * tz;
}

double GridScorer::score_transformed(const float* tx, const float* ty, const float* tz) const {
  double energy = 0.0;
  for (std::size_t j = 0; j < ligand_.size(); ++j) {
    const geom::Vec3 p{tx[j], ty[j], tz[j]};
    bool outside = false;
    double e = sample(type_grids_[ligand_.type[j]], p, outside);
    if (options_.coulomb && !outside) {
      bool out2 = false;
      e += static_cast<double>(ligand_.charge[j]) * sample(electro_grid_, p, out2);
    }
    energy += outside ? options_.out_of_box_penalty : e;
  }
  return energy;
}

double GridScorer::score(const Pose& pose) const {
  thread_local std::vector<float> tx, ty, tz;
  tx.resize(ligand_.size());
  ty.resize(ligand_.size());
  tz.resize(ligand_.size());
  detail::transform_ligand(ligand_, pose, tx.data(), ty.data(), tz.data());
  return score_transformed(tx.data(), ty.data(), tz.data());
}

void GridScorer::score_batch(std::span<const Pose> poses, std::span<double> out) const {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("GridScorer::score_batch: size mismatch");
  }
  // Same pose-transform scratch scheme as the batched LJ engine: transform
  // the whole batch once, then interpolate from the packed coordinates.
  thread_local std::vector<float> tx, ty, tz;
  const std::size_t lig_n = ligand_.size();
  tx.resize(poses.size() * lig_n);
  ty.resize(poses.size() * lig_n);
  tz.resize(poses.size() * lig_n);
  for (std::size_t p = 0; p < poses.size(); ++p) {
    detail::transform_ligand(ligand_, poses[p], tx.data() + p * lig_n, ty.data() + p * lig_n,
                             tz.data() + p * lig_n);
  }
  for (std::size_t p = 0; p < poses.size(); ++p) {
    out[p] = score_transformed(tx.data() + p * lig_n, ty.data() + p * lig_n,
                               tz.data() + p * lig_n);
  }
}

}  // namespace metadock::scoring
