// Grid-based scoring — the AutoDock-style alternative scoring function the
// paper's conclusions point to ("with many other types of scoring functions
// still to be explored").
//
// The receptor's interaction field is precomputed once per probe element on
// a regular lattice: G_t(x) = sum over receptor atoms of LJ(t, type_i,
// |x - x_i|) within a cutoff, plus one electrostatic grid for the Coulomb
// term.  Scoring a pose then costs O(ligand atoms) trilinear interpolations
// instead of O(receptor x ligand) pair evaluations — the classic
// memory-for-compute trade of docking codes.  Accuracy degrades near steep
// repulsive walls (finite lattice spacing), which the tests quantify.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "geom/aabb.h"
#include "mol/molecule.h"
#include "scoring/lennard_jones.h"
#include "scoring/pose.h"

namespace metadock::scoring {

struct GridScorerOptions {
  /// Lattice spacing (Angstrom).  AutoDock's classic default; coarser
  /// grids smear the repulsive wall and bias energies upward (quantified
  /// in the tests: mean relative error ~0.14 at 0.35 A vs ~0.96 at 0.75 A).
  float spacing = 0.375f;
  /// Padding beyond the receptor bounds so surface poses stay in-box.
  float padding = 8.0f;
  /// Pair interactions beyond this distance are dropped (the r^-6 tail at
  /// 8 A is < 2% of the well depth for typical parameters).
  float cutoff = 8.0f;
  /// Include the electrostatic grid.
  bool coulomb = false;
  float dielectric = 4.0f;
  /// Energy assigned per ligand atom that leaves the grid box.
  double out_of_box_penalty = 1e4;
};

class GridScorer {
 public:
  /// Builds probe grids for every element that occurs in `ligand`.
  GridScorer(const mol::Molecule& receptor, const mol::Molecule& ligand,
             GridScorerOptions options = {});

  /// Interpolated interaction energy of a posed ligand.
  [[nodiscard]] double score(const Pose& pose) const;

  void score_batch(std::span<const Pose> poses, std::span<double> out) const;

  /// Exact (non-interpolated) probe energy at a lattice node — what the
  /// grid stores; exposed for tests.
  [[nodiscard]] double node_value(mol::Element e, int ix, int iy, int iz) const;

  [[nodiscard]] std::size_t grid_points() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] std::size_t grids_built() const noexcept { return grids_used_; }
  [[nodiscard]] const geom::Aabb& box() const noexcept { return box_; }
  [[nodiscard]] const GridScorerOptions& options() const noexcept { return options_; }

  /// Grid memory footprint in bytes (what a device would have to hold).
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return grid_points() * sizeof(float) * (grids_used_ + (options_.coulomb ? 1 : 0));
  }

 private:
  /// Trilinear interpolation into one grid; sets `outside` when p leaves
  /// the lattice.
  [[nodiscard]] double sample(const std::vector<float>& grid, const geom::Vec3& p,
                              bool& outside) const;

  /// Interpolated energy of one already-transformed ligand (tx/ty/tz hold
  /// ligand_.size() world-space coordinates).
  [[nodiscard]] double score_transformed(const float* tx, const float* ty, const float* tz) const;

  GridScorerOptions options_;
  geom::Aabb box_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  /// One grid per element index (empty for elements absent from ligands).
  std::array<std::vector<float>, static_cast<std::size_t>(mol::kElementCount)> type_grids_;
  std::vector<float> electro_grid_;
  std::size_t grids_used_ = 0;
  LigandAtoms ligand_;
};

}  // namespace metadock::scoring
