// The paper's scoring function: Lennard-Jones free energy of a posed ligand
// against the whole receptor, optionally with a Coulomb (electrostatic)
// term.  Two code paths:
//
//   * score()        — straightforward reference loop.
//   * score_tiled()  — receptor traversed in fixed-size tiles with the
//                      transformed ligand kept in a small hot buffer; this
//                      is the CPU mirror of the paper's shared-memory tiling
//                      ("Our CUDA implementations take advantage of data
//                      locality through tiling ... via shared memory") and
//                      is the exact loop structure the gpusim kernel runs.
//
// Both paths compute the *full* receptor x ligand pair sum, as the paper
// does (no cutoff by default), accumulating in double.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mol/molecule.h"
#include "scoring/pair_params.h"
#include "scoring/pose.h"

namespace metadock::scoring {

/// Modeled single-precision flops for one receptor-ligand pair interaction
/// (distance, r^-6/r^-12 evaluation, accumulate).  Shared by the CPU and
/// GPU cost models so their ratio — the speed-up the paper reports — only
/// depends on modeled hardware throughput, not on bookkeeping choices.
inline constexpr double kModelFlopsPerPair = 16.0;

struct ScoringOptions {
  /// Include the Coulomb term (paper's scoring uses plain LJ "for
  /// simplicity"; the electrostatic term is the documented extension).
  bool coulomb = false;
  /// Distance-dependent dielectric constant for the Coulomb term.
  float dielectric = 4.0f;
  /// Interaction cutoff in Angstrom; 0 means every pair counts (the
  /// paper's full pair sum).  A finite cutoff matches the grid scorer.
  float cutoff = 0.0f;
  /// Receptor tile size for the tiled path, in atoms.  256 atoms of
  /// (x,y,z,type) is ~4 KB — comfortably a shared-memory tile per block.
  int tile_size = 256;
};

/// Flat, type-erased ligand snapshot used by the inner loops: local
/// coordinates plus per-atom LJ row pointers resolved once.
struct LigandAtoms {
  std::vector<float> x, y, z;
  std::vector<std::uint8_t> type;
  std::vector<float> charge;

  static LigandAtoms from(const mol::Molecule& ligand);
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
};

/// Receptor snapshot in SoA form.
struct ReceptorAtoms {
  std::vector<float> x, y, z;
  std::vector<std::uint8_t> type;
  std::vector<float> charge;

  static ReceptorAtoms from(const mol::Molecule& receptor);
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
};

class LennardJonesScorer {
 public:
  LennardJonesScorer(const mol::Molecule& receptor, const mol::Molecule& ligand,
                     ScoringOptions options = {});

  /// Reference scalar path.
  [[nodiscard]] double score(const Pose& pose) const;

  /// Tiled path; numerically equal to score() up to FP association order
  /// (tests assert tight agreement).
  [[nodiscard]] double score_tiled(const Pose& pose) const;

  /// Scores many poses into `out` (same indexing).  Sequential; device
  /// executors parallelize above this level.
  void score_batch(std::span<const Pose> poses, std::span<double> out) const;

  [[nodiscard]] std::size_t receptor_size() const noexcept { return receptor_.size(); }
  [[nodiscard]] std::size_t ligand_size() const noexcept { return ligand_.size(); }
  [[nodiscard]] const ScoringOptions& options() const noexcept { return options_; }
  [[nodiscard]] const ReceptorAtoms& receptor() const noexcept { return receptor_; }
  [[nodiscard]] const LigandAtoms& ligand() const noexcept { return ligand_; }

  /// Pair interactions per single pose evaluation (receptor x ligand) —
  /// the cost models' basic unit of work.
  [[nodiscard]] std::uint64_t pairs_per_eval() const noexcept {
    return static_cast<std::uint64_t>(receptor_.size()) * ligand_.size();
  }

 private:
  ReceptorAtoms receptor_;
  LigandAtoms ligand_;
  ScoringOptions options_;
};

namespace detail {

/// Poses can momentarily place atoms on top of each other during random
/// initialization; every pair loop clamps r^2 so the r^-12 wall stays
/// finite.  Shared by all scoring paths (reference, tiled, batched, grid).
inline constexpr float kMinR2 = 0.01f;

/// Coulomb constant in kcal*Angstrom/(mol*e^2).
inline constexpr float kCoulombConst = 332.0637f;

/// Scores one transformed-ligand buffer against one receptor tile.  Shared
/// by the CPU tiled path and the gpusim kernel.
double score_tile(const float* rx, const float* ry, const float* rz, const std::uint8_t* rtype,
                  const float* rcharge, std::size_t tile_n, const float* lx, const float* ly,
                  const float* lz, const std::uint8_t* ltype, const float* lcharge,
                  std::size_t lig_n, bool coulomb, float dielectric, float cutoff2);

/// Applies `pose` to every ligand atom, writing receptor-space coordinates
/// into tx/ty/tz (each at least lig.size() floats).  The shared
/// pose-transform primitive behind the tiled, batched, and grid paths.
void transform_ligand(const LigandAtoms& lig, const Pose& pose, float* tx, float* ty, float* tz);

}  // namespace detail

}  // namespace metadock::scoring
