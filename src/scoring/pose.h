// A pose places a rigid ligand copy in receptor space.  In the paper's
// vocabulary this is a *conformation*: "copies of the same ligand ...
// different from each other as they have a different position and
// orientation with respect to each spot".
#pragma once

#include "geom/quat.h"
#include "geom/vec3.h"

namespace metadock::scoring {

struct Pose {
  geom::Vec3 position{};
  geom::Quat orientation = geom::Quat::identity();

  /// Ligand-local point -> receptor space.
  [[nodiscard]] geom::Vec3 apply(const geom::Vec3& local) const {
    return orientation.rotate(local) + position;
  }
};

}  // namespace metadock::scoring
