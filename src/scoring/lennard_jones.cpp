#include "scoring/lennard_jones.h"

#include <algorithm>
#include <stdexcept>

namespace metadock::scoring {

namespace {

template <typename Mol>
void fill_soa(const Mol& m, std::vector<float>& x, std::vector<float>& y, std::vector<float>& z,
              std::vector<std::uint8_t>& type, std::vector<float>& charge) {
  const std::size_t n = m.size();
  x.resize(n);
  y.resize(n);
  z.resize(n);
  type.resize(n);
  charge.resize(n);
  std::copy(m.xs().begin(), m.xs().end(), x.begin());
  std::copy(m.ys().begin(), m.ys().end(), y.begin());
  std::copy(m.zs().begin(), m.zs().end(), z.begin());
  for (std::size_t i = 0; i < n; ++i) type[i] = static_cast<std::uint8_t>(m.element(i));
  std::copy(m.charges().begin(), m.charges().end(), charge.begin());
}

}  // namespace

LigandAtoms LigandAtoms::from(const mol::Molecule& ligand) {
  LigandAtoms out;
  fill_soa(ligand, out.x, out.y, out.z, out.type, out.charge);
  return out;
}

ReceptorAtoms ReceptorAtoms::from(const mol::Molecule& receptor) {
  ReceptorAtoms out;
  fill_soa(receptor, out.x, out.y, out.z, out.type, out.charge);
  return out;
}

LennardJonesScorer::LennardJonesScorer(const mol::Molecule& receptor, const mol::Molecule& ligand,
                                       ScoringOptions options)
    : receptor_(ReceptorAtoms::from(receptor)),
      ligand_(LigandAtoms::from(ligand)),
      options_(options) {
  if (receptor.empty() || ligand.empty()) {
    throw std::invalid_argument("LennardJonesScorer: receptor and ligand must be non-empty");
  }
  if (options_.tile_size <= 0) {
    throw std::invalid_argument("LennardJonesScorer: tile_size must be positive");
  }
}

namespace detail {

double score_tile(const float* rx, const float* ry, const float* rz, const std::uint8_t* rtype,
                  const float* rcharge, std::size_t tile_n, const float* lx, const float* ly,
                  const float* lz, const std::uint8_t* ltype, const float* lcharge,
                  std::size_t lig_n, bool coulomb, float dielectric, float cutoff2) {
  const PairTable& table = PairTable::instance();
  double energy = 0.0;
  for (std::size_t j = 0; j < lig_n; ++j) {
    const float px = lx[j], py = ly[j], pz = lz[j];
    const PairCoeff* row = table.row(static_cast<mol::Element>(ltype[j]));
    const float qj = lcharge[j];
    double e = 0.0;
    for (std::size_t i = 0; i < tile_n; ++i) {
      const float dx = rx[i] - px;
      const float dy = ry[i] - py;
      const float dz = rz[i] - pz;
      const float r2 = std::max(dx * dx + dy * dy + dz * dz, kMinR2);
      const float inv2 = 1.0f / r2;
      const float inv6 = inv2 * inv2 * inv2;
      const PairCoeff& c = row[rtype[i]];
      float pair = (c.a * inv6 - c.b) * inv6;
      if (coulomb) {
        // Distance-dependent dielectric: eps(r) = dielectric * r.
        pair += kCoulombConst * qj * rcharge[i] * inv2 / dielectric;
      }
      // Branchless cutoff keeps the loop vectorizable.
      e += (cutoff2 <= 0.0f || r2 <= cutoff2) ? pair : 0.0f;
    }
    energy += e;
  }
  return energy;
}

void transform_ligand(const LigandAtoms& lig, const Pose& pose, float* tx, float* ty, float* tz) {
  const std::size_t n = lig.size();
  for (std::size_t j = 0; j < n; ++j) {
    const geom::Vec3 p = pose.apply({lig.x[j], lig.y[j], lig.z[j]});
    tx[j] = p.x;
    ty[j] = p.y;
    tz[j] = p.z;
  }
}

}  // namespace detail

double LennardJonesScorer::score(const Pose& pose) const {
  // One "tile" spanning the whole receptor: the reference path shares the
  // pair kernel with the tiled path instead of hand-rolling a third loop.
  thread_local std::vector<float> tx, ty, tz;
  tx.resize(ligand_.size());
  ty.resize(ligand_.size());
  tz.resize(ligand_.size());
  detail::transform_ligand(ligand_, pose, tx.data(), ty.data(), tz.data());
  return detail::score_tile(receptor_.x.data(), receptor_.y.data(), receptor_.z.data(),
                            receptor_.type.data(), receptor_.charge.data(), receptor_.size(),
                            tx.data(), ty.data(), tz.data(), ligand_.type.data(),
                            ligand_.charge.data(), ligand_.size(), options_.coulomb,
                            options_.dielectric, options_.cutoff * options_.cutoff);
}

double LennardJonesScorer::score_tiled(const Pose& pose) const {
  thread_local std::vector<float> tx, ty, tz;
  tx.resize(ligand_.size());
  ty.resize(ligand_.size());
  tz.resize(ligand_.size());
  detail::transform_ligand(ligand_, pose, tx.data(), ty.data(), tz.data());
  const auto tile = static_cast<std::size_t>(options_.tile_size);
  const float cutoff2 = options_.cutoff * options_.cutoff;
  double energy = 0.0;
  for (std::size_t base = 0; base < receptor_.size(); base += tile) {
    const std::size_t n = std::min(tile, receptor_.size() - base);
    energy += detail::score_tile(receptor_.x.data() + base, receptor_.y.data() + base,
                                 receptor_.z.data() + base, receptor_.type.data() + base,
                                 receptor_.charge.data() + base, n, tx.data(), ty.data(),
                                 tz.data(), ligand_.type.data(), ligand_.charge.data(),
                                 ligand_.size(), options_.coulomb, options_.dielectric, cutoff2);
  }
  return energy;
}

void LennardJonesScorer::score_batch(std::span<const Pose> poses, std::span<double> out) const {
  if (poses.size() != out.size()) {
    throw std::invalid_argument("score_batch: poses and out must have equal length");
  }
  for (std::size_t i = 0; i < poses.size(); ++i) out[i] = score_tiled(poses[i]);
}

}  // namespace metadock::scoring
