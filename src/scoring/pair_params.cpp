#include "scoring/pair_params.h"

#include <cmath>

namespace metadock::scoring {

PairTable::PairTable() {
  for (int i = 0; i < mol::kElementCount; ++i) {
    for (int j = 0; j < mol::kElementCount; ++j) {
      const mol::LjParams pi = mol::lj_params(static_cast<mol::Element>(i));
      const mol::LjParams pj = mol::lj_params(static_cast<mol::Element>(j));
      // Lorentz-Berthelot: arithmetic-mean radius, geometric-mean depth.
      const double rmin = static_cast<double>(pi.rmin_half) + pj.rmin_half;
      const double eps = std::sqrt(static_cast<double>(pi.epsilon) * pj.epsilon);
      const double r6 = std::pow(rmin, 6.0);
      table_[static_cast<std::size_t>(i) * mol::kElementCount + j] = {
          static_cast<float>(eps * r6 * r6), static_cast<float>(2.0 * eps * r6)};
    }
  }
}

const PairTable& PairTable::instance() {
  static const PairTable table;
  return table;
}

}  // namespace metadock::scoring
