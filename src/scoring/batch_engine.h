// Batched, SIMD-vectorized host scoring engine.
//
// The tiled path (`LennardJonesScorer::score_tiled`) still re-streams the
// whole receptor once per pose and cannot vectorize its inner loop because
// of the per-atom `PairCoeff` gather (`row[rtype[i]]`).  This engine
// restructures the hot loop along two axes:
//
//   1. Pose-blocked x receptor-tiled traversal: `score_batch` transforms a
//      block of poses once, then streams each receptor tile through *all*
//      poses in the block before moving on — the CPU-cache mirror of the
//      paper's shared-memory tile being reused by every warp in a block.
//      The receptor is read from memory once per block instead of once per
//      pose.
//
//   2. Type-partitioned receptor layout: atoms of the same element form
//      contiguous runs inside each tile, so the `PairCoeff` lookup becomes
//      a loop constant per run and the inner loop is pure FMA work that
//      vectorizes cleanly.
//
// Two kernels back the engine: a portable scalar one and an explicit
// AVX2/FMA one (compiled when METADOCK_SIMD is ON and the target is
// x86-64; dispatched at runtime via cpuid).  Both traverse runs in the
// same order and accumulate per-pair float terms into double, so they
// agree with each other — and with score()/score_tiled() — up to FP
// association order (the equivalence property tests pin this down).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "scoring/lennard_jones.h"
#include "scoring/pose.h"
#include "scoring/pose_block.h"

namespace metadock::scoring {

// ---------------------------------------------------------------------------
// SIMD capability / implementation selection

enum class SimdLevel : std::uint8_t { kScalar, kAvx2, kAvx512 };

/// True when the AVX2/FMA kernel was compiled into this binary
/// (METADOCK_SIMD=ON on an x86-64 target).
[[nodiscard]] bool simd_kernel_compiled() noexcept;

/// True when the AVX2 kernel is compiled *and* the CPU we are running on
/// supports AVX2+FMA (runtime cpuid dispatch).
[[nodiscard]] bool simd_kernel_supported() noexcept;

/// True when the AVX-512 kernel was compiled into this binary (requires
/// METADOCK_SIMD=ON, an x86-64 target and a compiler accepting -mavx512f).
[[nodiscard]] bool avx512_kernel_compiled() noexcept;

/// True when the AVX-512 kernel is compiled *and* the CPU supports
/// AVX-512F (runtime cpuid dispatch; the kernel uses only the F subset).
[[nodiscard]] bool avx512_kernel_supported() noexcept;

/// Highest level this host can actually run: kAvx512 > kAvx2 > kScalar.
/// The scalar kernel is always present — dispatch can never come up empty.
[[nodiscard]] SimdLevel default_simd_level() noexcept;

[[nodiscard]] std::string_view simd_level_name(SimdLevel level) noexcept;

/// True when `level` can execute on this host (kScalar always can).
[[nodiscard]] bool simd_level_supported(SimdLevel level) noexcept;

/// Parses "scalar" | "avx2" | "avx512" | "auto" (auto resolves to
/// default_simd_level()); throws std::invalid_argument otherwise.  Does
/// NOT check host support — BatchScoringEngine validates at construction.
[[nodiscard]] SimdLevel simd_level_from(std::string_view name);

/// Host scoring implementation used behind the evaluators / the virtual
/// kernels (`--scoring-impl` on the CLI):
///   kTiled       — the per-pose cache-blocked loop (previous behaviour),
///   kBatched     — pose-blocked + type-partitioned, scalar kernel,
///   kBatchedSimd — pose-blocked + type-partitioned, AVX2/FMA kernel,
///   kAuto        — kBatchedSimd when the CPU supports it, else kBatched.
enum class ScoringImpl : std::uint8_t { kAuto, kTiled, kBatched, kBatchedSimd };

/// Parses "auto" | "tiled" | "batched" (alias "batched-scalar") |
/// "batched-simd"; throws std::invalid_argument otherwise.
[[nodiscard]] ScoringImpl scoring_impl_from(std::string_view name);

/// Resolves kAuto to a concrete implementation for this host:
/// kBatchedSimd when the AVX2 kernel is compiled in and the CPU supports
/// it, kBatched otherwise.  Non-auto values pass through unchanged.
[[nodiscard]] ScoringImpl resolve_scoring_impl(ScoringImpl impl) noexcept;

[[nodiscard]] std::string_view scoring_impl_name(ScoringImpl impl) noexcept;

// ---------------------------------------------------------------------------
// Type-partitioned receptor layout

/// One maximal run of same-element receptor atoms inside a tile; `begin`
/// indexes the partitioned SoA arrays.
struct TypeRun {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
  std::uint8_t type = 0;
};

/// Receptor SoA reordered so that atoms of the same element are contiguous
/// inside each tile.  Tile boundaries match the unpartitioned layout (atom
/// `i` stays in tile `i / tile_size`); only the order *within* a tile
/// changes, and the permutation is stable per element, so the energy sum
/// differs from the tiled path only by FP association order.
struct PartitionedReceptor {
  std::vector<float> x, y, z, charge;
  std::vector<std::uint8_t> type;
  /// perm[partitioned index] = original receptor index (round-trip tested).
  std::vector<std::uint32_t> perm;
  /// All runs, tile-major; tile t owns runs [tile_runs[t], tile_runs[t+1]).
  std::vector<TypeRun> runs;
  std::vector<std::uint32_t> tile_runs;
  std::size_t tile_size = 0;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] std::size_t tiles() const noexcept {
    return tile_runs.empty() ? 0 : tile_runs.size() - 1;
  }

  static PartitionedReceptor build(const ReceptorAtoms& receptor, std::size_t tile_size);
};

// ---------------------------------------------------------------------------
// The engine

struct BatchEngineOptions {
  /// Poses transformed and kept hot per receptor sweep (the CPU analogue of
  /// warps-per-block).  Each pose costs lig_n * 12 bytes of scratch.
  int pose_block = 16;
  /// Kernel to run; construction throws when kAvx2 is requested on a host
  /// without AVX2/FMA (use default_simd_level() to auto-detect).
  SimdLevel simd = default_simd_level();
};

class BatchScoringEngine {
 public:
  /// Snapshots the scorer's receptor into the partitioned layout.  Holds a
  /// reference to the scorer's ligand and options, so the scorer must
  /// outlive the engine (same lifetime contract as DeviceScoringKernel).
  explicit BatchScoringEngine(const LennardJonesScorer& scorer, BatchEngineOptions options = {});

  /// Scores every pose into out (same indexing), pose_block poses at a
  /// time.  Thread-safe: scratch lives in the calling thread's arena
  /// (util::thread_arena), shared state is const.
  void score_batch(std::span<const Pose> poses, std::span<double> out) const;

  /// Columnar entry point: identical math and blocking, but poses are
  /// read straight out of SoA columns with no gather/repack.  Produces
  /// bit-identical results to the AoS overload (same kernel, same order).
  void score_batch(const PoseSoAView& poses, std::span<double> out) const;

  /// Single-pose convenience (a block of one).
  [[nodiscard]] double score(const Pose& pose) const;

  [[nodiscard]] const PartitionedReceptor& receptor() const noexcept { return receptor_; }
  [[nodiscard]] SimdLevel simd() const noexcept { return options_.simd; }
  [[nodiscard]] int pose_block() const noexcept { return options_.pose_block; }
  [[nodiscard]] std::uint64_t pairs_per_eval() const noexcept {
    return static_cast<std::uint64_t>(receptor_.size()) * ligand_->size();
  }

 private:
  void score_block(const Pose* poses, std::size_t n, double* out) const;
  template <typename PoseAt>
  void score_block_impl(PoseAt&& pose_at, std::size_t n, double* out) const;

  const LigandAtoms* ligand_;
  ScoringOptions scoring_;
  BatchEngineOptions options_;
  PartitionedReceptor receptor_;
};

// ---------------------------------------------------------------------------
// Kernels (internal; exposed for the equivalence tests)

namespace detail {

/// One receptor tile (as a run range) against a block of transformed
/// ligands.  lx/ly/lz are pose-major: pose p's atom j lives at
/// [p * lig_n + j].  energy[p] is accumulated into (callers zero it once
/// per batch).
struct BlockKernelArgs {
  const float* rx = nullptr;
  const float* ry = nullptr;
  const float* rz = nullptr;
  const float* rcharge = nullptr;
  const TypeRun* runs = nullptr;
  std::size_t n_runs = 0;
  const float* lx = nullptr;
  const float* ly = nullptr;
  const float* lz = nullptr;
  const std::uint8_t* ltype = nullptr;
  const float* lcharge = nullptr;
  std::size_t lig_n = 0;
  std::size_t n_poses = 0;
  bool coulomb = false;
  float dielectric = 4.0f;
  float cutoff2 = 0.0f;
  double* energy = nullptr;
};

/// Portable fallback: same run traversal as the AVX2 kernel, plain scalar
/// float math, double accumulation.
void score_block_tile_scalar(const BlockKernelArgs& args);

/// Explicit AVX2/FMA kernel; calling it when !simd_kernel_compiled() is a
/// logic error (std::terminate via the stub).
void score_block_tile_avx2(const BlockKernelArgs& args);

/// Explicit AVX-512F kernel (16 lanes); calling it when
/// !avx512_kernel_compiled() is a logic error (std::terminate via the stub).
void score_block_tile_avx512(const BlockKernelArgs& args);

}  // namespace detail

}  // namespace metadock::scoring
