// Sharded concurrent score cache.
//
// The Improve phase of the metaheuristic revisits conformations: local
// search proposes, rejects, and re-proposes poses near the same basin,
// restarted runs re-traverse early generations, and ensemble/screening
// drivers dock against the same receptor repeatedly.  Rescoring an
// already-scored conformation is pure waste — the score is a
// deterministic function of the pose — so a cache turns those revisits
// into a hash probe.
//
// Correctness contract (load-bearing for the property tests):
//   * The stored key is the EXACT bit pattern of the 7 pose floats.
//     A hit therefore returns the exact double the engine computed for
//     exactly that pose — never a neighbour's score — so cached and
//     uncached runs are bit-identical no matter what gets evicted.
//   * Quantization affects only the HASH: poses are snapped to a grid of
//     `quantum` before hashing, so near-duplicate conformations land in
//     the same shard/bucket neighbourhood.  The cost is deliberate
//     "false sharing of poses": distinct poses in one quantization cell
//     collide and fight over probe slots (see DESIGN.md §12.3).  That
//     only costs hit rate, never accuracy.
//   * The seeded hash (util::hash_combine chain) keeps bucket placement
//     deterministic for a given ScoreCacheOptions::seed, so eviction
//     patterns — and thus hit/miss traces — are reproducible run to run.
//
// Concurrency: open addressing within fixed-size shards, one spinlock
// per shard.  Shards never resize or rehash, so a reference to the shard
// array is stable for the cache's lifetime; all slot access happens
// under the shard lock — the slots and counters are GUARDED_BY it, so
// the clang thread-safety gate (DESIGN.md §16) proves that statically.
// This is the one deliberately-shared mutable structure in the hot loop
// (arenas are thread-confined), and the TSan stress suite hammers it
// from many threads as the dynamic backstop.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "scoring/pose.h"
#include "util/sync.h"

namespace metadock::scoring {

struct ScoreCacheOptions {
  /// Total entry budget across all shards (rounded up to a power of two
  /// per shard).  0 is invalid — callers gate "cache off" themselves.
  std::size_t capacity = std::size_t{1} << 16;
  /// Number of independent lock domains (rounded up to a power of two).
  std::size_t shards = 8;
  /// Hash quantization cell, in the same units as pose coordinates.
  /// Smaller cells mean fewer hash collisions between distinct poses;
  /// larger cells cluster near-duplicates.  Never affects scores.
  float quantum = 1.0f / 1024.0f;
  /// Seed for the bucket-placement hash.
  std::uint64_t seed = 0x5c07ecac8e0001ULL;
  /// Linear-probe window before declaring a miss / evicting at home.
  std::size_t max_probe = 16;
};

struct ScoreCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::size_t shards = 0;
};

class ScoreCache {
 public:
  explicit ScoreCache(ScoreCacheOptions options = {});

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// On hit writes the cached score to *out and returns true.
  bool lookup(const Pose& pose, double* out);

  /// Records pose -> score.  Duplicate keys overwrite (the score is a
  /// pure function of the pose, so the value is necessarily identical).
  void insert(const Pose& pose, double score);

  /// Drops all entries and zeroes the counters.
  void clear();

  [[nodiscard]] ScoreCacheStats stats() const;

  [[nodiscard]] const ScoreCacheOptions& options() const { return options_; }

 private:
  /// Exact bit pattern of the 7 pose floats — equality on this is
  /// equality of the pose as the scorer sees it.
  using Key = std::array<std::uint32_t, 7>;

  struct Entry {
    Key key{};
    double score = 0.0;
    bool occupied = false;
  };

  struct Shard {
    mutable util::SpinLock lock;
    std::vector<Entry> slots GUARDED_BY(lock);
    std::uint64_t hits GUARDED_BY(lock) = 0;
    std::uint64_t misses GUARDED_BY(lock) = 0;
    std::uint64_t inserts GUARDED_BY(lock) = 0;
    std::uint64_t evictions GUARDED_BY(lock) = 0;
    std::size_t entries GUARDED_BY(lock) = 0;
  };

  static Key key_of(const Pose& pose);
  [[nodiscard]] std::uint64_t hash_of(const Pose& pose) const;
  Shard& shard_for(std::uint64_t hash) { return shards_[(hash >> 48) & shard_mask_]; }

  ScoreCacheOptions options_;
  std::size_t shard_mask_ = 0;
  std::size_t slot_mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace metadock::scoring
