// Structure-of-arrays pose storage.
//
// The batched SIMD engine consumes conformations column-wise: all the
// position-x values contiguous, then position-y, and so on.  With the
// AoS `Pose` struct (7 interleaved floats) every SIMD lane-fill is a
// gather; with this layout it is seven unit-stride streams.  PoseSoA is
// the owning staging buffer (storage carved from a caller-provided
// arena, so (re)binding per generation allocates nothing after warm-up)
// and PoseSoAView is the non-owning read view handed across interfaces.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "scoring/pose.h"
#include "util/pool.h"

namespace metadock::scoring {

/// Read-only columnar view over `n` poses.  Columns are parallel arrays;
/// the view does not own them and must not outlive the backing storage.
struct PoseSoAView {
  const float* px = nullptr;
  const float* py = nullptr;
  const float* pz = nullptr;
  const float* qw = nullptr;
  const float* qx = nullptr;
  const float* qy = nullptr;
  const float* qz = nullptr;
  std::size_t n = 0;

  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] bool empty() const { return n == 0; }

  /// Reassemble pose `i` (cold paths / adapters only; hot code reads columns).
  [[nodiscard]] Pose get(std::size_t i) const {
    Pose p;
    p.position = {px[i], py[i], pz[i]};
    p.orientation = {qw[i], qx[i], qy[i], qz[i]};
    return p;
  }
};

/// Owning SoA staging buffer with fixed capacity.  bind() carves the
/// seven columns out of an arena; push()/set() fill them.  Capacity is a
/// hard limit — exceeding it throws rather than reallocating, keeping
/// views stable and the hot loop allocation-free.
class PoseSoA {
 public:
  PoseSoA() = default;
  PoseSoA(util::Arena& arena, std::size_t capacity) { bind(arena, capacity); }

  void bind(util::Arena& arena, std::size_t capacity) {
    px_ = arena.make_span<float>(capacity);
    py_ = arena.make_span<float>(capacity);
    pz_ = arena.make_span<float>(capacity);
    qw_ = arena.make_span<float>(capacity);
    qx_ = arena.make_span<float>(capacity);
    qy_ = arena.make_span<float>(capacity);
    qz_ = arena.make_span<float>(capacity);
    capacity_ = capacity;
    size_ = 0;
  }

  void clear() { size_ = 0; }

  /// Moves the fill cursor without touching column contents (slots in
  /// [old size, n) keep whatever bind() zero-filled / set() last wrote).
  void set_size(std::size_t n) {
    if (n > capacity_) throw std::length_error("PoseSoA: capacity exceeded");
    size_ = n;
  }

  void push(const Pose& p) {
    if (size_ >= capacity_) throw std::length_error("PoseSoA: capacity exceeded");
    set(size_++, p);
  }

  /// Overwrite slot i (must be < size()).
  void set(std::size_t i, const Pose& p) {
    px_[i] = p.position.x;
    py_[i] = p.position.y;
    pz_[i] = p.position.z;
    qw_[i] = p.orientation.w;
    qx_[i] = p.orientation.x;
    qy_[i] = p.orientation.y;
    qz_[i] = p.orientation.z;
  }

  [[nodiscard]] Pose get(std::size_t i) const { return view_all().get(i); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// View over the filled prefix [0, size()).
  [[nodiscard]] PoseSoAView view() const {
    PoseSoAView v = view_all();
    v.n = size_;
    return v;
  }

 private:
  [[nodiscard]] PoseSoAView view_all() const {
    return {px_.data(), py_.data(), pz_.data(), qw_.data(), qx_.data(), qy_.data(), qz_.data(),
            capacity_};
  }

  std::span<float> px_, py_, pz_, qw_, qx_, qy_, qz_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace metadock::scoring
