// Explicit AVX-512F kernel for the batched scoring engine.
//
// Same structure as the AVX2 TU one directory entry up: this is the only
// TU compiled with -mavx512f (when METADOCK_SIMD is ON, the target is
// x86-64 and the compiler accepts the flag); batch_engine.cpp dispatches
// to it at runtime via cpuid, and the stub at the bottom keeps the
// symbol defined in every other configuration.
//
// Differences from the AVX2 kernel, all deliberate:
//   * 16 lanes per iteration instead of 8; runs shorter than a vector
//     fall to the same scalar tail as before, so "pairs not divisible by
//     the lane width" is handled identically (and parity-tested).
//   * The cutoff mask uses the native mask registers
//     (_mm512_cmp_ps_mask + _mm512_maskz_mov_ps) — AVX-512F has no
//     float bitwise-and; _mm512_and_ps would require the DQ subset and
//     we gate dispatch on F alone.
//   * The horizontal sum folds 512 -> 256 -> 128 -> scalar, a different
//     association order than the AVX2 hsum — allowed: the kernels agree
//     up to FP association order, the same contract the scalar/AVX2
//     pair already lives under.  (Hand-rolled rather than
//     _mm512_reduce_add_ps because GCC 12's expansion of the latter
//     trips -Wmaybe-uninitialized via _mm256_undefined_pd.)
//   * True IEEE _mm512_div_ps, not _mm512_rcp14_ps: the reciprocal
//     approximation would change every pair value, not just the
//     summation order, and break the per-pair agreement the equivalence
//     tests rely on.
#include "scoring/batch_engine.h"

#if defined(METADOCK_SIMD_AVX512)

// GCC 12 flags the `__m256d __Y = __Y;` self-init idiom that
// avx512fintrin.h's extract/cast intrinsics use for "undefined" inputs
// as -Wmaybe-uninitialized once they inline under -O3.  The lanes are
// fully overwritten before use; the warning is a header false positive,
// so it is silenced for this TU only.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <immintrin.h>

#include <algorithm>
#include <limits>

#include "scoring/pair_params.h"

namespace metadock::scoring {

bool avx512_kernel_compiled() noexcept { return true; }

namespace detail {

namespace {

/// Sum of one 16-lane float accumulator (AVX-512F intrinsics only:
/// _mm512_extractf32x8_ps would need DQ, so the high half goes through a
/// double-lane cast).
inline double hsum16(__m512 v) noexcept {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
  const __m256 s8 = _mm256_add_ps(lo, hi);
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return static_cast<double>(_mm_cvtss_f32(s));
}

template <bool kCoulomb, bool kCutoff>
void score_block_tile(const BlockKernelArgs& a) {
  const PairTable& table = PairTable::instance();
  const float cut2s =
      a.cutoff2 > 0.0f ? a.cutoff2 : std::numeric_limits<float>::infinity();
  const __m512 vmin_r2 = _mm512_set1_ps(kMinR2);
  const __m512 vcut2 = _mm512_set1_ps(cut2s);
  const __m512 vone = _mm512_set1_ps(1.0f);

  for (std::size_t p = 0; p < a.n_poses; ++p) {
    const float* lx = a.lx + p * a.lig_n;
    const float* ly = a.ly + p * a.lig_n;
    const float* lz = a.lz + p * a.lig_n;
    double energy = 0.0;
    for (std::size_t j = 0; j < a.lig_n; ++j) {
      const float px = lx[j], py = ly[j], pz = lz[j];
      const __m512 vpx = _mm512_set1_ps(px);
      const __m512 vpy = _mm512_set1_ps(py);
      const __m512 vpz = _mm512_set1_ps(pz);
      const PairCoeff* row = table.row(static_cast<mol::Element>(a.ltype[j]));
      const float qscale =
          kCoulomb ? kCoulombConst * a.lcharge[j] / a.dielectric : 0.0f;
      const __m512 vqscale = _mm512_set1_ps(qscale);
      double e = 0.0;
      for (std::size_t r = 0; r < a.n_runs; ++r) {
        const TypeRun& run = a.runs[r];
        const float ca = row[run.type].a;
        const float cb = row[run.type].b;
        const __m512 va = _mm512_set1_ps(ca);
        const __m512 vb = _mm512_set1_ps(cb);
        const std::size_t end = run.begin + run.count;
        std::size_t i = run.begin;
        __m512 vsum = _mm512_setzero_ps();
        for (; i + 16 <= end; i += 16) {
          const __m512 dx = _mm512_sub_ps(_mm512_loadu_ps(a.rx + i), vpx);
          const __m512 dy = _mm512_sub_ps(_mm512_loadu_ps(a.ry + i), vpy);
          const __m512 dz = _mm512_sub_ps(_mm512_loadu_ps(a.rz + i), vpz);
          __m512 r2 = _mm512_fmadd_ps(dz, dz, _mm512_fmadd_ps(dy, dy, _mm512_mul_ps(dx, dx)));
          r2 = _mm512_max_ps(r2, vmin_r2);
          const __m512 inv2 = _mm512_div_ps(vone, r2);
          const __m512 inv6 = _mm512_mul_ps(_mm512_mul_ps(inv2, inv2), inv2);
          __m512 pair = _mm512_mul_ps(_mm512_fmsub_ps(va, inv6, vb), inv6);
          if constexpr (kCoulomb) {
            const __m512 q = _mm512_mul_ps(vqscale, _mm512_loadu_ps(a.rcharge + i));
            pair = _mm512_fmadd_ps(q, inv2, pair);
          }
          if constexpr (kCutoff) {
            const __mmask16 keep = _mm512_cmp_ps_mask(r2, vcut2, _CMP_LE_OQ);
            pair = _mm512_maskz_mov_ps(keep, pair);
          }
          vsum = _mm512_add_ps(vsum, pair);
        }
        e += hsum16(vsum);
        // Scalar tail (< 16 atoms), same math as the vector body.
        for (; i < end; ++i) {
          const float dx = a.rx[i] - px;
          const float dy = a.ry[i] - py;
          const float dz = a.rz[i] - pz;
          const float r2 = std::max(dx * dx + dy * dy + dz * dz, kMinR2);
          const float inv2 = 1.0f / r2;
          const float inv6 = inv2 * inv2 * inv2;
          float pair = (ca * inv6 - cb) * inv6;
          if constexpr (kCoulomb) pair += qscale * a.rcharge[i] * inv2;
          e += (!kCutoff || r2 <= cut2s) ? pair : 0.0f;
        }
      }
      energy += e;
    }
    a.energy[p] += energy;
  }
}

}  // namespace

void score_block_tile_avx512(const BlockKernelArgs& a) {
  const bool cut = a.cutoff2 > 0.0f;
  if (a.coulomb) {
    cut ? score_block_tile<true, true>(a) : score_block_tile<true, false>(a);
  } else {
    cut ? score_block_tile<false, true>(a) : score_block_tile<false, false>(a);
  }
}

}  // namespace detail
}  // namespace metadock::scoring

#else  // !METADOCK_SIMD_AVX512

#include <cstdlib>

namespace metadock::scoring {

bool avx512_kernel_compiled() noexcept { return false; }

namespace detail {

void score_block_tile_avx512(const BlockKernelArgs&) {
  // Unreachable: BatchScoringEngine refuses kAvx512 when
  // !avx512_kernel_compiled().
  std::abort();
}

}  // namespace detail
}  // namespace metadock::scoring

#endif  // METADOCK_SIMD_AVX512
